package pdds

import (
	"pdds/internal/adapt"
	"pdds/internal/link"
	"pdds/internal/provision"
	"pdds/internal/traffic"
)

// AdaptiveUser describes one user of the dynamic class selection
// simulation: a traffic stream with an absolute per-hop queueing-delay
// target on top of the relative-differentiation network.
type AdaptiveUser struct {
	// TargetPUnits is the per-hop delay target in packet transmission
	// times (p-units).
	TargetPUnits float64
	// LoadFraction is the share of link capacity the user offers.
	LoadFraction float64
}

// AdaptConfig configures SimulateAdaptation.
type AdaptConfig struct {
	// SDP configures the WTP link (default 1,2,4,8).
	SDP []float64
	// Users is the adaptive population.
	Users []AdaptiveUser
	// BackgroundLoad adds non-adaptive load (fraction of capacity).
	BackgroundLoad float64
	// PeriodPUnits is the adaptation interval (default ~450 p-units).
	PeriodPUnits float64
	// HorizonPUnits is the run length (default ~36000 p-units).
	HorizonPUnits float64
	// Seed drives all randomness (default 1).
	Seed uint64
}

// AdaptedUser is one user's outcome.
type AdaptedUser struct {
	// FinalClass is the class the user settled in (0-based).
	FinalClass int
	// Switches counts class changes over the run.
	Switches int
	// Satisfaction is the fraction of adaptation periods whose average
	// delay met the target.
	Satisfaction float64
	// MeanDelayPUnits is the user's late-run mean delay in p-units.
	MeanDelayPUnits float64
}

// AdaptReport is SimulateAdaptation's result.
type AdaptReport struct {
	Users []AdaptedUser
	// ClassOccupancy[c] counts users ending in class c.
	ClassOccupancy []int
	// MeanCost is the average final class index + 1.
	MeanCost float64
	// Packets counts completed transmissions over the run.
	Packets uint64
}

// SimulateAdaptation runs the end-system adaptation scenario of §1/§7:
// users with absolute delay targets dynamically selecting their class on a
// shared WTP link. It demonstrates that relative differentiation plus
// end-system adaptation yields absolute outcomes without admission
// control.
func SimulateAdaptation(cfg AdaptConfig) (*AdaptReport, error) {
	if len(cfg.SDP) == 0 {
		cfg.SDP = []float64{1, 2, 4, 8}
	}
	if cfg.PeriodPUnits == 0 {
		cfg.PeriodPUnits = 450
	}
	if cfg.HorizonPUnits == 0 {
		cfg.HorizonPUnits = 36000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	users := make([]adapt.UserSpec, len(cfg.Users))
	for i, u := range cfg.Users {
		users[i] = adapt.UserSpec{
			Target: u.TargetPUnits * link.PUnit,
			Rho:    u.LoadFraction,
		}
	}
	res, err := adapt.Run(adapt.Config{
		SDP:           cfg.SDP,
		Users:         users,
		BackgroundRho: cfg.BackgroundLoad,
		Period:        cfg.PeriodPUnits * link.PUnit,
		Horizon:       cfg.HorizonPUnits * link.PUnit,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	rep := &AdaptReport{ClassOccupancy: res.ClassOccupancy, MeanCost: res.MeanCost, Packets: res.Departed}
	for _, u := range res.Users {
		rep.Users = append(rep.Users, AdaptedUser{
			FinalClass:      u.FinalClass,
			Switches:        u.Switches,
			Satisfaction:    u.Satisfaction(),
			MeanDelayPUnits: u.MeanDelay / link.PUnit,
		})
	}
	return rep, nil
}

// PlanConfig configures PlanClasses: an operator's provisioning question.
type PlanConfig struct {
	// TargetsPUnits are the per-class delay requirements in p-units,
	// nonincreasing (higher classes demand lower delay).
	TargetsPUnits []float64
	// Utilization and ClassFractions define the expected operating
	// point (defaults 0.90 and 0.40/0.30/0.20/0.10).
	Utilization    float64
	ClassFractions []float64
	// Horizon is the calibration trace length in time units
	// (default 3e5).
	Horizon float64
	// Seed drives the trace (default 1).
	Seed uint64
}

// ClassPlan is PlanClasses's verdict.
type ClassPlan struct {
	// SDP are the scheduler parameters to configure WTP/BPR with.
	SDP []float64
	// PredictedPUnits are the Eq. (6) class delays in p-units.
	PredictedPUnits []float64
	// Scale is predicted/target (<= 1 means requirements met).
	Scale float64
	// Feasible is the Eq. (7) verdict.
	Feasible bool
	// Workable means requirements met AND feasible.
	Workable bool
}

// PlanClasses derives the scheduler parameters that realize a set of
// per-class delay requirements at an operating point, and reports whether
// the plan is achievable (§7's operator-side parameter-selection
// question).
func PlanClasses(cfg PlanConfig) (*ClassPlan, error) {
	if cfg.Utilization == 0 {
		cfg.Utilization = 0.90
	}
	if len(cfg.ClassFractions) == 0 && len(cfg.TargetsPUnits) == 4 {
		cfg.ClassFractions = []float64{0.40, 0.30, 0.20, 0.10}
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3e5
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	targets := make([]float64, len(cfg.TargetsPUnits))
	for i, v := range cfg.TargetsPUnits {
		targets[i] = v * link.PUnit
	}
	tr, err := traffic.Record(traffic.LoadSpec{
		Rho:       cfg.Utilization,
		Fractions: cfg.ClassFractions,
		Sizes:     traffic.PaperSizes(),
		Alpha:     1.9,
	}, link.PaperLinkRate, cfg.Horizon, cfg.Seed)
	if err != nil {
		return nil, err
	}
	plan, err := provision.Derive(tr, link.PaperLinkRate, targets)
	if err != nil {
		return nil, err
	}
	out := &ClassPlan{
		SDP:      plan.SDP,
		Scale:    plan.Scale,
		Feasible: plan.Feasible,
		Workable: plan.Workable(),
	}
	for _, d := range plan.Predicted {
		out.PredictedPUnits = append(out.PredictedPUnits, d/link.PUnit)
	}
	return out, nil
}
