package pdds

import (
	"net"
	"time"

	"pdds/internal/core"
	"pdds/internal/netio"
)

// Forwarder is a live single-hop class-based UDP forwarding element: the
// paper's per-hop behaviour on real sockets. Datagrams carry an 18-byte
// header (see EncodeDatagram) whose class byte selects the service class;
// the egress is rate-limited and scheduled by the configured discipline.
type Forwarder struct {
	inner *netio.Forwarder
}

// ForwarderStats are cumulative forwarder counters.
type ForwarderStats struct {
	Received  uint64
	Forwarded uint64
	Dropped   uint64
	BadHeader uint64
}

// StartForwarder binds listen (e.g. "127.0.0.1:0"), forwarding scheduled
// datagrams to forward at rateBps. kind and sdp configure the discipline
// (pass WTP and nil for the paper defaults).
func StartForwarder(listen, forward string, kind SchedulerKind, sdp []float64, rateBps float64) (*Forwarder, error) {
	inner, err := netio.Listen(netio.Config{
		Listen:    listen,
		Forward:   forward,
		Scheduler: core.Kind(kind),
		SDP:       sdp,
		RateBps:   rateBps,
	})
	if err != nil {
		return nil, err
	}
	return &Forwarder{inner: inner}, nil
}

// Addr returns the bound ingress address.
func (f *Forwarder) Addr() net.Addr { return f.inner.LocalAddr() }

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() ForwarderStats {
	s := f.inner.Stats()
	return ForwarderStats(s)
}

// Close shuts the forwarder down.
func (f *Forwarder) Close() error { return f.inner.Close() }

// EncodeDatagram builds a forwarder datagram: class selects the service
// class (0-based), seq and the current time are embedded so receivers can
// measure per-packet one-way delay with DecodeDatagram.
func EncodeDatagram(class uint8, seq uint64, payload []byte) []byte {
	dg := netio.Header{Class: class, Seq: seq, SentAt: time.Now()}.Encode(nil)
	return append(dg, payload...)
}

// DecodeDatagram parses a forwarder datagram, returning the class,
// sequence number, sender timestamp, and payload.
func DecodeDatagram(datagram []byte) (class uint8, seq uint64, sentAt time.Time, payload []byte, err error) {
	h, payload, err := netio.Decode(datagram)
	if err != nil {
		return 0, 0, time.Time{}, nil, err
	}
	return h.Class, h.Seq, h.SentAt, payload, nil
}
