package pdds

import (
	"net"
	"time"

	"pdds/internal/classify"
	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/netio"
	"pdds/internal/telemetry"
)

// Forwarder is a live single-hop class-based UDP forwarding element: the
// paper's per-hop behaviour on real sockets. Datagrams carry an 18-byte
// header (see EncodeDatagram) whose class byte selects the service class;
// the egress is rate-limited and scheduled by the configured discipline.
type Forwarder struct {
	inner *netio.Forwarder
}

// ForwarderStats are cumulative forwarder counters. Every received
// datagram is accounted exactly once:
// Received = Forwarded + Dropped + BadHeader + BadClass + Queued at any
// snapshot, with Queued reaching 0 after Close.
type ForwarderStats struct {
	Received  uint64
	Forwarded uint64
	// Dropped counts queue-full drops, egress write failures that
	// exhausted their retries, and datagrams discarded at Close.
	Dropped   uint64
	BadHeader uint64
	// BadClass counts structurally valid datagrams whose class could not
	// be resolved: an out-of-range or ClassUnspecified class byte with no
	// class config loaded, or traffic matching no filter when the config
	// declares no default class.
	BadClass uint64
	// Queued is the instantaneous scheduler backlog at snapshot time.
	Queued uint64
}

// ForwarderConfig configures StartForwarderWithConfig.
type ForwarderConfig struct {
	// Listen is the UDP ingress address (e.g. "127.0.0.1:0"); Forward
	// is where scheduled datagrams are sent.
	Listen, Forward string
	// Scheduler and SDP configure the discipline (defaults: WTP with
	// SDPs 1,2,4,8).
	Scheduler SchedulerKind
	SDP       []float64
	// RateBps is the egress rate in bits per second.
	RateBps float64
	// MaxPackets bounds the aggregate queue (0 = 4096).
	MaxPackets int
	// Shards is the number of parallel ingress paths (0 or 1 = the classic
	// single-socket forwarder). With N > 1 the forwarder binds N sockets to
	// the same ingress address under SO_REUSEPORT, so the kernel's flow
	// hash gives every flow a stable shard; each shard classifies and
	// admits independently and the single transmitter serves the globally
	// highest-priority head across shards (deadline merge). Where
	// SO_REUSEPORT is unavailable the shards share one socket, which
	// ShardStats reports.
	Shards int
	// DrainTimeout bounds the graceful drain Close performs: queued
	// datagrams keep transmitting — still paced at RateBps — for up to
	// this long before the remainder is dropped and accounted. Zero
	// drops the backlog immediately on Close.
	DrainTimeout time.Duration
	// DisablePooling turns off ingress buffer and packet reuse, forcing
	// a fresh allocation per datagram (debugging aid).
	DisablePooling bool
	// MetricsAddr, if non-empty, serves live per-class metrics over
	// HTTP on this address: /metrics (expvar-style JSON),
	// /metrics?format=text (human view) and /debug/pprof/. Use
	// "127.0.0.1:0" to pick a free port (see MetricsAddr).
	MetricsAddr string
	// Classes, when non-nil, turns the forwarder into a classifying
	// edge: datagrams tagged ClassUnspecified (or carrying an
	// out-of-range class byte) are classified by flow identity and DS
	// byte against the config's traffic classes, and the resolved class
	// is re-marked into the forwarded datagram. The config also supplies
	// the scheduler SDPs (derived from its DDPs, unless SDP is set
	// explicitly), per-class queue bounds, and class names for
	// telemetry. When nil, behaviour is exactly the classic trusted-
	// header forwarder.
	Classes *ClassConfig
	// DistrustHeader, with Classes set, classifies every datagram from
	// its flow identity instead of trusting in-range header class bytes.
	DistrustHeader bool
	// FlowTTL is the idle eviction age for memoized flow→class
	// decisions (0 = entries never expire). Long-idle flows are
	// re-classified on their next datagram.
	FlowTTL time.Duration
	// Adapt enables the closed-loop DDP controller: a background loop
	// snapshots the forwarder's per-class delay telemetry every
	// AdaptInterval and, when the measured adjacent-class delay ratios
	// deviate from the SDP targets beyond a deadband, retunes the live
	// scheduler parameters (every shard, atomically between egress
	// batches). Requires a retunable scheduler (WTP, HPD, DRR, IWRR or
	// PF); FCFS fails at start. While the measured ratios stay in band
	// the controller never touches the scheduler, so an Adapt forwarder
	// serving conforming traffic behaves byte-identically to a plain one.
	Adapt bool
	// AdaptInterval is the controller's observation period (0 = 1s).
	// Each window needs enough departures in every class to be judged,
	// so shorter intervals only help when traffic is dense.
	AdaptInterval time.Duration
}

// StartForwarder binds listen (e.g. "127.0.0.1:0"), forwarding scheduled
// datagrams to forward at rateBps. kind and sdp configure the discipline
// (pass WTP and nil for the paper defaults).
func StartForwarder(listen, forward string, kind SchedulerKind, sdp []float64, rateBps float64) (*Forwarder, error) {
	return StartForwarderWithConfig(ForwarderConfig{
		Listen:    listen,
		Forward:   forward,
		Scheduler: kind,
		SDP:       sdp,
		RateBps:   rateBps,
	})
}

// StartForwarderWithConfig starts a forwarder with full configuration,
// including live observability. The forwarder is always instrumented: per-
// class counters and delay histograms are available via ClassStats and
// DelayRatios even when no metrics address is configured.
func StartForwarderWithConfig(cfg ForwarderConfig) (*Forwarder, error) {
	sdp := cfg.SDP
	if len(sdp) == 0 {
		if cfg.Classes != nil {
			sdp = cfg.Classes.SDPs()
		} else {
			sdp = []float64{1, 2, 4, 8}
		}
	}
	reg := telemetry.NewWithSDP(sdp)
	ncfg := netio.Config{
		Listen:         cfg.Listen,
		Forward:        cfg.Forward,
		Scheduler:      core.Kind(cfg.Scheduler),
		SDP:            sdp,
		RateBps:        cfg.RateBps,
		MaxPackets:     cfg.MaxPackets,
		Shards:         cfg.Shards,
		DrainTimeout:   cfg.DrainTimeout,
		DisablePooling: cfg.DisablePooling,
		MetricsAddr:    cfg.MetricsAddr,
		Telemetry:      reg,
		DistrustHeader: cfg.DistrustHeader,
	}
	if cfg.Adapt {
		ncfg.Control = &control.Config{}
		ncfg.ControlInterval = cfg.AdaptInterval
	}
	if cfg.Classes != nil {
		cls, err := classify.New(cfg.Classes.inner, classify.FlowTableConfig{
			TTL: cfg.FlowTTL.Nanoseconds(),
		})
		if err != nil {
			return nil, err
		}
		ncfg.Classifier = cls
		ncfg.ClassMaxPackets = cfg.Classes.inner.QueueBounds()
		if len(cfg.Classes.Names()) == reg.NumClasses() {
			reg.SetClassNames(cfg.Classes.Names())
		}
	}
	inner, err := netio.Listen(ncfg)
	if err != nil {
		return nil, err
	}
	return &Forwarder{inner: inner}, nil
}

// Addr returns the bound ingress address.
func (f *Forwarder) Addr() net.Addr { return f.inner.LocalAddr() }

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() ForwarderStats {
	s := f.inner.Stats()
	return ForwarderStats(s)
}

// ForwarderShardStats describes one ingress shard's receive path.
type ForwarderShardStats struct {
	// Received and Batches count datagrams and socket reads on this shard;
	// their ratio is the achieved receive batch size.
	Received uint64
	Batches  uint64
	// MaxBatch is the largest single-read batch observed.
	MaxBatch int
	// Mode is the active I/O path: "mmsg" (recvmmsg/sendmmsg) or
	// "datagram" (portable per-datagram syscalls).
	Mode string
	// SharedSocket reports the SO_REUSEPORT fallback: all shards reading
	// one socket, so flow→shard stability is lost.
	SharedSocket bool
}

// ShardStats returns per-shard ingress counters (one entry per configured
// shard; a single entry for the classic single-socket forwarder).
func (f *Forwarder) ShardStats() []ForwarderShardStats {
	ss := f.inner.ShardStats()
	out := make([]ForwarderShardStats, len(ss))
	for i, s := range ss {
		out[i] = ForwarderShardStats(s)
	}
	return out
}

// Close shuts the forwarder down.
func (f *Forwarder) Close() error { return f.inner.Close() }

// MetricsAddr returns the bound metrics HTTP address, or nil when
// observability over HTTP was not configured.
func (f *Forwarder) MetricsAddr() net.Addr { return f.inner.MetricsAddr() }

// LiveClassStats is a live snapshot of one class's metrics from a running
// forwarder or an instrumented simulation. Delays are one-hop queueing
// delays — seconds for the forwarder, simulation time units for
// simulations.
type LiveClassStats struct {
	Class int
	// Name is the class's configured label (empty unless the forwarder
	// was started with a class config).
	Name                    string
	Arrivals, Departures    uint64
	Drops                   uint64
	Backlog                 uint64
	DelayMean, DelayP50     float64
	DelayP95, DelayP99      float64
	DelayMax                float64
	ArrivedBytes, SentBytes uint64
}

// ClassStats returns a live per-class snapshot (index 0 = lowest class),
// or nil if the forwarder was started uninstrumented via internal
// configuration.
func (f *Forwarder) ClassStats() []LiveClassStats {
	reg := f.inner.Telemetry()
	if reg == nil {
		return nil
	}
	snap := reg.Snapshot()
	out := make([]LiveClassStats, len(snap.Classes))
	for i, c := range snap.Classes {
		out[i] = LiveClassStats{
			Class:        c.Class,
			Name:         c.Name,
			Arrivals:     c.Arrivals,
			Departures:   c.Departures,
			Drops:        c.Drops,
			Backlog:      c.Backlog(),
			DelayMean:    c.Delay.Mean(),
			DelayP50:     c.Delay.Quantile(0.50),
			DelayP95:     c.Delay.Quantile(0.95),
			DelayP99:     c.Delay.Quantile(0.99),
			DelayMax:     c.Delay.Max,
			ArrivedBytes: c.ArrivedBytes,
			SentBytes:    c.DepartedBytes,
		}
	}
	return out
}

// Retune replaces the live scheduler parameter vector (the SDPs, or DRR
// quanta / IWRR weights) on every shard without disturbing queued
// traffic: the vector is validated here and installed by the transmit
// goroutine between egress batches. Returns an error for malformed
// vectors or a non-retunable scheduler (FCFS). Safe for concurrent use,
// and composes with Adapt — the controller simply steers from the new
// vector's measured ratios.
func (f *Forwarder) Retune(params []float64) error { return f.inner.Retune(params) }

// ControlStats reports closed-loop adaptation activity: the controller's
// window verdicts plus the retune seam's installation counters. With
// ForwarderConfig.Adapt unset, only the seam counters (manual Retune
// calls) are populated.
type ControlStats struct {
	// Windows is the number of telemetry windows the controller judged;
	// Retunes of them triggered a parameter change, Held stayed inside
	// the deadband, and Starved lacked the per-class departures to trust
	// (those windows stay open and accumulate).
	Windows, Retunes, Held, Starved uint64
	// Applied counts parameter vectors actually installed into the
	// schedulers (controller decisions plus manual Retune calls); Params
	// is the last installed vector (nil before the first).
	Applied uint64
	Params  []float64
}

// ControlStats returns a snapshot of the adaptation counters.
func (f *Forwarder) ControlStats() ControlStats {
	rs := f.inner.RetuneStats()
	out := ControlStats{Applied: rs.Applied, Params: rs.Params}
	if cs, ok := f.inner.ControlStats(); ok {
		out.Windows, out.Retunes, out.Held, out.Starved = cs.Windows, cs.Retunes, cs.Held, cs.Starved
	}
	return out
}

// DelayRatios returns the observed adjacent-class mean-delay ratios
// (class i over class i+1) — the live form of the quantity the
// proportional model pins to SDP[i+1]/SDP[i]. Entries are 0 until both
// classes have forwarded traffic.
func (f *Forwarder) DelayRatios() []float64 {
	reg := f.inner.Telemetry()
	if reg == nil {
		return nil
	}
	return reg.Snapshot().Ratios
}

// EncodeDatagram builds a forwarder datagram: class selects the service
// class (0-based), seq and the current time are embedded so receivers can
// measure per-packet one-way delay with DecodeDatagram.
func EncodeDatagram(class uint8, seq uint64, payload []byte) []byte {
	dg := netio.Header{Class: class, Seq: seq, SentAt: time.Now()}.Encode(nil)
	return append(dg, payload...)
}

// DecodeDatagram parses a forwarder datagram, returning the class,
// sequence number, sender timestamp, and payload.
func DecodeDatagram(datagram []byte) (class uint8, seq uint64, sentAt time.Time, payload []byte, err error) {
	h, payload, err := netio.Decode(datagram)
	if err != nil {
		return 0, 0, time.Time{}, nil, err
	}
	return h.Class, h.Seq, h.SentAt, payload, nil
}
