module pdds

go 1.22
