package pdds

import "testing"

func TestSimulateAdaptation(t *testing.T) {
	rep, err := SimulateAdaptation(AdaptConfig{
		Users: []AdaptiveUser{
			{TargetPUnits: 3, LoadFraction: 0.03},
			{TargetPUnits: 300, LoadFraction: 0.03},
		},
		BackgroundLoad: 0.85,
		HorizonPUnits:  20000,
		Seed:           2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Users) != 2 || len(rep.ClassOccupancy) != 4 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if !(rep.Users[0].FinalClass > rep.Users[1].FinalClass) {
		t.Fatalf("tight user in class %d, relaxed in %d — no separation",
			rep.Users[0].FinalClass, rep.Users[1].FinalClass)
	}
	if rep.MeanCost < 1 {
		t.Fatal("mean cost below 1")
	}
}

func TestSimulateAdaptationError(t *testing.T) {
	if _, err := SimulateAdaptation(AdaptConfig{}); err == nil {
		t.Fatal("empty population accepted")
	}
	if _, err := SimulateAdaptation(AdaptConfig{
		Users:          []AdaptiveUser{{TargetPUnits: 1, LoadFraction: 0.5}},
		BackgroundLoad: 0.6,
	}); err == nil {
		t.Fatal("overload accepted")
	}
}

func TestPlanClasses(t *testing.T) {
	plan, err := PlanClasses(PlanConfig{
		TargetsPUnits: []float64{400, 200, 100, 50},
		Utilization:   0.90,
		Horizon:       100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Workable || !plan.Feasible || plan.Scale > 1 {
		t.Fatalf("generous plan not workable: %+v", plan)
	}
	if len(plan.SDP) != 4 || plan.SDP[0] != 1 || plan.SDP[3] != 8 {
		t.Fatalf("SDP = %v, want 1,2,4,8 from the 2:1 requirement ladder", plan.SDP)
	}
	if len(plan.PredictedPUnits) != 4 {
		t.Fatal("predicted delays missing")
	}

	tight, err := PlanClasses(PlanConfig{
		TargetsPUnits: []float64{0.8, 0.4, 0.2, 0.1},
		Utilization:   0.95,
		Horizon:       100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Workable {
		t.Fatal("impossible plan reported workable")
	}
}

func TestPlanClassesError(t *testing.T) {
	if _, err := PlanClasses(PlanConfig{
		TargetsPUnits: []float64{50, 100, 200, 400}, // increasing: invalid
		Horizon:       50000,
	}); err == nil {
		t.Fatal("increasing targets accepted")
	}
}
