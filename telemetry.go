package pdds

import (
	"net"

	"pdds/internal/telemetry"
)

// Telemetry is live per-class observability attachable to simulations
// (SimulateLink, SimulatePath) and usable standalone: lock-free per-class
// counters and delay histograms, streaming adjacent-class delay ratios
// compared against the DDP targets implied by the SDPs, and an optional
// HTTP endpoint (/metrics JSON, /metrics?format=text, /debug/pprof/).
//
// The record path is allocation-free, so telemetry can stay attached to
// hot simulation loops; the overhead is measured by
// BenchmarkTelemetryOverhead.
type Telemetry struct {
	reg *telemetry.Registry
	srv *telemetry.Server
}

// NewTelemetry returns a telemetry instrument for len(sdp) classes whose
// delay-ratio targets derive from the SDPs (target ratio i is
// SDP[i+1]/SDP[i], the proportional model's pinned quantity).
func NewTelemetry(sdp []float64) *Telemetry {
	return &Telemetry{reg: telemetry.NewWithSDP(sdp)}
}

// Classes returns the current per-class snapshot (index 0 = lowest
// class).
func (t *Telemetry) Classes() []LiveClassStats {
	snap := t.reg.Snapshot()
	out := make([]LiveClassStats, len(snap.Classes))
	for i, c := range snap.Classes {
		out[i] = LiveClassStats{
			Class:        c.Class,
			Arrivals:     c.Arrivals,
			Departures:   c.Departures,
			Drops:        c.Drops,
			Backlog:      c.Backlog(),
			DelayMean:    c.Delay.Mean(),
			DelayP50:     c.Delay.Quantile(0.50),
			DelayP95:     c.Delay.Quantile(0.95),
			DelayP99:     c.Delay.Quantile(0.99),
			DelayMax:     c.Delay.Max,
			ArrivedBytes: c.ArrivedBytes,
			SentBytes:    c.DepartedBytes,
		}
	}
	return out
}

// Ratios returns the observed adjacent-class mean-delay ratios (class i
// over class i+1). Entries are 0 until both classes have departures.
func (t *Telemetry) Ratios() []float64 { return t.reg.Snapshot().Ratios }

// TargetRatios returns the DDP targets derived from the SDPs.
func (t *Telemetry) TargetRatios() []float64 { return t.reg.TargetRatios() }

// Deviation returns the largest relative deviation of an observed
// adjacent-class ratio from its target, and the number of class pairs
// compared — the operator's single alerting number (0 = spacing matches
// the DDPs exactly).
func (t *Telemetry) Deviation() (dev float64, pairs int) {
	return t.reg.Snapshot().MaxDeviation()
}

// Text renders the human-readable metrics view (the same content as
// /metrics?format=text).
func (t *Telemetry) Text() string { return telemetry.Text(t.reg.Snapshot()) }

// Serve exposes this telemetry over HTTP on addr ("127.0.0.1:0" picks a
// free port) and returns the bound address. Close stops the server.
func (t *Telemetry) Serve(addr string) (net.Addr, error) {
	srv, err := telemetry.Serve(addr, t.reg)
	if err != nil {
		return nil, err
	}
	t.srv = srv
	return srv.Addr(), nil
}

// Close stops the HTTP endpoint if Serve started one.
func (t *Telemetry) Close() error {
	if t.srv == nil {
		return nil
	}
	return t.srv.Close()
}

// registry unwraps the internal registry for wiring into simulations
// (nil-safe: a nil *Telemetry disables instrumentation).
func (t *Telemetry) registry() *telemetry.Registry {
	if t == nil {
		return nil
	}
	return t.reg
}
