package pdds

import (
	"io"

	"pdds/internal/classify"
	"pdds/internal/netio"
)

// ClassUnspecified is the sentinel class byte senders use to ask the
// forwarder's classifier to pick the class from flow identity (source
// address/port, protocol) and the DS byte. Without a class config loaded,
// datagrams carrying it count as BadClass.
const ClassUnspecified = netio.ClassUnspecified

// ClassConfig is a validated set of traffic-class declarations for a
// classifying forwarder edge: named classes with delay differentiation
// parameters (DDPs), match filters, an optional default class, and
// optional per-class queue bounds. Build one with LoadClassConfig or
// ParseClassConfig and pass it via ForwarderConfig.Classes.
type ClassConfig struct {
	inner *classify.Config
}

// LoadClassConfig parses the traffic-class config file at path. The
// format is line oriented:
//
//	class bulk          # first class = class 0 = highest-delay class
//	  ddp 4             # relative delay target, non-increasing down the file
//	  default           # unmatched traffic lands here
//	class interactive
//	  ddp 1
//	  match dst-port 5000-5999
//	  match dscp 46
//
// Each `match` line ANDs its elements (src/dst prefixes, src-port and
// dst-port ranges, proto, dscp, exact flow 5-tuples); a class's match
// lines are ORed; classification is first-match-wins in declaration
// order.
func LoadClassConfig(path string) (*ClassConfig, error) {
	cfg, err := classify.LoadConfig(path)
	if err != nil {
		return nil, err
	}
	return &ClassConfig{inner: cfg}, nil
}

// ParseClassConfig reads a traffic-class config from r (same format as
// LoadClassConfig).
func ParseClassConfig(r io.Reader) (*ClassConfig, error) {
	cfg, err := classify.ParseConfig(r)
	if err != nil {
		return nil, err
	}
	return &ClassConfig{inner: cfg}, nil
}

// NumClasses returns the number of declared classes.
func (c *ClassConfig) NumClasses() int { return len(c.inner.Classes) }

// Names returns the class names in index order (index 0 = lowest class).
func (c *ClassConfig) Names() []string { return c.inner.Names() }

// DDPs returns the declared delay differentiation parameters in index
// order.
func (c *ClassConfig) DDPs() []float64 {
	out := make([]float64, len(c.inner.Classes))
	for i, tc := range c.inner.Classes {
		out[i] = tc.DDP
	}
	return out
}

// SDPs returns the scheduler differentiation parameters derived from the
// DDPs: SDP(i) = maxDDP/DDP(i), so delay(i)/delay(j) tracks DDP(i)/DDP(j)
// under the proportional model.
func (c *ClassConfig) SDPs() []float64 { return c.inner.SDPs() }

// DefaultClass returns the default class index, or -1 when the config
// declares none (unmatched traffic is then counted as BadClass).
func (c *ClassConfig) DefaultClass() int { return c.inner.DefaultClass() }
