package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/traffic"
)

// AblationPoint compares one relative-differentiation mechanism (§2.1) at
// one operating point.
type AblationPoint struct {
	Scheduler core.Kind
	Rho       float64
	Fractions []float64
	// Ratios are the successive-class mean-delay ratios.
	Ratios []float64
	// Diffs are the successive-class mean-delay differences in p-units
	// (the additive model's natural metric, Eq. 3).
	Diffs []float64
}

// AblationRhos are the utilizations swept by the ablation.
var AblationRhos = []float64{0.75, 0.85, 0.95}

// ablationDistributions contrasts the default split with a high-skewed one
// (where load-insensitive mechanisms show their value).
var ablationDistributions = [][]float64{
	{0.40, 0.30, 0.20, 0.10},
	{0.10, 0.10, 0.10, 0.70},
}

// Ablation quantifies the §2.1 comparison of relative differentiation
// mechanisms: strict priority (consistent but uncontrollable), WFQ with
// static SDP weights (bandwidth-controllable but delay ratios drift with
// the load distribution), the additive scheduler (constant differences,
// not ratios), and WTP/BPR (the proportional schedulers).
func Ablation(scale Scale) ([]AblationPoint, error) {
	kinds := []core.Kind{core.KindWTP, core.KindBPR, core.KindStrict, core.KindWFQ, core.KindDRR, core.KindAdditive}
	var out []AblationPoint
	for _, fractions := range ablationDistributions {
		for _, rho := range AblationRhos {
			load := traffic.LoadSpec{
				Rho:       rho,
				Fractions: fractions,
				Sizes:     traffic.PaperSizes(),
				Alpha:     1.9,
			}
			for _, kind := range kinds {
				sdp := PaperSDPx2
				if kind == core.KindAdditive {
					// Additive offsets are absolute
					// priorities in time units; spacing of
					// ~30 p-units per class step gives
					// visible differences at these loads.
					sdp = []float64{1, 340, 680, 1020}
				}
				delays, err := runAveraged(kind, sdp, load, scale)
				if err != nil {
					return nil, err
				}
				diffs := make([]float64, 0, 3)
				for c := 0; c+1 < 4; c++ {
					diffs = append(diffs, (delays.Mean(c)-delays.Mean(c+1))/link.PUnit)
				}
				out = append(out, AblationPoint{
					Scheduler: kind,
					Rho:       rho,
					Fractions: fractions,
					Ratios:    delays.SuccessiveRatios(),
					Diffs:     diffs,
				})
			}
		}
	}
	return out, nil
}

// WriteAblationTSV renders the ablation as a TSV table.
func WriteAblationTSV(w io.Writer, points []AblationPoint) error {
	if _, err := fmt.Fprintln(w, "# Section 2.1 ablation: relative differentiation mechanisms (proportional target ratio 2.0)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\trho\tdistribution\tr12\tr23\tr34\tdiff12_pu\tdiff23_pu\tdiff34_pu"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.2f\t%.0f/%.0f/%.0f/%.0f\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\n",
			p.Scheduler, p.Rho,
			p.Fractions[0]*100, p.Fractions[1]*100, p.Fractions[2]*100, p.Fractions[3]*100,
			p.Ratios[0], p.Ratios[1], p.Ratios[2],
			p.Diffs[0], p.Diffs[1], p.Diffs[2]); err != nil {
			return err
		}
	}
	return nil
}
