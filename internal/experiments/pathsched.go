package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/network"
)

// PathSched extends Study B beyond the paper: §6 runs WTP only ("since it
// performs better than BPR"), an assertion carried over from the
// single-link study. This experiment quantifies it end to end by running
// the same Table 1 configuration under every proportional scheduler plus
// the strict baseline.

// PathSchedPoint is one scheduler's end-to-end result.
type PathSchedPoint struct {
	Scheduler core.Kind
	// RD is the Table 1 metric (ideal 2.0 for SDP 1/2/4/8).
	RD float64
	// Inconsistent and Material count percentile inversions (total and
	// >5% ones).
	Inconsistent int
	Material     int
	// MeanE2EMs is the per-class mean end-to-end queueing delay in
	// milliseconds.
	MeanE2EMs []float64
}

// PathSchedulers are compared end to end.
var PathSchedulers = []core.Kind{core.KindWTP, core.KindBPR, core.KindPAD, core.KindHPD, core.KindStrict}

// PathSched runs the K=4, ρ=0.95, F=10, R_u=50 Study B cell under each
// scheduler, seeds pooled.
func PathSched(scale Scale) ([]PathSchedPoint, error) {
	// Flatten the (scheduler, seed) grid into one job list for the shared
	// bounded worker pool; reduction walks it in (scheduler, seed) order.
	nSeeds := scale.StudyBSeeds
	results := make([]*network.Result, len(PathSchedulers)*nSeeds)
	err := ForEach(len(results), func(i int) error {
		ki, s := i/nSeeds, i%nSeeds
		res, err := runNetwork(network.Config{
			Hops:        4,
			Rho:         0.95,
			SDP:         PaperSDPx2,
			Scheduler:   PathSchedulers[ki],
			FlowPackets: 10,
			FlowKbps:    50,
			Experiments: scale.StudyBExperiments,
			WarmupSec:   scale.StudyBWarmup,
			Seed:        BaseSeed + uint64(s),
		})
		if err != nil {
			return fmt.Errorf("%s seed %d (index %d): %w",
				PathSchedulers[ki], BaseSeed+uint64(s), s, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var points []PathSchedPoint
	for ki, kind := range PathSchedulers {
		p := PathSchedPoint{Scheduler: kind}
		var meanSums []float64
		for _, r := range results[ki*nSeeds : (ki+1)*nSeeds] {
			p.RD += r.RD
			p.Inconsistent += r.Inconsistent
			p.Material += r.InconsistentMaterial
			if meanSums == nil {
				meanSums = make([]float64, len(r.MeanE2E))
			}
			for c, d := range r.MeanE2E {
				meanSums[c] += d
			}
		}
		p.RD /= float64(scale.StudyBSeeds)
		for _, s := range meanSums {
			p.MeanE2EMs = append(p.MeanE2EMs, s/float64(scale.StudyBSeeds)*1000)
		}
		points = append(points, p)
	}
	return points, nil
}

// WritePathSchedTSV renders the end-to-end scheduler comparison.
func WritePathSchedTSV(w io.Writer, points []PathSchedPoint) error {
	if _, err := fmt.Fprintln(w, "# Extension: Study B (K=4, rho=0.95, F=10, Ru=50) under each scheduler (R_D ideal 2.00)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\tRD\tinconsistent\tinc>5%\te2e_ms_c1\te2e_ms_c2\te2e_ms_c3\te2e_ms_c4"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.3f\t%d\t%d\t%.2f\t%.2f\t%.2f\t%.2f\n",
			p.Scheduler, p.RD, p.Inconsistent, p.Material,
			p.MeanE2EMs[0], p.MeanE2EMs[1], p.MeanE2EMs[2], p.MeanE2EMs[3]); err != nil {
			return err
		}
	}
	return nil
}
