package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/traffic"
)

// The moderate-load experiment targets §5's main negative finding —
// "neither scheduler manages to maintain the proportional delay
// differentiation in moderate loads" (ratio ≈1.5 instead of 2 at ρ=0.70)
// — and §7's open question about an optimal proportional scheduler. It
// compares WTP and BPR against the follow-up PAD and HPD schedulers at
// moderate utilizations: PAD/HPD hold the target ratio essentially
// everywhere the model is feasible.

// ModeratePoint is one (scheduler, utilization) cell.
type ModeratePoint struct {
	Scheduler core.Kind
	Rho       float64
	Ratios    []float64
}

// ModerateRhos are the utilizations swept (the paper's problematic range
// plus one heavy point for reference).
var ModerateRhos = []float64{0.70, 0.80, 0.90, 0.95}

// ModerateSchedulers are compared.
var ModerateSchedulers = []core.Kind{core.KindWTP, core.KindBPR, core.KindPAD, core.KindHPD}

// Moderate measures long-term successive-class delay ratios for each
// scheduler across moderate utilizations (SDP ratio 2; target ratio 2).
func Moderate(scale Scale) ([]ModeratePoint, error) {
	var out []ModeratePoint
	for _, rho := range ModerateRhos {
		for _, kind := range ModerateSchedulers {
			delays, err := runAveraged(kind, PaperSDPx2, traffic.PaperLoad(rho), scale)
			if err != nil {
				return nil, err
			}
			out = append(out, ModeratePoint{
				Scheduler: kind,
				Rho:       rho,
				Ratios:    delays.SuccessiveRatios(),
			})
		}
	}
	return out, nil
}

// WriteModerateTSV renders the moderate-load comparison as a TSV table.
func WriteModerateTSV(w io.Writer, points []ModeratePoint) error {
	if _, err := fmt.Fprintln(w, "# Extension (§7): moderate-load accuracy of WTP/BPR vs PAD/HPD (target ratio 2.0)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\trho\tr12\tr23\tr34"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.2f\t%.3f\t%.3f\t%.3f\n",
			p.Scheduler, p.Rho, p.Ratios[0], p.Ratios[1], p.Ratios[2]); err != nil {
			return err
		}
	}
	return nil
}
