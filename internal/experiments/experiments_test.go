package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/traffic"
)

// tiny is even smaller than Bench so the whole experiment suite stays
// test-friendly.
var tiny = Scale{
	Seeds:             1,
	Horizon:           3e4,
	Warmup:            3e3,
	FeasHorizon:       3e4,
	StudyBSeeds:       1,
	StudyBExperiments: 3,
	StudyBWarmup:      2,
}

func TestFig1ShapeAndRender(t *testing.T) {
	points, err := Fig1(PaperSDPx2, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Utilizations)*2 {
		t.Fatalf("points = %d, want %d", len(points), len(Utilizations)*2)
	}
	for _, p := range points {
		if len(p.Ratios) != 3 || len(p.MeanDelayPU) != 4 {
			t.Fatalf("point shape wrong: %+v", p)
		}
		// At this tiny scale moderate-load points are noisy (the
		// paper itself reports both schedulers deviate at ρ=0.70),
		// so only require positive ratios everywhere and correct
		// ordering for WTP under heavy load.
		for _, r := range p.Ratios {
			if r <= 0 {
				t.Fatalf("%s rho=%.2f ratios=%v: nonpositive ratio",
					p.Scheduler, p.Rho, p.Ratios)
			}
		}
		if p.Scheduler == core.KindWTP && p.Rho >= 0.95 {
			for _, r := range p.Ratios {
				if r <= 1.2 {
					t.Fatalf("WTP rho=%.3f ratios=%v: differentiation too weak",
						p.Rho, p.Ratios)
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFig1TSV(&buf, points, 2); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(points)+2 {
		t.Fatalf("TSV lines = %d", lines)
	}
}

// WTP's heavy-load convergence to the inverse SDP ratios (Eq. 13) is the
// paper's central result; check it quantitatively at ρ=0.95 with a real
// (not tiny) run length.
func TestFig1WTPHeavyLoadConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy-load convergence needs a full-length run")
	}
	scale := Scale{Seeds: 3, Horizon: 5e5, Warmup: 5e4}
	points, err := Fig1(PaperSDPx2, scale)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Scheduler != core.KindWTP || p.Rho != 0.95 {
			continue
		}
		for i, r := range p.Ratios {
			if r < 1.75 || r > 2.3 {
				t.Errorf("WTP rho=0.95 ratio[%d] = %.3f, want ≈2 (Eq. 13)", i, r)
			}
		}
	}
}

func TestFig2ShapeAndRender(t *testing.T) {
	points, err := Fig2(PaperSDPx2, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig2Distributions)*2 {
		t.Fatalf("points = %d", len(points))
	}
	var buf bytes.Buffer
	if err := WriteFig2TSV(&buf, points, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "40/30/20/10") {
		t.Fatal("TSV missing distribution label")
	}
}

func TestFig3ShapeAndRender(t *testing.T) {
	points, err := Fig3(PaperSDPx2, tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig3Taus)*2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if len(p.Percentiles) != 5 || p.Intervals == 0 {
			t.Fatalf("point shape wrong: %+v", p)
		}
		// Percentiles are nondecreasing by construction.
		for i := 1; i < 5; i++ {
			if p.Percentiles[i] < p.Percentiles[i-1] {
				t.Fatalf("percentiles not sorted: %v", p.Percentiles)
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteFig3TSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "10000") {
		t.Fatal("TSV missing tau=10000 row")
	}
}

func TestMicroBothSchedulers(t *testing.T) {
	var results []*MicroResult
	for _, kind := range []core.Kind{core.KindBPR, core.KindWTP} {
		r, err := Micro(kind, tiny)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.ViewII) == 0 {
			t.Fatalf("%s: empty view II", kind)
		}
		if len(r.ViewI.Series(0)) == 0 {
			t.Fatalf("%s: empty view I", kind)
		}
		results = append(results, r)
	}
	var buf bytes.Buffer
	if err := WriteMicroSummaryTSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := WriteMicroSeriesCSV(&csv, results[0]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "view II") {
		t.Fatal("CSV missing view II section")
	}
}

func TestTable1ShapeAndRender(t *testing.T) {
	cells, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("cells = %d, want 16", len(cells))
	}
	for _, c := range cells {
		if c.RD <= 0 {
			t.Fatalf("cell %+v has nonpositive RD", c)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable1TSV(&buf, cells); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "\n") != 6 { // header comment + header + 4 rows
		t.Fatalf("table rows wrong:\n%s", out)
	}
}

func TestFeasibilityAllPointsFeasible(t *testing.T) {
	points, err := Feasibility(tiny)
	if err != nil {
		t.Fatal(err)
	}
	want := (len(Utilizations) + len(Fig2Distributions)) * 2
	if len(points) != want {
		t.Fatalf("points = %d, want %d", len(points), want)
	}
	for _, p := range points {
		if !p.Feasible {
			t.Errorf("%s sdp-ratio %.0f infeasible (slack %.4f)", p.Label, p.SDPRatio, p.WorstSlack)
		}
	}
	var buf bytes.Buffer
	if err := WriteFeasibilityTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig1 rho=0.999") {
		t.Fatal("TSV missing fig1 rows")
	}
}

func TestAblationShapeAndRender(t *testing.T) {
	points, err := Ablation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(AblationRhos)*6 {
		t.Fatalf("points = %d", len(points))
	}
	var buf bytes.Buffer
	if err := WriteAblationTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"wtp", "bpr", "strict", "wfq", "drr", "additive"} {
		if !strings.Contains(buf.String(), name) {
			t.Fatalf("TSV missing %s rows", name)
		}
	}
}

func TestLossExtension(t *testing.T) {
	points, err := Loss(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8 (4 operating points x 2 policies)", len(points))
	}
	lossy := 0
	for _, p := range points {
		if p.TotalLossFraction <= 0 {
			// A mild overload may not fill the larger buffer at
			// this tiny scale; skip such points but require that
			// the harsh ones below do lose.
			continue
		}
		lossy++
		// Loss fractions ordered like the LDPs under both policies:
		// lower classes lose more.
		for c := 0; c+1 < 4; c++ {
			if p.LossFraction[c] < p.LossFraction[c+1] {
				t.Errorf("%s rho=%.2f buf=%d: class %d loss %.4f < class %d loss %.4f",
					p.Policy, p.Rho, p.Buffer, c+1, p.LossFraction[c], c+2, p.LossFraction[c+1])
			}
		}
		switch p.Policy {
		case "plr":
			// Normalized ratios near 1 (proportional loss model).
			for c, r := range p.NormalizedRatios {
				if r < 0.5 || r > 2.0 {
					t.Errorf("plr rho=%.2f buf=%d class %d normalized ratio %.2f far from 1",
						p.Rho, p.Buffer, c+1, r)
				}
			}
		case "strict":
			// Strict loss priority concentrates drops on the
			// lowest class: its loss fraction dwarfs the top
			// class's.
			if p.LossFraction[3] > 0 && p.LossFraction[0]/p.LossFraction[3] < 4 {
				t.Errorf("strict rho=%.2f buf=%d: loss spread too even: %v",
					p.Rho, p.Buffer, p.LossFraction)
			}
		}
	}
	if lossy < 4 {
		t.Fatalf("only %d of %d overloaded points lost packets", lossy, len(points))
	}
	var buf bytes.Buffer
	if err := WriteLossTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.20") {
		t.Fatal("TSV missing rho=1.20 rows")
	}
}

func TestModerateShapeAndRender(t *testing.T) {
	points, err := Moderate(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(ModerateRhos)*len(ModerateSchedulers) {
		t.Fatalf("points = %d", len(points))
	}
	var buf bytes.Buffer
	if err := WriteModerateTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pad") || !strings.Contains(buf.String(), "hpd") {
		t.Fatal("TSV missing pad/hpd rows")
	}
}

// PAD's defining property: it holds the target ratio at moderate load
// where WTP undershoots (§7's open question, answered by the follow-up
// schedulers). Needs a real run length.
func TestPADModerateLoadAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a full-length run")
	}
	scale := Scale{Seeds: 2, Horizon: 4e5, Warmup: 4e4}
	get := func(kind core.Kind) []float64 {
		delays, err := runAveraged(kind, PaperSDPx2, traffic.PaperLoad(0.80), scale)
		if err != nil {
			t.Fatal(err)
		}
		return delays.SuccessiveRatios()
	}
	pad := get(core.KindPAD)
	wtp := get(core.KindWTP)
	// WTP undershoots at ρ=0.80 (paper: ~1.6-1.7); PAD holds ≈2 for
	// the first two pairs (the 3/4 pair sits near the feasibility
	// boundary at this load).
	for i := 0; i < 2; i++ {
		if pad[i] < 1.8 || pad[i] > 2.2 {
			t.Errorf("PAD ratio[%d] = %.3f, want ≈2", i, pad[i])
		}
		if wtp[i] > 1.85 {
			t.Errorf("WTP ratio[%d] = %.3f unexpectedly accurate at ρ=0.80", i, wtp[i])
		}
	}
}

// Control sweep shape and render; at quick scale the controller must
// also beat the uncontrolled run in every cell (the convergence suite in
// internal/control pins the tight margins — this guards the experiment's
// own wiring).
func TestControlShapeAndRender(t *testing.T) {
	points, err := Control(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ControlPlans) * len(ControlKinds); len(points) != want {
		t.Fatalf("points = %d, want %d", len(points), want)
	}
	for _, p := range points {
		if p.Retunes == 0 {
			t.Errorf("%s/%s: controller never retuned", p.Plan, p.Kind)
		}
		if !(p.OnErr < p.OffErr) {
			t.Errorf("%s/%s: on_err %.4f >= off_err %.4f", p.Plan, p.Kind, p.OnErr, p.OffErr)
		}
	}
	var buf bytes.Buffer
	if err := WriteControlTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "load-ramp") || !strings.Contains(buf.String(), "retunes") {
		t.Fatalf("TSV missing expected rows:\n%s", buf.String())
	}
}

func TestPathSchedShapeAndRender(t *testing.T) {
	points, err := PathSched(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(PathSchedulers) {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.RD <= 0 || len(p.MeanE2EMs) != 4 {
			t.Fatalf("point shape wrong: %+v", p)
		}
	}
	var buf bytes.Buffer
	if err := WritePathSchedTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "strict") {
		t.Fatal("TSV missing strict row")
	}
}

func TestHPDGShapeAndRender(t *testing.T) {
	points, err := HPDG(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(HPDGs) {
		t.Fatalf("points = %d", len(points))
	}
	var g0, g1 HPDGPoint
	for _, p := range points {
		if p.G == 0 {
			g0 = p
		}
		if p.G == 1 {
			g1 = p
		}
	}
	// The defining trade-off: pure PAD (g=0) has the best long-term
	// accuracy but by far the worst short-timescale spread.
	if !(g0.LongTermErr < g1.LongTermErr) {
		t.Errorf("long-term: g=0 err %.3f not below g=1 err %.3f", g0.LongTermErr, g1.LongTermErr)
	}
	if !(g0.ShortSpread > 2*g1.ShortSpread) {
		t.Errorf("short-term: g=0 spread %.3f not far above g=1 spread %.3f", g0.ShortSpread, g1.ShortSpread)
	}
	var buf bytes.Buffer
	if err := WriteHPDGTSV(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.875") {
		t.Fatal("TSV missing g=0.875 row")
	}
}
