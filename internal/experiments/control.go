package experiments

import (
	"fmt"
	"io"

	"pdds/internal/chaos"
	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/traffic"
)

// The control experiment quantifies what the closed-loop controller buys:
// for each adaptation adversary (a load ramp into the moderate band where
// WTP's ratios sag, and a class-mix shift at heavy load) it runs the same
// seeded scenario with the controller off and on, and reports the mean
// absolute log deviation of the adjacent-class delay ratios from the DDP
// targets over the post-transient tail. A working loop shows on_err well
// below off_err; retunes counts its decisions.

// ControlPoint is one plan × scheduler outcome.
type ControlPoint struct {
	Plan string
	Kind core.Kind
	// OffErr and OnErr are the tail ratio errors (mean |log(R/target)|
	// over adjacent pairs) without and with the controller.
	OffErr float64
	OnErr  float64
	// Retunes counts the controller's applied decisions in the on run.
	Retunes uint64
}

// ControlPlans and ControlKinds are the swept scenarios and disciplines.
var (
	ControlPlans = []string{"load-ramp", "class-shift"}
	ControlKinds = []core.Kind{core.KindWTP, core.KindHPD}
)

// controlPlan builds one adversary scenario at horizon H. The
// perturbations land in the first half so the judged tail is a settled
// regime (mirroring the convergence test suite in internal/control).
func controlPlan(kind core.Kind, name string, H float64) chaos.SimPlan {
	p := chaos.SimPlan{
		Name:    name,
		Kind:    kind,
		SDP:     []float64{1, 2, 4, 8},
		Horizon: H,
		Warmup:  0.1 * H,
		Seed:    BaseSeed,
	}
	switch name {
	case "load-ramp":
		p.Load = traffic.PaperLoad(0.60)
		p.Timeline = chaos.Timeline{
			Name:    "ramp-0.60-to-0.85",
			Actions: chaos.Ramp(0.2*H, 0.5*H, 6, 1.0, 0.85/0.60),
		}
	case "class-shift":
		p.Load = traffic.PaperLoad(0.90)
		p.Timeline = chaos.Timeline{Name: "mix-shift", Actions: []chaos.Action{
			{At: 0.4 * H, Op: chaos.OpScaleClass, Class: 0, Factor: 0.5},
			{At: 0.4 * H, Op: chaos.OpScaleClass, Class: 3, Factor: 3.0},
		}}
	default:
		panic("experiments: unknown control plan " + name)
	}
	// Report-only run: the ratio-window bands are the chaos suite's
	// verdicts; here the tail error itself is the measurement.
	p.Expect.Flat = false
	return p
}

// controlTailErr runs one scenario and returns the final judged
// segment's ratio error plus the retune count.
func controlTailErr(plan chaos.SimPlan) (float64, uint64, error) {
	res, err := chaos.RunSim(plan)
	if err != nil {
		return 0, 0, err
	}
	countRun(res.Departed)
	if len(res.Segments) == 0 {
		return 0, 0, fmt.Errorf("experiments: %s: no segments", plan.Name)
	}
	last := res.Segments[len(res.Segments)-1]
	e, pairs := control.WindowError(last.Ratios, res.TargetRatios)
	if pairs == 0 {
		return 0, 0, fmt.Errorf("experiments: %s: no measurable tail pairs", plan.Name)
	}
	return e, res.Retunes, nil
}

// Control runs the sweep: every (plan, kind) pair's off and on runs are
// independent jobs fanned out over the shared worker pool.
func Control(scale Scale) ([]ControlPoint, error) {
	n := len(ControlPlans) * len(ControlKinds)
	offs := make([]float64, n)
	ons := make([]float64, n)
	retunes := make([]uint64, n)
	err := ForEach(2*n, func(i int) error {
		ci, which := i/2, i%2
		plan := controlPlan(ControlKinds[ci%len(ControlKinds)],
			ControlPlans[ci/len(ControlKinds)], scale.Horizon)
		if which == 1 {
			plan.Control = &control.Config{
				Gain:          0.5,
				Deadband:      0.05,
				MaxStep:       0.25,
				MinDepartures: 100,
			}
			plan.ControlInterval = scale.Horizon / 30
		}
		e, r, err := controlTailErr(plan)
		if err != nil {
			return err
		}
		if which == 0 {
			offs[ci] = e
		} else {
			ons[ci], retunes[ci] = e, r
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]ControlPoint, n)
	for ci := range out {
		out[ci] = ControlPoint{
			Plan:    ControlPlans[ci/len(ControlKinds)],
			Kind:    ControlKinds[ci%len(ControlKinds)],
			OffErr:  offs[ci],
			OnErr:   ons[ci],
			Retunes: retunes[ci],
		}
	}
	return out, nil
}

// WriteControlTSV renders the sweep.
func WriteControlTSV(w io.Writer, points []ControlPoint) error {
	if _, err := fmt.Fprintln(w, "# Extension: closed-loop DDP controller — post-transient tail ratio error, controller off vs on"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "plan\tsched\toff_err\ton_err\tretunes"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%d\n",
			p.Plan, p.Kind, p.OffErr, p.OnErr, p.Retunes); err != nil {
			return err
		}
	}
	return nil
}
