package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// Fig1Point is one point of Figure 1: the long-term average-delay ratios
// between successive classes for one scheduler at one utilization.
type Fig1Point struct {
	Scheduler core.Kind
	Rho       float64
	// Ratios[i] is mean-delay(class i) / mean-delay(class i+1),
	// aggregated over all seeds.
	Ratios []float64
	// MeanDelayPU is the per-class mean delay in p-units (context for
	// the "delays are realistic" discussion in §5).
	MeanDelayPU []float64
}

// runAveraged merges per-class delays over scale.Seeds independent runs of
// the given configuration (the paper's "averaging over ten simulation runs
// with different seeds"). Seeds run on the shared bounded worker pool —
// each run is an isolated deterministic simulation — and are merged in
// seed order, so the result is identical to a serial sweep.
func runAveraged(kind core.Kind, sdp []float64, load traffic.LoadSpec, scale Scale) (*stats.ClassDelays, error) {
	results := make([]*stats.ClassDelays, scale.Seeds)
	err := ForEach(scale.Seeds, func(s int) error {
		res, err := runLink(link.RunConfig{
			Kind:    kind,
			SDP:     sdp,
			Load:    load,
			Horizon: scale.Horizon,
			Warmup:  scale.Warmup,
			Seed:    BaseSeed + uint64(s),
		})
		if err != nil {
			return seedErr(s, err)
		}
		results[s] = res.Delays
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged := stats.NewClassDelays(len(sdp))
	for _, r := range results {
		merged.Merge(r)
	}
	return merged, nil
}

// Fig1 sweeps utilization for WTP and BPR with the given SDPs and returns
// the successive-class delay ratios (Figure 1-a with PaperSDPx2, 1-b with
// PaperSDPx4).
func Fig1(sdp []float64, scale Scale) ([]Fig1Point, error) {
	var out []Fig1Point
	for _, rho := range Utilizations {
		for _, kind := range []core.Kind{core.KindWTP, core.KindBPR} {
			delays, err := runAveraged(kind, sdp, traffic.PaperLoad(rho), scale)
			if err != nil {
				return nil, err
			}
			pu := make([]float64, len(sdp))
			for c := range pu {
				pu[c] = delays.Mean(c) / link.PUnit
			}
			out = append(out, Fig1Point{
				Scheduler:   kind,
				Rho:         rho,
				Ratios:      delays.SuccessiveRatios(),
				MeanDelayPU: pu,
			})
		}
	}
	return out, nil
}

// WriteFig1TSV renders Figure 1 points as a TSV table.
func WriteFig1TSV(w io.Writer, points []Fig1Point, targetRatio float64) error {
	if _, err := fmt.Fprintf(w, "# Figure 1: avg-delay ratios of successive classes vs utilization (desired ratio %.1f)\n", targetRatio); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\trho\tr12\tr23\tr34\td1_pu\td2_pu\td3_pu\td4_pu"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\t%.1f\n",
			p.Scheduler, p.Rho, p.Ratios[0], p.Ratios[1], p.Ratios[2],
			p.MeanDelayPU[0], p.MeanDelayPU[1], p.MeanDelayPU[2], p.MeanDelayPU[3]); err != nil {
			return err
		}
	}
	return nil
}
