package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// The HPD g-sweep maps the design space between PAD (g=0, long-term
// accurate, short-term poor) and WTP (g=1, short-term accurate, sags at
// moderate load): for each mixing factor it measures the long-term ratio
// error at a moderate load and the short-timescale R_D spread at heavy
// load. The follow-up literature's recommended g≈0.875 should sit near the
// knee.

// HPDGPoint is one mixing factor's scores.
type HPDGPoint struct {
	G float64
	// LongTermErr is the mean absolute deviation of the three
	// successive-class ratios from the target 2.0, at ρ=0.80.
	LongTermErr float64
	// ShortSpread is the 5–95 percentile spread of R_D at τ=100
	// p-units, ρ=0.95.
	ShortSpread float64
}

// HPDGs are the swept mixing factors.
var HPDGs = []float64{0, 0.25, 0.5, 0.75, 0.875, 1}

// HPDG runs the sweep: the two scores of every mixing factor are
// independent runs, fanned out over the shared worker pool as a flat
// (g, score) job list and reduced in g order.
func HPDG(scale Scale) ([]HPDGPoint, error) {
	longErrs := make([]float64, len(HPDGs))
	spreads := make([]float64, len(HPDGs))
	err := ForEach(2*len(HPDGs), func(i int) error {
		gi, which := i/2, i%2
		g := HPDGs[gi]
		var err error
		if which == 0 {
			// Long-term accuracy at moderate load.
			longErrs[gi], err = hpdLongTermErr(g, scale)
		} else {
			// Short-timescale spread at heavy load.
			spreads[gi], err = hpdShortSpread(g, scale)
		}
		if err != nil {
			return fmt.Errorf("g=%.3f: %w", g, err)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]HPDGPoint, len(HPDGs))
	for gi, g := range HPDGs {
		out[gi] = HPDGPoint{G: g, LongTermErr: longErrs[gi], ShortSpread: spreads[gi]}
	}
	return out, nil
}

// hpdRun executes one run with an explicitly-constructed HPD scheduler.
// link.Run constructs schedulers by kind, which would pin g to the
// default, so this driver drives the engine directly.
func hpdRun(g float64, rho, horizon, warmup float64, observers []func(*core.Packet)) (*stats.ClassDelays, error) {
	return runCustom(core.NewHPD(PaperSDPx2, g), rho, horizon, warmup, observers)
}

func hpdLongTermErr(g float64, scale Scale) (float64, error) {
	delays, err := hpdRun(g, 0.80, scale.Horizon, scale.Warmup, nil)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, r := range delays.SuccessiveRatios() {
		d := r - 2
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 3, nil
}

func hpdShortSpread(g float64, scale Scale) (float64, error) {
	rd := stats.NewIntervalRD(100*link.PUnit, len(PaperSDPx2))
	warm := scale.Warmup
	_, err := hpdRun(g, 0.95, scale.Horizon, scale.Warmup, []func(*core.Packet){
		func(p *core.Packet) {
			if p.Departure >= warm {
				rd.Observe(p)
			}
		},
	})
	if err != nil {
		return 0, err
	}
	rd.Finish()
	if rd.RD().Len() == 0 {
		return 0, fmt.Errorf("experiments: no R_D intervals in HPD g-sweep")
	}
	q := rd.RD().Quantiles(0.05, 0.95)
	return q[1] - q[0], nil
}

// runCustom drives a single-link run with a pre-built scheduler (the
// counterpart of link.Run for schedulers that need non-default
// construction).
func runCustom(sched core.Scheduler, rho, horizon, warmup float64, observers []func(*core.Packet)) (*stats.ClassDelays, error) {
	res, err := runLinkWith(sched, link.RunConfig{
		Kind:      core.KindHPD, // informational; scheduler overrides
		SDP:       PaperSDPx2,
		Load:      traffic.PaperLoad(rho),
		Horizon:   horizon,
		Warmup:    warmup,
		Seed:      BaseSeed,
		Observers: observers,
	})
	if err != nil {
		return nil, err
	}
	return res.Delays, nil
}

// WriteHPDGTSV renders the g-sweep.
func WriteHPDGTSV(w io.Writer, points []HPDGPoint) error {
	if _, err := fmt.Fprintln(w, "# Extension: HPD mixing factor sweep — long-term |ratio-2| at rho=0.80 vs R_D p5-p95 spread (tau=100pu) at rho=0.95"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "g\tlongterm_err\tshort_spread"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%.3f\t%.3f\t%.3f\n", p.G, p.LongTermErr, p.ShortSpread); err != nil {
			return err
		}
	}
	return nil
}
