package experiments

import (
	"fmt"
	"io"

	"pdds/internal/network"
)

// Table1Cell is one cell of Table 1: the end-to-end ratio metric R_D for
// one (F, R_u, K, rho) combination, averaged over seeds.
type Table1Cell struct {
	FlowPackets int
	FlowKbps    float64
	Hops        int
	Rho         float64
	// RD is the Table 1 metric averaged over seeds (ideal: 2.0).
	RD float64
	// Inconsistent totals inconsistent percentile comparisons across
	// seeds (the paper reports zero); Material counts those where the
	// higher class was >5% worse.
	Inconsistent int
	Material     int
	// Seeds is the number of runs averaged.
	Seeds int
}

// Table1Rows are the paper's row parameters (K, rho); Table1Cols the
// column parameters (F, R_u).
var (
	Table1Rows = []struct {
		Hops int
		Rho  float64
	}{
		{4, 0.85}, {4, 0.95}, {8, 0.85}, {8, 0.95},
	}
	Table1Cols = []struct {
		Packets int
		Kbps    float64
	}{
		{10, 50}, {10, 200}, {100, 50}, {100, 200},
	}
)

// Table1 reproduces Table 1: Study B across all 16 parameter combinations.
func Table1(scale Scale) ([]Table1Cell, error) {
	// Every (cell, seed) run is independent: flatten them into one job
	// list for the shared bounded worker pool and reduce in deterministic
	// (row, col, seed) order.
	nSeeds := scale.StudyBSeeds
	nJobs := len(Table1Rows) * len(Table1Cols) * nSeeds
	results := make([]*network.Result, nJobs)
	err := ForEach(nJobs, func(i int) error {
		s := i % nSeeds
		ci := (i / nSeeds) % len(Table1Cols)
		ri := i / (nSeeds * len(Table1Cols))
		row, col := Table1Rows[ri], Table1Cols[ci]
		res, err := runNetwork(network.Config{
			Hops:        row.Hops,
			Rho:         row.Rho,
			SDP:         PaperSDPx2,
			FlowPackets: col.Packets,
			FlowKbps:    col.Kbps,
			Experiments: scale.StudyBExperiments,
			WarmupSec:   scale.StudyBWarmup,
			Seed:        BaseSeed + uint64(s),
		})
		if err != nil {
			return fmt.Errorf("K=%d rho=%.2f F=%d Ru=%g seed %d (index %d): %w",
				row.Hops, row.Rho, col.Packets, col.Kbps, BaseSeed+uint64(s), s, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Table1Cell
	for ri, row := range Table1Rows {
		for ci, col := range Table1Cols {
			var rdSum float64
			var inconsistent, material int
			base := (ri*len(Table1Cols) + ci) * nSeeds
			for _, r := range results[base : base+nSeeds] {
				rdSum += r.RD
				inconsistent += r.Inconsistent
				material += r.InconsistentMaterial
			}
			out = append(out, Table1Cell{
				FlowPackets:  col.Packets,
				FlowKbps:     col.Kbps,
				Hops:         row.Hops,
				Rho:          row.Rho,
				RD:           rdSum / float64(scale.StudyBSeeds),
				Inconsistent: inconsistent,
				Material:     material,
				Seeds:        scale.StudyBSeeds,
			})
		}
	}
	return out, nil
}

// WriteTable1TSV renders Table 1 in the paper's layout (rows: K and rho;
// columns: F and R_u) plus the inconsistency totals.
func WriteTable1TSV(w io.Writer, cells []Table1Cell) error {
	if _, err := fmt.Fprintln(w, "# Table 1: end-to-end R_D metric (ideal 2.00); 'inc' counts inconsistent percentile comparisons (paper: zero)"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "K\trho\tF=10,Ru=50\tF=10,Ru=200\tF=100,Ru=50\tF=100,Ru=200\tinc\tinc>5%"); err != nil {
		return err
	}
	byKey := map[[4]int]Table1Cell{}
	for _, c := range cells {
		byKey[[4]int{c.Hops, int(c.Rho * 100), c.FlowPackets, int(c.FlowKbps)}] = c
	}
	for _, row := range Table1Rows {
		inc, mat := 0, 0
		line := fmt.Sprintf("%d\t%.2f", row.Hops, row.Rho)
		for _, col := range Table1Cols {
			c, ok := byKey[[4]int{row.Hops, int(row.Rho * 100), col.Packets, int(col.Kbps)}]
			if !ok {
				return fmt.Errorf("experiments: missing Table 1 cell K=%d rho=%g F=%d Ru=%g",
					row.Hops, row.Rho, col.Packets, col.Kbps)
			}
			line += fmt.Sprintf("\t%.2f", c.RD)
			inc += c.Inconsistent
			mat += c.Material
		}
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\n", line, inc, mat); err != nil {
			return err
		}
	}
	return nil
}
