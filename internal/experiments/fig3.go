package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// Fig3Taus are the four monitoring timescales of Figure 3, in p-units.
var Fig3Taus = []float64{10, 100, 1000, 10000}

// Fig3Rho is the utilization of Figure 3.
const Fig3Rho = 0.95

// Fig3Point summarizes the distribution of the short-timescale ratio R_D
// for one scheduler and one monitoring timescale.
type Fig3Point struct {
	Scheduler core.Kind
	// TauPU is the monitoring timescale in p-units.
	TauPU float64
	// Percentiles holds the 5/25/50/75/95 percentiles of R_D across
	// all intervals of all seeds.
	Percentiles []float64
	// Intervals is the number of R_D values summarized.
	Intervals int
}

// Fig3 measures R_D percentiles for WTP and BPR at each monitoring
// timescale (Figure 3), pooling intervals across seeds.
func Fig3(sdp []float64, scale Scale) ([]Fig3Point, error) {
	var out []Fig3Point
	for _, kind := range []core.Kind{core.KindWTP, core.KindBPR} {
		trackers := make([]*stats.IntervalRD, len(Fig3Taus))
		for i, tau := range Fig3Taus {
			trackers[i] = stats.NewIntervalRD(tau*link.PUnit, len(sdp))
		}
		// Seeds run on the shared bounded worker pool, each observing its
		// departures into private per-seed trackers (fresh trackers per
		// seed, because sharing one would reset interval alignment).
		// Samples are pooled in seed order afterwards, so the percentiles
		// are identical to a serial sweep.
		perSeed := make([][]*stats.IntervalRD, scale.Seeds)
		err := ForEach(scale.Seeds, func(s int) error {
			seedTrackers := make([]*stats.IntervalRD, len(Fig3Taus))
			observers := make([]func(*core.Packet), len(Fig3Taus))
			for i, tau := range Fig3Taus {
				st := stats.NewIntervalRD(tau*link.PUnit, len(sdp))
				seedTrackers[i] = st
				observers[i] = func(p *core.Packet) {
					if p.Departure >= scale.Warmup {
						st.Observe(p)
					}
				}
			}
			_, err := runLink(link.RunConfig{
				Kind:      kind,
				SDP:       sdp,
				Load:      traffic.PaperLoad(Fig3Rho),
				Horizon:   scale.Horizon,
				Warmup:    scale.Warmup,
				Seed:      BaseSeed + uint64(s),
				Observers: observers,
			})
			if err != nil {
				return seedErr(s, err)
			}
			perSeed[s] = seedTrackers
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, seedTrackers := range perSeed {
			for i, st := range seedTrackers {
				st.Finish()
				// Pool this seed's R_D values.
				for _, v := range st.RD().Values() {
					trackers[i].RD().Add(v)
				}
			}
		}
		for i, tau := range Fig3Taus {
			sample := trackers[i].RD()
			if sample.Len() == 0 {
				return nil, fmt.Errorf("experiments: no R_D intervals for %s tau=%g", kind, tau)
			}
			out = append(out, Fig3Point{
				Scheduler:   kind,
				TauPU:       tau,
				Percentiles: sample.Quantiles(stats.FivePercentiles...),
				Intervals:   sample.Len(),
			})
		}
	}
	return out, nil
}

// WriteFig3TSV renders Figure 3 points as a TSV table.
func WriteFig3TSV(w io.Writer, points []Fig3Point) error {
	if _, err := fmt.Fprintf(w, "# Figure 3: percentiles of R_D per monitoring timescale at rho=%.2f (desired ratio 2.0)\n", Fig3Rho); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\ttau_pu\tp5\tp25\tp50\tp75\tp95\tintervals"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.0f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n",
			p.Scheduler, p.TauPU,
			p.Percentiles[0], p.Percentiles[1], p.Percentiles[2], p.Percentiles[3], p.Percentiles[4],
			p.Intervals); err != nil {
			return err
		}
	}
	return nil
}
