package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/traffic"
)

// This file implements the loss-differentiation extension (§7 lists
// coupled delay and loss differentiation as the main future-work
// direction): a finite-buffer WTP link whose overflow victims are chosen
// by the proportional-loss (PLR) dropper, so that class loss *fractions*
// are ratioed by the loss differentiation parameters just as class delays
// are ratioed by the DDPs.

// LossLDP are the loss differentiation parameters of the extension
// experiment: class 1 loses 4x class 2, etc. (nonincreasing, §7's analogue
// of δ1 > δ2 > ...).
var LossLDP = []float64{8, 4, 2, 1}

// LossPoint is one operating point of the loss-differentiation experiment.
type LossPoint struct {
	// Policy names the dropper ("plr" or "strict").
	Policy string
	Rho    float64
	Buffer int
	// LossFraction is the measured per-class loss fraction.
	LossFraction []float64
	// NormalizedRatios are (l_i/σ_i)/(l_N/σ_N): 1.0 everywhere under
	// ideal proportional loss differentiation.
	NormalizedRatios []float64
	// DelayRatios are the surviving packets' successive-class delay
	// ratios, showing delay differentiation persists under loss.
	DelayRatios []float64
	// TotalLossFraction is overall drops/arrivals.
	TotalLossFraction float64
}

// lossBuffers are the shared-buffer sizes (packets) swept by the
// experiment. Small buffers force losses at overload.
var lossBuffers = []int{50, 200}

// lossRhos overload the link so drops must happen (the lossless §3 model
// no longer applies).
var lossRhos = []float64{1.05, 1.20}

// Loss runs the proportional loss-differentiation extension: an
// overloaded WTP link with a finite shared buffer and the PLR push-out
// dropper.
func Loss(scale Scale) ([]LossPoint, error) {
	// Flatten the (buffer, rho, policy) sweep into one job list for the
	// shared worker pool; results are indexed, so ordering matches the
	// former serial triple loop exactly.
	type combo struct {
		buffer int
		rho    float64
		policy string
	}
	var combos []combo
	for _, buffer := range lossBuffers {
		for _, rho := range lossRhos {
			for _, policy := range []string{"plr", "strict"} {
				combos = append(combos, combo{buffer, rho, policy})
			}
		}
	}
	out := make([]LossPoint, len(combos))
	err := ForEach(len(combos), func(i int) error {
		c := combos[i]
		point, err := lossRun(scale, c.policy, c.rho, c.buffer)
		if err != nil {
			return fmt.Errorf("policy=%s rho=%.2f buffer=%d: %w", c.policy, c.rho, c.buffer, err)
		}
		out[i] = *point
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// lossRun executes one overloaded finite-buffer run under the named drop
// policy.
func lossRun(scale Scale, policy string, rho float64, buffer int) (*LossPoint, error) {
	var dropper core.DropPolicy
	var fraction func(int) float64
	switch policy {
	case "plr":
		d := core.NewPLRDropper(LossLDP)
		dropper, fraction = d, d.LossFraction
	case "strict":
		d := core.NewStrictDropper(len(LossLDP))
		dropper, fraction = d, d.LossFraction
	default:
		return nil, fmt.Errorf("experiments: unknown drop policy %q", policy)
	}
	res, err := runLink(link.RunConfig{
		Kind: core.KindWTP,
		SDP:  PaperSDPx2,
		Load: traffic.LoadSpec{
			Rho:       rho,
			Fractions: []float64{0.40, 0.30, 0.20, 0.10},
			Sizes:     traffic.PaperSizes(),
			Alpha:     1.9,
		},
		Horizon:    scale.Horizon,
		Warmup:     scale.Warmup,
		Seed:       BaseSeed,
		MaxPackets: buffer,
		Dropper:    dropper,
	})
	if err != nil {
		return nil, err
	}
	point := &LossPoint{
		Policy:      policy,
		Rho:         rho,
		Buffer:      buffer,
		DelayRatios: res.Delays.SuccessiveRatios(),
	}
	var totalArrivals float64
	var weighted float64
	for c := range LossLDP {
		point.LossFraction = append(point.LossFraction, fraction(c))
	}
	// Total loss fraction from the link counters.
	totalArrivals = float64(res.Generated)
	weighted = float64(res.Dropped)
	if totalArrivals > 0 {
		point.TotalLossFraction = weighted / totalArrivals
	}
	ref := fraction(len(LossLDP)-1) / LossLDP[len(LossLDP)-1]
	for c := range LossLDP {
		norm := 0.0
		if ref > 0 {
			norm = fraction(c) / LossLDP[c] / ref
		}
		point.NormalizedRatios = append(point.NormalizedRatios, norm)
	}
	return point, nil
}

// WriteLossTSV renders the loss-differentiation extension as a TSV table.
func WriteLossTSV(w io.Writer, points []LossPoint) error {
	if _, err := fmt.Fprintf(w, "# Extension (§7): proportional loss differentiation, WTP + PLR push-out, LDP %v\n", LossLDP); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "policy\trho\tbuffer\tloss1\tloss2\tloss3\tloss4\tnorm1\tnorm2\tnorm3\tnorm4\ttotal_loss\tr12\tr23\tr34"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.2f\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.2f\t%.2f\t%.2f\t%.2f\t%.4f\t%.2f\t%.2f\t%.2f\n",
			p.Policy, p.Rho, p.Buffer,
			p.LossFraction[0], p.LossFraction[1], p.LossFraction[2], p.LossFraction[3],
			p.NormalizedRatios[0], p.NormalizedRatios[1], p.NormalizedRatios[2], p.NormalizedRatios[3],
			p.TotalLossFraction,
			p.DelayRatios[0], p.DelayRatios[1], p.DelayRatios[2]); err != nil {
			return err
		}
	}
	return nil
}
