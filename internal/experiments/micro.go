package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// MicroRho is the utilization of the microscopic views (Figures 4 and 5).
const MicroRho = 0.95

// MicroLoad is the 3-class load distribution used for the microscopic
// views. The paper does not print one for its 3-class illustration; the
// default 4-class shape truncated and renormalized keeps the lowest class
// dominant.
var MicroLoad = []float64{0.45, 0.33, 0.22}

// MicroResult holds the data behind one of Figures 4/5 plus the
// quantitative summary this reproduction adds (the paper compares the two
// figures visually).
type MicroResult struct {
	Scheduler core.Kind
	// ViewI is the per-class average delay over consecutive 30-p-unit
	// intervals across a ~15000-p-unit window.
	ViewI *stats.ViewI
	// ViewII is the per-packet delay series for the most overloaded
	// 1000-p-unit sub-window.
	ViewII []stats.PacketPoint
	// ViewIIStart is the chosen sub-window's start time.
	ViewIIStart float64
	// Sawtooth is the per-class sawtooth index over ViewII (§5 describes
	// BPR's "sawtooth-type variations"; this quantifies them).
	Sawtooth []float64
	// MeanDelayPU is the per-class mean delay in p-units over the whole
	// run.
	MeanDelayPU []float64
}

// Micro runs the microscopic-view experiment for one scheduler (Figure 4
// for BPR, Figure 5 for WTP). Both schedulers are driven by the same seed
// so, as in the paper, the views cover "the same arriving packet streams
// in each class".
func Micro(kind core.Kind, scale Scale) (*MicroResult, error) {
	const (
		viewIWindowPU  = 15000
		viewITauPU     = 30
		viewIIWindowPU = 1000
	)
	from := scale.Warmup
	to := from + viewIWindowPU*link.PUnit

	viewI := stats.NewViewI(len(MicroSDP), viewITauPU*link.PUnit, from, to)
	// Capture the whole view-I window at per-packet resolution, then
	// select the most loaded 1000-p-unit sub-window for view II.
	big := stats.NewViewII(from, to)

	load := traffic.LoadSpec{
		Rho:       MicroRho,
		Fractions: MicroLoad,
		Sizes:     traffic.PaperSizes(),
		Alpha:     1.9,
	}
	res, err := runLink(link.RunConfig{
		Kind:      kind,
		SDP:       MicroSDP,
		Load:      load,
		Horizon:   to + 10*link.PUnit,
		Warmup:    scale.Warmup,
		Seed:      BaseSeed,
		Observers: []func(*core.Packet){viewI.Observe, big.Observe},
	})
	if err != nil {
		return nil, err
	}
	viewI.Finish()

	// Slide a 1000-p-unit window over the captured points and keep the
	// one with the largest lowest-class average delay ("the microscopic
	// views II cover an overloaded time interval").
	window := viewIIWindowPU * link.PUnit
	points := big.Points()
	if len(points) == 0 {
		return nil, fmt.Errorf("experiments: no packets captured in micro window")
	}
	bestStart, bestScore := from, -1.0
	for start := from; start+window <= to; start += window / 4 {
		var sum float64
		var n int
		for _, pt := range points {
			if pt.Departure >= start && pt.Departure < start+window && pt.Class == 0 {
				sum += pt.Delay
				n++
			}
		}
		if n > 0 && sum/float64(n) > bestScore {
			bestScore, bestStart = sum/float64(n), start
		}
	}
	var sub []stats.PacketPoint
	for _, pt := range points {
		if pt.Departure >= bestStart && pt.Departure < bestStart+window {
			sub = append(sub, pt)
		}
	}

	saw := make([]float64, len(MicroSDP))
	for c := range saw {
		saw[c] = stats.SawtoothIndex(sub, c)
	}
	pu := make([]float64, len(MicroSDP))
	for c := range pu {
		pu[c] = res.Delays.Mean(c) / link.PUnit
	}
	return &MicroResult{
		Scheduler:   kind,
		ViewI:       viewI,
		ViewII:      sub,
		ViewIIStart: bestStart,
		Sawtooth:    saw,
		MeanDelayPU: pu,
	}, nil
}

// WriteMicroSummaryTSV renders the quantitative comparison of a pair of
// microscopic-view results.
func WriteMicroSummaryTSV(w io.Writer, results []*MicroResult) error {
	if _, err := fmt.Fprintf(w, "# Figures 4/5: microscopic views, 3 classes, SDP 1/2/4, rho=%.2f\n", MicroRho); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\tclass\tmean_delay_pu\tsawtooth_index\tviewII_points"); err != nil {
		return err
	}
	for _, r := range results {
		for c := range MicroSDP {
			count := 0
			for _, pt := range r.ViewII {
				if pt.Class == c {
					count++
				}
			}
			if _, err := fmt.Fprintf(w, "%s\t%d\t%.1f\t%.3f\t%d\n",
				r.Scheduler, c+1, r.MeanDelayPU[c], r.Sawtooth[c], count); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteMicroSeriesCSV dumps a result's raw series (both views) as CSV for
// plotting: section headers distinguish the views.
func WriteMicroSeriesCSV(w io.Writer, r *MicroResult) error {
	if _, err := fmt.Fprintf(w, "# %s view I: interval_start,class,avg_delay,count\n", r.Scheduler); err != nil {
		return err
	}
	for c := range MicroSDP {
		for _, pt := range r.ViewI.Series(c) {
			if _, err := fmt.Fprintf(w, "%.1f,%d,%.2f,%d\n", pt.Time, c+1, pt.AvgDelay, pt.Count); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# %s view II (window start %.1f): departure,class,delay\n", r.Scheduler, r.ViewIIStart); err != nil {
		return err
	}
	for _, pt := range r.ViewII {
		if _, err := fmt.Fprintf(w, "%.2f,%d,%.2f\n", pt.Departure, pt.Class+1, pt.Delay); err != nil {
			return err
		}
	}
	return nil
}
