package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/traffic"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]atomic.Int64
	if err := ForEach(n, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Errorf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestForEachErrorsInIndexOrder(t *testing.T) {
	// Errors must join in index order regardless of completion order, and
	// every index must still run even when earlier ones fail.
	var ran atomic.Int64
	err := ForEach(10, func(i int) error {
		ran.Add(1)
		if i == 7 || i == 2 {
			return fmt.Errorf("job %d failed", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("ForEach: want error, got nil")
	}
	if got := ran.Load(); got != 10 {
		t.Errorf("ran %d jobs, want 10 (failures must not cancel siblings)", got)
	}
	msg := err.Error()
	i2, i7 := strings.Index(msg, "job 2 failed"), strings.Index(msg, "job 7 failed")
	if i2 < 0 || i7 < 0 {
		t.Fatalf("error %q missing a per-job message", msg)
	}
	if i2 > i7 {
		t.Errorf("error %q lists job 7 before job 2; want index order", msg)
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	SetParallelism(3)
	defer SetParallelism(0)
	var inFlight, peak atomic.Int64
	if err := ForEach(50, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		inFlight.Add(-1)
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if got := peak.Load(); got > 3 {
		t.Errorf("observed %d concurrent jobs, want <= 3", got)
	}
}

func TestForEachZeroAndSerial(t *testing.T) {
	if err := ForEach(0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatalf("ForEach(0): %v", err)
	}
	SetParallelism(1)
	defer SetParallelism(0)
	order := make([]int, 0, 5)
	if err := ForEach(5, func(i int) error {
		order = append(order, i) // safe: serial path runs on this goroutine
		return nil
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v, want ascending", order)
		}
	}
}

func TestParallelismDefault(t *testing.T) {
	SetParallelism(0)
	if got := Parallelism(); got < 1 {
		t.Fatalf("Parallelism() = %d, want >= 1", got)
	}
	SetParallelism(7)
	defer SetParallelism(0)
	if got := Parallelism(); got != 7 {
		t.Fatalf("Parallelism() = %d, want 7", got)
	}
}

func TestRunCountersAccumulate(t *testing.T) {
	ResetCounters()
	res, err := runLink(link.RunConfig{
		Kind:    core.KindWTP,
		SDP:     PaperSDPx2,
		Load:    traffic.PaperLoad(0.8),
		Horizon: 5000,
		Seed:    BaseSeed,
	})
	if err != nil {
		t.Fatalf("runLink: %v", err)
	}
	if got := RunCount(); got != 1 {
		t.Errorf("RunCount() = %d, want 1", got)
	}
	if got := PacketCount(); got != res.Departed {
		t.Errorf("PacketCount() = %d, want %d departed", got, res.Departed)
	}
	ResetCounters()
	if RunCount() != 0 || PacketCount() != 0 {
		t.Error("ResetCounters did not zero the counters")
	}
}

// TestRunAveragedDeterministicAcrossParallelism is the runner's core
// contract: the merged statistics are bit-identical no matter how many
// workers execute the seeds.
func TestRunAveragedDeterministicAcrossParallelism(t *testing.T) {
	scale := Scale{Seeds: 4, Horizon: 20000, Warmup: 2000}
	run := func(par int) []float64 {
		SetParallelism(par)
		defer SetParallelism(0)
		delays, err := runAveraged(core.KindWTP, PaperSDPx2, traffic.PaperLoad(0.9), scale)
		if err != nil {
			t.Fatalf("runAveraged(par=%d): %v", par, err)
		}
		out := make([]float64, len(PaperSDPx2))
		for c := range out {
			out[c] = delays.Mean(c)
		}
		return out
	}
	serial := run(1)
	wide := run(8)
	for c := range serial {
		if serial[c] != wide[c] {
			t.Errorf("class %d mean delay differs: serial=%v parallel=%v", c, serial[c], wide[c])
		}
	}
}

func TestRunAveragedReportsSeedInError(t *testing.T) {
	// An invalid config fails every seed; the error must name each seed.
	_, err := runAveraged(core.KindWTP, PaperSDPx2, traffic.PaperLoad(0.9),
		Scale{Seeds: 2, Horizon: -1})
	if err == nil {
		t.Fatal("want error for negative horizon")
	}
	for s := 0; s < 2; s++ {
		want := fmt.Sprintf("seed %d (index %d)", BaseSeed+uint64(s), s)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestForEachRaceStress hammers the work-stealing index from many workers;
// meaningful mostly under -race.
func TestForEachRaceStress(t *testing.T) {
	SetParallelism(16)
	defer SetParallelism(0)
	var mu sync.Mutex
	seen := make(map[int]bool)
	if err := ForEach(500, func(i int) error {
		mu.Lock()
		defer mu.Unlock()
		if seen[i] {
			return fmt.Errorf("index %d dispatched twice", i)
		}
		seen[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 500 {
		t.Fatalf("dispatched %d unique indices, want 500", len(seen))
	}
}
