// Package experiments contains one driver per table and figure of the
// paper's evaluation (Figures 1–5, Table 1, the §3 feasibility check, and
// the §2.1 baseline ablation). The drivers are shared by cmd/pdexp and the
// repository's benchmarks; a Scale selects paper-fidelity or reduced run
// sizes.
package experiments

// Scale selects run sizes for the experiment drivers.
type Scale struct {
	// Seeds is the number of independent runs averaged per point
	// (paper: 10 for Study A, 5 for Study B).
	Seeds int
	// Horizon is the Study A run length in time units (paper: 1e6).
	Horizon float64
	// Warmup is the Study A warm-up period in time units.
	Warmup float64
	// FeasHorizon is the trace length for feasibility FCFS
	// sub-simulations.
	FeasHorizon float64
	// StudyBSeeds, StudyBExperiments and StudyBWarmup configure Table 1
	// (paper: 5 seeds, M=100 experiments, 100 s warm-up).
	StudyBSeeds       int
	StudyBExperiments int
	StudyBWarmup      float64
}

// Full reproduces the paper's run sizes.
var Full = Scale{
	Seeds:             10,
	Horizon:           1e6,
	Warmup:            5e4,
	FeasHorizon:       5e5,
	StudyBSeeds:       5,
	StudyBExperiments: 100,
	StudyBWarmup:      100,
}

// Quick is a reduced scale for interactive runs; shapes match Full with
// more noise.
var Quick = Scale{
	Seeds:             3,
	Horizon:           2e5,
	Warmup:            2e4,
	FeasHorizon:       2e5,
	StudyBSeeds:       2,
	StudyBExperiments: 25,
	StudyBWarmup:      20,
}

// Bench is the smallest scale, used by the testing.B benchmarks so each
// iteration stays sub-second.
var Bench = Scale{
	Seeds:             1,
	Horizon:           5e4,
	Warmup:            5e3,
	FeasHorizon:       5e4,
	StudyBSeeds:       1,
	StudyBExperiments: 5,
	StudyBWarmup:      5,
}

// BaseSeed is the first seed of every sweep; seed k of a sweep is
// BaseSeed+k. Recorded here so all published numbers are reproducible.
const BaseSeed uint64 = 1999

// PaperSDPx2 is the Figure 1-a/2-a/3 SDP set (ratio 2 between classes).
var PaperSDPx2 = []float64{1, 2, 4, 8}

// PaperSDPx4 is the Figure 1-b/2-b SDP set (ratio 4).
var PaperSDPx4 = []float64{1, 4, 16, 64}

// MicroSDP is the 3-class SDP set of Figures 4 and 5.
var MicroSDP = []float64{1, 2, 4}

// Utilizations is the Figure 1 sweep: 70% to 99.9%.
var Utilizations = []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 0.999}
