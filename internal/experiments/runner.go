package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/network"
)

// This file is the shared replication runner: every experiment driver fans
// its independent (seed, load-point, scheduler) runs out over a bounded
// worker pool through ForEach. Parallelism never reaches inside a run —
// each run owns a private engine, RNG streams and packet pool, so results
// are bit-identical to a serial sweep — and reductions always happen in
// job-index order after the pool drains, which keeps every figure and
// table deterministic regardless of worker count.

// parallelism is the worker-pool width; 0 means runtime.GOMAXPROCS(0).
var parallelism atomic.Int64

// SetParallelism bounds the number of simulation runs executing
// concurrently across all experiment drivers. n < 1 restores the default
// (runtime.GOMAXPROCS(0)).
func SetParallelism(n int) {
	if n < 1 {
		n = 0
	}
	parallelism.Store(int64(n))
}

// Parallelism returns the current worker-pool width.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most Parallelism()
// workers and returns the per-index errors joined in index order (nil when
// all succeed). Every index runs regardless of other indices' failures, so
// callers get the complete error picture — fn is responsible for wrapping
// its error with enough context (seed, operating point) to be actionable.
func ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
		return errors.Join(errs...)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Run and packet counters, aggregated across all drivers. cmd/pdexp resets
// them per experiment for its report.json summary; the benchmarks use them
// for the packets/sec metric.
var (
	runCount    atomic.Uint64
	packetCount atomic.Uint64
)

// ResetCounters zeroes the run and packet counters.
func ResetCounters() {
	runCount.Store(0)
	packetCount.Store(0)
}

// RunCount returns the number of simulation runs completed since the last
// ResetCounters.
func RunCount() uint64 { return runCount.Load() }

// PacketCount returns the number of packets departed across all runs since
// the last ResetCounters.
func PacketCount() uint64 { return packetCount.Load() }

// countRun records one completed run serving pkts packets.
func countRun(pkts uint64) {
	runCount.Add(1)
	packetCount.Add(pkts)
}

// runLink is link.Run plus run/packet accounting.
func runLink(cfg link.RunConfig) (*link.Result, error) {
	res, err := link.Run(cfg)
	if err != nil {
		return nil, err
	}
	countRun(res.Departed)
	return res, nil
}

// runLinkWith is link.RunWithScheduler plus run/packet accounting.
func runLinkWith(sched core.Scheduler, cfg link.RunConfig) (*link.Result, error) {
	res, err := link.RunWithScheduler(sched, cfg)
	if err != nil {
		return nil, err
	}
	countRun(res.Departed)
	return res, nil
}

// runNetwork is network.Run plus run/packet accounting (cross-traffic plus
// delivered user packets).
func runNetwork(cfg network.Config) (*network.Result, error) {
	res, err := network.Run(cfg)
	if err != nil {
		return nil, err
	}
	userPackets := uint64(cfg.Experiments) * uint64(len(cfg.SDP)) * uint64(cfg.FlowPackets)
	countRun(res.CrossPackets + userPackets)
	return res, nil
}

// seedErr wraps a run error with the seed that produced it, so one bad
// seed in a fan-out names itself instead of failing the figure opaquely.
func seedErr(index int, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("seed %d (index %d): %w", BaseSeed+uint64(index), index, err)
}
