package experiments

import (
	"fmt"
	"io"

	"pdds/internal/link"
	"pdds/internal/model"
	"pdds/internal/traffic"
)

// FeasibilityPoint is one operating point's Eq. (7) verdict.
type FeasibilityPoint struct {
	Label string
	// SDPRatio identifies which DDP set was checked (2 or 4).
	SDPRatio float64
	Feasible bool
	// WorstSlack is the tightest subset inequality's relative margin.
	WorstSlack float64
	// AggregateDelayPU is the measured FCFS aggregate delay in p-units.
	AggregateDelayPU float64
}

// Feasibility verifies, as §3 prescribes, that the Figure 1 and Figure 2
// operating points use feasible DDPs: every utilization of the Figure 1
// sweep and every Figure 2 distribution is checked against the
// Coffman–Mitrani conditions for both SDP sets.
func Feasibility(scale Scale) ([]FeasibilityPoint, error) {
	type ddpSet struct {
		ratio float64
		sdp   []float64
	}
	sets := []ddpSet{{2, PaperSDPx2}, {4, PaperSDPx4}}

	// Enumerate every operating point up front, then fan the checks out
	// over the shared worker pool; results land in job order, so the table
	// is identical to the former serial sweep.
	type job struct {
		label string
		load  traffic.LoadSpec
		set   ddpSet
	}
	var jobs []job
	for _, rho := range Utilizations {
		for _, set := range sets {
			jobs = append(jobs, job{fmt.Sprintf("fig1 rho=%.3f", rho), traffic.PaperLoad(rho), set})
		}
	}
	for _, fractions := range Fig2Distributions {
		load := traffic.LoadSpec{
			Rho:       Fig2Rho,
			Fractions: fractions,
			Sizes:     traffic.PaperSizes(),
			Alpha:     1.9,
		}
		label := fmt.Sprintf("fig2 %.0f/%.0f/%.0f/%.0f",
			fractions[0]*100, fractions[1]*100, fractions[2]*100, fractions[3]*100)
		for _, set := range sets {
			jobs = append(jobs, job{label, load, set})
		}
	}

	out := make([]FeasibilityPoint, len(jobs))
	err := ForEach(len(jobs), func(i int) error {
		j := jobs[i]
		tr, err := traffic.Record(j.load, link.PaperLinkRate, scale.FeasHorizon, BaseSeed)
		if err != nil {
			return fmt.Errorf("%s sdp_ratio=%.0f: %w", j.label, j.set.ratio, err)
		}
		rep, err := model.CheckDDPs(tr, link.PaperLinkRate, model.DDPsFromSDPs(j.set.sdp))
		if err != nil {
			return fmt.Errorf("%s sdp_ratio=%.0f: %w", j.label, j.set.ratio, err)
		}
		countRun(uint64(len(tr.Arrivals)))
		out[i] = FeasibilityPoint{
			Label:            j.label,
			SDPRatio:         j.set.ratio,
			Feasible:         rep.Feasible(),
			WorstSlack:       rep.WorstSlack(),
			AggregateDelayPU: rep.AggregateDelay / link.PUnit,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFeasibilityTSV renders feasibility points as a TSV table.
func WriteFeasibilityTSV(w io.Writer, points []FeasibilityPoint) error {
	if _, err := fmt.Fprintln(w, "# Section 3: Eq. (7) feasibility of the Figure 1/2 operating points"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "operating_point\tsdp_ratio\tfeasible\tworst_slack\tagg_delay_pu"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.0f\t%v\t%.4f\t%.2f\n",
			p.Label, p.SDPRatio, p.Feasible, p.WorstSlack, p.AggregateDelayPU); err != nil {
			return err
		}
	}
	return nil
}
