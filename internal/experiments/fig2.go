package experiments

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/traffic"
)

// Fig2Distributions are the seven class-load distributions of Figure 2.
// The exact seven tuples are not legible in the available copy of the
// paper (they are printed vertically inside the bars), so this set spans
// the same design space the paper's discussion requires: the uniform
// split, the default 40/30/20/10, its reverse, heavy skew toward the
// lowest and highest class, and two-sided splits. The paper's conclusions
// (WTP insensitive to the distribution; BPR inaccurate when some classes
// carry more load than others, worst for heavily skewed splits) are
// checkable against any such spanning set.
var Fig2Distributions = [][]float64{
	{0.25, 0.25, 0.25, 0.25},
	{0.40, 0.30, 0.20, 0.10},
	{0.10, 0.20, 0.30, 0.40},
	{0.70, 0.10, 0.10, 0.10},
	{0.10, 0.10, 0.10, 0.70},
	{0.40, 0.40, 0.10, 0.10},
	{0.10, 0.10, 0.40, 0.40},
}

// Fig2Rho is the fixed utilization of Figure 2.
const Fig2Rho = 0.95

// Fig2Point is one bar group of Figure 2.
type Fig2Point struct {
	Scheduler core.Kind
	Fractions []float64
	Ratios    []float64
}

// Fig2 measures the successive-class delay ratios for each load
// distribution at 95% utilization (Figure 2-a with PaperSDPx2, 2-b with
// PaperSDPx4).
func Fig2(sdp []float64, scale Scale) ([]Fig2Point, error) {
	var out []Fig2Point
	for _, fractions := range Fig2Distributions {
		load := traffic.LoadSpec{
			Rho:       Fig2Rho,
			Fractions: fractions,
			Sizes:     traffic.PaperSizes(),
			Alpha:     1.9,
		}
		for _, kind := range []core.Kind{core.KindWTP, core.KindBPR} {
			delays, err := runAveraged(kind, sdp, load, scale)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig2Point{
				Scheduler: kind,
				Fractions: fractions,
				Ratios:    delays.SuccessiveRatios(),
			})
		}
	}
	return out, nil
}

// WriteFig2TSV renders Figure 2 points as a TSV table.
func WriteFig2TSV(w io.Writer, points []Fig2Point, targetRatio float64) error {
	if _, err := fmt.Fprintf(w, "# Figure 2: avg-delay ratios across class load distributions at rho=%.2f (desired ratio %.1f)\n", Fig2Rho, targetRatio); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "scheduler\tdistribution\tr12\tr23\tr34"); err != nil {
		return err
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(w, "%s\t%.0f/%.0f/%.0f/%.0f\t%.3f\t%.3f\t%.3f\n",
			p.Scheduler,
			p.Fractions[0]*100, p.Fractions[1]*100, p.Fractions[2]*100, p.Fractions[3]*100,
			p.Ratios[0], p.Ratios[1], p.Ratios[2]); err != nil {
			return err
		}
	}
	return nil
}
