package conformance

import (
	"fmt"
	"io"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

// Checker wraps a core.Scheduler, mirrors its contents in a State, and
// verifies the structural invariants — work conservation, intra-class FIFO
// order, packet conservation and Len/Bytes accounting — on every call. It
// implements core.Scheduler, so it can stand in for the real scheduler
// anywhere (a link, a multi-hop path, a hand-driven test).
type Checker struct {
	inner core.Scheduler
	st    *State
	obs   []Observer
	rec   *recorder

	seen   map[uint64]float64 // packet ID -> enqueue time
	served map[uint64]float64 // packet ID -> dequeue time
}

// NewChecker wraps sched, attaching the given invariant observers.
func NewChecker(sched core.Scheduler, obs ...Observer) *Checker {
	return &Checker{
		inner:  sched,
		st:     newState(sched.NumClasses()),
		obs:    obs,
		rec:    newRecorder(),
		seen:   make(map[uint64]float64),
		served: make(map[uint64]float64),
	}
}

// Name implements core.Scheduler.
func (c *Checker) Name() string { return c.inner.Name() }

// NumClasses implements core.Scheduler.
func (c *Checker) NumClasses() int { return c.inner.NumClasses() }

// Backlogged implements core.Scheduler.
func (c *Checker) Backlogged() bool { return c.inner.Backlogged() }

// Len implements core.Scheduler.
func (c *Checker) Len(i int) int { return c.inner.Len(i) }

// Bytes implements core.Scheduler.
func (c *Checker) Bytes(i int) int64 { return c.inner.Bytes(i) }

// State returns the mirror state (for hand-driven tests).
func (c *Checker) State() *State { return c.st }

// Enqueue implements core.Scheduler.
func (c *Checker) Enqueue(p *core.Packet, now float64) {
	if _, dup := c.seen[p.ID]; dup {
		c.rec.addf("conservation", now, "packet id=%d enqueued twice", p.ID)
	}
	c.seen[p.ID] = now
	c.inner.Enqueue(p, now)
	c.st.push(p)
	c.checkAccounting(now)
	for _, ob := range c.obs {
		ob.OnEnqueue(now, p, c.st)
	}
}

// Dequeue implements core.Scheduler.
func (c *Checker) Dequeue(now float64) *core.Packet {
	p := c.inner.Dequeue(now)
	if p == nil {
		if c.st.total > 0 {
			c.rec.addf("work-conservation", now,
				"Dequeue returned nil with %d packets backlogged", c.st.total)
		}
		return nil
	}
	if c.st.total == 0 {
		c.rec.addf("conservation", now, "packet id=%d served from an empty scheduler", p.ID)
		return p
	}
	if t, dup := c.served[p.ID]; dup {
		c.rec.addf("conservation", now, "packet id=%d served twice (first at t=%g)", p.ID, t)
	}
	if w := now - p.Arrival; w < 0 {
		c.rec.addf("causality", now, "packet id=%d served %g before its arrival", p.ID, -w)
	}

	// Locate p in the mirror: it must be the head of its own class queue.
	pos := -1
	if p.Class >= 0 && p.Class < len(c.st.q) {
		pos = c.st.find(p.Class, p)
	}
	switch {
	case pos < 0:
		c.rec.addf("conservation", now,
			"served packet id=%d class=%d is not in the mirror state", p.ID, p.Class)
	case pos > 0:
		c.rec.addf("fifo", now,
			"class %d served id=%d ahead of %d earlier packets (head id=%d)",
			p.Class, p.ID, pos, c.st.Head(p.Class).ID)
	}

	// Observers see the pre-removal state (what the scheduler chose from).
	for _, ob := range c.obs {
		ob.OnDequeue(now, p, c.st)
	}
	if pos >= 0 {
		c.st.remove(p.Class, pos)
	}
	c.served[p.ID] = now
	c.checkAccounting(now)
	return p
}

// checkAccounting cross-checks the scheduler's own Len/Bytes/Backlogged
// bookkeeping against the mirror after every mutation.
func (c *Checker) checkAccounting(now float64) {
	if got, want := c.inner.Backlogged(), c.st.total > 0; got != want {
		c.rec.addf("accounting", now, "Backlogged()=%v with %d mirrored packets", got, c.st.total)
	}
	for i := 0; i < c.st.NumClasses(); i++ {
		if got, want := c.inner.Len(i), c.st.Len(i); got != want {
			c.rec.addf("accounting", now, "Len(%d)=%d, mirror has %d", i, got, want)
		}
		if got, want := c.inner.Bytes(i), c.st.Bytes(i); got != want {
			c.rec.addf("accounting", now, "Bytes(%d)=%d, mirror has %d", i, got, want)
		}
	}
}

// finish runs end-of-run checks and collects violations from every
// observer.
func (c *Checker) finish() []Violation {
	if got := uint64(len(c.served)); c.st.enqueued != got+uint64(c.st.total) {
		c.rec.addf("conservation", 0,
			"enqueued %d != served %d + backlogged %d", c.st.enqueued, got, c.st.total)
	}
	out := append([]Violation(nil), c.rec.violations...)
	for _, ob := range c.obs {
		ob.Done(c.st)
		out = append(out, ob.Violations()...)
	}
	return out
}

// Violations returns everything found so far (built-in checks plus
// observers), without running the end-of-run checks. Use Result.Violations
// after Run for the complete list.
func (c *Checker) Violations() []Violation {
	out := append([]Violation(nil), c.rec.violations...)
	for _, ob := range c.obs {
		out = append(out, ob.Violations()...)
	}
	return out
}

// Result summarizes one conformance run.
type Result struct {
	// Scheduler and Scenario echo what ran.
	Scheduler string
	Scenario  string
	// Generated counts packets offered to the link; Dequeued counts
	// scheduler service selections; Departed counts completed
	// transmissions (at most one behind Dequeued — the packet on the
	// wire at the horizon); Backlogged is what remained queued.
	Generated  uint64
	Dequeued   uint64
	Departed   uint64
	Backlogged int
	// Utilization is the realized link utilization.
	Utilization float64
	// Violations holds every invariant breach observed (empty = pass).
	Violations []Violation
}

// Ok reports whether the run satisfied every invariant.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// Summary renders a one-line human summary.
func (r *Result) Summary() string {
	return fmt.Sprintf("%s/%s: generated=%d departed=%d backlog=%d util=%.3f violations=%d",
		r.Scheduler, r.Scenario, r.Generated, r.Departed, r.Backlogged, r.Utilization,
		len(r.Violations))
}

// Opts configures a conformance Run beyond the scenario itself.
type Opts struct {
	// Observers are additional invariant checks (the structural checks of
	// Checker always run).
	Observers []Observer
	// CalendarQueue backs the engine with the calendar queue instead of
	// the binary heap; results must be bit-identical (and the golden
	// tests verify they are).
	CalendarQueue bool
	// TraceWriter, if set, receives the compact deterministic event trace
	// of the run (see WriteTrace for the format).
	TraceWriter io.Writer
}

// Run drives a freshly built scheduler of the given kind through the
// scenario on a simulated link, checking invariants on every event. The
// returned Result lists all violations; err reports setup problems only.
func Run(kind core.Kind, sc Scenario, opts Opts) (*Result, error) {
	sched, err := core.New(kind, sc.SDP, sc.linkRate())
	if err != nil {
		return nil, err
	}
	return RunScheduler(sched, sc, opts)
}

// RunScheduler is Run for a pre-built scheduler (e.g. HPD with a custom
// mixing factor).
func RunScheduler(sched core.Scheduler, sc Scenario, opts Opts) (*Result, error) {
	if err := sc.validate(); err != nil {
		return nil, err
	}
	if sched.NumClasses() != len(sc.SDP) {
		return nil, fmt.Errorf("conformance: scheduler has %d classes, scenario %d",
			sched.NumClasses(), len(sc.SDP))
	}

	engine := sim.NewEngine()
	if opts.CalendarQueue {
		engine = sim.NewEngineCalendar()
	}
	checker := NewChecker(sched, opts.Observers...)
	l := link.New(engine, sc.linkRate(), checker)
	// Use the pooled hot path here too, so packet recycling runs under
	// the full invariant checks and the golden traces pin its behavior.
	pool := core.NewPacketPool()
	l.Pool = pool

	var tr *traceRecorder
	if opts.TraceWriter != nil {
		tr = newTraceRecorder(opts.TraceWriter)
		if err := tr.header(sched.Name(), sc); err != nil {
			return nil, err
		}
	}
	l.OnDepart = func(p *core.Packet) {
		if tr != nil {
			tr.depart(p)
		}
	}

	sources, err := sc.Load.Build(sc.linkRate(), sc.Seed)
	if err != nil {
		return nil, err
	}
	for _, s := range sources {
		s.Pool = pool
	}
	var generated uint64
	traffic.StartAll(engine, sources, func(p *core.Packet) {
		generated++
		if tr != nil {
			tr.arrive(engine.Now(), p)
		}
		l.Arrive(p)
	})

	engine.RunUntil(sc.Horizon)

	if tr != nil {
		if err := tr.flush(); err != nil {
			return nil, err
		}
	}
	return &Result{
		Scheduler:   sched.Name(),
		Scenario:    sc.Name,
		Generated:   generated,
		Dequeued:    checker.st.dequeued,
		Departed:    l.Departed(),
		Backlogged:  checker.st.total,
		Utilization: l.Utilization(),
		Violations:  checker.finish(),
	}, nil
}
