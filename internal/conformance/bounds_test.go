package conformance

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/netcalc"
)

// boundedKinds is the capacity-differentiation family with closed-form
// strict service curves — the schedulers the analytic axis certifies.
var boundedKinds = []core.Kind{core.KindDRR, core.KindWFQ, core.KindIWRR}

// TestAnalyticBounds is the third conformance axis: on every seeded
// scenario, each round-robin scheduler's realized worst-case per-class
// sojourn must stay below the network-calculus bound computed from the
// measured arrival envelopes and the discipline's strict service curve.
// The bound/observed gap is logged per class so tightness regressions
// are visible in -v output even while the assertion holds.
func TestAnalyticBounds(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, kind := range boundedKinds {
			t.Run(sc.Name+"/"+string(kind), func(t *testing.T) {
				res, rep, err := Certify(kind, sc)
				if err != nil {
					t.Fatal(err)
				}
				for _, v := range res.Violations {
					t.Errorf("structural: %s", v)
				}
				t.Logf("\n%s", rep.Summary())
				for _, cb := range rep.Classes {
					if math.IsNaN(cb.Bound) {
						t.Errorf("class %d: NaN bound", cb.Class)
					}
					if !cb.Ok() {
						t.Errorf("class %d: observed worst sojourn %.2f exceeds analytic bound %.2f",
							cb.Class, cb.Observed, cb.Bound)
					}
					if cb.Packets > 0 && cb.Observed <= 0 {
						t.Errorf("class %d: served %d packets but observed sojourn %g",
							cb.Class, cb.Packets, cb.Observed)
					}
				}
			})
		}
	}
}

// TestAnalyticBoundsFinite pins that the oracle is not vacuous: on the
// stable scenarios every class must receive a finite bound (the rate-0
// pure-burst envelope guarantees one whenever the service curve rises).
func TestAnalyticBoundsFinite(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, kind := range boundedKinds {
			_, rep, err := Certify(kind, sc)
			if err != nil {
				t.Fatal(err)
			}
			for _, cb := range rep.Classes {
				if cb.Packets > 0 && math.IsInf(cb.Bound, 1) {
					t.Errorf("%s/%s class %d: infinite bound despite %d served packets",
						kind, sc.Name, cb.Class, cb.Packets)
				}
			}
		}
	}
}

// TestUnderstatedBurstFailsCheck demonstrates the oracle has teeth: an
// arrival envelope that understates the real burstiness (a near-empty
// token bucket for the heavily loaded class 0) yields a bound the run
// demonstrably violates, so a wrong analysis cannot slip through as a
// vacuously green check.
func TestUnderstatedBurstFailsCheck(t *testing.T) {
	sc := Scenarios()[0] // heavy-pareto, class 0 carries 40% of the load
	rec := NewDelayRecorder(len(sc.SDP), link.PaperLinkRate)
	res, err := Run(core.KindDRR, sc, Opts{Observers: []Observer{rec}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("structural violations: %v", res.Violations)
	}
	lmin := []float64{40, 40, 40, 40}
	lmax := []float64{1500, 1500, 1500, 1500}
	family, err := ServiceCurve(core.KindDRR, sc.SDP, link.PaperLinkRate, lmin, lmax, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Claim class 0 sends a single minimum packet per long while — a
	// gross understatement of the real Pareto load.
	understated := netcalc.TokenBucket(40, 0.001)
	bound := netcalc.HorizontalDeviation(understated, family)
	cb := ClassBound{Class: 0, Bound: bound, Observed: rec.WorstSojourn(0), Packets: 1}
	if cb.Ok() {
		t.Fatalf("understated burst still passed: bound %.2f >= observed %.2f "+
			"(the oracle would miss a wrong envelope)", bound, cb.Observed)
	}
	if cb.Gap() >= 0 {
		t.Fatalf("gap %.2f not negative for a violated bound", cb.Gap())
	}
}

// TestServiceCurveRejectsUnknownKind keeps the analytic axis honest
// about its scope: disciplines without a closed-form strict service
// curve must error, not return a fabricated guarantee.
func TestServiceCurveRejectsUnknownKind(t *testing.T) {
	for _, kind := range []core.Kind{core.KindWTP, core.KindBPR, core.KindFCFS} {
		if _, err := ServiceCurve(kind, []float64{1, 2}, 10, []float64{40, 40}, []float64{1500, 1500}, 0); err == nil {
			t.Errorf("ServiceCurve(%s) returned a curve for an unsupported discipline", kind)
		}
	}
}

// TestDelayRecorderObserverContract exercises the recorder hooks
// directly: arrival traces accumulate per class, sojourns track the
// worst case, and silent classes report conservative packet sizes.
func TestDelayRecorderObserverContract(t *testing.T) {
	rec := NewDelayRecorder(2, 10)
	st := newState(2)
	p1 := &core.Packet{ID: 1, Class: 0, Size: 100, Arrival: 0}
	p2 := &core.Packet{ID: 2, Class: 0, Size: 200, Arrival: 1}
	rec.OnEnqueue(0, p1, st)
	rec.OnEnqueue(1, p2, st)
	rec.OnDequeue(5, p1, st)  // sojourn 5 + 100/10 = 15
	rec.OnDequeue(20, p2, st) // sojourn 19 + 200/10 = 39
	rec.Done(st)
	if got := rec.WorstSojourn(0); got != 39 {
		t.Errorf("worst sojourn %g, want 39", got)
	}
	if got := len(rec.Arrivals(0)); got != 2 {
		t.Errorf("%d recorded arrivals, want 2", got)
	}
	if rec.Violations() != nil {
		t.Error("pure recorder reported violations")
	}
	lmin, lmax := rec.packetSizes()
	if lmin[0] != 100 || lmax[0] != 200 {
		t.Errorf("measured sizes (%g, %g), want (100, 200)", lmin[0], lmax[0])
	}
	if lmin[1] != 1 || lmax[1] != 1500 {
		t.Errorf("silent-class defaults (%g, %g), want (1, 1500)", lmin[1], lmax[1])
	}
}
