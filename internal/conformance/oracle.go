package conformance

import (
	"pdds/internal/core"
)

// baseObserver supplies the violation plumbing shared by the oracles.
type baseObserver struct {
	name string
	rec  *recorder
}

func newBaseObserver(name string) baseObserver {
	return baseObserver{name: name, rec: newRecorder()}
}

// Name implements Observer.
func (b *baseObserver) Name() string { return b.name }

// Violations implements Observer.
func (b *baseObserver) Violations() []Violation { return b.rec.violations }

// WTPOracle verifies §4.2's selection rule against a brute-force scan: at
// every dequeue instant t, the served packet must carry the maximum
// priority p_i(t) = w_i(t)·s_i over EVERY queued packet (not just the
// per-class heads the O(N) implementation inspects), with ties broken in
// favor of the higher class and, within a class, the earlier arrival. The
// oracle computes priorities with the same expression as the
// implementation, so agreement is exact — no tolerance.
type WTPOracle struct {
	baseObserver
	sdp []float64
}

// NewWTPOracle returns the oracle for a WTP scheduler with the given SDPs.
func NewWTPOracle(sdp []float64) *WTPOracle {
	return &WTPOracle{baseObserver: newBaseObserver("wtp-oracle"), sdp: append([]float64(nil), sdp...)}
}

// OnEnqueue implements Observer.
func (o *WTPOracle) OnEnqueue(now float64, p *core.Packet, st *State) {}

// OnDequeue implements Observer.
func (o *WTPOracle) OnDequeue(now float64, p *core.Packet, st *State) {
	bestClass, bestPos := -1, -1
	var bestPri float64
	for i := 0; i < st.NumClasses(); i++ {
		for j := 0; j < st.Len(i); j++ {
			q := st.At(i, j)
			pri := (now - q.Arrival) * o.sdp[i]
			better := bestClass == -1 ||
				pri > bestPri ||
				(pri == bestPri && (i > bestClass || (i == bestClass && j < bestPos)))
			if better {
				bestClass, bestPos, bestPri = i, j, pri
			}
		}
	}
	if bestClass == -1 {
		return // harness already reported the conservation breach
	}
	want := st.At(bestClass, bestPos)
	if p != want {
		gotPri := (now - p.Arrival) * o.sdp[p.Class]
		o.rec.addf(o.name, now,
			"served id=%d class=%d pri=%g, oracle wants id=%d class=%d pri=%g",
			p.ID, p.Class, gotPri, want.ID, want.Class, bestPri)
	}
}

// Done implements Observer.
func (o *WTPOracle) Done(st *State) {}

// BPRFluidObserver checks Appendix 3's claim that the packetized BPR
// service approximates the fluid Backlog-Proportional Rate server of §4.1:
// it drives a core.FluidBPR reference with the same arrival work and
// compares, at every dequeue epoch, the cumulative bytes each class has
// been granted by the packetized scheduler against the work the fluid
// server has drained from that class.
//
// The two cannot agree exactly — the packetized server grants service in
// whole packets at departure epochs and holds the fluid rates constant
// between epochs (the Appendix-3 discretization), while the reference
// serves all backlogged classes simultaneously — so the check applies
// Tolerance: the largest per-class divergence ever observed must stay
// within Tolerance bytes. DefaultTolerance admits the discretization error
// measured across the standard scenarios (a small multiple of the largest
// packet) with headroom, yet fails immediately if the packetized rates stop
// tracking backlogs (e.g. serving classes round-robin diverges by tens of
// kilobytes within one busy period).
type BPRFluidObserver struct {
	baseObserver
	fluid *core.FluidBPR
	// Tolerance is the maximum tolerated per-class |packetized − fluid|
	// cumulative service divergence, in bytes.
	Tolerance float64
	// DrainSteps is the RK4 substep count per inter-event drain.
	DrainSteps int

	injected []float64 // per-class bytes offered
	granted  []float64 // per-class bytes granted by the packetized scheduler
	maxDiv   float64   // worst divergence seen, bytes
	divTime  float64   // when it occurred
	divClass int
}

// DefaultBPRTolerance is the per-class service divergence allowed between
// packetized and fluid BPR, in bytes. The paper's trimodal size mix tops
// out at 1500-byte packets; across the standard scenarios the measured
// divergence stays under ~3 packets, and 8·1500 gives deterministic
// headroom without masking real regressions.
const DefaultBPRTolerance = 8 * 1500

// NewBPRFluidObserver returns the fluid-reference check for a packetized
// BPR scheduler with the given SDPs on a link of the given rate.
func NewBPRFluidObserver(sdp []float64, rate float64) *BPRFluidObserver {
	return &BPRFluidObserver{
		baseObserver: newBaseObserver("bpr-fluid"),
		fluid:        core.NewFluidBPR(sdp, rate),
		Tolerance:    DefaultBPRTolerance,
		DrainSteps:   4,
		injected:     make([]float64, len(sdp)),
		granted:      make([]float64, len(sdp)),
		divClass:     -1,
	}
}

func (o *BPRFluidObserver) drainTo(now float64) {
	if dt := now - o.fluid.Now(); dt > 0 {
		o.fluid.Drain(dt, o.DrainSteps)
	}
}

// OnEnqueue implements Observer.
func (o *BPRFluidObserver) OnEnqueue(now float64, p *core.Packet, st *State) {
	o.drainTo(now)
	o.fluid.Add(p.Class, float64(p.Size))
	o.injected[p.Class] += float64(p.Size)
}

// OnDequeue implements Observer.
func (o *BPRFluidObserver) OnDequeue(now float64, p *core.Packet, st *State) {
	o.drainTo(now)
	o.granted[p.Class] += float64(p.Size)
	for i := range o.granted {
		fluidServed := o.injected[i] - o.fluid.Backlog(i)
		div := o.granted[i] - fluidServed
		if div < 0 {
			div = -div
		}
		if div > o.maxDiv {
			o.maxDiv, o.divTime, o.divClass = div, now, i
		}
	}
}

// Done implements Observer.
func (o *BPRFluidObserver) Done(st *State) {
	if o.maxDiv > o.Tolerance {
		o.rec.addf(o.name, o.divTime,
			"class %d packetized service diverged %.0f bytes from the fluid reference (tolerance %.0f)",
			o.divClass, o.maxDiv, o.Tolerance)
	}
}

// MaxDivergence returns the worst per-class |packetized − fluid| cumulative
// service gap observed, in bytes.
func (o *BPRFluidObserver) MaxDivergence() float64 { return o.maxDiv }
