// Package conformance is a reusable invariant-checking harness for the
// packet schedulers in internal/core. It exists so that every scheduler —
// WTP, BPR, FCFS, strict, WFQ/SCFQ, DRR, additive, PAD and HPD — can be
// driven through the same seeded traffic scenarios while a set of observers
// verifies, on every enqueue and dequeue event, the properties the paper's
// analysis takes for granted:
//
//   - Work conservation: the server never idles while any class is
//     backlogged (the premise of the conservation law, Eq. 5).
//   - Intra-class FIFO order: within a class, packets depart in arrival
//     order (assumed throughout §3-§4).
//   - Packet conservation: no packet is lost, invented, or served twice,
//     and the scheduler's own Len/Bytes accounting matches an
//     independently maintained mirror of its contents.
//   - WTP selection: each dequeue serves the maximum normalized-waiting-
//     time packet (§4.2), verified against a brute-force scan of every
//     queued packet (see WTPOracle).
//   - BPR packetization: the packetized Appendix-3 service tracks the
//     fluid Backlog-Proportional Rate reference of §4.1 within a stated
//     tolerance (see BPRFluidObserver).
//
// The harness also records compact deterministic event traces (see
// WriteTrace) that are committed as golden files and compared byte-for-byte
// in CI, turning figure-driving simulation runs into regression tests; the
// same traces prove the binary-heap and calendar-queue event structures of
// internal/sim order events identically.
//
// The structural invariants mirror the per-packet service bounds derived in
// the round-robin analysis literature (Tabatabaee et al., "Interleaved
// Weighted Round-Robin: A Network Calculus Analysis"; Boyer et al.'s DRR
// service curves): each is a property checkable on every event of a single
// run, which is what lets a hot-path rewrite prove it changed speed, not
// semantics.
package conformance

import (
	"fmt"

	"pdds/internal/core"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Observer names the check that fired (e.g. "fifo", "wtp-oracle").
	Observer string
	// Time is the simulation time of the offending event.
	Time float64
	// Msg describes the breach.
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%g: %s", v.Observer, v.Time, v.Msg)
}

// maxViolationsPerCheck caps recorded violations per named check so a
// systematically broken scheduler reports a readable sample, not millions
// of lines.
const maxViolationsPerCheck = 16

// recorder accumulates violations with per-check capping.
type recorder struct {
	violations []Violation
	perCheck   map[string]int
	suppressed int
}

func newRecorder() *recorder {
	return &recorder{perCheck: make(map[string]int)}
}

func (r *recorder) addf(check string, now float64, format string, args ...any) {
	if r.perCheck[check] >= maxViolationsPerCheck {
		r.suppressed++
		return
	}
	r.perCheck[check]++
	r.violations = append(r.violations, Violation{
		Observer: check,
		Time:     now,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Observer checks scheduler invariants as the harness replays a scenario.
// Implementations record violations internally and report them via
// Violations once the run finishes.
//
// The *State passed to each hook is the harness's independent mirror of the
// scheduler contents: on OnEnqueue it already includes p, on OnDequeue it
// still includes p (the state the scheduler chose from). Observers must not
// retain it across calls.
type Observer interface {
	// Name identifies the observer in violation reports.
	Name() string
	// OnEnqueue fires after packet p entered the scheduler at time now.
	OnEnqueue(now float64, p *core.Packet, st *State)
	// OnDequeue fires when the scheduler selected p at time now, before
	// p is removed from the mirror state.
	OnDequeue(now float64, p *core.Packet, st *State)
	// Done fires once at the end of the run with the final state.
	Done(st *State)
	// Violations returns everything the observer found.
	Violations() []Violation
}

// State is a read-only mirror of the scheduler's per-class FIFO contents,
// maintained by the harness independently of the scheduler under test so
// checks never trust the implementation they are checking.
type State struct {
	q        []shadowQueue
	bytes    []int64
	total    int
	enqueued uint64
	dequeued uint64
}

// shadowQueue is a minimal FIFO of packets (head-indexed slice).
type shadowQueue struct {
	buf  []*core.Packet
	head int
}

func (s *shadowQueue) len() int { return len(s.buf) - s.head }

func (s *shadowQueue) push(p *core.Packet) { s.buf = append(s.buf, p) }

func (s *shadowQueue) at(i int) *core.Packet { return s.buf[s.head+i] }

func (s *shadowQueue) pop() *core.Packet {
	p := s.buf[s.head]
	s.buf[s.head] = nil
	s.head++
	if s.head == len(s.buf) {
		s.buf = s.buf[:0]
		s.head = 0
	}
	return p
}

// removeAt deletes the i-th packet from the head (used only to keep the
// mirror coherent after a FIFO violation was already reported).
func (s *shadowQueue) removeAt(i int) {
	idx := s.head + i
	copy(s.buf[idx:], s.buf[idx+1:])
	s.buf = s.buf[:len(s.buf)-1]
}

func newState(n int) *State {
	return &State{q: make([]shadowQueue, n), bytes: make([]int64, n)}
}

// NumClasses returns the class count.
func (st *State) NumClasses() int { return len(st.q) }

// Len returns the mirrored packet count of class i.
func (st *State) Len(i int) int { return st.q[i].len() }

// Total returns the mirrored packet count over all classes.
func (st *State) Total() int { return st.total }

// Bytes returns the mirrored byte backlog of class i.
func (st *State) Bytes(i int) int64 { return st.bytes[i] }

// Head returns the oldest queued packet of class i, or nil if none.
func (st *State) Head(i int) *core.Packet {
	if st.q[i].len() == 0 {
		return nil
	}
	return st.q[i].at(0)
}

// At returns the j-th packet from the head of class i (0 = head).
func (st *State) At(i, j int) *core.Packet { return st.q[i].at(j) }

// Enqueued returns the total packets that entered the scheduler.
func (st *State) Enqueued() uint64 { return st.enqueued }

// Dequeued returns the total packets the scheduler served.
func (st *State) Dequeued() uint64 { return st.dequeued }

func (st *State) push(p *core.Packet) {
	st.q[p.Class].push(p)
	st.bytes[p.Class] += p.Size
	st.total++
	st.enqueued++
}

// remove deletes the j-th packet of class i from the mirror.
func (st *State) remove(i, j int) {
	p := st.q[i].at(j)
	if j == 0 {
		st.q[i].pop()
	} else {
		st.q[i].removeAt(j)
	}
	st.bytes[i] -= p.Size
	st.total--
	st.dequeued++
}

// find locates packet p in class i's mirror queue, returning its position
// from the head or -1.
func (st *State) find(i int, p *core.Packet) int {
	for j := 0; j < st.q[i].len(); j++ {
		if st.q[i].at(j) == p {
			return j
		}
	}
	return -1
}
