package conformance

import (
	"fmt"

	"pdds/internal/link"
	"pdds/internal/traffic"
)

// Scenario is one seeded traffic workload a scheduler is run through. All
// randomness derives from Seed, so a scenario identifies a bit-exact packet
// arrival sequence.
type Scenario struct {
	// Name identifies the scenario in results and golden-file names.
	Name string
	// SDP are the scheduler differentiation parameters; their length sets
	// the class count.
	SDP []float64
	// Load is the offered workload (utilization, class split,
	// interarrival and size distributions).
	Load traffic.LoadSpec
	// Horizon is the simulated duration in time units.
	Horizon float64
	// Seed drives all randomness.
	Seed uint64
}

func (s Scenario) linkRate() float64 { return link.PaperLinkRate }

func (s Scenario) validate() error {
	if s.Name == "" {
		return fmt.Errorf("conformance: scenario has no name")
	}
	if len(s.SDP) == 0 {
		return fmt.Errorf("conformance: scenario %q has no SDPs", s.Name)
	}
	if len(s.SDP) != len(s.Load.Fractions) {
		return fmt.Errorf("conformance: scenario %q: %d SDPs but %d class fractions",
			s.Name, len(s.SDP), len(s.Load.Fractions))
	}
	if !(s.Horizon > 0) {
		return fmt.Errorf("conformance: scenario %q: horizon %g must be > 0", s.Name, s.Horizon)
	}
	return s.Load.Validate()
}

// Scenarios returns the standard conformance workloads. Every scheduler
// must satisfy every invariant on all of them:
//
//   - heavy-pareto: the paper's Study A operating point — bursty Pareto
//     arrivals at rho 0.95 with the default 40/30/20/10 class split.
//   - moderate-poisson: smooth arrivals at rho 0.70 with equal class
//     loads, probing the regime where WTP deviates from the proportional
//     model but must still satisfy the structural invariants.
//   - skewed-heavy: rho 0.97 with the load concentrated in the high
//     classes (10/20/30/40), stressing tie-breaking and starvation
//     resistance of the low classes.
//   - two-class-overload: a two-class link offered rho 1.05, so the
//     backlog grows without bound and the server must stay continuously
//     busy and strictly work-conserving.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:    "heavy-pareto",
			SDP:     []float64{1, 2, 4, 8},
			Load:    traffic.PaperLoad(0.95),
			Horizon: 20000,
			Seed:    1,
		},
		{
			Name: "moderate-poisson",
			SDP:  []float64{1, 2, 4, 8},
			Load: traffic.LoadSpec{
				Rho:       0.70,
				Fractions: []float64{0.25, 0.25, 0.25, 0.25},
				Sizes:     traffic.PaperSizes(),
				Poisson:   true,
			},
			Horizon: 20000,
			Seed:    2,
		},
		{
			Name: "skewed-heavy",
			SDP:  []float64{1, 2, 4, 8},
			Load: traffic.LoadSpec{
				Rho:       0.97,
				Fractions: []float64{0.10, 0.20, 0.30, 0.40},
				Sizes:     traffic.PaperSizes(),
				Alpha:     1.9,
			},
			Horizon: 20000,
			Seed:    3,
		},
		{
			Name: "two-class-overload",
			SDP:  []float64{1, 8},
			Load: traffic.LoadSpec{
				Rho:       1.05,
				Fractions: []float64{0.50, 0.50},
				Sizes:     traffic.PaperSizes(),
				Poisson:   true,
			},
			Horizon: 15000,
			Seed:    4,
		},
	}
}

// GoldenScenario is the small fixed workload whose event traces are
// committed under testdata/golden and compared byte-for-byte in CI. Keep it
// stable: changing it (or any scheduler's behaviour) requires regenerating
// the golden files with `go test ./internal/conformance -run Golden -update`.
func GoldenScenario() Scenario {
	return Scenario{
		Name:    "golden",
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 3000,
		Seed:    7,
	}
}
