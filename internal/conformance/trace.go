package conformance

import (
	"bufio"
	"io"
	"strconv"

	"pdds/internal/core"
)

// traceRecorder writes the compact, line-oriented, bit-stable record of
// every link event in a run:
//
//	# pdds conformance trace v1 sched=WTP scenario=golden seed=7 classes=4
//	A 57.234378123098701 1099511627777 0 40
//	D 68.434378123098699 1099511627777 0 11.199999999999999
//
// `A <time> <id> <class> <size>` records a packet arriving at the link;
// `D <time> <id> <class> <wait>` records its transmission completing after
// queueing for <wait> time units. Floats are formatted with
// strconv.FormatFloat(v, 'g', 17, 64), which round-trips float64 exactly,
// so two runs produce identical traces iff every scheduling decision and
// every float computation matched bit-for-bit. Golden copies of these
// traces live under testdata/golden and are regenerated with the test
// flag -update.
type traceRecorder struct {
	w   *bufio.Writer
	err error
}

func newTraceRecorder(w io.Writer) *traceRecorder {
	return &traceRecorder{w: bufio.NewWriter(w)}
}

func g17(v float64) string { return strconv.FormatFloat(v, 'g', 17, 64) }

func (t *traceRecorder) line(parts ...string) {
	if t.err != nil {
		return
	}
	for i, s := range parts {
		if i > 0 {
			if t.err = t.w.WriteByte(' '); t.err != nil {
				return
			}
		}
		if _, t.err = t.w.WriteString(s); t.err != nil {
			return
		}
	}
	t.err = t.w.WriteByte('\n')
}

func (t *traceRecorder) header(sched string, sc Scenario) error {
	t.line("# pdds conformance trace v1 sched="+sched,
		"scenario="+sc.Name,
		"seed="+strconv.FormatUint(sc.Seed, 10),
		"classes="+strconv.Itoa(len(sc.SDP)))
	return t.err
}

func (t *traceRecorder) arrive(now float64, p *core.Packet) {
	t.line("A", g17(now),
		strconv.FormatUint(p.ID, 10),
		strconv.Itoa(p.Class),
		strconv.FormatInt(p.Size, 10))
}

func (t *traceRecorder) depart(p *core.Packet) {
	t.line("D", g17(p.Departure),
		strconv.FormatUint(p.ID, 10),
		strconv.Itoa(p.Class),
		g17(p.Wait()))
}

func (t *traceRecorder) flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}
