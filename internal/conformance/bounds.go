package conformance

import (
	"fmt"
	"math"
	"strings"

	"pdds/internal/core"
	"pdds/internal/netcalc"
)

// This file is the third verification axis: analytic delay-bound
// certification. The structural observers check what a scheduler did on
// one run; the golden traces pin that it keeps doing exactly that; the
// bounds oracle asserts the run stayed inside what network calculus
// says the discipline could ever do. It applies to the round-robin
// capacity-differentiation family (DRR, WFQ/SCFQ, IWRR), whose strict
// service curves are known in closed form (internal/netcalc).
//
// Per class the oracle needs an arrival curve and a service curve. The
// seeded scenarios use Pareto/Poisson sources whose spec fixes the
// long-run rate but bounds no finite burst, so the arrival envelope is
// the tightest token bucket over the *realized* arrival trace
// (netcalc.BucketBurst), swept over candidate rates around the spec
// rate (netcalc.BestBucketBound). The service curve is the maximum of
// the discipline's own strict service curve and the scheduler-agnostic
// blind-multiplexing residual fed with the measured cross-class
// envelopes — both are strict service curves for the class, so their
// maximum is too. The horizontal deviation of the pair then bounds
// every packet's sojourn (queueing wait plus transmission), which is
// exactly what DelayRecorder measures.

// ClassBound is the certification outcome for one class of one run.
type ClassBound struct {
	Class    int
	Bound    float64 // analytic worst-case sojourn (+Inf = no guarantee)
	Observed float64 // realized worst-case sojourn
	Packets  uint64  // packets the class got served
}

// Gap returns the slack Bound − Observed; negative means the run
// violated the analytic bound (a scheduler or analysis bug).
func (cb ClassBound) Gap() float64 { return cb.Bound - cb.Observed }

// Ok reports whether the observation respects the bound.
func (cb ClassBound) Ok() bool { return cb.Observed <= cb.Bound }

// BoundReport collects the per-class certification of one run.
type BoundReport struct {
	Scheduler string
	Scenario  string
	Classes   []ClassBound
}

// Ok reports whether every class respected its analytic bound.
func (r *BoundReport) Ok() bool {
	for _, cb := range r.Classes {
		if !cb.Ok() {
			return false
		}
	}
	return true
}

// Summary renders one line per class: bound, observation, gap.
func (r *BoundReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s/%s analytic delay bounds:\n", r.Scheduler, r.Scenario)
	for _, cb := range r.Classes {
		status := "ok"
		if !cb.Ok() {
			status = "VIOLATED"
		}
		fmt.Fprintf(&b, "  class %d: bound=%8.1f observed=%8.1f gap=%8.1f pkts=%-6d %s\n",
			cb.Class, cb.Bound, cb.Observed, cb.Gap(), cb.Packets, status)
	}
	return b.String()
}

// DelayRecorder is an Observer that collects, per class, the arrival
// trace (for envelope fitting) and the worst realized sojourn time —
// queueing wait plus transmission time, i.e. arrival to departure,
// matching what a network-calculus virtual-delay bound limits.
type DelayRecorder struct {
	rate     float64
	arrivals [][]netcalc.ArrivalEvent
	worst    []float64
	counts   []uint64
	minSize  []float64
	maxSize  []float64
}

// NewDelayRecorder returns a recorder for n classes on a link of the
// given rate (bytes per time unit).
func NewDelayRecorder(n int, rate float64) *DelayRecorder {
	r := &DelayRecorder{
		rate:     rate,
		arrivals: make([][]netcalc.ArrivalEvent, n),
		worst:    make([]float64, n),
		counts:   make([]uint64, n),
		minSize:  make([]float64, n),
		maxSize:  make([]float64, n),
	}
	for i := range r.minSize {
		r.minSize[i] = math.Inf(1)
	}
	return r
}

// Name implements Observer.
func (r *DelayRecorder) Name() string { return "delay-recorder" }

// OnEnqueue implements Observer.
func (r *DelayRecorder) OnEnqueue(now float64, p *core.Packet, st *State) {
	size := float64(p.Size)
	r.arrivals[p.Class] = append(r.arrivals[p.Class], netcalc.ArrivalEvent{Time: now, Bytes: size})
	if size < r.minSize[p.Class] {
		r.minSize[p.Class] = size
	}
	if size > r.maxSize[p.Class] {
		r.maxSize[p.Class] = size
	}
}

// OnDequeue implements Observer.
func (r *DelayRecorder) OnDequeue(now float64, p *core.Packet, st *State) {
	if sojourn := (now - p.Arrival) + float64(p.Size)/r.rate; sojourn > r.worst[p.Class] {
		r.worst[p.Class] = sojourn
	}
	r.counts[p.Class]++
}

// Done implements Observer.
func (r *DelayRecorder) Done(st *State) {}

// Violations implements Observer; the recorder only measures, the bound
// check happens in Report.
func (r *DelayRecorder) Violations() []Violation { return nil }

// WorstSojourn returns the largest observed sojourn of class i.
func (r *DelayRecorder) WorstSojourn(i int) float64 { return r.worst[i] }

// Arrivals returns the recorded arrival trace of class i.
func (r *DelayRecorder) Arrivals(i int) []netcalc.ArrivalEvent { return r.arrivals[i] }

// packetSizes returns safe per-class minimum and maximum packet sizes:
// measured where the class sent traffic, worst-case defaults (tiny own
// packets, full-MTU competitors) where it did not, so the service
// curves stay conservative for silent classes.
func (r *DelayRecorder) packetSizes() (lmin, lmax []float64) {
	const mtu = 1500
	lmin = make([]float64, len(r.minSize))
	lmax = make([]float64, len(r.maxSize))
	for i := range lmin {
		lmin[i], lmax[i] = r.minSize[i], r.maxSize[i]
		if math.IsInf(lmin[i], 1) {
			lmin[i], lmax[i] = 1, mtu
		}
	}
	return lmin, lmax
}

// ServiceCurve returns the strict per-class service curve of the given
// round-robin discipline, mirroring exactly how core.New derives its
// parameters from the SDPs (DRR quanta: baseQuantum·w_i/w_0; WFQ: SCFQ
// with the SDPs as weights; IWRR: core.IntWeights). Kinds outside the
// capacity-differentiation family have no closed-form strict service
// curve here and return an error.
func ServiceCurve(kind core.Kind, sdp []float64, rate float64, lmin, lmax []float64, class int) (netcalc.Curve, error) {
	switch kind {
	case core.KindDRR:
		quanta := make([]float64, len(sdp))
		for i, w := range sdp {
			quanta[i] = 1500 * w / sdp[0] // keep in lockstep with core.NewDRR
		}
		return netcalc.DRRService(rate, quanta, lmax, class), nil
	case core.KindWFQ:
		return netcalc.SCFQService(rate, sdp, lmax, class), nil
	case core.KindIWRR:
		return netcalc.IWRRService(rate, core.IntWeights(sdp), lmin, lmax, class, 2), nil
	default:
		return netcalc.Curve{}, fmt.Errorf("conformance: no service curve for scheduler %q", kind)
	}
}

// Report computes the per-class analytic bounds for a finished run and
// compares them with the observations. The service curve for each class
// is Max(discipline curve, blind-multiplexing residual); the arrival
// envelope is the best measured token bucket against that curve.
func (r *DelayRecorder) Report(kind core.Kind, sdp []float64, scenario string) (*BoundReport, error) {
	n := len(r.arrivals)
	lmin, lmax := r.packetSizes()
	rep := &BoundReport{Scheduler: string(kind), Scenario: scenario}
	for i := 0; i < n; i++ {
		family, err := ServiceCurve(kind, sdp, r.rate, lmin, lmax, i)
		if err != nil {
			return nil, err
		}
		beta := netcalc.Max(family, r.residual(i))
		bound, _ := netcalc.BestBucketBound(r.arrivals[i], beta)
		rep.Classes = append(rep.Classes, ClassBound{
			Class:    i,
			Bound:    bound,
			Observed: r.worst[i],
			Packets:  r.counts[i],
		})
	}
	return rep, nil
}

// residual builds the scheduler-agnostic residual service curve for
// class i: link rate minus the measured envelopes of every other class.
// It holds for any work-conserving discipline, so it can only tighten
// the family-specific curve (often decisively, when the cross load is
// modest).
func (r *DelayRecorder) residual(i int) netcalc.Curve {
	cross := make([]netcalc.Curve, 0, len(r.arrivals)-1)
	for j, events := range r.arrivals {
		if j == i {
			continue
		}
		cross = append(cross, measuredEnvelope(events))
	}
	return netcalc.Residual(r.rate, cross...)
}

// measuredEnvelope fits a token bucket to a class's realized arrivals
// at their long-run average rate — the rate that keeps the burst term
// finite and small for well-behaved sources.
func measuredEnvelope(events []netcalc.ArrivalEvent) netcalc.Curve {
	if len(events) == 0 {
		return netcalc.Zero()
	}
	var total float64
	for _, e := range events {
		total += e.Bytes
	}
	rate := 0.0
	if span := events[len(events)-1].Time - events[0].Time; span > 0 {
		rate = total / span
	}
	return netcalc.TokenBucket(netcalc.BucketBurst(events, rate), rate)
}

// Certify runs the scheduler through the scenario with a DelayRecorder
// attached and returns both the structural-invariant result and the
// analytic bound report. It is the entry point used by the certify test
// and the `make certify` target.
func Certify(kind core.Kind, sc Scenario) (*Result, *BoundReport, error) {
	rec := NewDelayRecorder(len(sc.SDP), sc.linkRate())
	res, err := Run(kind, sc, Opts{Observers: []Observer{rec}})
	if err != nil {
		return nil, nil, err
	}
	rep, err := rec.Report(kind, sc.SDP, sc.Name)
	if err != nil {
		return nil, nil, err
	}
	return res, rep, nil
}
