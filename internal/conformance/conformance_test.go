package conformance

import (
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
)

// TestConformanceAllSchedulers drives every scheduler kind through every
// standard scenario with the structural invariants checked on each event,
// plus the brute-force selection oracle for WTP and the fluid reference for
// BPR.
func TestConformanceAllSchedulers(t *testing.T) {
	for _, kind := range core.Kinds() {
		for _, sc := range Scenarios() {
			t.Run(string(kind)+"/"+sc.Name, func(t *testing.T) {
				var obs []Observer
				switch kind {
				case core.KindWTP:
					obs = append(obs, NewWTPOracle(sc.SDP))
				case core.KindBPR:
					obs = append(obs, NewBPRFluidObserver(sc.SDP, link.PaperLinkRate))
				}
				res, err := Run(kind, sc, Opts{Observers: obs})
				if err != nil {
					t.Fatal(err)
				}
				if res.Generated == 0 || res.Departed == 0 {
					t.Fatalf("degenerate run: %s", res.Summary())
				}
				if res.Dequeued+uint64(res.Backlogged) != res.Generated {
					t.Errorf("packets leaked: %s", res.Summary())
				}
				if inFlight := res.Dequeued - res.Departed; inFlight > 1 {
					t.Errorf("%d packets dequeued but never transmitted: %s", inFlight, res.Summary())
				}
				for _, v := range res.Violations {
					t.Errorf("%s", v)
				}
			})
		}
	}
}

// TestBPRTracksFluidUnderHeavyLoad pins the acceptance criterion directly:
// at >= 0.9 utilization the packetized BPR service stays within the stated
// tolerance of the fluid Proposition-1 reference.
func TestBPRTracksFluidUnderHeavyLoad(t *testing.T) {
	for _, sc := range Scenarios() {
		if sc.Load.Rho < 0.9 {
			continue
		}
		ob := NewBPRFluidObserver(sc.SDP, link.PaperLinkRate)
		res, err := Run(core.KindBPR, sc, Opts{Observers: []Observer{ob}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Utilization < 0.85 {
			t.Errorf("%s: utilization %.3f too low to exercise the comparison", sc.Name, res.Utilization)
		}
		for _, v := range res.Violations {
			t.Errorf("%s: %s", sc.Name, v)
		}
		if ob.MaxDivergence() == 0 {
			t.Errorf("%s: zero divergence — fluid reference apparently not driven", sc.Name)
		}
		t.Logf("%s: max packetized-vs-fluid divergence %.0f bytes (tolerance %.0f)",
			sc.Name, ob.MaxDivergence(), ob.Tolerance)
	}
}

// brokenLIFO violates intra-class FIFO order and work conservation on
// purpose: the harness must catch a scheduler like this, or the whole
// package is vacuous.
type brokenLIFO struct {
	n     int
	q     [][]*core.Packet
	total int
	skip  bool
}

func (s *brokenLIFO) Name() string     { return "brokenLIFO" }
func (s *brokenLIFO) NumClasses() int  { return s.n }
func (s *brokenLIFO) Backlogged() bool { return s.total > 0 }
func (s *brokenLIFO) Len(i int) int    { return len(s.q[i]) }
func (s *brokenLIFO) Bytes(i int) int64 {
	var b int64
	for _, p := range s.q[i] {
		b += p.Size
	}
	return b
}

func (s *brokenLIFO) Enqueue(p *core.Packet, now float64) {
	s.q[p.Class] = append(s.q[p.Class], p)
	s.total++
}

func (s *brokenLIFO) Dequeue(now float64) *core.Packet {
	// Idle every other call despite backlog (work-conservation breach)...
	s.skip = !s.skip
	if s.skip && s.total > 1 {
		return nil
	}
	// ...and serve the NEWEST packet of the lowest backlogged class
	// (FIFO breach).
	for i := 0; i < s.n; i++ {
		if n := len(s.q[i]); n > 0 {
			p := s.q[i][n-1]
			s.q[i] = s.q[i][:n-1]
			s.total--
			return p
		}
	}
	return nil
}

func TestHarnessDetectsBrokenScheduler(t *testing.T) {
	sc := GoldenScenario()
	sched := &brokenLIFO{n: len(sc.SDP), q: make([][]*core.Packet, len(sc.SDP))}
	res, err := RunScheduler(sched, sc, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatal("harness passed a LIFO, non-work-conserving scheduler")
	}
	var gotFIFO, gotWC bool
	for _, v := range res.Violations {
		switch v.Observer {
		case "fifo":
			gotFIFO = true
		case "work-conservation":
			gotWC = true
		}
	}
	if !gotFIFO || !gotWC {
		t.Errorf("expected fifo and work-conservation violations, got: %v", res.Violations)
	}
}

func TestWTPOracleDetectsWrongSelection(t *testing.T) {
	// An "additive" scheduler is work-conserving and per-class FIFO but
	// picks by w + s rather than w·s — the oracle must reject it when
	// checked against WTP semantics.
	sc := GoldenScenario()
	res, err := RunScheduler(core.NewAdditive(sc.SDP), sc,
		Opts{Observers: []Observer{NewWTPOracle(sc.SDP)}})
	if err != nil {
		t.Fatal(err)
	}
	var oracleFired bool
	for _, v := range res.Violations {
		if v.Observer == "wtp-oracle" {
			oracleFired = true
		} else {
			t.Errorf("unexpected structural violation from Additive: %s", v)
		}
	}
	if !oracleFired {
		t.Fatal("WTP oracle accepted an additive-priority scheduler")
	}
}

func TestBPRFluidObserverDetectsNonProportionalService(t *testing.T) {
	// Strict priority is work-conserving but starves low classes; its
	// service split must diverge from the fluid BPR reference far beyond
	// the tolerance under heavy load.
	sc := Scenarios()[0] // heavy-pareto
	ob := NewBPRFluidObserver(sc.SDP, link.PaperLinkRate)
	res, err := RunScheduler(core.NewStrict(len(sc.SDP)), sc,
		Opts{Observers: []Observer{ob}})
	if err != nil {
		t.Fatal(err)
	}
	var fired bool
	for _, v := range res.Violations {
		if v.Observer == "bpr-fluid" {
			fired = true
			if !strings.Contains(v.Msg, "diverged") {
				t.Errorf("unexpected message: %s", v)
			}
		}
	}
	if !fired {
		t.Fatalf("fluid observer accepted strict priority (max divergence %.0f bytes)",
			ob.MaxDivergence())
	}
}

func TestResultSummary(t *testing.T) {
	res, err := Run(core.KindFCFS, GoldenScenario(), Opts{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if !strings.Contains(s, "FCFS/golden") || !strings.Contains(s, "violations=0") {
		t.Errorf("summary %q", s)
	}
	if !res.Ok() {
		t.Errorf("FCFS violated invariants: %v", res.Violations)
	}
}
