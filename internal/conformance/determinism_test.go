package conformance

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

// runSeededWithTelemetry executes one fully instrumented single-link run —
// scheduler behind a real link with a telemetry registry attached — and
// returns the per-packet delay record stream plus the /metrics JSON body
// served by the live HTTP handler (with the wall-clock uptime field
// stripped, the only legitimately nondeterministic value).
func runSeededWithTelemetry(t *testing.T) (records []byte, metrics []byte) {
	t.Helper()
	sdp := []float64{1, 2, 4, 8}
	reg := telemetry.NewWithSDP(sdp)
	var rec bytes.Buffer
	res, err := link.Run(link.RunConfig{
		Kind:      core.KindWTP,
		SDP:       sdp,
		Load:      traffic.PaperLoad(0.95),
		Horizon:   20000,
		Warmup:    2000,
		Seed:      42,
		Telemetry: reg,
		Observers: []func(*core.Packet){func(p *core.Packet) {
			fmt.Fprintf(&rec, "%d %d %s %s %s\n", p.ID, p.Class,
				g17(p.Arrival), g17(p.Start), g17(p.Departure))
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed == 0 {
		t.Fatal("no departures")
	}

	w := httptest.NewRecorder()
	telemetry.Handler(reg).ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("/metrics status %d", w.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["uptime_sec"]; !ok {
		t.Fatal("/metrics missing uptime_sec — strip list is stale")
	}
	delete(m, "uptime_sec") // wall time: the one non-seeded quantity
	stripped, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return rec.Bytes(), stripped
}

// TestSeededRunIsBitIdentical runs the same seeded scenario twice through
// the full stack (traffic -> scheduler -> link -> telemetry -> HTTP
// rendering) and requires bit-identical per-packet delay records and
// /metrics snapshots. This is the repo's determinism contract: equal
// configurations must produce equal results, or no golden trace, figure, or
// A/B comparison can be trusted.
func TestSeededRunIsBitIdentical(t *testing.T) {
	rec1, met1 := runSeededWithTelemetry(t)
	rec2, met2 := runSeededWithTelemetry(t)
	if !bytes.Equal(rec1, rec2) {
		t.Errorf("per-packet delay records differ between identical runs:\n%s",
			traceDiff(rec1, rec2))
	}
	if !bytes.Equal(met1, met2) {
		t.Errorf("/metrics snapshots differ between identical runs:\nrun1: %s\nrun2: %s", met1, met2)
	}
	if len(rec1) == 0 {
		t.Fatal("empty delay record stream")
	}
}
