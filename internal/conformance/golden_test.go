package conformance

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdds/internal/core"
)

// -update regenerates the golden traces:
//
//	go test ./internal/conformance -run Golden -update
var update = flag.Bool("update", false, "regenerate testdata/golden trace files")

func goldenPath(kind core.Kind) string {
	return filepath.Join("testdata", "golden", fmt.Sprintf("%s_golden.trace", kind))
}

// runGoldenTrace executes the golden scenario for kind and returns the
// recorded event trace.
func runGoldenTrace(t *testing.T, kind core.Kind, calendar bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	res, err := Run(kind, GoldenScenario(), Opts{
		CalendarQueue: calendar,
		TraceWriter:   &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: %s", kind, v)
	}
	return buf.Bytes()
}

// TestGoldenTraces locks every scheduler's full event sequence on the
// golden scenario to the committed byte-exact reference. Any change to
// scheduler semantics, traffic generation, or engine event ordering shows
// up as a trace diff — a perf refactor must leave these files untouched.
func TestGoldenTraces(t *testing.T) {
	for _, kind := range core.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			got := runGoldenTrace(t, kind, false)
			path := goldenPath(kind)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with `go test ./internal/conformance -run Golden -update`)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("trace diverged from %s:\n%s", path, traceDiff(want, got))
			}
		})
	}
}

// TestGoldenUpdateIsDeterministic guards the -update workflow itself: two
// regenerations must be byte-identical, or the golden files would churn.
func TestGoldenUpdateIsDeterministic(t *testing.T) {
	a := runGoldenTrace(t, core.KindWTP, false)
	b := runGoldenTrace(t, core.KindWTP, false)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different traces:\n%s", traceDiff(a, b))
	}
	if len(bytes.Split(a, []byte("\n"))) < 100 {
		t.Fatalf("golden scenario suspiciously small: %d bytes", len(a))
	}
}

// TestHeapCalendarEquivalence verifies the two internal/sim event
// structures order events identically: the same scenario run on the binary
// heap and on the calendar queue must emit bit-identical traces for every
// scheduler.
func TestHeapCalendarEquivalence(t *testing.T) {
	for _, kind := range core.Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			heap := runGoldenTrace(t, kind, false)
			cal := runGoldenTrace(t, kind, true)
			if !bytes.Equal(heap, cal) {
				t.Fatalf("calendar queue reordered events:\n%s", traceDiff(heap, cal))
			}
		})
	}
}

// traceDiff renders the first few differing lines of two traces.
func traceDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	var b strings.Builder
	shown := 0
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "line %d:\n  want %q\n  got  %q\n", i+1, w, g)
		if shown++; shown >= 5 {
			fmt.Fprintf(&b, "  ... (%d vs %d lines total)\n", len(wl), len(gl))
			break
		}
	}
	return b.String()
}
