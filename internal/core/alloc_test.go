package core

import (
	"testing"
)

// These tests pin the zero-allocation contract of the scheduler hot path
// (ISSUE: alloc regressions must fail the test suite, not just shift a
// benchmark). Each scheduler is warmed until its internal rings have
// reached steady-state capacity, then a full enqueue+dequeue cycle must
// not touch the heap.

// warmCycle drives sched through enough enqueue+dequeue cycles to
// stabilize every internal buffer, and returns the packet set in play.
func warmCycle(tb testing.TB, sched Scheduler) []*Packet {
	tb.Helper()
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = &Packet{ID: uint64(i), Class: i % sched.NumClasses(), Size: 550}
	}
	for i, p := range pkts {
		sched.Enqueue(p, float64(i))
	}
	now := 100.0
	for i := 0; i < 4*len(pkts); i++ {
		now++
		p := sched.Dequeue(now)
		if p == nil {
			tb.Fatalf("%s: Dequeue returned nil with backlog", sched.Name())
		}
		p.Arrival = now
		sched.Enqueue(p, now)
	}
	return pkts
}

func TestSchedulerHotPathZeroAllocs(t *testing.T) {
	for _, kind := range []Kind{KindWTP, KindBPR, KindFCFS, KindDRR, KindWFQ, KindIWRR, KindPF} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sched, err := New(kind, []float64{1, 2, 4, 8}, 441.0/11.2)
			if err != nil {
				t.Fatal(err)
			}
			warmCycle(t, sched)
			now := 1000.0
			allocs := testing.AllocsPerRun(200, func() {
				now++
				p := sched.Dequeue(now)
				p.Arrival = now
				sched.Enqueue(p, now)
			})
			if allocs != 0 {
				t.Errorf("%s steady-state enqueue+dequeue: %.1f allocs/op, want 0", kind, allocs)
			}
		})
	}
}

func TestPacketPoolZeroAllocsWhenWarm(t *testing.T) {
	pool := NewPacketPool()
	// Warm: put a working set in, so Get always recycles.
	for i := 0; i < 8; i++ {
		pool.Put(&Packet{})
	}
	allocs := testing.AllocsPerRun(200, func() {
		p := pool.Get()
		p.Size = 550
		pool.Put(p)
	})
	if allocs != 0 {
		t.Errorf("warm pool Get+Put: %.1f allocs/op, want 0", allocs)
	}
}

func TestPacketPoolRecyclesAndZeroes(t *testing.T) {
	pool := NewPacketPool()
	p := pool.Get()
	if pool.Allocated() != 1 || pool.Recycled() != 0 {
		t.Fatalf("fresh Get: allocated=%d recycled=%d", pool.Allocated(), pool.Recycled())
	}
	p.ID, p.Class, p.Size = 42, 3, 999
	p.Payload = []byte{1, 2, 3}
	pool.Put(p)
	if pool.Free() != 1 {
		t.Fatalf("Free() = %d, want 1", pool.Free())
	}
	q := pool.Get()
	if q != p {
		t.Fatal("Get did not recycle the Put packet")
	}
	if pool.Recycled() != 1 {
		t.Fatalf("Recycled() = %d, want 1", pool.Recycled())
	}
	if q.ID != 0 || q.Class != 0 || q.Size != 0 || q.Payload != nil {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
}

func TestNilPacketPoolIsValid(t *testing.T) {
	var pool *PacketPool
	p := pool.Get()
	if p == nil {
		t.Fatal("nil pool Get returned nil")
	}
	pool.Put(p) // must not panic
	if pool.Allocated() != 0 || pool.Recycled() != 0 || pool.Free() != 0 {
		t.Fatal("nil pool counters must read zero")
	}
}
