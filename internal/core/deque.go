package core

// fifo is a growable ring buffer of packets used as a per-class FIFO queue.
// It avoids the per-element allocation of container/list and the front-pop
// cost of a plain slice; schedulers pop from the head millions of times per
// experiment.
type fifo struct {
	buf  []*Packet
	head int
	n    int
}

// Len returns the number of queued packets.
func (f *fifo) Len() int { return f.n }

// Empty reports whether the queue holds no packets.
func (f *fifo) Empty() bool { return f.n == 0 }

// Push appends p at the tail.
func (f *fifo) Push(p *Packet) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)%len(f.buf)] = p
	f.n++
}

// Pop removes and returns the head packet, or nil if empty.
func (f *fifo) Pop() *Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return p
}

// Peek returns the head packet without removing it, or nil if empty.
func (f *fifo) Peek() *Packet {
	if f.n == 0 {
		return nil
	}
	return f.buf[f.head]
}

// PeekTail returns the most recently pushed packet, or nil if empty.
func (f *fifo) PeekTail() *Packet {
	if f.n == 0 {
		return nil
	}
	return f.buf[(f.head+f.n-1)%len(f.buf)]
}

// PopTail removes and returns the most recently pushed packet, or nil if
// empty. Used by drop-from-tail buffer policies.
func (f *fifo) PopTail() *Packet {
	if f.n == 0 {
		return nil
	}
	i := (f.head + f.n - 1) % len(f.buf)
	p := f.buf[i]
	f.buf[i] = nil
	f.n--
	return p
}

// At returns the i-th packet from the head (0 = head) without removing it.
// It panics if i is out of range; callers index only within [0, Len).
func (f *fifo) At(i int) *Packet {
	if i < 0 || i >= f.n {
		panic("core: fifo index out of range")
	}
	return f.buf[(f.head+i)%len(f.buf)]
}

func (f *fifo) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 16
	}
	buf := make([]*Packet, size)
	for i := 0; i < f.n; i++ {
		buf[i] = f.buf[(f.head+i)%len(f.buf)]
	}
	f.buf = buf
	f.head = 0
}
