package core

// WTP is the Waiting-Time Priority scheduler (§4.2), Kleinrock's
// Time-Dependent Priorities discipline: at each service-selection instant t
// the head packet of each backlogged class i has priority
//
//	p_i(t) = w_i(t) · s_i
//
// where w_i(t) is that packet's waiting time and s_i the class's Scheduler
// Differentiation Parameter. The packet with the highest priority is served;
// ties are broken in favor of the higher class. Under heavy load the
// long-term average class delays satisfy d_i/d_j → s_j/s_i (Eq. 10/13), i.e.
// WTP approximates the proportional differentiation model with DDP ratios
// equal to the inverse SDP ratios.
//
// The selection scan is O(N) per departure as discussed in §4.2.
type WTP struct {
	classQueues
	sdp []float64
}

// NewWTP returns a WTP scheduler with the given SDPs
// (one per class, nondecreasing, strictly positive).
func NewWTP(sdp []float64) *WTP {
	ValidateSDPs(sdp)
	s := &WTP{classQueues: newClassQueues(len(sdp))}
	s.sdp = append([]float64(nil), sdp...)
	return s
}

// Name implements Scheduler.
func (s *WTP) Name() string { return "WTP" }

// SDP returns the scheduler differentiation parameter of class i.
func (s *WTP) SDP(i int) float64 { return s.sdp[i] }

// Enqueue implements Scheduler.
func (s *WTP) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler.
func (s *WTP) Dequeue(now float64) *Packet {
	best, _ := s.selectClass(now)
	if best == -1 {
		return nil
	}
	return s.pop(best)
}

// PeekPriority implements HeadPeeker exactly: it reports the class and
// priority of the packet Dequeue(now) would select, without dequeuing it.
// The sharded forwarder's deadline-merge egress (internal/netio) peeks
// every shard's WTP this way and serves the global maximum, which is the
// same packet a single aggregate WTP would have selected (each class's
// globally oldest head is some shard's head, because per-shard class
// queues are FIFO in arrival order).
func (s *WTP) PeekPriority(now float64) (pri float64, class int, ok bool) {
	best, bestPri := s.selectClass(now)
	if best == -1 {
		return 0, 0, false
	}
	return bestPri, best, true
}

// selectClass runs the §4.2 selection scan: the backlogged class whose head
// packet has the highest waiting-time priority, or -1 when all queues are
// empty.
func (s *WTP) selectClass(now float64) (best int, bestPri float64) {
	best = -1
	for i, q := range s.q {
		head := q.Peek()
		if head == nil {
			continue
		}
		pri := (now - head.Arrival) * s.sdp[i]
		// >= implements "ties favor the higher class" because the scan
		// runs from the lowest class upward.
		if best == -1 || pri >= bestPri {
			best, bestPri = i, pri
		}
	}
	return best, bestPri
}
