package core

import "math"

// IWRR is Interleaved Weighted Round Robin: each round consists of
// w_max cycles, and in cycle k every backlogged class whose weight
// exceeds k sends exactly one packet, in class order. Interleaving the
// per-class opportunities across the round (rather than granting each
// class its whole weight in one visit, as WRR does) shortens the
// worst-case gap between consecutive opportunities of a class, which is
// what gives IWRR the tighter network-calculus service curves analyzed
// by Tabatabaee, Le Boudec and Boyer ("Interleaved Weighted Round-Robin:
// A Network Calculus Analysis"). Like DRR and WFQ it realizes §2.1's
// *capacity differentiation*: bandwidth shares follow the weights while
// the delay ratios drift with the class loads. It is the third member of
// the round-robin family, and the one internal/netcalc certifies with a
// staircase (rather than plain rate-latency) strict service curve.
type IWRR struct {
	classQueues
	weight []int // integer per-class weights, all >= 1
	wmax   int
	// (cycle, next) is the scan position of the interleaved schedule:
	// the next service opportunity considered is class `next` in cycle
	// `cycle` of the current round. The position only advances when
	// Dequeue scans past it, so the round structure is preserved across
	// idle periods exactly as a hardware scheduler's would be.
	cycle int
	next  int
}

// NewIWRR returns an interleaved weighted-round-robin scheduler. The
// per-class weights are the SDPs normalized by the smallest one and
// rounded to integers (floored at 1); the paper's geometric SDPs
// {1, 2, 4, 8} map to themselves.
func NewIWRR(weights []float64) *IWRR {
	ValidateSDPs(weights)
	s := &IWRR{
		classQueues: newClassQueues(len(weights)),
		weight:      IntWeights(weights),
	}
	for _, w := range s.weight {
		if w > s.wmax {
			s.wmax = w
		}
	}
	return s
}

// IntWeights converts SDP-style float weights to the integer weights
// IWRR rounds on: each weight is divided by the smallest and rounded,
// with a floor of 1 so every class keeps at least one opportunity per
// round.
func IntWeights(weights []float64) []int {
	min := weights[0]
	for _, w := range weights {
		if w < min {
			min = w
		}
	}
	out := make([]int, len(weights))
	for i, w := range weights {
		out[i] = int(math.Round(w / min))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// Name implements Scheduler.
func (s *IWRR) Name() string { return "IWRR" }

// Weights returns the integer per-class weights (for the netcalc service
// curves, which must describe the scheduler actually running).
func (s *IWRR) Weights() []int { return s.weight }

// Enqueue implements Scheduler.
func (s *IWRR) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler. It scans the interleaved schedule from
// the current position: class `next` in cycle `cycle`, then the
// remaining classes of the cycle, then the following cycles, wrapping to
// cycle 0 after cycle wmax-1. A class is eligible in cycle k iff its
// weight exceeds k and it is backlogged. Any backlogged class is
// eligible in cycle 0, so a full wrap always finds a packet.
func (s *IWRR) Dequeue(now float64) *Packet {
	if s.total == 0 {
		return nil
	}
	n := len(s.q)
	for iter := 0; iter <= n*s.wmax; iter++ {
		if s.next >= n {
			s.next = 0
			if s.cycle++; s.cycle >= s.wmax {
				s.cycle = 0
			}
		}
		class := s.next
		s.next++
		if s.weight[class] > s.cycle && !s.q[class].Empty() {
			return s.pop(class)
		}
	}
	// Unreachable while total > 0; keep the scheduler safe regardless.
	for i := range s.q {
		if !s.q[i].Empty() {
			return s.pop(i)
		}
	}
	return nil
}
