package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func mkPkt(id uint64, class int, size int64, arrival float64) *Packet {
	return &Packet{ID: id, Class: class, Size: size, Arrival: arrival}
}

func TestNewAllKinds(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	for _, k := range Kinds() {
		s, err := New(k, sdp, 39.375)
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if s.NumClasses() != 4 {
			t.Fatalf("%q NumClasses = %d", k, s.NumClasses())
		}
		if s.Name() == "" {
			t.Fatalf("%q has empty name", k)
		}
		if s.Backlogged() {
			t.Fatalf("%q backlogged when fresh", k)
		}
		if s.Dequeue(0) != nil {
			t.Fatalf("%q dequeued from empty", k)
		}
	}
	if _, err := New("nonsense", sdp, 1); err == nil {
		t.Fatal("unknown kind did not error")
	}
}

func TestValidateSDPs(t *testing.T) {
	for _, bad := range [][]float64{
		nil,
		{},
		{0},
		{-1, 2},
		{2, 1}, // decreasing
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ValidateSDPs(%v) did not panic", bad)
				}
			}()
			ValidateSDPs(bad)
		}()
	}
	ValidateSDPs([]float64{1, 1, 2}) // nondecreasing is allowed
}

func TestFCFSOrder(t *testing.T) {
	s := NewFCFS(2)
	s.Enqueue(mkPkt(1, 1, 100, 0), 0)
	s.Enqueue(mkPkt(2, 0, 100, 1), 1)
	s.Enqueue(mkPkt(3, 1, 100, 2), 2)
	if s.Len(1) != 2 || s.Len(0) != 1 || s.Bytes(1) != 200 {
		t.Fatal("FCFS per-class accounting wrong")
	}
	for want := uint64(1); want <= 3; want++ {
		if got := s.Dequeue(10).ID; got != want {
			t.Fatalf("FCFS dequeued %d, want %d", got, want)
		}
	}
	if s.Backlogged() {
		t.Fatal("FCFS backlogged after draining")
	}
}

func TestStrictServesHighestFirst(t *testing.T) {
	s := NewStrict(3)
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 2, 100, 0), 0)
	s.Enqueue(mkPkt(3, 1, 100, 0), 0)
	s.Enqueue(mkPkt(4, 2, 100, 0), 0)
	wantClasses := []int{2, 2, 1, 0}
	for _, want := range wantClasses {
		if got := s.Dequeue(1).Class; got != want {
			t.Fatalf("strict served class %d, want %d", got, want)
		}
	}
}

func TestWTPPriorityOrder(t *testing.T) {
	// Class 0 (s=1) waited 10; class 1 (s=2) waited 6: priorities 10 vs
	// 12, so class 1 goes first even though class 0 arrived earlier.
	s := NewWTP([]float64{1, 2})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 4), 4)
	if got := s.Dequeue(10).ID; got != 2 {
		t.Fatalf("WTP served %d first, want 2", got)
	}
	if got := s.Dequeue(10).ID; got != 1 {
		t.Fatalf("WTP served %d second, want 1", got)
	}
}

func TestWTPTieFavorsHigherClass(t *testing.T) {
	s := NewWTP([]float64{1, 1, 1})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 2, 100, 0), 0)
	s.Enqueue(mkPkt(3, 1, 100, 0), 0)
	if got := s.Dequeue(5).Class; got != 2 {
		t.Fatalf("WTP tie served class %d, want 2", got)
	}
}

func TestWTPEqualWaitHigherSDPWins(t *testing.T) {
	s := NewWTP([]float64{1, 2, 4, 8})
	for c := 0; c < 4; c++ {
		s.Enqueue(mkPkt(uint64(c), c, 100, 0), 0)
	}
	for want := 3; want >= 0; want-- {
		if got := s.Dequeue(10).Class; got != want {
			t.Fatalf("WTP served class %d, want %d", got, want)
		}
	}
}

func TestWTPSDPAccessor(t *testing.T) {
	s := NewWTP([]float64{1, 2})
	if s.SDP(0) != 1 || s.SDP(1) != 2 {
		t.Fatal("SDP accessor wrong")
	}
}

func TestAdditivePriorityOrder(t *testing.T) {
	// Additive: p = wait + s. Class 0 waited 10 (p=10+1=11); class 1
	// waited 6 (p=6+5=11): tie, higher class wins.
	s := NewAdditive([]float64{1, 5})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 4), 4)
	if got := s.Dequeue(10).ID; got != 2 {
		t.Fatalf("additive served %d first, want 2", got)
	}
	// Packet 1 (p=11) still outranks fresh arrivals; then a fresh
	// class-1 packet (p=0+5) beats a class-0 packet that waited 2
	// (p=2+1): class 1 wins on offset alone.
	s.Enqueue(mkPkt(3, 1, 100, 10), 10)
	s.Enqueue(mkPkt(4, 0, 100, 8), 8)
	for _, want := range []uint64{1, 3, 4} {
		if got := s.Dequeue(10).ID; got != want {
			t.Fatalf("additive served %d, want %d", got, want)
		}
	}
}

func TestWFQWeightsShareBandwidth(t *testing.T) {
	// Two always-backlogged classes with weights 1 and 3 and equal packet
	// sizes: over a long run class 1 should be served ~3x as often.
	s := NewWFQ([]float64{1, 3})
	var id uint64
	for i := 0; i < 400; i++ {
		id++
		s.Enqueue(mkPkt(id, 0, 100, 0), 0)
		id++
		s.Enqueue(mkPkt(id, 1, 100, 0), 0)
	}
	counts := [2]int{}
	for i := 0; i < 400; i++ {
		counts[s.Dequeue(float64(i)).Class]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("WFQ service ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

func TestWFQRespectsFIFOWithinClass(t *testing.T) {
	s := NewWFQ([]float64{1, 2})
	for i := uint64(0); i < 10; i++ {
		s.Enqueue(mkPkt(i, int(i%2), 100+int64(i), 0), 0)
	}
	last := map[int]uint64{0: 0, 1: 0}
	seen := map[int]bool{}
	for s.Backlogged() {
		p := s.Dequeue(0)
		if seen[p.Class] && p.ID < last[p.Class] {
			t.Fatalf("WFQ reordered within class %d: %d after %d", p.Class, p.ID, last[p.Class])
		}
		last[p.Class] = p.ID
		seen[p.Class] = true
	}
}

func TestBPRSmallestRemainingWorkFirst(t *testing.T) {
	// Two fresh heads (v=0): BPR serves the smaller packet first
	// (argmin L - v).
	s := NewBPR([]float64{1, 2}, 100)
	s.Enqueue(mkPkt(1, 0, 40, 0), 0)
	s.Enqueue(mkPkt(2, 1, 1500, 0), 0)
	if got := s.Dequeue(0).ID; got != 1 {
		t.Fatalf("BPR served %d first, want 1 (smaller remaining work)", got)
	}
}

func TestBPRTieFavorsHigherClass(t *testing.T) {
	s := NewBPR([]float64{1, 2}, 100)
	s.Enqueue(mkPkt(1, 0, 500, 0), 0)
	s.Enqueue(mkPkt(2, 1, 500, 0), 0)
	if got := s.Dequeue(0).Class; got != 1 {
		t.Fatalf("BPR tie served class %d, want 1", got)
	}
}

func TestBPRVirtualServiceFavorsBackloggedHighSDP(t *testing.T) {
	// Build identical byte backlogs in both classes; the high-SDP class
	// accumulates virtual service faster, so after the first departure
	// epoch its head should complete first even with equal sizes.
	s := NewBPR([]float64{1, 4}, 100)
	now := 0.0
	var id uint64
	for i := 0; i < 4; i++ {
		id++
		s.Enqueue(mkPkt(id, 0, 500, now), now)
		id++
		s.Enqueue(mkPkt(id, 1, 500, now), now)
	}
	first := s.Dequeue(now) // tie: class 1 (higher) wins
	if first.Class != 1 {
		t.Fatalf("first departure class %d, want 1", first.Class)
	}
	// Transmit for 5 time units (500 bytes at rate 100); during this the
	// class-1 queue earns rate 4x class-0's rate per unit backlog.
	now = 5
	second := s.Dequeue(now)
	if second.Class != 1 {
		t.Fatalf("second departure class %d, want 1 (virtual service lead)", second.Class)
	}
}

func TestBPRConstructorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBPR with zero rate did not panic")
		}
	}()
	NewBPR([]float64{1, 2}, 0)
}

func TestClassQueuesPanicsOnBadClass(t *testing.T) {
	s := NewWTP([]float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue with out-of-range class did not panic")
		}
	}()
	s.Enqueue(mkPkt(1, 7, 100, 0), 0)
}

func TestDropTail(t *testing.T) {
	s := NewWTP([]float64{1, 2})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 0, 200, 1), 1)
	var td TailDropper = s
	p := td.DropTail(0)
	if p == nil || p.ID != 2 {
		t.Fatalf("DropTail = %v, want packet 2", p)
	}
	if s.Len(0) != 1 || s.Bytes(0) != 100 {
		t.Fatal("accounting wrong after DropTail")
	}
	if td.DropTail(1) != nil {
		t.Fatal("DropTail on empty class returned a packet")
	}
}

// Property: every per-class scheduler preserves FIFO order within a class,
// for arbitrary interleavings of enqueues and dequeues.
func TestSchedulersFIFOWithinClassProperty(t *testing.T) {
	mk := func(kind Kind) Scheduler {
		s, err := New(kind, []float64{1, 2, 4}, 100)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for _, kind := range Kinds() {
		kind := kind
		f := func(seed uint64, opsCount uint16) bool {
			rng := rand.New(rand.NewPCG(seed, 7))
			s := mk(kind)
			now := 0.0
			var id uint64
			lastOut := make([]uint64, 3)
			ops := int(opsCount%300) + 10
			for k := 0; k < ops; k++ {
				now += rng.Float64()
				if rng.IntN(2) == 0 {
					id++
					c := rng.IntN(3)
					s.Enqueue(mkPkt(id, c, int64(40+rng.IntN(1460)), now), now)
				} else if p := s.Dequeue(now); p != nil {
					if lastOut[p.Class] != 0 && p.ID < lastOut[p.Class] {
						return false
					}
					lastOut[p.Class] = p.ID
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

// Property: Len/Bytes/Backlogged stay consistent with enqueued-minus-
// dequeued across arbitrary operation sequences, for every scheduler.
func TestSchedulersAccountingProperty(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		f := func(seed uint64, opsCount uint16) bool {
			rng := rand.New(rand.NewPCG(seed, 11))
			s, err := New(kind, []float64{1, 2, 4, 8}, 50)
			if err != nil {
				return false
			}
			now := 0.0
			var id uint64
			count := make([]int, 4)
			bytes := make([]int64, 4)
			ops := int(opsCount%400) + 10
			for k := 0; k < ops; k++ {
				now += rng.Float64()
				if rng.IntN(3) != 0 {
					id++
					c := rng.IntN(4)
					sz := int64(40 + rng.IntN(1460))
					s.Enqueue(mkPkt(id, c, sz, now), now)
					count[c]++
					bytes[c] += sz
				} else if p := s.Dequeue(now); p != nil {
					count[p.Class]--
					bytes[p.Class] -= p.Size
				}
				total := 0
				for c := 0; c < 4; c++ {
					if s.Len(c) != count[c] || s.Bytes(c) != bytes[c] {
						return false
					}
					total += count[c]
				}
				if s.Backlogged() != (total > 0) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestPacketWaitAndString(t *testing.T) {
	p := mkPkt(5, 1, 550, 3)
	p.Start = 10
	if p.Wait() != 7 {
		t.Fatalf("Wait = %g, want 7", p.Wait())
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
}
