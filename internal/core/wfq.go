package core

// WFQ implements capacity differentiation (§2.1) via self-clocked fair
// queueing (SCFQ), a standard packetized approximation of GPS: each packet
// receives a finish tag
//
//	F = max(V(t), F_prev) + L/w_i
//
// where V(t) is the virtual time (the finish tag of the packet in service)
// and w_i the class weight; packets are served in increasing tag order.
//
// The paper's point about this family (§2.1) — which the ablation
// experiments reproduce — is that static bandwidth shares make the *delay*
// ratios between classes depend on the class loads and burstiness, so
// capacity differentiation is controllable in bandwidth but not in delay.
type WFQ struct {
	classQueues
	weight []float64
	tags   []floatRing // finish tags, parallel to each class FIFO
	last   []float64   // last assigned finish tag per class
	vtime  float64     // virtual time: tag of packet in (or last in) service
}

// NewWFQ returns an SCFQ scheduler with the given per-class weights
// (higher weight → larger bandwidth share).
func NewWFQ(weights []float64) *WFQ {
	ValidateSDPs(weights)
	n := len(weights)
	s := &WFQ{
		classQueues: newClassQueues(n),
		weight:      append([]float64(nil), weights...),
		tags:        make([]floatRing, n),
		last:        make([]float64, n),
	}
	return s
}

// Name implements Scheduler.
func (s *WFQ) Name() string { return "WFQ" }

// Enqueue implements Scheduler.
func (s *WFQ) Enqueue(p *Packet, now float64) {
	start := s.vtime
	if s.last[p.Class] > start {
		start = s.last[p.Class]
	}
	tag := start + float64(p.Size)/s.weight[p.Class]
	s.last[p.Class] = tag
	s.push(p)
	s.tags[p.Class].Push(tag)
}

// Dequeue implements Scheduler.
func (s *WFQ) Dequeue(now float64) *Packet {
	best := -1
	var bestTag float64
	for i := range s.q {
		if s.q[i].Empty() {
			continue
		}
		tag := s.tags[i].Peek()
		// Ties favor the higher class (scan order + >=), matching the
		// convention used by WTP and BPR.
		if best == -1 || tag <= bestTag {
			best, bestTag = i, tag
		}
	}
	if best == -1 {
		return nil
	}
	s.tags[best].Pop()
	s.vtime = bestTag
	return s.pop(best)
}

// floatRing is a growable ring buffer of float64, mirroring fifo.
type floatRing struct {
	buf  []float64
	head int
	n    int
}

// Push appends v at the tail.
func (r *floatRing) Push(v float64) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 16
		}
		buf := make([]float64, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = buf, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = v
	r.n++
}

// Pop removes and returns the head value; it panics on an empty ring.
func (r *floatRing) Pop() float64 {
	if r.n == 0 {
		panic("core: pop from empty floatRing")
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return v
}

// Peek returns the head value; it panics on an empty ring.
func (r *floatRing) Peek() float64 {
	if r.n == 0 {
		panic("core: peek at empty floatRing")
	}
	return r.buf[r.head]
}

// Len returns the number of queued values.
func (r *floatRing) Len() int { return r.n }
