package core

import (
	"math/rand/v2"
	"testing"
)

// arrivalScript is a deterministic arrival pattern for replaying the same
// workload through different schedulers.
type scriptedArrival struct {
	t     float64
	class int
	id    uint64
}

// replayScript serves the script through s with unit service time and
// returns the dequeue order by packet ID. The loop is a miniature
// single-server simulation: enqueue everything due, serve one packet per
// time unit, jump to the next arrival when idle.
func replayScript(t *testing.T, s Scheduler, script []scriptedArrival) []uint64 {
	t.Helper()
	var out []uint64
	i, now := 0, 0.0
	for {
		for i < len(script) && script[i].t <= now {
			a := script[i]
			s.Enqueue(&Packet{ID: a.id, Class: a.class, Size: 1, Arrival: a.t}, a.t)
			i++
		}
		p := s.Dequeue(now)
		if p == nil {
			if i >= len(script) {
				return out
			}
			now = script[i].t
			continue
		}
		out = append(out, p.ID)
		now += 1.0
	}
}

// randomScript returns a seeded arrival pattern with irrational-ish
// spacing so no two classes ever tie on priority.
func randomScript(n, classes int, seed uint64) []scriptedArrival {
	rng := rand.New(rand.NewPCG(seed, 0xED6E))
	script := make([]scriptedArrival, n)
	t := 0.0
	for i := range script {
		t += rng.Float64() * 1.4 // mean spacing > service time: busy periods end
		script[i] = scriptedArrival{t: t, class: rng.IntN(classes), id: uint64(i + 1)}
	}
	return script
}

// assertConservedFIFO checks every scripted packet was served exactly
// once and per-class order was preserved (all disciplines here are FIFO
// within a class).
func assertConservedFIFO(t *testing.T, script []scriptedArrival, order []uint64) {
	t.Helper()
	if len(order) != len(script) {
		t.Fatalf("served %d packets, enqueued %d", len(order), len(script))
	}
	byID := make(map[uint64]scriptedArrival, len(script))
	for _, a := range script {
		byID[a.id] = a
	}
	lastPerClass := map[int]uint64{}
	for _, id := range order {
		a, ok := byID[id]
		if !ok {
			t.Fatalf("served unknown or duplicate packet %d", id)
		}
		delete(byID, id)
		if prev := lastPerClass[a.class]; id < prev {
			t.Fatalf("class %d served %d after %d (intra-class FIFO broken)", a.class, id, prev)
		}
		lastPerClass[a.class] = id
	}
}

// TestPADHPDEdgeCases is the table-driven edge-case suite shared by PAD
// and HPD (at its default mixing factor).
func TestPADHPDEdgeCases(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	builders := map[string]func() Scheduler{
		"PAD": func() Scheduler { return NewPAD(sdp) },
		"HPD": func() Scheduler { return NewHPD(sdp, DefaultHPDG) },
	}
	cases := []struct {
		name   string
		script []scriptedArrival
	}{
		{
			// Only one class backlogged: the scan must degrade to plain
			// FIFO on that class and drain completely.
			name: "single active class",
			script: func() []scriptedArrival {
				var s []scriptedArrival
				for i := 0; i < 40; i++ {
					s = append(s, scriptedArrival{t: float64(i) * 0.3, class: 2, id: uint64(i + 1)})
				}
				return s
			}(),
		},
		{
			// Class 1 bursts, empties mid-busy-period while class 0 is
			// still backlogged, then returns later: no stale head state,
			// and its running average (PAD memory) must not wedge the
			// scan when count resumes growing.
			name: "class empties mid-busy-period",
			script: func() []scriptedArrival {
				var s []scriptedArrival
				id := uint64(1)
				for i := 0; i < 10; i++ { // class-1 burst at t≈0
					s = append(s, scriptedArrival{t: float64(i) * 0.01, class: 1, id: id})
					id++
				}
				for i := 0; i < 30; i++ { // class-0 backlog outlives it
					s = append(s, scriptedArrival{t: 0.05 + float64(i)*0.5, class: 0, id: id})
					id++
				}
				for i := 0; i < 10; i++ { // class 1 returns much later
					s = append(s, scriptedArrival{t: 40 + float64(i)*0.25, class: 1, id: id})
					id++
				}
				return s
			}(),
		},
		{
			name:   "random mixed load",
			script: randomScript(400, 4, 99),
		},
	}
	for name, build := range builders {
		for _, tc := range cases {
			t.Run(name+"/"+tc.name, func(t *testing.T) {
				order := replayScript(t, build(), tc.script)
				assertConservedFIFO(t, tc.script, order)
			})
		}
	}
}

// TestPADAllEqualDDPs: with all-equal DDPs the proportional model demands
// no differentiation, and PAD/HPD priorities scale uniformly in the SDP —
// so {1,1,1,1} and {5,5,5,5} must make bit-identical decisions, and
// a same-instant cohort must be served purely by the tie-break.
func TestPADAllEqualDDPs(t *testing.T) {
	script := randomScript(300, 4, 7)
	for name, build := range map[string]func(s []float64) Scheduler{
		"PAD": func(s []float64) Scheduler { return NewPAD(s) },
		"HPD": func(s []float64) Scheduler { return NewHPD(s, DefaultHPDG) },
		"WTP": func(s []float64) Scheduler { return NewWTP(s) },
	} {
		t.Run(name, func(t *testing.T) {
			a := replayScript(t, build([]float64{1, 1, 1, 1}), script)
			b := replayScript(t, build([]float64{5, 5, 5, 5}), script)
			if len(a) != len(b) {
				t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("decision %d differs: packet %d vs %d (equal DDPs are not scale-invariant)", i, a[i], b[i])
				}
			}
			// Four same-instant arrivals, one per class: equal priority,
			// ties favor the higher class (the documented WTP rule).
			s := build([]float64{1, 1, 1, 1})
			for c := 0; c < 4; c++ {
				s.Enqueue(&Packet{ID: uint64(c + 1), Class: c, Size: 1, Arrival: 0}, 0)
			}
			for want := 4; want >= 1; want-- {
				p := s.Dequeue(1)
				if p == nil || p.ID != uint64(want) {
					t.Fatalf("tie-break served %+v, want packet %d (higher class first)", p, want)
				}
			}
		})
	}
}

// TestHPDExtremesMatchPADAndWTP pins the mixing contract at its ends:
// g=0 is PAD decision-for-decision, g=1 is WTP decision-for-decision
// (all three use the same upward scan with >= tie-break, so the
// equivalence is exact, not approximate).
func TestHPDExtremesMatchPADAndWTP(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	for seed := uint64(1); seed <= 3; seed++ {
		script := randomScript(500, 4, seed)
		padOrder := replayScript(t, NewPAD(sdp), script)
		hpd0Order := replayScript(t, NewHPD(sdp, 0), script)
		for i := range padOrder {
			if padOrder[i] != hpd0Order[i] {
				t.Fatalf("seed %d: HPD(g=0) diverged from PAD at decision %d: %d vs %d",
					seed, i, hpd0Order[i], padOrder[i])
			}
		}
		wtpOrder := replayScript(t, NewWTP(sdp), script)
		hpd1Order := replayScript(t, NewHPD(sdp, 1), script)
		for i := range wtpOrder {
			if wtpOrder[i] != hpd1Order[i] {
				t.Fatalf("seed %d: HPD(g=1) diverged from WTP at decision %d: %d vs %d",
					seed, i, hpd1Order[i], wtpOrder[i])
			}
		}
		// Sanity: at this load the two extremes must not be the same
		// discipline — otherwise the equivalences above test nothing.
		diverged := false
		for i := range padOrder {
			if padOrder[i] != wtpOrder[i] {
				diverged = true
				break
			}
		}
		if !diverged {
			t.Fatalf("seed %d: PAD and WTP made identical decisions on the whole script", seed)
		}
	}
}
