package core

import "fmt"

// FluidBPR models the *fluid* Backlog-Proportional Rate server of §4.1
// directly on per-class backlog amounts, with no packet boundaries. It is
// the reference model for the packetized BPR scheduler and the subject of
// Proposition 1: during a busy period with no further arrivals, every
// backlogged queue drains to zero at the same instant t0 + ΣQ_i/R.
//
// Between arrivals the backlogs obey the coupled ODE
//
//	dq_i/dt = −R · s_i·q_i / Σ_j s_j·q_j
//
// which the Drain method integrates with classic fourth-order Runge-Kutta.
type FluidBPR struct {
	sdp  []float64
	rate float64
	q    []float64
	now  float64
}

// NewFluidBPR returns a fluid BPR server with the given SDPs and rate
// (work units per time unit).
func NewFluidBPR(sdp []float64, rate float64) *FluidBPR {
	ValidateSDPs(sdp)
	if !(rate > 0) {
		panic("core: FluidBPR requires a positive rate")
	}
	return &FluidBPR{
		sdp:  append([]float64(nil), sdp...),
		rate: rate,
		q:    make([]float64, len(sdp)),
	}
}

// Now returns the fluid server's clock.
func (f *FluidBPR) Now() float64 { return f.now }

// Backlog returns the current backlog of class i.
func (f *FluidBPR) Backlog(i int) float64 { return f.q[i] }

// TotalBacklog returns the summed backlog over all classes.
func (f *FluidBPR) TotalBacklog() float64 {
	var sum float64
	for _, v := range f.q {
		sum += v
	}
	return sum
}

// Add injects amount units of class-i work at the current instant.
func (f *FluidBPR) Add(i int, amount float64) {
	if amount < 0 {
		panic(fmt.Sprintf("core: negative fluid amount %g", amount))
	}
	f.q[i] += amount
}

// TimeToEmpty returns the remaining busy-period length with no further
// arrivals: total backlog divided by the link rate. By Proposition 1, all
// backlogged queues empty exactly then.
func (f *FluidBPR) TimeToEmpty() float64 { return f.TotalBacklog() / f.rate }

// Rates returns the instantaneous fluid service rates r_i (Eq. 8 + 9).
func (f *FluidBPR) Rates() []float64 {
	r := make([]float64, len(f.q))
	var denom float64
	for i, q := range f.q {
		if q > 0 {
			denom += f.sdp[i] * q
		}
	}
	if denom == 0 {
		return r
	}
	for i, q := range f.q {
		if q > 0 {
			r[i] = f.rate * f.sdp[i] * q / denom
		}
	}
	return r
}

// Drain advances the fluid server by dt with no arrivals, integrating the
// backlog ODE in `steps` RK4 substeps. Backlogs are clamped at zero; once
// the total drops below a vanishing threshold all queues are snapped to
// empty (they reach zero simultaneously in the exact dynamics).
func (f *FluidBPR) Drain(dt float64, steps int) {
	if dt < 0 || steps <= 0 {
		panic("core: FluidBPR.Drain requires dt >= 0 and steps > 0")
	}
	h := dt / float64(steps)
	n := len(f.q)
	deriv := func(q []float64) []float64 {
		d := make([]float64, n)
		var denom float64
		for i := range q {
			if q[i] > 0 {
				denom += f.sdp[i] * q[i]
			}
		}
		if denom == 0 {
			return d
		}
		for i := range q {
			if q[i] > 0 {
				d[i] = -f.rate * f.sdp[i] * q[i] / denom
			}
		}
		return d
	}
	addScaled := func(q, d []float64, s float64) []float64 {
		out := make([]float64, n)
		for i := range q {
			out[i] = q[i] + s*d[i]
			if out[i] < 0 {
				out[i] = 0
			}
		}
		return out
	}
	for s := 0; s < steps; s++ {
		k1 := deriv(f.q)
		k2 := deriv(addScaled(f.q, k1, h/2))
		k3 := deriv(addScaled(f.q, k2, h/2))
		k4 := deriv(addScaled(f.q, k3, h))
		for i := range f.q {
			f.q[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
			if f.q[i] < 0 {
				f.q[i] = 0
			}
		}
	}
	f.now += dt
	if f.TotalBacklog() < 1e-9*f.rate {
		for i := range f.q {
			f.q[i] = 0
		}
	}
}
