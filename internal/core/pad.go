package core

// PAD and HPD address the open question §7 poses — WTP and BPR drift from
// the proportional model in moderate load, so "it is interesting to know
// the form of an 'optimal proportional differentiation scheduler'". The
// authors' follow-up work (Dovrolis, Stiliadis, Ramanathan, IEEE/ACM ToN
// 10(1), 2002) answers with two schedulers implemented here as extensions:
//
//   - PAD (Proportional Average Delay) drives the *long-term* normalized
//     average delays together: it serves the backlogged class whose
//     running average delay, counting the head packet as if served now
//     and normalized by the DDP (equivalently multiplied by the SDP),
//     is largest. PAD meets the proportional model whenever it is
//     feasible — including moderate loads where WTP undershoots — but
//     has weak short-timescale behaviour.
//
//   - HPD (Hybrid Proportional Delay) mixes PAD's long-term normalized
//     average delay with WTP's instantaneous normalized waiting time,
//     p_i = g·w̃_i + (1−g)·d̃_i, retaining PAD's long-term accuracy and
//     most of WTP's short-timescale accuracy. g ≈ 0.875 is the
//     recommended operating point.
type PAD struct {
	classQueues
	sdp []float64
	// sum and count accumulate the delays of departed packets per
	// class.
	sum   []float64
	count []float64
}

// NewPAD returns a Proportional Average Delay scheduler with the given
// SDPs.
func NewPAD(sdp []float64) *PAD {
	ValidateSDPs(sdp)
	n := len(sdp)
	s := &PAD{
		classQueues: newClassQueues(n),
		sdp:         append([]float64(nil), sdp...),
		sum:         make([]float64, n),
		count:       make([]float64, n),
	}
	return s
}

// Name implements Scheduler.
func (s *PAD) Name() string { return "PAD" }

// Enqueue implements Scheduler.
func (s *PAD) Enqueue(p *Packet, now float64) { s.push(p) }

// normAvg returns class i's normalized average delay assuming its head
// packet (waiting w) were served now.
func (s *PAD) normAvg(i int, w float64) float64 {
	return (s.sum[i] + w) / (s.count[i] + 1) * s.sdp[i]
}

// Dequeue implements Scheduler.
func (s *PAD) Dequeue(now float64) *Packet {
	best := -1
	var bestVal float64
	for i, q := range s.q {
		head := q.Peek()
		if head == nil {
			continue
		}
		v := s.normAvg(i, now-head.Arrival)
		if best == -1 || v >= bestVal {
			best, bestVal = i, v
		}
	}
	if best == -1 {
		return nil
	}
	p := s.pop(best)
	s.sum[best] += now - p.Arrival
	s.count[best]++
	return p
}

// HPD is the hybrid proportional delay scheduler: a convex combination of
// WTP's normalized head waiting time and PAD's normalized average delay.
type HPD struct {
	classQueues
	sdp   []float64
	g     float64
	sum   []float64
	count []float64
}

// DefaultHPDG is the recommended mixing factor g.
const DefaultHPDG = 0.875

// NewHPD returns a hybrid proportional delay scheduler. g in [0,1] weights
// the WTP term (g=1 is pure WTP behaviour, g=0 pure PAD).
func NewHPD(sdp []float64, g float64) *HPD {
	ValidateSDPs(sdp)
	if g < 0 || g > 1 {
		panic("core: HPD g must be in [0,1]")
	}
	n := len(sdp)
	return &HPD{
		classQueues: newClassQueues(n),
		sdp:         append([]float64(nil), sdp...),
		g:           g,
		sum:         make([]float64, n),
		count:       make([]float64, n),
	}
}

// Name implements Scheduler.
func (s *HPD) Name() string { return "HPD" }

// G returns the mixing factor.
func (s *HPD) G() float64 { return s.g }

// Enqueue implements Scheduler.
func (s *HPD) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler.
func (s *HPD) Dequeue(now float64) *Packet {
	best := -1
	var bestVal float64
	for i, q := range s.q {
		head := q.Peek()
		if head == nil {
			continue
		}
		w := now - head.Arrival
		wtpTerm := w * s.sdp[i]
		padTerm := (s.sum[i] + w) / (s.count[i] + 1) * s.sdp[i]
		v := s.g*wtpTerm + (1-s.g)*padTerm
		if best == -1 || v >= bestVal {
			best, bestVal = i, v
		}
	}
	if best == -1 {
		return nil
	}
	p := s.pop(best)
	s.sum[best] += now - p.Arrival
	s.count[best]++
	return p
}
