package core

import (
	"reflect"
	"testing"
)

func TestIntWeights(t *testing.T) {
	for _, tc := range []struct {
		in   []float64
		want []int
	}{
		{[]float64{1, 2, 4, 8}, []int{1, 2, 4, 8}},
		{[]float64{2, 4}, []int{1, 2}},
		{[]float64{1, 2.4, 2.6}, []int{1, 2, 3}},
		{[]float64{5}, []int{1}},
		{[]float64{1, 1.2}, []int{1, 1}}, // rounds down, floored at 1
	} {
		if got := IntWeights(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("IntWeights(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestIWRRInterleavedOrder pins the defining schedule: with weights
// {1, 2, 3} and all classes continuously backlogged, one round is
// cycle 0: 0,1,2 — cycle 1: 1,2 — cycle 2: 2.
func TestIWRRInterleavedOrder(t *testing.T) {
	s := NewIWRR([]float64{1, 2, 3})
	var id uint64
	for i := 0; i < 12; i++ {
		for c := 0; c < 3; c++ {
			id++
			s.Enqueue(mkPkt(id, c, 100, 0), 0)
		}
	}
	wantRound := []int{0, 1, 2, 1, 2, 2}
	for r := 0; r < 4; r++ {
		for i, want := range wantRound {
			if got := s.Dequeue(1).Class; got != want {
				t.Fatalf("round %d position %d: served class %d, want %d", r, i, got, want)
			}
		}
	}
}

// TestIWRRSkipsEmptyClasses verifies work conservation when only a
// low-weight class is backlogged: the scan must wrap through the empty
// high-weight cycles and still serve it on every dequeue.
func TestIWRRSkipsEmptyClasses(t *testing.T) {
	s := NewIWRR([]float64{1, 8})
	for i := uint64(1); i <= 5; i++ {
		s.Enqueue(mkPkt(i, 0, 100, 0), 0)
	}
	// Burn the scan position into a high cycle first.
	s.Enqueue(mkPkt(100, 1, 100, 0), 0)
	if got := s.Dequeue(0).Class; got != 0 {
		t.Fatalf("first dequeue class %d, want 0", got)
	}
	for s.Backlogged() {
		if s.Dequeue(1) == nil {
			t.Fatal("nil dequeue with backlog")
		}
	}
	if s.Dequeue(2) != nil {
		t.Fatal("dequeue from empty returned a packet")
	}
}

// TestIWRRBandwidthShares checks the long-run service split follows the
// weights when every class stays backlogged with equal packet sizes.
func TestIWRRBandwidthShares(t *testing.T) {
	s := NewIWRR([]float64{1, 2, 4, 8})
	var id uint64
	for i := 0; i < 600; i++ {
		for c := 0; c < 4; c++ {
			id++
			s.Enqueue(mkPkt(id, c, 100, 0), 0)
		}
	}
	counts := [4]int{}
	for i := 0; i < 600; i++ {
		counts[s.Dequeue(float64(i)).Class]++
	}
	// 600 services = 40 rounds of 15 opportunities: exactly w_i*40 each.
	for c, w := range []int{1, 2, 4, 8} {
		if counts[c] != w*40 {
			t.Errorf("class %d served %d times, want %d (weights %v, counts %v)",
				c, counts[c], w*40, s.Weights(), counts)
		}
	}
}

// TestIWRRPositionPersistsAcrossIdle pins that the scan position is kept
// across an idle period rather than reset, matching the round structure
// the netcalc service curve models.
func TestIWRRPositionPersistsAcrossIdle(t *testing.T) {
	s := NewIWRR([]float64{1, 2})
	// Round: cycle0: 0,1; cycle1: 1. Serve "0,1" then drain.
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 0), 0)
	if s.Dequeue(1).Class != 0 || s.Dequeue(1).Class != 1 {
		t.Fatal("unexpected first cycle order")
	}
	// Idle. New backlog in both classes: next opportunity is cycle 1,
	// which belongs to class 1.
	s.Enqueue(mkPkt(3, 0, 100, 2), 2)
	s.Enqueue(mkPkt(4, 1, 100, 2), 2)
	if got := s.Dequeue(3).Class; got != 1 {
		t.Fatalf("after idle, served class %d, want 1 (cycle-1 slot)", got)
	}
	if got := s.Dequeue(3).Class; got != 0 {
		t.Fatalf("wrap to cycle 0 served class %d, want 0", got)
	}
}
