package core

// FCFS is a single shared first-come-first-served queue. It ignores class
// except for bookkeeping. FCFS is the reference "work-conserving FCFS
// server" of the conservation law (Eq. 5) and of the feasibility conditions
// (Eq. 7): simulating it on the aggregate (or a subset) of the traffic
// yields the d̄(λ) terms.
type FCFS struct {
	n     int
	q     fifo
	bytes []int64
	count []int
}

// NewFCFS returns a FCFS scheduler that accepts classes 0..n-1.
func NewFCFS(n int) *FCFS {
	ValidateClasses(n)
	return &FCFS{n: n, bytes: make([]int64, n), count: make([]int, n)}
}

// Name implements Scheduler.
func (s *FCFS) Name() string { return "FCFS" }

// NumClasses implements Scheduler.
func (s *FCFS) NumClasses() int { return s.n }

// Enqueue implements Scheduler.
func (s *FCFS) Enqueue(p *Packet, now float64) {
	if p.Class < 0 || p.Class >= s.n {
		panic("core: FCFS packet class out of range")
	}
	s.q.Push(p)
	s.bytes[p.Class] += p.Size
	s.count[p.Class]++
}

// Dequeue implements Scheduler.
func (s *FCFS) Dequeue(now float64) *Packet {
	p := s.q.Pop()
	if p != nil {
		s.bytes[p.Class] -= p.Size
		s.count[p.Class]--
	}
	return p
}

// PeekPriority implements HeadPeeker exactly: FCFS always serves the
// oldest packet, so the head's waiting time is both the merge priority and
// the selection Dequeue(now) makes. A peek-merge over per-shard FCFS
// instances therefore reproduces the single-queue FCFS order.
func (s *FCFS) PeekPriority(now float64) (pri float64, class int, ok bool) {
	head := s.q.Peek()
	if head == nil {
		return 0, 0, false
	}
	return now - head.Arrival, head.Class, true
}

// Backlogged implements Scheduler.
func (s *FCFS) Backlogged() bool { return s.q.Len() > 0 }

// Len implements Scheduler.
func (s *FCFS) Len(i int) int { return s.count[i] }

// Bytes implements Scheduler.
func (s *FCFS) Bytes(i int) int64 { return s.bytes[i] }
