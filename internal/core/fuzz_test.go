package core

import (
	"testing"
)

// FuzzDeque drives the fifo ring buffer through arbitrary operation
// sequences and cross-checks every observable against a plain-slice
// reference model. The ring's head/wrap arithmetic is exactly the kind of
// code a fuzzer breaks and a table test doesn't.
func FuzzDeque(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 2})
	f.Add([]byte{0, 2, 0, 1, 0, 2, 0, 1, 0, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q fifo
		var ref []*Packet
		nextID := uint64(1)
		for _, op := range ops {
			switch op % 3 {
			case 0: // push
				p := &Packet{ID: nextID, Size: int64(nextID%1500 + 1)}
				nextID++
				q.Push(p)
				ref = append(ref, p)
			case 1: // pop head
				got := q.Pop()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("Pop from empty returned %v", got)
					}
					continue
				}
				if got != ref[0] {
					t.Fatalf("Pop = %v, reference head %v", got, ref[0])
				}
				ref = ref[1:]
			case 2: // pop tail
				got := q.PopTail()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("PopTail from empty returned %v", got)
					}
					continue
				}
				if got != ref[len(ref)-1] {
					t.Fatalf("PopTail = %v, reference tail %v", got, ref[len(ref)-1])
				}
				ref = ref[:len(ref)-1]
			}
			// Invariants after every operation.
			if q.Len() != len(ref) {
				t.Fatalf("Len = %d, reference %d", q.Len(), len(ref))
			}
			if q.Empty() != (len(ref) == 0) {
				t.Fatalf("Empty = %v with %d reference packets", q.Empty(), len(ref))
			}
			if len(ref) > 0 {
				if q.Peek() != ref[0] {
					t.Fatalf("Peek = %v, reference %v", q.Peek(), ref[0])
				}
				if q.PeekTail() != ref[len(ref)-1] {
					t.Fatalf("PeekTail = %v, reference %v", q.PeekTail(), ref[len(ref)-1])
				}
				mid := len(ref) / 2
				if q.At(mid) != ref[mid] {
					t.Fatalf("At(%d) = %v, reference %v", mid, q.At(mid), ref[mid])
				}
			} else if q.Peek() != nil || q.PeekTail() != nil {
				t.Fatal("Peek/PeekTail non-nil on empty queue")
			}
		}
	})
}

// FuzzWTPScan feeds WTP random interleavings of enqueues and dequeues with
// a monotone clock and verifies every selection against a brute-force
// oracle over all queued packets: serve the maximum w·s priority, ties to
// the higher class, FIFO within a class. This is the §4.2 selection rule
// checked exhaustively rather than on the O(N) head scan's own terms.
func FuzzWTPScan(f *testing.F) {
	f.Add([]byte{0, 10, 1, 12, 2, 30, 255, 3, 5, 255, 255})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 255, 255, 255, 255})
	f.Add([]byte{3, 200, 2, 200, 1, 200, 0, 200, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		sdp := []float64{1, 2, 4, 8}
		w := NewWTP(sdp)
		mirror := make([][]*Packet, len(sdp))
		now := 0.0
		total := 0
		nextID := uint64(1)
		for i := 0; i+1 < len(data) || (i < len(data) && data[i] == 255); i++ {
			op := data[i]
			if op == 255 { // dequeue
				now += 0.5
				got := w.Dequeue(now)
				if total == 0 {
					if got != nil {
						t.Fatalf("Dequeue from empty returned %v", got)
					}
					continue
				}
				if got == nil {
					t.Fatalf("work conservation: nil Dequeue with %d queued", total)
				}
				// Brute-force oracle over every queued packet.
				bc, bp := -1, -1
				var bestPri float64
				for c := range mirror {
					for j, p := range mirror[c] {
						pri := (now - p.Arrival) * sdp[c]
						if bc == -1 || pri > bestPri ||
							(pri == bestPri && (c > bc || (c == bc && j < bp))) {
							bc, bp, bestPri = c, j, pri
						}
					}
				}
				want := mirror[bc][bp]
				if got != want {
					t.Fatalf("t=%g served id=%d class=%d, oracle wants id=%d class=%d",
						now, got.ID, got.Class, want.ID, want.Class)
				}
				if bp != 0 {
					t.Fatalf("oracle selected non-head position %d", bp)
				}
				mirror[bc] = mirror[bc][1:]
				total--
				continue
			}
			// enqueue: op selects the class, next byte the arrival gap.
			class := int(op) % len(sdp)
			i++
			now += float64(data[i]) / 16
			p := &Packet{ID: nextID, Class: class, Size: 100, Arrival: now}
			nextID++
			w.Enqueue(p, now)
			mirror[class] = append(mirror[class], p)
			total++
		}
	})
}
