package core

// This file implements the loss-differentiation extension the paper defers
// to future work (§7: "the proportional differentiation model has to be
// extended in the direction of coupled delay and loss differentiation").
// PLRDropper realizes the proportional loss rate model
//
//	l_i / l_j = σ_i / σ_j
//
// where l_i is the long-run loss fraction of class i and σ_1 > σ_2 > ... >
// σ_N > 0 are Loss Differentiation Parameters (lower classes lose more).
// When the buffer overflows, the dropper picks as victim the backlogged
// class whose normalized loss l_i/σ_i is currently smallest, pushing every
// class toward the common normalized level. This is the natural
// loss-domain analogue of WTP's delay normalization.

// DropPolicy chooses buffer-overflow victims. The link records every
// arrival and loss through the policy so it can base decisions on
// long-run per-class fractions (PLRDropper) or instantaneous state
// (StrictDropper).
type DropPolicy interface {
	// RecordArrival notes a class-i packet arrival (admitted or not).
	RecordArrival(i int)
	// Victim returns the class to drop from given the current backlog;
	// fallback is the arriving packet's class.
	Victim(s Scheduler, fallback int) int
	// RecordLoss notes a dropped class-i packet.
	RecordLoss(i int)
}

// TailDropper is implemented by schedulers that can evict the most recent
// packet of a class, enabling push-out buffer management. All per-class
// schedulers in this package implement it; FCFS does not (its single shared
// queue has no per-class tail).
type TailDropper interface {
	// DropTail removes and returns the most recently enqueued packet of
	// class i, or nil if that class has no backlog.
	DropTail(i int) *Packet
}

// DropTail implements TailDropper for every scheduler embedding
// classQueues.
func (c *classQueues) DropTail(i int) *Packet {
	p := c.q[i].PopTail()
	if p != nil {
		c.bytes[i] -= p.Size
		c.total--
	}
	return p
}

// PLRDropper tracks per-class arrivals and losses and chooses drop victims
// to keep the class loss fractions ratioed by the LDPs.
type PLRDropper struct {
	ldp      []float64
	arrivals []uint64
	losses   []uint64
}

// NewPLRDropper returns a dropper for len(ldp) classes. LDPs must be
// strictly positive and nonincreasing (higher classes lose less).
func NewPLRDropper(ldp []float64) *PLRDropper {
	ValidateClasses(len(ldp))
	for i, v := range ldp {
		if !(v > 0) {
			panic("core: LDPs must be > 0")
		}
		if i > 0 && v > ldp[i-1] {
			panic("core: LDPs must be nonincreasing")
		}
	}
	return &PLRDropper{
		ldp:      append([]float64(nil), ldp...),
		arrivals: make([]uint64, len(ldp)),
		losses:   make([]uint64, len(ldp)),
	}
}

// NumClasses returns the class count.
func (d *PLRDropper) NumClasses() int { return len(d.ldp) }

// RecordArrival notes a class-i packet arrival (call for every arrival,
// admitted or not).
func (d *PLRDropper) RecordArrival(i int) { d.arrivals[i]++ }

// Victim returns the class to drop from, given the current scheduler
// backlog: the backlogged class with the smallest normalized loss fraction
// (l_i/σ_i). If no class is backlogged it returns fallback. The caller must
// then call RecordLoss for the class actually dropped.
func (d *PLRDropper) Victim(s Scheduler, fallback int) int {
	best := -1
	var bestNorm float64
	for i := 0; i < len(d.ldp); i++ {
		if s.Len(i) == 0 && i != fallback {
			continue
		}
		var frac float64
		if d.arrivals[i] > 0 {
			frac = float64(d.losses[i]) / float64(d.arrivals[i])
		}
		norm := frac / d.ldp[i]
		if best == -1 || norm < bestNorm {
			best, bestNorm = i, norm
		}
	}
	if best == -1 {
		return fallback
	}
	return best
}

// RecordLoss notes a dropped class-i packet.
func (d *PLRDropper) RecordLoss(i int) { d.losses[i]++ }

// LossFraction returns the observed loss fraction of class i
// (0 when the class has no arrivals yet).
func (d *PLRDropper) LossFraction(i int) float64 {
	if d.arrivals[i] == 0 {
		return 0
	}
	return float64(d.losses[i]) / float64(d.arrivals[i])
}

// Arrivals returns the number of class-i arrivals recorded.
func (d *PLRDropper) Arrivals(i int) uint64 { return d.arrivals[i] }

// Losses returns the number of class-i losses recorded.
func (d *PLRDropper) Losses(i int) uint64 { return d.losses[i] }

// StrictDropper realizes the loss aspect of strict prioritization (§2.1):
// "when a packet needs to be dropped, it is from the lowest backlogged
// class". Like its delay counterpart it is consistent but offers no
// control over the loss spacing; it is the baseline the PLR dropper is
// compared against.
type StrictDropper struct {
	arrivals []uint64
	losses   []uint64
}

// NewStrictDropper returns a strict loss-priority dropper for n classes.
func NewStrictDropper(n int) *StrictDropper {
	ValidateClasses(n)
	return &StrictDropper{arrivals: make([]uint64, n), losses: make([]uint64, n)}
}

// RecordArrival implements DropPolicy.
func (d *StrictDropper) RecordArrival(i int) { d.arrivals[i]++ }

// Victim implements DropPolicy: the lowest backlogged class.
func (d *StrictDropper) Victim(s Scheduler, fallback int) int {
	for i := 0; i < s.NumClasses(); i++ {
		if s.Len(i) > 0 {
			return i
		}
	}
	return fallback
}

// RecordLoss implements DropPolicy.
func (d *StrictDropper) RecordLoss(i int) { d.losses[i]++ }

// LossFraction returns the observed loss fraction of class i.
func (d *StrictDropper) LossFraction(i int) float64 {
	if d.arrivals[i] == 0 {
		return 0
	}
	return float64(d.losses[i]) / float64(d.arrivals[i])
}
