package core

// PF is an EWMA proportional-fair scheduler, the packet-queue analog of
// the classic cellular proportional-fair downlink rule: at each selection
// instant the backlogged class maximizing
//
//	p_i = w_i · L_i / R_i
//
// is served, where L_i is the head packet's size (the "instantaneous
// rate" the class achieves if scheduled now), w_i the class's QoS weight,
// and R_i an exponentially weighted moving average of the bytes the class
// actually received per selection slot:
//
//	R_i ← (1 − 1/T)·R_i + served_i·(1/T)·L_i
//
// with time scale T slots. Classes that have been underserved relative to
// their weight see their R_i decay and their priority rise, so long-run
// byte shares among continuously backlogged classes converge to the
// weight proportions — class-level Discriminatory Processor Sharing
// behaviour, which is what internal/model's DPS fluid reference tests it
// against. Like the other capacity-differentiation members (WFQ, DRR,
// IWRR) the resulting *delay* ratios drift with class loads; PF's
// distinguishing feature is the memory: after an idle spell a returning
// class briefly catches up, where DRR and WFQ restart it from scratch.
type PF struct {
	classQueues
	weight []float64 // per-class QoS weights (SDP-style, nondecreasing)
	ltRate []float64 // EWMA long-term served bytes per selection slot
	tScale float64
}

// DefaultPFTimeScale is the EWMA horizon in selection slots. A few
// hundred slots spans many paper-size packets, long enough to smooth
// per-packet size noise and short enough to track class-mix shifts
// within a chaos segment.
const DefaultPFTimeScale = 256

// pfFloor bounds the EWMA rate away from zero so priorities stay finite
// after arbitrarily long idle decay.
const pfFloor = 1e-6

// NewPF returns a proportional-fair scheduler with the given per-class
// weights (nondecreasing, strictly positive).
func NewPF(weights []float64) *PF {
	ValidateSDPs(weights)
	n := len(weights)
	s := &PF{
		classQueues: newClassQueues(n),
		weight:      append([]float64(nil), weights...),
		ltRate:      make([]float64, n),
		tScale:      DefaultPFTimeScale,
	}
	for i := range s.ltRate {
		// Start every class at the floor: the first selections go to the
		// highest-weight backlogged class, then the EWMA takes over.
		s.ltRate[i] = pfFloor
	}
	return s
}

// Name implements Scheduler.
func (s *PF) Name() string { return "PF" }

// Weights returns the per-class QoS weights.
func (s *PF) Weights() []float64 { return s.weight }

// Enqueue implements Scheduler.
func (s *PF) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler: serve the backlogged class with the
// highest weighted instantaneous-to-average rate ratio, ties favoring the
// higher class (low-to-high scan with >=), then roll every class's EWMA
// forward one slot.
func (s *PF) Dequeue(now float64) *Packet {
	best := -1
	var bestPri float64
	for i, q := range s.q {
		head := q.Peek()
		if head == nil {
			continue
		}
		pri := s.weight[i] * float64(head.Size) / s.ltRate[i]
		if best == -1 || pri >= bestPri {
			best, bestPri = i, pri
		}
	}
	if best == -1 {
		return nil
	}
	p := s.pop(best)
	decay := 1 - 1/s.tScale
	for i := range s.ltRate {
		s.ltRate[i] *= decay
		if s.ltRate[i] < pfFloor {
			s.ltRate[i] = pfFloor
		}
	}
	s.ltRate[best] += float64(p.Size) / s.tScale
	return p
}

// Retune implements Retuner: the weight vector is replaced while the
// EWMA state carries over, so a controller step shifts the equilibrium
// shares without forgetting who was recently served.
func (s *PF) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.weight)); err != nil {
		return err
	}
	copy(s.weight, params)
	return nil
}
