package core

import (
	"errors"
	"math"
	"testing"
)

// retunableKinds lists every scheduler with a live parameter vector; the
// seam tests and FuzzRetune iterate it.
var retunableKinds = []Kind{KindWTP, KindBPR, KindWFQ, KindAdditive, KindPAD, KindHPD, KindDRR, KindIWRR, KindPF}

func TestRetuneDispatch(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	for _, kind := range retunableKinds {
		s, err := New(kind, sdp, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.(Retuner); !ok {
			t.Errorf("%s does not implement Retuner", kind)
			continue
		}
		if err := Retune(s, []float64{1, 3, 5, 9}); err != nil {
			t.Errorf("%s: Retune rejected a valid vector: %v", kind, err)
		}
	}
	for _, kind := range []Kind{KindFCFS, KindStrict} {
		s, _ := New(kind, sdp, 100)
		if err := Retune(s, sdp); !errors.Is(err, ErrNotRetunable) {
			t.Errorf("%s: Retune = %v, want ErrNotRetunable", kind, err)
		}
	}
}

func TestRetuneRejectsBadParamsAndLeavesStateIntact(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{1, 2, 4},        // wrong length
		{1, 2, 4, 8, 16}, // wrong length
		{0, 1, 2, 3},     // zero
		{-1, 2, 4, 8},    // negative
		{1, 2, math.NaN(), 8},
		{1, 2, math.Inf(1), math.Inf(1)},
		{1, 4, 2, 8}, // decreasing
	}
	for _, kind := range retunableKinds {
		s, err := New(kind, []float64{1, 2, 4, 8}, 100)
		if err != nil {
			t.Fatal(err)
		}
		// Build a small deterministic backlog first so a buggy reject
		// path that mutates state anyway would be visible downstream.
		for i := 0; i < 8; i++ {
			s.Enqueue(mkPkt(uint64(i+1), i%4, 100, float64(i)), float64(i))
		}
		for _, params := range bad {
			if err := s.(Retuner).Retune(params); err == nil {
				t.Errorf("%s: Retune(%v) accepted invalid params", kind, params)
			}
		}
		// The backlog must drain fully and in FIFO order per class.
		lastID := make(map[int]uint64)
		for n := 0; n < 8; n++ {
			p := s.Dequeue(100 + float64(n))
			if p == nil {
				t.Fatalf("%s: backlog lost after rejected retunes", kind)
			}
			if prev, ok := lastID[p.Class]; ok && p.ID < prev {
				t.Fatalf("%s: FIFO within class %d broken (%d after %d)", kind, p.Class, p.ID, prev)
			}
			lastID[p.Class] = p.ID
		}
		if s.Backlogged() {
			t.Fatalf("%s: packets remain after full drain", kind)
		}
	}
}

// A retuned WTP must select under the new SDPs: with equal waiting times
// the steeper class wins before the retune, the flattened vector hands the
// tie-break back to the scan order.
func TestWTPRetuneChangesSelection(t *testing.T) {
	s := NewWTP([]float64{1, 8})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 0), 0)
	pri, class, _ := s.PeekPriority(10)
	if class != 1 || pri != 80 {
		t.Fatalf("pre-retune peek = (%g,%d), want (80,1)", pri, class)
	}
	if err := s.Retune([]float64{100, 100}); err != nil {
		t.Fatal(err)
	}
	pri, class, _ = s.PeekPriority(10)
	if class != 1 || pri != 1000 {
		t.Fatalf("post-retune peek = (%g,%d), want (1000,1)", pri, class)
	}
	if got := s.SDP(0); got != 100 {
		t.Fatalf("SDP(0) = %g after retune, want 100", got)
	}
}

func TestDRRRetuneRecomputesQuanta(t *testing.T) {
	s := NewDRR([]float64{1, 2, 4, 8})
	if err := s.Retune([]float64{1, 1, 1, 16}); err != nil {
		t.Fatal(err)
	}
	want := []float64{baseQuantum, baseQuantum, baseQuantum, 16 * baseQuantum}
	for i, q := range s.quantum {
		if q != want[i] {
			t.Fatalf("quantum = %v, want %v", s.quantum, want)
		}
	}
}

func TestIWRRRetuneClampsScanPosition(t *testing.T) {
	s := NewIWRR([]float64{1, 2, 4, 8})
	if s.wmax != 8 {
		t.Fatalf("wmax = %d, want 8", s.wmax)
	}
	s.cycle = 7 // deep in the old round
	if err := s.Retune([]float64{1, 1, 2, 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Weights(); got[0] != 1 || got[1] != 1 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("weights = %v, want [1 1 2 2]", got)
	}
	if s.wmax != 2 || s.cycle != 0 {
		t.Fatalf("wmax=%d cycle=%d after shrink, want wmax=2 cycle=0", s.wmax, s.cycle)
	}
}

// The zero-steady-state-alloc gate must survive a flapping controller:
// interleaving a Retune into every warm enqueue+dequeue cycle may not
// touch the heap (same class count ⇒ in-place parameter swap).
func TestRetuneSteadyStateZeroAllocs(t *testing.T) {
	paramsA := []float64{1, 2, 4, 8}
	paramsB := []float64{1, 3, 9, 27}
	for _, kind := range retunableKinds {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sched, err := New(kind, paramsA, 441.0/11.2)
			if err != nil {
				t.Fatal(err)
			}
			warmCycle(t, sched)
			ret := sched.(Retuner)
			now := 1000.0
			flip := false
			allocs := testing.AllocsPerRun(200, func() {
				now++
				params := paramsA
				if flip = !flip; flip {
					params = paramsB
				}
				if err := ret.Retune(params); err != nil {
					t.Fatal(err)
				}
				p := sched.Dequeue(now)
				p.Arrival = now
				sched.Enqueue(p, now)
			})
			if allocs != 0 {
				t.Errorf("%s retune+enqueue+dequeue: %.1f allocs/op, want 0", kind, allocs)
			}
		})
	}
}

// FuzzRetune is the retune-seam property test: arbitrary parameter
// vectors fired into a live scheduler mid-run — interleaved with enqueues
// and dequeues — must never break conservation, FIFO order within a
// class, or the accounting counters, whether the vectors are valid or
// garbage. Invalid vectors must be rejected with an error, never a panic.
func FuzzRetune(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{1, 2, 4, 8}, uint8(0))
	f.Add([]byte{0, 0, 0, 5, 5, 5, 9, 9}, []byte{8, 4, 2, 1}, uint8(3))
	f.Add([]byte{7, 7, 7, 7, 2, 2}, []byte{0, 0, 0, 0}, uint8(6))
	f.Fuzz(func(t *testing.T, ops []byte, raw []byte, kindSel uint8) {
		kind := retunableKinds[int(kindSel)%len(retunableKinds)]
		s, err := New(kind, []float64{1, 2, 4, 8}, 100)
		if err != nil {
			t.Fatal(err)
		}
		ret := s.(Retuner)

		// Decode the fuzzed parameter vector: raw bytes become floats,
		// including zeros and wild magnitudes, so both the accept and
		// reject paths run.
		params := make([]float64, len(raw))
		for i, b := range raw {
			params[i] = float64(b) * 0.25
		}

		now := 0.0
		var id uint64
		enq, deq := make([]int, 4), make([]int, 4)
		lastID := make([]uint64, 4)
		for _, op := range ops {
			now += float64(op%7) + 0.5
			switch op % 4 {
			case 0, 1: // enqueue
				id++
				class := int(op/4) % 4
				s.Enqueue(mkPkt(id, class, int64(40+int(op)*5), now), now)
				enq[class]++
			case 2: // dequeue
				if p := s.Dequeue(now); p != nil {
					deq[p.Class]++
					if lastID[p.Class] != 0 && p.ID < lastID[p.Class] {
						t.Fatalf("%s: FIFO broken in class %d: %d after %d",
							kind, p.Class, p.ID, lastID[p.Class])
					}
					lastID[p.Class] = p.ID
				}
			case 3: // retune mid-run with whatever the fuzzer brought
				vec := params
				if op >= 128 && len(params) >= 4 {
					vec = params[:4] // right length more often
				}
				if err := ret.Retune(vec); err == nil {
					if CheckRetuneParams(vec, 4) != nil {
						t.Fatalf("%s: Retune accepted invalid %v", kind, vec)
					}
				}
			}
			// Accounting must match the mirror counts after every op.
			total := 0
			for c := 0; c < 4; c++ {
				if got, want := s.Len(c), enq[c]-deq[c]; got != want {
					t.Fatalf("%s: Len(%d) = %d, mirror %d", kind, c, got, want)
				}
				total += enq[c] - deq[c]
			}
			if s.Backlogged() != (total > 0) {
				t.Fatalf("%s: Backlogged = %v with %d queued", kind, s.Backlogged(), total)
			}
		}
		// Conservation: everything enqueued drains, in class-FIFO order.
		for s.Backlogged() {
			now++
			p := s.Dequeue(now)
			if p == nil {
				t.Fatalf("%s: Dequeue nil with backlog", kind)
			}
			deq[p.Class]++
			if lastID[p.Class] != 0 && p.ID < lastID[p.Class] {
				t.Fatalf("%s: FIFO broken in class %d during drain", kind, p.Class)
			}
			lastID[p.Class] = p.ID
		}
		for c := 0; c < 4; c++ {
			if enq[c] != deq[c] {
				t.Fatalf("%s: class %d enqueued %d dequeued %d", kind, c, enq[c], deq[c])
			}
		}
	})
}
