package core

// Additive is the additive delay differentiation scheduler sketched in §2.1
// (Eq. 3): a priority scheduler where the head packet of class i has
// priority
//
//	p_i(t) = w_i(t) + s_i
//
// Under heavy load it tends to an *additive* delay spacing
// d_i − d_j = s_j − s_i between classes, rather than the proportional
// spacing WTP produces. It is included as the paper's "interesting case of
// another relative differentiation model" for the ablation benches.
type Additive struct {
	classQueues
	sdp []float64
}

// NewAdditive returns an additive-differentiation scheduler with the given
// per-class offsets (nondecreasing, strictly positive).
func NewAdditive(sdp []float64) *Additive {
	ValidateSDPs(sdp)
	s := &Additive{classQueues: newClassQueues(len(sdp))}
	s.sdp = append([]float64(nil), sdp...)
	return s
}

// Name implements Scheduler.
func (s *Additive) Name() string { return "Additive" }

// Enqueue implements Scheduler.
func (s *Additive) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler.
func (s *Additive) Dequeue(now float64) *Packet {
	best := -1
	var bestPri float64
	for i, q := range s.q {
		head := q.Peek()
		if head == nil {
			continue
		}
		pri := (now - head.Arrival) + s.sdp[i]
		if best == -1 || pri >= bestPri {
			best, bestPri = i, pri
		}
	}
	if best == -1 {
		return nil
	}
	return s.pop(best)
}
