package core

import "fmt"

// Scheduler is a work-conserving multi-class packet scheduler. A link
// harness calls Enqueue on packet arrival and Dequeue each time the output
// link becomes free; Dequeue picks the next packet to transmit according to
// the discipline and returns nil when no packet is backlogged.
//
// Schedulers are not safe for concurrent use; the simulation engine is
// single-threaded and the real-network forwarder serializes access.
type Scheduler interface {
	// Name returns the discipline's short name (e.g. "WTP").
	Name() string
	// NumClasses returns the number of service classes N.
	NumClasses() int
	// Enqueue adds p to its class queue at time now.
	Enqueue(p *Packet, now float64)
	// Dequeue removes and returns the packet to transmit next at time
	// now, or nil if all queues are empty.
	Dequeue(now float64) *Packet
	// Backlogged reports whether any packet is queued.
	Backlogged() bool
	// Len returns the number of packets queued in class i.
	Len(i int) int
	// Bytes returns the byte backlog of class i.
	Bytes(i int) int64
}

// HeadPeeker is the non-destructive selection preview used by the sharded
// forwarder's deadline-merge egress (internal/netio): PeekPriority reports
// the priority and class of the packet Dequeue(now) would return, without
// dequeuing it. A merge stage peeks every shard's scheduler and dequeues
// only from the shard holding the global maximum, so per-shard instances
// compose into one global discipline.
//
// Higher priority wins; ties favor the higher class (mirroring WTP's
// internal tie-break), and callers break remaining ties deterministically
// (e.g. by shard index).
//
// WTP implements it exactly: PeekPriority(now) returns the priority and
// class of precisely the packet an immediately following Dequeue(now)
// would select (waiting time × SDP, §4.2), so a peek-merge over per-shard
// WTP instances reproduces the single-queue WTP order. Schedulers that
// embed classQueues inherit a FIFO-age fallback — priority = the oldest
// head packet's waiting time — which ranks shards by global arrival order;
// their own Dequeue may then serve a different class than the one peeked,
// so a merge over them is FIFO across shards but discipline-faithful only
// within each shard.
type HeadPeeker interface {
	PeekPriority(now float64) (pri float64, class int, ok bool)
}

// Kind names a scheduler discipline for construction by configuration.
type Kind string

// Supported scheduler kinds.
const (
	KindWTP      Kind = "wtp"      // Waiting-Time Priority (§4.2)
	KindBPR      Kind = "bpr"      // Backlog-Proportional Rate (§4.1, Appendix 3)
	KindFCFS     Kind = "fcfs"     // single shared FIFO (reference server)
	KindStrict   Kind = "strict"   // strict prioritization (§2.1)
	KindWFQ      Kind = "wfq"      // capacity differentiation via fair queueing (§2.1)
	KindAdditive Kind = "additive" // additive delay differentiation (§2.1, Eq. 3)
	KindPAD      Kind = "pad"      // proportional average delay (§7 follow-up)
	KindHPD      Kind = "hpd"      // hybrid WTP/PAD (§7 follow-up)
	KindDRR      Kind = "drr"      // deficit round robin (capacity differentiation)
	KindIWRR     Kind = "iwrr"     // interleaved weighted round robin (capacity differentiation)
	KindPF       Kind = "pf"       // EWMA proportional fair (capacity differentiation)
)

// Kinds lists every supported scheduler kind.
func Kinds() []Kind {
	return []Kind{KindWTP, KindBPR, KindFCFS, KindStrict, KindWFQ, KindAdditive, KindPAD, KindHPD, KindDRR, KindIWRR, KindPF}
}

// New constructs a scheduler of the given kind for len(sdp) classes.
//
// The SDP slice is interpreted per discipline: WTP/BPR/additive use it as
// the paper's scheduler differentiation parameters; WFQ uses it as the
// per-class service weights; FCFS and strict priority only use its length.
// rate is the output link rate in bytes per time unit (needed by BPR to
// split service among backlogged queues; ignored by the others).
func New(kind Kind, sdp []float64, rate float64) (Scheduler, error) {
	switch kind {
	case KindWTP:
		return NewWTP(sdp), nil
	case KindBPR:
		return NewBPR(sdp, rate), nil
	case KindFCFS:
		return NewFCFS(len(sdp)), nil
	case KindStrict:
		return NewStrict(len(sdp)), nil
	case KindWFQ:
		return NewWFQ(sdp), nil
	case KindAdditive:
		return NewAdditive(sdp), nil
	case KindPAD:
		return NewPAD(sdp), nil
	case KindHPD:
		return NewHPD(sdp, DefaultHPDG), nil
	case KindDRR:
		return NewDRR(sdp), nil
	case KindIWRR:
		return NewIWRR(sdp), nil
	case KindPF:
		return NewPF(sdp), nil
	default:
		return nil, fmt.Errorf("core: unknown scheduler kind %q", kind)
	}
}

// classQueues is the shared per-class FIFO state embedded by every
// discipline except FCFS.
type classQueues struct {
	q     []fifo
	bytes []int64
	total int
}

func newClassQueues(n int) classQueues {
	ValidateClasses(n)
	return classQueues{q: make([]fifo, n), bytes: make([]int64, n)}
}

func (c *classQueues) push(p *Packet) {
	if p.Class < 0 || p.Class >= len(c.q) {
		panic(fmt.Sprintf("core: packet class %d out of range [0,%d)", p.Class, len(c.q)))
	}
	c.q[p.Class].Push(p)
	c.bytes[p.Class] += p.Size
	c.total++
}

func (c *classQueues) pop(i int) *Packet {
	p := c.q[i].Pop()
	if p != nil {
		c.bytes[i] -= p.Size
		c.total--
	}
	return p
}

// NumClasses returns the class count.
func (c *classQueues) NumClasses() int { return len(c.q) }

// Backlogged reports whether any class queue is nonempty.
func (c *classQueues) Backlogged() bool { return c.total > 0 }

// Len returns the packet count of class i.
func (c *classQueues) Len(i int) int { return c.q[i].Len() }

// Bytes returns the byte backlog of class i.
func (c *classQueues) Bytes(i int) int64 { return c.bytes[i] }

// PeekPriority is the FIFO-age fallback HeadPeeker implementation inherited
// by every classQueues-embedding discipline that does not override it:
// priority = the oldest backlogged head's waiting time, ties favoring the
// higher class. Disciplines whose Dequeue order is not head-age order
// (DRR, WFQ, BPR, ...) merge across shards in global-FIFO order under this
// fallback rather than in their exact single-queue order; WTP overrides it
// with the exact waiting-time-priority scan.
func (c *classQueues) PeekPriority(now float64) (pri float64, class int, ok bool) {
	best := -1
	var bestPri float64
	for i := range c.q {
		head := c.q[i].Peek()
		if head == nil {
			continue
		}
		if p := now - head.Arrival; best == -1 || p >= bestPri {
			best, bestPri = i, p
		}
	}
	if best == -1 {
		return 0, 0, false
	}
	return bestPri, best, true
}
