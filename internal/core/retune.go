package core

import (
	"errors"
	"fmt"
	"math"
)

// Retuner is the live parameter-retune seam used by the closed-loop DDP
// controller (internal/control): Retune replaces a scheduler's
// differentiation parameters — SDPs for the proportional family, service
// weights for the capacity family — without touching any queued packet.
//
// Contract:
//
//   - Retune validates and returns an error instead of panicking: the
//     parameter vector arrives from a runtime feedback path (or a fuzzer),
//     not from construction-time configuration.
//   - On error the scheduler is unchanged.
//   - Only parameter state changes. Queue contents, per-class FIFO order,
//     byte accounting, and any in-progress round/deficit state survive, so
//     conservation and FIFO-within-class hold across arbitrary mid-run
//     retunes (pinned by FuzzRetune).
//   - A successful Retune with an unchanged class count performs no heap
//     allocation, keeping the steady-state zero-alloc gate intact even
//     under a flapping controller.
//
// Schedulers without tunable parameters (FCFS, strict priority) do not
// implement the interface; use Retune (the package function) to dispatch
// with a typed error instead of a type assertion at every call site.
type Retuner interface {
	Retune(params []float64) error
}

// ErrNotRetunable reports a scheduler with no tunable parameter vector.
var ErrNotRetunable = errors.New("core: scheduler is not retunable")

// Retune applies params to s if it implements Retuner, and returns
// ErrNotRetunable otherwise.
func Retune(s Scheduler, params []float64) error {
	if r, ok := s.(Retuner); ok {
		return r.Retune(params)
	}
	return fmt.Errorf("%w (%s)", ErrNotRetunable, s.Name())
}

// CheckRetuneParams is the non-panicking counterpart of ValidateSDPs used
// by the retune seam: params must have exactly n entries, every entry
// finite and strictly positive, and the vector nondecreasing.
func CheckRetuneParams(params []float64, n int) error {
	if len(params) != n {
		return fmt.Errorf("core: retune got %d params for %d classes", len(params), n)
	}
	for i, v := range params {
		if !(v > 0) || math.IsInf(v, 1) {
			return fmt.Errorf("core: retune param[%d]=%g must be finite and > 0", i, v)
		}
		if i > 0 && v < params[i-1] {
			return fmt.Errorf("core: retune params must be nondecreasing, got %v", params)
		}
	}
	return nil
}

// Retune implements Retuner: the SDP vector is replaced; queued packets
// keep their positions and future selection scans use the new priorities.
func (s *WTP) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.sdp)); err != nil {
		return err
	}
	copy(s.sdp, params)
	return nil
}

// Retune implements Retuner. The departed-delay history (sum/count) is
// deliberately retained: PAD's normalized average is a long-run quantity,
// and resetting it on every controller step would turn each retune into a
// transient of its own.
func (s *PAD) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.sdp)); err != nil {
		return err
	}
	copy(s.sdp, params)
	return nil
}

// Retune implements Retuner; like PAD, the delay history survives.
func (s *HPD) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.sdp)); err != nil {
		return err
	}
	copy(s.sdp, params)
	return nil
}

// Retune implements Retuner. The fluid rates are re-solved from the new
// SDPs at the next departure epoch, exactly as they would be after any
// backlog change.
func (s *BPR) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.sdp)); err != nil {
		return err
	}
	copy(s.sdp, params)
	return nil
}

// Retune implements Retuner for the additive-offset vector.
func (s *Additive) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.sdp)); err != nil {
		return err
	}
	copy(s.sdp, params)
	return nil
}

// Retune implements Retuner. Finish tags already assigned keep their old
// spacing (per-class tags stay monotone, so FIFO within a class is
// untouched); packets enqueued after the retune are tagged with the new
// weights.
func (s *WFQ) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.weight)); err != nil {
		return err
	}
	copy(s.weight, params)
	return nil
}

// Retune implements Retuner: the per-class quanta are recomputed from the
// new weights (baseQuantum scaling as in NewDRR) while deficits, the
// active ring and the rotation position carry over, so the round in
// progress completes under the blended state and the new shares take full
// effect from the next round.
func (s *DRR) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.quantum)); err != nil {
		return err
	}
	for i, w := range params {
		s.quantum[i] = baseQuantum * w / params[0]
	}
	return nil
}

// Retune implements Retuner: the integer weights are recomputed in place
// (same rounding as IntWeights) and the scan position is clamped into the
// new round structure — the cycle index resets only when the new maximum
// weight no longer covers it.
func (s *IWRR) Retune(params []float64) error {
	if err := CheckRetuneParams(params, len(s.weight)); err != nil {
		return err
	}
	min := params[0]
	for _, w := range params {
		if w < min {
			min = w
		}
	}
	wmax := 0
	for i, w := range params {
		iw := int(math.Round(w / min))
		if iw < 1 {
			iw = 1
		}
		s.weight[i] = iw
		if iw > wmax {
			wmax = iw
		}
	}
	s.wmax = wmax
	if s.cycle >= s.wmax {
		s.cycle = 0
	}
	return nil
}
