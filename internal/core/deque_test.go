package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFifoBasics(t *testing.T) {
	var f fifo
	if !f.Empty() || f.Len() != 0 {
		t.Fatal("zero fifo not empty")
	}
	if f.Pop() != nil || f.Peek() != nil || f.PeekTail() != nil || f.PopTail() != nil {
		t.Fatal("empty fifo returned a packet")
	}
	p1 := &Packet{ID: 1}
	p2 := &Packet{ID: 2}
	p3 := &Packet{ID: 3}
	f.Push(p1)
	f.Push(p2)
	f.Push(p3)
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
	if f.Peek() != p1 || f.PeekTail() != p3 {
		t.Fatal("Peek/PeekTail wrong")
	}
	if f.At(0) != p1 || f.At(1) != p2 || f.At(2) != p3 {
		t.Fatal("At wrong")
	}
	if f.Pop() != p1 || f.Pop() != p2 || f.Pop() != p3 || f.Pop() != nil {
		t.Fatal("Pop order wrong")
	}
}

func TestFifoPopTail(t *testing.T) {
	var f fifo
	for i := uint64(0); i < 5; i++ {
		f.Push(&Packet{ID: i})
	}
	if f.PopTail().ID != 4 {
		t.Fatal("PopTail wrong")
	}
	if f.Pop().ID != 0 {
		t.Fatal("Pop after PopTail wrong")
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d, want 3", f.Len())
	}
}

func TestFifoAtPanics(t *testing.T) {
	var f fifo
	f.Push(&Packet{})
	for _, i := range []int{-1, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", i)
				}
			}()
			f.At(i)
		}()
	}
}

// Property: under any interleaving of pushes and pops (from either end),
// the ring fifo behaves exactly like a reference slice implementation.
func TestFifoMatchesReferenceModel(t *testing.T) {
	f := func(seed uint64, opsCount uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		var ring fifo
		var ref []*Packet
		var id uint64
		ops := int(opsCount%512) + 1
		for k := 0; k < ops; k++ {
			switch rng.IntN(5) {
			case 0, 1, 2: // push (biased so queues grow and wrap)
				id++
				p := &Packet{ID: id}
				ring.Push(p)
				ref = append(ref, p)
			case 3: // pop head
				got := ring.Pop()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := ref[0]
					ref = ref[1:]
					if got != want {
						return false
					}
				}
			case 4: // pop tail
				got := ring.PopTail()
				if len(ref) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := ref[len(ref)-1]
					ref = ref[:len(ref)-1]
					if got != want {
						return false
					}
				}
			}
			if ring.Len() != len(ref) {
				return false
			}
			if len(ref) > 0 && (ring.Peek() != ref[0] || ring.PeekTail() != ref[len(ref)-1]) {
				return false
			}
			for i := range ref {
				if ring.At(i) != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFloatRing(t *testing.T) {
	var r floatRing
	if r.Len() != 0 {
		t.Fatal("zero floatRing nonempty")
	}
	for i := 0; i < 100; i++ {
		r.Push(float64(i))
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Peek() != 0 {
		t.Fatal("Peek wrong")
	}
	for i := 0; i < 100; i++ {
		if got := r.Pop(); got != float64(i) {
			t.Fatalf("Pop #%d = %g", i, got)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Pop on empty floatRing did not panic")
			}
		}()
		r.Pop()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Peek on empty floatRing did not panic")
			}
		}()
		r.Peek()
	}()
}
