package core

// DRR is Deficit Round Robin — the O(1) packetized fair-queueing
// discipline (Shreedhar & Varghese) — with per-class quanta proportional
// to the SDPs. Like WFQ it realizes §2.1's *capacity differentiation*:
// bandwidth shares are controllable, but the resulting delay ratios drift
// with the class loads, which is exactly the deficiency the proportional
// schedulers fix. It is included as a second, structurally different
// member of that family for the ablation experiments.
type DRR struct {
	classQueues
	quantum []float64
	deficit []float64
	// active round-robin ring of backlogged classes.
	ring []int
	pos  int
	// topped records whether the class at pos already received its
	// quantum on this visit; it resets whenever the position rotates.
	topped bool
}

// baseQuantum is the smallest class's per-round quantum in bytes; chosen
// near the largest paper packet so one round typically releases at least
// one packet per backlogged class.
const baseQuantum = 1500

// NewDRR returns a deficit-round-robin scheduler whose per-class quanta
// are proportional to the given weights.
func NewDRR(weights []float64) *DRR {
	ValidateSDPs(weights)
	n := len(weights)
	s := &DRR{
		classQueues: newClassQueues(n),
		quantum:     make([]float64, n),
		deficit:     make([]float64, n),
	}
	for i, w := range weights {
		s.quantum[i] = baseQuantum * w / weights[0]
	}
	return s
}

// Name implements Scheduler.
func (s *DRR) Name() string { return "DRR" }

// Enqueue implements Scheduler.
func (s *DRR) Enqueue(p *Packet, now float64) {
	wasEmpty := s.q[p.Class].Empty()
	s.push(p)
	if wasEmpty {
		s.ring = append(s.ring, p.Class)
		s.deficit[p.Class] = 0
	}
}

// Dequeue implements Scheduler.
func (s *DRR) Dequeue(now float64) *Packet {
	if s.total == 0 {
		return nil
	}
	// Each ring visit grants the class one quantum; if its head still
	// does not fit, the rotation moves on. The smallest quantum covers
	// the largest paper packet, so a full pass always releases a packet;
	// bound the loop defensively regardless.
	maxIter := 4 * (len(s.ring) + 1)
	for iter := 0; iter < maxIter; iter++ {
		if s.pos >= len(s.ring) {
			s.pos = 0
			s.topped = false
		}
		class := s.ring[s.pos]
		head := s.q[class].Peek()
		if head == nil {
			// Class drained earlier in this round: drop it from
			// the ring.
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			s.topped = false
			continue
		}
		if !s.topped {
			s.deficit[class] += s.quantum[class]
			s.topped = true
		}
		if s.deficit[class] < float64(head.Size) {
			// Even the topped-up deficit does not cover the head:
			// rotate and let the deficit carry to the next round.
			s.pos++
			s.topped = false
			continue
		}
		s.deficit[class] -= float64(head.Size)
		p := s.pop(class)
		if s.q[class].Empty() {
			s.deficit[class] = 0
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			s.topped = false
		}
		return p
	}
	// Unreachable while total > 0; keep the scheduler safe regardless.
	for i := range s.q {
		if !s.q[i].Empty() {
			return s.pop(i)
		}
	}
	return nil
}
