package core

import (
	"math/rand"
	"testing"
)

// Every supported scheduler must satisfy HeadPeeker (exactly for WTP and
// FCFS, via the classQueues FIFO-age fallback for the rest), since the
// sharded forwarder's deadline-merge peeks whatever discipline it is
// configured with.
func TestAllKindsImplementHeadPeeker(t *testing.T) {
	for _, kind := range Kinds() {
		sched, err := New(kind, []float64{1, 2, 4, 8}, 100)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := sched.(HeadPeeker); !ok {
			t.Errorf("%s does not implement HeadPeeker", kind)
		}
	}
}

// PeekPriority on an empty scheduler reports no head and must not perturb
// later behaviour.
func TestPeekEmpty(t *testing.T) {
	for _, kind := range Kinds() {
		sched, _ := New(kind, []float64{1, 2}, 100)
		if _, _, ok := sched.(HeadPeeker).PeekPriority(1.0); ok {
			t.Errorf("%s: peek on empty scheduler reported a head", kind)
		}
		if p := sched.Dequeue(1.0); p != nil {
			t.Errorf("%s: dequeue after empty peek returned %v", kind, p)
		}
	}
}

// The exact-peek contract: for WTP and FCFS, PeekPriority(now) names the
// class of the packet Dequeue(now) selects, at every selection instant of
// a randomized arrival/departure schedule, and peeking never dequeues.
func TestPeekMatchesDequeueExactly(t *testing.T) {
	for _, kind := range []Kind{KindWTP, KindFCFS} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			sdp := []float64{1, 2, 4, 8}
			sched, err := New(kind, sdp, 100)
			if err != nil {
				t.Fatal(err)
			}
			peeker := sched.(HeadPeeker)
			rng := rand.New(rand.NewSource(42))
			now := 0.0
			backlog := 0
			for step := 0; step < 5000; step++ {
				now += rng.Float64()
				if backlog == 0 || rng.Intn(3) > 0 {
					sched.Enqueue(&Packet{
						ID:      uint64(step),
						Class:   rng.Intn(len(sdp)),
						Size:    64,
						Arrival: now,
					}, now)
					backlog++
					continue
				}
				pri, class, ok := peeker.PeekPriority(now)
				if !ok {
					t.Fatalf("step %d: backlog %d but peek reported empty", step, backlog)
				}
				// Peek twice: the first peek must not have consumed anything.
				pri2, class2, ok2 := peeker.PeekPriority(now)
				if !ok2 || pri2 != pri || class2 != class {
					t.Fatalf("step %d: repeated peek diverged: (%g,%d) then (%g,%d,%v)",
						step, pri, class, pri2, class2, ok2)
				}
				p := sched.Dequeue(now)
				if p == nil {
					t.Fatalf("step %d: peek reported a head but Dequeue returned nil", step)
				}
				backlog--
				if p.Class != class {
					t.Fatalf("step %d: peek chose class %d, Dequeue served class %d", step, class, p.Class)
				}
				wantPri := now - p.Arrival
				if kind == KindWTP {
					wantPri *= sdp[p.Class]
				}
				if pri != wantPri {
					t.Fatalf("step %d: peek priority %g, dequeued packet's priority %g", step, pri, wantPri)
				}
			}
		})
	}
}

// The FIFO-age fallback: for disciplines that do not override PeekPriority,
// the reported priority is the waiting time of the globally oldest head,
// ties favoring the higher class — the merge key that keeps a multi-shard
// egress globally FIFO.
func TestPeekFallbackReportsOldestHead(t *testing.T) {
	sched, err := New(KindDRR, []float64{1, 2, 4}, 100)
	if err != nil {
		t.Fatal(err)
	}
	peeker := sched.(HeadPeeker)
	sched.Enqueue(&Packet{ID: 1, Class: 1, Size: 64, Arrival: 1.0}, 1.0)
	sched.Enqueue(&Packet{ID: 2, Class: 0, Size: 64, Arrival: 2.0}, 2.0)
	sched.Enqueue(&Packet{ID: 3, Class: 2, Size: 64, Arrival: 3.0}, 3.0)
	pri, class, ok := peeker.PeekPriority(10.0)
	if !ok || class != 1 || pri != 9.0 {
		t.Fatalf("peek = (%g, %d, %v), want oldest head (9, 1, true)", pri, class, ok)
	}
	// Equal ages tie toward the higher class.
	sched2, _ := New(KindDRR, []float64{1, 2, 4}, 100)
	sched2.(*DRR).Enqueue(&Packet{ID: 1, Class: 0, Size: 64, Arrival: 1.0}, 1.0)
	sched2.(*DRR).Enqueue(&Packet{ID: 2, Class: 2, Size: 64, Arrival: 1.0}, 1.0)
	_, class, ok = sched2.(HeadPeeker).PeekPriority(5.0)
	if !ok || class != 2 {
		t.Fatalf("tie-break peek chose class %d, want the higher class 2", class)
	}
}
