package core

// BPR is the packetized Backlog-Proportional Rate scheduler (§4.1 and
// Appendix 3). The underlying fluid discipline distributes the link rate R
// over the backlogged queues so that
//
//	r_i(t)/r_j(t) = s_i·q_i(t) / (s_j·q_j(t))   with  Σ r_i(t) = R
//
// where q_i(t) is the byte backlog of class i. Heavily backlogged (i.e.
// recently underserved) classes automatically receive more rate, which is
// what makes the differentiation load-independent in heavy load; the
// long-term delay ratios tend to the inverse SDP ratios (Eq. 10).
//
// The packetization follows Appendix 3: a per-queue virtual service v_i
// approximates the fluid service the head packet of queue i would have
// received since it reached the head of the queue. Rates are re-solved only
// at departure epochs and held constant in between; at each epoch the
// scheduler transmits the head packet minimizing L_i − v_i (the one the
// fluid server would finish first), breaking ties in favor of the higher
// class.
type BPR struct {
	classQueues
	sdp  []float64
	rate float64 // link rate R, bytes per time unit

	v         []float64 // virtual service of each queue's head packet
	r         []float64 // service rates fixed at the last epoch
	lastEpoch float64
}

// NewBPR returns a packetized BPR scheduler with the given SDPs for a link
// of the given rate (bytes per time unit).
func NewBPR(sdp []float64, rate float64) *BPR {
	ValidateSDPs(sdp)
	if !(rate > 0) {
		panic("core: BPR requires a positive link rate")
	}
	n := len(sdp)
	s := &BPR{
		classQueues: newClassQueues(n),
		sdp:         append([]float64(nil), sdp...),
		rate:        rate,
		v:           make([]float64, n),
		r:           make([]float64, n),
	}
	return s
}

// Name implements Scheduler.
func (s *BPR) Name() string { return "BPR" }

// Rate returns the configured link rate in bytes per time unit.
func (s *BPR) Rate() float64 { return s.rate }

// SetRate updates the link rate distributed by the fluid split. Scenario
// harnesses call it when the simulated link's capacity changes mid-run
// (see link.Link.SetRate); rates in effect stay fixed until the next
// departure epoch, exactly like any other backlog change.
func (s *BPR) SetRate(rate float64) {
	if !(rate > 0) {
		panic("core: BPR requires a positive link rate")
	}
	s.rate = rate
}

// Enqueue implements Scheduler.
func (s *BPR) Enqueue(p *Packet, now float64) {
	wasEmpty := s.q[p.Class].Empty()
	s.push(p)
	if wasEmpty {
		// The packet reaches the head of its queue on arrival, so its
		// virtual service starts from zero (the t^{k-1} < a_i case of
		// Appendix 3). Its rate stays 0 until the next departure epoch.
		s.v[p.Class] = 0
		s.r[p.Class] = 0
	}
}

// Dequeue implements Scheduler.
func (s *BPR) Dequeue(now float64) *Packet {
	if s.total == 0 {
		s.lastEpoch = now
		return nil
	}

	// Integrate virtual service over (lastEpoch, now] with the rates
	// fixed at the previous epoch. Queues that were empty then carry
	// rate 0, so freshly headed packets accumulate nothing, as required.
	dt := now - s.lastEpoch
	if dt > 0 {
		for i := range s.v {
			if !s.q[i].Empty() && s.r[i] > 0 {
				s.v[i] += s.r[i] * dt
			}
		}
	}
	s.lastEpoch = now

	// Select the head packet the fluid server would complete first:
	// argmin over backlogged queues of remaining work L_i − v_i.
	// Ties favor the higher class (low-to-high scan with <=).
	best := -1
	var bestRem float64
	for i := range s.q {
		head := s.q[i].Peek()
		if head == nil {
			continue
		}
		rem := float64(head.Size) - s.v[i]
		if best == -1 || rem <= bestRem {
			best, bestRem = i, rem
		}
	}
	p := s.pop(best)
	// The next packet of the served queue reaches the head now.
	s.v[best] = 0

	// Re-solve the fluid rates (Eq. 8 + 9) over the byte backlogs that
	// remain after the departing packet moved to the transmitter; these
	// rates hold until the next departure epoch.
	var denom float64
	for i := range s.q {
		if !s.q[i].Empty() {
			denom += s.sdp[i] * float64(s.bytes[i])
		}
	}
	for i := range s.r {
		if denom > 0 && !s.q[i].Empty() {
			s.r[i] = s.rate * s.sdp[i] * float64(s.bytes[i]) / denom
		} else {
			s.r[i] = 0
		}
	}
	return p
}
