package core

import "testing"

func TestPADServesNeglectedClass(t *testing.T) {
	// After class 0 accumulates a history of large delays, a fresh
	// class-1 packet with equal SDP cannot outrank class 0's head: PAD
	// equalizes long-term normalized averages.
	s := NewPAD([]float64{1, 1})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 0), 0)
	// Serve both at t=10: class 1 first (tie → higher class), then
	// class 0 at the same instant; both record delay 10.
	if got := s.Dequeue(10).Class; got != 1 {
		t.Fatalf("first = class %d, want 1 (tie favors higher)", got)
	}
	if got := s.Dequeue(10).Class; got != 0 {
		t.Fatalf("second = class %d, want 0", got)
	}
	// Now class 0's head has waited 30 (avg would be (10+30)/2 = 20),
	// class 1's waited 34 (avg (10+34)/2 = 22): class 1 wins despite
	// both heads having similar waits — history matters.
	s.Enqueue(mkPkt(3, 0, 100, 10), 10)
	s.Enqueue(mkPkt(4, 1, 100, 6), 6)
	if got := s.Dequeue(40).ID; got != 4 {
		t.Fatalf("PAD served %d, want 4 (higher prospective average)", got)
	}
}

func TestPADNormalizationBySDP(t *testing.T) {
	// Equal waits, SDPs 1 vs 3: the high-SDP class's normalized average
	// is 3x larger, so it is served first.
	s := NewPAD([]float64{1, 3})
	s.Enqueue(mkPkt(1, 0, 100, 0), 0)
	s.Enqueue(mkPkt(2, 1, 100, 0), 0)
	if got := s.Dequeue(10).Class; got != 1 {
		t.Fatalf("PAD served class %d, want 1", got)
	}
}

func TestHPDInterpolatesWTPAndPAD(t *testing.T) {
	// g=1 must reproduce WTP's decision; g=0 PAD's.
	build := func(g float64) *HPD {
		s := NewHPD([]float64{1, 2}, g)
		// Give class 0 a big served-delay history so PAD favors it.
		s.sum[0] = 1000
		s.count[0] = 1
		// Class 1's head has waited longer, so WTP favors it.
		s.Enqueue(mkPkt(1, 0, 100, 8), 8)
		s.Enqueue(mkPkt(2, 1, 100, 0), 0)
		return s
	}
	if got := build(1).Dequeue(10).Class; got != 1 {
		t.Fatalf("HPD g=1 served class %d, want 1 (WTP behaviour)", got)
	}
	if got := build(0).Dequeue(10).Class; got != 0 {
		t.Fatalf("HPD g=0 served class %d, want 0 (PAD behaviour)", got)
	}
}

func TestHPDValidation(t *testing.T) {
	if g := NewHPD([]float64{1, 2}, DefaultHPDG).G(); g != DefaultHPDG {
		t.Fatalf("G() = %g", g)
	}
	for _, g := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHPD g=%g did not panic", g)
				}
			}()
			NewHPD([]float64{1, 2}, g)
		}()
	}
}

func TestPADHPDEmptyDequeue(t *testing.T) {
	if NewPAD([]float64{1, 2}).Dequeue(5) != nil {
		t.Fatal("PAD dequeued from empty")
	}
	if NewHPD([]float64{1, 2}, 0.5).Dequeue(5) != nil {
		t.Fatal("HPD dequeued from empty")
	}
}

func TestDRRSharesBandwidthByWeight(t *testing.T) {
	// Two saturated classes, weights 1 and 3, equal sizes: class 1 gets
	// ~3x the service.
	s := NewDRR([]float64{1, 3})
	var id uint64
	for i := 0; i < 600; i++ {
		id++
		s.Enqueue(mkPkt(id, 0, 500, 0), 0)
		id++
		s.Enqueue(mkPkt(id, 1, 500, 0), 0)
	}
	counts := [2]int{}
	for i := 0; i < 600; i++ {
		counts[s.Dequeue(float64(i)).Class]++
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("DRR service ratio = %.2f (counts %v), want ~3", ratio, counts)
	}
}

func TestDRRVariablePacketSizesFairInBytes(t *testing.T) {
	// Class 0 sends 1500-byte packets, class 1 sends 100-byte packets,
	// equal weights: byte shares should be near equal, so class 1 must
	// send ~15x as many packets.
	s := NewDRR([]float64{1, 1})
	var id uint64
	for i := 0; i < 200; i++ {
		id++
		s.Enqueue(mkPkt(id, 0, 1500, 0), 0)
	}
	for i := 0; i < 3000; i++ {
		id++
		s.Enqueue(mkPkt(id, 1, 100, 0), 0)
	}
	var bytes [2]int64
	for i := 0; i < 1600; i++ {
		p := s.Dequeue(float64(i))
		bytes[p.Class] += p.Size
	}
	ratio := float64(bytes[1]) / float64(bytes[0])
	if ratio < 0.7 || ratio > 1.4 {
		t.Fatalf("DRR byte share ratio = %.2f (bytes %v), want ~1", ratio, bytes)
	}
}

func TestDRRDrainsCompletely(t *testing.T) {
	s := NewDRR([]float64{1, 2, 4})
	var id uint64
	for i := 0; i < 50; i++ {
		id++
		s.Enqueue(mkPkt(id, i%3, int64(40+i*7), 0), 0)
	}
	served := 0
	for s.Backlogged() {
		if s.Dequeue(float64(served)) == nil {
			t.Fatal("Dequeue returned nil while backlogged")
		}
		served++
	}
	if served != 50 {
		t.Fatalf("served %d of 50", served)
	}
	if s.Dequeue(999) != nil {
		t.Fatal("empty DRR dequeued a packet")
	}
}
