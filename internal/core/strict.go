package core

// Strict is strict prioritization (§2.1): the highest backlogged class is
// always served first. It gives consistent but *uncontrollable*
// differentiation — there is no knob for the quality spacing, and low
// classes can starve under sustained high-class load. It exists here as a
// baseline for the ablation experiments.
type Strict struct {
	classQueues
}

// NewStrict returns a strict-priority scheduler over n classes
// (class n-1 is the highest priority).
func NewStrict(n int) *Strict {
	return &Strict{classQueues: newClassQueues(n)}
}

// Name implements Scheduler.
func (s *Strict) Name() string { return "Strict" }

// Enqueue implements Scheduler.
func (s *Strict) Enqueue(p *Packet, now float64) { s.push(p) }

// Dequeue implements Scheduler.
func (s *Strict) Dequeue(now float64) *Packet {
	for i := len(s.q) - 1; i >= 0; i-- {
		if !s.q[i].Empty() {
			return s.pop(i)
		}
	}
	return nil
}
