// Package core contains the paper's primary contribution: the packet
// schedulers for proportional delay differentiation — WTP (Waiting-Time
// Priority, §4.2) and BPR (Backlog-Proportional Rate, §4.1 and Appendix 3) —
// together with the relative-differentiation baselines the paper discusses
// in §2.1 (FCFS, strict priority, WFQ-style capacity differentiation, and
// the additive delay scheduler).
//
// Conventions: classes are 0-indexed; class 0 is the lowest class. The
// paper's class 1..N maps to 0..N-1, and the SDP ordering s1 < s2 < ... < sN
// becomes SDP[0] < SDP[1] < ... < SDP[N-1]. Time is a float64 in arbitrary
// simulation units; packet sizes are bytes.
package core

import "fmt"

// Packet is a packet queued at (or traversing) a scheduler. Fields beyond
// the first four are bookkeeping filled in by the simulation harnesses.
type Packet struct {
	// ID identifies the packet within a run (assigned by the source).
	ID uint64
	// Class is the 0-based service class.
	Class int
	// Size is the packet length in bytes.
	Size int64
	// Arrival is the time the packet was enqueued at the current hop.
	Arrival float64

	// Start is the time service (transmission) began at the current hop.
	Start float64
	// Departure is the time transmission completed at the current hop.
	Departure float64

	// Flow identifies the user flow the packet belongs to (Study B);
	// zero for cross-traffic and single-link studies.
	Flow uint64
	// Birth is the time the packet was created at its source.
	Birth float64
	// QueueingDelay accumulates waiting time across all hops traversed.
	QueueingDelay float64
	// Hops counts scheduler hops traversed so far.
	Hops int

	// Payload carries the raw datagram when the scheduler fronts a real
	// network socket (internal/netio); simulations leave it nil.
	Payload []byte
}

// Wait returns the packet's queueing delay at the current hop: the time it
// spent waiting before transmission began. This is the paper's per-hop
// delay metric (transmission time itself is identical for all disciplines
// and negligible relative to queueing at the loads studied).
func (p *Packet) Wait() float64 { return p.Start - p.Arrival }

func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d class=%d size=%dB arr=%.3f}", p.ID, p.Class, p.Size, p.Arrival)
}

// ValidateClasses panics unless n is a sane class count. Schedulers call it
// from their constructors so misconfiguration fails fast.
func ValidateClasses(n int) {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("core: class count %d out of range [1,64]", n))
	}
}

// ValidateSDPs panics unless the scheduler differentiation parameters are
// strictly positive and nondecreasing (s1 <= s2 <= ... <= sN, with the
// paper requiring strict order for strict differentiation).
func ValidateSDPs(sdp []float64) {
	ValidateClasses(len(sdp))
	for i, s := range sdp {
		if !(s > 0) {
			panic(fmt.Sprintf("core: SDP[%d]=%g must be > 0", i, s))
		}
		if i > 0 && s < sdp[i-1] {
			panic(fmt.Sprintf("core: SDPs must be nondecreasing, got %v", sdp))
		}
	}
}
