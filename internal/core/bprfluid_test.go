package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestFluidBPRRatesProportional(t *testing.T) {
	f := NewFluidBPR([]float64{1, 2, 4}, 100)
	f.Add(0, 1000)
	f.Add(1, 500)
	f.Add(2, 250)
	r := f.Rates()
	var sum float64
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("rates sum to %g, want 100 (work conservation, Eq. 9)", sum)
	}
	// r_i/r_j = s_i q_i / (s_j q_j): with s·q equal for all classes
	// (1*1000 = 2*500 = 4*250) the rates must be equal.
	if math.Abs(r[0]-r[1]) > 1e-9 || math.Abs(r[1]-r[2]) > 1e-9 {
		t.Fatalf("rates %v, want equal", r)
	}
}

func TestFluidBPREmptyRates(t *testing.T) {
	f := NewFluidBPR([]float64{1, 2}, 10)
	for _, v := range f.Rates() {
		if v != 0 {
			t.Fatal("empty server has nonzero rate")
		}
	}
	if f.TimeToEmpty() != 0 {
		t.Fatal("empty server has nonzero TimeToEmpty")
	}
}

// Proposition 1: all backlogged queues of the fluid BPR server become empty
// at the same time (t0 + total/R), for arbitrary initial backlogs and SDPs.
func TestProposition1SimultaneousClearing(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 2 + rng.IntN(4)
		sdp := make([]float64, n)
		s := 0.5 + rng.Float64()
		for i := range sdp {
			sdp[i] = s
			// Per-step ratios up to 2 keep the backlog ODE
			// non-stiff for the fixed-step RK4 integrator; the
			// property itself holds for any ratios.
			s *= 1 + rng.Float64()
		}
		rate := 10 + rng.Float64()*90
		fl := NewFluidBPR(sdp, rate)
		for i := 0; i < n; i++ {
			fl.Add(i, 10+rng.Float64()*1000)
		}
		total := fl.TotalBacklog()
		end := fl.TimeToEmpty()

		// Just before the predicted clearing time every queue must
		// still be backlogged...
		fl2 := NewFluidBPR(sdp, rate)
		for i := 0; i < n; i++ {
			fl2.Add(i, fl.Backlog(i))
		}
		fl2.Drain(end*0.99, 4000)
		for i := 0; i < n; i++ {
			if fl2.Backlog(i) <= 0 {
				return false // a queue cleared early: violates Prop. 1
			}
		}
		// ...and just after it, every queue must be empty.
		fl.Drain(end*1.01, 4000)
		for i := 0; i < n; i++ {
			if fl.Backlog(i) > total*1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFluidBPRDrainConservesWorkRate(t *testing.T) {
	// While all queues are backlogged, total backlog must drain at
	// exactly R (work conservation) regardless of the SDP split.
	f := NewFluidBPR([]float64{1, 8}, 40)
	f.Add(0, 800)
	f.Add(1, 800)
	before := f.TotalBacklog()
	f.Drain(10, 1000)
	got := before - f.TotalBacklog()
	if math.Abs(got-400) > 1e-6*before {
		t.Fatalf("drained %g work in 10tu at rate 40, want 400", got)
	}
	if f.Now() != 10 {
		t.Fatalf("Now = %g, want 10", f.Now())
	}
}

func TestFluidBPRHigherSDPDrainsFasterPerByte(t *testing.T) {
	f := NewFluidBPR([]float64{1, 4}, 100)
	f.Add(0, 1000)
	f.Add(1, 1000)
	f.Drain(5, 1000)
	// Equal initial backlogs: the s=4 class must have drained more.
	if !(f.Backlog(1) < f.Backlog(0)) {
		t.Fatalf("backlogs after drain: low=%g high=%g, want high < low",
			f.Backlog(0), f.Backlog(1))
	}
}

func TestFluidBPRValidation(t *testing.T) {
	f := NewFluidBPR([]float64{1}, 10)
	for _, fn := range []func(){
		func() { NewFluidBPR([]float64{1}, 0) },
		func() { f.Add(0, -5) },
		func() { f.Drain(-1, 10) },
		func() { f.Drain(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestPLRDropperEqualizesNormalizedLoss(t *testing.T) {
	// Feed a stream where every arrival overflows; the dropper should
	// keep loss fractions close to the 4:2:1 LDP ratios.
	ldp := []float64{4, 2, 1}
	d := NewPLRDropper(ldp)
	s := NewWTP([]float64{1, 2, 4})
	rng := rand.New(rand.NewPCG(42, 1))
	// Keep every class permanently backlogged so any class is a valid
	// victim.
	for c := 0; c < 3; c++ {
		s.Enqueue(mkPkt(uint64(c), c, 100, 0), 0)
	}
	const total = 30000
	for i := 0; i < total; i++ {
		c := rng.IntN(3)
		d.RecordArrival(c)
		if i%2 == 0 { // every other arrival forces a drop
			v := d.Victim(s, c)
			d.RecordLoss(v)
		}
	}
	// Normalized fractions l_i/sigma_i should be nearly equal.
	norm := make([]float64, 3)
	for c := 0; c < 3; c++ {
		norm[c] = d.LossFraction(c) / ldp[c]
		if d.Arrivals(c) == 0 {
			t.Fatalf("class %d saw no arrivals", c)
		}
	}
	for c := 1; c < 3; c++ {
		r := norm[c] / norm[0]
		if r < 0.8 || r > 1.25 {
			t.Fatalf("normalized loss fractions %v not equalized", norm)
		}
	}
	if d.Losses(0) == 0 || d.Losses(2) == 0 {
		t.Fatal("expected losses in lowest and highest class")
	}
}

func TestPLRDropperValidation(t *testing.T) {
	for _, bad := range [][]float64{{0, 1}, {1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPLRDropper(%v) did not panic", bad)
				}
			}()
			NewPLRDropper(bad)
		}()
	}
}

func TestPLRVictimFallback(t *testing.T) {
	d := NewPLRDropper([]float64{2, 1})
	s := NewWTP([]float64{1, 2}) // empty scheduler
	if got := d.Victim(s, 1); got != 1 {
		t.Fatalf("Victim fallback = %d, want 1", got)
	}
}
