package core

// PacketPool is a per-run free list of Packet objects. Sources draw from it
// on emission and the terminal consumer of a packet (the link on departure
// or drop, or a multi-hop harness at the packet's exit point) returns it,
// so the steady-state per-packet hot path performs no heap allocation.
//
// Lifetime rules (see DESIGN.md §3c):
//
//   - A packet obtained from Get is owned by whoever holds it; ownership
//     moves with the packet (source → scheduler → link → OnDepart/OnDrop).
//   - Exactly one component — the terminal sink — may Put a packet back,
//     and only after every observer callback for that packet has returned.
//   - Observers and OnDepart/OnDrop callbacks must copy out any field they
//     need; retaining a *Packet past the callback is a use-after-recycle.
//
// A nil *PacketPool is valid and simply allocates on Get and discards on
// Put, so call sites thread an optional pool without branching.
//
// PacketPool is not safe for concurrent use; like the schedulers and the
// engine it is confined to one simulation run. Independent parallel runs
// each own a private pool. Non-simulation callers may share a pool across
// goroutines only by serializing every Get/Put under one mutex — the UDP
// forwarder (internal/netio) does exactly that under its queue mutex,
// pairing each pooled Packet with a recycled payload buffer whose
// lifetime ends at the packet's terminal event (forwarded, dropped, or
// discarded at close).
type PacketPool struct {
	free []*Packet
	// allocated counts Get calls that hit the allocator; recycled counts
	// Get calls served from the free list.
	allocated uint64
	recycled  uint64
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, recycling a previously Put one when
// available. A nil pool allocates.
func (pl *PacketPool) Get() *Packet {
	if pl == nil {
		return &Packet{}
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		pl.recycled++
		return p
	}
	pl.allocated++
	return &Packet{}
}

// Put returns p to the free list. The caller must not touch p afterwards.
// A nil pool (or nil packet) is a no-op.
func (pl *PacketPool) Put(p *Packet) {
	if pl == nil || p == nil {
		return
	}
	// Drop the payload reference eagerly so pooled packets never pin
	// datagram buffers across runs.
	p.Payload = nil
	pl.free = append(pl.free, p)
}

// Allocated returns how many Get calls were served by the allocator.
func (pl *PacketPool) Allocated() uint64 {
	if pl == nil {
		return 0
	}
	return pl.allocated
}

// Recycled returns how many Get calls were served from the free list.
func (pl *PacketPool) Recycled() uint64 {
	if pl == nil {
		return 0
	}
	return pl.recycled
}

// Free returns the current free-list depth.
func (pl *PacketPool) Free() int {
	if pl == nil {
		return 0
	}
	return len(pl.free)
}
