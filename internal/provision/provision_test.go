package provision

import (
	"math"
	"testing"

	"pdds/internal/link"
	"pdds/internal/traffic"
)

func recordTrace(t *testing.T, rho float64) *traffic.Trace {
	t.Helper()
	tr, err := traffic.Record(traffic.PaperLoad(rho), link.PaperLinkRate, 200000, 21)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDeriveGenerousTargetsWorkable(t *testing.T) {
	tr := recordTrace(t, 0.90)
	// Requirements in the 2:1 ladder, very generous at the top.
	targets := []float64{800 * 11.2, 400 * 11.2, 200 * 11.2, 100 * 11.2}
	plan, err := Derive(tr, link.PaperLinkRate, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.MeetsTargets() || !plan.Feasible || !plan.Workable() {
		t.Fatalf("generous plan not workable: scale=%.3f feasible=%v", plan.Scale, plan.Feasible)
	}
	// DDP/SDP shape.
	if plan.DDP[0] != 1 || plan.SDP[0] != 1 {
		t.Fatalf("normalization wrong: ddp=%v sdp=%v", plan.DDP, plan.SDP)
	}
	for i := range plan.DDP {
		if math.Abs(plan.DDP[i]*plan.SDP[i]-1) > 1e-12 {
			t.Fatalf("SDPs not inverse DDPs: %v %v", plan.DDP, plan.SDP)
		}
	}
	// Every class misses/meets by the same factor.
	for i := range targets {
		s := plan.Predicted[i] / targets[i]
		if math.Abs(s-plan.Scale) > 1e-9 {
			t.Fatalf("scale not uniform: class %d %.4f vs %.4f", i, s, plan.Scale)
		}
	}
}

func TestDeriveImpossibleTargets(t *testing.T) {
	tr := recordTrace(t, 0.95)
	// Sub-transmission-time requirements for everyone: cannot be met.
	targets := []float64{8, 4, 2, 1}
	plan, err := Derive(tr, link.PaperLinkRate, targets)
	if err != nil {
		t.Fatal(err)
	}
	if plan.MeetsTargets() || plan.Workable() {
		t.Fatalf("impossible plan accepted: scale=%.2f", plan.Scale)
	}
	if plan.Scale <= 1 {
		t.Fatalf("scale = %.2f, want > 1", plan.Scale)
	}
}

func TestDeriveValidation(t *testing.T) {
	tr := recordTrace(t, 0.9)
	if _, err := Derive(tr, link.PaperLinkRate, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Derive(tr, link.PaperLinkRate, []float64{100, 200, 50, 25}); err == nil {
		t.Error("increasing targets accepted")
	}
	if _, err := Derive(tr, link.PaperLinkRate, []float64{100, 0, 0, 0}); err == nil {
		t.Error("zero target accepted")
	}
}

func TestMaxUtilization(t *testing.T) {
	targets := []float64{400 * 11.2, 200 * 11.2, 100 * 11.2, 50 * 11.2}
	rho, plan, err := MaxUtilization(traffic.PaperLoad(0.9), link.PaperLinkRate, targets,
		[]float64{0.70, 0.80, 0.90, 0.96}, 100000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Workable() {
		t.Fatal("returned plan not workable")
	}
	if rho < 0.80 {
		t.Fatalf("max rho = %.2f, expected at least 0.80 for these loose targets", rho)
	}
	// Hopeless targets: no rho works.
	if _, _, err := MaxUtilization(traffic.PaperLoad(0.9), link.PaperLinkRate,
		[]float64{4, 3, 2, 1}, []float64{0.70, 0.90}, 50000, 4); err == nil {
		t.Fatal("hopeless targets accepted")
	}
	if _, _, err := MaxUtilization(traffic.PaperLoad(0.9), link.PaperLinkRate, targets, nil, 50000, 4); err == nil {
		t.Fatal("empty grid accepted")
	}
}
