// Package provision answers the operator-side question §7 leaves open:
// "how to choose the class differentiation parameters", given a profile of
// the user population's quality requirements. With proportional
// differentiation the only degrees of freedom are the DDP ratios; the
// absolute class delays then follow from the load via Eq. (6). Setting the
// DDPs proportional to the population's per-class delay requirements makes
// every class miss or meet its requirement by the same factor, so a single
// scale number (Eq. 6 delay over requirement) tells the operator whether
// the plan works, and the Eq. (7) conditions tell whether any
// work-conserving scheduler could realize it.
package provision

import (
	"fmt"

	"pdds/internal/model"
	"pdds/internal/traffic"
)

// Plan is a provisioning verdict for one operating point.
type Plan struct {
	// Targets echoes the per-class delay requirements (time units,
	// decreasing with class).
	Targets []float64
	// DDP is the derived delay differentiation parameter vector
	// (normalized so DDP[0] = 1).
	DDP []float64
	// SDP is the matching scheduler parameter vector for WTP/BPR
	// (inverse DDPs, normalized so SDP[0] = 1).
	SDP []float64
	// Predicted are the Eq. (6) class delays at this operating point.
	Predicted []float64
	// Scale is predicted/target (identical for every class by
	// construction); <= 1 means all requirements are met.
	Scale float64
	// Feasible reports the Eq. (7) verdict for the predicted vector.
	Feasible bool
	// Report is the full feasibility report.
	Report *model.FeasibilityReport
}

// MeetsTargets reports whether every class requirement is satisfied.
func (p *Plan) MeetsTargets() bool { return p.Scale <= 1 }

// Workable reports whether the plan both meets targets and is feasible.
func (p *Plan) Workable() bool { return p.MeetsTargets() && p.Feasible }

// Derive computes the provisioning plan for a recorded traffic trace, a
// link rate, and per-class delay requirements (strictly positive,
// nonincreasing: higher classes demand lower delay).
func Derive(tr *traffic.Trace, rate float64, targets []float64) (*Plan, error) {
	if len(targets) != tr.Classes {
		return nil, fmt.Errorf("provision: %d targets for %d classes", len(targets), tr.Classes)
	}
	for i, d := range targets {
		if !(d > 0) {
			return nil, fmt.Errorf("provision: target[%d]=%g must be > 0", i, d)
		}
		if i > 0 && d > targets[i-1] {
			return nil, fmt.Errorf("provision: targets must be nonincreasing, got %v", targets)
		}
	}
	n := tr.Classes

	// DDPs proportional to the requirements.
	ddp := make([]float64, n)
	for i := range ddp {
		ddp[i] = targets[i] / targets[0]
	}
	sdp := make([]float64, n)
	for i := range sdp {
		sdp[i] = ddp[0] / ddp[i]
	}

	lambda := tr.Rates()
	dbar := model.FCFSMeanDelay(tr, rate)
	predicted := model.PredictDelays(ddp, lambda, dbar)

	rep, err := model.CheckDelays(tr, rate, predicted)
	if err != nil {
		return nil, err
	}
	scale := 0.0
	if targets[0] > 0 {
		scale = predicted[0] / targets[0]
	}
	return &Plan{
		Targets:   append([]float64(nil), targets...),
		DDP:       ddp,
		SDP:       sdp,
		Predicted: predicted,
		Scale:     scale,
		Feasible:  rep.Feasible(),
		Report:    rep,
	}, nil
}

// MaxUtilization sweeps the given utilization grid (ascending) and returns
// the largest rho whose plan is workable, together with that plan. It
// returns an error if even the smallest rho fails.
func MaxUtilization(load traffic.LoadSpec, rate float64, targets []float64, rhos []float64, horizon float64, seed uint64) (float64, *Plan, error) {
	if len(rhos) == 0 {
		return 0, nil, fmt.Errorf("provision: empty utilization grid")
	}
	var bestRho float64
	var bestPlan *Plan
	for _, rho := range rhos {
		l := load
		l.Rho = rho
		tr, err := traffic.Record(l, rate, horizon, seed)
		if err != nil {
			return 0, nil, err
		}
		plan, err := Derive(tr, rate, targets)
		if err != nil {
			return 0, nil, err
		}
		if plan.Workable() {
			bestRho, bestPlan = rho, plan
		}
	}
	if bestPlan == nil {
		return 0, nil, fmt.Errorf("provision: no utilization in %v satisfies targets %v", rhos, targets)
	}
	return bestRho, bestPlan, nil
}
