// Package testutil holds small helpers shared by tests across the module.
package testutil

import (
	"io"
	"os"
	"testing"
)

// CaptureStdout runs f with os.Stdout redirected to a pipe and returns
// everything f printed. It is not safe for parallel use: os.Stdout is
// process-global.
func CaptureStdout(t *testing.T, f func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	orig := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = orig }()

	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		done <- b
	}()
	f()
	w.Close()
	out := <-done
	r.Close()
	os.Stdout = orig
	return string(out)
}
