// Package cliutil holds small helpers shared by the command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseFloats parses a comma-separated list of numbers ("1,2,4,8").
func ParseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("empty list")
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// FormatFloats renders values as a compact comma-separated list.
func FormatFloats(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = strconv.FormatFloat(v, 'g', 4, 64)
	}
	return strings.Join(parts, ",")
}
