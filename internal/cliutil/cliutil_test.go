package cliutil

import "testing"

func TestParseFloats(t *testing.T) {
	got, err := ParseFloats(" 1, 2.5 ,4,8 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2.5, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
	for _, bad := range []string{"", " ", "1,x", "1,,2"} {
		if _, err := ParseFloats(bad); err == nil {
			t.Errorf("ParseFloats(%q) accepted", bad)
		}
	}
}

func TestFormatFloats(t *testing.T) {
	if s := FormatFloats([]float64{1, 2.5}); s != "1,2.5" {
		t.Fatalf("got %q", s)
	}
	if s := FormatFloats(nil); s != "" {
		t.Fatalf("got %q", s)
	}
}

func TestRoundTrip(t *testing.T) {
	in := []float64{0.4, 0.3, 0.2, 0.1}
	out, err := ParseFloats(FormatFloats(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("roundtrip %v -> %v", in, out)
		}
	}
}

func FuzzParseFloats(f *testing.F) {
	f.Add("1,2,4,8")
	f.Add("")
	f.Add("1e308,1e-308")
	f.Add(" -3.5 , nan ,inf")
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := ParseFloats(s)
		if err != nil {
			return
		}
		if len(vals) == 0 {
			t.Fatal("accepted input produced no values")
		}
		// Round trip through FormatFloats must reparse to the same
		// count.
		back, err := ParseFloats(FormatFloats(vals))
		if err != nil || len(back) != len(vals) {
			t.Fatalf("round trip failed: %v (%d vs %d)", err, len(back), len(vals))
		}
	})
}
