package adapt

import (
	"math"
	"testing"
)

func baseConfig() Config {
	// 8 users: 4 delay-sensitive (tight 3-p-unit targets), 4 relaxed
	// (300-p-unit targets); plus background load to 0.9 total.
	users := make([]UserSpec, 0, 8)
	for i := 0; i < 4; i++ {
		users = append(users, UserSpec{Target: 3 * 11.2, Rho: 0.02})
	}
	for i := 0; i < 4; i++ {
		users = append(users, UserSpec{Target: 300 * 11.2, Rho: 0.02})
	}
	return Config{
		SDP:           []float64{1, 2, 4, 8},
		Users:         users,
		BackgroundRho: 0.74, // total 0.9
		Period:        5000,
		Horizon:       400000,
		Seed:          2,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SDP = []float64{1} },
		func(c *Config) { c.Users = nil },
		func(c *Config) { c.Users[0].Target = 0 },
		func(c *Config) { c.Users[0].Rho = 0 },
		func(c *Config) { c.Users[0].InitialClass = 9 },
		func(c *Config) { c.BackgroundRho = 0.95 }, // total >= 1
		func(c *Config) { c.DownMargin = 0.5 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Period = 1e9 },
	}
	for i, mutate := range mutations {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestDCSConvergesToSatisfyingAssignment(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 8 {
		t.Fatalf("users = %d", len(res.Users))
	}

	// Tight users (0-3) must end strictly higher than relaxed users
	// (4-7) on average — they bought their way up; relaxed users stay
	// cheap.
	var tight, relaxed float64
	for i, u := range res.Users {
		if i < 4 {
			tight += float64(u.FinalClass)
		} else {
			relaxed += float64(u.FinalClass)
		}
	}
	tight /= 4
	relaxed /= 4
	if !(tight > relaxed) {
		t.Fatalf("mean final class: tight=%.2f relaxed=%.2f — adaptation did not separate them", tight, relaxed)
	}
	if relaxed > 0.5 {
		t.Errorf("relaxed users climbed to %.2f on average; should stay near class 0", relaxed)
	}

	// In the second half of the run the users should mostly meet their
	// targets (the load is feasible for this population).
	for i, u := range res.Users {
		if u.Periods == 0 {
			t.Fatalf("user %d had no active periods", i)
		}
		if u.Satisfaction() < 0.5 {
			t.Errorf("user %d satisfaction %.2f over the run", i, u.Satisfaction())
		}
		if math.IsNaN(u.MeanDelay) {
			t.Errorf("user %d had no tail traffic", i)
		}
	}

	// No oscillation storm at equilibrium: late switches bounded.
	for i, u := range res.Users {
		if u.LateSwitches > 6 {
			t.Errorf("user %d still switching at end (%d late switches)", i, u.LateSwitches)
		}
	}

	// Cost sanity: mean cost strictly below the max class (not everyone
	// piled into the top).
	if res.MeanCost >= 3.5 {
		t.Errorf("mean cost %.2f — everyone bought the top class", res.MeanCost)
	}
	total := 0
	for _, occ := range res.ClassOccupancy {
		total += occ
	}
	if total != 8 {
		t.Fatalf("occupancy sums to %d", total)
	}
}

func TestDCSDeterministic(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("user %d diverged between same-seed runs", i)
		}
	}
}

func TestDCSNoBackgroundStaysCheap(t *testing.T) {
	// At trivial load every target is met in class 0: nobody should
	// move.
	cfg := Config{
		SDP: []float64{1, 2, 4, 8},
		Users: []UserSpec{
			{Target: 50 * 11.2, Rho: 0.05},
			{Target: 50 * 11.2, Rho: 0.05},
		},
		Period:  5000,
		Horizon: 100000,
		Seed:    3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range res.Users {
		if u.FinalClass != 0 {
			t.Errorf("user %d ended in class %d at trivial load", i, u.FinalClass)
		}
		if u.Switches != 0 {
			t.Errorf("user %d switched %d times at trivial load", i, u.Switches)
		}
	}
	if res.MeanCost != 1 {
		t.Errorf("mean cost %.2f, want 1", res.MeanCost)
	}
}
