// Package adapt implements the end-system adaptation the paper's
// architecture presumes (§1: "it is up to the applications and users to
// select the class that best meets their requirements, cost, and policy
// constraints") and §7 lists among the open problems: dynamic class
// selection (DCS) for users with absolute delay targets on top of a
// relative-differentiation network.
//
// Each adaptive user generates its own packet stream through a shared
// WTP link, has a per-hop queueing-delay target, and periodically adapts:
// if the delays its packets actually received in the last period exceed
// the target, it moves one class up; if the class below (as observed from
// the network's recent per-class delays) would have met the target with
// margin, it moves down to save cost. Under feasible aggregate load the
// population settles into the cheapest class assignment that meets every
// target — without admission control, exactly the paper's adaptation
// story.
package adapt

import (
	"fmt"
	"math"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

// UserSpec describes one adaptive user.
type UserSpec struct {
	// Target is the per-hop queueing-delay target in time units
	// (averaged over the user's packets in an adaptation period).
	Target float64
	// Rho is the fraction of link capacity this user offers.
	Rho float64
	// InitialClass is the starting class (users typically start at the
	// cheapest, class 0).
	InitialClass int
}

// Config describes a DCS simulation.
type Config struct {
	// SDP configures the shared WTP link (one entry per class).
	SDP []float64
	// Users is the adaptive population.
	Users []UserSpec
	// BackgroundRho adds non-adaptive background load spread over the
	// classes with the paper's 40/30/20/10 mix.
	BackgroundRho float64
	// Period is the adaptation interval in time units.
	Period float64
	// DownMargin is the safety factor for downward moves: a user steps
	// down only if the lower class's observed delay is below
	// Target/DownMargin (must be > 1).
	DownMargin float64
	// Horizon and Seed control the run.
	Horizon float64
	Seed    uint64
}

func (c Config) withDefaults() Config {
	if c.Period == 0 {
		c.Period = 5000
	}
	if c.DownMargin == 0 {
		c.DownMargin = 1.5
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if len(cc.SDP) < 2 {
		return fmt.Errorf("adapt: need at least 2 classes")
	}
	if len(cc.Users) == 0 {
		return fmt.Errorf("adapt: no users")
	}
	var rho float64
	for i, u := range cc.Users {
		if !(u.Target > 0) || !(u.Rho > 0) {
			return fmt.Errorf("adapt: user %d needs positive target and rho", i)
		}
		if u.InitialClass < 0 || u.InitialClass >= len(cc.SDP) {
			return fmt.Errorf("adapt: user %d initial class %d out of range", i, u.InitialClass)
		}
		rho += u.Rho
	}
	if rho+cc.BackgroundRho >= 1 {
		return fmt.Errorf("adapt: total load %g must be < 1", rho+cc.BackgroundRho)
	}
	if !(cc.DownMargin > 1) {
		return fmt.Errorf("adapt: DownMargin %g must be > 1", cc.DownMargin)
	}
	if !(cc.Horizon > 0) || !(cc.Period > 0) || cc.Period >= cc.Horizon {
		return fmt.Errorf("adapt: need 0 < period < horizon")
	}
	return nil
}

// UserResult summarizes one user's trajectory.
type UserResult struct {
	// FinalClass is the class at the end of the run.
	FinalClass int
	// Switches counts class changes over the whole run.
	Switches int
	// LateSwitches counts class changes in the final quarter of the run
	// (persistent oscillation shows up here).
	LateSwitches int
	// SatisfiedPeriods and Periods count adaptation periods in which the
	// user had traffic and its average delay met the target.
	SatisfiedPeriods, Periods int
	// MeanDelay is the user's mean queueing delay over the final
	// quarter of the run.
	MeanDelay float64
}

// Satisfaction returns the fraction of periods that met the target.
func (u UserResult) Satisfaction() float64 {
	if u.Periods == 0 {
		return 0
	}
	return float64(u.SatisfiedPeriods) / float64(u.Periods)
}

// Result is the DCS simulation outcome.
type Result struct {
	Users []UserResult
	// ClassOccupancy[c] is the number of users ending in class c.
	ClassOccupancy []int
	// MeanCost is the average final class index + 1 (a proxy for
	// tariffs that increase with class).
	MeanCost float64
	// Departed counts completed transmissions (users plus background),
	// for throughput accounting.
	Departed uint64
}

// user is the runtime state of an adaptive user.
type user struct {
	spec  UserSpec
	class int

	switches     int
	lateSwitches int
	satisfied    int
	periods      int

	// Current-period accumulators.
	sum   float64
	count int

	// Final-quarter delay accumulator.
	tailSum   float64
	tailCount int
}

// Run executes the DCS simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.SDP)

	engine := sim.NewEngine()
	sched := core.NewWTP(cfg.SDP)
	l := link.New(engine, link.PaperLinkRate, sched)

	users := make([]*user, len(cfg.Users))
	for i, spec := range cfg.Users {
		users[i] = &user{spec: spec, class: spec.InitialClass}
	}

	// Per-class recent delays, "published" by the network each period
	// for downward decisions.
	classSum := make([]float64, n)
	classCount := make([]int, n)
	classRecent := make([]float64, n) // last period's averages

	lateStart := cfg.Horizon * 0.75
	l.OnDepart = func(p *core.Packet) {
		classSum[p.Class] += p.Wait()
		classCount[p.Class]++
		if p.Flow > 0 {
			u := users[p.Flow-1]
			u.sum += p.Wait()
			u.count++
			if p.Departure >= lateStart {
				u.tailSum += p.Wait()
				u.tailCount++
			}
		}
	}

	// User sources: Pareto arrivals at the user's offered load; the
	// packet class is read from the user's current class at emission
	// time.
	sizes := traffic.PaperSizes()
	for i, u := range users {
		i, u := i, u
		lambda := u.spec.Rho * link.PaperLinkRate / sizes.Mean()
		inter := traffic.NewPareto(1.9, 1/lambda)
		rng := traffic.NewRNG(cfg.Seed, 0x5eed+uint64(i))
		var id uint64
		var emit func()
		emit = func() {
			now := engine.Now()
			id++
			l.Arrive(&core.Packet{
				ID:      uint64(i+1)<<40 + id,
				Class:   u.class,
				Size:    sizes.Next(rng),
				Arrival: now,
				Birth:   now,
				Flow:    uint64(i + 1),
			})
			engine.After(inter.Next(rng), emit)
		}
		engine.After(inter.Next(rng), emit)
	}

	// Background load.
	if cfg.BackgroundRho > 0 {
		fracs := make([]float64, n)
		base := []float64{0.4, 0.3, 0.2, 0.1}
		var sum float64
		for c := 0; c < n; c++ {
			f := 0.1
			if c < len(base) {
				f = base[c]
			}
			fracs[c] = f
			sum += f
		}
		for c := range fracs {
			fracs[c] /= sum
		}
		bg := traffic.LoadSpec{Rho: cfg.BackgroundRho, Fractions: fracs, Sizes: sizes, Alpha: 1.9}
		sources, err := bg.Build(link.PaperLinkRate, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		traffic.StartAll(engine, sources, func(p *core.Packet) { l.Arrive(p) })
	}

	// Adaptation ticks.
	var tick func()
	tick = func() {
		now := engine.Now()
		for c := 0; c < n; c++ {
			if classCount[c] > 0 {
				classRecent[c] = classSum[c] / float64(classCount[c])
			}
			classSum[c], classCount[c] = 0, 0
		}
		for _, u := range users {
			if u.count == 0 {
				u.sum = 0
				continue
			}
			avg := u.sum / float64(u.count)
			u.periods++
			if avg <= u.spec.Target {
				u.satisfied++
			}
			switch {
			case avg > u.spec.Target && u.class < n-1:
				u.class++
				u.switches++
				if now >= lateStart {
					u.lateSwitches++
				}
			case u.class > 0 && classRecent[u.class-1] > 0 &&
				classRecent[u.class-1] < u.spec.Target/cfg.DownMargin:
				u.class--
				u.switches++
				if now >= lateStart {
					u.lateSwitches++
				}
			}
			u.sum, u.count = 0, 0
		}
		if now+cfg.Period <= cfg.Horizon {
			engine.After(cfg.Period, tick)
		}
	}
	engine.After(cfg.Period, tick)

	engine.RunUntil(cfg.Horizon)

	res := &Result{ClassOccupancy: make([]int, n), Departed: l.Departed()}
	var cost float64
	for _, u := range users {
		ur := UserResult{
			FinalClass:       u.class,
			Switches:         u.switches,
			LateSwitches:     u.lateSwitches,
			SatisfiedPeriods: u.satisfied,
			Periods:          u.periods,
		}
		if u.tailCount > 0 {
			ur.MeanDelay = u.tailSum / float64(u.tailCount)
		} else {
			ur.MeanDelay = math.NaN()
		}
		res.Users = append(res.Users, ur)
		res.ClassOccupancy[u.class]++
		cost += float64(u.class + 1)
	}
	res.MeanCost = cost / float64(len(users))
	return res, nil
}
