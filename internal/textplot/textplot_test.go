package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	var p Plot
	p.Title = "ratios"
	p.Add(Series{Name: "wtp", Points: []Point{{0.7, 1.5}, {0.8, 1.7}, {0.95, 1.95}}})
	p.Add(Series{Name: "bpr", Points: []Point{{0.7, 1.3}, {0.8, 1.6}, {0.95, 2.1}}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ratios", "a=wtp", "b=bpr", "0.7", "0.95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Default grid: 16 plot rows + title + x axis + legend.
	if lines := strings.Count(out, "\n"); lines != 19 {
		t.Fatalf("line count = %d\n%s", lines, out)
	}
	// Higher y values appear on earlier lines: the 2.1 marker (b) must
	// be above the 1.3 marker (b).
	rows := strings.Split(out, "\n")
	firstB, lastB := -1, -1
	for i, row := range rows {
		if strings.Contains(row, "b") && strings.Contains(row, "|") && !strings.Contains(row, "b=bpr") {
			if firstB == -1 {
				firstB = i
			}
			lastB = i
		}
	}
	if firstB == -1 || firstB == lastB {
		t.Fatalf("expected b markers on multiple rows:\n%s", out)
	}
}

func TestRenderErrors(t *testing.T) {
	var empty Plot
	if _, err := empty.Render(); err == nil {
		t.Error("empty plot rendered")
	}
	var tiny Plot
	tiny.Width, tiny.Height = 4, 2
	tiny.Add(Series{Points: []Point{{0, 0}}})
	if _, err := tiny.Render(); err == nil {
		t.Error("tiny grid accepted")
	}
	var nan Plot
	nan.Add(Series{Points: []Point{{math.NaN(), 1}}})
	if _, err := nan.Render(); err == nil {
		t.Error("NaN point accepted")
	}
}

func TestRenderDegenerateRanges(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "flat", Points: []Point{{1, 5}, {1, 5}}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "flat") {
		t.Fatal("legend missing")
	}
}

func TestFixedYRange(t *testing.T) {
	var p Plot
	p.YMin, p.YMax = 0, 4
	p.Add(Series{Name: "s", Points: []Point{{0, 2}, {1, 2}}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4") || !strings.Contains(out, "0") {
		t.Fatalf("fixed range labels missing:\n%s", out)
	}
}

func TestMarkerAutoAssignment(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "one", Points: []Point{{0, 0}}})
	p.Add(Series{Name: "two", Points: []Point{{1, 1}}})
	p.Add(Series{Name: "three", Marker: '*', Points: []Point{{2, 2}}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"a=one", "b=two", "*=three"} {
		if !strings.Contains(out, want) {
			t.Fatalf("legend missing %q:\n%s", want, out)
		}
	}
}
