// Package textplot renders small line/scatter plots as plain text for
// terminal inspection of experiment results — enough to see the Figure 1
// convergence curves without leaving the shell.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Series is a named sequence of points drawn with a single marker rune.
type Series struct {
	Name   string
	Marker rune
	Points []Point
}

// Plot is a text plot under construction.
type Plot struct {
	// Title is printed above the plot.
	Title string
	// Width and Height are the grid dimensions in characters
	// (default 64×16).
	Width, Height int
	// YMin/YMax fix the y range; when both are zero the range is
	// derived from the data with a small margin.
	YMin, YMax float64

	series []Series
}

// Add appends a series. Markers default to letters a, b, c... when zero.
func (p *Plot) Add(s Series) {
	if s.Marker == 0 {
		s.Marker = rune('a' + len(p.series))
	}
	p.series = append(p.series, s)
}

// Render draws the plot. It returns an error when there is nothing to
// draw.
func (p *Plot) Render() (string, error) {
	width, height := p.Width, p.Height
	if width == 0 {
		width = 64
	}
	if height == 0 {
		height = 16
	}
	if width < 16 || height < 4 {
		return "", fmt.Errorf("textplot: grid %dx%d too small", width, height)
	}
	var xMin, xMax, yMin, yMax float64
	first := true
	for _, s := range p.series {
		for _, pt := range s.Points {
			if math.IsNaN(pt.X) || math.IsNaN(pt.Y) || math.IsInf(pt.X, 0) || math.IsInf(pt.Y, 0) {
				return "", fmt.Errorf("textplot: non-finite point in series %q", s.Name)
			}
			if first {
				xMin, xMax, yMin, yMax = pt.X, pt.X, pt.Y, pt.Y
				first = false
				continue
			}
			xMin = math.Min(xMin, pt.X)
			xMax = math.Max(xMax, pt.X)
			yMin = math.Min(yMin, pt.Y)
			yMax = math.Max(yMax, pt.Y)
		}
	}
	if first {
		return "", fmt.Errorf("textplot: no points")
	}
	if p.YMin != 0 || p.YMax != 0 {
		yMin, yMax = p.YMin, p.YMax
	} else if yMin == yMax {
		yMin -= 1
		yMax += 1
	} else {
		margin := (yMax - yMin) * 0.05
		yMin -= margin
		yMax += margin
	}
	if xMin == xMax {
		xMin -= 1
		xMax += 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	plotX := func(x float64) int {
		return int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
	}
	plotY := func(y float64) int {
		// Row 0 is the top.
		return height - 1 - int(math.Round((y-yMin)/(yMax-yMin)*float64(height-1)))
	}
	for _, s := range p.series {
		for _, pt := range s.Points {
			c, r := plotX(pt.X), plotY(pt.Y)
			if r >= 0 && r < height && c >= 0 && c < width {
				grid[r][c] = s.Marker
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3g ", yMax)
		case height - 1:
			label = fmt.Sprintf("%7.3g ", yMin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%7.3g ", (yMin+yMax)/2)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "        %-*.4g%*.4g\n", width/2, xMin, width-width/2, xMax)
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	fmt.Fprintf(&b, "        %s\n", strings.Join(legend, "  "))
	return b.String(), nil
}
