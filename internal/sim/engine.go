// Package sim implements a minimal deterministic discrete-event simulation
// engine: a simulation clock and a time-ordered event queue with stable
// (insertion-order) tie-breaking. Two interchangeable event structures are
// provided — a binary heap (default) and a Brown-style calendar queue —
// with identical ordering semantics.
//
// The engine is single-threaded by design. Determinism matters more than
// parallelism for reproducing the paper's experiments: two runs with the
// same seeds must produce bit-identical schedules.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a unit of work executed at a simulated time instant.
//
// Event nodes are pooled: once an event fires (or is canceled) the engine
// recycles its node for a later At/AtFunc call, so steady-state scheduling
// performs no heap allocation. The handle returned by At is therefore valid
// only while the event is pending — callers may pass it to Cancel before the
// event fires, but must not retain or inspect it afterwards.
type Event struct {
	// Time is the absolute simulation time at which Run fires.
	Time float64
	// Run is the event body. It may schedule further events.
	Run func()

	// fn/arg are the closure-free form of Run used by AtFunc: fn is a
	// shared (typically package-level) function and arg its single
	// argument. Storing a pointer in an interface does not allocate, so
	// hot paths that would otherwise box a fresh closure per event pass a
	// static fn plus their receiver instead.
	fn  func(arg any)
	arg any

	seq   uint64 // insertion sequence, breaks Time ties FIFO
	index int    // heap index, or 0 if queued in a calendar; -1 once out
}

// Canceled reports whether Cancel was called on the event (or it already
// fired). A canceled event is removed from the queue immediately.
func (e *Event) Canceled() bool { return e.index < 0 }

// eventQueue is the time-ordered pending set. Implementations must pop in
// strict (Time, seq) order.
type eventQueue interface {
	Push(*Event)
	Pop() *Event
	Peek() *Event
	Remove(*Event) bool
	Len() int
}

// Engine owns the simulation clock and the pending event set.
// The zero value is not ready to use; call NewEngine.
type Engine struct {
	now    float64
	queue  eventQueue
	nextID uint64
	// Count of events executed so far; useful for progress accounting
	// and as a cheap sanity check in tests.
	executed uint64
	// free is the event-node free list: fired and canceled nodes are
	// recycled here so steady-state scheduling allocates nothing.
	free []*Event
}

// NewEngine returns an engine backed by a binary heap, with the clock at
// zero and no pending events.
func NewEngine() *Engine {
	return &Engine{queue: &heapQueue{}}
}

// NewEngineCalendar returns an engine backed by a calendar queue — the
// classic network-DES structure, amortized O(1) per operation for the
// near-uniform event spacing a loaded link produces.
func NewEngineCalendar() *Engine {
	return &Engine{queue: newCalendarQueue()}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// schedule validates t, takes a node from the free list (or allocates one),
// stamps its time and sequence, and inserts it into the queue. The caller
// fills in the body (Run or fn/arg) afterwards; nothing executes until Step.
func (e *Engine) schedule(t float64) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.Time = t
	ev.seq = e.nextID
	e.nextID++
	e.queue.Push(ev)
	return ev
}

// release returns a node that left the queue (fired or canceled) to the
// free list, clearing its body so recycled nodes never leak references.
func (e *Engine) release(ev *Event) {
	ev.Run, ev.fn, ev.arg = nil, nil, nil
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t and returns the event handle,
// which may be passed to Cancel while the event is pending. Scheduling in
// the past (t < Now) panics: it is always a logic error in a discrete-event
// model.
//
// The fn closure is allocated by the caller; per-event hot paths should use
// AtFunc, which takes a shared function plus one pointer argument and
// allocates nothing.
func (e *Engine) At(t float64, fn func()) *Event {
	ev := e.schedule(t)
	ev.Run = fn
	return ev
}

// After schedules fn to run d time units from now.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// AtFunc schedules fn(arg) to run at absolute time t. Unlike At it boxes no
// closure: with a package-level fn and a pointer-typed arg the call is
// allocation-free, which is what the per-packet paths (source emission,
// link transmission completion) use.
func (e *Engine) AtFunc(t float64, fn func(arg any), arg any) *Event {
	ev := e.schedule(t)
	ev.fn = fn
	ev.arg = arg
	return ev
}

// AfterFunc schedules fn(arg) to run d time units from now; see AtFunc.
func (e *Engine) AfterFunc(d float64, fn func(arg any), arg any) *Event {
	return e.AtFunc(e.now+d, fn, arg)
}

// ticker is the closure-free state behind Every: a package-level fire
// function plus this record keeps periodic scheduling allocation-free after
// the first tick.
type ticker struct {
	engine *Engine
	period float64
	fn     func(arg any) bool
	arg    any
}

// tickerFire runs one tick and reschedules while fn keeps returning true.
func tickerFire(a any) {
	t := a.(*ticker)
	if t.fn(t.arg) {
		t.engine.AtFunc(t.engine.now+t.period, tickerFire, t)
	}
}

// Every schedules fn(arg) at start and then every period time units until
// fn returns false. It is the periodic-sampling primitive used by
// observability and chaos harnesses (telemetry snapshots, scenario
// monitors); like AtFunc it boxes no closure per tick.
func (e *Engine) Every(start, period float64, fn func(arg any) bool, arg any) {
	if !(period > 0) {
		panic(fmt.Sprintf("sim: Every period %g must be > 0", period))
	}
	e.AtFunc(start, tickerFire, &ticker{engine: e, period: period, fn: fn, arg: arg})
}

// Cancel removes a pending event so it will never run. Canceling an event
// that already fired (or was already canceled) is a no-op, but the handle
// must not be retained past the event's scheduled time: the engine recycles
// fired nodes, so a stale handle may alias a different pending event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	if e.queue.Remove(ev) {
		ev.index = -1
		e.release(ev)
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its time. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	ev := e.queue.Pop()
	if ev == nil {
		return false
	}
	e.now = ev.Time
	e.executed++
	// Copy the body out and recycle the node before running it, so events
	// scheduled by the body can reuse it immediately.
	run, fn, arg := ev.Run, ev.fn, ev.arg
	e.release(ev)
	if run != nil {
		run()
	} else {
		fn(arg)
	}
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event would fire strictly after horizon. The clock is left at the time of
// the last executed event (it does not jump forward on an empty queue).
func (e *Engine) RunUntil(horizon float64) {
	for {
		head := e.queue.Peek()
		if head == nil || head.Time > horizon {
			return
		}
		e.Step()
	}
}

// RunAll executes events until none remain. The caller is responsible for
// ensuring event generation terminates.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// heapQueue adapts the binary heap to the eventQueue interface.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) Push(ev *Event) { heap.Push(&q.h, ev) }

func (q *heapQueue) Pop() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

func (q *heapQueue) Peek() *Event {
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

func (q *heapQueue) Remove(ev *Event) bool {
	if ev.index < 0 || ev.index >= len(q.h) || q.h[ev.index] != ev {
		return false
	}
	heap.Remove(&q.h, ev.index)
	return true
}

func (q *heapQueue) Len() int { return len(q.h) }

// eventHeap is a min-heap on (Time, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
