package sim

import "math"

// calendarQueue is a Brown-style calendar queue: the classic O(1)-amortized
// event structure of network simulators. Events hash into time buckets of
// width `width`; dequeue sweeps the calendar "day by day". The queue
// resizes and re-estimates its bucket width from the live event spacing as
// the population grows and shrinks.
//
// It implements the same ordering contract as the binary heap — strict
// (Time, insertion-sequence) order — and is property-tested against it.
type calendarQueue struct {
	buckets [][]*Event
	width   float64
	// lastTime is the virtual clock of the sweep: no event earlier than
	// it remains in the queue.
	lastTime float64
	size     int
}

const (
	calMinBuckets = 8
	calMaxBuckets = 1 << 20
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*Event, calMinBuckets),
		width:   1,
	}
}

func (c *calendarQueue) Len() int { return c.size }

// day returns the calendar day an instant belongs to. Bucket assignment
// and the dequeue sweep both derive from this single function, so floating
// rounding at bucket boundaries can never make them disagree.
func (c *calendarQueue) day(t float64) int64 {
	return int64(math.Floor(t / c.width))
}

func (c *calendarQueue) bucketFor(t float64) int {
	nb := int64(len(c.buckets))
	i := c.day(t) % nb
	if i < 0 {
		i += nb
	}
	return int(i)
}

// Push inserts the event, keeping each bucket sorted by (Time, seq).
func (c *calendarQueue) Push(ev *Event) {
	b := c.bucketFor(ev.Time)
	lst := c.buckets[b]
	// Binary search for the insertion point.
	lo, hi := 0, len(lst)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(lst[mid], ev) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	lst = append(lst, nil)
	copy(lst[lo+1:], lst[lo:])
	lst[lo] = ev
	c.buckets[b] = lst
	ev.index = 0 // queued marker for Canceled()
	c.size++
	if ev.Time < c.lastTime {
		// Should not happen (the engine forbids scheduling in the
		// past), but keep the sweep correct regardless.
		c.lastTime = ev.Time
	}
	if c.size > 2*len(c.buckets) && len(c.buckets) < calMaxBuckets {
		c.resize(len(c.buckets) * 2)
	}
}

func less(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

// Peek returns the earliest event without removing it, or nil when empty.
func (c *calendarQueue) Peek() *Event {
	if c.size == 0 {
		return nil
	}
	i, _ := c.findMin()
	return c.buckets[i][0]
}

// Pop removes and returns the earliest event, or nil when empty.
func (c *calendarQueue) Pop() *Event {
	if c.size == 0 {
		return nil
	}
	i, ev := c.findMin()
	// Shift down in place rather than re-slicing the head off: a [1:]
	// re-slice burns one slot of backing-array capacity per pop, forcing
	// a reallocation every len(bucket) pops even at constant population.
	// Buckets average at most two events, so the copy is cheap and the
	// steady state allocates nothing.
	lst := c.buckets[i]
	copy(lst, lst[1:])
	lst[len(lst)-1] = nil
	c.buckets[i] = lst[:len(lst)-1]
	c.size--
	ev.index = -1
	c.lastTime = ev.Time
	if c.size < len(c.buckets)/4 && len(c.buckets) > calMinBuckets {
		c.resize(len(c.buckets) / 2)
	}
	return ev
}

// findMin locates the bucket holding the earliest event. It first sweeps
// one calendar year from the last position (the O(1) fast path), then
// falls back to a full scan. A bucket's head is accepted only when it
// belongs to the day being swept, using the same day() function that
// assigned it to the bucket.
func (c *calendarQueue) findMin() (int, *Event) {
	nb := len(c.buckets)
	startDay := c.day(c.lastTime)
	for k := 0; k < nb; k++ {
		day := startDay + int64(k)
		i := int(day % int64(nb))
		if i < 0 {
			i += nb
		}
		if lst := c.buckets[i]; len(lst) > 0 && c.day(lst[0].Time) == day {
			return i, lst[0]
		}
	}
	// Slow path: direct search.
	bestI := -1
	var best *Event
	for i, lst := range c.buckets {
		if len(lst) == 0 {
			continue
		}
		if best == nil || less(lst[0], best) {
			bestI, best = i, lst[0]
		}
	}
	return bestI, best
}

// Remove deletes the event if present (linear within its bucket).
func (c *calendarQueue) Remove(ev *Event) bool {
	b := c.bucketFor(ev.Time)
	lst := c.buckets[b]
	for i, e := range lst {
		if e == ev {
			c.buckets[b] = append(lst[:i], lst[i+1:]...)
			c.size--
			ev.index = -1
			return true
		}
	}
	return false
}

// resize rebuilds the calendar with nb buckets and a width estimated from
// the current event spread.
func (c *calendarQueue) resize(nb int) {
	events := make([]*Event, 0, c.size)
	for _, lst := range c.buckets {
		events = append(events, lst...)
	}
	// Width heuristic: spread of pending event times divided by the
	// population, clamped to something sane.
	var minT, maxT float64
	for i, ev := range events {
		if i == 0 {
			minT, maxT = ev.Time, ev.Time
			continue
		}
		if ev.Time < minT {
			minT = ev.Time
		}
		if ev.Time > maxT {
			maxT = ev.Time
		}
	}
	width := 1.0
	if len(events) > 1 && maxT > minT {
		width = (maxT - minT) / float64(len(events))
	}
	if width <= 0 || math.IsNaN(width) || math.IsInf(width, 0) {
		width = 1
	}
	c.buckets = make([][]*Event, nb)
	c.width = width
	c.size = 0
	for _, ev := range events {
		c.Push(ev)
	}
}
