package sim

import "testing"

// Pins the zero-allocation contract of the event hot path: with the node
// free list warm, an AfterFunc+Step cycle must not touch the heap on
// either queue backend.

func nopBody(any) {}

func testEngineZeroAllocs(t *testing.T, e *Engine) {
	t.Helper()
	// Warm pending set: staggered events keep the queue non-trivially
	// populated so Push/Pop reorder real work, and the far-future spacing
	// means none of them fire during the measured cycles.
	for i := 0; i < 64; i++ {
		e.AfterFunc(1e6+float64(i), nopBody, nil)
	}
	// Warm the node free list and any bucket/heap capacity.
	for i := 0; i < 256; i++ {
		e.AfterFunc(0.5, nopBody, nil)
		e.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		e.AfterFunc(0.5, nopBody, nil)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state AfterFunc+Step: %.1f allocs/op, want 0", allocs)
	}
}

func TestEngineHeapZeroAllocs(t *testing.T) {
	testEngineZeroAllocs(t, NewEngine())
}

func TestEngineCalendarZeroAllocs(t *testing.T) {
	testEngineZeroAllocs(t, NewEngineCalendar())
}
