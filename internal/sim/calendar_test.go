package sim

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: the calendar queue pops in exactly the order the heap does,
// for arbitrary interleavings of pushes, pops and removals over several
// time scales (the engine contract: strict (Time, seq) order).
func TestCalendarMatchesHeapProperty(t *testing.T) {
	f := func(seed uint64, opsCount uint16, scalePick uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 77))
		cal := newCalendarQueue()
		hp := &heapQueue{}
		scale := []float64{1, 1e-3, 1e3, 1e6}[scalePick%4]
		var seq uint64
		now := 0.0
		type pair struct{ c, h *Event }
		var live []pair
		ops := int(opsCount%600) + 20
		for k := 0; k < ops; k++ {
			switch rng.IntN(10) {
			case 0, 1, 2, 3, 4: // push
				// Coarse grid forces frequent exact ties.
				t := now + float64(rng.IntN(50))*scale
				seq++
				ce := &Event{Time: t, seq: seq}
				he := &Event{Time: t, seq: seq}
				cal.Push(ce)
				hp.Push(he)
				live = append(live, pair{ce, he})
			case 5, 6, 7, 8: // pop
				ce := cal.Pop()
				he := hp.Pop()
				if (ce == nil) != (he == nil) {
					return false
				}
				if ce == nil {
					continue
				}
				if ce.Time != he.Time || ce.seq != he.seq {
					return false
				}
				now = ce.Time // simulated clock advance
			case 9: // remove a random live event
				if len(live) == 0 {
					continue
				}
				i := rng.IntN(len(live))
				p := live[i]
				live = append(live[:i], live[i+1:]...)
				// Removal may fail if already popped; the two
				// structures must agree.
				cr := cal.Remove(p.c)
				hr := hp.Remove(p.h)
				if cr != hr {
					return false
				}
			}
			if cal.Len() != hp.Len() {
				return false
			}
			cp, hpk := cal.Peek(), hp.Peek()
			if (cp == nil) != (hpk == nil) {
				return false
			}
			if cp != nil && (cp.Time != hpk.Time || cp.seq != hpk.seq) {
				return false
			}
		}
		// Drain to the end.
		for {
			ce := cal.Pop()
			he := hp.Pop()
			if (ce == nil) != (he == nil) {
				return false
			}
			if ce == nil {
				return true
			}
			if ce.Time != he.Time || ce.seq != he.seq {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarEngineRunsSimulation(t *testing.T) {
	e := NewEngineCalendar()
	var got []int
	for i, tm := range []float64{3, 1, 2, 2, 5} {
		i, tm := i, tm
		e.At(tm, func() { got = append(got, i) })
	}
	e.RunAll()
	want := []int{1, 2, 3, 0, 4} // times 1, 2(seq2), 2(seq3), 3, 5
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestCalendarEngineCancel(t *testing.T) {
	e := NewEngineCalendar()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("event not marked canceled")
	}
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestCalendarResizeGrowShrink(t *testing.T) {
	c := newCalendarQueue()
	var evs []*Event
	for i := 0; i < 1000; i++ {
		ev := &Event{Time: float64(i) * 0.37, seq: uint64(i)}
		evs = append(evs, ev)
		c.Push(ev)
	}
	if len(c.buckets) <= calMinBuckets {
		t.Fatalf("calendar did not grow: %d buckets", len(c.buckets))
	}
	last := -1.0
	for i := 0; i < 1000; i++ {
		ev := c.Pop()
		if ev == nil {
			t.Fatalf("ran dry at %d", i)
		}
		if ev.Time < last {
			t.Fatalf("out of order: %g after %g", ev.Time, last)
		}
		last = ev.Time
	}
	if c.Pop() != nil || c.Len() != 0 {
		t.Fatal("queue not empty after drain")
	}
	if len(c.buckets) > calMinBuckets*4 {
		t.Fatalf("calendar did not shrink: %d buckets", len(c.buckets))
	}
	_ = evs
}

// Both engines must produce identical simulation trajectories for a
// self-scheduling workload (events that spawn events).
func TestEnginesEquivalentOnSelfSchedulingWorkload(t *testing.T) {
	run := func(e *Engine) []float64 {
		var log []float64
		rng := rand.New(rand.NewPCG(4, 4))
		var spawn func()
		count := 0
		spawn = func() {
			log = append(log, e.Now())
			count++
			if count < 3000 {
				e.After(rng.Float64()*10, spawn)
				if count%7 == 0 {
					e.After(rng.Float64(), func() { log = append(log, -e.Now()) })
				}
			}
		}
		e.At(0, spawn)
		e.RunAll()
		return log
	}
	a := run(NewEngine())
	b := run(NewEngineCalendar())
	if len(a) != len(b) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineCalendarScheduleRun(b *testing.B) {
	e := NewEngineCalendar()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkQueueHold measures the classic hold model (push one, pop one at
// steady state) at a realistic pending-set size for both structures.
func BenchmarkQueueHold(b *testing.B) {
	for _, impl := range []struct {
		name string
		mk   func() eventQueue
	}{
		{"heap", func() eventQueue { return &heapQueue{} }},
		{"calendar", func() eventQueue { return newCalendarQueue() }},
	} {
		b.Run(impl.name, func(b *testing.B) {
			q := impl.mk()
			rng := rand.New(rand.NewPCG(1, 1))
			now := 0.0
			var seq uint64
			for i := 0; i < 512; i++ {
				seq++
				q.Push(&Event{Time: now + rng.Float64()*100, seq: seq})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := q.Pop()
				now = ev.Time
				seq++
				ev.Time = now + rng.Float64()*100
				ev.seq = seq
				q.Push(ev)
			}
		})
	}
}
