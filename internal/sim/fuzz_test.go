package sim

import (
	"testing"
)

// FuzzCalendarQueue drives the calendar queue and the binary heap through
// the same arbitrary schedule of pushes, pops and removals and requires
// identical (Time, seq) pop order — the ordering contract the engine's
// determinism rests on. Twin Event objects are used because both
// structures write the shared index/queued marker.
func FuzzCalendarQueue(f *testing.F) {
	f.Add([]byte{10, 3, 255, 7, 255, 255, 254, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255, 255})
	f.Add([]byte{200, 1, 200, 1, 254, 1, 255, 200, 255, 254, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		heap := &heapQueue{}
		cal := newCalendarQueue()
		var pendingH, pendingC []*Event
		now := 0.0
		var seq uint64
		for i := 0; i < len(data); i++ {
			switch op := data[i]; op {
			case 255: // pop from both, compare order
				he := heap.Pop()
				ce := cal.Pop()
				if (he == nil) != (ce == nil) {
					t.Fatalf("pop mismatch: heap=%v calendar=%v", he, ce)
				}
				if he == nil {
					continue
				}
				if he.Time != ce.Time || he.seq != ce.seq {
					t.Fatalf("pop order diverged: heap (t=%g seq=%d) vs calendar (t=%g seq=%d)",
						he.Time, he.seq, ce.Time, ce.seq)
				}
				if he.Time < now {
					t.Fatalf("pop went backwards: %g after %g", he.Time, now)
				}
				now = he.Time
				pendingH, pendingC = dropEvent(pendingH, he), dropEvent(pendingC, ce)
			case 254: // remove a pending event from both
				i++
				if i >= len(data) || len(pendingH) == 0 {
					continue
				}
				j := int(data[i]) % len(pendingH)
				okH := heap.Remove(pendingH[j])
				okC := cal.Remove(pendingC[j])
				if okH != okC {
					t.Fatalf("remove mismatch: heap=%v calendar=%v", okH, okC)
				}
				pendingH = append(pendingH[:j], pendingH[j+1:]...)
				pendingC = append(pendingC[:j], pendingC[j+1:]...)
			default: // push at now + op/8 (clustered times force ties)
				tm := now + float64(op)/8
				he := &Event{Time: tm, seq: seq}
				ce := &Event{Time: tm, seq: seq}
				seq++
				heap.Push(he)
				cal.Push(ce)
				pendingH = append(pendingH, he)
				pendingC = append(pendingC, ce)
			}
			if heap.Len() != cal.Len() {
				t.Fatalf("Len diverged: heap=%d calendar=%d", heap.Len(), cal.Len())
			}
			hp, cp := heap.Peek(), cal.Peek()
			if (hp == nil) != (cp == nil) {
				t.Fatalf("peek mismatch: heap=%v calendar=%v", hp, cp)
			}
			if hp != nil && (hp.Time != cp.Time || hp.seq != cp.seq) {
				t.Fatalf("peek diverged: heap (t=%g seq=%d) vs calendar (t=%g seq=%d)",
					hp.Time, hp.seq, cp.Time, cp.seq)
			}
		}
	})
}

func dropEvent(list []*Event, ev *Event) []*Event {
	for i, e := range list {
		if e == ev {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
