package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %g, want 3", e.Now())
	}
	if e.Executed() != 3 {
		t.Fatalf("Executed = %d, want 3", e.Executed())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-broken order = %v, want insertion order", got)
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at float64 = -1
	e.At(2, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.RunAll()
	if at != 5 {
		t.Fatalf("After fired at %g, want 5", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	if ev.Canceled() {
		t.Fatal("fresh event reports canceled")
	}
	e.Cancel(ev)
	if !ev.Canceled() {
		t.Fatal("canceled event does not report canceled")
	}
	e.Cancel(ev) // double cancel is a no-op
	e.Cancel(nil)
	e.RunAll()
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after RunAll", e.Pending())
	}
}

func TestEngineCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []float64
	var evs []*Event
	for _, tm := range []float64{5, 1, 9, 3, 7, 2, 8} {
		tm := tm
		evs = append(evs, e.At(tm, func() { got = append(got, tm) }))
	}
	e.Cancel(evs[0]) // t=5
	e.Cancel(evs[2]) // t=9
	e.RunAll()
	want := []float64{1, 2, 3, 7, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { got = append(got, tm) })
	}
	e.RunUntil(3)
	if len(got) != 3 {
		t.Fatalf("RunUntil(3) executed %d events, want 3", len(got))
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.RunUntil(10)
	if len(got) != 5 {
		t.Fatalf("RunUntil(10) executed %d events total, want 5", len(got))
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.RunAll()
}

// Property: for any multiset of event times, the engine executes them in
// nondecreasing time order, and equal times run in insertion order.
func TestEngineSortsArbitraryTimes(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		e := NewEngine()
		count := int(n%64) + 1
		times := make([]float64, count)
		type fired struct {
			tm  float64
			seq int
		}
		var got []fired
		for i := 0; i < count; i++ {
			// Coarse grid forces many ties.
			tm := float64(rng.IntN(8))
			times[i] = tm
			i := i
			e.At(tm, func() { got = append(got, fired{tm, i}) })
		}
		e.RunAll()
		sort.Float64s(times)
		if len(got) != count {
			return false
		}
		for i := range got {
			if got[i].tm != times[i] {
				return false
			}
			if i > 0 && got[i].tm == got[i-1].tm && got[i].seq < got[i-1].seq {
				return false // tie broken out of insertion order
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}
