package traffic

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV serializes the trace as CSV (`class,size,time` rows after a
// header comment). Traces saved this way can be replayed later for exact
// cross-scheduler comparisons or shared as experiment artifacts.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# pdds trace classes=%d horizon=%g\n", t.Classes, t.Horizon); err != nil {
		return err
	}
	for _, a := range t.Arrivals {
		if _, err := fmt.Fprintf(bw, "%d,%d,%s\n", a.Class, a.Size,
			strconv.FormatFloat(a.Time, 'g', 17, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTraceCSV parses a trace written by WriteCSV, validating class range
// and time ordering.
func ReadTraceCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("traffic: empty trace file")
	}
	// Tolerate files round-tripped through Windows editors: a UTF-8 BOM
	// before the header (CRLF line ends are already handled by the
	// scanner's line splitting).
	header := strings.TrimPrefix(sc.Text(), "\ufeff")
	tr := &Trace{}
	if n, err := fmt.Sscanf(header, "# pdds trace classes=%d horizon=%g", &tr.Classes, &tr.Horizon); err != nil || n != 2 {
		return nil, fmt.Errorf("traffic: bad trace header %q", header)
	}
	if tr.Classes < 1 || !(tr.Horizon > 0) {
		return nil, fmt.Errorf("traffic: invalid header values in %q", header)
	}
	line := 1
	var prev float64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("traffic: line %d: want class,size,time", line)
		}
		class, err := strconv.Atoi(parts[0])
		if err != nil || class < 0 || class >= tr.Classes {
			return nil, fmt.Errorf("traffic: line %d: bad class %q", line, parts[0])
		}
		size, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("traffic: line %d: bad size %q", line, parts[1])
		}
		tm, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || tm < 0 || math.IsNaN(tm) || math.IsInf(tm, 0) {
			return nil, fmt.Errorf("traffic: line %d: bad time %q", line, parts[2])
		}
		if tm < prev {
			return nil, fmt.Errorf("traffic: line %d: time %g before previous %g", line, tm, prev)
		}
		prev = tm
		tr.Arrivals = append(tr.Arrivals, Arrival{Class: class, Size: size, Time: tm})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
