package traffic

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/sim"
)

// FlowSpec describes a Study B user flow: Packets packets of Size bytes in
// class Class, paced so the flow's average rate is Rate (bytes per time
// unit). The paper's flows are "periodically transmitted at 1.5 Mbps to
// generate an average rate of R_u kbps"; the pacing gap realizes R_u while
// the access-link burst rate is modeled by the downstream link itself.
type FlowSpec struct {
	Class   int
	Packets int
	Size    int64
	Rate    float64 // average bytes per time unit
}

// Gap returns the inter-packet spacing that realizes the average rate.
func (f FlowSpec) Gap() float64 {
	if !(f.Rate > 0) {
		panic("traffic: FlowSpec.Rate must be > 0")
	}
	return float64(f.Size) / f.Rate
}

// Validate checks the spec.
func (f FlowSpec) Validate() error {
	if f.Packets <= 0 {
		return fmt.Errorf("traffic: flow needs at least one packet, got %d", f.Packets)
	}
	if f.Size <= 0 {
		return fmt.Errorf("traffic: flow packet size %d must be > 0", f.Size)
	}
	if !(f.Rate > 0) {
		return fmt.Errorf("traffic: flow rate %g must be > 0", f.Rate)
	}
	return nil
}

// ScheduleFlow schedules the flow's packets on the engine starting at
// start, delivering each to sink with the given flow ID. Packet IDs are
// flowID<<16 + sequence.
func ScheduleFlow(engine *sim.Engine, spec FlowSpec, start float64, flowID uint64, sink Sink) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	gap := spec.Gap()
	for i := 0; i < spec.Packets; i++ {
		t := start + float64(i)*gap
		seq := uint64(i)
		engine.At(t, func() {
			now := engine.Now()
			sink(&core.Packet{
				ID:      flowID<<16 + seq,
				Class:   spec.Class,
				Size:    spec.Size,
				Arrival: now,
				Birth:   now,
				Flow:    flowID,
			})
		})
	}
	return nil
}
