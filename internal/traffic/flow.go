package traffic

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/sim"
)

// FlowSpec describes a Study B user flow: Packets packets of Size bytes in
// class Class, paced so the flow's average rate is Rate (bytes per time
// unit). The paper's flows are "periodically transmitted at 1.5 Mbps to
// generate an average rate of R_u kbps"; the pacing gap realizes R_u while
// the access-link burst rate is modeled by the downstream link itself.
type FlowSpec struct {
	Class   int
	Packets int
	Size    int64
	Rate    float64 // average bytes per time unit
}

// Gap returns the inter-packet spacing that realizes the average rate.
func (f FlowSpec) Gap() float64 {
	if !(f.Rate > 0) {
		panic("traffic: FlowSpec.Rate must be > 0")
	}
	return float64(f.Size) / f.Rate
}

// Validate checks the spec.
func (f FlowSpec) Validate() error {
	if f.Packets <= 0 {
		return fmt.Errorf("traffic: flow needs at least one packet, got %d", f.Packets)
	}
	if f.Size <= 0 {
		return fmt.Errorf("traffic: flow packet size %d must be > 0", f.Size)
	}
	if !(f.Rate > 0) {
		return fmt.Errorf("traffic: flow rate %g must be > 0", f.Rate)
	}
	return nil
}

// ScheduleFlow schedules the flow's packets on the engine starting at
// start, delivering each to sink with the given flow ID. Packet IDs are
// flowID<<16 + sequence.
func ScheduleFlow(engine *sim.Engine, spec FlowSpec, start float64, flowID uint64, sink Sink) error {
	return ScheduleFlowPool(engine, spec, start, flowID, sink, nil)
}

// ScheduleFlowPool is ScheduleFlow drawing packets from pool (nil pool
// allocates). Instead of pre-scheduling one closure per packet it chains a
// single emitter through the engine, so a flow costs one allocation total
// and one pending event at a time regardless of its length.
func ScheduleFlowPool(engine *sim.Engine, spec FlowSpec, start float64, flowID uint64, sink Sink, pool *core.PacketPool) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	f := &flowEmitter{
		engine: engine,
		spec:   spec,
		start:  start,
		gap:    spec.Gap(),
		flowID: flowID,
		sink:   sink,
		pool:   pool,
	}
	engine.AtFunc(start, flowEmit, f)
	return nil
}

// flowEmitter emits one flow's packets at start + i·gap, one pending event
// at a time.
type flowEmitter struct {
	engine *sim.Engine
	spec   FlowSpec
	start  float64
	gap    float64
	flowID uint64
	sink   Sink
	pool   *core.PacketPool
	i      int
}

// flowEmit is the shared closure-free event body for flow emission.
func flowEmit(arg any) { arg.(*flowEmitter).emit() }

func (f *flowEmitter) emit() {
	now := f.engine.Now()
	p := f.pool.Get()
	p.ID = f.flowID<<16 + uint64(f.i)
	p.Class = f.spec.Class
	p.Size = f.spec.Size
	p.Arrival = now
	p.Birth = now
	p.Flow = f.flowID
	f.sink(p)
	f.i++
	if f.i < f.spec.Packets {
		f.engine.AtFunc(f.start+float64(f.i)*f.gap, flowEmit, f)
	}
}
