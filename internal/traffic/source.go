package traffic

import (
	"fmt"
	"math/rand/v2"

	"pdds/internal/core"
	"pdds/internal/sim"
)

// Sink receives generated packets (typically a link's arrival handler).
type Sink func(*core.Packet)

// Source is a single-class packet source: packets of class Class with
// sizes from Sizes arrive with interarrivals from Inter. This is the §5
// model — "a BPR/WTP scheduler services N packet sources, with one source
// for each service class".
type Source struct {
	Class int
	Inter Interarrival
	Sizes SizeDist
	RNG   *rand.Rand

	// Pool, if set, supplies recycled Packet objects so steady-state
	// emission allocates nothing. The run harness that terminates packets
	// (link departure/drop) returns them; see core.PacketPool for the
	// lifetime rules. A nil Pool allocates per packet.
	Pool *core.PacketPool

	engine  *sim.Engine
	sink    Sink
	nextID  uint64
	idBase  uint64
	count   uint64
	pending *sim.Event // the scheduled next emission; nil while emitting or paused
	paused  bool
}

// Start begins emitting packets into sink on the engine. The first packet
// arrives one interarrival after the current simulation time. idBase
// namespaces packet IDs so multiple sources never collide.
func (s *Source) Start(engine *sim.Engine, sink Sink, idBase uint64) {
	if s.Inter == nil || s.Sizes == nil || s.RNG == nil {
		panic("traffic: Source requires Inter, Sizes and RNG")
	}
	s.engine = engine
	s.sink = sink
	s.idBase = idBase
	s.scheduleNext()
}

// Emitted returns how many packets the source has generated so far.
func (s *Source) Emitted() uint64 { return s.count }

// sourceEmit is the shared event body for source emission: a package-level
// func plus the *Source receiver as the argument, so scheduling the next
// arrival boxes no closure (see sim.AtFunc).
func sourceEmit(arg any) { arg.(*Source).emit() }

func (s *Source) scheduleNext() {
	d := s.Inter.Next(s.RNG)
	s.pending = s.engine.AfterFunc(d, sourceEmit, s)
}

// SetInter switches the source to a new interarrival distribution,
// effective immediately: the already-scheduled next arrival is canceled and
// redrawn from the new distribution. An immediate redraw matters for load
// steps under heavy-tailed interarrivals, where the pending draw can lie
// arbitrarily far in the future. No-op while paused (the new distribution
// is used on Resume) or before Start.
func (s *Source) SetInter(inter Interarrival) {
	if inter == nil {
		panic("traffic: SetInter with nil distribution")
	}
	s.Inter = inter
	if s.pending != nil {
		s.engine.Cancel(s.pending)
		s.pending = nil
		s.scheduleNext()
	}
}

// Pause stops emission: the pending next arrival is canceled. No-op when
// already paused or not started.
func (s *Source) Pause() {
	if s.engine == nil || s.paused {
		return
	}
	s.paused = true
	if s.pending != nil {
		s.engine.Cancel(s.pending)
		s.pending = nil
	}
}

// Resume restarts a paused source; the next arrival is one fresh
// interarrival draw after the current simulation time.
func (s *Source) Resume() {
	if s.engine == nil || !s.paused {
		return
	}
	s.paused = false
	s.scheduleNext()
}

// Paused reports whether the source is currently paused.
func (s *Source) Paused() bool { return s.paused }

func (s *Source) emit() {
	s.pending = nil
	now := s.engine.Now()
	s.nextID++
	s.count++
	p := s.Pool.Get()
	p.ID = s.idBase + s.nextID
	p.Class = s.Class
	p.Size = s.Sizes.Next(s.RNG)
	p.Arrival = now
	p.Birth = now
	s.sink(p)
	s.scheduleNext()
}

// LoadSpec describes an offered load for a multi-class source set: total
// utilization rho on a link of linkRate bytes/tu, split across classes by
// Fractions (must sum to 1).
type LoadSpec struct {
	// Rho is the target utilization in (0, ~1]; the paper studies 0.70
	// to 0.999.
	Rho float64
	// Fractions is the class load distribution, e.g. the paper's default
	// {0.40, 0.30, 0.20, 0.10} for classes 1..4.
	Fractions []float64
	// Sizes is the shared packet-size distribution (same for all classes
	// per §3's conservation-law assumption).
	Sizes SizeDist
	// Alpha is the Pareto shape for interarrivals (paper: 1.9). If
	// Poisson is true Alpha is ignored.
	Alpha float64
	// Poisson selects exponential interarrivals instead of Pareto.
	Poisson bool
}

// Validate checks the spec.
func (l LoadSpec) Validate() error {
	if !(l.Rho > 0) || l.Rho > 1.5 {
		return fmt.Errorf("traffic: rho %g out of range", l.Rho)
	}
	if len(l.Fractions) == 0 {
		return fmt.Errorf("traffic: no class fractions")
	}
	var sum float64
	for _, f := range l.Fractions {
		if f < 0 {
			return fmt.Errorf("traffic: negative class fraction %g", f)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("traffic: class fractions sum to %g, want 1", sum)
	}
	if l.Sizes == nil {
		return fmt.Errorf("traffic: nil size distribution")
	}
	if !l.Poisson && !(l.Alpha > 1) {
		return fmt.Errorf("traffic: Pareto alpha %g must be > 1", l.Alpha)
	}
	return nil
}

// Rates returns the per-class packet arrival rates (packets per time unit)
// that realize the spec on a link of linkRate bytes per time unit:
// lambda_agg = rho·linkRate/meanSize, lambda_i = f_i·lambda_agg.
func (l LoadSpec) Rates(linkRate float64) []float64 {
	agg := l.Rho * linkRate / l.Sizes.Mean()
	rates := make([]float64, len(l.Fractions))
	for i, f := range l.Fractions {
		rates[i] = f * agg
	}
	return rates
}

// Inter returns the spec's interarrival distribution for an arrival rate
// of lambda packets per time unit — Pareto(Alpha) or exponential per the
// spec. Chaos/scenario harnesses use it to rebuild a source's distribution
// at a new rate mid-run (see Source.SetInter).
func (l LoadSpec) Inter(lambda float64) Interarrival {
	if !(lambda > 0) {
		panic(fmt.Sprintf("traffic: interarrival rate %g must be > 0", lambda))
	}
	mean := 1 / lambda
	if l.Poisson {
		return NewExponential(mean)
	}
	return NewPareto(l.Alpha, mean)
}

// Build creates one Source per class with independent RNG streams derived
// from seed, and returns them (classes with zero fraction get no source).
// Call Start on each to begin the workload.
func (l LoadSpec) Build(linkRate float64, seed uint64) ([]*Source, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	rates := l.Rates(linkRate)
	sources := make([]*Source, 0, len(rates))
	for class, lambda := range rates {
		if lambda == 0 {
			continue
		}
		inter := l.Inter(lambda)
		sources = append(sources, &Source{
			Class: class,
			Inter: inter,
			Sizes: l.Sizes,
			// Distinct second-seed per class keeps streams
			// independent but reproducible.
			RNG: NewRNG(seed, 0x9e3779b9+uint64(class)),
		})
	}
	return sources, nil
}

// StartAll starts every source on the engine with non-overlapping ID bases.
func StartAll(engine *sim.Engine, sources []*Source, sink Sink) {
	for i, s := range sources {
		s.Start(engine, sink, uint64(i+1)<<40)
	}
}

// PaperLoad returns the paper's default Study A workload: Pareto α=1.9
// interarrivals, trimodal sizes, class fractions 40/30/20/10 (class 1 is
// the lowest), at utilization rho.
func PaperLoad(rho float64) LoadSpec {
	return LoadSpec{
		Rho:       rho,
		Fractions: []float64{0.40, 0.30, 0.20, 0.10},
		Sizes:     PaperSizes(),
		Alpha:     1.9,
	}
}
