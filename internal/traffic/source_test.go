package traffic

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/sim"
)

func TestLoadSpecValidate(t *testing.T) {
	good := PaperLoad(0.95)
	if err := good.Validate(); err != nil {
		t.Fatalf("paper load invalid: %v", err)
	}
	cases := []LoadSpec{
		{Rho: 0, Fractions: []float64{1}, Sizes: PaperSizes(), Alpha: 1.9},
		{Rho: 2, Fractions: []float64{1}, Sizes: PaperSizes(), Alpha: 1.9},
		{Rho: 0.9, Fractions: nil, Sizes: PaperSizes(), Alpha: 1.9},
		{Rho: 0.9, Fractions: []float64{0.5, 0.6}, Sizes: PaperSizes(), Alpha: 1.9},
		{Rho: 0.9, Fractions: []float64{-0.1, 1.1}, Sizes: PaperSizes(), Alpha: 1.9},
		{Rho: 0.9, Fractions: []float64{1}, Sizes: nil, Alpha: 1.9},
		{Rho: 0.9, Fractions: []float64{1}, Sizes: PaperSizes(), Alpha: 1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	poisson := LoadSpec{Rho: 0.9, Fractions: []float64{1}, Sizes: PaperSizes(), Poisson: true}
	if err := poisson.Validate(); err != nil {
		t.Errorf("poisson spec rejected: %v", err)
	}
}

func TestLoadSpecRates(t *testing.T) {
	// rho=0.95 on the paper link (39.375 B/tu): aggregate packet rate is
	// 0.95·39.375/441 per tu, i.e. one packet per 11.2/0.95 tu.
	l := PaperLoad(0.95)
	rates := l.Rates(441.0 / 11.2)
	var agg float64
	for _, r := range rates {
		agg += r
	}
	wantAgg := 0.95 / 11.2
	if math.Abs(agg-wantAgg)/wantAgg > 1e-9 {
		t.Fatalf("aggregate rate = %g, want %g", agg, wantAgg)
	}
	if math.Abs(rates[0]/agg-0.40) > 1e-9 || math.Abs(rates[3]/agg-0.10) > 1e-9 {
		t.Fatalf("class split wrong: %v", rates)
	}
}

func TestSourcesRealizeUtilization(t *testing.T) {
	// Generate traffic for a long horizon and check the offered byte
	// rate matches rho·linkRate.
	const linkRate = 441.0 / 11.2
	const horizon = 400000.0
	l := PaperLoad(0.80)
	sources, err := l.Build(linkRate, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 4 {
		t.Fatalf("built %d sources, want 4", len(sources))
	}
	engine := sim.NewEngine()
	var bytes [4]int64
	var pkts [4]int
	StartAll(engine, sources, func(p *core.Packet) {
		bytes[p.Class] += p.Size
		pkts[p.Class]++
	})
	engine.RunUntil(horizon)
	var total int64
	for _, b := range bytes {
		total += b
	}
	gotRho := float64(total) / horizon / linkRate
	if math.Abs(gotRho-0.80) > 0.05 {
		t.Fatalf("realized utilization %g, want 0.80±0.05", gotRho)
	}
	// Class split ~40/30/20/10 by packet count.
	totalPkts := pkts[0] + pkts[1] + pkts[2] + pkts[3]
	for i, want := range []float64{0.40, 0.30, 0.20, 0.10} {
		got := float64(pkts[i]) / float64(totalPkts)
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("class %d packet fraction %g, want %g", i, got, want)
		}
	}
	for i, s := range sources {
		if s.Emitted() != uint64(pkts[i]) {
			t.Fatalf("source %d Emitted=%d, sink saw %d", i, s.Emitted(), pkts[i])
		}
	}
}

func TestSourceIDsUniqueAndMonotonic(t *testing.T) {
	l := PaperLoad(0.9)
	sources, err := l.Build(40, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	seen := map[uint64]bool{}
	lastArrival := -1.0
	StartAll(engine, sources, func(p *core.Packet) {
		if seen[p.ID] {
			t.Fatalf("duplicate packet ID %d", p.ID)
		}
		seen[p.ID] = true
		if p.Arrival < lastArrival {
			t.Fatal("arrivals out of order")
		}
		lastArrival = p.Arrival
		if p.Birth != p.Arrival {
			t.Fatal("Birth != Arrival at first hop")
		}
	})
	engine.RunUntil(5000)
	if len(seen) < 100 {
		t.Fatalf("only %d packets generated", len(seen))
	}
}

func TestSourceStartValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Source.Start without RNG did not panic")
		}
	}()
	s := &Source{Class: 0, Inter: NewConstant(1), Sizes: NewFixedSize(100)}
	s.Start(sim.NewEngine(), func(*core.Packet) {}, 0)
}

func TestZeroFractionClassSkipped(t *testing.T) {
	l := LoadSpec{
		Rho:       0.9,
		Fractions: []float64{0.5, 0, 0.5},
		Sizes:     PaperSizes(),
		Alpha:     1.9,
	}
	sources, err := l.Build(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 {
		t.Fatalf("built %d sources, want 2 (zero-fraction skipped)", len(sources))
	}
}

func TestFlowScheduling(t *testing.T) {
	engine := sim.NewEngine()
	spec := FlowSpec{Class: 2, Packets: 10, Size: 500, Rate: 6.25} // gap = 80
	var got []*core.Packet
	if err := ScheduleFlow(engine, spec, 100, 9, func(p *core.Packet) {
		got = append(got, p)
	}); err != nil {
		t.Fatal(err)
	}
	engine.RunAll()
	if len(got) != 10 {
		t.Fatalf("flow delivered %d packets, want 10", len(got))
	}
	if spec.Gap() != 80 {
		t.Fatalf("Gap = %g, want 80", spec.Gap())
	}
	for i, p := range got {
		wantT := 100 + float64(i)*80
		if math.Abs(p.Arrival-wantT) > 1e-9 {
			t.Fatalf("packet %d at %g, want %g", i, p.Arrival, wantT)
		}
		if p.Flow != 9 || p.Class != 2 || p.Size != 500 {
			t.Fatalf("packet fields wrong: %+v", p)
		}
	}
	// IDs are unique within the flow.
	if got[0].ID == got[1].ID {
		t.Fatal("flow packet IDs collide")
	}
}

func TestFlowSpecValidation(t *testing.T) {
	engine := sim.NewEngine()
	bad := []FlowSpec{
		{Packets: 0, Size: 500, Rate: 1},
		{Packets: 5, Size: 0, Rate: 1},
		{Packets: 5, Size: 500, Rate: 0},
	}
	for i, spec := range bad {
		if err := ScheduleFlow(engine, spec, 0, 1, func(*core.Packet) {}); err == nil {
			t.Errorf("case %d: invalid flow accepted", i)
		}
	}
}
