package traffic

import (
	"bytes"
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/sim"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	tr, err := Record(PaperLoad(0.9), 441.0/11.2, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classes != tr.Classes || back.Horizon != tr.Horizon {
		t.Fatalf("header mismatch: %d/%g vs %d/%g", back.Classes, back.Horizon, tr.Classes, tr.Horizon)
	}
	if len(back.Arrivals) != len(tr.Arrivals) {
		t.Fatalf("arrivals = %d, want %d", len(back.Arrivals), len(tr.Arrivals))
	}
	for i := range tr.Arrivals {
		if back.Arrivals[i] != tr.Arrivals[i] {
			t.Fatalf("arrival %d mismatch: %+v vs %+v", i, back.Arrivals[i], tr.Arrivals[i])
		}
	}
}

func TestTraceCSVRoundTripReplaysIdentically(t *testing.T) {
	tr, err := Record(PaperLoad(0.95), 441.0/11.2, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replaySum := func(tr *Trace) (sum float64, n int) {
		engine := sim.NewEngine()
		tr.Replay(engine, func(p *core.Packet) {
			sum += float64(p.Size) * p.Arrival
			n++
		})
		engine.RunAll()
		return sum, n
	}
	s1, n1 := replaySum(tr)
	s2, n2 := replaySum(back)
	if s1 != s2 || n1 != n2 {
		t.Fatalf("replay differs after round trip: %g/%d vs %g/%d", s1, n1, s2, n2)
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n",
		"# pdds trace classes=0 horizon=10\n",
		"# pdds trace classes=2 horizon=10\n1,2\n",
		"# pdds trace classes=2 horizon=10\n7,100,1\n",
		"# pdds trace classes=2 horizon=10\n0,-5,1\n",
		"# pdds trace classes=2 horizon=10\n0,100,xyz\n",
		"# pdds trace classes=2 horizon=10\n0,100,5\n0,100,3\n", // out of order
	}
	for i, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestReadTraceCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# pdds trace classes=2 horizon=10\n\n# comment\n0,100,1\n1,200,2\n"
	tr, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) != 2 || tr.Arrivals[1].Class != 1 {
		t.Fatalf("parsed %+v", tr.Arrivals)
	}
}
