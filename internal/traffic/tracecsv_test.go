package traffic

import (
	"bytes"
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/sim"
)

func TestTraceCSVRoundTrip(t *testing.T) {
	tr, err := Record(PaperLoad(0.9), 441.0/11.2, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Classes != tr.Classes || back.Horizon != tr.Horizon {
		t.Fatalf("header mismatch: %d/%g vs %d/%g", back.Classes, back.Horizon, tr.Classes, tr.Horizon)
	}
	if len(back.Arrivals) != len(tr.Arrivals) {
		t.Fatalf("arrivals = %d, want %d", len(back.Arrivals), len(tr.Arrivals))
	}
	for i := range tr.Arrivals {
		if back.Arrivals[i] != tr.Arrivals[i] {
			t.Fatalf("arrival %d mismatch: %+v vs %+v", i, back.Arrivals[i], tr.Arrivals[i])
		}
	}
}

func TestTraceCSVRoundTripReplaysIdentically(t *testing.T) {
	tr, err := Record(PaperLoad(0.95), 441.0/11.2, 10000, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replaySum := func(tr *Trace) (sum float64, n int) {
		engine := sim.NewEngine()
		tr.Replay(engine, func(p *core.Packet) {
			sum += float64(p.Size) * p.Arrival
			n++
		})
		engine.RunAll()
		return sum, n
	}
	s1, n1 := replaySum(tr)
	s2, n2 := replaySum(back)
	if s1 != s2 || n1 != n2 {
		t.Fatalf("replay differs after round trip: %g/%d vs %g/%d", s1, n1, s2, n2)
	}
}

func TestReadTraceCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"garbage header\n",
		"# pdds trace classes=0 horizon=10\n",
		"# pdds trace classes=2 horizon=10\n1,2\n",
		"# pdds trace classes=2 horizon=10\n7,100,1\n",
		"# pdds trace classes=2 horizon=10\n0,-5,1\n",
		"# pdds trace classes=2 horizon=10\n0,100,xyz\n",
		"# pdds trace classes=2 horizon=10\n0,100,5\n0,100,3\n", // out of order
	}
	for i, c := range cases {
		if _, err := ReadTraceCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: bad CSV accepted", i)
		}
	}
}

func TestReadTraceCSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# pdds trace classes=2 horizon=10\n\n# comment\n0,100,1\n1,200,2\n"
	tr, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Arrivals) != 2 || tr.Arrivals[1].Class != 1 {
		t.Fatalf("parsed %+v", tr.Arrivals)
	}
}

func TestReadTraceCSVBOMAndCRLF(t *testing.T) {
	// A trace round-tripped through a Windows editor gains a UTF-8 BOM
	// and CRLF line endings; both must parse as the plain file would.
	in := "\ufeff# pdds trace classes=2 horizon=10\r\n0,100,1\r\n1,550,2.5\r\n"
	tr, err := ReadTraceCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Classes != 2 || tr.Horizon != 10 || len(tr.Arrivals) != 2 {
		t.Fatalf("parsed %d classes, horizon %g, %d arrivals", tr.Classes, tr.Horizon, len(tr.Arrivals))
	}
	want := []Arrival{{Class: 0, Size: 100, Time: 1}, {Class: 1, Size: 550, Time: 2.5}}
	for i, a := range tr.Arrivals {
		if a != want[i] {
			t.Errorf("arrival %d = %+v, want %+v", i, a, want[i])
		}
	}
	// A BOM anywhere else is still junk.
	if _, err := ReadTraceCSV(strings.NewReader("# pdds trace classes=2 horizon=10\n\ufeff0,100,1\n")); err == nil {
		t.Error("mid-file BOM accepted")
	}
}
