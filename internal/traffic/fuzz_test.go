package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTraceCSV exercises the trace parser with arbitrary text: it must
// never panic, and every accepted trace must survive a write/read round
// trip unchanged.
func FuzzReadTraceCSV(f *testing.F) {
	f.Add("")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,1\n1,550,2.5\n")
	f.Add("# pdds trace classes=4 horizon=1e6\n# comment\n\n3,1500,0\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,nan\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTraceCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := ReadTraceCSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.Classes != tr.Classes || len(back.Arrivals) != len(tr.Arrivals) {
			t.Fatalf("round trip changed trace: %d/%d vs %d/%d",
				back.Classes, len(back.Arrivals), tr.Classes, len(tr.Arrivals))
		}
		for i := range tr.Arrivals {
			if back.Arrivals[i] != tr.Arrivals[i] {
				t.Fatalf("arrival %d changed", i)
			}
		}
	})
}
