package traffic

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzTraceCSV exercises the trace parser with arbitrary text: it must
// never panic, and every accepted trace must survive a write/read round
// trip unchanged. Seeds cover the realistic hostile inputs: malformed and
// truncated rows, huge numeric fields, embedded NULs, a UTF-8 BOM, and
// CRLF line endings.
func FuzzTraceCSV(f *testing.F) {
	f.Add("")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,1\n1,550,2.5\n")
	f.Add("# pdds trace classes=4 horizon=1e6\n# comment\n\n3,1500,0\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,nan\n")
	// BOM before the header; CRLF line endings.
	f.Add("\ufeff# pdds trace classes=2 horizon=10\r\n0,100,1\r\n1,550,2\r\n")
	// Malformed rows: wrong arity, empty fields, non-numeric junk.
	f.Add("# pdds trace classes=2 horizon=10\n0,100\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,1,extra\n")
	f.Add("# pdds trace classes=2 horizon=10\n,,\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,1e2,xyz\n")
	// Huge fields: overflow-scale integers, giant floats, a very long
	// digit string, and a header with absurd values.
	f.Add("# pdds trace classes=2 horizon=10\n0,99999999999999999999999999,1\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,1e308\n1,100,1e309\n")
	f.Add("# pdds trace classes=2 horizon=10\n0," + strings.Repeat("9", 5000) + ",1\n")
	f.Add("# pdds trace classes=999999999999 horizon=1e999\n")
	// Out-of-range and out-of-order values.
	f.Add("# pdds trace classes=2 horizon=10\n5,100,1\n")
	f.Add("# pdds trace classes=2 horizon=10\n-1,100,1\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,-100,1\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,5\n0,100,1\n")
	f.Add("# pdds trace classes=2 horizon=10\n0,100,1\x00\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTraceCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted traces obey the documented invariants...
		var prev float64
		for i, a := range tr.Arrivals {
			if a.Class < 0 || a.Class >= tr.Classes {
				t.Fatalf("arrival %d: class %d outside [0,%d)", i, a.Class, tr.Classes)
			}
			if a.Size <= 0 {
				t.Fatalf("arrival %d: size %d", i, a.Size)
			}
			if a.Time < prev {
				t.Fatalf("arrival %d: time %g before %g", i, a.Time, prev)
			}
			prev = a.Time
		}
		// ...and round-trip bit-exactly.
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("rewrite failed: %v", err)
		}
		back, err := ReadTraceCSV(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if back.Classes != tr.Classes || len(back.Arrivals) != len(tr.Arrivals) {
			t.Fatalf("round trip changed trace: %d/%d vs %d/%d",
				back.Classes, len(back.Arrivals), tr.Classes, len(tr.Arrivals))
		}
		for i := range tr.Arrivals {
			if back.Arrivals[i] != tr.Arrivals[i] {
				t.Fatalf("arrival %d changed", i)
			}
		}
	})
}
