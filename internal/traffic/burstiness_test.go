package traffic

import (
	"testing"

	"pdds/internal/core"
	"pdds/internal/sim"
	"pdds/internal/stats"
)

// measureHurst generates the aggregate workload and estimates the Hurst
// parameter of its byte-count series via the variance-time plot.
func measureHurst(t *testing.T, poisson bool, alpha float64, seed uint64) float64 {
	t.Helper()
	load := LoadSpec{
		Rho:       0.95,
		Fractions: []float64{0.4, 0.3, 0.2, 0.1},
		Sizes:     PaperSizes(),
		Alpha:     alpha,
		Poisson:   poisson,
	}
	sources, err := load.Build(441.0/11.2, seed)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine()
	const horizon = 2e6
	const base = 56 // 5 p-units per bucket
	counts := make([]float64, int(horizon)/base)
	StartAll(engine, sources, func(p *core.Packet) {
		i := int(p.Arrival) / base
		if i < len(counts) {
			counts[i] += float64(p.Size)
		}
	})
	engine.RunUntil(horizon)
	pts, err := stats.VarianceTime(counts, []int{1, 4, 16, 64, 256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	h, err := stats.HurstEstimate(pts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// The paper's premise (§1/§2): its Pareto traffic is "bursty over a wide
// range of timescales". For heavy-tailed renewal arrivals the counts have
// Hurst parameter H = (3−α)/2, i.e. 0.55 at the paper's α=1.9, versus 0.5
// for Poisson; lower α must push H higher. These estimates pin the
// generators to that theory.
func TestWorkloadBurstinessMatchesTheory(t *testing.T) {
	hPareto := measureHurst(t, false, 1.9, 1)
	hPoisson := measureHurst(t, true, 1.9, 1)
	hHeavy := measureHurst(t, false, 1.2, 1)
	if hPareto < 0.52 || hPareto > 0.64 {
		t.Errorf("Pareto(1.9) H = %.3f, theory predicts ≈0.55", hPareto)
	}
	if hPoisson < 0.40 || hPoisson > 0.56 {
		t.Errorf("Poisson H = %.3f, want ≈0.5", hPoisson)
	}
	if hHeavy < 0.68 {
		t.Errorf("Pareto(1.2) H = %.3f, want > 0.68 (≈0.9 asymptotically)", hHeavy)
	}
	if !(hHeavy > hPareto && hPareto > hPoisson) {
		t.Errorf("H ordering violated: %.3f / %.3f / %.3f", hHeavy, hPareto, hPoisson)
	}
}
