package traffic

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/sim"
)

// Arrival is one recorded packet arrival of a trace.
type Arrival struct {
	Class int
	Size  int64
	Time  float64
}

// Trace is a time-ordered arrival trace. Traces let the same random
// workload be replayed through different schedulers (conservation-law
// tests) and through FCFS sub-servers (the feasibility conditions of §3).
type Trace struct {
	Arrivals []Arrival
	Classes  int
	Horizon  float64
}

// Record generates the load for the given horizon and captures it as a
// trace instead of feeding a link.
func Record(load LoadSpec, linkRate, horizon float64, seed uint64) (*Trace, error) {
	if err := load.Validate(); err != nil {
		return nil, err
	}
	if !(horizon > 0) {
		return nil, fmt.Errorf("traffic: horizon %g must be > 0", horizon)
	}
	sources, err := load.Build(linkRate, seed)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	tr := &Trace{Classes: len(load.Fractions), Horizon: horizon}
	StartAll(engine, sources, func(p *core.Packet) {
		tr.Arrivals = append(tr.Arrivals, Arrival{Class: p.Class, Size: p.Size, Time: p.Arrival})
	})
	engine.RunUntil(horizon)
	return tr, nil
}

// Rates returns the per-class measured packet arrival rates
// (packets per time unit).
func (t *Trace) Rates() []float64 {
	rates := make([]float64, t.Classes)
	for _, a := range t.Arrivals {
		rates[a.Class]++
	}
	for i := range rates {
		rates[i] /= t.Horizon
	}
	return rates
}

// Filter returns the sub-trace containing only the classes for which
// keep[class] is true.
func (t *Trace) Filter(keep []bool) *Trace {
	out := &Trace{Classes: t.Classes, Horizon: t.Horizon}
	for _, a := range t.Arrivals {
		if keep[a.Class] {
			out.Arrivals = append(out.Arrivals, a)
		}
	}
	return out
}

// Replay schedules the trace's arrivals on the engine, delivering each as
// a fresh packet to sink.
func (t *Trace) Replay(engine *sim.Engine, sink Sink) {
	var id uint64
	for _, a := range t.Arrivals {
		a := a
		engine.At(a.Time, func() {
			id++
			sink(&core.Packet{
				ID:      id,
				Class:   a.Class,
				Size:    a.Size,
				Arrival: a.Time,
				Birth:   a.Time,
			})
		})
	}
}
