// Package traffic generates the synthetic workloads of the paper's
// evaluation: Pareto-interarrival packet sources (α = 1.9, bursty,
// infinite-variance), the trimodal packet-size distribution (40 B 40%,
// 550 B 50%, 1500 B 10%), per-class load splitting, and the paced user
// flows of Study B. All randomness is drawn from explicitly seeded PCG
// generators so every experiment is exactly reproducible.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Interarrival is a distribution of interarrival times.
type Interarrival interface {
	// Next draws an interarrival time (strictly positive).
	Next(rng *rand.Rand) float64
	// Mean returns the distribution mean.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Pareto is the heavy-tailed Pareto distribution with shape Alpha and scale
// Xm: P(X > x) = (Xm/x)^Alpha for x >= Xm. The paper uses Alpha = 1.9, for
// which the mean is finite (Alpha·Xm/(Alpha−1)) but the variance is
// infinite — the source of the burstiness over many timescales that makes
// short-timescale differentiation hard.
type Pareto struct {
	Alpha float64
	Xm    float64
}

// NewPareto returns a Pareto distribution with the given shape and the
// scale chosen so the mean equals mean.
func NewPareto(alpha, mean float64) Pareto {
	if !(alpha > 1) {
		panic(fmt.Sprintf("traffic: Pareto alpha %g must be > 1 for a finite mean", alpha))
	}
	if !(mean > 0) {
		panic("traffic: Pareto mean must be > 0")
	}
	return Pareto{Alpha: alpha, Xm: mean * (alpha - 1) / alpha}
}

// Next implements Interarrival by inversion: Xm·U^(−1/α).
func (p Pareto) Next(rng *rand.Rand) float64 {
	// Float64 returns [0,1); complementing avoids a zero (which would
	// yield +Inf).
	u := 1 - rng.Float64()
	return p.Xm * math.Pow(u, -1/p.Alpha)
}

// Mean implements Interarrival.
func (p Pareto) Mean() float64 { return p.Alpha * p.Xm / (p.Alpha - 1) }

func (p Pareto) String() string {
	return fmt.Sprintf("Pareto(alpha=%.3g, xm=%.4g)", p.Alpha, p.Xm)
}

// Exponential models Poisson arrivals with the given mean interarrival.
// The paper's analysis references (Kleinrock, Coffman–Mitrani) assume
// Poisson arrivals; it is provided for validation against those results.
type Exponential struct {
	MeanVal float64
}

// NewExponential returns an exponential distribution with the given mean.
func NewExponential(mean float64) Exponential {
	if !(mean > 0) {
		panic("traffic: Exponential mean must be > 0")
	}
	return Exponential{MeanVal: mean}
}

// Next implements Interarrival.
func (e Exponential) Next(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.MeanVal
}

// Mean implements Interarrival.
func (e Exponential) Mean() float64 { return e.MeanVal }

func (e Exponential) String() string { return fmt.Sprintf("Exp(mean=%.4g)", e.MeanVal) }

// Constant is a deterministic interarrival (periodic source).
type Constant struct {
	Value float64
}

// NewConstant returns a constant interarrival of the given period.
func NewConstant(period float64) Constant {
	if !(period > 0) {
		panic("traffic: Constant period must be > 0")
	}
	return Constant{Value: period}
}

// Next implements Interarrival.
func (c Constant) Next(rng *rand.Rand) float64 { return c.Value }

// Mean implements Interarrival.
func (c Constant) Mean() float64 { return c.Value }

func (c Constant) String() string { return fmt.Sprintf("Const(%.4g)", c.Value) }

// SizeDist is a distribution of packet sizes in bytes.
type SizeDist interface {
	// Next draws a packet size.
	Next(rng *rand.Rand) int64
	// Mean returns the mean size in bytes.
	Mean() float64
	// String describes the distribution.
	String() string
}

// Discrete is a finite discrete size distribution.
type Discrete struct {
	sizes []int64
	cum   []float64 // cumulative probabilities, last = 1
	mean  float64
}

// NewDiscrete builds a discrete distribution from sizes and matching
// probabilities (must sum to 1 within 1e-9).
func NewDiscrete(sizes []int64, probs []float64) Discrete {
	if len(sizes) == 0 || len(sizes) != len(probs) {
		panic("traffic: NewDiscrete requires matching nonempty sizes/probs")
	}
	var sum, mean float64
	cum := make([]float64, len(probs))
	for i, p := range probs {
		if p < 0 {
			panic("traffic: negative probability")
		}
		if sizes[i] <= 0 {
			panic("traffic: nonpositive packet size")
		}
		sum += p
		cum[i] = sum
		mean += p * float64(sizes[i])
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("traffic: probabilities sum to %g, want 1", sum))
	}
	cum[len(cum)-1] = 1 // guard against rounding
	return Discrete{sizes: append([]int64(nil), sizes...), cum: cum, mean: mean}
}

// PaperSizes returns the packet length distribution of §5: 40% 40-byte,
// 50% 550-byte, 10% 1500-byte packets (mean 441 bytes).
func PaperSizes() Discrete {
	return NewDiscrete([]int64{40, 550, 1500}, []float64{0.40, 0.50, 0.10})
}

// Next implements SizeDist.
func (d Discrete) Next(rng *rand.Rand) int64 {
	u := rng.Float64()
	for i, c := range d.cum {
		if u < c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// Mean implements SizeDist.
func (d Discrete) Mean() float64 { return d.mean }

func (d Discrete) String() string { return fmt.Sprintf("Discrete(mean=%.4g B)", d.mean) }

// FixedSize is a constant packet size.
type FixedSize struct {
	Bytes int64
}

// NewFixedSize returns a constant size distribution.
func NewFixedSize(bytes int64) FixedSize {
	if bytes <= 0 {
		panic("traffic: FixedSize must be > 0")
	}
	return FixedSize{Bytes: bytes}
}

// Next implements SizeDist.
func (f FixedSize) Next(rng *rand.Rand) int64 { return f.Bytes }

// Mean implements SizeDist.
func (f FixedSize) Mean() float64 { return float64(f.Bytes) }

func (f FixedSize) String() string { return fmt.Sprintf("Fixed(%d B)", f.Bytes) }

// NewRNG returns a deterministic PCG generator for the given seed pair.
// Every experiment derives its generators from recorded seeds through this
// helper so runs are reproducible.
func NewRNG(seed1, seed2 uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed1, seed2))
}
