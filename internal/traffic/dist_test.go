package traffic

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestParetoMedianAndTail(t *testing.T) {
	// The Pareto median is xm·2^(1/alpha) — unlike the mean it is robust
	// to the infinite variance at alpha=1.9, so test it tightly.
	p := NewPareto(1.9, 11.2)
	rng := NewRNG(1, 2)
	const n = 200000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = p.Next(rng)
		if samples[i] < p.Xm {
			t.Fatalf("sample %g below scale %g", samples[i], p.Xm)
		}
	}
	sort.Float64s(samples)
	median := samples[n/2]
	want := p.Xm * math.Pow(2, 1/p.Alpha)
	if math.Abs(median-want)/want > 0.02 {
		t.Fatalf("median = %g, want %g", median, want)
	}
	// Tail check: P(X > 4·xm) = 4^-alpha.
	thresh := 4 * p.Xm
	count := sort.SearchFloat64s(samples, thresh)
	tailFrac := float64(n-count) / n
	wantTail := math.Pow(4, -p.Alpha)
	if math.Abs(tailFrac-wantTail)/wantTail > 0.10 {
		t.Fatalf("tail fraction = %g, want %g", tailFrac, wantTail)
	}
}

func TestParetoMean(t *testing.T) {
	// With alpha=3 the variance is finite and the sample mean converges
	// fast; verify Mean() and the sampler agree.
	p := NewPareto(3, 10)
	if math.Abs(p.Mean()-10) > 1e-12 {
		t.Fatalf("Mean = %g, want 10", p.Mean())
	}
	rng := NewRNG(7, 7)
	var sum float64
	const n = 500000
	for i := 0; i < n; i++ {
		sum += p.Next(rng)
	}
	got := sum / n
	if math.Abs(got-10)/10 > 0.02 {
		t.Fatalf("sample mean = %g, want 10", got)
	}
}

func TestParetoValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewPareto(1, 5) },
		func() { NewPareto(0.5, 5) },
		func() { NewPareto(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestExponentialMean(t *testing.T) {
	e := NewExponential(5)
	if e.Mean() != 5 {
		t.Fatal("Mean wrong")
	}
	rng := NewRNG(3, 3)
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += e.Next(rng)
	}
	if got := sum / n; math.Abs(got-5)/5 > 0.02 {
		t.Fatalf("sample mean = %g, want 5", got)
	}
}

func TestConstant(t *testing.T) {
	c := NewConstant(2.5)
	rng := NewRNG(1, 1)
	for i := 0; i < 10; i++ {
		if c.Next(rng) != 2.5 {
			t.Fatal("Constant not constant")
		}
	}
	if c.Mean() != 2.5 {
		t.Fatal("Mean wrong")
	}
}

func TestPaperSizes(t *testing.T) {
	d := PaperSizes()
	if math.Abs(d.Mean()-441) > 1e-9 {
		t.Fatalf("paper mean size = %g, want 441", d.Mean())
	}
	rng := NewRNG(11, 13)
	counts := map[int64]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[d.Next(rng)]++
	}
	for _, c := range []struct {
		size int64
		frac float64
	}{{40, 0.40}, {550, 0.50}, {1500, 0.10}} {
		got := float64(counts[c.size]) / n
		if math.Abs(got-c.frac) > 0.01 {
			t.Fatalf("size %d fraction = %g, want %g", c.size, got, c.frac)
		}
	}
}

func TestDiscreteValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDiscrete(nil, nil) },
		func() { NewDiscrete([]int64{40}, []float64{0.5, 0.5}) },
		func() { NewDiscrete([]int64{40, 550}, []float64{0.5, 0.6}) },
		func() { NewDiscrete([]int64{40, 550}, []float64{-0.1, 1.1}) },
		func() { NewDiscrete([]int64{0}, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFixedSize(t *testing.T) {
	f := NewFixedSize(500)
	rng := NewRNG(1, 1)
	if f.Next(rng) != 500 || f.Mean() != 500 {
		t.Fatal("FixedSize wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("FixedSize(0) did not panic")
		}
	}()
	NewFixedSize(0)
}

func TestStringers(t *testing.T) {
	for _, s := range []interface{ String() string }{
		NewPareto(1.9, 11.2),
		NewExponential(1),
		NewConstant(1),
		PaperSizes(),
		NewFixedSize(500),
	} {
		if s.String() == "" {
			t.Fatalf("%T has empty String()", s)
		}
	}
}

// Property: interarrival samples are always strictly positive and finite.
func TestInterarrivalsPositiveProperty(t *testing.T) {
	f := func(seed uint64, meanScaled uint16) bool {
		mean := 0.01 + float64(meanScaled%1000)/10
		rng := NewRNG(seed, 1)
		dists := []Interarrival{
			NewPareto(1.9, mean),
			NewExponential(mean),
			NewConstant(mean),
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				v := d.Next(rng)
				if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42, 17), NewRNG(42, 17)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(42, 18)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(42, 17).Float64() != c.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different-seed RNGs identical")
	}
}
