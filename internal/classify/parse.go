package classify

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strconv"
	"strings"
)

// ParseConfig reads the line-oriented traffic-class grammar:
//
//	# proportional-DiffServ edge classes, lowest class first
//	class bulk
//	  ddp 8            # relative delay target (non-increasing down the file)
//	  default          # traffic matching no filter lands here
//	  maxq 2048        # optional per-class queue bound, packets
//	  match src 10.0.0.0/8 proto udp
//	class interactive
//	  ddp 1
//	  match dscp 46
//	  match dst-port 5000-5999
//
// One `class <name>` opens a class; the indented (indentation is
// cosmetic) `ddp`, `default`, `maxq` and `match` lines apply to the most
// recent class. Each `match` line is one Filter: its space-separated
// element/argument tokens are ANDed, and a class's match lines are ORed.
// Elements:
//
//	src <ip|cidr>          dst <ip|cidr>
//	src-port <p|lo-hi>     dst-port <p|lo-hi>
//	proto <udp|tcp|0-255>  dscp <0-255>
//	flow <src-ip:port> <dst-ip:port> <proto>
//
// Blank lines and `#` comments (full-line or trailing) are ignored, a
// UTF-8 BOM is stripped, and CRLF line endings are accepted. Declaration
// order defines class indices. The returned config is validated.
func ParseConfig(r io.Reader) (*Config, error) {
	sc := bufio.NewScanner(r)
	cfg := &Config{}
	var cur *TrafficClass
	ddpSet := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if lineNo == 1 {
			line = strings.TrimPrefix(line, "\uFEFF")
		}
		line = strings.TrimSuffix(line, "\r")
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("classify: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "class":
			if len(fields) != 2 {
				return nil, fail("want `class <name>`, got %d tokens", len(fields))
			}
			if cur != nil && !ddpSet {
				return nil, fail("class %q declared before class %q got a ddp", fields[1], cur.Name)
			}
			cfg.Classes = append(cfg.Classes, TrafficClass{Name: fields[1]})
			cur = &cfg.Classes[len(cfg.Classes)-1]
			ddpSet = false
		case "ddp":
			if cur == nil {
				return nil, fail("ddp before any class declaration")
			}
			if len(fields) != 2 {
				return nil, fail("want `ddp <value>`")
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fail("bad ddp %q: %v", fields[1], err)
			}
			if ddpSet {
				return nil, fail("class %q: duplicate ddp", cur.Name)
			}
			cur.DDP = v
			ddpSet = true
		case "default":
			if cur == nil {
				return nil, fail("default before any class declaration")
			}
			if len(fields) != 1 {
				return nil, fail("`default` takes no arguments")
			}
			if cur.Default {
				return nil, fail("class %q: duplicate default", cur.Name)
			}
			cur.Default = true
		case "maxq":
			if cur == nil {
				return nil, fail("maxq before any class declaration")
			}
			if len(fields) != 2 {
				return nil, fail("want `maxq <packets>`")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fail("bad maxq %q: want a positive packet count", fields[1])
			}
			cur.MaxQueue = n
		case "match":
			if cur == nil {
				return nil, fail("match before any class declaration")
			}
			f, err := parseFilter(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			cur.Filters = append(cur.Filters, f)
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("classify: read config: %w", err)
	}
	if cur != nil && !ddpSet {
		return nil, fmt.Errorf("classify: class %q has no ddp", cur.Name)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("classify: config declares no classes")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// LoadConfig parses the config file at path.
func LoadConfig(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("classify: %w", err)
	}
	defer f.Close()
	cfg, err := ParseConfig(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// parseFilter turns one match line's tokens into a Filter.
func parseFilter(tokens []string) (Filter, error) {
	if len(tokens) == 0 {
		return Filter{}, fmt.Errorf("match line has no elements")
	}
	var f Filter
	for i := 0; i < len(tokens); {
		switch tokens[i] {
		case "src", "dst":
			if i+1 >= len(tokens) {
				return Filter{}, fmt.Errorf("%s needs an address or prefix", tokens[i])
			}
			p, err := parsePrefix(tokens[i+1])
			if err != nil {
				return Filter{}, fmt.Errorf("%s %q: %v", tokens[i], tokens[i+1], err)
			}
			if tokens[i] == "src" {
				f.Elements = append(f.Elements, SrcAddr{Prefix: p})
			} else {
				f.Elements = append(f.Elements, DstAddr{Prefix: p})
			}
			i += 2
		case "src-port", "dst-port":
			if i+1 >= len(tokens) {
				return Filter{}, fmt.Errorf("%s needs a port or lo-hi range", tokens[i])
			}
			lo, hi, err := parsePortRange(tokens[i+1])
			if err != nil {
				return Filter{}, fmt.Errorf("%s %q: %v", tokens[i], tokens[i+1], err)
			}
			if tokens[i] == "src-port" {
				f.Elements = append(f.Elements, SrcPort{Lo: lo, Hi: hi})
			} else {
				f.Elements = append(f.Elements, DstPort{Lo: lo, Hi: hi})
			}
			i += 2
		case "proto":
			if i+1 >= len(tokens) {
				return Filter{}, fmt.Errorf("proto needs udp, tcp or a number")
			}
			v, err := parseProto(tokens[i+1])
			if err != nil {
				return Filter{}, err
			}
			f.Elements = append(f.Elements, Proto{Value: v})
			i += 2
		case "dscp":
			if i+1 >= len(tokens) {
				return Filter{}, fmt.Errorf("dscp needs a byte value")
			}
			v, err := strconv.ParseUint(tokens[i+1], 10, 8)
			if err != nil {
				return Filter{}, fmt.Errorf("dscp %q: want 0-255", tokens[i+1])
			}
			f.Elements = append(f.Elements, DSCP{Value: uint8(v)})
			i += 2
		case "flow":
			if i+3 >= len(tokens) {
				return Filter{}, fmt.Errorf("flow needs `<src-ip:port> <dst-ip:port> <proto>`")
			}
			src, err := netip.ParseAddrPort(tokens[i+1])
			if err != nil {
				return Filter{}, fmt.Errorf("flow src %q: %v", tokens[i+1], err)
			}
			dst, err := netip.ParseAddrPort(tokens[i+2])
			if err != nil {
				return Filter{}, fmt.Errorf("flow dst %q: %v", tokens[i+2], err)
			}
			proto, err := parseProto(tokens[i+3])
			if err != nil {
				return Filter{}, err
			}
			f.Elements = append(f.Elements, Flow{Key: FlowKey{
				Src: src.Addr().Unmap(), Dst: dst.Addr().Unmap(),
				SrcPort: src.Port(), DstPort: dst.Port(), Proto: proto,
			}})
			i += 4
		default:
			return Filter{}, fmt.Errorf("unknown match element %q", tokens[i])
		}
	}
	return f, nil
}

// parsePrefix accepts a bare address (host prefix) or CIDR notation.
func parsePrefix(s string) (netip.Prefix, error) {
	if strings.ContainsRune(s, '/') {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return netip.Prefix{}, err
		}
		return netip.PrefixFrom(p.Addr().Unmap(), p.Bits()), nil
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, err
	}
	a = a.Unmap()
	return netip.PrefixFrom(a, a.BitLen()), nil
}

func parsePortRange(s string) (lo, hi uint16, err error) {
	loS, hiS, ranged := strings.Cut(s, "-")
	l, err := strconv.ParseUint(loS, 10, 16)
	if err != nil {
		return 0, 0, fmt.Errorf("want a port in 0-65535")
	}
	if !ranged {
		return uint16(l), uint16(l), nil
	}
	h, err := strconv.ParseUint(hiS, 10, 16)
	if err != nil || h < l {
		return 0, 0, fmt.Errorf("want lo-hi with lo <= hi in 0-65535")
	}
	return uint16(l), uint16(h), nil
}

func parseProto(s string) (uint8, error) {
	switch s {
	case "udp":
		return ProtoUDP, nil
	case "tcp":
		return ProtoTCP, nil
	}
	v, err := strconv.ParseUint(s, 10, 8)
	if err != nil {
		return 0, fmt.Errorf("proto %q: want udp, tcp or 0-255", s)
	}
	return uint8(v), nil
}
