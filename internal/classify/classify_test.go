package classify

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
)

func mustAddr(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatalf("ParseAddr(%q): %v", s, err)
	}
	return a.Unmap()
}

// key fabricates a distinct UDP flow key from an integer.
func key(i int) FlowKey {
	return FlowKey{
		Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		SrcPort: uint16(1024 + i%60000),
		DstPort: 9000,
		Proto:   ProtoUDP,
	}
}

func TestFilterElements(t *testing.T) {
	k := FlowKey{
		Src:     mustAddr(t, "10.1.2.3"),
		Dst:     mustAddr(t, "203.0.113.7"),
		SrcPort: 4444,
		DstPort: 5555,
		Proto:   ProtoUDP,
	}
	cases := []struct {
		el   FilterElement
		want bool
		str  string
	}{
		{SrcAddr{netip.MustParsePrefix("10.0.0.0/8")}, true, "src 10.0.0.0/8"},
		{SrcAddr{netip.MustParsePrefix("11.0.0.0/8")}, false, "src 11.0.0.0/8"},
		{DstAddr{netip.MustParsePrefix("203.0.113.7/32")}, true, "dst 203.0.113.7/32"},
		{DstAddr{netip.MustParsePrefix("203.0.113.8/32")}, false, "dst 203.0.113.8/32"},
		{SrcPort{4444, 4444}, true, "src-port 4444"},
		{SrcPort{1, 4443}, false, "src-port 1-4443"},
		{DstPort{5000, 5999}, true, "dst-port 5000-5999"},
		{DstPort{6000, 7000}, false, "dst-port 6000-7000"},
		{DSCP{46}, false, "dscp 46"}, // dscp argument below is 0
		{DSCP{0}, true, "dscp 0"},
		{Proto{ProtoUDP}, true, "proto udp"},
		{Proto{ProtoTCP}, false, "proto tcp"},
		{Flow{k}, true, "flow 10.1.2.3:4444 203.0.113.7:5555 udp"},
		{Flow{FlowKey{Src: k.Src, Dst: k.Dst, SrcPort: 1, DstPort: 5555, Proto: ProtoUDP}}, false, "flow 10.1.2.3:1 203.0.113.7:5555 udp"},
	}
	for _, c := range cases {
		if got := c.el.Match(k, 0); got != c.want {
			t.Errorf("%s: Match = %v, want %v", c.str, got, c.want)
		}
		if got := c.el.String(); got != c.str {
			t.Errorf("String = %q, want %q", got, c.str)
		}
	}
}

func TestFilterConjunction(t *testing.T) {
	k := key(1)
	f := Filter{Elements: []FilterElement{
		SrcAddr{netip.MustParsePrefix("10.0.0.0/8")},
		Proto{ProtoUDP},
	}}
	if !f.Match(k, 0) {
		t.Fatalf("AND of two matching elements should match")
	}
	f.Elements = append(f.Elements, DstPort{1, 2})
	if f.Match(k, 0) {
		t.Fatalf("one failing element must fail the filter")
	}
	if !(Filter{}).Match(k, 0) {
		t.Fatalf("empty filter must match everything")
	}
}

func TestClassifierDefaultAndMiss(t *testing.T) {
	cfg := &Config{Classes: []TrafficClass{
		{Name: "only", DDP: 1, Filters: []Filter{{Elements: []FilterElement{DstPort{1, 2}}}}},
	}}
	c, err := New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cls, ok := c.Classify(key(1), 0, 0); ok {
		t.Fatalf("no filter matches and no default: want ok=false, got class %d", cls)
	}

	cfg.Classes = append(cfg.Classes, TrafficClass{Name: "rest", DDP: 1, Default: true})
	c, err = New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if cls, ok := c.Classify(key(1), 0, 0); !ok || cls != 1 {
		t.Fatalf("want default class 1, got %d, %v", cls, ok)
	}
}

// TestClassifyDeterministic: the same flow sequence against two fresh
// classifiers built from the same config yields identical classes, and
// repeated classification of the same flow never changes its answer.
func TestClassifyDeterministic(t *testing.T) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := key(i)
		dscp := uint8(i % 64)
		ca, oka := a.Classify(k, dscp, int64(i))
		cb, okb := b.Classify(k, dscp, int64(i))
		if ca != cb || oka != okb {
			t.Fatalf("flow %v: classifier A says (%d,%v), B says (%d,%v)", k, ca, oka, cb, okb)
		}
		// Memoized re-ask must agree with the first answer.
		ca2, oka2 := a.Classify(k, dscp, int64(i))
		if ca2 != ca || oka2 != oka {
			t.Fatalf("flow %v: answer changed on re-ask: (%d,%v) then (%d,%v)", k, ca, oka, ca2, oka2)
		}
	}
}

// TestNonOverlappingOrderIndependent: when filters don't overlap, the
// class (by name) each packet lands in is independent of declaration
// order.
func TestNonOverlappingOrderIndependent(t *testing.T) {
	mk := func(order string) *Classifier {
		lines := map[string]string{
			"a": "class alpha\n ddp 1\n match dst-port 100-199\n",
			"b": "class beta\n ddp 1\n match dst-port 200-299\n",
			"d": "class dflt\n ddp 1\n default\n",
		}
		var sb strings.Builder
		for _, ch := range order {
			sb.WriteString(lines[string(ch)])
		}
		cfg, err := ParseConfig(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("order %s: %v", order, err)
		}
		c, err := New(cfg, FlowTableConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	name := func(c *Classifier, port uint16) string {
		k := key(int(port))
		k.DstPort = port
		cls, ok := c.Classify(k, 0, 0)
		if !ok {
			t.Fatalf("port %d: unclassified", port)
		}
		return c.classes[cls].Name
	}
	orders := []string{"abd", "bad", "dab", "bda"}
	for _, port := range []uint16{150, 250, 9999} {
		want := name(mk(orders[0]), port)
		for _, o := range orders[1:] {
			if got := name(mk(o), port); got != want {
				t.Errorf("port %d: order %q lands in %q, order %q lands in %q", port, orders[0], want, o, got)
			}
		}
	}
}

// TestOverlappingFirstMatchWins: when two classes' filters overlap, the
// earlier-declared class wins, deterministically.
func TestOverlappingFirstMatchWins(t *testing.T) {
	conf := func(firstPorts, secondPorts string) string {
		return fmt.Sprintf("class first\n ddp 1\n match dst-port %s\nclass second\n ddp 1\n match dst-port %s\n", firstPorts, secondPorts)
	}
	k := key(0)
	k.DstPort = 100
	for _, ports := range [][2]string{{"100", "100-200"}, {"100-200", "100"}} {
		cfg, err := ParseConfig(strings.NewReader(conf(ports[0], ports[1])))
		if err != nil {
			t.Fatal(err)
		}
		c, _ := New(cfg, FlowTableConfig{})
		if cls, ok := c.Classify(k, 0, 0); !ok || cls != 0 {
			t.Fatalf("filters %v: want first-declared class 0, got %d, %v", ports, cls, ok)
		}
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := func() *Config {
		return &Config{Classes: []TrafficClass{
			{Name: "a", DDP: 2, Default: true},
			{Name: "b", DDP: 1, Filters: []Filter{{Elements: []FilterElement{Proto{ProtoUDP}}}}},
		}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base config should validate: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"empty", func(c *Config) { c.Classes = nil }},
		{"unnamed", func(c *Config) { c.Classes[0].Name = "" }},
		{"duplicate name", func(c *Config) { c.Classes[1].Name = "a" }},
		{"zero ddp", func(c *Config) { c.Classes[1].DDP = 0 }},
		{"negative ddp", func(c *Config) { c.Classes[1].DDP = -1 }},
		{"increasing ddp", func(c *Config) { c.Classes[1].DDP = 3 }},
		{"negative maxq", func(c *Config) { c.Classes[0].MaxQueue = -1 }},
		{"two defaults", func(c *Config) { c.Classes[1].Default = true }},
		{"unreachable class", func(c *Config) { c.Classes[1].Filters = nil }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mutate(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want validation error, got nil", tc.name)
		}
	}
	big := &Config{}
	for i := 0; i <= MaxClasses; i++ {
		big.Classes = append(big.Classes, TrafficClass{Name: fmt.Sprintf("c%d", i), DDP: 1, Filters: []Filter{{}}})
	}
	if err := big.Validate(); err == nil {
		t.Errorf("%d classes: want validation error, got nil", len(big.Classes))
	}
}

func TestConfigDerivations(t *testing.T) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"scavenger", "bulk", "interactive", "control"}
	if got := cfg.Names(); fmt.Sprint(got) != fmt.Sprint(wantNames) {
		t.Errorf("Names = %v, want %v", got, wantNames)
	}
	// DDPs 8,4,2,1 → SDPs maxDDP/DDP = 1,2,4,8: non-decreasing, SDP[0]=1.
	wantSDPs := []float64{1, 2, 4, 8}
	if got := cfg.SDPs(); fmt.Sprint(got) != fmt.Sprint(wantSDPs) {
		t.Errorf("SDPs = %v, want %v", got, wantSDPs)
	}
	if got := cfg.QueueBounds(); fmt.Sprint(got) != fmt.Sprint([]int{512, 2048, 0, 0}) {
		t.Errorf("QueueBounds = %v", got)
	}
	if got := cfg.DefaultClass(); got != 0 {
		t.Errorf("DefaultClass = %d, want 0", got)
	}

	noBounds := &Config{Classes: []TrafficClass{{Name: "x", DDP: 1, Default: true}}}
	if got := noBounds.QueueBounds(); got != nil {
		t.Errorf("QueueBounds with no maxq = %v, want nil", got)
	}
}

// TestClassifyHitPathAllocs: the memoized classification path (flow-table
// hit) must not allocate — it runs per datagram on the ingress loop.
func TestClassifyHitPathAllocs(t *testing.T) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	k := key(7)
	if _, ok := c.Classify(k, 0, 1); !ok {
		t.Fatal("seed classification failed")
	}
	if n := testing.AllocsPerRun(200, func() {
		c.Classify(k, 0, 2)
	}); n != 0 {
		t.Fatalf("Classify hit path allocates %v per run, want 0", n)
	}
	// The miss-and-match scan must not allocate either (Insert may grow
	// the table, so pre-warm with the same key set before measuring).
	keys := make([]FlowKey, 64)
	for i := range keys {
		keys[i] = key(1000 + i)
	}
	for i, k := range keys {
		c.Classify(k, 0, int64(i))
	}
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		c.Classify(keys[i%len(keys)], 0, 3)
		i++
	}); n != 0 {
		t.Fatalf("warm Classify allocates %v per run, want 0", n)
	}
}
