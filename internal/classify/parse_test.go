package classify

import (
	"net/netip"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	cfg, err := LoadConfig("testdata/basic.conf")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 2 {
		t.Fatalf("want 2 classes, got %d", len(cfg.Classes))
	}
	bulk, inter := cfg.Classes[0], cfg.Classes[1]
	if bulk.Name != "bulk" || bulk.DDP != 4 || !bulk.Default || len(bulk.Filters) != 0 {
		t.Errorf("bulk parsed as %+v", bulk)
	}
	if inter.Name != "interactive" || inter.DDP != 1 || inter.Default || len(inter.Filters) != 1 {
		t.Errorf("interactive parsed as %+v", inter)
	}
	if got := inter.Filters[0].String(); got != "dst-port 5000-5999" {
		t.Errorf("filter = %q", got)
	}
}

func TestParseFullCorpus(t *testing.T) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 4 {
		t.Fatalf("want 4 classes, got %d", len(cfg.Classes))
	}
	// Filter counts per class, in declaration order.
	for i, want := range []int{1, 4, 2, 2} {
		if got := len(cfg.Classes[i].Filters); got != want {
			t.Errorf("class %q: %d filters, want %d", cfg.Classes[i].Name, got, want)
		}
	}
	if cfg.Classes[0].MaxQueue != 512 || cfg.Classes[1].MaxQueue != 2048 {
		t.Errorf("maxq: got %d, %d", cfg.Classes[0].MaxQueue, cfg.Classes[1].MaxQueue)
	}
	// Spot-check element round-trips through String.
	wantFilters := map[string]bool{
		"src 192.0.2.0/24 proto udp":                   true,
		"dst 203.0.113.7/32":                           true,
		"proto tcp dst-port 80":                        true,
		"src 2001:db8::/32 src-port 1024-65535":        true,
		"dscp 46":                                      true,
		"flow 198.51.100.1:9000 198.51.100.2:9001 udp": true,
		"src-port 179 proto tcp":                       true, // `proto 6` renders as tcp
	}
	for _, tc := range cfg.Classes {
		for _, f := range tc.Filters {
			delete(wantFilters, f.String())
		}
	}
	for missing := range wantFilters {
		t.Errorf("filter %q not found in parsed config", missing)
	}
	// Classification spot checks against the declared semantics.
	c, err := New(cfg, FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		k    FlowKey
		dscp uint8
		want string
	}{
		{"ef dscp", FlowKey{Src: mustAddr(t, "172.16.5.5"), Dst: mustAddr(t, "8.8.8.8"), SrcPort: 1, DstPort: 1, Proto: ProtoUDP}, 46, "interactive"},
		{"bulk v4 prefix", FlowKey{Src: mustAddr(t, "10.9.9.9"), Dst: mustAddr(t, "8.8.8.8"), SrcPort: 1, DstPort: 1, Proto: ProtoTCP}, 0, "bulk"},
		{"bulk v6 prefix", FlowKey{Src: mustAddr(t, "2001:db8::1"), Dst: mustAddr(t, "2001:db8::2"), SrcPort: 2000, DstPort: 1, Proto: ProtoUDP}, 0, "bulk"},
		{"exact flow", FlowKey{Src: mustAddr(t, "198.51.100.1"), Dst: mustAddr(t, "198.51.100.2"), SrcPort: 9000, DstPort: 9001, Proto: ProtoUDP}, 0, "control"},
		{"bgp", FlowKey{Src: mustAddr(t, "172.16.0.1"), Dst: mustAddr(t, "172.16.0.2"), SrcPort: 179, DstPort: 40000, Proto: ProtoTCP}, 0, "control"},
		{"scavenger udp", FlowKey{Src: mustAddr(t, "192.0.2.55"), Dst: mustAddr(t, "8.8.8.8"), SrcPort: 1, DstPort: 1, Proto: ProtoUDP}, 0, "scavenger"},
		{"default", FlowKey{Src: mustAddr(t, "172.16.0.1"), Dst: mustAddr(t, "8.8.8.8"), SrcPort: 1, DstPort: 1, Proto: ProtoUDP}, 0, "scavenger"},
	}
	for _, ck := range checks {
		cls, ok := c.Classify(ck.k, ck.dscp, 0)
		if !ok {
			t.Errorf("%s: unclassified", ck.name)
			continue
		}
		if got := cfg.Classes[cls].Name; got != ck.want {
			t.Errorf("%s: landed in %q, want %q", ck.name, got, ck.want)
		}
	}
}

// TestParseBOMAndCRLF: a UTF-8 BOM and Windows line endings must not
// confuse the parser.
func TestParseBOMAndCRLF(t *testing.T) {
	cfg, err := LoadConfig(filepath.Join("testdata", "bom_crlf.conf"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 2 || cfg.Classes[0].Name != "gold" || cfg.Classes[1].Name != "silver" {
		t.Fatalf("parsed %+v", cfg.Classes)
	}
	if !cfg.Classes[0].Default || cfg.Classes[0].DDP != 2 {
		t.Errorf("gold parsed as %+v", cfg.Classes[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, conf, wantSub string
	}{
		{"unknown directive", "class a\nddp 1\ndefault\nfrobnicate 3\n", "unknown directive"},
		{"ddp before class", "ddp 1\n", "before any class"},
		{"match before class", "match proto udp\n", "before any class"},
		{"default before class", "default\n", "before any class"},
		{"maxq before class", "maxq 10\n", "before any class"},
		{"class token count", "class a b\n", "class <name>"},
		{"duplicate ddp", "class a\nddp 1\nddp 2\ndefault\n", "duplicate ddp"},
		{"missing ddp last", "class a\ndefault\n", "has no ddp"},
		{"missing ddp mid", "class a\ndefault\nclass b\nddp 1\nmatch proto udp\n", "got a ddp"},
		{"bad ddp", "class a\nddp fast\ndefault\n", "bad ddp"},
		{"inf ddp", "class a\nddp inf\ndefault\n", "positive and finite"},
		{"nan ddp", "class a\nddp nan\ndefault\n", "positive and finite"},
		{"increasing ddp", "class a\nddp 1\ndefault\nclass b\nddp 2\nmatch proto udp\n", "exceeds"},
		{"duplicate default", "class a\nddp 1\ndefault\ndefault\n", "duplicate default"},
		{"default with args", "class a\nddp 1\ndefault yes\n", "takes no arguments"},
		{"two defaults", "class a\nddp 1\ndefault\nclass b\nddp 1\ndefault\n", "at most one"},
		{"duplicate name", "class a\nddp 1\ndefault\nclass a\nddp 1\nmatch proto udp\n", "duplicate class name"},
		{"unreachable", "class a\nddp 1\ndefault\nclass b\nddp 1\n", "never receive traffic"},
		{"bad maxq", "class a\nddp 1\ndefault\nmaxq zero\n", "bad maxq"},
		{"maxq zero", "class a\nddp 1\ndefault\nmaxq 0\n", "positive packet count"},
		{"empty config", "# nothing here\n", "no classes"},
		{"empty match", "class a\nddp 1\nmatch\n", "no elements"},
		{"unknown element", "class a\nddp 1\nmatch color blue\n", "unknown match element"},
		{"bad cidr", "class a\nddp 1\nmatch src 10.0.0.0/99\n", "src"},
		{"src no arg", "class a\nddp 1\nmatch src\n", "needs an address"},
		{"bad port", "class a\nddp 1\nmatch dst-port 70000\n", "port"},
		{"inverted range", "class a\nddp 1\nmatch dst-port 500-100\n", "lo <= hi"},
		{"bad proto", "class a\nddp 1\nmatch proto icmpish\n", "proto"},
		{"flow short", "class a\nddp 1\nmatch flow 1.2.3.4:5 6.7.8.9:10\n", "flow needs"},
		{"flow bad addr", "class a\nddp 1\nmatch flow nope 6.7.8.9:10 udp\n", "flow src"},
		{"too many classes", strings.Repeat("class x\nddp 1\nmatch proto udp\n", 65), "out of range"},
	}
	for _, tc := range cases {
		_, err := ParseConfig(strings.NewReader(tc.conf))
		if err == nil {
			t.Errorf("%s: want error containing %q, got nil", tc.name, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestParseErrorsCarryLineNumbers: parse failures name the offending line.
func TestParseErrorsCarryLineNumbers(t *testing.T) {
	_, err := ParseConfig(strings.NewReader("class a\nddp 1\ndefault\nbogus\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want error naming line 4, got %v", err)
	}
}

// TestParseNormalizesMappedAddrs: 4-mapped-in-6 literals behave like
// their IPv4 equivalents, matching FlowKey's canonical (Unmap) form.
func TestParseNormalizesMappedAddrs(t *testing.T) {
	cfg, err := ParseConfig(strings.NewReader("class a\nddp 1\nmatch src ::ffff:10.0.0.1\n"))
	if err != nil {
		t.Fatal(err)
	}
	el := cfg.Classes[0].Filters[0].Elements[0].(SrcAddr)
	if el.Prefix.Addr() != netip.MustParseAddr("10.0.0.1") {
		t.Fatalf("mapped addr not unmapped: %v", el.Prefix)
	}
	k := FlowKey{Src: mustAddr(t, "10.0.0.1"), Dst: mustAddr(t, "8.8.8.8"), SrcPort: 1, DstPort: 1, Proto: ProtoUDP}
	if !el.Match(k, 0) {
		t.Fatal("v4 key should match unmapped v4-mapped prefix")
	}
}
