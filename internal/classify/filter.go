package classify

import (
	"fmt"
	"net/netip"
	"strings"
)

// FilterElement is one matching condition on a flow identity. Elements
// are pure predicates: Match must be safe for concurrent use and must not
// allocate (it runs on the ingress path for every flow-table miss).
type FilterElement interface {
	// Match reports whether the element admits the flow k with DS byte
	// dscp.
	Match(k FlowKey, dscp uint8) bool
	// String renders the element in the config grammar's token form.
	String() string
}

// Filter is a conjunction of elements: it matches when every element
// matches. An element-less filter matches everything (the identity of
// AND); the config parser never produces one, but programmatic configs
// may use it as an explicit match-all.
type Filter struct {
	Elements []FilterElement
}

// Match reports whether every element admits the flow.
func (f Filter) Match(k FlowKey, dscp uint8) bool {
	for _, e := range f.Elements {
		if !e.Match(k, dscp) {
			return false
		}
	}
	return true
}

// String renders the filter as a "match ..." config line body.
func (f Filter) String() string {
	parts := make([]string, len(f.Elements))
	for i, e := range f.Elements {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// SrcAddr matches flows whose source address is inside Prefix.
type SrcAddr struct{ Prefix netip.Prefix }

// Match implements FilterElement.
func (m SrcAddr) Match(k FlowKey, _ uint8) bool { return m.Prefix.Contains(k.Src) }

// String implements FilterElement.
func (m SrcAddr) String() string { return "src " + m.Prefix.String() }

// DstAddr matches flows whose destination address is inside Prefix.
type DstAddr struct{ Prefix netip.Prefix }

// Match implements FilterElement.
func (m DstAddr) Match(k FlowKey, _ uint8) bool { return m.Prefix.Contains(k.Dst) }

// String implements FilterElement.
func (m DstAddr) String() string { return "dst " + m.Prefix.String() }

// SrcPort matches flows whose source port is in [Lo, Hi] (inclusive; a
// single port is Lo == Hi).
type SrcPort struct{ Lo, Hi uint16 }

// Match implements FilterElement.
func (m SrcPort) Match(k FlowKey, _ uint8) bool { return k.SrcPort >= m.Lo && k.SrcPort <= m.Hi }

// String implements FilterElement.
func (m SrcPort) String() string { return "src-port " + portRange(m.Lo, m.Hi) }

// DstPort matches flows whose destination port is in [Lo, Hi].
type DstPort struct{ Lo, Hi uint16 }

// Match implements FilterElement.
func (m DstPort) Match(k FlowKey, _ uint8) bool { return k.DstPort >= m.Lo && k.DstPort <= m.Hi }

// String implements FilterElement.
func (m DstPort) String() string { return "dst-port " + portRange(m.Lo, m.Hi) }

func portRange(lo, hi uint16) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// DSCP matches flows whose DS byte equals Value. In the forwarder's wire
// format the header class byte doubles as the DS byte, so DSCP filters
// let an edge honor upstream markings without trusting them as indices.
type DSCP struct{ Value uint8 }

// Match implements FilterElement.
func (m DSCP) Match(_ FlowKey, dscp uint8) bool { return dscp == m.Value }

// String implements FilterElement.
func (m DSCP) String() string { return fmt.Sprintf("dscp %d", m.Value) }

// Proto matches flows with the given IP protocol number.
type Proto struct{ Value uint8 }

// Match implements FilterElement.
func (m Proto) Match(k FlowKey, _ uint8) bool { return k.Proto == m.Value }

// String implements FilterElement.
func (m Proto) String() string { return "proto " + protoName(m.Value) }

// Flow matches exactly one flow: the full 5-tuple.
type Flow struct{ Key FlowKey }

// Match implements FilterElement.
func (m Flow) Match(k FlowKey, _ uint8) bool { return k == m.Key }

// String implements FilterElement.
func (m Flow) String() string {
	return fmt.Sprintf("flow %s %s %s",
		netip.AddrPortFrom(m.Key.Src, m.Key.SrcPort),
		netip.AddrPortFrom(m.Key.Dst, m.Key.DstPort),
		protoName(m.Key.Proto))
}
