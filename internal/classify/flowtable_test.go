package classify

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestFlowTableInsertLookup(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{})
	if _, ok := ft.Lookup(key(1), 0); ok {
		t.Fatal("lookup in empty table must miss")
	}
	ft.Insert(key(1), 3, 10)
	if cls, ok := ft.Lookup(key(1), 11); !ok || cls != 3 {
		t.Fatalf("got (%d,%v), want (3,true)", cls, ok)
	}
	// In-place update.
	ft.Insert(key(1), 5, 12)
	if cls, _ := ft.Lookup(key(1), 13); cls != 5 {
		t.Fatalf("update: got class %d, want 5", cls)
	}
	if ft.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ft.Len())
	}
	st := ft.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Inserts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(ft.String(), "resident=1") {
		t.Errorf("String = %q", ft.String())
	}
}

func TestFlowTableTTLEviction(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{TTL: 100})
	ft.Insert(key(1), 2, 0)
	// Within TTL: hit, and the hit refreshes the idle timer.
	if _, ok := ft.Lookup(key(1), 100); !ok {
		t.Fatal("entry at exactly TTL age must still be live")
	}
	if _, ok := ft.Lookup(key(1), 200); !ok {
		t.Fatal("refreshed entry must still be live")
	}
	// Idle past TTL: lazily evicted, reported as a miss.
	if _, ok := ft.Lookup(key(1), 301); ok {
		t.Fatal("stale entry must be evicted on lookup")
	}
	if ft.Len() != 0 {
		t.Fatalf("Len = %d after lazy eviction, want 0", ft.Len())
	}
	if ev := ft.Stats().Evictions; ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
}

func TestFlowTableSweep(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{TTL: 100, Shards: 4})
	for i := 0; i < 200; i++ {
		ft.Insert(key(i), i%4, int64(i))
	}
	// At now=250, entries touched at <150 (keys 0..149) are stale.
	ft.Sweep(250)
	for i := 0; i < 200; i++ {
		_, ok := ft.Lookup(key(i), 250)
		if want := i >= 150; ok != want {
			t.Fatalf("key %d: live=%v, want %v", i, ok, want)
		}
	}
	if got := ft.Len(); got != 50 {
		t.Fatalf("Len = %d after sweep+lookups, want 50", got)
	}
	// TTL=0 tables never expire and Sweep is a no-op.
	ft0 := NewFlowTable(FlowTableConfig{})
	ft0.Insert(key(1), 1, 0)
	ft0.Sweep(1 << 40)
	if _, ok := ft0.Lookup(key(1), 1<<40); !ok {
		t.Fatal("TTL=0 entry must never expire")
	}
}

// TestFlowTableEvictionRefillIdentity: evicting a flow and re-inserting
// it must yield exactly the answers the table gave before — the
// ISSUE's eviction/refill identity property, which the classifier relies
// on for stable classification across idle periods.
func TestFlowTableEvictionRefillIdentity(t *testing.T) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg, FlowTableConfig{TTL: 100, Shards: 2, InitialFlows: 8})
	if err != nil {
		t.Fatal(err)
	}
	const flows = 300
	before := make([]int, flows)
	for i := 0; i < flows; i++ {
		k := key(i)
		cls, ok := c.Classify(k, uint8(i%64), 0)
		if !ok {
			t.Fatalf("flow %d unclassified", i)
		}
		before[i] = cls
	}
	// Expire everything, then force eviction.
	c.Table().Sweep(1000)
	// Refill: answers must be identical.
	for i := 0; i < flows; i++ {
		cls, ok := c.Classify(key(i), uint8(i%64), 2000)
		if !ok || cls != before[i] {
			t.Fatalf("flow %d: class %d (%v) after refill, was %d", i, cls, ok, before[i])
		}
	}
}

// TestFlowTableGrowth: tables start small and grow without losing or
// corrupting entries.
func TestFlowTableGrowth(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{Shards: 2, InitialFlows: 8, MaxFlows: 1 << 16})
	const n = 5000
	for i := 0; i < n; i++ {
		ft.Insert(key(i), i%7, int64(i))
	}
	if ft.Len() != n {
		t.Fatalf("Len = %d, want %d", ft.Len(), n)
	}
	for i := 0; i < n; i++ {
		cls, ok := ft.Lookup(key(i), n)
		if !ok || cls != i%7 {
			t.Fatalf("key %d: got (%d,%v), want (%d,true)", i, cls, ok, i%7)
		}
	}
}

// TestFlowTableCapEviction: at MaxFlows the table stays bounded by
// evicting the least-recently-touched entry near the insertion point,
// and the newest flow is always admitted.
func TestFlowTableCapEviction(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{Shards: 1, MaxFlows: 64})
	for i := 0; i < 1000; i++ {
		ft.Insert(key(i), i%3, int64(i))
		if cls, ok := ft.Lookup(key(i), int64(i)); !ok || cls != i%3 {
			t.Fatalf("key %d not admitted: (%d,%v)", i, cls, ok)
		}
		if ft.Len() > 64 {
			t.Fatalf("resident %d exceeds MaxFlows 64", ft.Len())
		}
	}
	if ev := ft.Stats().Evictions; ev == 0 {
		t.Fatal("cap churn must evict")
	}
}

// TestFlowTableChurnAgainstModel: drive a small table hard — inserts,
// refreshing lookups and sweeps with a deterministic PRNG — and check it
// against a map-based model. Live entries must never be lost or
// corrupted by backward-shift deletions; expired entries must miss.
func TestFlowTableChurnAgainstModel(t *testing.T) {
	const ttl = 50
	ft := NewFlowTable(FlowTableConfig{Shards: 1, InitialFlows: 8, MaxFlows: 1 << 12, TTL: ttl})
	type entry struct {
		class   int
		touched int64
	}
	model := make(map[int]entry) // key index → entry
	rng := rand.New(rand.NewSource(42))
	now := int64(0)
	for step := 0; step < 20000; step++ {
		now += int64(rng.Intn(3))
		i := rng.Intn(400)
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // insert/update
			cls := rng.Intn(8)
			ft.Insert(key(i), cls, now)
			model[i] = entry{class: cls, touched: now}
		case 4, 5, 6, 7: // lookup (refreshes or lazily evicts)
			cls, ok := ft.Lookup(key(i), now)
			m, inModel := model[i]
			if inModel && now-m.touched > ttl {
				// Stale: the table must miss (and evict).
				if ok {
					t.Fatalf("step %d: stale key %d hit with class %d", step, i, cls)
				}
				delete(model, i)
			} else if inModel {
				if !ok || cls != m.class {
					t.Fatalf("step %d: live key %d got (%d,%v), want (%d,true)", step, i, cls, ok, m.class)
				}
				m.touched = now
				model[i] = m
			} else if ok {
				t.Fatalf("step %d: unknown key %d hit with class %d", step, i, cls)
			}
		case 8: // sweep
			ft.Sweep(now)
			for k, m := range model {
				if now-m.touched > ttl {
					delete(model, k)
				}
			}
		case 9: // time jump
			now += ttl / 2
		}
	}
	// Final audit: every live model entry present and correct. (The table
	// may briefly hold stale stragglers a best-effort sweep missed; those
	// evict on lookup and are not live.)
	for i, m := range model {
		if now-m.touched > ttl {
			continue
		}
		cls, ok := ft.Lookup(key(i), now)
		if !ok || cls != m.class {
			t.Fatalf("final: key %d got (%d,%v), want (%d,true)", i, cls, ok, m.class)
		}
	}
}

// TestFlowTableConcurrent: shard locking under concurrent mixed load
// (mostly a -race exercise).
func TestFlowTableConcurrent(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{Shards: 8, TTL: 1000})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := key(g*2000 + i)
				ft.Insert(k, g, int64(i))
				if cls, ok := ft.Lookup(k, int64(i)); !ok || cls != g {
					t.Errorf("goroutine %d: key %d got (%d,%v)", g, i, cls, ok)
					return
				}
				if i%256 == 0 {
					ft.Sweep(int64(i))
					ft.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestFlowTableLookupAllocs: the lookup path — hit, miss and lazy
// eviction — must be allocation-free.
func TestFlowTableLookupAllocs(t *testing.T) {
	ft := NewFlowTable(FlowTableConfig{TTL: 1000})
	for i := 0; i < 1000; i++ {
		ft.Insert(key(i), i%5, 0)
	}
	if n := testing.AllocsPerRun(200, func() {
		ft.Lookup(key(17), 1)
	}); n != 0 {
		t.Fatalf("hit path allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		ft.Lookup(key(999999), 1)
	}); n != 0 {
		t.Fatalf("miss path allocates %v per run, want 0", n)
	}
	// Steady-state insert (no growth): pre-sized table, rotating updates.
	i := 0
	if n := testing.AllocsPerRun(200, func() {
		ft.Insert(key(i%1000), 1, 2)
		i++
	}); n != 0 {
		t.Fatalf("steady-state insert allocates %v per run, want 0", n)
	}
}

func TestNextPow2(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {65, 128}} {
		if got := nextPow2(c[0]); got != c[1] {
			t.Errorf("nextPow2(%d) = %d, want %d", c[0], got, c[1])
		}
	}
}
