package classify

import (
	"fmt"
	"math"
)

// MaxClasses bounds the class count (matches core.ValidateClasses).
const MaxClasses = 64

// TrafficClass is one declared service class: a name, a delay
// differentiation parameter, the filters that admit traffic into it, and
// optional queue policy.
type TrafficClass struct {
	// Name labels the class in configs, telemetry and reports. Unique
	// within a Config.
	Name string
	// DDP is the class's delay differentiation parameter: the declared
	// relative delay target, proportional to the mean queueing delay the
	// class should see. Class 0 (first declared) is the paper's lowest
	// class, so DDPs are non-increasing in declaration order. The
	// scheduler SDPs derive from the DDPs via Config.SDPs.
	DDP float64
	// Default marks the class that receives traffic matching no filter.
	// At most one class may be the default.
	Default bool
	// MaxQueue bounds the class's queue in packets (0 = only the
	// forwarder's aggregate bound applies).
	MaxQueue int
	// Filters admit traffic: the class matches when ANY filter matches
	// (elements within a filter are ANDed).
	Filters []Filter
}

// Config is a validated set of traffic-class declarations. Declaration
// order defines class indices: Classes[0] is class 0.
type Config struct {
	Classes []TrafficClass
}

// Validate checks the declarations: 1..MaxClasses classes, unique names,
// positive finite non-increasing DDPs, at most one default, and no class
// that can never receive traffic (no filters and not the default).
func (c *Config) Validate() error {
	if len(c.Classes) < 1 || len(c.Classes) > MaxClasses {
		return fmt.Errorf("classify: %d classes out of range [1,%d]", len(c.Classes), MaxClasses)
	}
	seen := make(map[string]bool, len(c.Classes))
	defaults := 0
	for i, tc := range c.Classes {
		if tc.Name == "" {
			return fmt.Errorf("classify: class %d has no name", i)
		}
		if seen[tc.Name] {
			return fmt.Errorf("classify: duplicate class name %q", tc.Name)
		}
		seen[tc.Name] = true
		if !(tc.DDP > 0) || math.IsInf(tc.DDP, 0) {
			return fmt.Errorf("classify: class %q: ddp %g must be positive and finite", tc.Name, tc.DDP)
		}
		if i > 0 && tc.DDP > c.Classes[i-1].DDP {
			return fmt.Errorf("classify: class %q: ddp %g exceeds preceding class's %g (classes must be declared lowest class first, DDPs non-increasing)",
				tc.Name, tc.DDP, c.Classes[i-1].DDP)
		}
		if tc.MaxQueue < 0 {
			return fmt.Errorf("classify: class %q: maxq %d must be >= 0", tc.Name, tc.MaxQueue)
		}
		if tc.Default {
			defaults++
		}
		if len(tc.Filters) == 0 && !tc.Default {
			return fmt.Errorf("classify: class %q has no filters and is not the default; it can never receive traffic", tc.Name)
		}
	}
	if defaults > 1 {
		return fmt.Errorf("classify: %d default classes declared; at most one allowed", defaults)
	}
	// The DDP spread becomes the extreme SDP ratio (SDPs derives
	// SDP = maxDDP/DDP); it must stay finite or the schedulers' weighted
	// priorities degenerate.
	if spread := c.Classes[0].DDP / c.Classes[len(c.Classes)-1].DDP; math.IsInf(spread, 0) {
		return fmt.Errorf("classify: ddp spread %g/%g overflows; narrow the ratio between the first and last class",
			c.Classes[0].DDP, c.Classes[len(c.Classes)-1].DDP)
	}
	return nil
}

// DefaultClass returns the index of the default class, or -1 when none is
// declared.
func (c *Config) DefaultClass() int {
	for i, tc := range c.Classes {
		if tc.Default {
			return i
		}
	}
	return -1
}

// Names returns the class names in index order.
func (c *Config) Names() []string {
	out := make([]string, len(c.Classes))
	for i, tc := range c.Classes {
		out[i] = tc.Name
	}
	return out
}

// SDPs derives the scheduler differentiation parameters from the declared
// DDPs. The proportional model pins delay(i)/delay(j) = DDP(i)/DDP(j),
// and the schedulers express the same spacing through non-decreasing SDPs
// with delay(i)/delay(i+1) = SDP(i+1)/SDP(i) — so SDP(i) = maxDDP/DDP(i),
// normalized to SDP(0) = 1 for a valid (non-increasing DDP) config.
func (c *Config) SDPs() []float64 {
	max := 0.0
	for _, tc := range c.Classes {
		if tc.DDP > max {
			max = tc.DDP
		}
	}
	out := make([]float64, len(c.Classes))
	for i, tc := range c.Classes {
		out[i] = max / tc.DDP
	}
	return out
}

// QueueBounds returns the per-class queue bounds in index order (0 =
// unbounded beyond the aggregate), or nil when no class declares one.
func (c *Config) QueueBounds() []int {
	any := false
	out := make([]int, len(c.Classes))
	for i, tc := range c.Classes {
		out[i] = tc.MaxQueue
		if tc.MaxQueue > 0 {
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}
