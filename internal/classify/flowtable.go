package classify

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// FlowTableConfig sizes a FlowTable. The zero value selects defaults
// suitable for an edge forwarder.
type FlowTableConfig struct {
	// Shards is the number of independently locked hash shards (rounded
	// up to a power of two; default 64). More shards = less contention
	// when multiple ingress goroutines share the table.
	Shards int
	// InitialFlows hints the initial total capacity (default 4096).
	// Shard slot arrays start at the matching power of two and double as
	// they fill, so a table that stays small never pays for MaxFlows.
	InitialFlows int
	// MaxFlows bounds the resident flow count (rounded up so each shard
	// holds a power of two; default 2,097,152 ≈ 2M). At the bound, stale
	// or least-recently-touched entries are evicted to admit new flows.
	MaxFlows int
	// TTL is the idle-eviction age in the caller's time units (the `now`
	// passed to Lookup/Insert — nanoseconds for the forwarder, simulation
	// time for the chaos harness). An entry untouched for longer than TTL
	// is evicted lazily on access, during pressure sweeps, and by Sweep.
	// 0 disables idle eviction (pure memoization).
	TTL int64
}

func (c FlowTableConfig) withDefaults() FlowTableConfig {
	if c.Shards <= 0 {
		c.Shards = 64
	}
	c.Shards = nextPow2(c.Shards)
	if c.InitialFlows <= 0 {
		c.InitialFlows = 4096
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 1 << 21
	}
	if c.MaxFlows < c.Shards {
		c.MaxFlows = c.Shards
	}
	return c
}

// slot states. Deleted entries are removed by backward-shift, so there
// are no tombstones and probe chains never grow stale.
const (
	slotEmpty = iota
	slotUsed
)

// slot is one open-addressing table entry. The hash is cached so probes
// compare 8 bytes before the 37-byte key and so rehashing on growth does
// not recompute it.
type slot struct {
	hash    uint64
	key     FlowKey
	touched int64
	class   int32
	state   uint8
}

// shard is one independently locked slice of the table: a power-of-two
// linear-probing open-addressing array. Load is kept at or below 3/4 so
// probe chains stay short and every probe terminates at an empty slot.
type shard struct {
	mu        sync.Mutex
	slots     []slot
	count     int
	lastSweep int64
	// pad keeps neighbouring shards' mutexes off one cache line.
	_ [64]byte
}

// FlowTable memoizes 5-tuple → class decisions for millions of concurrent
// flows: hash-sharded, power-of-two sized, linear probing with
// backward-shift deletion, per-shard locks, and TTL-based idle eviction.
// Lookup and steady-state Insert perform zero allocations; growth (until
// a shard reaches its share of MaxFlows) is the only allocating path.
//
// Time is caller-supplied (the now arguments), so the table is
// deterministic: the same sequence of operations with the same
// timestamps yields the same hits, misses and evictions on any run —
// the chaos harness's byte-identical-report contract relies on this.
type FlowTable struct {
	shards      []shard
	shardMask   uint64
	ttl         int64
	initShard   int // initial slots per shard (power of two)
	maxShard    int // max slots per shard (power of two)
	hits        atomic.Uint64
	misses      atomic.Uint64
	inserts     atomic.Uint64
	evictions   atomic.Uint64
	updateHits  atomic.Uint64
	sweepsTotal atomic.Uint64
}

// NewFlowTable builds a table from cfg (zero value = defaults).
func NewFlowTable(cfg FlowTableConfig) *FlowTable {
	cfg = cfg.withDefaults()
	perShardInit := nextPow2(max(4, cfg.InitialFlows/cfg.Shards))
	perShardMax := nextPow2(max(4, cfg.MaxFlows/cfg.Shards))
	if perShardInit > perShardMax {
		perShardInit = perShardMax
	}
	t := &FlowTable{
		shards:    make([]shard, cfg.Shards),
		shardMask: uint64(cfg.Shards - 1),
		ttl:       cfg.TTL,
		initShard: perShardInit,
		maxShard:  perShardMax,
	}
	for i := range t.shards {
		t.shards[i].slots = make([]slot, perShardInit)
	}
	return t
}

// TTL returns the configured idle-eviction age (0 = disabled).
func (t *FlowTable) TTL() int64 { return t.ttl }

// Lookup returns the memoized class for k, refreshing its idle timer. A
// stale entry (idle longer than TTL at now) is evicted and reported as a
// miss, so a long-quiet flow is re-classified on its next packet.
func (t *FlowTable) Lookup(k FlowKey, now int64) (class int, ok bool) {
	h := k.hash()
	s := &t.shards[h&t.shardMask]
	s.mu.Lock()
	if i, found := s.find(h, k); found {
		sl := &s.slots[i]
		if t.ttl > 0 && now-sl.touched > t.ttl {
			s.remove(i)
			s.mu.Unlock()
			t.evictions.Add(1)
			t.misses.Add(1)
			return 0, false
		}
		sl.touched = now
		class = int(sl.class)
		s.mu.Unlock()
		t.hits.Add(1)
		return class, true
	}
	s.mu.Unlock()
	t.misses.Add(1)
	return 0, false
}

// Insert memoizes k → class at time now, updating the entry in place if
// the flow is already resident. When a shard is full at its share of
// MaxFlows, expired entries are swept first and, failing that, the
// least-recently-touched entry near the insertion point is evicted.
func (t *FlowTable) Insert(k FlowKey, class int, now int64) {
	h := k.hash()
	s := &t.shards[h&t.shardMask]
	s.mu.Lock()
	// Opportunistic shard sweep: at most one full pass per TTL period,
	// so stale flows age out even when nothing ever probes their chain.
	if t.ttl > 0 && now-s.lastSweep > t.ttl {
		s.lastSweep = now
		t.evictions.Add(uint64(s.sweep(now, t.ttl)))
		t.sweepsTotal.Add(1)
	}
	if i, found := s.find(h, k); found {
		s.slots[i].class = int32(class)
		s.slots[i].touched = now
		s.mu.Unlock()
		t.updateHits.Add(1)
		return
	}
	// Keep load <= 3/4: grow while allowed, then sweep, then evict.
	if (s.count+1)*4 > len(s.slots)*3 {
		if len(s.slots) < t.maxShard {
			s.grow()
		} else {
			evicted := 0
			if t.ttl > 0 {
				evicted = s.sweep(now, t.ttl)
				s.lastSweep = now
				t.sweepsTotal.Add(1)
			}
			if (s.count+1)*4 > len(s.slots)*3 {
				s.evictStalest(uint32(h))
				evicted++
			}
			t.evictions.Add(uint64(evicted))
		}
	}
	s.place(h, k, int32(class), now)
	s.mu.Unlock()
	t.inserts.Add(1)
}

// Sweep evicts every entry idle longer than the TTL at now, across all
// shards. Harnesses call it at sample boundaries to make idle eviction
// prompt and deterministic; the forwarder relies on the per-shard
// opportunistic sweeps instead. No-op when TTL is 0.
func (t *FlowTable) Sweep(now int64) {
	if t.ttl == 0 {
		return
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.lastSweep = now
		t.evictions.Add(uint64(s.sweep(now, t.ttl)))
		s.mu.Unlock()
	}
	t.sweepsTotal.Add(1)
}

// Len returns the resident flow count.
func (t *FlowTable) Len() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += s.count
		s.mu.Unlock()
	}
	return n
}

// FlowTableStats is a point-in-time counter snapshot.
type FlowTableStats struct {
	Resident  int    `json:"resident"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the table's counters.
func (t *FlowTable) Stats() FlowTableStats {
	return FlowTableStats{
		Resident:  t.Len(),
		Hits:      t.hits.Load(),
		Misses:    t.misses.Load(),
		Inserts:   t.inserts.Load(),
		Evictions: t.evictions.Load(),
	}
}

// find returns the slot index holding (h, k). Caller must hold s.mu.
func (s *shard) find(h uint64, k FlowKey) (uint32, bool) {
	mask := uint32(len(s.slots) - 1)
	i := uint32(h) & mask
	for {
		sl := &s.slots[i]
		if sl.state == slotEmpty {
			return 0, false
		}
		if sl.hash == h && sl.key == k {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// place inserts a new entry, probing from its home slot. Caller must hold
// s.mu and have ensured a free slot exists.
func (s *shard) place(h uint64, k FlowKey, class int32, now int64) {
	mask := uint32(len(s.slots) - 1)
	i := uint32(h) & mask
	for s.slots[i].state != slotEmpty {
		i = (i + 1) & mask
	}
	s.slots[i] = slot{hash: h, key: k, touched: now, class: class, state: slotUsed}
	s.count++
}

// remove deletes slot i by backward-shift: every displaced entry in the
// probe cluster after i moves one hole earlier, so no tombstones exist
// and probe chains stay minimal. Caller must hold s.mu.
func (s *shard) remove(i uint32) {
	mask := uint32(len(s.slots) - 1)
	j := i
	for {
		s.slots[i] = slot{}
		for {
			j = (j + 1) & mask
			sl := &s.slots[j]
			if sl.state == slotEmpty {
				s.count--
				return
			}
			// Move j into the hole at i iff j's probe distance from its
			// home reaches past i (cyclic comparison).
			home := uint32(sl.hash) & mask
			if ((j - home) & mask) >= ((j - i) & mask) {
				s.slots[i] = *sl
				i = j
				break
			}
		}
	}
}

// sweep removes entries idle longer than ttl at now and returns how many
// it evicted. Backward-shift deletions can relocate entries into already
// scanned positions of a wrapping cluster, so a single pass is best
// effort — stragglers are caught lazily or by the next sweep. Caller must
// hold s.mu.
func (s *shard) sweep(now, ttl int64) int {
	evicted := 0
	for i := range s.slots {
		for s.slots[i].state == slotUsed && now-s.slots[i].touched > ttl {
			s.remove(uint32(i))
			evicted++
		}
	}
	return evicted
}

// evictStalest removes the least-recently-touched entry within the probe
// window starting at home (extending until at least one used slot was
// seen), making room when the shard is at its size cap. Deterministic:
// the scan order and tie-break (first seen wins) are fixed. Caller must
// hold s.mu and s.count > 0.
func (s *shard) evictStalest(home uint32) {
	mask := uint32(len(s.slots) - 1)
	const window = 64
	var (
		best      uint32
		bestTouch int64
		found     bool
	)
	i := home & mask
	for scanned := 0; scanned < window || !found; scanned++ {
		if scanned >= len(s.slots) && found {
			break
		}
		sl := &s.slots[i]
		if sl.state == slotUsed && (!found || sl.touched < bestTouch) {
			best, bestTouch, found = i, sl.touched, true
		}
		i = (i + 1) & mask
	}
	s.remove(best)
}

// grow doubles the shard's slot array and rehashes in slot order
// (deterministic given identical contents).
func (s *shard) grow() {
	old := s.slots
	s.slots = make([]slot, len(old)*2)
	s.count = 0
	for i := range old {
		if old[i].state == slotUsed {
			s.place(old[i].hash, old[i].key, old[i].class, old[i].touched)
		}
	}
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// String summarizes the table for logs.
func (t *FlowTable) String() string {
	st := t.Stats()
	return fmt.Sprintf("flowtable{resident=%d hits=%d misses=%d evictions=%d shards=%d}",
		st.Resident, st.Hits, st.Misses, st.Evictions, len(t.shards))
}
