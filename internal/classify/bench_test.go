package classify

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readTestdata(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join("testdata", name))
	return string(b), err
}

// benchKeys fabricates n distinct flow keys cheaply.
func benchKeys(n int) []FlowKey {
	keys := make([]FlowKey, n)
	for i := range keys {
		keys[i] = FlowKey{
			Src:     netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
			Dst:     netip.AddrFrom4([4]byte{192, 0, 2, byte(i >> 12)}),
			SrcPort: uint16(i),
			DstPort: 9000,
			Proto:   ProtoUDP,
		}
	}
	return keys
}

// BenchmarkFlowTableLookup1M measures a hit against a table holding one
// million resident flows — the ISSUE's committed scale target. Must stay
// at 0 allocs/op (gated by pdbench -threshold).
func BenchmarkFlowTableLookup1M(b *testing.B) {
	const resident = 1 << 20
	ft := NewFlowTable(FlowTableConfig{MaxFlows: 1 << 21})
	keys := benchKeys(resident)
	for i, k := range keys {
		ft.Insert(k, i%8, 0)
	}
	if ft.Len() != resident {
		b.Fatalf("resident %d, want %d", ft.Len(), resident)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ft.Lookup(keys[i&(resident-1)], 1); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkFlowTableInsert measures steady-state insert/update (no
// growth) on a warm table.
func BenchmarkFlowTableInsert(b *testing.B) {
	const resident = 1 << 16
	ft := NewFlowTable(FlowTableConfig{MaxFlows: 1 << 18})
	keys := benchKeys(resident)
	for i, k := range keys {
		ft.Insert(k, i%8, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ft.Insert(keys[i&(resident-1)], i%8, int64(i))
	}
}

// BenchmarkClassifyHit measures the full per-datagram classification
// path when the flow is memoized (the steady-state ingress cost).
func BenchmarkClassifyHit(b *testing.B) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(cfg, FlowTableConfig{})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(1 << 12)
	for _, k := range keys {
		c.Classify(k, 0, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(keys[i&(len(keys)-1)], 0, 1)
	}
}

// BenchmarkMatchScan measures the uncached first-match-wins filter scan
// (the per-flow, not per-packet, cost).
func BenchmarkMatchScan(b *testing.B) {
	cfg, err := LoadConfig("testdata/full.conf")
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(cfg, FlowTableConfig{})
	if err != nil {
		b.Fatal(err)
	}
	keys := benchKeys(1 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Match(keys[i&(len(keys)-1)], 46)
	}
}

// BenchmarkParseConfig measures parsing the full corpus config.
func BenchmarkParseConfig(b *testing.B) {
	data, err := readTestdata("full.conf")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseConfig(strings.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
