package classify

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pdds/internal/core"
)

// FuzzClassConfig throws arbitrary bytes at the config parser. The
// contract: ParseConfig never panics, and any config it accepts is fully
// valid — Validate passes, the derived SDPs satisfy the scheduler's
// contract, and a Classifier can be built from it.
func FuzzClassConfig(f *testing.F) {
	// Seed with the real corpus plus edge-shaped inputs.
	for _, name := range []string{"basic.conf", "full.conf", "bom_crlf.conf"} {
		b, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, s := range []string{
		"",
		"class a\nddp 1\ndefault\n",
		"class a\n ddp 2\n match src 10.0.0.0/8 proto udp dscp 46\nclass a\n ddp 1\n default\n",
		"class x\nddp 1e300\ndefault\nmaxq 99999999\n",
		"class x\nddp 0.0001\nmatch flow 1.2.3.4:5 [::1]:6 250\ndefault\n",
		"ddp 1\nclass late\n",
		"class a\nddp inf\ndefault\n",
		"class a\nddp 1\nmatch dst-port 0-65535 src-port 5-5\ndefault\n",
		"\uFEFFclass bom\r\nddp 1\r\ndefault\r\n",
		"class a # trailing\nddp 1 # comment\ndefault\n# done\n",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseConfig accepted a config Validate rejects: %v", verr)
		}
		sdps := cfg.SDPs()
		if len(sdps) != len(cfg.Classes) {
			t.Fatalf("SDPs: %d values for %d classes", len(sdps), len(cfg.Classes))
		}
		core.ValidateSDPs(sdps) // panics if the scheduler contract is violated
		c, nerr := New(cfg, FlowTableConfig{Shards: 1, InitialFlows: 4, MaxFlows: 16})
		if nerr != nil {
			t.Fatalf("New on a parsed config: %v", nerr)
		}
		// Classification must be total-or-explicit: ok=false only when no
		// default exists, and any returned index must be in range.
		k := key(1)
		cls, ok := c.Classify(k, 7, 0)
		if ok && (cls < 0 || cls >= len(cfg.Classes)) {
			t.Fatalf("class index %d out of range [0,%d)", cls, len(cfg.Classes))
		}
		if !ok && cfg.DefaultClass() >= 0 {
			t.Fatal("config has a default class but classification missed")
		}
		// Filters must round-trip through String without panicking.
		for _, tc := range cfg.Classes {
			for _, fl := range tc.Filters {
				_ = fl.String()
			}
		}
	})
}
