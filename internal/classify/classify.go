// Package classify is the forwarder's ingress classification stage: it
// turns an arriving datagram's flow identity (5-tuple) and DS byte into a
// service-class index, replacing blind trust in the wire header's class
// byte with config-driven traffic classes.
//
// The paper assumes packets arrive already tagged with a class; a real
// proportional-DiffServ edge has to *classify*. The architecture follows
// the classic DiffServ decomposition (cf. the ns-3 DiffServ exemplar):
//
//   - FilterElement: one matching condition (source/destination address
//     prefix, source/destination port range, DS byte, protocol, exact
//     flow 5-tuple).
//   - Filter: a conjunction of elements — every element must match.
//   - TrafficClass: a named class declaration carrying a delay
//     differentiation parameter (DDP), an optional default flag, optional
//     per-class queue bound, and a disjunction of filters — any filter
//     admits the packet.
//   - Classifier: the ordered class list plus a flow table memoizing
//     5-tuple → class decisions so the filter scan runs once per flow,
//     not once per packet.
//
// Class declarations load from a line-oriented config file (see
// ParseConfig) whose declaration order defines the class indices: the
// first class is class 0, the paper's lowest (highest-delay) class, so
// DDPs must be non-increasing down the file.
//
// Matching is first-match-wins in declaration order. For non-overlapping
// filters the outcome is therefore independent of declaration order; for
// overlapping ones the earlier class wins, deterministically.
//
// The flow table (FlowTable) is hash-sharded and power-of-two sized, with
// per-shard locks, TTL-based idle eviction and zero steady-state
// allocations on the lookup path, so an edge can memoize millions of
// concurrent flows while the ingress loop stays allocation-free.
package classify

import (
	"fmt"
	"net/netip"
)

// Protocol numbers for FlowKey.Proto (IANA assigned).
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// FlowKey is the 5-tuple identity of a flow. Addresses must be in
// canonical form (use netip.Addr.Unmap for 4-mapped-in-6 addresses) so
// that equal flows compare and hash equal regardless of socket family.
type FlowKey struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Proto            uint8
}

// String renders the key as "udp 1.2.3.4:5 -> 6.7.8.9:10".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s -> %s", protoName(k.Proto),
		netip.AddrPortFrom(k.Src, k.SrcPort), netip.AddrPortFrom(k.Dst, k.DstPort))
}

func protoName(p uint8) string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return fmt.Sprintf("proto-%d", p)
	}
}

// hash folds the key into 64 bits. The function is fixed (no per-process
// seed) so runs that drive the table with the same flow sequence are
// bit-reproducible — the chaos harness depends on that for byte-identical
// reports. A splitmix-style finalizer avalanches the FNV-lane fold.
func (k FlowKey) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	s := k.Src.As16()
	d := k.Dst.As16()
	for i := 0; i < 16; i += 8 {
		h = (h ^ lane(s[i:i+8])) * prime
		h = (h ^ lane(d[i:i+8])) * prime
	}
	h = (h ^ (uint64(k.SrcPort)<<24 | uint64(k.DstPort)<<8 | uint64(k.Proto))) * prime
	// Finalizer (splitmix64): FNV folded over 8-byte lanes needs the
	// extra avalanche to spread low-entropy keys across shards.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func lane(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Classifier resolves flow identities to class indices: a flow-table
// lookup first, then (on a miss) a first-match-wins scan over the
// configured classes' filters, falling back to the default class. The
// decision is memoized in the flow table under the 5-tuple, so the scan
// runs once per flow lifetime. Safe for concurrent use.
//
// Memoization assumes a flow's DS byte is stable for its lifetime (the
// usual DiffServ edge assumption); a flow that re-marks itself mid-life
// keeps its first classification until the table entry idles out.
type Classifier struct {
	classes []TrafficClass
	def     int // index of the default class, -1 when none
	table   *FlowTable
}

// New builds a classifier from a validated config and a flow table
// configured by topt (zero value = defaults; see FlowTableConfig).
func New(cfg *Config, topt FlowTableConfig) (*Classifier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Classifier{
		classes: cfg.Classes,
		def:     cfg.DefaultClass(),
		table:   NewFlowTable(topt),
	}, nil
}

// NumClasses returns the number of configured classes.
func (c *Classifier) NumClasses() int { return len(c.classes) }

// Table exposes the flow table for stats and eviction control.
func (c *Classifier) Table() *FlowTable { return c.table }

// Classify resolves k (with DS byte dscp) to a class index at time now
// (the flow table's TTL time base, in the units the table was configured
// with). ok is false when no filter matches and no default class exists —
// the caller should treat the packet as unclassifiable.
func (c *Classifier) Classify(k FlowKey, dscp uint8, now int64) (class int, ok bool) {
	if class, ok = c.table.Lookup(k, now); ok {
		return class, true
	}
	class, ok = c.Match(k, dscp)
	if ok {
		c.table.Insert(k, class, now)
	}
	return class, ok
}

// Match runs the filter scan only (no flow-table consultation or
// memoization): first-match-wins over classes in declaration order, then
// the default class.
func (c *Classifier) Match(k FlowKey, dscp uint8) (class int, ok bool) {
	for i := range c.classes {
		for _, f := range c.classes[i].Filters {
			if f.Match(k, dscp) {
				return i, true
			}
		}
	}
	if c.def >= 0 {
		return c.def, true
	}
	return 0, false
}
