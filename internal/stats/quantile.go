package stats

import (
	"fmt"
	"sort"
)

// Sample collects values for exact quantile queries. For the run sizes of
// this reproduction (≤ a few million records) exact sorting is both
// affordable and simpler to trust than streaming sketches.
type Sample struct {
	vals   []float64
	sorted bool
}

// Add appends x.
func (s *Sample) Add(x float64) {
	s.vals = append(s.vals, x)
	s.sorted = false
}

// Len returns the number of values.
func (s *Sample) Len() int { return len(s.vals) }

// Quantile returns the p-quantile (0 <= p <= 1) using linear interpolation
// between order statistics. It panics on an empty sample or p outside
// [0,1].
func (s *Sample) Quantile(p float64) float64 {
	if len(s.vals) == 0 {
		panic("stats: quantile of empty sample")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: quantile p=%g outside [0,1]", p))
	}
	if !s.sorted {
		sort.Float64s(s.vals)
		s.sorted = true
	}
	if len(s.vals) == 1 {
		return s.vals[0]
	}
	pos := p * float64(len(s.vals)-1)
	lo := int(pos)
	if lo == len(s.vals)-1 {
		return s.vals[lo]
	}
	frac := pos - float64(lo)
	return s.vals[lo]*(1-frac) + s.vals[lo+1]*frac
}

// Quantiles evaluates several quantiles at once.
func (s *Sample) Quantiles(ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = s.Quantile(p)
	}
	return out
}

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Values returns the underlying values (sorted if a quantile has been
// queried). The slice is owned by the sample; callers must not modify it.
func (s *Sample) Values() []float64 { return s.vals }

// Reset discards all values but keeps the allocation.
func (s *Sample) Reset() {
	s.vals = s.vals[:0]
	s.sorted = false
}

// FivePercentiles are the box-plot percentiles used by Figure 3.
var FivePercentiles = []float64{0.05, 0.25, 0.50, 0.75, 0.95}

// StudyBPercentiles are the ten end-to-end delay percentiles of Study B:
// 10%, 20%, ..., 90%, and 99%.
var StudyBPercentiles = []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.99}
