package stats

import "pdds/internal/core"

// ClassDelays aggregates per-class queueing delays over a run, plus the
// conservation-law invariant Σ L_p·W_p (which is sample-path identical for
// every work-conserving discipline on the same arrival trace — the
// discrete form of Eq. 5).
type ClassDelays struct {
	perClass []Welford
	sumLW    float64
}

// NewClassDelays returns an aggregator for n classes.
func NewClassDelays(n int) *ClassDelays {
	return &ClassDelays{perClass: make([]Welford, n)}
}

// Observe records a departed packet's waiting time.
func (c *ClassDelays) Observe(p *core.Packet) {
	w := p.Wait()
	c.perClass[p.Class].Add(w)
	c.sumLW += float64(p.Size) * w
}

// NumClasses returns the class count.
func (c *ClassDelays) NumClasses() int { return len(c.perClass) }

// Count returns the number of class-i departures observed.
func (c *ClassDelays) Count(i int) uint64 { return c.perClass[i].Count() }

// Mean returns the average queueing delay of class i.
func (c *ClassDelays) Mean(i int) float64 { return c.perClass[i].Mean() }

// Class returns a copy of the class-i accumulator.
func (c *ClassDelays) Class(i int) Welford { return c.perClass[i] }

// SumLW returns Σ L_p·W_p over the observed packets (byte·time units).
func (c *ClassDelays) SumLW() float64 { return c.sumLW }

// SuccessiveRatios returns d_i/d_{i+1} for i = 0..N-2 — the paper's
// "ratio of average delays between successive classes" (Figures 1 and 2).
// Pairs where the higher class saw no packets or zero delay yield NaN-free
// zeros to keep downstream aggregation simple; callers should ensure both
// classes are active before interpreting a ratio.
func (c *ClassDelays) SuccessiveRatios() []float64 {
	out := make([]float64, 0, len(c.perClass)-1)
	for i := 0; i+1 < len(c.perClass); i++ {
		hi := c.perClass[i+1].Mean()
		if c.perClass[i].Count() == 0 || c.perClass[i+1].Count() == 0 || hi == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, c.perClass[i].Mean()/hi)
	}
	return out
}

// Merge folds other (same class count) into c.
func (c *ClassDelays) Merge(other *ClassDelays) {
	for i := range c.perClass {
		c.perClass[i].Merge(other.perClass[i])
	}
	c.sumLW += other.sumLW
}
