package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestVarianceTimeValidation(t *testing.T) {
	if _, err := VarianceTime([]float64{1, 2}, []int{1}); err == nil {
		t.Error("short series accepted")
	}
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i % 5)
	}
	if _, err := VarianceTime(series, []int{0}); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := VarianceTime(series, []int{60}); err == nil {
		t.Error("factor leaving <2 blocks accepted")
	}
	if _, err := VarianceTime(make([]float64, 100), []int{1}); err == nil {
		t.Error("zero-mean series accepted")
	}
}

func TestHurstEstimateValidation(t *testing.T) {
	if _, err := HurstEstimate(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := HurstEstimate([]VarianceTimePoint{{M: 1, Variance: 1}, {M: 2, Variance: -1}}); err == nil {
		t.Error("negative variance accepted")
	}
	if _, err := HurstEstimate([]VarianceTimePoint{{M: 2, Variance: 1}, {M: 2, Variance: 1}}); err == nil {
		t.Error("degenerate levels accepted")
	}
}

func TestHurstExactSlope(t *testing.T) {
	// Synthetic plot with variance exactly m^(2H-2) for H = 0.8.
	var points []VarianceTimePoint
	for _, m := range []int{1, 2, 4, 8, 16} {
		points = append(points, VarianceTimePoint{
			M:        m,
			Variance: math.Pow(float64(m), 2*0.8-2),
		})
	}
	h, err := HurstEstimate(points)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0.799 || h > 0.801 {
		t.Fatalf("H = %g, want 0.8", h)
	}
}

// IID counts should show H ≈ 0.5; a long-memory-like series (slowly
// varying level shifts) should show H well above 0.5. This separates the
// estimator's verdicts the way Pareto vs Poisson traffic does.
func TestHurstSeparatesIIDFromLongMemory(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	n := 1 << 14
	iid := make([]float64, n)
	for i := range iid {
		iid[i] = 100 + rng.NormFloat64()*10
	}
	factors := []int{1, 2, 4, 8, 16, 32, 64}
	pts, err := VarianceTime(iid, factors)
	if err != nil {
		t.Fatal(err)
	}
	hIID, err := HurstEstimate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if hIID < 0.35 || hIID > 0.65 {
		t.Fatalf("IID H = %g, want ≈0.5", hIID)
	}

	// Level-shift process: the mean jumps every 512 samples — variance
	// decays much slower under aggregation.
	ls := make([]float64, n)
	level := 100.0
	for i := range ls {
		if i%512 == 0 {
			level = 60 + rng.Float64()*80
		}
		ls[i] = level + rng.NormFloat64()*5
	}
	pts, err = VarianceTime(ls, factors)
	if err != nil {
		t.Fatal(err)
	}
	hLS, err := HurstEstimate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if hLS < 0.8 {
		t.Fatalf("long-memory H = %g, want > 0.8", hLS)
	}
}
