package stats

import (
	"math"

	"pdds/internal/core"
)

// IntervalPoint is one point of a microscopic view I series: the average
// queueing delay of a class over one aggregation interval.
type IntervalPoint struct {
	// Time is the start of the aggregation interval.
	Time float64
	// AvgDelay is the mean queueing delay of the packets of the class
	// that departed in the interval.
	AvgDelay float64
	// Count is the number of departures aggregated.
	Count int
}

// ViewI captures Figures 4-a/5-a style series: per-class average queueing
// delay over consecutive intervals of length Tau, within [From, To).
// Observe must be called in nondecreasing departure-time order.
type ViewI struct {
	Tau      float64
	From, To float64

	series [][]IntervalPoint
	start  float64
	sum    []float64
	cnt    []int
	open   bool
}

// NewViewI returns a view-I capturer for the given class count.
func NewViewI(classes int, tau, from, to float64) *ViewI {
	if !(tau > 0) || !(to > from) {
		panic("stats: ViewI needs tau > 0 and to > from")
	}
	return &ViewI{
		Tau:    tau,
		From:   from,
		To:     to,
		series: make([][]IntervalPoint, classes),
		sum:    make([]float64, classes),
		cnt:    make([]int, classes),
	}
}

// Observe records a departed packet.
func (v *ViewI) Observe(p *core.Packet) {
	if p.Departure < v.From || p.Departure >= v.To {
		if v.open && p.Departure >= v.To {
			v.flush()
			v.open = false
		}
		return
	}
	if !v.open {
		v.open = true
		v.start = v.From + math.Floor((p.Departure-v.From)/v.Tau)*v.Tau
	}
	for p.Departure >= v.start+v.Tau {
		v.flush()
		v.start += v.Tau
	}
	v.sum[p.Class] += p.Wait()
	v.cnt[p.Class]++
}

// Finish flushes the final open interval.
func (v *ViewI) Finish() {
	if v.open {
		v.flush()
		v.open = false
	}
}

// Series returns the captured per-class interval series.
func (v *ViewI) Series(class int) []IntervalPoint { return v.series[class] }

func (v *ViewI) flush() {
	for c := range v.series {
		if v.cnt[c] > 0 {
			v.series[c] = append(v.series[c], IntervalPoint{
				Time:     v.start,
				AvgDelay: v.sum[c] / float64(v.cnt[c]),
				Count:    v.cnt[c],
			})
		}
		v.sum[c], v.cnt[c] = 0, 0
	}
}

// PacketPoint is one point of a microscopic view II series: a single
// packet's queueing delay at its departure time.
type PacketPoint struct {
	Departure float64
	Delay     float64
	Class     int
}

// ViewII captures Figures 4-b/5-b style series: the queueing delay of each
// individual packet departing within [From, To).
type ViewII struct {
	From, To float64
	points   []PacketPoint
}

// NewViewII returns a view-II capturer for the window [from, to).
func NewViewII(from, to float64) *ViewII {
	if !(to > from) {
		panic("stats: ViewII needs to > from")
	}
	return &ViewII{From: from, To: to}
}

// Observe records a departed packet.
func (v *ViewII) Observe(p *core.Packet) {
	if p.Departure < v.From || p.Departure >= v.To {
		return
	}
	v.points = append(v.points, PacketPoint{Departure: p.Departure, Delay: p.Wait(), Class: p.Class})
}

// Points returns the captured per-packet points in departure order.
func (v *ViewII) Points() []PacketPoint { return v.points }

// SawtoothIndex quantifies the "sawtooth-type variations" §5 describes in
// BPR's microscopic view II: the root-mean-square of the delay difference
// between consecutive departures of the same class, normalized by the
// class's mean delay. BPR's gradual ramps punctuated by sudden drops give
// a visibly larger index than WTP's smoother evolution, turning the
// paper's visual comparison of Figures 4 and 5 into a number.
func SawtoothIndex(points []PacketPoint, class int) float64 {
	var prev float64
	var have bool
	var sumSq, sumDelay float64
	var jumps, count int
	for _, pt := range points {
		if pt.Class != class {
			continue
		}
		sumDelay += pt.Delay
		count++
		if have {
			d := pt.Delay - prev
			sumSq += d * d
			jumps++
		}
		prev, have = pt.Delay, true
	}
	if jumps == 0 || sumDelay == 0 {
		return 0
	}
	mean := sumDelay / float64(count)
	return math.Sqrt(sumSq/float64(jumps)) / mean
}
