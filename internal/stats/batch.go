package stats

import (
	"fmt"
	"math"
)

// BatchMeans estimates a confidence interval for the mean of a correlated
// simulation output series by the method of batch means: the series is
// split into batches, each batch is averaged, and the batch averages are
// treated as approximately independent. The paper declines to report
// confidence intervals for its Pareto runs (the delay variance is
// infinite); batch means remain valid for the Poisson configurations and
// for bounded statistics such as per-interval ratios.
type BatchMeans struct {
	batchSize int
	current   Welford
	batches   Welford
}

// NewBatchMeans returns an estimator that folds every batchSize
// observations into one batch mean.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize < 1 {
		panic("stats: batch size must be >= 1")
	}
	return &BatchMeans{batchSize: batchSize}
}

// Add incorporates one observation.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.Count() == uint64(b.batchSize) {
		b.batches.Add(b.current.Mean())
		b.current = Welford{}
	}
}

// Batches returns the number of completed batches.
func (b *BatchMeans) Batches() uint64 { return b.batches.Count() }

// Mean returns the mean of the completed batch means.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// CI returns the half-width of the z-approximate confidence interval at
// the given confidence level (supported: 0.90, 0.95, 0.99). It errors
// with fewer than 8 completed batches, where the normal approximation is
// not defensible.
func (b *BatchMeans) CI(level float64) (float64, error) {
	var z float64
	switch level {
	case 0.90:
		z = 1.6449
	case 0.95:
		z = 1.9600
	case 0.99:
		z = 2.5758
	default:
		return 0, fmt.Errorf("stats: unsupported confidence level %g", level)
	}
	n := b.batches.Count()
	if n < 8 {
		return 0, fmt.Errorf("stats: only %d batches completed (need >= 8)", n)
	}
	return z * b.batches.Std() / math.Sqrt(float64(n)), nil
}
