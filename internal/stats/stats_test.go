package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"pdds/internal/core"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Var() != 0 || w.Min() != 0 || w.Max() != 0 {
		t.Fatal("zero Welford not zeroed")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Fatalf("Count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-12 {
		t.Fatalf("Var = %g, want %g", w.Var(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", w.Min(), w.Max())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Fatal("Std wrong")
	}
}

// Property: merging two Welfords equals feeding all samples to one.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(seed uint64, n1, n2 uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		var a, b, all Welford
		for i := 0; i < int(n1); i++ {
			x := rng.NormFloat64() * 10
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < int(n2); i++ {
			x := rng.NormFloat64()*3 + 5
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		if a.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		return math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(a) // merging into empty copies
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty wrong")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 100; i >= 1; i-- { // reverse order exercises sorting
		s.Add(float64(i))
	}
	if s.Len() != 100 {
		t.Fatal("Len wrong")
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %g", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("q1 = %g", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-12 {
		t.Fatalf("median = %g, want 50.5", got)
	}
	qs := s.Quantiles(FivePercentiles...)
	if len(qs) != 5 || qs[2] != s.Quantile(0.5) {
		t.Fatal("Quantiles inconsistent")
	}
	if math.Abs(s.Mean()-50.5) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSampleQuantilePanics(t *testing.T) {
	var s Sample
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty quantile did not panic")
			}
		}()
		s.Quantile(0.5)
	}()
	s.Add(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("p out of range did not panic")
			}
		}()
		s.Quantile(1.5)
	}()
	if s.Quantile(0.3) != 1 {
		t.Fatal("single-element quantile wrong")
	}
}

// Property: Quantile matches direct computation on the sorted slice.
func TestSampleQuantileMatchesSort(t *testing.T) {
	f := func(seed uint64, n uint8, pRaw uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 9))
		count := int(n%100) + 1
		var s Sample
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
			s.Add(vals[i])
		}
		p := float64(pRaw%1001) / 1000
		sort.Float64s(vals)
		pos := p * float64(count-1)
		lo := int(pos)
		var want float64
		if lo >= count-1 {
			want = vals[count-1]
		} else {
			frac := pos - float64(lo)
			want = vals[lo]*(1-frac) + vals[lo+1]*frac
		}
		return math.Abs(s.Quantile(p)-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func dep(class int, arrival, start, departure float64) *core.Packet {
	return &core.Packet{Class: class, Size: 500, Arrival: arrival, Start: start, Departure: departure}
}

func TestClassDelays(t *testing.T) {
	c := NewClassDelays(3)
	c.Observe(dep(0, 0, 10, 11)) // wait 10
	c.Observe(dep(0, 5, 25, 26)) // wait 20
	c.Observe(dep(1, 0, 5, 6))   // wait 5
	c.Observe(dep(2, 0, 2, 3))   // wait 2
	if c.NumClasses() != 3 {
		t.Fatal("NumClasses wrong")
	}
	if c.Count(0) != 2 || c.Mean(0) != 15 {
		t.Fatalf("class 0: count=%d mean=%g", c.Count(0), c.Mean(0))
	}
	r := c.SuccessiveRatios()
	if len(r) != 2 || r[0] != 3 || r[1] != 2.5 {
		t.Fatalf("ratios = %v, want [3 2.5]", r)
	}
	wantLW := 500.0 * (10 + 20 + 5 + 2)
	if c.SumLW() != wantLW {
		t.Fatalf("SumLW = %g, want %g", c.SumLW(), wantLW)
	}
	if c.Class(1).Mean() != 5 {
		t.Fatal("Class accessor wrong")
	}
}

func TestClassDelaysInactiveRatioZero(t *testing.T) {
	c := NewClassDelays(2)
	c.Observe(dep(0, 0, 10, 11))
	if r := c.SuccessiveRatios(); r[0] != 0 {
		t.Fatalf("ratio with inactive class = %g, want 0", r[0])
	}
}

func TestClassDelaysMerge(t *testing.T) {
	a, b := NewClassDelays(2), NewClassDelays(2)
	a.Observe(dep(0, 0, 10, 11))
	b.Observe(dep(0, 0, 20, 21))
	b.Observe(dep(1, 0, 6, 7))
	a.Merge(b)
	if a.Count(0) != 2 || a.Mean(0) != 15 || a.Count(1) != 1 {
		t.Fatal("merge wrong")
	}
	if a.SumLW() != 500.0*(10+20+6) {
		t.Fatal("merged SumLW wrong")
	}
}

func TestIntervalRDBasic(t *testing.T) {
	rd := NewIntervalRD(100, 2)
	if rd.Tau() != 100 {
		t.Fatal("Tau wrong")
	}
	// Interval [0,100): class 0 mean 20, class 1 mean 10 → R_D = 2.
	rd.Observe(dep(0, 0, 20, 30))
	rd.Observe(dep(1, 0, 10, 40))
	// Interval [100,200): class 0 mean 30, class 1 mean 10 → R_D = 3.
	rd.Observe(dep(0, 100, 130, 150))
	rd.Observe(dep(1, 140, 150, 160))
	rd.Finish()
	s := rd.RD()
	if s.Len() != 2 {
		t.Fatalf("R_D intervals = %d, want 2", s.Len())
	}
	if got := s.Quantile(0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("min R_D = %g, want 2", got)
	}
	if got := s.Quantile(1); math.Abs(got-3) > 1e-12 {
		t.Fatalf("max R_D = %g, want 3", got)
	}
}

func TestIntervalRDSkipsSingleActiveClass(t *testing.T) {
	rd := NewIntervalRD(100, 3)
	rd.Observe(dep(1, 0, 10, 50)) // only one class active in [0,100)
	rd.Observe(dep(0, 100, 120, 150))
	rd.Observe(dep(2, 100, 105, 160))
	rd.Finish()
	if rd.RD().Len() != 1 {
		t.Fatalf("R_D count = %d, want 1 (single-class interval skipped)", rd.RD().Len())
	}
}

func TestIntervalRDGapNormalization(t *testing.T) {
	// Classes 0 and 2 active (gap 2), ratio 16 → normalized per-step
	// ratio 4.
	rd := NewIntervalRD(1000, 3)
	rd.Observe(dep(0, 0, 160, 200))
	rd.Observe(dep(2, 0, 10, 300))
	rd.Finish()
	if got := rd.RD().Quantile(0.5); math.Abs(got-4) > 1e-9 {
		t.Fatalf("normalized R_D = %g, want 4", got)
	}
}

func TestIntervalRDValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewIntervalRD(0, 2) },
		func() { NewIntervalRD(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestViewICapturesWindow(t *testing.T) {
	v := NewViewI(2, 10, 100, 200)
	v.Observe(dep(0, 0, 5, 50)) // before window: ignored
	v.Observe(dep(0, 100, 110, 115))
	v.Observe(dep(0, 100, 112, 118)) // same interval [110,120)
	v.Observe(dep(1, 100, 112, 119))
	v.Observe(dep(0, 150, 160, 165)) // interval [160,170)
	v.Observe(dep(0, 200, 250, 260)) // after window: flushes + ignored
	v.Finish()
	s0 := v.Series(0)
	if len(s0) != 2 {
		t.Fatalf("class 0 series has %d points, want 2", len(s0))
	}
	if s0[0].Count != 2 || math.Abs(s0[0].AvgDelay-((110-100)+(112-100))/2.0) > 1e-12 {
		t.Fatalf("first point wrong: %+v", s0[0])
	}
	if len(v.Series(1)) != 1 {
		t.Fatal("class 1 series wrong")
	}
}

func TestViewIIWindowAndSawtooth(t *testing.T) {
	v := NewViewII(0, 1000)
	// Class 0: sawtooth 10,20,30,10,20,30 — large jumps.
	for i, d := range []float64{10, 20, 30, 10, 20, 30} {
		v.Observe(dep(0, float64(i*10), float64(i*10)+d, float64(i*10)+d+1))
	}
	// Class 1: smooth 20,20,20,20.
	for i := 0; i < 4; i++ {
		v.Observe(dep(1, float64(i*10), float64(i*10)+20, float64(i*10)+21))
	}
	v.Observe(dep(0, 2000, 2010, 2011)) // outside window
	if len(v.Points()) != 10 {
		t.Fatalf("captured %d points, want 10", len(v.Points()))
	}
	saw0 := SawtoothIndex(v.Points(), 0)
	saw1 := SawtoothIndex(v.Points(), 1)
	if !(saw0 > saw1) {
		t.Fatalf("sawtooth index: jagged=%g smooth=%g, want jagged > smooth", saw0, saw1)
	}
	if saw1 != 0 {
		t.Fatalf("constant series sawtooth = %g, want 0", saw1)
	}
	if SawtoothIndex(nil, 0) != 0 {
		t.Fatal("empty sawtooth not 0")
	}
}

func TestViewValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewViewI(2, 0, 0, 10) },
		func() { NewViewI(2, 1, 10, 5) },
		func() { NewViewII(10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
