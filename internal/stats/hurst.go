package stats

import (
	"fmt"
	"math"
)

// The paper's case for forwarding-level differentiation rests on Internet
// traffic being "bursty over a wide range of timescales" (§1, §2): with
// such traffic, provisioning-based differentiation breaks in short
// timescales. VarianceTime quantifies that premise for the generated
// workloads: for a self-similar process the variance of the m-aggregated
// rate series decays as m^(2H−2) with Hurst parameter H > 0.5, while for
// Poisson-like traffic H ≈ 0.5.

// VarianceTimePoint is one aggregation level of a variance-time plot.
type VarianceTimePoint struct {
	// M is the aggregation factor (number of base intervals pooled).
	M int
	// Variance is the sample variance of the m-aggregated, mean-
	// normalized series.
	Variance float64
}

// VarianceTime computes the variance-time plot of a count series: counts
// are the per-base-interval event counts (or byte counts); factors are
// the aggregation levels to evaluate. Each point reports the variance of
// the aggregated series normalized by the squared aggregated mean, so
// levels are comparable.
func VarianceTime(counts []float64, factors []int) ([]VarianceTimePoint, error) {
	if len(counts) < 4 {
		return nil, fmt.Errorf("stats: variance-time needs >= 4 intervals, got %d", len(counts))
	}
	var out []VarianceTimePoint
	for _, m := range factors {
		if m < 1 {
			return nil, fmt.Errorf("stats: aggregation factor %d < 1", m)
		}
		blocks := len(counts) / m
		if blocks < 2 {
			return nil, fmt.Errorf("stats: factor %d leaves %d blocks (need >= 2)", m, blocks)
		}
		var w Welford
		for b := 0; b < blocks; b++ {
			var sum float64
			for i := 0; i < m; i++ {
				sum += counts[b*m+i]
			}
			w.Add(sum)
		}
		mean := w.Mean()
		if mean == 0 {
			return nil, fmt.Errorf("stats: factor %d has zero mean", m)
		}
		out = append(out, VarianceTimePoint{M: m, Variance: w.Var() / (mean * mean)})
	}
	return out, nil
}

// HurstEstimate fits log(variance) against log(m) over a variance-time
// plot by least squares and returns H = 1 + slope/2. H ≈ 0.5 indicates
// short-range dependence; H → 1 indicates strong self-similarity.
func HurstEstimate(points []VarianceTimePoint) (float64, error) {
	if len(points) < 2 {
		return 0, fmt.Errorf("stats: Hurst fit needs >= 2 points")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(points))
	for _, p := range points {
		if p.Variance <= 0 || p.M < 1 {
			return 0, fmt.Errorf("stats: invalid variance-time point %+v", p)
		}
		x := math.Log(float64(p.M))
		y := math.Log(p.Variance)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0, fmt.Errorf("stats: degenerate aggregation levels")
	}
	slope := (n*sxy - sx*sy) / denom
	return 1 + slope/2, nil
}
