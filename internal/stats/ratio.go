package stats

import (
	"math"

	"pdds/internal/core"
)

// IntervalRD measures the short-timescale proportional differentiation of
// Eq. (2) the way §5 does for Figure 3: the run is sliced into consecutive
// intervals of length Tau; in each interval the per-class average delay of
// the packets *departing* in it is computed; the ratios of average delays
// between successive classes are averaged into a single value R_D for the
// interval; the distribution of R_D across intervals is then summarized by
// percentiles.
//
// When one or more classes are inactive in an interval (no departures) the
// paper "normalizes the ratios of average delays of the active classes":
// here each adjacent *active* pair (i, j), i < j contributes the per-step
// geometric equivalent (d_i/d_j)^(1/(j−i)), so a ratio measured across a
// gap of g class steps is comparable with single-step ratios.
//
// Observe must be called in nondecreasing departure-time order, which a
// sequential simulation guarantees.
type IntervalRD struct {
	tau     float64
	classes int
	start   float64
	started bool

	sum []float64
	cnt []uint64

	rd Sample
}

// NewIntervalRD returns a tracker with monitoring timescale tau for the
// given class count.
func NewIntervalRD(tau float64, classes int) *IntervalRD {
	if !(tau > 0) {
		panic("stats: IntervalRD tau must be > 0")
	}
	if classes < 2 {
		panic("stats: IntervalRD needs at least two classes")
	}
	return &IntervalRD{
		tau:     tau,
		classes: classes,
		sum:     make([]float64, classes),
		cnt:     make([]uint64, classes),
	}
}

// Tau returns the monitoring timescale.
func (t *IntervalRD) Tau() float64 { return t.tau }

// Observe records a departed packet.
func (t *IntervalRD) Observe(p *core.Packet) {
	if !t.started {
		t.started = true
		// Align interval boundaries to multiples of tau.
		t.start = math.Floor(p.Departure/t.tau) * t.tau
	}
	for p.Departure >= t.start+t.tau {
		t.flush()
		t.start += t.tau
	}
	t.sum[p.Class] += p.Wait()
	t.cnt[p.Class]++
}

// Finish flushes the final partial interval. Call once, after the run.
func (t *IntervalRD) Finish() {
	if t.started {
		t.flush()
	}
}

// RD returns the collected per-interval R_D values. Finish should be
// called first so the last interval is included.
func (t *IntervalRD) RD() *Sample { return &t.rd }

func (t *IntervalRD) flush() {
	// Gather active classes.
	var active []int
	for i := 0; i < t.classes; i++ {
		if t.cnt[i] > 0 && t.sum[i] > 0 {
			active = append(active, i)
		}
	}
	if len(active) >= 2 {
		var total float64
		var pairs int
		for k := 0; k+1 < len(active); k++ {
			i, j := active[k], active[k+1]
			di := t.sum[i] / float64(t.cnt[i])
			dj := t.sum[j] / float64(t.cnt[j])
			if dj <= 0 {
				continue
			}
			ratio := di / dj
			if gap := j - i; gap > 1 {
				ratio = math.Pow(ratio, 1/float64(gap))
			}
			total += ratio
			pairs++
		}
		if pairs > 0 {
			t.rd.Add(total / float64(pairs))
		}
	}
	for i := range t.sum {
		t.sum[i], t.cnt[i] = 0, 0
	}
}
