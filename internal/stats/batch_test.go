package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestBatchMeansBasics(t *testing.T) {
	b := NewBatchMeans(10)
	for i := 0; i < 95; i++ {
		b.Add(5)
	}
	if b.Batches() != 9 {
		t.Fatalf("Batches = %d, want 9 (last partial batch pending)", b.Batches())
	}
	if b.Mean() != 5 {
		t.Fatalf("Mean = %g", b.Mean())
	}
	ci, err := b.CI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if ci != 0 {
		t.Fatalf("constant series CI = %g, want 0", ci)
	}
}

func TestBatchMeansErrors(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("batch size 0 accepted")
			}
		}()
		NewBatchMeans(0)
	}()
	b := NewBatchMeans(5)
	for i := 0; i < 20; i++ {
		b.Add(float64(i))
	}
	if _, err := b.CI(0.95); err == nil {
		t.Error("CI with 4 batches accepted")
	}
	for i := 0; i < 80; i++ {
		b.Add(float64(i))
	}
	if _, err := b.CI(0.5); err == nil {
		t.Error("unsupported level accepted")
	}
}

// Coverage property: for IID normal data the 95% CI should contain the
// true mean in roughly 95% of repetitions.
func TestBatchMeansCoverage(t *testing.T) {
	const (
		trueMean = 10.0
		reps     = 300
	)
	covered := 0
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewPCG(uint64(rep), 55))
		b := NewBatchMeans(50)
		for i := 0; i < 2000; i++ {
			b.Add(trueMean + rng.NormFloat64()*3)
		}
		ci, err := b.CI(0.95)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.Mean()-trueMean) <= ci {
			covered++
		}
	}
	frac := float64(covered) / reps
	if frac < 0.88 || frac > 0.995 {
		t.Fatalf("95%% CI covered the mean in %.1f%% of reps", frac*100)
	}
}

func TestBatchMeansLevels(t *testing.T) {
	b := NewBatchMeans(10)
	rng := rand.New(rand.NewPCG(3, 3))
	for i := 0; i < 200; i++ {
		b.Add(rng.Float64())
	}
	ci90, _ := b.CI(0.90)
	ci95, _ := b.CI(0.95)
	ci99, _ := b.CI(0.99)
	if !(ci90 < ci95 && ci95 < ci99) {
		t.Fatalf("CI widths not ordered: %g %g %g", ci90, ci95, ci99)
	}
}
