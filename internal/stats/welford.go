// Package stats provides the measurement machinery of the evaluation:
// streaming moments, exact quantiles, the per-interval average-delay ratio
// metric R_D of §5 (with the paper's normalization for inactive classes),
// and time-series capture for the microscopic views of Figures 4 and 5.
package stats

import "math"

// Welford accumulates count, mean and variance in one pass with Welford's
// numerically stable recurrence.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count returns the number of samples.
func (w Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (0 with no samples).
func (w Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with <2 samples).
func (w Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest sample (0 with no samples).
func (w Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest sample (0 with no samples).
func (w Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Merge folds other into w (parallel Welford combination).
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n1, n2 := float64(w.n), float64(other.n)
	d := other.mean - w.mean
	tot := n1 + n2
	w.mean += d * n2 / tot
	w.m2 += other.m2 + d*d*n1*n2/tot
	w.n += other.n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}
