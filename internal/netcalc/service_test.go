package netcalc

import (
	"math"
	"testing"
)

const linkRate = 441.0 / 11.2 // the paper's normalized link rate, B/tu

func TestDRRServiceForm(t *testing.T) {
	quanta := []float64{1500, 3000}
	lmax := []float64{1500, 1500}
	c := DRRService(linkRate, quanta, lmax, 0)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	wantRate := linkRate * 1500 / 4500
	wantLat := (1500+1500)/linkRate + 4500*(1500+1500)/(linkRate*1500)
	if math.Abs(c.Rate-wantRate) > 1e-9 {
		t.Errorf("rate %g, want %g", c.Rate, wantRate)
	}
	if got := c.Inverse(1e-12); math.Abs(got-wantLat) > 1e-6 {
		t.Errorf("latency %g, want %g", got, wantLat)
	}
	// The guaranteed curve can never exceed the raw link service.
	for _, x := range sampleGrid(c) {
		if c.Value(x) > linkRate*x+1e-9 {
			t.Fatalf("DRR curve above link line at t=%g", x)
		}
	}
}

func TestSCFQServiceForm(t *testing.T) {
	weights := []float64{1, 2, 4, 8}
	lmax := []float64{1500, 1500, 1500, 1500}
	c := SCFQService(linkRate, weights, lmax, 3)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	wantRate := linkRate * 8 / 15
	wantLat := 1500/wantRate + 3*1500/linkRate
	if math.Abs(c.Rate-wantRate) > 1e-9 {
		t.Errorf("rate %g, want %g", c.Rate, wantRate)
	}
	if got := c.Inverse(1e-12); math.Abs(got-wantLat) > 1e-6 {
		t.Errorf("latency %g, want %g", got, wantLat)
	}
}

func TestIWRRServiceShape(t *testing.T) {
	// Two classes, weights {1, 1}: plain round robin. Worst case for
	// class 0: it just missed its slot, waits one full competitor packet,
	// then alternates lmin own / lmax other.
	c := IWRRService(linkRate, []int{1, 1}, []float64{40, 40}, []float64{1500, 1500}, 0, 3)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	dead := 2 * 1500 / linkRate // missed slot + first cycle's competitor
	if got := c.Value(dead * 0.99); got != 0 {
		t.Errorf("service %g before the first own slot, want 0", got)
	}
	if got, want := c.Value(dead+40/linkRate), 40.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("after first own packet: %g, want %g", got, want)
	}
	wantRate := linkRate * 40 / (40 + 1500)
	if math.Abs(c.Rate-wantRate) > 1e-9 {
		t.Errorf("long-run rate %g, want %g", c.Rate, wantRate)
	}
}

// TestIWRRServiceTailValid pins that the analytic linear tail never
// rises above the fully materialized staircase: the curve built with
// few rounds must lower-bound the one built with many.
func TestIWRRServiceTailValid(t *testing.T) {
	for _, tc := range []struct {
		weights []int
		class   int
	}{
		{[]int{1, 2, 4, 8}, 0},
		{[]int{1, 2, 4, 8}, 3},
		{[]int{8, 2}, 0}, // back-loaded rises: the regression case for a naive tail
		{[]int{3, 5, 7}, 1},
	} {
		lmin := []float64{40, 40, 40, 40}[:len(tc.weights)]
		lmax := []float64{1500, 1500, 1500, 1500}[:len(tc.weights)]
		short := IWRRService(linkRate, tc.weights, lmin, lmax, tc.class, 2)
		long := IWRRService(linkRate, tc.weights, lmin, lmax, tc.class, 12)
		if err := short.Check(); err != nil {
			t.Fatalf("%v class %d: %v", tc.weights, tc.class, err)
		}
		for _, x := range sampleGrid(long) {
			s, l := short.Value(x), long.Value(x)
			if s > l+1e-6*(1+l) {
				t.Fatalf("weights %v class %d: 2-round curve %g above 12-round %g at t=%g",
					tc.weights, tc.class, s, l, x)
			}
		}
	}
}

func TestIWRRServiceSingleClass(t *testing.T) {
	// One class owns the link: the curve must collapse to the full link
	// rate with no latency.
	c := IWRRService(linkRate, []int{4}, []float64{40}, []float64{1500}, 0, 2)
	for _, x := range []float64{0, 1, 10, 1000} {
		if got, want := c.Value(x), linkRate*x; math.Abs(got-want) > 1e-6*(1+want) {
			t.Fatalf("single-class IWRR(%g) = %g, want %g (%v)", x, got, want, c)
		}
	}
}

func TestIWRRServiceZeroLmin(t *testing.T) {
	c := IWRRService(linkRate, []int{1, 2}, []float64{0, 40}, []float64{1500, 1500}, 0, 2)
	if got := c.Value(1e6); got != 0 {
		t.Errorf("zero-lmin curve value %g, want 0", got)
	}
	if c.Rate != 0 {
		t.Errorf("zero-lmin curve rate %g, want 0", c.Rate)
	}
}

func TestServicePanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("zero rate", func() { DRRService(0, []float64{1}, []float64{1}, 0) })
	mustPanic("zero quantum", func() { DRRService(1, []float64{0}, []float64{1}, 0) })
	mustPanic("class range", func() { DRRService(1, []float64{1}, []float64{1}, 1) })
	mustPanic("length mismatch", func() { SCFQService(1, []float64{1, 2}, []float64{1}, 0) })
	mustPanic("zero weight", func() { SCFQService(1, []float64{0}, []float64{1}, 0) })
	mustPanic("iwrr weight", func() { IWRRService(1, []int{0}, []float64{1}, []float64{1}, 0, 2) })
	mustPanic("iwrr lmin len", func() { IWRRService(1, []int{1}, nil, []float64{1}, 0, 2) })
	mustPanic("residual rate", func() { Residual(0) })
}
