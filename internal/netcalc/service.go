package netcalc

import (
	"fmt"
	"math"
)

// DRRService returns a strict service curve for class i of a Deficit
// Round Robin scheduler with per-class quanta (bytes/round) on a link
// of rate bytes per time unit; lmax are the per-class maximum packet
// sizes. The curve is rate-latency:
//
//	R_i = rate·q_i/Q                 (Q = Σ_j q_j)
//	T_i = (l_i + L⁻)/rate + Q·(q_i + l_i)/(rate·q_i)
//
// with L⁻ = Σ_{j≠i} l_j. Derivation (conservative; see DESIGN.md §3g):
// over any interval of a busy period in which class i stays backlogged
// and completes k round-robin visits, its service is at least k·q_i−l_i
// (the unspent deficit after a visit is below one packet), every class
// is granted at most k+1 quanta plus its initial deficit (< l_j), so
// the k+1 needed for the link to emit rate·t bytes satisfies
// k+1 >= (rate·t − l_i − L⁻)/Q.
func DRRService(rate float64, quanta, lmax []float64, i int) Curve {
	checkClass(rate, len(quanta), len(lmax), i)
	var q, lcross float64
	for j, qj := range quanta {
		if !(qj > 0) {
			panic(fmt.Sprintf("netcalc: DRR quantum %g for class %d", qj, j))
		}
		q += qj
		if j != i {
			lcross += lmax[j]
		}
	}
	qi, li := quanta[i], lmax[i]
	r := rate * qi / q
	t := (li+lcross)/rate + q*(qi+li)/(rate*qi)
	return RateLatency(r, t)
}

// SCFQService returns a service curve for class i of a Self-Clocked
// Fair Queueing (SCFQ) scheduler with the given weights: SCFQ is a
// latency-rate server (Stiliadis & Varma) with
//
//	R_i = rate·w_i/W     T_i = l_i/R_i + Σ_{j≠i} l_j/rate
//
// — the class's own maximum packet at its reserved rate plus one
// maximum packet of every competitor at link speed.
func SCFQService(rate float64, weights, lmax []float64, i int) Curve {
	checkClass(rate, len(weights), len(lmax), i)
	var w, lcross float64
	for j, wj := range weights {
		if !(wj > 0) {
			panic(fmt.Sprintf("netcalc: SCFQ weight %g for class %d", wj, j))
		}
		w += wj
		if j != i {
			lcross += lmax[j]
		}
	}
	r := rate * weights[i] / w
	t := lmax[i]/r + lcross/rate
	return RateLatency(r, t)
}

// IWRRService returns a staircase strict service curve for class i of
// an Interleaved Weighted Round Robin scheduler (integer weights,
// wmax = max weight, one packet per eligible class per cycle). In the
// worst case the class misses its final opportunity of a round just as
// it becomes backlogged, then in every cycle k each competitor with
// w_j > k transmits one maximum packet before the class's own slot
// sends one minimum packet. That yields a curve alternating flat
// segments (cross traffic of each cycle at link speed) with slope-rate
// rises (one lmin[i] per eligible cycle), repeating each round — the
// shape analyzed by Tabatabaee, Le Boudec and Boyer, with every
// alignment term taken conservatively. After `rounds` materialized
// rounds the curve continues with the tight linear lower envelope of
// the periodic pattern (slope = the class's long-run guaranteed rate,
// offset = the minimum of y − slope·x over one period, joined by a flat
// segment so the result stays wide-sense increasing).
//
// A nonpositive lmin[i] yields the zero curve: no per-packet guarantee
// can be made, and the delay bound is explicitly infinite.
func IWRRService(rate float64, weights []int, lmin, lmax []float64, i int, rounds int) Curve {
	checkClass(rate, len(weights), len(lmax), i)
	if len(lmin) != len(weights) {
		panic("netcalc: lmin length mismatch")
	}
	for j, wj := range weights {
		if wj < 1 {
			panic(fmt.Sprintf("netcalc: IWRR weight %d for class %d", wj, j))
		}
	}
	li := lmin[i]
	if !(li > 0) {
		return Zero()
	}
	if rounds < 1 {
		rounds = 1
	}
	wi := weights[i]
	wmax := 0
	for _, w := range weights {
		if w > wmax {
			wmax = w
		}
	}
	// cross[k]: bytes every competitor eligible in cycle k may send
	// before class i's slot.
	cross := make([]float64, wmax)
	for k := 0; k < wmax; k++ {
		for j, wj := range weights {
			if j != i && wj > k {
				cross[k] += lmax[j]
			}
		}
	}
	// Worst-case initial dead time: the tail of the round whose last
	// eligible slot (cycle wi−1) was just missed.
	var initial float64
	for k := wi - 1; k < wmax; k++ {
		initial += cross[k]
	}

	b := builder{rate: rate}
	b.flat(initial)
	periodStart := len(b.x) - 1 // the periodic pattern begins here
	for r := 0; r < rounds; r++ {
		for k := 0; k < wmax; k++ {
			b.flat(cross[k])
			if k < wi {
				b.rise(li)
			}
		}
	}
	// Tight linear tail: slope is the long-run guaranteed rate; the
	// offset keeps the line under the periodic pattern everywhere
	// (minimum of y − slope·x over one period, evaluated at the
	// materialized breakpoints — the minimum of a piecewise-linear
	// function is at a breakpoint). A flat joining segment preserves
	// monotonicity and stays below the (nondecreasing) true curve.
	roundBytes := float64(wi) * li
	for j, wj := range weights {
		if j != i {
			roundBytes += float64(wj) * lmax[j]
		}
	}
	slope := rate * float64(wi) * li / roundBytes
	xEnd, yEnd := b.x[len(b.x)-1], b.y[len(b.y)-1]
	offset := math.Inf(1)
	for p := periodStart; p < len(b.x); p++ {
		if o := b.y[p] - slope*b.x[p]; o < offset {
			offset = o
		}
	}
	if meet := (yEnd - offset) / slope; meet > xEnd {
		b.x = append(b.x, meet)
		b.y = append(b.y, yEnd)
	}
	return Curve{X: b.x, Y: b.y, Rate: slope}.simplify()
}

// builder accumulates flat and slope-rate segments in the time domain.
type builder struct {
	rate float64
	x, y []float64
}

func (b *builder) last() (float64, float64) {
	if len(b.x) == 0 {
		b.x, b.y = []float64{0}, []float64{0}
	}
	return b.x[len(b.x)-1], b.y[len(b.y)-1]
}

// flat appends a zero-slope segment covering `bytes` of link output.
func (b *builder) flat(bytes float64) {
	x, y := b.last()
	if bytes <= 0 {
		return
	}
	b.x = append(b.x, x+bytes/b.rate)
	b.y = append(b.y, y)
}

// rise appends a slope-rate segment delivering `bytes` of service.
func (b *builder) rise(bytes float64) {
	x, y := b.last()
	if bytes <= 0 {
		return
	}
	b.x = append(b.x, x+bytes/b.rate)
	b.y = append(b.y, y+bytes)
}

func checkClass(rate float64, n, nl, i int) {
	if !(rate > 0) {
		panic(fmt.Sprintf("netcalc: link rate %g must be > 0", rate))
	}
	if n == 0 || nl != n {
		panic(fmt.Sprintf("netcalc: %d classes with %d packet-size entries", n, nl))
	}
	if i < 0 || i >= n {
		panic(fmt.Sprintf("netcalc: class %d out of range [0,%d)", i, n))
	}
}
