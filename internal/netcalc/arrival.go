package netcalc

import "math"

// ArrivalEvent is one packet arrival observed on a class: Time is the
// arrival instant and Bytes the packet size.
type ArrivalEvent struct {
	Time  float64
	Bytes float64
}

// BucketBurst returns the smallest burst b such that the token bucket
// (b, rate) upper-bounds the observed arrivals: for every window
// (s, t], cumBytes(t) − cumBytes(s) <= b + rate·(t−s). Computed in one
// pass as max_k [P_k − rate·t_k − min_{j<=k} (P_{j−1} − rate·t_j)],
// where P_k is the cumulative byte count including packet k: the
// tightest window ending at k opens just before the arrival j that
// minimizes the shifted prefix. An empty trace needs no burst.
//
// The arrival instant itself is included in the window (a packet's
// whole size counts as instantaneous), matching the α(0)=b token-bucket
// convention used by TokenBucket.
func BucketBurst(events []ArrivalEvent, rate float64) float64 {
	var burst, cum float64
	minOpen := math.Inf(1) // min over j of P_{j-1} − rate·t_j
	for _, e := range events {
		if open := cum - rate*e.Time; open < minOpen {
			minOpen = open
		}
		cum += e.Bytes
		if b := cum - rate*e.Time - minOpen; b > burst {
			burst = b
		}
	}
	return burst
}

// BestBucketBound sweeps candidate token-bucket rates for the observed
// arrivals, computes the delay bound against the service curve for each
// valid envelope, and returns the smallest bound together with the
// envelope that achieved it. Every (rate, BucketBurst(rate)) pair is a
// valid arrival curve for the trace, so the minimum over the sweep is a
// valid bound; sweeping matters because a low rate shrinks the envelope
// tail while inflating the burst, and vice versa.
//
// The sweep covers rate 0 (pure burst: total bytes as an envelope,
// which always yields a finite bound against any nonzero service
// curve), the long-run average rate of the trace, and geometric steps
// between the average and the service curve's tail rate. Returns
// (+Inf, Zero) when events is empty-bounded by nothing — an empty
// trace yields bound 0.
func BestBucketBound(events []ArrivalEvent, service Curve) (bound float64, envelope Curve) {
	if len(events) == 0 {
		return 0, Zero()
	}
	var total float64
	for _, e := range events {
		total += e.Bytes
	}
	span := events[len(events)-1].Time - events[0].Time
	avg := 0.0
	if span > 0 {
		avg = total / span
	}

	cands := []float64{0, avg}
	// Geometric interpolation between the average arrival rate and the
	// service tail rate: these are the regimes where the h(α,β) optimum
	// moves. Endpoints slightly inside avoid degenerate equal-rate fits.
	if service.Rate > 0 && service.Rate != avg {
		lo, hi := avg, service.Rate
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo <= 0 {
			lo = hi / 64
		}
		const steps = 12
		for s := 0; s <= steps; s++ {
			cands = append(cands, lo*math.Pow(hi/lo, float64(s)/steps))
		}
	}

	bound, envelope = math.Inf(1), Zero()
	for _, r := range cands {
		if r < 0 || math.IsInf(r, 0) || math.IsNaN(r) {
			continue
		}
		env := TokenBucket(BucketBurst(events, r), r)
		if d := HorizontalDeviation(env, service); d < bound {
			bound, envelope = d, env
		}
	}
	return bound, envelope
}
