package netcalc

import (
	"math"
	"math/rand"
	"testing"
)

// randCurve builds a random valid curve: a handful of breakpoints with
// nondecreasing values and a nonnegative final rate.
func randCurve(r *rand.Rand) Curve {
	n := 1 + r.Intn(5)
	c := Curve{X: make([]float64, n), Y: make([]float64, n), Rate: float64(r.Intn(8))}
	x, y := 0.0, float64(r.Intn(10))
	for i := 0; i < n; i++ {
		c.X[i], c.Y[i] = x, y
		x += 0.25 + 4*r.Float64()
		y += 5 * r.Float64() * float64(r.Intn(2))
	}
	if err := c.Check(); err != nil {
		panic(err)
	}
	return c
}

// sampleGrid returns evaluation points covering both curves' breakpoint
// ranges plus their joint tail.
func sampleGrid(cs ...Curve) []float64 {
	maxX := 1.0
	for _, c := range cs {
		if last := c.X[len(c.X)-1]; last > maxX {
			maxX = last
		}
	}
	var ts []float64
	for i := 0; i <= 60; i++ {
		ts = append(ts, 2*maxX*float64(i)/60)
	}
	return ts
}

func TestConstructorsAndEval(t *testing.T) {
	tb := TokenBucket(100, 3)
	if got := tb.Value(0); got != 100 {
		t.Errorf("token bucket α(0) = %g, want 100", got)
	}
	if got := tb.Value(10); got != 130 {
		t.Errorf("token bucket α(10) = %g, want 130", got)
	}
	rl := RateLatency(5, 2)
	if got := rl.Value(1.5); got != 0 {
		t.Errorf("rate-latency β(1.5) = %g, want 0", got)
	}
	if got := rl.Value(4); got != 10 {
		t.Errorf("rate-latency β(4) = %g, want 10", got)
	}
	if got := rl.Inverse(10); got != 4 {
		t.Errorf("rate-latency β⁻¹(10) = %g, want 4", got)
	}
	if got := Zero().Value(1e9); got != 0 {
		t.Errorf("zero curve at 1e9 = %g", got)
	}
}

func TestValueInverseConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		c := randCurve(r)
		for _, x := range sampleGrid(c) {
			y := c.Value(x)
			inv := c.Inverse(y)
			if math.IsInf(inv, 1) {
				t.Fatalf("Inverse(Value(%g)) infinite for %v", x, c)
			}
			// inf{x': c(x') >= y} can only be at or before x.
			if inv > x+1e-9 {
				t.Fatalf("Inverse(%g) = %g > %g for %v", y, inv, x, c)
			}
			if got := c.Value(inv); got < y-1e-9*(1+y) {
				t.Fatalf("Value(Inverse(%g)) = %g < %g for %v", y, got, y, c)
			}
		}
	}
}

// TestConvolveCommutative: f⊗g == g⊗f (satellite: curve-algebra
// properties).
func TestConvolveCommutative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		f, g := randCurve(r), randCurve(r)
		fg, gf := Convolve(f, g), Convolve(g, f)
		for _, x := range sampleGrid(f, g) {
			a, b := fg.Value(x), gf.Value(x)
			if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
				t.Fatalf("(f⊗g)(%g)=%g != (g⊗f)(%g)=%g\nf=%v\ng=%v", x, a, x, b, f, g)
			}
		}
	}
}

func TestConvolveAssociative(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		f, g, h := randCurve(r), randCurve(r), randCurve(r)
		l := Convolve(Convolve(f, g), h)
		rr := Convolve(f, Convolve(g, h))
		for _, x := range sampleGrid(f, g, h) {
			a, b := l.Value(x), rr.Value(x)
			if math.Abs(a-b) > 1e-6*(1+math.Abs(a)) {
				t.Fatalf("((f⊗g)⊗h)(%g)=%g != (f⊗(g⊗h))(%g)=%g", x, a, x, b)
			}
		}
	}
}

// TestConvolveMatchesBruteForce cross-checks the candidate-point
// evaluation against a dense scan of the inf.
func TestConvolveMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		f, g := randCurve(r), randCurve(r)
		c := Convolve(f, g)
		for _, x := range sampleGrid(f, g) {
			grid := math.Inf(1)
			for i := 0; i <= 400; i++ {
				s := x * float64(i) / 400
				if v := f.Value(s) + g.Value(x-s); v < grid {
					grid = v
				}
			}
			got := c.Value(x)
			// The exact inf can only be at or below any sampled value.
			if got > grid+1e-9*(1+math.Abs(grid)) {
				t.Fatalf("conv(%g)=%g above sampled inf %g\nf=%v\ng=%v", x, got, grid, f, g)
			}
			// And a 400-point grid over piecewise-linear operands cannot
			// be far above the true inf.
			if grid-got > 0.2*(1+math.Abs(grid)) {
				t.Fatalf("conv(%g)=%g far below sampled inf %g (suspect)", x, got, grid)
			}
		}
	}
}

// TestDeconvolveDuality: f ≤ (f⊘g)⊗g and (f⊗g)⊘g ≤ f — the min-plus
// residuation laws (satellite: deconvolution–convolution duality).
func TestDeconvolveDuality(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		f, g := randCurve(r), randCurve(r)
		if d, ok := Deconvolve(f, g); ok {
			back := Convolve(d, g)
			for _, x := range sampleGrid(f, g) {
				if fv, bv := f.Value(x), back.Value(x); fv > bv+1e-6*(1+fv) {
					t.Fatalf("f(%g)=%g > ((f⊘g)⊗g)(%g)=%g\nf=%v\ng=%v", x, fv, x, bv, f, g)
				}
			}
		}
		conv := Convolve(f, g)
		if d, ok := Deconvolve(conv, g); ok {
			for _, x := range sampleGrid(f, g) {
				if dv, fv := d.Value(x), f.Value(x); dv > fv+1e-6*(1+fv) {
					t.Fatalf("((f⊗g)⊘g)(%g)=%g > f(%g)=%g\nf=%v\ng=%v", x, dv, x, fv, f, g)
				}
			}
		}
	}
}

// TestHorizontalDeviationClosedForm pins the textbook case: token
// bucket (b, r) through rate-latency (R, T) with r <= R has delay bound
// T + b/R.
func TestHorizontalDeviationClosedForm(t *testing.T) {
	for _, tc := range []struct {
		b, r, R, T float64
		want       float64
	}{
		{100, 3, 5, 2, 2 + 100.0/5},
		{0, 3, 5, 2, 2},
		{0, 0, 5, 0, 0},
		{550, 39.375, 39.375, 0.5, 0.5 + 550/39.375},
	} {
		got := HorizontalDeviation(TokenBucket(tc.b, tc.r), RateLatency(tc.R, tc.T))
		if math.Abs(got-tc.want) > 1e-9*(1+tc.want) {
			t.Errorf("h(tb(%g,%g), rl(%g,%g)) = %g, want %g", tc.b, tc.r, tc.R, tc.T, got, tc.want)
		}
	}
}

// TestDelayBoundMonotoneInBurst: inflating the arrival burst can never
// shrink the bound (satellite: monotonicity in burst size).
func TestDelayBoundMonotoneInBurst(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for trial := 0; trial < 200; trial++ {
		g := randCurve(r)
		rate := g.Rate * r.Float64()
		prev := -1.0
		for _, b := range []float64{0, 10, 100, 1000} {
			d := HorizontalDeviation(TokenBucket(b, rate), g)
			if math.IsNaN(d) {
				t.Fatalf("NaN bound for burst %g vs %v", b, g)
			}
			if d < prev-1e-9 {
				t.Fatalf("bound %g at burst %g below %g at smaller burst (g=%v)", d, b, prev, g)
			}
			prev = d
		}
	}
}

// TestDelayBoundMonotoneInQuantum: scaling every DRR quantum up makes
// the round coarser, so the bound can only grow (satellite:
// monotonicity in quantum).
func TestDelayBoundMonotoneInQuantum(t *testing.T) {
	const rate = 441.0 / 11.2
	lmax := []float64{1500, 1500, 1500, 1500}
	arr := TokenBucket(3000, 1.0)
	prev := -1.0
	for _, scale := range []float64{1, 2, 4, 8} {
		quanta := []float64{1500 * scale, 3000 * scale, 6000 * scale, 12000 * scale}
		d := HorizontalDeviation(arr, DRRService(rate, quanta, lmax, 1))
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("non-finite bound %g at scale %g", d, scale)
		}
		if d < prev {
			t.Fatalf("bound %g at quantum scale %g below %g at smaller scale", d, scale, prev)
		}
		prev = d
	}
}

func TestMaxPointwise(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		f, g := randCurve(r), randCurve(r)
		m := Max(f, g)
		if err := m.Check(); err != nil {
			t.Fatalf("Max invariants: %v\nf=%v\ng=%v", err, f, g)
		}
		for _, x := range sampleGrid(f, g) {
			want := math.Max(f.Value(x), g.Value(x))
			if got := m.Value(x); math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("Max(%g)=%g, want %g\nf=%v\ng=%v\nm=%v", x, got, want, f, g, m)
			}
		}
	}
}

func TestResidualClosedForm(t *testing.T) {
	// Two token-bucket cross flows on a rate-10 server: residual is
	// rate-latency with rate 10−(2+3)=5 and latency (40+60)/5=20.
	got := Residual(10, TokenBucket(40, 2), TokenBucket(60, 3))
	want := RateLatency(5, 20)
	for _, x := range sampleGrid(got, want) {
		if a, b := got.Value(x), want.Value(x); math.Abs(a-b) > 1e-9*(1+b) {
			t.Fatalf("residual(%g)=%g, want %g (%v)", x, a, b, got)
		}
	}
	// Overloaded cross traffic: no guaranteed service at all.
	over := Residual(10, TokenBucket(40, 12))
	for _, x := range []float64{0, 5, 100} {
		if v := over.Value(x); v != 0 {
			t.Fatalf("overloaded residual(%g) = %g, want 0", x, v)
		}
	}
}

// TestEdgeCaseBounds covers the degenerate-input satellite: zero burst,
// zero rate, single class, quantum below the MTU — each must yield a
// finite or explicitly infinite bound, never NaN.
func TestEdgeCaseBounds(t *testing.T) {
	const rate = 441.0 / 11.2
	service := DRRService(rate, []float64{1500, 3000}, []float64{1500, 1500}, 0)

	if d := HorizontalDeviation(TokenBucket(0, 0), service); d != 0 {
		t.Errorf("empty flow bound %g, want 0", d)
	}
	if d := HorizontalDeviation(TokenBucket(500, 0), service); math.IsNaN(d) || math.IsInf(d, 0) {
		t.Errorf("zero-rate flow bound %g, want finite", d)
	}
	if d := HorizontalDeviation(TokenBucket(500, 1), Zero()); !math.IsInf(d, 1) {
		t.Errorf("bound %g against zero service, want +Inf", d)
	}
	if d := HorizontalDeviation(TokenBucket(500, rate+1), service); !math.IsInf(d, 1) {
		t.Errorf("overload bound %g, want +Inf", d)
	}

	single := DRRService(rate, []float64{1500}, []float64{1500}, 0)
	if d := HorizontalDeviation(TokenBucket(1500, rate/2), single); math.IsNaN(d) || math.IsInf(d, 0) {
		t.Errorf("single-class bound %g, want finite", d)
	}

	// Quantum smaller than the MTU: the deficit analysis still holds,
	// the latency term just grows.
	small := DRRService(rate, []float64{100, 100}, []float64{1500, 1500}, 0)
	if d := HorizontalDeviation(TokenBucket(1500, 1), small); math.IsNaN(d) || d <= 0 {
		t.Errorf("sub-MTU quantum bound %g, want finite positive", d)
	}

	// IWRR with a nonpositive minimum packet size degrades to the zero
	// curve and an explicit +Inf bound.
	zc := IWRRService(rate, []int{1, 2}, []float64{0, 40}, []float64{1500, 1500}, 0, 2)
	if d := HorizontalDeviation(TokenBucket(500, 1), zc); !math.IsInf(d, 1) {
		t.Errorf("zero-lmin IWRR bound %g, want +Inf", d)
	}
}

func TestCheckRejectsBadCurves(t *testing.T) {
	for name, c := range map[string]Curve{
		"empty":          {},
		"nonzero-origin": {X: []float64{1}, Y: []float64{0}},
		"unsorted":       {X: []float64{0, 2, 1}, Y: []float64{0, 1, 2}},
		"decreasing":     {X: []float64{0, 1}, Y: []float64{2, 1}},
		"nan-rate":       {X: []float64{0}, Y: []float64{0}, Rate: math.NaN()},
		"negative":       {X: []float64{0}, Y: []float64{-1}},
		"inf-breakpoint": {X: []float64{0, math.Inf(1)}, Y: []float64{0, 1}},
	} {
		if err := c.Check(); err == nil {
			t.Errorf("%s: Check accepted invalid curve %v", name, c)
		}
	}
}

func TestBucketBurst(t *testing.T) {
	events := []ArrivalEvent{{0, 100}, {1, 100}, {2, 100}, {10, 400}}
	if got := BucketBurst(nil, 5); got != 0 {
		t.Errorf("empty trace burst %g, want 0", got)
	}
	if got, want := BucketBurst(events, 0), 700.0; got != want {
		t.Errorf("rate-0 burst %g, want total bytes %g", got, want)
	}
	// At a huge rate every window collapses to a single arrival instant.
	if got, want := BucketBurst(events, 1e9), 400.0; math.Abs(got-want) > 1e-3 {
		t.Errorf("high-rate burst %g, want max packet %g", got, want)
	}
	// Rate 100: the first three arrivals fit the replenishment exactly
	// after a 100-byte initial burst; the final 400-byte packet arrives
	// with the bucket full again.
	if got, want := BucketBurst(events, 100), 400.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("rate-100 burst %g, want %g", got, want)
	}

	// Validity: for any rate, the envelope must dominate every window.
	for _, rate := range []float64{0, 1, 37.5, 100, 1000} {
		b := BucketBurst(events, rate)
		for i := range events {
			var cum float64
			for j := i; j < len(events); j++ {
				cum += events[j].Bytes
				window := events[j].Time - events[i].Time
				if cum > b+rate*window+1e-9 {
					t.Fatalf("rate %g: window [%d,%d] carries %g > %g+%g·%g",
						rate, i, j, cum, b, rate, window)
				}
			}
		}
	}
}

func TestBestBucketBound(t *testing.T) {
	service := RateLatency(10, 1)
	events := []ArrivalEvent{{0, 50}, {1, 50}, {2, 50}, {3, 50}}
	bound, env := BestBucketBound(events, service)
	if math.IsInf(bound, 1) || math.IsNaN(bound) {
		t.Fatalf("bound %g, want finite", bound)
	}
	if err := env.Check(); err != nil {
		t.Fatalf("envelope invalid: %v", err)
	}
	// The returned pair must be self-consistent.
	if d := HorizontalDeviation(env, service); math.Abs(d-bound) > 1e-9*(1+bound) {
		t.Fatalf("bound %g != h(envelope, service) %g", bound, d)
	}
	// Rate 0 always participates, so even an overload-rate trace gets a
	// finite bound against a rising service curve.
	flood := []ArrivalEvent{{0, 1e6}, {0.001, 1e6}}
	if b, _ := BestBucketBound(flood, service); math.IsInf(b, 1) {
		t.Error("flood trace bound infinite despite rate-0 candidate")
	}
	if b, _ := BestBucketBound(nil, service); b != 0 {
		t.Errorf("empty trace bound %g, want 0", b)
	}
}

func TestOperationsPreserveInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		f, g := randCurve(r), randCurve(r)
		for name, c := range map[string]Curve{
			"conv": Convolve(f, g),
			"max":  Max(f, g),
		} {
			if err := c.Check(); err != nil {
				t.Fatalf("%s broke invariants: %v\nf=%v\ng=%v", name, err, f, g)
			}
		}
		if d, ok := Deconvolve(f, g); ok {
			if err := d.Check(); err != nil {
				t.Fatalf("deconv broke invariants: %v\nf=%v\ng=%v", err, f, g)
			}
		}
		if d := HorizontalDeviation(f, g); math.IsNaN(d) {
			t.Fatalf("h(f,g) is NaN\nf=%v\ng=%v", f, g)
		}
	}
}
