package netcalc

import (
	"math"
	"testing"
)

// fuzzCurve decodes a valid curve from raw fuzz bytes: each byte pair
// contributes an x-increment and a y-increment, the final byte the tail
// rate. Any input maps to a curve satisfying Check.
func fuzzCurve(data []byte) (Curve, []byte) {
	n := 1
	if len(data) > 0 {
		n += int(data[0] % 6)
		data = data[1:]
	}
	c := Curve{X: make([]float64, 0, n), Y: make([]float64, 0, n)}
	x, y := 0.0, 0.0
	for i := 0; i < n; i++ {
		var dx, dy byte = 8, 0
		if len(data) > 0 {
			dx, data = data[0], data[1:]
		}
		if len(data) > 0 {
			dy, data = data[0], data[1:]
		}
		if i == 0 {
			y = float64(dy) / 4
		} else {
			x += 0.125 + float64(dx)/16
			y += float64(dy) / 4
		}
		c.X = append(c.X, x)
		c.Y = append(c.Y, y)
	}
	if len(data) > 0 {
		c.Rate = float64(data[0]) / 8
		data = data[1:]
	}
	return c, data
}

// FuzzCurveOps drives the curve algebra with arbitrary operand pairs
// and asserts the closure properties the rest of the repo depends on:
// every operation returns a valid curve, no NaN ever escapes, and
// convolution stays commutative and dominated by both operands.
func FuzzCurveOps(f *testing.F) {
	f.Add([]byte{2, 10, 4, 20, 8, 3})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{5, 1, 200, 3, 7, 90, 250, 2, 2, 16})
	f.Add([]byte{1, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, rest := fuzzCurve(data)
		b, _ := fuzzCurve(rest)
		if err := a.Check(); err != nil {
			t.Fatalf("fuzzCurve produced invalid operand: %v", err)
		}
		if err := b.Check(); err != nil {
			t.Fatalf("fuzzCurve produced invalid operand: %v", err)
		}

		conv := Convolve(a, b)
		if err := conv.Check(); err != nil {
			t.Fatalf("Convolve broke invariants: %v\na=%v\nb=%v", err, a, b)
		}
		m := Max(a, b)
		if err := m.Check(); err != nil {
			t.Fatalf("Max broke invariants: %v\na=%v\nb=%v", err, a, b)
		}
		if d, ok := Deconvolve(a, b); ok {
			if err := d.Check(); err != nil {
				t.Fatalf("Deconvolve broke invariants: %v\na=%v\nb=%v", err, a, b)
			}
		}
		if h := HorizontalDeviation(a, b); math.IsNaN(h) || h < 0 {
			t.Fatalf("HorizontalDeviation = %g\na=%v\nb=%v", h, a, b)
		}
		res := Residual(1+a.Rate+b.Rate, a, b)
		if err := res.Check(); err != nil {
			t.Fatalf("Residual broke invariants: %v\na=%v\nb=%v", err, a, b)
		}

		rev := Convolve(b, a)
		for _, x := range sampleGrid(a, b) {
			va, vb := conv.Value(x), rev.Value(x)
			if math.Abs(va-vb) > 1e-6*(1+math.Abs(va)) {
				t.Fatalf("conv not commutative at %g: %g vs %g\na=%v\nb=%v", x, va, vb, a, b)
			}
			// f⊗g <= min(f(0)+g, f+g(0)) pointwise; in particular it is
			// dominated by each operand shifted by the other's origin.
			if lim := math.Min(a.Value(x)+b.Y[0], b.Value(x)+a.Y[0]); va > lim+1e-6*(1+lim) {
				t.Fatalf("conv(%g)=%g above operand bound %g\na=%v\nb=%v", x, va, lim, a, b)
			}
			if mv := m.Value(x); mv+1e-6*(1+mv) < math.Max(a.Value(x), b.Value(x)) {
				t.Fatalf("max(%g)=%g below operands\na=%v\nb=%v", x, mv, a, b)
			}
		}
	})
}
