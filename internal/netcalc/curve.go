// Package netcalc computes analytic worst-case delay bounds for the
// round-robin scheduler family (DRR, WFQ/SCFQ, IWRR) using network
// calculus: token-bucket arrival curves, rate-latency and staircase
// service curves, and the min-plus operations (convolution,
// deconvolution, horizontal deviation) that turn the two into a
// certified per-class delay bound.
//
// The package is the repo's third verification axis (after the exact
// brute-force oracles and the committed golden traces, see
// internal/conformance): instead of checking what a scheduler *did*, it
// bounds what the scheduler could ever do, so a conformance scenario's
// simulated worst-case delay can be asserted against a guarantee rather
// than a observation. The service curves follow the network-calculus
// analyses referenced in PAPERS.md — Tabatabaee/Le Boudec/Boyer's
// staircase strict service curve for IWRR, the classic deficit-bounded
// derivation for DRR, and the latency-rate characterization of SCFQ —
// with every latency term taken conservatively (see DESIGN.md §3g for
// the exact forms and their tightness caveats).
//
// All curves are wide-sense-increasing continuous piecewise-linear
// functions f: [0,∞) → [0,∞) represented by finitely many breakpoints
// plus a final slope, which is closed under every operation used here.
package netcalc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Curve is a wide-sense-increasing, continuous, piecewise-linear
// function on [0, ∞): the graph passes through the breakpoints
// (X[i], Y[i]) with linear interpolation in between, and continues with
// slope Rate after the last breakpoint. Invariants (checked by Check):
// X[0] == 0, X strictly increasing, Y nondecreasing, Rate >= 0, and no
// NaN/Inf anywhere.
//
// Arrival curves bound traffic (α(t) >= bytes arriving in any window of
// length t); service curves bound service (β(t) <= bytes served in any
// backlogged window of length t). Both use bytes on the y-axis and
// simulation time units on the x-axis.
type Curve struct {
	X, Y []float64
	Rate float64
}

// Zero returns the identically-zero curve (no guaranteed service, or an
// empty flow).
func Zero() Curve { return Curve{X: []float64{0}, Y: []float64{0}} }

// TokenBucket returns the arrival curve α(t) = burst + rate·t (the
// leaky-bucket envelope σ+ρt, with the standard convention α(0) =
// burst). A zero burst and rate yields the zero curve.
func TokenBucket(burst, rate float64) Curve {
	if burst < 0 || rate < 0 || math.IsNaN(burst) || math.IsNaN(rate) ||
		math.IsInf(burst, 0) || math.IsInf(rate, 0) {
		panic(fmt.Sprintf("netcalc: invalid token bucket (burst=%g, rate=%g)", burst, rate))
	}
	return Curve{X: []float64{0}, Y: []float64{burst}, Rate: rate}
}

// RateLatency returns the service curve β(t) = rate·max(0, t−latency).
func RateLatency(rate, latency float64) Curve {
	if rate < 0 || latency < 0 || math.IsNaN(rate) || math.IsNaN(latency) ||
		math.IsInf(rate, 0) || math.IsInf(latency, 0) {
		panic(fmt.Sprintf("netcalc: invalid rate-latency (rate=%g, latency=%g)", rate, latency))
	}
	if latency == 0 {
		return Curve{X: []float64{0}, Y: []float64{0}, Rate: rate}
	}
	return Curve{X: []float64{0, latency}, Y: []float64{0, 0}, Rate: rate}
}

// Check verifies the representation invariants, returning a descriptive
// error on the first breach. Every constructor and operation in this
// package maintains them; the fuzz target asserts they survive
// arbitrary compositions.
func (c Curve) Check() error {
	if len(c.X) == 0 || len(c.X) != len(c.Y) {
		return fmt.Errorf("netcalc: %d X vs %d Y breakpoints", len(c.X), len(c.Y))
	}
	if c.X[0] != 0 {
		return fmt.Errorf("netcalc: first breakpoint at x=%g, want 0", c.X[0])
	}
	if math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) || c.Rate < 0 {
		return fmt.Errorf("netcalc: final rate %g", c.Rate)
	}
	for i := range c.X {
		if math.IsNaN(c.X[i]) || math.IsInf(c.X[i], 0) || math.IsNaN(c.Y[i]) || math.IsInf(c.Y[i], 0) {
			return fmt.Errorf("netcalc: non-finite breakpoint (%g, %g)", c.X[i], c.Y[i])
		}
		if c.Y[i] < 0 {
			return fmt.Errorf("netcalc: negative value %g at x=%g", c.Y[i], c.X[i])
		}
		if i > 0 {
			if c.X[i] <= c.X[i-1] {
				return fmt.Errorf("netcalc: breakpoints not strictly increasing at x=%g", c.X[i])
			}
			if c.Y[i] < c.Y[i-1] {
				return fmt.Errorf("netcalc: decreasing value %g after %g", c.Y[i], c.Y[i-1])
			}
		}
	}
	return nil
}

// Value evaluates the curve at t (t < 0 evaluates as t = 0).
func (c Curve) Value(t float64) float64 {
	if t <= 0 {
		return c.Y[0]
	}
	n := len(c.X)
	last := n - 1
	if t >= c.X[last] {
		return c.Y[last] + c.Rate*(t-c.X[last])
	}
	// Binary search: largest i with X[i] <= t.
	i := sort.SearchFloat64s(c.X, t)
	if i < n && c.X[i] == t {
		return c.Y[i]
	}
	i-- // X[i] < t < X[i+1]
	slope := (c.Y[i+1] - c.Y[i]) / (c.X[i+1] - c.X[i])
	return c.Y[i] + slope*(t-c.X[i])
}

// Inverse returns inf{x >= 0 : c(x) >= y}, or +Inf if the curve never
// reaches y.
func (c Curve) Inverse(y float64) float64 {
	if y <= c.Y[0] {
		return 0
	}
	n := len(c.X)
	last := n - 1
	if y > c.Y[last] {
		if c.Rate <= 0 {
			return math.Inf(1)
		}
		return c.X[last] + (y-c.Y[last])/c.Rate
	}
	// Binary search: first i with Y[i] >= y. Flat stretches make Y
	// nondecreasing but not strictly, so take the first index.
	i := sort.Search(n, func(i int) bool { return c.Y[i] >= y })
	if c.Y[i] == y {
		// Walk back over an exactly-flat stretch to the infimum.
		for i > 0 && c.Y[i-1] == y {
			i--
		}
		return c.X[i]
	}
	// Y[i-1] < y < Y[i]: the connecting segment has positive slope.
	slope := (c.Y[i] - c.Y[i-1]) / (c.X[i] - c.X[i-1])
	return c.X[i-1] + (y-c.Y[i-1])/slope
}

// rebuild assembles a curve from candidate breakpoint abscissae and an
// evaluator, dropping duplicates and collinear interior points. Between
// adjacent candidates the true function may still kink (min/max of
// linear branches crossing), so each gap is bisected until the chord
// matches the evaluator; for the piecewise-concave (convolution) and
// piecewise-convex (deconvolution) gaps that arise here, a midpoint on
// the chord certifies the whole gap is linear.
func rebuild(xs []float64, rate float64, eval func(float64) float64) Curve {
	sort.Float64s(xs)
	out := Curve{Rate: rate}
	const eps = 1e-12
	var fill func(a, va, b, vb float64, depth int)
	fill = func(a, va, b, vb float64, depth int) {
		if depth == 0 || b-a <= 1e-9*(1+math.Abs(b)) {
			return
		}
		m := (a + b) / 2
		vm := eval(m)
		chord := va + (vb-va)*(m-a)/(b-a)
		if math.Abs(vm-chord) <= 1e-12*(1+math.Abs(vm)) {
			return
		}
		fill(a, va, m, vm, depth-1)
		out.X = append(out.X, m)
		out.Y = append(out.Y, vm)
		fill(m, vm, b, vb, depth-1)
	}
	for _, x := range xs {
		if x < 0 {
			continue
		}
		n := len(out.X)
		if n > 0 && x <= out.X[n-1]+eps*(1+math.Abs(out.X[n-1])) {
			continue
		}
		y := eval(x)
		if n > 0 {
			fill(out.X[n-1], out.Y[n-1], x, y, 40)
		}
		out.X = append(out.X, x)
		out.Y = append(out.Y, y)
	}
	if len(out.X) == 0 || out.X[0] != 0 {
		out.X = append([]float64{0}, out.X...)
		out.Y = append([]float64{eval(0)}, out.Y...)
	}
	// Clamp sub-epsilon rounding dips so the representation invariant
	// (Y nondecreasing) survives exact-in-math evaluations.
	for i := 1; i < len(out.Y); i++ {
		if out.Y[i] < out.Y[i-1] {
			out.Y[i] = out.Y[i-1]
		}
	}
	return out.simplify()
}

// simplify removes interior breakpoints that lie on the line through
// their neighbours (including the final-rate segment).
func (c Curve) simplify() Curve {
	n := len(c.X)
	if n <= 1 {
		return c
	}
	keepX := []float64{c.X[0]}
	keepY := []float64{c.Y[0]}
	slopeAfter := func(i int) float64 {
		if i == n-1 {
			return c.Rate
		}
		return (c.Y[i+1] - c.Y[i]) / (c.X[i+1] - c.X[i])
	}
	for i := 1; i < n; i++ {
		j := len(keepX) - 1
		in := (c.Y[i] - keepY[j]) / (c.X[i] - keepX[j])
		out := slopeAfter(i)
		if math.Abs(in-out) <= 1e-9*(1+math.Abs(in)+math.Abs(out)) {
			continue // collinear: the point carries no information
		}
		keepX = append(keepX, c.X[i])
		keepY = append(keepY, c.Y[i])
	}
	return Curve{X: keepX, Y: keepY, Rate: c.Rate}
}

// convAt evaluates the min-plus convolution (f⊗g)(t) = inf over
// 0<=s<=t of f(s)+g(t−s) exactly: for piecewise-linear f and g the map
// s ↦ f(s)+g(t−s) is piecewise linear with kinks only at breakpoints of
// f and at t minus breakpoints of g, so the infimum is attained at one
// of those finitely many candidates (or an interval end).
func convAt(f, g Curve, t float64) float64 {
	best := f.Value(0) + g.Value(t)
	try := func(s float64) {
		if s < 0 || s > t {
			return
		}
		if v := f.Value(s) + g.Value(t-s); v < best {
			best = v
		}
	}
	try(t)
	for _, x := range f.X {
		try(x)
	}
	for _, x := range g.X {
		try(t - x)
	}
	return best
}

// Convolve returns the min-plus convolution f⊗g. For piecewise-linear
// curves the result is piecewise linear with breakpoints among the
// pairwise sums of the operands' breakpoints, and its final slope is
// the smaller of the two final slopes.
func Convolve(f, g Curve) Curve {
	xs := make([]float64, 0, len(f.X)*len(g.X)+1)
	for _, a := range f.X {
		for _, b := range g.X {
			xs = append(xs, a+b)
		}
	}
	// Beyond the largest pairwise sum every minimizing branch is an
	// explicit line of slope f.Rate (rooted at a g breakpoint) or g.Rate
	// (rooted at an f breakpoint); the envelope there is the min of the
	// best line of each family, and their crossing — if it lies past the
	// sums — is the convolution's final kink.
	if f.Rate != g.Rate {
		intercept := func(p, q Curve) float64 {
			best := math.Inf(1)
			for i := range p.X {
				if v := p.Y[i] - q.Rate*p.X[i]; v < best {
					best = v
				}
			}
			l := len(q.X) - 1
			return best + q.Y[l] - q.Rate*q.X[l]
		}
		bL, bM := intercept(f, g), intercept(g, f) // slopes g.Rate, f.Rate
		if t := (bM - bL) / (g.Rate - f.Rate); !math.IsNaN(t) && !math.IsInf(t, 0) {
			if t > f.X[len(f.X)-1]+g.X[len(g.X)-1] {
				xs = append(xs, t)
			}
		}
	}
	return rebuild(xs, math.Min(f.Rate, g.Rate), func(t float64) float64 {
		return convAt(f, g, t)
	})
}

// deconvAt evaluates the min-plus deconvolution (f⊘g)(t) = sup over
// u>=0 of f(t+u)−g(u); +Inf when f outruns g (f.Rate > g.Rate). The
// supremum is attained at a breakpoint of g, at a breakpoint of f
// shifted by t, or at u=0, because beyond every breakpoint the slope is
// f.Rate−g.Rate <= 0.
func deconvAt(f, g Curve, t float64) float64 {
	if f.Rate > g.Rate {
		return math.Inf(1)
	}
	best := f.Value(t) - g.Value(0)
	try := func(u float64) {
		if u < 0 {
			return
		}
		if v := f.Value(t+u) - g.Value(u); v > best {
			best = v
		}
	}
	for _, x := range g.X {
		try(x)
	}
	for _, x := range f.X {
		try(x - t)
	}
	// Cover the joint tail explicitly (slope there is <= 0, so the sup
	// over the tail is its left endpoint).
	fl, gl := f.X[len(f.X)-1], g.X[len(g.X)-1]
	try(math.Max(gl, fl-t))
	return best
}

// Deconvolve returns the min-plus deconvolution f⊘g (the tightest
// arrival curve for the output of a system with input envelope f and
// service curve g). It returns ok=false when the result is infinite
// (f.Rate > g.Rate).
func Deconvolve(f, g Curve) (Curve, bool) {
	if f.Rate > g.Rate {
		return Curve{}, false
	}
	xs := []float64{0}
	for _, a := range f.X {
		for _, b := range g.X {
			if d := a - b; d > 0 {
				xs = append(xs, d)
			}
		}
		xs = append(xs, a)
	}
	out := rebuild(xs, f.Rate, func(t float64) float64 {
		return deconvAt(f, g, t)
	})
	// Deconvolution of nonnegative curves can dip below zero only if f
	// starts above g everywhere relevant — clamp defensively for the
	// representation invariant.
	for i, y := range out.Y {
		if y < 0 {
			out.Y[i] = 0
		}
	}
	return out, true
}

// inverseStrict returns inf{x >= 0 : c(x) > y} — the upper
// pseudo-inverse, i.e. where the curve leaves the level y. It is +Inf
// when the curve never exceeds y.
func (c Curve) inverseStrict(y float64) float64 {
	if y < c.Y[0] {
		return 0
	}
	n := len(c.X)
	last := n - 1
	if y >= c.Y[last] {
		if c.Rate <= 0 {
			return math.Inf(1)
		}
		return c.X[last] + (y-c.Y[last])/c.Rate
	}
	// First i with Y[i] > y: the segment (i-1, i) rises through y.
	i := sort.Search(n, func(i int) bool { return c.Y[i] > y })
	slope := (c.Y[i] - c.Y[i-1]) / (c.X[i] - c.X[i-1])
	return c.X[i-1] + (y-c.Y[i-1])/slope
}

// HorizontalDeviation returns h(f, g) = sup over t>=0 of
// inf{d >= 0 : f(t) <= g(t+d)} — the worst-case virtual delay of a FIFO
// flow with arrival curve f through a system with service curve g. It
// returns +Inf when the backlog can grow without bound (f eventually
// above g forever).
//
// The sup is computed in the level domain: writing y = f(t), the
// deviation equals sup_y [g⁻¹(y) − f⁻¹(y)] over the levels f attains,
// which is piecewise linear in y with kinks only at the breakpoint
// levels of f and g — except that g⁻¹ jumps where g has a flat stretch
// (its latency period first of all), so each candidate level is
// evaluated from below with the lower pseudo-inverses AND from above
// with the strict ones, capturing the one-sided suprema at the jumps.
// The tail beyond the last level has slope 1/g.Rate − 1/f.Rate <= 0
// whenever the first guard passes, so the candidate levels cover it.
func HorizontalDeviation(f, g Curve) float64 {
	if f.Rate > g.Rate {
		return math.Inf(1)
	}
	fmax := math.Inf(1) // sup of f over [0, ∞)
	if f.Rate == 0 {
		fmax = f.Y[len(f.Y)-1]
	}
	levels := append(append([]float64(nil), f.Y...), g.Y...)
	dev := 0.0
	for _, y := range levels {
		if y > fmax {
			continue // never attained by f: irrelevant to its delay
		}
		gi := g.Inverse(y)
		if math.IsInf(gi, 1) {
			return math.Inf(1)
		}
		if d := gi - f.Inverse(y); d > dev {
			dev = d
		}
		// One-sided limit from above: levels y⁺ just over a flat stretch.
		fs := f.inverseStrict(y)
		if math.IsInf(fs, 1) {
			continue // y is f's ceiling: no level above is attained
		}
		gs := g.inverseStrict(y)
		if math.IsInf(gs, 1) {
			return math.Inf(1) // f exceeds y, g never does
		}
		if d := gs - fs; d > dev {
			dev = d
		}
	}
	return dev
}

// Max returns the pointwise maximum of two curves. The maximum of two
// strict service curves for the same class is again a strict service
// curve, which is how the family-specific round-robin curve and the
// generic blind-multiplexing residual are combined.
func Max(f, g Curve) Curve {
	xs := append(append([]float64(nil), f.X...), g.X...)
	// Segment crossings add breakpoints not present in either operand:
	// scan the merged grid and solve each sign change, including one in
	// the joint tail.
	sort.Float64s(xs)
	diff := func(t float64) float64 { return f.Value(t) - g.Value(t) }
	var cross []float64
	for i := 0; i+1 < len(xs); i++ {
		a, b := xs[i], xs[i+1]
		if a == b {
			continue
		}
		da, db := diff(a), diff(b)
		if (da < 0 && db > 0) || (da > 0 && db < 0) {
			cross = append(cross, a+(b-a)*da/(da-db))
		}
	}
	last := xs[len(xs)-1]
	if d, dr := diff(last), f.Rate-g.Rate; d != 0 && dr != 0 && (d < 0) != (dr < 0) {
		cross = append(cross, last-d/dr)
	}
	xs = append(xs, cross...)
	return rebuild(xs, math.Max(f.Rate, g.Rate), func(t float64) float64 {
		return math.Max(f.Value(t), g.Value(t))
	})
}

// Residual returns the blind-multiplexing residual service curve for a
// class sharing a constant-rate work-conserving server with cross
// traffic bounded by the given arrival curves:
//
//	β_i(t) = [c·t − Σ_j α_j(t)]⁺_↑
//
// (positive part, then nondecreasing closure). The bound holds for ANY
// work-conserving scheduling among the classes — it encodes only that
// the server runs at rate c whenever backlogged and that cross traffic
// is envelope-bounded — so it can be maxed with the family-specific
// round-robin curves, and often dominates them when the cross load is
// moderate.
func Residual(rate float64, cross ...Curve) Curve {
	if !(rate > 0) {
		panic(fmt.Sprintf("netcalc: residual with rate %g", rate))
	}
	// raw(t) = rate·t − Σ cross_j(t): piecewise linear on the union of
	// the cross breakpoints, possibly decreasing and negative.
	var xs []float64
	tailRate := rate
	for _, a := range cross {
		xs = append(xs, a.X...)
		tailRate -= a.Rate
	}
	if len(xs) == 0 {
		xs = []float64{0}
	}
	raw := func(t float64) float64 {
		v := rate * t
		for _, a := range cross {
			v -= a.Value(t)
		}
		return v
	}
	// Nondecreasing closure sup_{s<=t} raw(s)⁺ of a piecewise-linear
	// function: the running maximum over breakpoints, with a crossing
	// breakpoint wherever a rising segment overtakes the running max.
	sort.Float64s(xs)
	runmax := math.Max(0, raw(0))
	outX := []float64{0}
	outY := []float64{runmax}
	push := func(x, y float64) {
		n := len(outX) - 1
		if x <= outX[n] {
			return
		}
		outX = append(outX, x)
		outY = append(outY, y)
	}
	for i := 0; i+1 < len(xs); i++ {
		a, b := xs[i], xs[i+1]
		if a == b {
			continue
		}
		va, vb := raw(a), raw(b)
		if vb <= runmax {
			push(b, runmax)
			continue
		}
		if va < runmax {
			// Rising segment crosses the running max inside (a, b).
			push(a+(b-a)*(runmax-va)/(vb-va), runmax)
		}
		runmax = vb
		push(b, runmax)
	}
	// Tail beyond the last breakpoint: slope tailRate forever.
	lastX := xs[len(xs)-1]
	if tailRate <= 0 {
		return Curve{X: outX, Y: outY, Rate: 0}.simplify()
	}
	if v := raw(lastX); v < runmax {
		// Flat until the rising tail reaches the running max.
		push(lastX+(runmax-v)/tailRate, runmax)
	}
	return Curve{X: outX, Y: outY, Rate: tailRate}.simplify()
}

func (c Curve) String() string {
	var b strings.Builder
	b.WriteString("curve{")
	for i := range c.X {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "(%.4g,%.4g)", c.X[i], c.Y[i])
	}
	fmt.Fprintf(&b, " rate=%.4g}", c.Rate)
	return b.String()
}
