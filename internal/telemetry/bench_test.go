package telemetry

import "testing"

// BenchmarkRecord measures the raw per-packet cost of the record path
// (arrival + departure with delay histogram update).
func BenchmarkRecord(b *testing.B) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		class := i & 3
		d := float64(i&1023) + 0.5
		r.Arrival(class, 500, d)
		r.Departure(class, 500, d+1, d)
	}
}

// BenchmarkRecordParallel measures contention across recording goroutines
// (the forwarder's receive and transmit loops record concurrently).
func BenchmarkRecordParallel(b *testing.B) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			class := i & 3
			d := float64(i&1023) + 0.5
			r.Arrival(class, 500, d)
			r.Departure(class, 500, d+1, d)
		}
	})
}

// BenchmarkSnapshot measures the cost of the sampling side (one full
// 4-class snapshot with ratio computation).
func BenchmarkSnapshot(b *testing.B) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	for i := 0; i < 100000; i++ {
		class := i & 3
		r.Departure(class, 500, float64(i), float64(i&255)+0.5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := r.Snapshot()
		if len(s.Ratios) != 3 {
			b.Fatal("bad snapshot")
		}
	}
}
