package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// metricsJSON is the wire shape of GET /metrics: expvar-style flat JSON,
// stable field names, derived quantiles instead of raw buckets.
type metricsJSON struct {
	UptimeSec    float64            `json:"uptime_sec"`
	Classes      []classMetricsJSON `json:"classes"`
	Ratios       []float64          `json:"delay_ratios"`
	TargetRatios []float64          `json:"target_ratios,omitempty"`
	MaxDeviation float64            `json:"max_ratio_deviation"`
}

type classMetricsJSON struct {
	Class int `json:"class"`
	// Name is omitted for unlabeled registries so their metrics encoding
	// stays byte-identical to historical output.
	Name          string  `json:"name,omitempty"`
	Arrivals      uint64  `json:"arrivals"`
	Departures    uint64  `json:"departures"`
	Drops         uint64  `json:"drops"`
	Backlog       uint64  `json:"backlog"`
	ArrivedBytes  uint64  `json:"arrived_bytes"`
	DepartedBytes uint64  `json:"departed_bytes"`
	DelayMean     float64 `json:"delay_mean"`
	DelayP50      float64 `json:"delay_p50"`
	DelayP95      float64 `json:"delay_p95"`
	DelayP99      float64 `json:"delay_p99"`
	DelayMax      float64 `json:"delay_max"`
}

func snapshotJSON(s Snapshot) metricsJSON {
	out := metricsJSON{
		UptimeSec:    s.Uptime.Seconds(),
		Ratios:       s.Ratios,
		TargetRatios: s.TargetRatios,
	}
	out.MaxDeviation, _ = s.MaxDeviation()
	for _, c := range s.Classes {
		out.Classes = append(out.Classes, classMetricsJSON{
			Class:         c.Class,
			Name:          c.Name,
			Arrivals:      c.Arrivals,
			Departures:    c.Departures,
			Drops:         c.Drops,
			Backlog:       c.Backlog(),
			ArrivedBytes:  c.ArrivedBytes,
			DepartedBytes: c.DepartedBytes,
			DelayMean:     c.Delay.Mean(),
			DelayP50:      c.Delay.Quantile(0.50),
			DelayP95:      c.Delay.Quantile(0.95),
			DelayP99:      c.Delay.Quantile(0.99),
			DelayMax:      c.Delay.Max,
		})
	}
	return out
}

// Text renders a snapshot as the human-readable metrics view.
func Text(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "uptime %.1fs\n", s.Uptime.Seconds())
	fmt.Fprintf(&b, "%-5s %10s %10s %8s %8s %12s %12s %12s %12s\n",
		"class", "arrivals", "departs", "drops", "backlog", "mean", "p50", "p95", "p99")
	for _, c := range s.Classes {
		label := fmt.Sprintf("%d", c.Class)
		if c.Name != "" {
			label = fmt.Sprintf("%d=%s", c.Class, c.Name)
		}
		fmt.Fprintf(&b, "%-5s %10d %10d %8d %8d %12.6g %12.6g %12.6g %12.6g\n",
			label, c.Arrivals, c.Departures, c.Drops, c.Backlog(),
			c.Delay.Mean(), c.Delay.Quantile(0.50), c.Delay.Quantile(0.95), c.Delay.Quantile(0.99))
	}
	for i, ratio := range s.Ratios {
		target := 0.0
		if i < len(s.TargetRatios) {
			target = s.TargetRatios[i]
		}
		fmt.Fprintf(&b, "ratio %d/%d: observed %.3f target %.3f\n", i, i+1, ratio, target)
	}
	if dev, pairs := s.MaxDeviation(); pairs > 0 {
		fmt.Fprintf(&b, "max ratio deviation: %.1f%% over %d pairs\n", dev*100, pairs)
	}
	return b.String()
}

// Handler serves reg over HTTP:
//
//	/metrics              expvar-style JSON snapshot
//	/metrics?format=text  human-readable table
//	/debug/pprof/...      net/http/pprof profiles
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		s := reg.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, Text(s))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snapshotJSON(s))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics HTTP endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for reg on addr (e.g. "127.0.0.1:0") and
// returns once the listener is bound.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listen: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
