package telemetry

import (
	"sync"
	"time"
)

// Sampler periodically snapshots a registry and hands the callback both
// the cumulative view and the interval view since the previous tick — the
// streaming form of the paper's timescale-τ ratio analysis, with τ equal
// to the sampling interval.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSampler samples reg every interval until Stop is called. fn
// receives (interval view, cumulative view) and runs on the sampler's
// goroutine.
func StartSampler(reg *Registry, interval time.Duration, fn func(window, total Snapshot)) *Sampler {
	if reg == nil || interval <= 0 || fn == nil {
		panic("telemetry: StartSampler needs a registry, positive interval and callback")
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	// Baseline before returning: every event recorded after StartSampler
	// returns is guaranteed to appear in exactly one window.
	prev := reg.Snapshot()
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				total := reg.Snapshot()
				fn(total.Sub(prev), total)
				prev = total
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Stop halts sampling and waits for the sampler goroutine to exit. Safe to
// call more than once.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
