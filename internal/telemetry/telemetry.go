// Package telemetry is the live observability layer: low-overhead,
// concurrency-safe per-class metrics usable from both the discrete-event
// simulator (internal/link, internal/network) and the real-socket UDP
// forwarder (internal/netio).
//
// The paper's central claim is that per-hop class delay *ratios* stay
// pinned to the delay differentiation parameters (DDPs) independent of
// load. The rest of this repository verifies that offline, by
// post-processing per-run statistics; this package makes the same
// quantities observable while traffic is flowing:
//
//   - Registry holds per-class atomic counters (arrivals, departures,
//     drops, bytes) and a log-linear delay histogram per class. The record
//     path is allocation-free and lock-free (a handful of atomic adds), so
//     it is safe to leave enabled on hot paths.
//
//   - Snapshot captures a consistent-enough point-in-time view, computes
//     the adjacent-class delay ratios and their deviation from the
//     configured DDP targets (the paper's R_D metric, but streaming), and
//     subtracts against an earlier snapshot to yield interval (windowed)
//     views — the live equivalent of the paper's timescale-τ analysis.
//
//   - Optional trace hooks (OnEnqueue/OnDequeue/OnDrop) sit behind a nil
//     check so an instrumented hot path costs a single predictable branch
//     when tracing is disabled.
//
//   - Handler/Serve expose a Registry over HTTP: expvar-style JSON at
//     /metrics, a human-readable text view at /metrics?format=text, and
//     net/http/pprof under /debug/pprof/.
//
// Instrumentation points pay one nil-check branch when no registry is
// attached; see BenchmarkTelemetryOverhead at the repository root for the
// measured cost of both states.
package telemetry
