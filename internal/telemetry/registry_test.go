package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryCountersAndRatios(t *testing.T) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	if got := r.TargetRatios(); len(got) != 3 || got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("target ratios %v", got)
	}
	// Class i sees mean delay 8/2^i: exact proportional differentiation.
	for class := 0; class < 4; class++ {
		for k := 0; k < 100; k++ {
			d := 8 / math.Pow(2, float64(class))
			r.Arrival(class, 500, 0)
			r.Departure(class, 500, d, d)
		}
	}
	r.Drop(1, 0)
	s := r.Snapshot()
	if s.Classes[1].Drops != 1 || s.Classes[0].Arrivals != 100 || s.Classes[0].DepartedBytes != 50000 {
		t.Fatalf("counters %+v", s.Classes[1])
	}
	for i, ratio := range s.Ratios {
		if math.Abs(ratio-2) > 1e-9 {
			t.Errorf("ratio[%d] = %g, want 2", i, ratio)
		}
	}
	dev, pairs := s.MaxDeviation()
	if pairs != 3 || dev > 1e-9 {
		t.Fatalf("deviation %g over %d pairs", dev, pairs)
	}
	if a, d, drops := s.Totals(); a != 400 || d != 400 || drops != 1 {
		t.Fatalf("totals %d %d %d", a, d, drops)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Arrival(0, 500, 0)
	r.Departure(0, 500, 1, 1)
	r.Drop(0, 1)
	if r.NumClasses() != 0 || len(r.Snapshot().Classes) != 0 || r.TargetRatios() != nil {
		t.Fatal("nil registry not inert")
	}
}

func TestRegistryOutOfRangeClassIgnored(t *testing.T) {
	r := New(2)
	r.Arrival(-1, 1, 0)
	r.Arrival(7, 1, 0)
	r.Departure(7, 1, 0, 0)
	r.Drop(-3, 0)
	if a, d, drops := r.Snapshot().Totals(); a+d+drops != 0 {
		t.Fatalf("out-of-range events recorded: %d %d %d", a, d, drops)
	}
}

func TestTraceHooks(t *testing.T) {
	r := New(2)
	var events []string
	r.OnEnqueue = func(class int, now float64) { events = append(events, fmt.Sprintf("enq c%d @%g", class, now)) }
	r.OnDequeue = func(class int, now, delay float64) {
		events = append(events, fmt.Sprintf("deq c%d @%g w%g", class, now, delay))
	}
	r.OnDrop = func(class int, now float64) { events = append(events, fmt.Sprintf("drop c%d @%g", class, now)) }
	r.Arrival(1, 100, 5)
	r.Departure(1, 100, 9, 4)
	r.Drop(0, 10)
	want := []string{"enq c1 @5", "deq c1 @9 w4", "drop c0 @10"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
}

func TestSnapshotSubWindow(t *testing.T) {
	r := NewWithSDP([]float64{1, 2})
	r.Arrival(0, 100, 0)
	r.Departure(0, 100, 4, 4)
	r.Arrival(1, 100, 0)
	r.Departure(1, 100, 2, 2)
	first := r.Snapshot()

	// Second window: ratio flips to 8/2 = 4.
	r.Arrival(0, 100, 5)
	r.Departure(0, 100, 13, 8)
	r.Arrival(1, 100, 5)
	r.Departure(1, 100, 7, 2)
	total := r.Snapshot()

	window := total.Sub(first)
	if window.Classes[0].Departures != 1 || window.Classes[0].Arrivals != 1 {
		t.Fatalf("window counters %+v", window.Classes[0])
	}
	if got := window.Ratios[0]; math.Abs(got-4) > 4*RelError {
		t.Errorf("window ratio %g, want ≈4", got)
	}
	if got := total.Ratios[0]; math.Abs(got-3) > 3*RelError {
		t.Errorf("cumulative ratio %g, want ≈3", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				class := (w + i) % 4
				r.Arrival(class, 500, float64(i))
				r.Departure(class, 500, float64(i)+1, 1)
			}
		}()
	}
	// Snapshot concurrently with recording to exercise the lock-free
	// paths under race.
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
	}
	wg.Wait()
	s := r.Snapshot()
	arrivals, departures, _ := s.Totals()
	if arrivals != workers*perW || departures != workers*perW {
		t.Fatalf("lost events: %d arrivals %d departures", arrivals, departures)
	}
}

func TestSampler(t *testing.T) {
	r := NewWithSDP([]float64{1, 2})
	var mu sync.Mutex
	var windows []Snapshot
	s := StartSampler(r, 10*time.Millisecond, func(window, total Snapshot) {
		mu.Lock()
		windows = append(windows, window)
		mu.Unlock()
	})
	r.Arrival(0, 100, 0)
	r.Departure(0, 100, 1, 1)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(windows)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler never ticked twice")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s.Stop()
	s.Stop() // idempotent
	mu.Lock()
	defer mu.Unlock()
	var total uint64
	for _, w := range windows {
		_, d, _ := w.Totals()
		total += d
	}
	if total != 1 {
		t.Fatalf("windows double-counted the departure: %d", total)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewWithSDP([]float64{1, 2})
	for k := 0; k < 10; k++ {
		r.Arrival(0, 100, 0)
		r.Departure(0, 100, 4, 4)
		r.Arrival(1, 100, 0)
		r.Departure(1, 100, 2, 2)
	}
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes []struct {
			Class      int     `json:"class"`
			Departures uint64  `json:"departures"`
			DelayMean  float64 `json:"delay_mean"`
		} `json:"classes"`
		Ratios       []float64 `json:"delay_ratios"`
		TargetRatios []float64 `json:"target_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Departures != 10 || m.Classes[1].Departures != 10 {
		t.Fatalf("metrics classes %+v", m.Classes)
	}
	if len(m.Ratios) != 1 || math.Abs(m.Ratios[0]-2) > 2*RelError {
		t.Fatalf("metrics ratios %v", m.Ratios)
	}
	if len(m.TargetRatios) != 1 || m.TargetRatios[0] != 2 {
		t.Fatalf("metrics targets %v", m.TargetRatios)
	}

	text, err := http.Get(base + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	buf := make([]byte, 4096)
	n, _ := text.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "class") || !strings.Contains(body, "ratio 0/1") {
		t.Fatalf("text view:\n%s", body)
	}

	pp, err := http.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", pp.StatusCode)
	}
}

// TestRecordPathDoesNotAllocate asserts the satellite requirement: with
// trace hooks disabled (nil), the full record path — counters plus
// histogram — performs zero allocations per packet.
func TestRecordPathDoesNotAllocate(t *testing.T) {
	r := NewWithSDP([]float64{1, 2, 4, 8})
	delay := 3.7
	if n := testing.AllocsPerRun(1000, func() {
		r.Arrival(2, 500, 0)
		r.Departure(2, 500, delay, delay)
		r.Drop(2, delay)
	}); n != 0 {
		t.Fatalf("record path allocates %v per run, want 0", n)
	}
	// A nil registry (telemetry disabled entirely) must also be free.
	var nilReg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		nilReg.Arrival(2, 500, 0)
		nilReg.Departure(2, 500, delay, delay)
	}); n != 0 {
		t.Fatalf("nil-registry path allocates %v per run, want 0", n)
	}
}
