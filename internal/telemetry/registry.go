package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ClassMetrics is the per-class instrument set: event counters plus the
// queueing-delay histogram. All fields are updated atomically.
type ClassMetrics struct {
	Arrivals      atomic.Uint64
	Departures    atomic.Uint64
	Drops         atomic.Uint64
	ArrivedBytes  atomic.Uint64
	DepartedBytes atomic.Uint64
	Delay         Histogram
}

// Registry is the root of the telemetry subsystem: one ClassMetrics per
// service class plus the DDP targets the observed ratios are judged
// against. A nil *Registry is a valid "telemetry disabled" value for every
// method, so instrumentation points can call through unconditionally or
// guard with a single nil check.
//
// Ordering contract: instrumented systems must record a packet's Arrival
// strictly before its matching Departure or Drop (the simulation engine
// does so by construction; the UDP forwarder records both under its queue
// mutex). Counter-derived backlogs (arrivals − departures − drops) are
// only meaningful under this contract — ClassSnapshot.Backlog clamps an
// underflow to 0 rather than reporting a transient lie.
type Registry struct {
	classes []ClassMetrics
	names   []string  // optional class labels, set via SetClassNames
	target  []float64 // target adjacent ratio: delay(i)/delay(i+1) = SDP[i+1]/SDP[i]
	started time.Time

	// OnEnqueue, OnDequeue and OnDrop, if non-nil, observe every event
	// after the counters update: class index, event time in the
	// caller's time base, and (for OnDequeue) the recorded queueing
	// delay. They run synchronously on the hot path — keep them cheap.
	// When nil (the default) each instrumented event costs exactly one
	// extra branch.
	OnEnqueue func(class int, now float64)
	OnDequeue func(class int, now, delay float64)
	OnDrop    func(class int, now float64)
}

// New returns a registry for n classes with no ratio targets.
func New(n int) *Registry {
	if n < 1 {
		panic(fmt.Sprintf("telemetry: class count %d must be >= 1", n))
	}
	return &Registry{classes: make([]ClassMetrics, n), started: time.Now()}
}

// NewWithSDP returns a registry whose ratio targets derive from scheduler
// differentiation parameters: the proportional model pins
// delay(i)/delay(i+1) to SDP[i+1]/SDP[i].
func NewWithSDP(sdp []float64) *Registry {
	r := New(len(sdp))
	if len(sdp) > 1 {
		r.target = make([]float64, len(sdp)-1)
		for i := 0; i+1 < len(sdp); i++ {
			if sdp[i] > 0 {
				r.target[i] = sdp[i+1] / sdp[i]
			}
		}
	}
	return r
}

// SetClassNames labels the classes (typically from a traffic-class
// config) so snapshots and the metrics endpoints identify them by name.
// No-op on a nil registry; names must cover every class.
func (r *Registry) SetClassNames(names []string) {
	if r == nil {
		return
	}
	if len(names) != len(r.classes) {
		panic(fmt.Sprintf("telemetry: %d names for %d classes", len(names), len(r.classes)))
	}
	r.names = append([]string(nil), names...)
}

// ClassNames returns the configured class labels (nil when unlabeled).
func (r *Registry) ClassNames() []string {
	if r == nil {
		return nil
	}
	return r.names
}

// NumClasses returns the class count (0 for a nil registry).
func (r *Registry) NumClasses() int {
	if r == nil {
		return 0
	}
	return len(r.classes)
}

// Class returns class i's metrics for direct inspection.
func (r *Registry) Class(i int) *ClassMetrics { return &r.classes[i] }

// TargetRatios returns the configured adjacent-class delay ratio targets
// (nil when none were configured).
func (r *Registry) TargetRatios() []float64 {
	if r == nil {
		return nil
	}
	return r.target
}

// Arrival records a packet of the given size entering class's queue.
// No-op on a nil registry or out-of-range class.
func (r *Registry) Arrival(class int, size int64, now float64) {
	if r == nil || class < 0 || class >= len(r.classes) {
		return
	}
	c := &r.classes[class]
	c.Arrivals.Add(1)
	c.ArrivedBytes.Add(uint64(size))
	if h := r.OnEnqueue; h != nil {
		h(class, now)
	}
}

// Departure records a packet leaving class's queue after waiting delay.
func (r *Registry) Departure(class int, size int64, now, delay float64) {
	if r == nil || class < 0 || class >= len(r.classes) {
		return
	}
	c := &r.classes[class]
	c.Departures.Add(1)
	c.DepartedBytes.Add(uint64(size))
	c.Delay.Record(delay)
	if h := r.OnDequeue; h != nil {
		h(class, now, delay)
	}
}

// Drop records a packet of class being dropped.
func (r *Registry) Drop(class int, now float64) {
	if r == nil || class < 0 || class >= len(r.classes) {
		return
	}
	r.classes[class].Drops.Add(1)
	if h := r.OnDrop; h != nil {
		h(class, now)
	}
}

// ClassSnapshot is a point-in-time copy of one class's metrics.
type ClassSnapshot struct {
	Class int `json:"class"`
	// Name is the class's configured label; empty (and omitted from
	// JSON) when the registry's classes are unnamed, so unlabeled
	// deployments keep their exact historical metrics encoding.
	Name          string       `json:"name,omitempty"`
	Arrivals      uint64       `json:"arrivals"`
	Departures    uint64       `json:"departures"`
	Drops         uint64       `json:"drops"`
	ArrivedBytes  uint64       `json:"arrived_bytes"`
	DepartedBytes uint64       `json:"departed_bytes"`
	Delay         HistSnapshot `json:"-"`
}

// Backlog returns the packets currently queued as implied by the
// counters: arrivals − departures − drops (0 if the counters were read
// mid-update and momentarily disagree).
func (s ClassSnapshot) Backlog() uint64 {
	out := s.Arrivals - s.Departures - s.Drops
	if out > s.Arrivals { // underflowed
		return 0
	}
	return out
}

// Snapshot is a point-in-time view of a whole registry.
type Snapshot struct {
	// Classes holds one entry per service class, index 0 = lowest.
	Classes []ClassSnapshot
	// Ratios[i] is the observed mean-delay ratio class i / class i+1
	// (the quantity the proportional model pins to DDP targets); 0 when
	// either class has no departures yet.
	Ratios []float64
	// TargetRatios echoes the configured targets (nil if none).
	TargetRatios []float64
	// Uptime is the wall time since the registry was created.
	Uptime time.Duration
}

// Snapshot captures the current state and computes the live ratio view.
// It returns a zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Classes:      make([]ClassSnapshot, len(r.classes)),
		TargetRatios: r.target,
		Uptime:       time.Since(r.started),
	}
	for i := range r.classes {
		c := &r.classes[i]
		name := ""
		if i < len(r.names) {
			name = r.names[i]
		}
		s.Classes[i] = ClassSnapshot{
			Class:         i,
			Name:          name,
			Arrivals:      c.Arrivals.Load(),
			Departures:    c.Departures.Load(),
			Drops:         c.Drops.Load(),
			ArrivedBytes:  c.ArrivedBytes.Load(),
			DepartedBytes: c.DepartedBytes.Load(),
			Delay:         c.Delay.Snapshot(),
		}
	}
	s.computeRatios()
	return s
}

// Sub returns the interval view s − prev: counters and delay
// distributions covering only the events between the two snapshots, with
// ratios recomputed over that window. This is the streaming equivalent of
// the paper's timescale-τ ratio metric R_D.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Classes:      make([]ClassSnapshot, len(s.Classes)),
		TargetRatios: s.TargetRatios,
		Uptime:       s.Uptime - prev.Uptime,
	}
	for i := range s.Classes {
		cur := s.Classes[i]
		if i < len(prev.Classes) {
			p := prev.Classes[i]
			cur.Arrivals -= p.Arrivals
			cur.Departures -= p.Departures
			cur.Drops -= p.Drops
			cur.ArrivedBytes -= p.ArrivedBytes
			cur.DepartedBytes -= p.DepartedBytes
			cur.Delay = cur.Delay.Sub(p.Delay)
		}
		out.Classes[i] = cur
	}
	out.computeRatios()
	return out
}

func (s *Snapshot) computeRatios() {
	if len(s.Classes) < 2 {
		return
	}
	s.Ratios = make([]float64, len(s.Classes)-1)
	for i := 0; i+1 < len(s.Classes); i++ {
		lo, hi := s.Classes[i].Delay, s.Classes[i+1].Delay
		if lo.Count == 0 || hi.Count == 0 || hi.Mean() == 0 {
			continue
		}
		s.Ratios[i] = lo.Mean() / hi.Mean()
	}
}

// MaxDeviation returns the largest relative deviation |ratio/target − 1|
// over adjacent class pairs where both an observed ratio and a target
// exist, and the number of such pairs. This is the single number an
// operator alerts on: 0 means the achieved spacing matches the DDPs
// exactly.
func (s Snapshot) MaxDeviation() (dev float64, pairs int) {
	for i, ratio := range s.Ratios {
		if ratio == 0 || i >= len(s.TargetRatios) || s.TargetRatios[i] == 0 {
			continue
		}
		pairs++
		d := ratio/s.TargetRatios[i] - 1
		if d < 0 {
			d = -d
		}
		if d > dev {
			dev = d
		}
	}
	return dev, pairs
}

// DecreasedFrom compares two cumulative snapshots of the same registry and
// returns a description of every counter that moved backwards (nil when
// all are monotone). Cumulative counters only ever Add, so any decrease is
// an instrumentation bug — the chaos stress harness samples snapshots
// periodically and asserts this stays empty across every perturbation.
func (s Snapshot) DecreasedFrom(prev Snapshot) []string {
	var out []string
	for i := range s.Classes {
		if i >= len(prev.Classes) {
			break
		}
		cur, p := s.Classes[i], prev.Classes[i]
		check := func(name string, now, before uint64) {
			if now < before {
				out = append(out, fmt.Sprintf("class %d %s decreased %d -> %d", i, name, before, now))
			}
		}
		check("arrivals", cur.Arrivals, p.Arrivals)
		check("departures", cur.Departures, p.Departures)
		check("drops", cur.Drops, p.Drops)
		check("arrived-bytes", cur.ArrivedBytes, p.ArrivedBytes)
		check("departed-bytes", cur.DepartedBytes, p.DepartedBytes)
		check("delay-samples", cur.Delay.Count, p.Delay.Count)
	}
	return out
}

// Totals sums the event counters over classes.
func (s Snapshot) Totals() (arrivals, departures, drops uint64) {
	for _, c := range s.Classes {
		arrivals += c.Arrivals
		departures += c.Departures
		drops += c.Drops
	}
	return
}
