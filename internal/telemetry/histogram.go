package telemetry

import (
	"math"
	"sync/atomic"
)

// The histogram uses a fixed log-linear bucket layout (HDR-histogram
// style): each power-of-two range ("octave") of the value axis is split
// into histSub equal-width linear sub-buckets. Bucket width within an
// octave is 2^(e-1)/histSub for values in [2^(e-1), 2^e), so the relative
// quantization error of any recorded value is at most 1/histSub
// (RelError); quantile estimates return bucket midpoints, halving that in
// expectation. The layout is fixed at compile time, which keeps Record
// branch-free after index computation and makes snapshots of any two
// histograms mergeable bucket-by-bucket.
const (
	histSubBits = 5
	// histSub is the number of linear sub-buckets per octave.
	histSub = 1 << histSubBits
	// histMinExp/histMaxExp bound the tracked exponent range. With
	// values in seconds this spans ~1 ns to ~4·10^9 s; with values in
	// simulation time units it comfortably covers every run in this
	// repository. Out-of-range values clamp to the edge buckets.
	histMinExp = -30
	histMaxExp = 32
	// histBuckets is the total bucket count ((32-(-30))·32 = 1984).
	histBuckets = (histMaxExp - histMinExp) * histSub
)

// RelError is the documented worst-case relative error of histogram
// quantiles versus exact order statistics, for values within the tracked
// range: one sub-bucket width relative to the bucket's lower edge.
const RelError = 1.0 / histSub

// Histogram is a fixed-layout log-linear histogram of positive float64
// values (delays). Record is allocation-free and safe for concurrent use;
// Snapshot copies the state for querying and merging. The zero value is
// ready to use.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	sum    atomicFloat // CAS-accumulated Σv for Mean
	max    atomicMax   // CAS-maintained max(v)
}

// bucketIndex maps a value to its bucket. Non-positive (and NaN) values
// clamp to bucket 0; values beyond the tracked range clamp to the edges.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac·2^exp, frac ∈ [0.5, 1)
	if exp <= histMinExp {
		return 0
	}
	if exp > histMaxExp {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * histSub)) // ∈ [0, histSub)
	return (exp-histMinExp-1)*histSub + sub
}

// bucketMid returns the midpoint of bucket i's value range.
func bucketMid(i int) float64 {
	exp := histMinExp + 1 + i/histSub
	sub := i % histSub
	lo := math.Ldexp(0.5+float64(sub)/(2*histSub), exp)
	width := math.Ldexp(1.0/(2*histSub), exp)
	return lo + width/2
}

// Record adds one observation. It performs a handful of atomic updates
// and never allocates. The observation count is carried by the bucket
// counters themselves (no separate counter), keeping the hot path to one
// bucket increment, one sum accumulation, and a max check.
func (h *Histogram) Record(v float64) {
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.max.Observe(v)
}

// Count returns the number of recorded observations (a scan over bucket
// counters — cheap relative to Snapshot, but not a single load).
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Snapshot copies the histogram state. Concurrent Records may or may not
// be included; Count is the bucket total, so quantile walks are always
// internally consistent with it.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Sum: h.sum.Load(),
		Max: h.max.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		if c != 0 {
			if s.Counts == nil {
				s.Counts = make([]uint64, histBuckets)
			}
			s.Counts[i] = c
			s.Count += c
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable and
// subtractable with snapshots of any other Histogram (the bucket layout is
// global). Counts is nil when the snapshot is empty.
type HistSnapshot struct {
	Counts []uint64
	Count  uint64
	Sum    float64
	Max    float64
}

// Mean returns the mean recorded value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the p-quantile (p ∈ [0,1]) as a bucket midpoint,
// clamped to the observed maximum. It returns 0 when the snapshot is
// empty. The estimate is within RelError of the exact order statistic for
// in-range values.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := uint64(math.Ceil(p * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			return math.Min(bucketMid(i), s.Max)
		}
	}
	return s.Max
}

// Merge folds other into s, returning the union snapshot.
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count + other.Count,
		Sum:   s.Sum + other.Sum,
		Max:   math.Max(s.Max, other.Max),
	}
	if s.Counts == nil && other.Counts == nil {
		return out
	}
	out.Counts = make([]uint64, histBuckets)
	copy(out.Counts, s.Counts)
	for i, c := range other.Counts {
		out.Counts[i] += c
	}
	return out
}

// Sub returns the interval histogram s minus an earlier snapshot prev of
// the same histogram: the distribution of values recorded between the two.
// Max carries over from s (the true interval max is not recoverable from
// cumulative state; bucket-derived quantiles remain exact for the
// interval).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Count: s.Count - min(prev.Count, s.Count),
		Sum:   s.Sum - prev.Sum,
		Max:   s.Max,
	}
	if out.Sum < 0 {
		out.Sum = 0
	}
	if s.Counts == nil {
		return out
	}
	out.Counts = make([]uint64, histBuckets)
	copy(out.Counts, s.Counts)
	for i, c := range prev.Counts {
		if out.Counts[i] >= c {
			out.Counts[i] -= c
		} else {
			out.Counts[i] = 0
		}
	}
	return out
}

// atomicFloat is a float64 accumulated with compare-and-swap.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		cur := math.Float64frombits(old)
		if a.bits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

// atomicMax tracks a running maximum of non-negative float64s. For
// non-negative values the IEEE-754 bit pattern is order-preserving as a
// uint64, so max reduces to an integer CAS loop.
type atomicMax struct{ bits atomic.Uint64 }

func (a *atomicMax) Observe(v float64) {
	if !(v > 0) {
		return
	}
	b := math.Float64bits(v)
	for {
		old := a.bits.Load()
		if old >= b {
			return
		}
		if a.bits.CompareAndSwap(old, b) {
			return
		}
	}
}

func (a *atomicMax) Load() float64 { return math.Float64frombits(a.bits.Load()) }
