package telemetry

import (
	"math"
	"testing"

	"pdds/internal/stats"
	"pdds/internal/traffic"
)

func TestBucketIndexRoundTrip(t *testing.T) {
	// Every in-range value must land in a bucket whose midpoint is
	// within RelError of it.
	for _, v := range []float64{1e-9, 1e-6, 0.001, 0.5, 0.9999, 1, 1.0001, 11.2, 441, 1e6, 1e9} {
		i := bucketIndex(v)
		mid := bucketMid(i)
		if rel := math.Abs(mid-v) / v; rel > RelError {
			t.Errorf("value %g → bucket %d mid %g: relative error %.4f > %.4f", v, i, mid, rel, RelError)
		}
	}
}

func TestBucketIndexEdges(t *testing.T) {
	for _, v := range []float64{0, -1, math.NaN(), math.Ldexp(1, histMinExp-5)} {
		if i := bucketIndex(v); i != 0 {
			t.Errorf("bucketIndex(%g) = %d, want 0", v, i)
		}
	}
	if i := bucketIndex(math.Ldexp(1, histMaxExp+5)); i != histBuckets-1 {
		t.Errorf("huge value → bucket %d, want %d", i, histBuckets-1)
	}
	// Index monotonicity across octave boundaries.
	prev := -1
	for v := 1e-6; v < 1e6; v *= 1.01 {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %g: %d < %d", v, i, prev)
		}
		prev = i
	}
}

// TestHistogramQuantilesVsExact is the documented-accuracy property test:
// recorded quantiles from the log-linear histogram must agree with
// internal/stats exact quantiles within RelError, across heavy-tailed
// (Pareto), memoryless (exponential) and degenerate (constant)
// distributions.
func TestHistogramQuantilesVsExact(t *testing.T) {
	const n = 50000
	quantiles := []float64{0.10, 0.50, 0.90, 0.95, 0.99, 1.0}
	dists := []struct {
		name string
		next func(i int) float64
	}{
		{"pareto", func(int) float64 { return 0 }},      // filled below
		{"exponential", func(int) float64 { return 0 }}, // filled below
		{"constant", func(int) float64 { return 11.2 }},
	}
	rng := traffic.NewRNG(42, 7)
	pareto := traffic.NewPareto(1.9, 11.2)
	dists[0].next = func(int) float64 { return pareto.Next(rng) }
	exp := traffic.NewExponential(11.2)
	dists[1].next = func(int) float64 { return exp.Next(rng) }

	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			var h Histogram
			var exact stats.Sample
			for i := 0; i < n; i++ {
				v := d.next(i)
				h.Record(v)
				exact.Add(v)
			}
			snap := h.Snapshot()
			if snap.Count != n {
				t.Fatalf("count = %d, want %d", snap.Count, n)
			}
			if m, em := snap.Mean(), exact.Mean(); math.Abs(m-em) > 1e-9*math.Max(1, em) {
				t.Errorf("mean %g, exact %g", m, em)
			}
			for _, q := range quantiles {
				got := snap.Quantile(q)
				want := exact.Quantile(q)
				if want == 0 {
					continue
				}
				// RelError covers bucket quantization; allow a hair
				// more for the exact quantile's interpolation
				// between order statistics.
				if rel := math.Abs(got-want) / want; rel > RelError+0.005 {
					t.Errorf("q%.2f: histogram %g, exact %g (relative error %.4f > %.4f)",
						q, got, want, rel, RelError+0.005)
				}
			}
		})
	}
}

func TestHistogramMergeAndSub(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Record(float64(i))
	}
	for i := 101; i <= 200; i++ {
		b.Record(float64(i))
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	merged := sa.Merge(sb)
	if merged.Count != 200 {
		t.Fatalf("merged count %d", merged.Count)
	}
	if med := merged.Quantile(0.5); math.Abs(med-100)/100 > RelError+0.01 {
		t.Errorf("merged median %g, want ≈100", med)
	}
	if merged.Max != 200 {
		t.Errorf("merged max %g", merged.Max)
	}

	// Sub recovers b's window from the cumulative view.
	back := merged.Sub(sa)
	if back.Count != 100 {
		t.Fatalf("sub count %d", back.Count)
	}
	if med := back.Quantile(0.5); math.Abs(med-150)/150 > RelError+0.01 {
		t.Errorf("windowed median %g, want ≈150", med)
	}

	// Subtracting from an empty snapshot stays sane.
	empty := HistSnapshot{}
	if got := empty.Sub(sa); got.Count != 0 {
		t.Errorf("empty sub count %d", got.Count)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	var h Histogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile %g", q)
	}
}
