// Package control closes the loop the paper leaves open: §3 assumes the
// operator picks DDPs offline, but the dynamics results (§5) show measured
// delay ratios drifting from the targets in moderate load and across
// class-mix shifts. The Controller here consumes telemetry delay-ratio
// windows (the streaming R_D metric), computes the deviation from the
// configured DDP targets, and emits retuned scheduler parameter vectors
// for the core.Retuner seam — multiplicatively steering the adjacent
// parameter ratios toward the point where the *measured* ratios meet the
// targets.
//
// Stability contract (see DESIGN.md §3i): a deadband makes small
// deviations produce no decision at all — an uncontrolled run and a
// controlled run with in-band telemetry are byte-identical, because the
// controller never touches the scheduler. Steps are bounded
// multiplicatively per window, parameter ratios are clamped to
// [1, MaxRatio] so the vector stays a valid nondecreasing SDP vector, and
// a post-retune cooldown (in windows) keeps the controller from chasing
// its own transient.
package control

import (
	"fmt"
	"math"

	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// Config parameterizes a Controller. The zero value of every field except
// SDP selects a sensible default.
type Config struct {
	// SDP is the operator's configured parameter vector; the DDP ratio
	// targets derive from it (target[i] = SDP[i+1]/SDP[i]) and its first
	// entry anchors the scale of every emitted vector.
	SDP []float64

	// Kind, when set, names the scheduler family the emitted vectors
	// feed. For core.KindDRR the per-window step size comes from the
	// convex quantum line search (QuantumStep) instead of the fixed
	// Gain — Mukherjee et al.'s convexity result for the quantum
	// assignment objective is what makes the 1-D search sufficient.
	Kind core.Kind

	// Gain is the multiplicative step exponent α: each out-of-band
	// adjacent ratio is corrected by (measured/target)^(−α). Negative
	// gains invert the loop (used by the falsifiability tests). Default
	// 0.5; |Gain| must be ≤ 2.
	Gain float64

	// Deadband is the hysteresis half-width: windows whose worst relative
	// ratio deviation stays within it produce no decision. Default 0.05.
	Deadband float64

	// MaxStep bounds a single window's multiplicative correction per
	// adjacent pair to [1/(1+MaxStep), 1+MaxStep]. Default 0.25.
	MaxStep float64

	// Cooldown is the number of observation windows suppressed after each
	// retune, so a decision's own transient drains from the telemetry
	// before the next one. Default 1.
	Cooldown int

	// MinDepartures is the per-class departure count both classes of a
	// pair need inside the window before that pair's ratio is trusted.
	// The controller acts on complete windows only — every adjacent pair
	// trusted — so an incomplete window is not discarded: its samples
	// stay in the open window, which keeps growing until the scarcest
	// class clears the gate. (A class idled indefinitely therefore parks
	// the controller; size MinDepartures for the thinnest class you want
	// tracked.) Default 200.
	MinDepartures uint64

	// MaxRatio caps each adjacent parameter ratio, bounding how much
	// differentiation the controller may dial in. Default 64.
	MaxRatio float64

	// MovePenalty is the λ of the quantum line-search objective
	// J(α) = (1−α)²·E + λ·α² (only used when Kind selects the search).
	// Default 0.05.
	MovePenalty float64
}

func (c Config) withDefaults() Config {
	if c.Gain == 0 {
		c.Gain = 0.5
	}
	if c.Deadband == 0 {
		c.Deadband = 0.05
	}
	if c.MaxStep == 0 {
		c.MaxStep = 0.25
	}
	if c.Cooldown == 0 {
		c.Cooldown = 1
	}
	if c.MinDepartures == 0 {
		c.MinDepartures = 200
	}
	if c.MaxRatio == 0 {
		c.MaxRatio = 64
	}
	if c.MovePenalty == 0 {
		c.MovePenalty = 0.05
	}
	return c
}

// Validate checks the configuration without defaulting zero fields.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if err := core.CheckRetuneParams(cc.SDP, len(cc.SDP)); err != nil {
		return fmt.Errorf("control: %w", err)
	}
	if len(cc.SDP) < 2 {
		return fmt.Errorf("control: need at least 2 classes to differentiate, got %d", len(cc.SDP))
	}
	if math.Abs(cc.Gain) > 2 || math.IsNaN(cc.Gain) {
		return fmt.Errorf("control: gain %g out of [-2,2]", cc.Gain)
	}
	if cc.Deadband < 0 || cc.Deadband >= 1 {
		return fmt.Errorf("control: deadband %g out of [0,1)", cc.Deadband)
	}
	if cc.MaxStep <= 0 || cc.MaxStep > 4 {
		return fmt.Errorf("control: max step %g out of (0,4]", cc.MaxStep)
	}
	if cc.Cooldown < 0 {
		return fmt.Errorf("control: cooldown %d must be >= 0", cc.Cooldown)
	}
	if cc.MaxRatio < 1 {
		return fmt.Errorf("control: max ratio %g must be >= 1", cc.MaxRatio)
	}
	if cc.MovePenalty <= 0 {
		return fmt.Errorf("control: move penalty %g must be > 0", cc.MovePenalty)
	}
	return nil
}

// Decision is one emitted retune.
type Decision struct {
	// Params is the full parameter vector to feed core.Retuner.Retune
	// (fresh copy, caller-owned).
	Params []float64
	// Alpha is the step exponent actually applied (the fixed gain, or
	// the quantum line-search optimum for DRR).
	Alpha float64
	// Deviation is the worst relative adjacent-ratio deviation
	// |measured/target − 1| that triggered the decision.
	Deviation float64
}

// Stats counts controller activity.
type Stats struct {
	// Windows is the number of Observe calls.
	Windows uint64
	// Retunes is the number of decisions emitted.
	Retunes uint64
	// Held counts windows with measurable pairs whose worst deviation
	// stayed inside the deadband.
	Held uint64
	// Starved counts incomplete windows (some pair below MinDepartures)
	// left open to keep accumulating.
	Starved uint64
	// Cooling counts windows swallowed by the post-retune cooldown.
	Cooling uint64
}

// Controller is the feedback loop. It is not safe for concurrent use; the
// chaos harness drives it from the simulation thread and the forwarder
// from its control goroutine.
type Controller struct {
	cfg     Config
	targets []float64 // DDP ratio targets from the configured SDPs
	ratios  []float64 // current adjacent parameter ratios p_i = param[i+1]/param[i]
	prev    telemetry.Snapshot
	primed  bool
	cool    int
	stats   Stats
	scratch []float64 // per-pair corrections, reused across windows
}

// New returns a controller for the given configuration.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.SDP)
	c := &Controller{
		cfg:     cfg,
		targets: make([]float64, n-1),
		ratios:  make([]float64, n-1),
		scratch: make([]float64, n-1),
	}
	for i := 0; i+1 < n; i++ {
		c.targets[i] = cfg.SDP[i+1] / cfg.SDP[i]
		c.ratios[i] = cfg.SDP[i+1] / cfg.SDP[i]
	}
	return c, nil
}

// Stats returns the activity counters.
func (c *Controller) Stats() Stats { return c.stats }

// Params returns the controller's current parameter vector (fresh copy).
func (c *Controller) Params() []float64 {
	out := make([]float64, len(c.cfg.SDP))
	c.fill(out)
	return out
}

// fill writes the vector implied by the current ratios, anchored at the
// configured SDP[0].
func (c *Controller) fill(out []float64) {
	out[0] = c.cfg.SDP[0]
	for i, r := range c.ratios {
		out[i+1] = out[i] * r
	}
}

// Observe feeds one cumulative telemetry snapshot. The first call primes
// the window base and never decides; each later call evaluates the
// interval since the last consumed snapshot (telemetry.Snapshot.Sub — the
// streaming R_D window; starved windows stay open and accumulate into the
// next call) and returns a Decision when, and only when, the
// worst trusted adjacent-ratio deviation exceeds the deadband outside a
// cooldown. When ok is false the scheduler must not be touched: that is
// the byte-identical guarantee for in-band runs.
func (c *Controller) Observe(snap telemetry.Snapshot) (d Decision, ok bool) {
	if !c.primed {
		c.prev, c.primed = snap, true
		return Decision{}, false
	}
	win := snap.Sub(c.prev)
	c.stats.Windows++

	if c.cool > 0 {
		c.cool--
		c.stats.Cooling++
		c.prev = snap
		return Decision{}, false
	}

	// Per-pair multiplicative error q_i = measured/target. The window is
	// judged only when every pair is trusted — both classes departed
	// enough packets — so a correction never skews some pairs while the
	// sparse ones sit out.
	worst, pairs := 0.0, 0
	for i := range c.targets {
		c.scratch[i] = 1
		if i >= len(win.Ratios) || win.Ratios[i] == 0 || c.targets[i] == 0 {
			continue
		}
		if win.Classes[i].Departures < c.cfg.MinDepartures ||
			win.Classes[i+1].Departures < c.cfg.MinDepartures {
			continue
		}
		q := win.Ratios[i] / c.targets[i]
		c.scratch[i] = q
		pairs++
		if dev := math.Abs(q - 1); dev > worst {
			worst = dev
		}
	}
	if pairs < len(c.targets) {
		// Starved: leave the window open so the sparse classes keep
		// accumulating departures instead of being thrown away — the
		// next Observe judges the union.
		c.stats.Starved++
		return Decision{}, false
	}
	c.prev = snap
	if worst <= c.cfg.Deadband {
		c.stats.Held++
		return Decision{}, false
	}

	// Step size: fixed gain, except DRR where the convex line search
	// picks the step from the window's squared log error.
	alpha := c.cfg.Gain
	if c.cfg.Kind == core.KindDRR {
		var e float64
		for _, q := range c.scratch {
			if q != 1 {
				l := math.Log(q)
				e += l * l
			}
		}
		step := QuantumStep(e, c.cfg.MovePenalty, math.Abs(c.cfg.Gain))
		alpha = math.Copysign(step, c.cfg.Gain)
	}

	// Apply q^(−α) per pair, bounded per window and clamped so the
	// parameter vector stays valid (each ratio ≥ 1, ≤ MaxRatio).
	lo, hi := 1/(1+c.cfg.MaxStep), 1+c.cfg.MaxStep
	for i, q := range c.scratch {
		if q == 1 {
			continue
		}
		m := math.Pow(q, -alpha)
		if m < lo {
			m = lo
		} else if m > hi {
			m = hi
		}
		r := c.ratios[i] * m
		if r < 1 {
			r = 1
		} else if r > c.cfg.MaxRatio {
			r = c.cfg.MaxRatio
		}
		c.ratios[i] = r
	}
	c.cool = c.cfg.Cooldown
	c.stats.Retunes++

	d = Decision{Params: c.Params(), Alpha: alpha, Deviation: worst}
	return d, true
}

// Apply is the single-scheduler convenience loop body: Observe, and on a
// decision push the new parameters through the core retune seam. It
// reports whether a retune happened.
func (c *Controller) Apply(s core.Scheduler, snap telemetry.Snapshot) (bool, error) {
	d, ok := c.Observe(snap)
	if !ok {
		return false, nil
	}
	if err := core.Retune(s, d.Params); err != nil {
		return false, err
	}
	return true, nil
}

// WindowError is the judged post-transient metric of the convergence
// suite: the mean absolute log deviation of measured adjacent ratios from
// their targets, over pairs where both exist, plus the pair count.
// 0 means every measured ratio sits exactly on its DDP target.
func WindowError(ratios, targets []float64) (float64, int) {
	var sum float64
	n := 0
	for i, r := range ratios {
		if r == 0 || i >= len(targets) || targets[i] == 0 {
			continue
		}
		sum += math.Abs(math.Log(r / targets[i]))
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}
