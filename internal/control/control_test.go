package control

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/telemetry"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SDP: []float64{1, 2, 4, 8}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SDP: nil},
		{SDP: []float64{1}},                        // one class
		{SDP: []float64{2, 1}},                     // decreasing
		{SDP: []float64{0, 1}},                     // nonpositive
		{SDP: []float64{1, 2}, Gain: 3},            // gain too hot
		{SDP: []float64{1, 2}, Gain: math.NaN()},   // gain NaN
		{SDP: []float64{1, 2}, Deadband: 1},        // deadband out of range
		{SDP: []float64{1, 2}, Deadband: -0.1},     //
		{SDP: []float64{1, 2}, MaxStep: 5},         // step out of range
		{SDP: []float64{1, 2}, MaxStep: -1},        //
		{SDP: []float64{1, 2}, Cooldown: -1},       //
		{SDP: []float64{1, 2}, MaxRatio: 0.5},      //
		{SDP: []float64{1, 2}, MovePenalty: -0.05}, //
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New accepted bad config %d", i)
		}
	}
}

func TestQuantumStepMatchesClosedForm(t *testing.T) {
	for _, e := range []float64{1e-4, 0.01, 0.1, 0.48, 1, 10} {
		for _, lambda := range []float64{0.01, 0.05, 0.5, 2} {
			for _, max := range []float64{0.25, 0.5, 1, 2} {
				got := QuantumStep(e, lambda, max)
				want := quantumClosedForm(e, lambda, max)
				if math.Abs(got-want) > 1e-6 {
					t.Errorf("QuantumStep(%g,%g,%g) = %.9f, closed form %.9f", e, lambda, max, got, want)
				}
			}
		}
	}
	if QuantumStep(0, 0.05, 1) != 0 || QuantumStep(-1, 0.05, 1) != 0 {
		t.Error("zero/negative error must yield zero step")
	}
	if QuantumStep(1, 0, 0.5) != 0.5 {
		t.Error("zero penalty must yield the full step")
	}
}

// window records one observation window into reg: deps departures per
// class at the given per-class delays.
func window(reg *telemetry.Registry, delays []float64, deps int) {
	for class, d := range delays {
		for k := 0; k < deps; k++ {
			reg.Departure(class, 441, 0, d)
		}
	}
}

func newTestController(t *testing.T, cfg Config) (*Controller, *telemetry.Registry) {
	t.Helper()
	if cfg.SDP == nil {
		cfg.SDP = []float64{1, 2, 4, 8}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewWithSDP(cfg.SDP)
	c.Observe(reg.Snapshot()) // prime the window base
	return c, reg
}

// In-band windows must produce no decision at all — the byte-identical
// guarantee rests on this.
func TestDeadbandHolds(t *testing.T) {
	c, reg := newTestController(t, Config{Deadband: 0.10})
	// Delays exactly on target (ratios 2,2,2), then 6% off — both inside
	// the 10% band.
	for _, delays := range [][]float64{{8, 4, 2, 1}, {8 * 1.06, 4, 2, 1}} {
		window(reg, delays, 300)
		if _, ok := c.Observe(reg.Snapshot()); ok {
			t.Fatalf("deadband breached by delays %v", delays)
		}
	}
	st := c.Stats()
	if st.Held != 2 || st.Retunes != 0 {
		t.Fatalf("stats = %+v, want 2 held, 0 retunes", st)
	}
	if got := c.Params(); !eq(got, []float64{1, 2, 4, 8}) {
		t.Fatalf("params drifted to %v with no decision", got)
	}
}

// An undershot ratio (measured < target, WTP's moderate-load signature)
// must widen the corresponding parameter ratio, and only that one.
func TestUndershootWidensRatio(t *testing.T) {
	c, reg := newTestController(t, Config{Gain: 1})
	// Pair 0 measured ratio 1.5 vs target 2; pairs 1,2 on target.
	window(reg, []float64{6, 4, 2, 1}, 300)
	d, ok := c.Observe(reg.Snapshot())
	if !ok {
		t.Fatal("25% deviation produced no decision")
	}
	if math.Abs(d.Deviation-0.25) > 1e-9 {
		t.Fatalf("deviation = %g, want 0.25", d.Deviation)
	}
	// q = 0.75, gain 1 ⇒ ratio 2/0.75 ≈ 2.667, but MaxStep 0.25 clamps
	// the factor to 1.25 ⇒ ratio 2.5.
	want := []float64{1, 2.5, 5, 10}
	if !approxEq(d.Params, want, 1e-9) {
		t.Fatalf("params = %v, want %v", d.Params, want)
	}
}

// An overshot ratio narrows, clamped at ratio 1 (the vector must stay
// nondecreasing, never inverted).
func TestOvershootNeverInverts(t *testing.T) {
	c, reg := newTestController(t, Config{SDP: []float64{1, 1.05, 1.1025, 1.157625}, Gain: 2, MaxStep: 4})
	// Massive overshoot on every pair: measured ratios 4 vs target 1.05.
	for i := 0; i < 6; i++ {
		window(reg, []float64{64, 16, 4, 1}, 300)
		c.Observe(reg.Snapshot())
		window(reg, []float64{64, 16, 4, 1}, 300) // swallow cooldown
		c.Observe(reg.Snapshot())
	}
	p := c.Params()
	for i := 0; i+1 < len(p); i++ {
		if p[i+1] < p[i] {
			t.Fatalf("params inverted: %v", p)
		}
	}
	if err := core.CheckRetuneParams(p, len(p)); err != nil {
		t.Fatalf("controller emitted an invalid vector: %v", err)
	}
}

func TestCooldownSwallowsWindows(t *testing.T) {
	c, reg := newTestController(t, Config{Cooldown: 2})
	offTarget := []float64{6, 4, 2, 1}
	window(reg, offTarget, 300)
	if _, ok := c.Observe(reg.Snapshot()); !ok {
		t.Fatal("first deviation produced no decision")
	}
	for k := 0; k < 2; k++ {
		window(reg, offTarget, 300)
		if _, ok := c.Observe(reg.Snapshot()); ok {
			t.Fatalf("cooldown window %d produced a decision", k)
		}
	}
	window(reg, offTarget, 300)
	if _, ok := c.Observe(reg.Snapshot()); !ok {
		t.Fatal("post-cooldown deviation produced no decision")
	}
	st := c.Stats()
	if st.Cooling != 2 || st.Retunes != 2 {
		t.Fatalf("stats = %+v, want 2 cooling, 2 retunes", st)
	}
}

// Starved windows (below MinDepartures) must not decide, no matter how
// wild their ratios look.
func TestStarvedWindowIgnored(t *testing.T) {
	c, reg := newTestController(t, Config{MinDepartures: 200})
	window(reg, []float64{100, 1, 1, 1}, 50)
	if _, ok := c.Observe(reg.Snapshot()); ok {
		t.Fatal("starved window produced a decision")
	}
	if st := c.Stats(); st.Starved != 1 {
		t.Fatalf("stats = %+v, want 1 starved", st)
	}
}

// The ratio caps: a runaway deviation may never push a pair ratio past
// MaxRatio, and the emitted vector always passes the seam's validation.
func TestMaxRatioCap(t *testing.T) {
	c, reg := newTestController(t, Config{Gain: 2, MaxStep: 4, MaxRatio: 16, Cooldown: 0, Deadband: 0.01})
	for i := 0; i < 40; i++ {
		window(reg, []float64{8, 4, 2, 1}, 300) // every ratio 2 vs target... widen pair 0 only
		window(reg, []float64{100, 1, 1, 1}, 300)
		if d, ok := c.Observe(reg.Snapshot()); ok {
			if err := core.CheckRetuneParams(d.Params, 4); err != nil {
				t.Fatalf("iteration %d: invalid vector %v: %v", i, d.Params, err)
			}
		}
	}
	p := c.Params()
	for i := 0; i+1 < len(p); i++ {
		if r := p[i+1] / p[i]; r > 16+1e-9 {
			t.Fatalf("pair %d ratio %g exceeds MaxRatio 16 (params %v)", i, r, p)
		}
	}
}

// The DRR path must take its step from the convex search: a marginal
// error yields a much smaller step than the same error under fixed gain.
func TestDRRStepUsesQuantumSearch(t *testing.T) {
	mk := func(kind core.Kind) float64 {
		c, reg := newTestController(t, Config{Kind: kind, Gain: 1, Deadband: 0.05})
		window(reg, []float64{6.8, 4, 2, 1}, 300) // pair-0 ratio 1.7, q = 0.85
		d, ok := c.Observe(reg.Snapshot())
		if !ok {
			t.Fatalf("%s: no decision", kind)
		}
		return d.Alpha
	}
	fixed := mk(core.KindWTP)
	searched := mk(core.KindDRR)
	if fixed != 1 {
		t.Fatalf("fixed-gain alpha = %g, want 1", fixed)
	}
	l := math.Log(0.85)
	want := quantumClosedForm(l*l, 0.05, 1)
	if math.Abs(searched-want) > 1e-6 {
		t.Fatalf("DRR alpha = %g, want closed form %g", searched, want)
	}
	if searched >= fixed {
		t.Fatalf("marginal error: searched step %g not smaller than fixed %g", searched, fixed)
	}
}

// Apply pushes a decision through the live seam and the scheduler's
// parameters actually move.
func TestApplyRetunesScheduler(t *testing.T) {
	c, reg := newTestController(t, Config{Gain: 1})
	s := core.NewWTP([]float64{1, 2, 4, 8})
	window(reg, []float64{6, 4, 2, 1}, 300)
	did, err := c.Apply(s, reg.Snapshot())
	if err != nil || !did {
		t.Fatalf("Apply = (%v, %v), want retune", did, err)
	}
	if got := s.SDP(1) / s.SDP(0); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("scheduler pair-0 ratio = %g after Apply, want 2.5", got)
	}
	// A non-retunable scheduler surfaces the seam error.
	c2, reg2 := newTestController(t, Config{Gain: 1})
	window(reg2, []float64{6, 4, 2, 1}, 300)
	if _, err := c2.Apply(core.NewFCFS(4), reg2.Snapshot()); err == nil {
		t.Fatal("Apply to FCFS did not error")
	}
}

func TestWindowError(t *testing.T) {
	targets := []float64{2, 2, 2}
	if e, n := WindowError([]float64{2, 2, 2}, targets); e != 0 || n != 3 {
		t.Fatalf("on-target error = (%g,%d), want (0,3)", e, n)
	}
	e, n := WindowError([]float64{1, 0, 4}, targets)
	if n != 2 {
		t.Fatalf("pairs = %d, want 2 (zero ratio skipped)", n)
	}
	if want := math.Ln2; math.Abs(e-want) > 1e-12 {
		t.Fatalf("error = %g, want ln 2 = %g", e, want)
	}
	if e, n := WindowError(nil, targets); e != 0 || n != 0 {
		t.Fatal("empty ratios must yield (0,0)")
	}
}

func eq(a, b []float64) bool { return approxEq(a, b, 0) }

func approxEq(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func BenchmarkControllerObserve(b *testing.B) {
	sdp := []float64{1, 2, 4, 8}
	c, err := New(Config{SDP: sdp})
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewWithSDP(sdp)
	c.Observe(reg.Snapshot())
	delays := []float64{6, 4, 2, 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		window(reg, delays, 1)
		c.Observe(reg.Snapshot())
	}
}

func BenchmarkQuantumStep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		QuantumStep(0.48, 0.05, 1)
	}
}
