package control

import "math"

// The DRR retune path picks its step size by minimizing
//
//	J(α) = (1−α)²·E + λ·α²,  α ∈ [0, αmax]
//
// where E is the window's summed squared log ratio error (the cost of
// correcting only a fraction α of it, since a full multiplicative step
// α=1 would cancel the measured error exactly if the plant were ideal)
// and λ·α² penalizes quantum movement — the anti-flap term that keeps
// marginal errors from producing large quantum swings. J is a strictly
// convex parabola, the shape Mukherjee, Saha and Tripathi establish for
// the DRR quantum-assignment objective; convexity is what licenses a 1-D
// line search instead of a global search over quantum vectors. The
// unconstrained optimum is E/(E+λ); QuantumStep finds it by golden-
// section search (kept deliberately derivative-free so the objective can
// grow non-quadratic terms later) and the tests pin the search against
// the closed form.

// goldenSectionMin minimizes a unimodal f over [lo, hi] to within tol.
func goldenSectionMin(f func(float64) float64, lo, hi, tol float64) float64 {
	const invPhi = 0.6180339887498949 // (√5 − 1)/2
	a, b := lo, hi
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 <= f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// QuantumStep returns the step size α ∈ [0, maxAlpha] minimizing the
// convex retune objective for squared log error e and move penalty
// lambda. e ≤ 0 returns 0 (nothing to correct).
func QuantumStep(e, lambda, maxAlpha float64) float64 {
	if !(e > 0) || !(maxAlpha > 0) {
		return 0
	}
	if lambda <= 0 {
		return maxAlpha
	}
	f := func(a float64) float64 {
		return (1-a)*(1-a)*e + lambda*a*a
	}
	a := goldenSectionMin(f, 0, maxAlpha, 1e-9)
	// Guard the boundaries: golden section never lands exactly on them.
	if f(0) < f(a) {
		return 0
	}
	if f(maxAlpha) < f(a) {
		return maxAlpha
	}
	return a
}

// quantumClosedForm is the analytic optimum the tests compare against.
func quantumClosedForm(e, lambda, maxAlpha float64) float64 {
	a := e / (e + lambda)
	return math.Min(a, maxAlpha)
}
