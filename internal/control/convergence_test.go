package control_test

import (
	"math"
	"testing"

	"pdds/internal/chaos"
	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/traffic"
)

// The controller convergence suite (the PR's headline): under each chaos
// timeline the post-transient ratio-window error must be strictly smaller
// with the controller than without, and an inverted-sign controller must
// make it strictly worse — the improvement is the loop's doing, not the
// workload's.
//
// The plans here are the catalog's three adaptation adversaries (load
// ramp, class-mix shift, source churn) re-cut for convergence judging:
// the perturbations land in the first half of the run so the judged tail
// is a long settled regime, and the ramp tops out at ρ=0.85 — inside the
// moderate-load band where WTP's measured ratios systematically
// undershoot the targets (the paper's §5 drift) and a controller has a
// real error to close. The catalog plans proper still run under a live
// controller in the chaos package's invariant tests.

const convergenceHorizon = 240000.0

// suitePlan builds one convergence plan by timeline name. Perturbations
// are placed at fractions of H, so a longer horizon stretches both the
// adaptation phase and the judged tail proportionally.
func suitePlan(kind core.Kind, name string, seed uint64, H float64) chaos.SimPlan {
	p := chaos.SimPlan{
		Name:    name,
		Kind:    kind,
		SDP:     []float64{1, 2, 4, 8},
		Horizon: H,
		Warmup:  0.1 * H,
		Seed:    seed,
	}
	switch name {
	case "load-ramp":
		p.Load = traffic.PaperLoad(0.60)
		p.Timeline = chaos.Timeline{
			Name:    "ramp-0.60-to-0.85",
			Actions: chaos.Ramp(0.2*H, 0.5*H, 6, 1.0, 0.85/0.60),
		}
	case "class-shift":
		p.Load = traffic.PaperLoad(0.90)
		p.Timeline = chaos.Timeline{Name: "mix-shift", Actions: []chaos.Action{
			{At: 0.4 * H, Op: chaos.OpScaleClass, Class: 0, Factor: 0.5},
			{At: 0.4 * H, Op: chaos.OpScaleClass, Class: 3, Factor: 3.0},
		}}
	case "source-churn":
		p.Load = traffic.PaperLoad(0.90)
		p.Timeline = chaos.Timeline{
			Name:    "class3-on-off",
			Actions: chaos.Toggle(3, 0.25*H, 0.1*H, 0.55*H),
		}
	default:
		panic("unknown suite plan " + name)
	}
	return p
}

// suiteController is the convergence-suite loop configuration. The
// departure gate (with the complete-window accumulation in Observe)
// means the effective window stretches until even the thinnest class
// has 100 samples, so per-window estimation noise cannot walk the
// parameters around; MaxStep 0.25 lets the widest correction the ramp
// demands (pair 2 needs roughly double its configured spacing at
// ρ=0.85) complete in a handful of retunes.
func suiteController(gain float64) *control.Config {
	return &control.Config{
		Gain:          gain,
		Deadband:      0.05,
		MaxStep:       0.25,
		MinDepartures: 100,
	}
}

const suiteInterval = 8000.0

// tailError runs the plan and returns the mean |log(ratio/target)| over
// the run's final judged window — the post-transient segment tail, after
// the last perturbation and its warm-up exclusion.
func tailError(t *testing.T, plan chaos.SimPlan) (float64, *chaos.SimResult) {
	t.Helper()
	res, err := chaos.RunSim(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("%s: %s", plan.Name, v)
	}
	if len(res.Segments) == 0 {
		t.Fatalf("%s: no segments", plan.Name)
	}
	last := res.Segments[len(res.Segments)-1]
	e, pairs := control.WindowError(last.Ratios, res.TargetRatios)
	if pairs < len(plan.SDP)-1 {
		t.Fatalf("%s: only %d/%d adjacent pairs measurable in the tail", plan.Name, pairs, len(plan.SDP)-1)
	}
	return e, res
}

func TestControllerConvergence(t *testing.T) {
	cases := []struct {
		plan string
		kind core.Kind
	}{
		{"load-ramp", core.KindWTP},
		{"class-shift", core.KindWTP},
		{"source-churn", core.KindWTP},
		{"load-ramp", core.KindHPD},
		{"class-shift", core.KindHPD},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.plan+"/"+string(tc.kind), func(t *testing.T) {
			base := suitePlan(tc.kind, tc.plan, 1311, convergenceHorizon)

			off, _ := tailError(t, base)

			on := base
			on.Control = suiteController(0.5)
			on.ControlInterval = suiteInterval
			onErr, onRes := tailError(t, on)
			if onRes.Retunes == 0 {
				t.Fatalf("controller never retuned under %s", tc.plan)
			}

			t.Logf("%s/%s: tail error off %.4f on %.4f (retunes %d, params %v)",
				tc.plan, tc.kind, off, onErr, onRes.Retunes, onRes.ControlParams)
			if !(onErr < off) {
				t.Errorf("controller did not improve the post-transient error: on %.4f >= off %.4f", onErr, off)
			}
		})
	}
}

// Falsifiability: flipping the sign of the gain must push the measured
// ratios away from the targets, ending with a strictly larger
// post-transient error than no controller at all. If this test ever
// passes with the sign flipped back, the convergence suite is measuring
// workload drift, not the control loop.
func TestInvertedControllerDiverges(t *testing.T) {
	for _, name := range []string{"load-ramp", "class-shift"} {
		name := name
		t.Run(name, func(t *testing.T) {
			base := suitePlan(core.KindWTP, name, 1311, convergenceHorizon)
			off, _ := tailError(t, base)

			inv := base
			inv.Control = suiteController(-0.5)
			inv.ControlInterval = suiteInterval
			res, err := chaos.RunSim(inv)
			if err != nil {
				t.Fatal(err)
			}
			if res.Retunes == 0 {
				t.Fatalf("inverted controller never retuned under %s", name)
			}
			last := res.Segments[len(res.Segments)-1]
			invErr, pairs := control.WindowError(last.Ratios, res.TargetRatios)
			if pairs == 0 {
				t.Fatalf("%s: no measurable tail pairs", name)
			}
			t.Logf("%s: tail error off %.4f inverted %.4f (retunes %d)", name, off, invErr, res.Retunes)
			if !(invErr > off) {
				t.Errorf("inverted controller did not hurt: %.4f <= %.4f", invErr, off)
			}
		})
	}
}

// The acceptance criterion, pinned directly: with the controller enabled
// under the ramp and mix-shift plans, every adjacent-class delay ratio in
// the post-transient tail sits within 10% of its DDP target.
//
// Unlike the improvement tests above, this pins an absolute level, so
// the loop is configured for accuracy rather than agility: MinDepartures
// 400 stretches each pooled window until the thinnest class has enough
// samples that the window estimator agrees with the long-run judged
// ratio (short windows under-weight the rare giant delays that dominate
// a heavy-tailed mean), and the gentler gain shrinks how far the parked
// loop can wander inside the deadband. Like the repo's golden traces,
// the scenario is a fixed seeded run — the margin below 10% is a couple
// of points, which is within this workload's seed-to-seed spread for the
// thinnest adjacent pair, so the assertion is only meaningful as a
// deterministic pin.
func TestControllerMeetsTenPercentAcceptance(t *testing.T) {
	for _, name := range []string{"load-ramp", "class-shift"} {
		name := name
		t.Run(name, func(t *testing.T) {
			plan := suitePlan(core.KindWTP, name, 1311, 2*convergenceHorizon)
			plan.Control = &control.Config{
				Gain:          0.3,
				Deadband:      0.05,
				MaxStep:       0.25,
				MinDepartures: 400,
			}
			plan.ControlInterval = suiteInterval
			// Convergence is judged on the settled loop: exclude the
			// first half of the final segment, where the controller is
			// still walking the parameters toward their fixed point.
			plan.Expect.SegmentWarmup = 0.5
			res, err := chaos.RunSim(plan)
			if err != nil {
				t.Fatal(err)
			}
			last := res.Segments[len(res.Segments)-1]
			for i, r := range last.Ratios {
				if r == 0 || i >= len(res.TargetRatios) {
					t.Fatalf("pair %d unmeasured in tail", i)
				}
				q := r / res.TargetRatios[i]
				t.Logf("%s pair %d: ratio %.3f target %.3f (ratio/target %.3f)", name, i, r, res.TargetRatios[i], q)
				if q < 1.0/1.10 || q > 1.10 {
					t.Errorf("%s pair %d: tail ratio %.3f is %.1f%% from target %.3f (limit 10%%)",
						name, i, r, 100*math.Abs(q-1), res.TargetRatios[i])
				}
			}
		})
	}
}
