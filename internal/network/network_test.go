package network

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
)

func quickConfig() Config {
	return Config{
		Hops:        2,
		Rho:         0.85,
		SDP:         []float64{1, 2, 4, 8},
		FlowPackets: 10,
		FlowKbps:    50,
		Experiments: 5,
		WarmupSec:   3,
		Seed:        1,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := quickConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Hops = 0 },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.Rho = 1 },
		func(c *Config) { c.SDP = []float64{1} },
		func(c *Config) { c.FlowPackets = 0 },
		func(c *Config) { c.FlowKbps = 0 },
		func(c *Config) { c.Experiments = 0 },
		func(c *Config) { c.WarmupSec = -1 },
	}
	for i, mutate := range mutations {
		c := quickConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunDeliversAllFlows(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 5 {
		t.Fatalf("experiments = %d, want 5", len(res.Flows))
	}
	for m, exp := range res.Flows {
		for c, fs := range exp {
			if fs.Delays.Len() != 10 {
				t.Fatalf("experiment %d class %d delivered %d packets, want 10",
					m, c, fs.Delays.Len())
			}
			if fs.Class != c || fs.Experiment != m {
				t.Fatal("flow metadata wrong")
			}
		}
	}
	if res.CrossPackets == 0 {
		t.Fatal("no cross traffic served")
	}
	if math.Abs(res.Utilization-0.85) > 0.12 {
		t.Fatalf("utilization = %g, want ~0.85", res.Utilization)
	}
	// Higher classes should see lower mean end-to-end delay.
	for c := 0; c+1 < 4; c++ {
		if !(res.MeanE2E[c] > res.MeanE2E[c+1]) {
			t.Fatalf("mean E2E not ordered: %v", res.MeanE2E)
		}
	}
	if res.RD <= 1 {
		t.Fatalf("RD = %g, want > 1", res.RD)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.RD != b.RD || a.CrossPackets != b.CrossPackets || a.Inconsistent != b.Inconsistent {
		t.Fatal("same-seed Study B runs diverged")
	}
}

func TestRunStrictSchedulerOption(t *testing.T) {
	cfg := quickConfig()
	cfg.Scheduler = core.KindStrict
	cfg.Experiments = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Strict priority gives consistent ordering too, just uncontrolled
	// spacing; delivery must still complete.
	if len(res.Flows) != 2 {
		t.Fatal("strict run incomplete")
	}
}

func TestRunRejectsOverload(t *testing.T) {
	cfg := quickConfig()
	cfg.LinkBps = 1e5 // 100 kbps: user flows alone exceed rho
	if _, err := Run(cfg); err == nil {
		t.Fatal("overloaded config accepted")
	}
}

func TestCumulativeMix(t *testing.T) {
	four := cumulativeMix(4)
	want := []float64{0.40, 0.70, 0.90, 1.0}
	for i := range want {
		if math.Abs(four[i]-want[i]) > 1e-12 {
			t.Fatalf("4-class mix = %v", four)
		}
	}
	three := cumulativeMix(3)
	if three[2] != 1 {
		t.Fatal("3-class mix not normalized")
	}
	// Geometric halving: p0 = 4/7, p1 = 2/7, p2 = 1/7.
	if math.Abs(three[0]-4.0/7.0) > 1e-12 {
		t.Fatalf("3-class mix = %v", three)
	}
}

func TestMetricsConsistencyDetection(t *testing.T) {
	// Hand-build a result with an inconsistent experiment: class 1
	// slower than class 0.
	r := &Result{MeanE2E: make([]float64, 2)}
	mkFlow := func(exp, class int, base float64) *FlowStats {
		fs := &FlowStats{Experiment: exp, Class: class}
		for i := 0; i < 10; i++ {
			fs.Delays.Add(base + float64(i))
		}
		return fs
	}
	r.Flows = [][]*FlowStats{
		{mkFlow(0, 0, 100), mkFlow(0, 1, 50)}, // consistent
		{mkFlow(1, 0, 50), mkFlow(1, 1, 100)}, // inconsistent
	}
	r.computeMetrics(2)
	if r.InconsistentExperiments != 1 {
		t.Fatalf("InconsistentExperiments = %d, want 1", r.InconsistentExperiments)
	}
	if r.Inconsistent == 0 {
		t.Fatal("no inconsistent comparisons counted")
	}
	if r.MeanE2E[0] <= 0 || r.RD <= 0 {
		t.Fatal("metrics not computed")
	}
}

func TestPerHopStats(t *testing.T) {
	res, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerHopUtilization) != 2 || len(res.PerHopMeanDelay) != 2 {
		t.Fatalf("per-hop stats missing: %d/%d", len(res.PerHopUtilization), len(res.PerHopMeanDelay))
	}
	for h := 0; h < 2; h++ {
		if res.PerHopUtilization[h] < 0.6 {
			t.Fatalf("hop %d utilization %.2f", h, res.PerHopUtilization[h])
		}
		// Each hop individually differentiates: class 1 slower than
		// class 4.
		if !(res.PerHopMeanDelay[h][0] > res.PerHopMeanDelay[h][3]) {
			t.Fatalf("hop %d per-class delays not ordered: %v", h, res.PerHopMeanDelay[h])
		}
	}
}

func TestOnHopLinkSeesEveryHop(t *testing.T) {
	cfg := quickConfig()
	var hops []int
	cfg.OnHopLink = func(h int, l *link.Link) {
		hops = append(hops, h)
		if l == nil || l.Scheduler() == nil {
			t.Errorf("hop %d: link not wired", h)
		}
		if l.OnDepart == nil {
			t.Errorf("hop %d: hook ran before OnDepart wiring", h)
		}
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(hops) != cfg.Hops {
		t.Fatalf("hook saw hops %v, want %d hops", hops, cfg.Hops)
	}
	for h, got := range hops {
		if got != h {
			t.Fatalf("hook order %v, want ascending", hops)
		}
	}
}

// TestOnHopLinkCanPerturb pins the hook as a real perturbation seam:
// halving one hop's rate mid-run must change end-to-end delays, and the
// unperturbed hook run must stay bit-identical to the control.
func TestOnHopLinkCanPerturb(t *testing.T) {
	ctrl, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}

	observed := quickConfig()
	observed.OnHopLink = func(int, *link.Link) {} // attach-only, no action
	obsRes, err := Run(observed)
	if err != nil {
		t.Fatal(err)
	}
	if obsRes.Flows[0][0].Delays.Mean() != ctrl.Flows[0][0].Delays.Mean() {
		t.Error("attach-only hook perturbed the run")
	}

	perturbed := quickConfig()
	perturbed.OnHopLink = func(h int, l *link.Link) {
		if h == 0 {
			l.SetRate(l.Rate() / 2)
		}
	}
	pertRes, err := Run(perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if pertRes.Flows[0][0].Delays.Mean() == ctrl.Flows[0][0].Delays.Mean() {
		t.Error("halving hop 0's rate left delays unchanged")
	}
	if pertRes.PerHopUtilization[0] <= ctrl.PerHopUtilization[0] {
		t.Errorf("hop 0 utilization %v not above control %v after halving rate",
			pertRes.PerHopUtilization[0], ctrl.PerHopUtilization[0])
	}
}
