// Package network implements Simulation Study B (§6): a K-hop congested
// path (Figure 6) whose links each run a WTP scheduler, loaded with
// per-hop Pareto cross-traffic, traversed by per-class user flows whose
// end-to-end queueing-delay percentiles quantify whether local class-based
// differentiation yields consistent end-to-end flow-based differentiation.
package network

import (
	"fmt"
	"math/rand/v2"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/stats"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

// Config describes one Study B simulation. Times are in seconds, rates in
// bits per second unless noted.
type Config struct {
	// Hops is the number of congested links K (paper: 4 or 8).
	Hops int
	// Rho is the per-link utilization (paper: 0.85 or 0.95).
	Rho float64
	// SDP are the WTP parameters at every hop (paper: 1,2,4,8).
	SDP []float64
	// Scheduler selects the per-hop discipline (default WTP — the paper
	// uses WTP "since it performs better than BPR").
	Scheduler core.Kind
	// LinkBps is each link's rate (default 25 Mbps).
	LinkBps float64
	// CrossSources is the number of cross-traffic sources per hop
	// (default 8).
	CrossSources int
	// PacketBytes is the packet size for both user flows and
	// cross-traffic (default 500).
	PacketBytes int64
	// FlowPackets is F, the user-flow length in packets (paper: 10 or
	// 100).
	FlowPackets int
	// FlowKbps is R_u, the user flow's average rate (paper: 50 or 200).
	FlowKbps float64
	// Experiments is M, the number of user experiments, one per second
	// (paper: 100).
	Experiments int
	// WarmupSec warms the network before the first experiment
	// (paper: 100).
	WarmupSec float64
	// Alpha is the Pareto shape of cross-traffic interarrivals
	// (default 1.9).
	Alpha float64
	// Seed drives all randomness.
	Seed uint64
	// Telemetry, if set, is attached to every hop's link: it aggregates
	// arrivals, departures, drops and queueing delays per class across
	// the whole path (live observability; see internal/telemetry).
	Telemetry *telemetry.Registry
	// OnHopLink, if set, observes every hop's fully wired link before the
	// simulation starts — the seam chaos/scenario harnesses use to attach
	// per-hop perturbations (e.g. scheduled SetRate flaps) without the
	// network package knowing about them.
	OnHopLink func(hop int, l *link.Link)
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = core.KindWTP
	}
	if c.LinkBps == 0 {
		c.LinkBps = 25e6
	}
	if c.CrossSources == 0 {
		c.CrossSources = 8
	}
	if c.PacketBytes == 0 {
		c.PacketBytes = 500
	}
	if c.Alpha == 0 {
		c.Alpha = 1.9
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.Hops < 1 {
		return fmt.Errorf("network: hops %d must be >= 1", cc.Hops)
	}
	if !(cc.Rho > 0 && cc.Rho < 1) {
		return fmt.Errorf("network: rho %g must be in (0,1)", cc.Rho)
	}
	if len(cc.SDP) < 2 {
		return fmt.Errorf("network: need at least 2 classes")
	}
	if cc.FlowPackets < 1 || !(cc.FlowKbps > 0) {
		return fmt.Errorf("network: bad flow spec F=%d Ru=%g", cc.FlowPackets, cc.FlowKbps)
	}
	if cc.Experiments < 1 {
		return fmt.Errorf("network: experiments %d must be >= 1", cc.Experiments)
	}
	if cc.WarmupSec < 0 {
		return fmt.Errorf("network: negative warmup")
	}
	return nil
}

// ClassMix is the cross-traffic class distribution (paper: 40/30/20/10
// starting from class 1, i.e. index 0).
var ClassMix = []float64{0.40, 0.30, 0.20, 0.10}

// FlowStats holds one user flow's end-to-end queueing delays.
type FlowStats struct {
	Experiment int
	Class      int
	// Delays are per-packet end-to-end queueing delays, in seconds.
	Delays stats.Sample
}

// Result summarizes a Study B run.
type Result struct {
	// Flows holds every user flow's delay sample, indexed
	// [experiment][class].
	Flows [][]*FlowStats
	// Inconsistent counts (experiment, percentile, class-pair) triples
	// where a higher class saw a larger delay percentile than a lower
	// class — the paper's headline metric is that this is zero.
	Inconsistent int
	// InconsistentMaterial counts the subset of Inconsistent where the
	// higher class was more than 5% worse — inversions a user could
	// actually notice, as opposed to near-tie percentile noise.
	InconsistentMaterial int
	// InconsistentExperiments counts experiments with >= 1 inconsistent
	// percentile comparison.
	InconsistentExperiments int
	// RD is the end-to-end delay ratio between successive classes
	// averaged over class pairs, experiments, and the ten percentiles —
	// the Table 1 metric.
	RD float64
	// MeanE2E is the mean end-to-end queueing delay per class, seconds.
	MeanE2E []float64
	// Utilization is the realized utilization averaged over links.
	Utilization float64
	// PerHopUtilization is each link's realized utilization, hop order.
	PerHopUtilization []float64
	// PerHopMeanDelay[h][c] is the mean per-hop queueing delay of
	// class c at hop h (seconds), over all traffic including
	// cross-traffic.
	PerHopMeanDelay [][]float64
	// CrossPackets counts cross-traffic packets served over all hops.
	CrossPackets uint64
}

// Run executes the Study B simulation.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.SDP)

	engine := sim.NewEngine()
	linkBytesPerSec := cfg.LinkBps / 8

	// Offered load accounting: the M experiments inject N flows of
	// F packets each second, every packet crossing every hop.
	userBytesPerSec := float64(n) * float64(cfg.FlowPackets) * float64(cfg.PacketBytes)
	crossBytesPerSec := cfg.Rho*linkBytesPerSec - userBytesPerSec
	if crossBytesPerSec <= 0 {
		return nil, fmt.Errorf("network: user flows alone exceed rho=%g", cfg.Rho)
	}

	// Build the chain of links.
	links := make([]*link.Link, cfg.Hops)
	var crossServed uint64
	res := &Result{MeanE2E: make([]float64, n)}

	// Per-run free list shared by cross-traffic sources and user flows.
	// Links must NOT recycle (packets are forwarded hop to hop from
	// OnDepart), so the exit points below return packets instead: cross
	// traffic after its single hop, user packets at final delivery.
	pool := core.NewPacketPool()

	// Delivered user packets are recorded against their flow.
	flowIndex := make(map[uint64]*FlowStats)
	var delivered, expected int

	for h := 0; h < cfg.Hops; h++ {
		sched, err := core.New(cfg.Scheduler, cfg.SDP, linkBytesPerSec)
		if err != nil {
			return nil, err
		}
		links[h] = link.New(engine, linkBytesPerSec, sched)
		links[h].Telemetry = cfg.Telemetry
	}
	hopDelays := make([]*stats.ClassDelays, cfg.Hops)
	for h := range hopDelays {
		hopDelays[h] = stats.NewClassDelays(n)
	}
	for h := 0; h < cfg.Hops; h++ {
		h := h
		links[h].OnDepart = func(p *core.Packet) {
			if p.Departure >= cfg.WarmupSec {
				hopDelays[h].Observe(p)
			}
			if p.Flow == 0 {
				crossServed++ // cross-traffic exits after its hop
				pool.Put(p)
				return
			}
			if h+1 < cfg.Hops {
				links[h+1].Arrive(p)
				return
			}
			fs := flowIndex[p.Flow]
			if fs != nil {
				fs.Delays.Add(p.QueueingDelay)
				delivered++
			}
			pool.Put(p)
		}
	}

	if cfg.OnHopLink != nil {
		for h, l := range links {
			cfg.OnHopLink(h, l)
		}
	}

	// Cross-traffic: C sources per hop, Pareto interarrivals, class
	// drawn per packet from ClassMix.
	perSourceBytes := crossBytesPerSec / float64(cfg.CrossSources)
	meanInter := float64(cfg.PacketBytes) / perSourceBytes
	for h := 0; h < cfg.Hops; h++ {
		for s := 0; s < cfg.CrossSources; s++ {
			src := &crossSource{
				engine: engine,
				inter:  traffic.NewPareto(cfg.Alpha, meanInter),
				size:   cfg.PacketBytes,
				mix:    cumulativeMix(n),
				rng:    traffic.NewRNG(cfg.Seed, uint64(h*1000+s+1)),
				sink:   links[h].Arrive,
				pool:   pool,
				id:     uint64(h*cfg.CrossSources+s+1) << 40,
			}
			src.start()
		}
	}

	// User experiments: every second starting after warm-up, one flow
	// per class.
	flowRateBytes := cfg.FlowKbps * 1000 / 8
	for m := 0; m < cfg.Experiments; m++ {
		start := cfg.WarmupSec + float64(m)
		for c := 0; c < n; c++ {
			fs := &FlowStats{Experiment: m, Class: c}
			flowID := uint64(m*n+c) + 1
			flowIndex[flowID] = fs
			spec := traffic.FlowSpec{
				Class:   c,
				Packets: cfg.FlowPackets,
				Size:    cfg.PacketBytes,
				Rate:    flowRateBytes,
			}
			if err := traffic.ScheduleFlowPool(engine, spec, start, flowID, links[0].Arrive, pool); err != nil {
				return nil, err
			}
			expected += cfg.FlowPackets
		}
	}

	// Run until every user packet is delivered (plus slack for queue
	// drain). The last flow starts at warmup+M-1 and lasts
	// F·gap seconds; delays are far below a second per hop at these
	// loads, but allow a generous margin and extend if needed.
	flowDuration := float64(cfg.FlowPackets) * float64(cfg.PacketBytes) / flowRateBytes
	horizon := cfg.WarmupSec + float64(cfg.Experiments) + flowDuration + 5
	for extend := 0; extend < 20 && delivered < expected; extend++ {
		engine.RunUntil(horizon)
		horizon += 10
	}
	if delivered < expected {
		return nil, fmt.Errorf("network: only %d of %d user packets delivered; path saturated", delivered, expected)
	}

	// Assemble per-experiment flow table.
	res.Flows = make([][]*FlowStats, cfg.Experiments)
	for m := 0; m < cfg.Experiments; m++ {
		res.Flows[m] = make([]*FlowStats, n)
		for c := 0; c < n; c++ {
			res.Flows[m][c] = flowIndex[uint64(m*n+c)+1]
		}
	}
	res.CrossPackets = crossServed
	var util float64
	for _, l := range links {
		res.PerHopUtilization = append(res.PerHopUtilization, l.Utilization())
		util += l.Utilization()
	}
	res.Utilization = util / float64(cfg.Hops)
	res.PerHopMeanDelay = make([][]float64, cfg.Hops)
	for h := range hopDelays {
		res.PerHopMeanDelay[h] = make([]float64, n)
		for c := 0; c < n; c++ {
			res.PerHopMeanDelay[h][c] = hopDelays[h].Mean(c)
		}
	}

	res.computeMetrics(n)
	return res, nil
}

// computeMetrics fills Inconsistent, RD and MeanE2E from Flows.
func (r *Result) computeMetrics(n int) {
	var rdSum float64
	var rdCount int
	meanSum := make([]float64, n)
	meanCnt := make([]float64, n)
	for _, exp := range r.Flows {
		// Per-class percentile vectors for this experiment.
		pct := make([][]float64, n)
		for c := 0; c < n; c++ {
			pct[c] = exp[c].Delays.Quantiles(stats.StudyBPercentiles...)
			meanSum[c] += exp[c].Delays.Mean()
			meanCnt[c]++
		}
		bad := false
		for k := range stats.StudyBPercentiles {
			// Consistency: every higher class at most the lower
			// class, for every pair (the paper checks "any of
			// these percentiles" across class pairs).
			for lo := 0; lo < n; lo++ {
				for hi := lo + 1; hi < n; hi++ {
					if pct[hi][k] > pct[lo][k]*(1+1e-12) {
						r.Inconsistent++
						bad = true
						if pct[hi][k] > pct[lo][k]*1.05 {
							r.InconsistentMaterial++
						}
					}
				}
			}
			// R_D over successive pairs.
			for c := 0; c+1 < n; c++ {
				if pct[c+1][k] > 0 {
					rdSum += pct[c][k] / pct[c+1][k]
					rdCount++
				}
			}
		}
		if bad {
			r.InconsistentExperiments++
		}
	}
	if rdCount > 0 {
		r.RD = rdSum / float64(rdCount)
	}
	for c := 0; c < n; c++ {
		if meanCnt[c] > 0 {
			r.MeanE2E[c] = meanSum[c] / meanCnt[c]
		}
	}
}

// crossSource emits fixed-size packets with Pareto interarrivals and a
// random class per packet. Packets come from the run's free list and
// scheduling uses the closure-free AtFunc path, so steady-state emission
// allocates nothing.
type crossSource struct {
	engine *sim.Engine
	inter  traffic.Pareto
	size   int64
	mix    []float64 // cumulative class probabilities
	rng    *rand.Rand
	sink   traffic.Sink
	pool   *core.PacketPool
	id     uint64
	seq    uint64
}

// crossEmit is the shared closure-free event body for cross-traffic.
func crossEmit(arg any) { arg.(*crossSource).emit() }

func (s *crossSource) start() {
	s.engine.AfterFunc(s.inter.Next(s.rng), crossEmit, s)
}

func (s *crossSource) emit() {
	now := s.engine.Now()
	s.seq++
	u := s.rng.Float64()
	class := len(s.mix) - 1
	for i, c := range s.mix {
		if u < c {
			class = i
			break
		}
	}
	p := s.pool.Get()
	p.ID = s.id + s.seq
	p.Class = class
	p.Size = s.size
	p.Arrival = now
	p.Birth = now
	s.sink(p)
	s.start()
}

// cumulativeMix adapts the 4-class paper mix to n classes: for n == 4 it
// is exactly ClassMix; otherwise probability mass is spread geometrically
// (halving per class, matching the paper's shape) and normalized.
func cumulativeMix(n int) []float64 {
	probs := make([]float64, n)
	if n == len(ClassMix) {
		copy(probs, ClassMix)
	} else {
		w := 1.0
		var sum float64
		for i := 0; i < n; i++ {
			probs[i] = w
			sum += w
			w /= 2
		}
		for i := range probs {
			probs[i] /= sum
		}
	}
	cum := make([]float64, n)
	var acc float64
	for i, p := range probs {
		acc += p
		cum[i] = acc
	}
	cum[n-1] = 1
	return cum
}
