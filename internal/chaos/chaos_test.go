package chaos

import (
	"math"
	"strings"
	"testing"
)

func TestOpString(t *testing.T) {
	cases := map[Op]string{
		OpScaleLoad:   "scale-load",
		OpScaleClass:  "scale-class",
		OpSetLinkRate: "set-link-rate",
		OpSourceOff:   "source-off",
		OpSourceOn:    "source-on",
		OpBurst:       "burst",
		Op(0):         "op(0)",
	}
	for op, want := range cases {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestActionValidate(t *testing.T) {
	const classes = 4
	bad := []struct {
		name string
		a    Action
	}{
		{"zero op", Action{At: 1}},
		{"negative time", Action{At: -1, Op: OpScaleLoad, Factor: 2}},
		{"inf time", Action{At: math.Inf(1), Op: OpScaleLoad, Factor: 2}},
		{"nan time", Action{At: math.NaN(), Op: OpScaleLoad, Factor: 2}},
		{"zero factor", Action{At: 1, Op: OpScaleLoad}},
		{"negative factor", Action{At: 1, Op: OpScaleClass, Class: 0, Factor: -2}},
		{"class high", Action{At: 1, Op: OpScaleClass, Class: 4, Factor: 2}},
		{"class low", Action{At: 1, Op: OpSourceOff, Class: -1}},
		{"link factor", Action{At: 1, Op: OpSetLinkRate}},
		{"burst no count", Action{At: 1, Op: OpBurst, Class: 0, Size: 100}},
		{"burst no size", Action{At: 1, Op: OpBurst, Class: 0, Count: 3}},
		{"burst class", Action{At: 1, Op: OpBurst, Class: 9, Count: 3, Size: 100}},
	}
	for _, tc := range bad {
		if err := tc.a.validate(classes); err == nil {
			t.Errorf("%s: validate accepted %+v", tc.name, tc.a)
		}
	}
	good := []Action{
		{At: 0, Op: OpScaleLoad, Factor: 0.5},
		{At: 1, Op: OpScaleClass, Class: 3, Factor: 2},
		{At: 1, Op: OpSetLinkRate, Factor: 0.75},
		{At: 1, Op: OpSourceOff, Class: 0},
		{At: 1, Op: OpSourceOn, Class: 3},
		{At: 1, Op: OpBurst, Class: 2, Count: 1, Size: 1},
	}
	for _, a := range good {
		if err := a.validate(classes); err != nil {
			t.Errorf("validate rejected %+v: %v", a, err)
		}
	}

	tl := Timeline{Name: "x", Actions: []Action{good[0], {At: 2, Op: Op(99)}}}
	if err := tl.Validate(classes); err == nil || !strings.Contains(err.Error(), "action 1") {
		t.Errorf("Timeline.Validate = %v, want action-1 error", err)
	}
}

func TestRampCompoundsToTarget(t *testing.T) {
	acts := Ramp(100, 500, 8, 1.0, 1.36)
	if len(acts) != 9 {
		t.Fatalf("got %d actions, want 9", len(acts))
	}
	abs := 1.0
	prevAt := math.Inf(-1)
	for _, a := range acts {
		if a.Op != OpScaleLoad {
			t.Fatalf("unexpected op %v", a.Op)
		}
		if a.At < prevAt {
			t.Fatalf("action times not monotone: %g after %g", a.At, prevAt)
		}
		prevAt = a.At
		abs *= a.Factor
	}
	if math.Abs(abs-1.36) > 1e-12 {
		t.Errorf("compound scale after ramp = %.15f, want 1.36", abs)
	}
	if acts[0].At != 100 || acts[len(acts)-1].At != 500 {
		t.Errorf("ramp spans [%g,%g], want [100,500]", acts[0].At, acts[len(acts)-1].At)
	}

	defer func() {
		if recover() == nil {
			t.Error("Ramp accepted zero steps")
		}
	}()
	Ramp(0, 1, 0, 1, 2)
}

func TestToggleAlternatesAndRestores(t *testing.T) {
	// Four switch points: off, on, off, on — ends on, no restore needed.
	acts := Toggle(3, 100, 50, 300)
	wantOps := []Op{OpSourceOff, OpSourceOn, OpSourceOff, OpSourceOn}
	if len(acts) != len(wantOps) {
		t.Fatalf("got %d actions, want %d: %+v", len(acts), len(wantOps), acts)
	}
	for i, a := range acts {
		if a.Op != wantOps[i] || a.Class != 3 {
			t.Errorf("action %d = %v class %d, want %v class 3", i, a.Op, a.Class, wantOps[i])
		}
	}

	// Three switch points end with the source off: a restore OpSourceOn
	// must be appended at end so the tail of the run has all classes.
	acts = Toggle(1, 0, 10, 30)
	last := acts[len(acts)-1]
	if last.Op != OpSourceOn || last.At != 30 {
		t.Errorf("trailing action = %+v, want source-on at 30", last)
	}
	offs, ons := 0, 0
	for _, a := range acts {
		switch a.Op {
		case OpSourceOff:
			offs++
		case OpSourceOn:
			ons++
		}
	}
	if offs != ons {
		t.Errorf("unbalanced toggle: %d offs, %d ons", offs, ons)
	}
}

func TestRegimeArithmetic(t *testing.T) {
	r := newRegime(4)
	base := []float64{4, 3, 2, 1} // packets per tu
	// Unperturbed: byte rate 10*meanSize over capacity.
	if got := r.rhoEff(base, 44.1, 441); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("base rhoEff = %g, want 1", got)
	}
	r.apply(Action{Op: OpScaleLoad, Factor: 0.5})
	if got := r.rhoEff(base, 44.1, 441); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("after half load, rhoEff = %g, want 0.5", got)
	}
	r.apply(Action{Op: OpSourceOff, Class: 0}) // removes 4 of the 10 pkt/tu
	if got := r.rhoEff(base, 44.1, 441); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("after class-0 off, rhoEff = %g, want 0.3", got)
	}
	r.apply(Action{Op: OpSetLinkRate, Factor: 0.5})
	if got := r.rhoEff(base, 44.1, 441); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("after link halved, rhoEff = %g, want 0.6", got)
	}
	r.apply(Action{Op: OpSourceOn, Class: 0})
	r.apply(Action{Op: OpScaleClass, Class: 0, Factor: 2})
	// (4*2*0.5 + 3*0.5 + 2*0.5 + 1*0.5)*44.1 / (441*0.5) = 7/5 * ... = 1.4
	if got := r.rhoEff(base, 44.1, 441); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("final rhoEff = %g, want 1.4", got)
	}
}

func TestRatioWindowRegimes(t *testing.T) {
	if _, _, judged := ratioWindow(0.5, false); judged {
		t.Error("light load must not be judged")
	}
	lo, hi, judged := ratioWindow(0.75, false)
	if !judged || lo >= hi {
		t.Errorf("moderate load window [%g,%g] judged=%v", lo, hi, judged)
	}
	lo2, hi2, judged := ratioWindow(0.95, false)
	if !judged || lo2 < lo || hi2 > hi {
		t.Errorf("heavy window [%g,%g] should be tighter than moderate [%g,%g]", lo2, hi2, lo, hi)
	}
	if _, _, judged := ratioWindow(0.5, true); judged {
		t.Error("flat light load must not be judged")
	}
	lo, hi, judged = ratioWindow(0.95, true)
	if !judged || !(lo < 1 && 1 < hi) {
		t.Errorf("flat window [%g,%g] must straddle 1", lo, hi)
	}
}
