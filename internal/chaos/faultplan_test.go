package chaos

import (
	"bytes"
	"errors"
	"testing"
)

// fakeWire records every payload reaching the (fake) socket.
type fakeWire struct {
	sent [][]byte
	errs []error // popped per call; nil slice = always succeed
}

func (w *fakeWire) send(p []byte) (int, error) {
	if len(w.errs) > 0 {
		err := w.errs[0]
		w.errs = w.errs[1:]
		if err != nil {
			return 0, err
		}
	}
	w.sent = append(w.sent, append([]byte(nil), p...))
	return len(p), nil
}

// drive pushes n distinct datagrams through the plan, first attempts only.
func drive(t *testing.T, f *FaultPlan, w *fakeWire, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte{byte(i), 1, 2, 3, 4, 5, 6, 7}
		if _, err := f.Write(payload, 0, w.send); err != nil {
			t.Fatalf("datagram %d: unexpected error %v", i, err)
		}
	}
}

func TestFaultPlanCorrupt(t *testing.T) {
	f := &FaultPlan{CorruptEvery: 3}
	w := &fakeWire{}
	drive(t, f, w, 9)
	if f.Corrupted != 3 {
		t.Fatalf("Corrupted = %d, want 3", f.Corrupted)
	}
	if len(w.sent) != 9 {
		t.Fatalf("wire saw %d datagrams, want 9", len(w.sent))
	}
	// Every-3rd fires on indices 2, 5, 8; byte 0 and the middle byte flip.
	for i, p := range w.sent {
		corrupted := i%3 == 2
		if got := p[0] != byte(i); got != corrupted {
			t.Errorf("datagram %d corrupted=%v, want %v (byte0=%#x)", i, got, corrupted, p[0])
		}
		if corrupted && p[len(p)/2] == byte(len(p)/2) {
			t.Errorf("datagram %d middle byte not flipped", i)
		}
	}
}

func TestFaultPlanCorruptDoesNotMutateCaller(t *testing.T) {
	f := &FaultPlan{CorruptEvery: 1}
	w := &fakeWire{}
	payload := []byte{9, 9, 9, 9}
	if _, err := f.Write(payload, 0, w.send); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, []byte{9, 9, 9, 9}) {
		t.Errorf("caller's payload mutated: %v", payload)
	}
	if bytes.Equal(w.sent[0], payload) {
		t.Error("wire payload not corrupted")
	}
}

func TestFaultPlanTruncate(t *testing.T) {
	f := &FaultPlan{TruncateEvery: 2}
	w := &fakeWire{}
	drive(t, f, w, 4)
	if f.Truncated != 2 {
		t.Fatalf("Truncated = %d, want 2", f.Truncated)
	}
	for i, p := range w.sent {
		want := 8
		if i%2 == 1 {
			want = 4
		}
		if len(p) != want {
			t.Errorf("datagram %d length %d, want %d", i, len(p), want)
		}
	}
}

func TestFaultPlanDup(t *testing.T) {
	f := &FaultPlan{DupEvery: 2}
	w := &fakeWire{}
	drive(t, f, w, 4)
	if f.Duplicated != 2 {
		t.Fatalf("Duplicated = %d, want 2", f.Duplicated)
	}
	// Indices 1 and 3 go out twice: 0,1,1,2,3,3.
	wantFirst := []byte{0, 1, 1, 2, 3, 3}
	if len(w.sent) != len(wantFirst) {
		t.Fatalf("wire saw %d datagrams, want %d", len(w.sent), len(wantFirst))
	}
	for i, p := range w.sent {
		if p[0] != wantFirst[i] {
			t.Errorf("wire position %d carries datagram %d, want %d", i, p[0], wantFirst[i])
		}
	}
}

func TestFaultPlanReorderSwapsWireOrder(t *testing.T) {
	f := &FaultPlan{ReorderEvery: 3}
	w := &fakeWire{}
	drive(t, f, w, 6)
	if f.Reordered != 2 {
		t.Fatalf("Reordered = %d, want 2", f.Reordered)
	}
	// Datagrams 2 and 5 are held and emitted after their successors:
	// 0,1,3,2,4,5 — datagram 5 has no successor inside the run, so it
	// stays held (wire loss of an acknowledged datagram).
	wantFirst := []byte{0, 1, 3, 2, 4}
	if len(w.sent) != len(wantFirst) {
		t.Fatalf("wire saw %d datagrams, want %d", len(w.sent), len(wantFirst))
	}
	for i, p := range w.sent {
		if p[0] != wantFirst[i] {
			t.Errorf("wire position %d carries datagram %d, want %d", i, p[0], wantFirst[i])
		}
	}
}

func TestFaultPlanTransientRecoversWithinRetries(t *testing.T) {
	f := &FaultPlan{TransientEvery: 2, TransientFails: 2}
	w := &fakeWire{}
	// Datagram 0: no fault.
	if _, err := f.Write([]byte{0}, 0, w.send); err != nil {
		t.Fatal(err)
	}
	// Datagram 1: attempts 0 and 1 fail, attempt 2 succeeds.
	for attempt, wantErr := range []bool{true, true, false} {
		_, err := f.Write([]byte{1}, attempt, w.send)
		if (err != nil) != wantErr {
			t.Fatalf("attempt %d: err=%v, want error=%v", attempt, err, wantErr)
		}
		if err != nil && !errors.Is(err, ErrInjected) {
			t.Fatalf("attempt %d: err=%v, want ErrInjected", attempt, err)
		}
	}
	if f.Transient != 1 {
		t.Errorf("Transient = %d, want 1 (counted once per datagram, not per attempt)", f.Transient)
	}
	if len(w.sent) != 2 {
		t.Errorf("wire saw %d datagrams, want 2", len(w.sent))
	}
}

func TestFaultPlanPersistentWindowAndPrecedence(t *testing.T) {
	// Corruption is also configured for every datagram, but the outage
	// window wins inside [1, 3).
	f := &FaultPlan{CorruptEvery: 1, FailFrom: 1, FailTo: 3}
	w := &fakeWire{}
	for i := 0; i < 4; i++ {
		_, err := f.Write([]byte{byte(i), 0}, 0, w.send)
		inWindow := i >= 1 && i < 3
		if (err != nil) != inWindow {
			t.Errorf("datagram %d: err=%v, want failure=%v", i, err, inWindow)
		}
	}
	if f.Persistent != 2 || f.Corrupted != 2 {
		t.Errorf("Persistent=%d Corrupted=%d, want 2/2", f.Persistent, f.Corrupted)
	}
	if got := f.Injected(); got != 4 {
		t.Errorf("Injected() = %d, want 4", got)
	}
}

func TestFaultPlanSeededIsDeterministic(t *testing.T) {
	run := func() (uint64, []byte) {
		f := &FaultPlan{Seed: 42, CorruptEvery: 4, DupEvery: 4}
		w := &fakeWire{}
		drive(t, f, w, 64)
		var firsts []byte
		for _, p := range w.sent {
			firsts = append(firsts, p[0])
		}
		return f.Injected(), firsts
	}
	inj1, wire1 := run()
	inj2, wire2 := run()
	if inj1 != inj2 || !bytes.Equal(wire1, wire2) {
		t.Errorf("seeded plan not reproducible: %d vs %d faults", inj1, inj2)
	}
	if inj1 == 0 {
		t.Error("seeded plan never fired over 64 datagrams")
	}

	// A different seed must (overwhelmingly) pick a different subset.
	f := &FaultPlan{Seed: 43, CorruptEvery: 4, DupEvery: 4}
	w := &fakeWire{}
	drive(t, f, w, 64)
	var firsts []byte
	for _, p := range w.sent {
		firsts = append(firsts, p[0])
	}
	if bytes.Equal(firsts, wire1) {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestFaultPlanRetryReusesDecision(t *testing.T) {
	// The every-Nth counter advances on first attempts only: retrying a
	// datagram must not consume the next datagram's fault decision.
	f := &FaultPlan{CorruptEvery: 2}
	w := &fakeWire{errs: []error{errors.New("socket hiccup")}}
	if _, err := f.Write([]byte{0, 0}, 0, w.send); err == nil {
		t.Fatal("expected the socket error to surface")
	}
	if _, err := f.Write([]byte{0, 0}, 1, w.send); err != nil {
		t.Fatal(err)
	}
	// Datagram 1 is the every-2nd target even though datagram 0 took two
	// attempts.
	if _, err := f.Write([]byte{1, 0}, 0, w.send); err != nil {
		t.Fatal(err)
	}
	if f.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", f.Corrupted)
	}
	if last := w.sent[len(w.sent)-1]; last[0] == 1 {
		t.Error("datagram 1 was not corrupted — retry consumed its decision")
	}
}
