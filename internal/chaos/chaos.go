// Package chaos is the deterministic fault- and scenario-injection layer.
// It exists because the paper's central claim — WTP/BPR hold class delay
// ratios near the DDPs *independent of class loads*, including under the
// dynamic short-timescale conditions of §5.4 — is exactly the kind of
// claim that only survives contact with non-stationary, adversarial
// conditions. Everything here is seeded and replayable:
//
//   - Timeline scripts perturb a running simulation (load steps and ramps,
//     class-mix shifts, source on/off churn, link-rate changes, burst
//     trains) through events scheduled on the ordinary sim engine, so a
//     run with an empty timeline is byte-identical to one without the
//     chaos layer at all — the committed golden conformance traces pin
//     this.
//   - FaultPlan perturbs the live UDP forwarder's egress (corruption,
//     truncation, duplication, reordering, receiver stalls, transient and
//     persistent write errors) through the netio.FaultInjector interface.
//   - RunSim drives a scheduler through a Timeline for a long horizon
//     while continuously checking the invariants no perturbation may
//     break: exact packet conservation, telemetry-counter monotonicity,
//     zero packet-pool leaks — and judging the observed delay ratios
//     against per-load-regime tolerance windows.
//
// cmd/pdstress fans the standard Plans × scheduler matrix out over the
// parallel replication runner (`make stress`).
package chaos

import (
	"fmt"
	"math"
)

// Op identifies a scenario action kind.
type Op int

// Scenario action kinds. The zero value is invalid so an accidentally
// zeroed Action fails validation instead of silently scaling the load.
const (
	// OpScaleLoad multiplies every class's arrival rate by Factor
	// (cumulative with earlier scale actions).
	OpScaleLoad Op = iota + 1
	// OpScaleClass multiplies class Class's arrival rate by Factor.
	OpScaleClass
	// OpSetLinkRate sets the link rate to Factor × the run's base rate.
	OpSetLinkRate
	// OpSourceOff pauses class Class's source (no arrivals until
	// OpSourceOn).
	OpSourceOff
	// OpSourceOn resumes class Class's source.
	OpSourceOn
	// OpBurst injects Count back-to-back packets of class Class and size
	// Size bytes, modelling an arrival train far burstier than the
	// source model produces on its own.
	OpBurst
	// OpFlowChurn retires class Class's current synthetic flow
	// population and starts a fresh generation (new 5-tuples), exercising
	// the classifier flow table's insert/evict path mid-run. Only
	// meaningful for plans with FlowsPerClass > 0.
	OpFlowChurn
)

// String names the op for reports.
func (o Op) String() string {
	switch o {
	case OpScaleLoad:
		return "scale-load"
	case OpScaleClass:
		return "scale-class"
	case OpSetLinkRate:
		return "set-link-rate"
	case OpSourceOff:
		return "source-off"
	case OpSourceOn:
		return "source-on"
	case OpBurst:
		return "burst"
	case OpFlowChurn:
		return "flow-churn"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Action is one scripted perturbation at an absolute simulation time.
// Which of the operand fields are read depends on Op.
type Action struct {
	// At is the absolute simulation time the action fires.
	At float64
	// Op selects the perturbation.
	Op Op
	// Class is the target class for per-class ops.
	Class int
	// Factor is the multiplier for scale and link-rate ops.
	Factor float64
	// Count and Size parameterize OpBurst.
	Count int
	Size  int64
}

func (a Action) validate(classes int) error {
	if !(a.At >= 0) || math.IsInf(a.At, 0) {
		return fmt.Errorf("chaos: action %s at invalid time %g", a.Op, a.At)
	}
	switch a.Op {
	case OpScaleLoad:
		if !(a.Factor > 0) {
			return fmt.Errorf("chaos: %s factor %g must be > 0", a.Op, a.Factor)
		}
	case OpScaleClass:
		if !(a.Factor > 0) {
			return fmt.Errorf("chaos: %s factor %g must be > 0", a.Op, a.Factor)
		}
		if a.Class < 0 || a.Class >= classes {
			return fmt.Errorf("chaos: %s class %d out of range [0,%d)", a.Op, a.Class, classes)
		}
	case OpSetLinkRate:
		if !(a.Factor > 0) {
			return fmt.Errorf("chaos: %s factor %g must be > 0", a.Op, a.Factor)
		}
	case OpSourceOff, OpSourceOn, OpFlowChurn:
		if a.Class < 0 || a.Class >= classes {
			return fmt.Errorf("chaos: %s class %d out of range [0,%d)", a.Op, a.Class, classes)
		}
	case OpBurst:
		if a.Count < 1 || a.Size < 1 {
			return fmt.Errorf("chaos: %s needs count >= 1 and size >= 1, got %d/%d", a.Op, a.Count, a.Size)
		}
		if a.Class < 0 || a.Class >= classes {
			return fmt.Errorf("chaos: %s class %d out of range [0,%d)", a.Op, a.Class, classes)
		}
	default:
		return fmt.Errorf("chaos: unknown op %d", int(a.Op))
	}
	return nil
}

// Timeline is a named scenario script: the full set of perturbations one
// run experiences. An empty timeline is the unperturbed control.
type Timeline struct {
	Name    string
	Actions []Action
}

// Validate checks every action against the class count.
func (tl Timeline) Validate(classes int) error {
	for i, a := range tl.Actions {
		if err := a.validate(classes); err != nil {
			return fmt.Errorf("action %d: %w", i, err)
		}
	}
	return nil
}

// Ramp returns a staircase of OpScaleLoad actions approximating a linear
// load ramp: steps equal segments over [start, end], scaling the total
// arrival rate from `from`× to `to`× the base load. Factors are emitted
// relative to the previous step (scale actions compound), so the absolute
// scale after the last step is exactly `to`.
func Ramp(start, end float64, steps int, from, to float64) []Action {
	if steps < 1 || !(end > start) || !(from > 0) || !(to > 0) {
		panic(fmt.Sprintf("chaos: bad ramp [%g,%g] steps=%d from=%g to=%g", start, end, steps, from, to))
	}
	out := make([]Action, 0, steps+1)
	prev := 1.0
	for i := 0; i <= steps; i++ {
		frac := float64(i) / float64(steps)
		abs := from + (to-from)*frac
		out = append(out, Action{
			At:     start + (end-start)*frac,
			Op:     OpScaleLoad,
			Factor: abs / prev,
		})
		prev = abs
	}
	return out
}

// Toggle returns alternating OpSourceOff/OpSourceOn actions for class,
// starting with off at start and switching every period until end.
func Toggle(class int, start, period, end float64) []Action {
	if !(period > 0) || !(end > start) {
		panic(fmt.Sprintf("chaos: bad toggle [%g,%g] period=%g", start, end, period))
	}
	var out []Action
	off := true // the next emitted action pauses the source
	for t := start; t < end; t += period {
		op := OpSourceOn
		if off {
			op = OpSourceOff
		}
		out = append(out, Action{At: t, Op: op, Class: class})
		off = !off
	}
	if !off {
		// Ended in the off state: restore the source so the tail of the
		// run (and the conservation check) sees the full class set.
		out = append(out, Action{At: end, Op: OpSourceOn, Class: class})
	}
	return out
}
