package chaos

import (
	"math"
	"reflect"
	"testing"

	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

// Satellite regression for the segment-warmup fix: a run whose segment
// starts on target and drifts into violation in the tail. Whole-segment
// averaging (the pre-fix judging) blends the healthy transient into the
// verdict and passes; the warm-up exclusion judges the settled tail and
// must flag it. The first half of this test fails on the pre-fix code.
func TestSegmentWarmupUnmasksTailViolation(t *testing.T) {
	plan := SimPlan{
		Name:    "warmup-regression",
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 200,
		Warmup:  100,
		Seed:    1,
		Expect:  Expectation{MinDepartures: 100},
	}
	p := plan.withDefaults()
	bounds := segmentBounds(p) // one segment: [100, 200)

	reg := telemetry.NewWithSDP(p.SDP)
	feed := func(deps int, delays ...float64) {
		for class, d := range delays {
			for k := 0; k < deps; k++ {
				reg.Departure(class, 441, 0, d)
			}
		}
	}
	s0 := reg.Snapshot()
	// Transient (first 15% of the segment): every adjacent ratio exactly
	// on its target 2.
	feed(1000, 40, 20, 10, 5)
	warm := reg.Snapshot()
	// Settled tail: pair 0 blows out to ratio 6 (3× target, far outside
	// the heavy-load band [0.5,1.5]×target) while the other pairs hold.
	feed(200, 60, 10, 5, 2.5)
	s1 := reg.Snapshot()

	segs := judgeSegments(p, bounds, []telemetry.Snapshot{s0, s1}, []telemetry.Snapshot{warm})
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	seg := segs[0]
	if want := 100 + 0.15*100; math.Abs(seg.JudgedFrom-want) > 1e-9 {
		t.Fatalf("JudgedFrom = %g, want %g", seg.JudgedFrom, want)
	}
	if !seg.Judged {
		t.Fatalf("tail window not judged: %+v", seg)
	}
	if seg.Ok {
		t.Fatalf("steady-state violation masked: tail ratios %v judged Ok", seg.Ratios)
	}

	// Pre-fix behaviour, reproduced by disabling the exclusion: the same
	// counters pass, which is exactly the masking the fix removes.
	pre := plan
	pre.Expect.SegmentWarmup = -1
	pp := pre.withDefaults()
	segs = judgeSegments(pp, bounds, []telemetry.Snapshot{s0, s1}, nil)
	if len(segs) != 1 || !segs[0].Judged {
		t.Fatalf("whole-segment judging missing: %+v", segs)
	}
	if !segs[0].Ok {
		t.Fatalf("whole-segment average unexpectedly caught the tail violation: %+v", segs[0])
	}
}

// The noninterference guarantee at system level: a controller whose
// deadband never trips must leave the run byte-identical to an
// uncontrolled one — same packets, same delays, same segment verdicts.
func TestControlInBandRunIsIdentical(t *testing.T) {
	base := quickPlan(core.KindWTP, Timeline{Name: "none"})
	off, err := RunSim(base)
	if err != nil {
		t.Fatal(err)
	}
	held := base
	held.Control = &control.Config{Deadband: 0.95} // nothing short of 95% deviation trips
	on, err := RunSim(held)
	if err != nil {
		t.Fatal(err)
	}
	if on.Retunes != 0 {
		t.Fatalf("in-band controller retuned %d times", on.Retunes)
	}
	// Scrub the control-only report fields, then demand exact equality.
	on.Retunes, on.ControlParams = 0, nil
	if !reflect.DeepEqual(off, on) {
		t.Fatalf("in-band controlled run diverged:\noff: %+v\non:  %+v", off, on)
	}
}

// A live controller under the ramp plan must act through the seam and
// leave every invariant intact.
func TestControlledRampRunsClean(t *testing.T) {
	horizon := 4 * testHorizon
	plan := Plans(core.KindWTP, horizon, 77)[3] // load-ramp
	plan.Control = &control.Config{MinDepartures: 50}
	res, err := RunSim(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Retunes == 0 {
		t.Fatal("controller never retuned across a 0.70→0.95 ramp")
	}
	if err := core.CheckRetuneParams(res.ControlParams, len(plan.SDP)); err != nil {
		t.Fatalf("final control params invalid: %v", err)
	}
}

// Control plans reject non-retunable schedulers up front.
func TestControlRejectsNonRetunableKind(t *testing.T) {
	plan := quickPlan(core.KindFCFS, Timeline{Name: "none"})
	plan.Expect.Flat = true
	plan.Control = &control.Config{}
	if _, err := RunSim(plan); err == nil {
		t.Fatal("FCFS control plan did not error")
	}
}
