package chaos

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/traffic"
)

const testHorizon = 20000.0 // ~1.7k packets at rho 0.95: fast but non-trivial

func quickPlan(kind core.Kind, tl Timeline) SimPlan {
	return SimPlan{
		Name:     "quick-" + tl.Name,
		Kind:     kind,
		SDP:      []float64{1, 2, 4, 8},
		Load:     traffic.PaperLoad(0.95),
		Horizon:  testHorizon,
		Warmup:   0.1 * testHorizon,
		Seed:     7,
		Timeline: tl,
	}
}

func TestSimPlanValidate(t *testing.T) {
	good := quickPlan(core.KindWTP, Timeline{Name: "none"})
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []struct {
		name string
		mut  func(*SimPlan)
	}{
		{"no name", func(p *SimPlan) { p.Name = "" }},
		{"sdp mismatch", func(p *SimPlan) { p.SDP = []float64{1, 2} }},
		{"zero horizon", func(p *SimPlan) { p.Horizon = 0 }},
		{"warmup past horizon", func(p *SimPlan) { p.Warmup = testHorizon }},
		{"bad action", func(p *SimPlan) { p.Timeline.Actions = []Action{{At: 1}} }},
		{"bad load", func(p *SimPlan) { p.Load.Rho = 0 }},
	}
	for _, tc := range bad {
		p := quickPlan(core.KindWTP, Timeline{Name: "none"})
		tc.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the plan", tc.name)
		}
	}
}

// TestRunSimMatchesLinkRun pins the golden-trace-safety property at the
// harness level: a chaos run with an empty timeline must produce exactly
// the statistics of the plain link.Run harness on the same configuration —
// the chaos layer's scheduled snapshots and ticks are pure observers.
func TestRunSimMatchesLinkRun(t *testing.T) {
	plan := quickPlan(core.KindWTP, Timeline{Name: "none"})
	res, err := RunSim(plan)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := link.Run(link.RunConfig{
		Kind: plan.Kind, SDP: plan.SDP, Load: plan.Load,
		Horizon: plan.Horizon, Warmup: plan.Warmup, Seed: plan.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != ref.Generated || res.Departed != ref.Departed || res.Dropped != ref.Dropped {
		t.Errorf("counts diverge: chaos gen/dep/drop %d/%d/%d vs link.Run %d/%d/%d",
			res.Generated, res.Departed, res.Dropped, ref.Generated, ref.Departed, ref.Dropped)
	}
	// Utilization divides the same busy time by engine.Now(), and the
	// chaos ticker parks the clock exactly on the horizon while link.Run's
	// last packet event falls just short — a denominator gap of less than
	// one interarrival, not a trace difference.
	if math.Abs(res.Utilization-ref.Utilization) > 1e-3*ref.Utilization {
		t.Errorf("utilization diverges: %v vs %v", res.Utilization, ref.Utilization)
	}
	refRatios := ref.Delays.SuccessiveRatios()
	for i, r := range res.Ratios {
		if r != refRatios[i] {
			t.Errorf("ratio %d diverges: %v vs %v", i, r, refRatios[i])
		}
	}
	if !res.Ok() {
		t.Errorf("control run has violations: %v", res.Violations)
	}
}

// TestRunSimDeterministic: same plan, same seed, byte-identical JSON.
func TestRunSimDeterministic(t *testing.T) {
	tl := Timeline{Name: "mix", Actions: []Action{
		{At: 0.3 * testHorizon, Op: OpScaleLoad, Factor: 1.2},
		{At: 0.5 * testHorizon, Op: OpBurst, Class: 2, Count: 50, Size: 1500},
		{At: 0.6 * testHorizon, Op: OpSetLinkRate, Factor: 0.8},
	}}
	run := func() []byte {
		res, err := RunSim(quickPlan(core.KindWTP, tl))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Errorf("same plan+seed produced different JSON:\n%s\n%s", a, b)
	}

	res, err := RunSim(quickPlan(core.KindWTP, Timeline{Name: "none"}))
	if err != nil {
		t.Fatal(err)
	}
	other := quickPlan(core.KindWTP, Timeline{Name: "none"})
	other.Seed = 8
	res2, err := RunSim(other)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated == res2.Generated && res.Ratios[0] == res2.Ratios[0] {
		t.Error("different seeds produced identical runs")
	}
}

// TestRunSimCatalogInvariants runs the full standard catalog for WTP and
// FCFS at a small horizon: every perturbation, with conservation,
// pool-leak, monotonicity and telemetry-agreement checks live.
func TestRunSimCatalogInvariants(t *testing.T) {
	for _, kind := range []core.Kind{core.KindWTP, core.KindFCFS} {
		for _, plan := range Plans(kind, testHorizon, 1000) {
			res, err := RunSim(plan)
			if err != nil {
				t.Fatalf("%s/%s: %v", kind, plan.Name, err)
			}
			if !res.Ok() {
				t.Errorf("%s/%s: violations: %v", kind, plan.Name, res.Violations)
			}
			if res.Generated == 0 || res.Departed == 0 {
				t.Errorf("%s/%s: empty run (gen=%d dep=%d)", kind, plan.Name, res.Generated, res.Departed)
			}
		}
	}
}

// TestRunSimJudgesSegments uses a longer horizon and a low departure gate
// so the steady-heavy control actually gets judged — and passes for WTP.
func TestRunSimJudgesSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("longer horizon")
	}
	plan := quickPlan(core.KindWTP, Timeline{Name: "none"})
	plan.Horizon = 1e5
	plan.Warmup = 1e4
	plan.Expect.MinDepartures = 100
	res, err := RunSim(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 1 {
		t.Fatalf("got %d segments, want 1: %+v", len(res.Segments), res.Segments)
	}
	seg := res.Segments[0]
	if !seg.Judged {
		t.Fatalf("steady-heavy segment not judged: %+v", seg)
	}
	if !seg.Ok || !res.Ok() {
		t.Errorf("WTP failed its own window: %+v, violations %v", seg, res.Violations)
	}
	if math.Abs(seg.RhoEff-0.95) > 1e-9 {
		t.Errorf("RhoEff = %g, want 0.95", seg.RhoEff)
	}
}

// TestRunSimSourceChurnDrains: pausing a class stops its arrivals, and the
// paused stretch conserves packets; resuming restores arrivals.
func TestRunSimSourceChurn(t *testing.T) {
	tl := Timeline{Name: "churn", Actions: Toggle(3, 0.3*testHorizon, 0.2*testHorizon, 0.8*testHorizon)}
	res, err := RunSim(quickPlan(core.KindWTP, tl))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Errorf("churn run violations: %v", res.Violations)
	}
	// The churned class must still have departures (it was on 0–30%,
	// 50–70%, and 80–100% of the run).
	ctrl, err := RunSim(quickPlan(core.KindWTP, Timeline{Name: "none"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated >= ctrl.Generated {
		t.Errorf("pausing a class did not reduce arrivals: churn %d vs control %d",
			res.Generated, ctrl.Generated)
	}
}

// TestRunSimBurstConservation: injected bursts enter the generated count
// and the pool-leak identity.
func TestRunSimBurst(t *testing.T) {
	tl := Timeline{Name: "burst", Actions: []Action{
		{At: 0.5 * testHorizon, Op: OpBurst, Class: 0, Count: 200, Size: 1500},
	}}
	res, err := RunSim(quickPlan(core.KindWTP, tl))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Errorf("burst run violations: %v", res.Violations)
	}
	ctrl, err := RunSim(quickPlan(core.KindWTP, Timeline{Name: "none"}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != ctrl.Generated+200 {
		t.Errorf("burst generated %d, control %d: want exactly +200", res.Generated, ctrl.Generated)
	}
}

// TestRunSimFlowChurn: the flow-table exercise answers consistently
// across generation bumps, memoizes (hits dominate once warm), and TTL
// eviction reclaims retired generations.
func TestRunSimFlowChurn(t *testing.T) {
	tl := Timeline{Name: "flow-bumps", Actions: []Action{
		{At: 0.3 * testHorizon, Op: OpFlowChurn, Class: 0},
		{At: 0.5 * testHorizon, Op: OpFlowChurn, Class: 3},
	}}
	p := quickPlan(core.KindWTP, tl)
	p.FlowsPerClass = 32
	p.FlowTTL = 0.1 * testHorizon
	res, err := RunSim(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Errorf("flow churn violations: %v", res.Violations)
	}
	classes := len(p.SDP)
	if res.FlowResident < p.FlowsPerClass*classes || res.FlowResident > 2*p.FlowsPerClass*classes {
		t.Errorf("resident flows %d outside [%d,%d]", res.FlowResident,
			p.FlowsPerClass*classes, 2*p.FlowsPerClass*classes)
	}
	if res.FlowEvictions == 0 {
		t.Error("generation bumps produced no evictions; TTL reclaim never ran")
	}
	if res.FlowHits <= res.FlowMisses {
		t.Errorf("hits %d not dominating misses %d; memoization broken", res.FlowHits, res.FlowMisses)
	}

	// A flow-churn action without a flow population is a plan bug.
	bad := quickPlan(core.KindWTP, tl)
	if _, err := RunSim(bad); err == nil || !strings.Contains(err.Error(), "FlowsPerClass") {
		t.Errorf("RunSim accepted flow-churn without flows (err=%v)", err)
	}
	neg := quickPlan(core.KindWTP, Timeline{Name: "none"})
	neg.FlowsPerClass = -1
	if _, err := RunSim(neg); err == nil {
		t.Error("RunSim accepted negative FlowsPerClass")
	}
}

func TestPlansCatalogShape(t *testing.T) {
	plans := Plans(core.KindWTP, 1e6, 77)
	if len(plans) < 6 {
		t.Fatalf("catalog has %d plans, want >= 6", len(plans))
	}
	names := map[string]bool{}
	for i, p := range plans {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %q invalid: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Errorf("duplicate plan name %q", p.Name)
		}
		names[p.Name] = true
		if p.Seed != 77+uint64(i) {
			t.Errorf("plan %q seed %d, want %d", p.Name, p.Seed, 77+uint64(i))
		}
		for _, a := range p.Timeline.Actions {
			if a.At >= p.Horizon {
				t.Errorf("plan %q action at %g beyond horizon %g", p.Name, a.At, p.Horizon)
			}
		}
	}
	for _, p := range Plans(core.KindFCFS, 1e6, 0) {
		if !p.Expect.Flat {
			t.Errorf("FCFS plan %q not marked flat", p.Name)
		}
	}
}

func TestRunSimRejectsBadPlan(t *testing.T) {
	p := quickPlan(core.KindWTP, Timeline{Name: "none"})
	p.Name = ""
	if _, err := RunSim(p); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("RunSim accepted a nameless plan (err=%v)", err)
	}
	p = quickPlan(core.Kind("nope"), Timeline{Name: "none"})
	if _, err := RunSim(p); err == nil {
		t.Error("RunSim accepted an unknown scheduler kind")
	}
}
