package chaos

import (
	"fmt"
	"net/netip"
	"sort"

	"pdds/internal/classify"
	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/stats"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

// SimPlan describes one long-horizon stress simulation: a seeded workload,
// a scheduler, a perturbation timeline and the expectations the run is
// judged against. Everything derives from Seed, so a plan identifies a
// bit-exact run — a failing (plan, seed) pair reproduces exactly.
type SimPlan struct {
	Name string
	Kind core.Kind
	SDP  []float64
	Load traffic.LoadSpec
	// LinkRate is the base link rate in bytes per time unit
	// (default link.PaperLinkRate).
	LinkRate float64
	// Horizon and Warmup bound the run; packets departing before Warmup
	// are excluded from ratio statistics.
	Horizon float64
	Warmup  float64
	Seed    uint64
	// Timeline is the perturbation script (empty = stationary control).
	Timeline Timeline
	// SamplePeriod is the telemetry monotonicity sampling period
	// (default Horizon/200).
	SamplePeriod float64
	// FlowsPerClass, when > 0, runs a live classifier flow table
	// alongside the simulation: each class gets this many synthetic
	// flows, re-resolved at every sample tick, with OpFlowChurn timeline
	// actions retiring a class's flow population mid-run. The table's
	// answers are checked for consistency at every tick.
	FlowsPerClass int
	// FlowTTL is the flow table's idle eviction age in simulation time
	// units (default Horizon/5; only used with FlowsPerClass > 0).
	FlowTTL float64
	// Control, when non-nil, closes the DDP loop during the run: a
	// controller observes the link's telemetry every ControlInterval and
	// retunes the scheduler through the core.Retuner seam on out-of-band
	// windows. The config's SDP and Kind default to the plan's. Nil runs
	// exactly the uncontrolled harness.
	Control *control.Config
	// ControlInterval is the controller's observation window in
	// simulation time units (default Horizon/40; only used with Control).
	ControlInterval float64
	Expect          Expectation
}

// Expectation parameterizes how a run's delay ratios are judged.
type Expectation struct {
	// Flat expects adjacent delay ratios near 1 (FCFS's absence of
	// differentiation) instead of the SDP targets.
	Flat bool
	// MinDepartures is the per-class departure count a segment needs
	// before its ratios are judged (default 500): short or starved
	// segments are reported but not held to a window.
	MinDepartures uint64
	// SkipRatios disables ratio-window judging entirely (segments are
	// still reported). Used by plans whose perturbation legitimately
	// destroys the ratios — e.g. a packet train injected into one class
	// queues behind itself and inflates that class's mean delay by an
	// amount no work-conserving scheduler can differentiate away. Such
	// plans stress conservation and pool integrity, not differentiation.
	SkipRatios bool
	// SegmentWarmup is the fraction of each segment excluded from the
	// judged ratio window at the segment's start (default 0.15, negative
	// disables). Every segment boundary is a perturbation — a load step,
	// a mix shift, or a controller retune — and judging the whole-segment
	// average lets the boundary transient mask a steady-state violation
	// (and vice versa); the verdict must come from the settled tail.
	SegmentWarmup float64
}

func (p SimPlan) withDefaults() SimPlan {
	if p.LinkRate == 0 {
		p.LinkRate = link.PaperLinkRate
	}
	if p.SamplePeriod == 0 {
		p.SamplePeriod = p.Horizon / 200
	}
	if p.Expect.MinDepartures == 0 {
		p.Expect.MinDepartures = 500
	}
	if p.Expect.SegmentWarmup == 0 {
		p.Expect.SegmentWarmup = 0.15
	}
	if p.Expect.SegmentWarmup < 0 {
		p.Expect.SegmentWarmup = 0
	}
	if p.FlowsPerClass > 0 && p.FlowTTL == 0 {
		p.FlowTTL = p.Horizon / 5
	}
	if p.Control != nil {
		if p.ControlInterval == 0 {
			p.ControlInterval = p.Horizon / 40
		}
		cc := *p.Control
		if cc.SDP == nil {
			cc.SDP = p.SDP
		}
		if cc.Kind == "" {
			cc.Kind = p.Kind
		}
		p.Control = &cc
	}
	return p
}

// Validate checks the plan.
func (p SimPlan) Validate() error {
	pp := p.withDefaults()
	if pp.Name == "" {
		return fmt.Errorf("chaos: plan has no name")
	}
	if len(pp.SDP) != len(pp.Load.Fractions) {
		return fmt.Errorf("chaos: plan %q: %d SDPs but %d class fractions",
			pp.Name, len(pp.SDP), len(pp.Load.Fractions))
	}
	if !(pp.Horizon > 0) || pp.Warmup < 0 || pp.Warmup >= pp.Horizon {
		return fmt.Errorf("chaos: plan %q: bad horizon %g / warmup %g", pp.Name, pp.Horizon, pp.Warmup)
	}
	if err := pp.Timeline.Validate(len(pp.SDP)); err != nil {
		return fmt.Errorf("chaos: plan %q: %w", pp.Name, err)
	}
	if pp.FlowsPerClass < 0 {
		return fmt.Errorf("chaos: plan %q: flows per class %d must be >= 0", pp.Name, pp.FlowsPerClass)
	}
	if pp.Expect.SegmentWarmup >= 1 {
		return fmt.Errorf("chaos: plan %q: segment warmup %g must be < 1", pp.Name, pp.Expect.SegmentWarmup)
	}
	if pp.Control != nil {
		if err := pp.Control.Validate(); err != nil {
			return fmt.Errorf("chaos: plan %q: %w", pp.Name, err)
		}
		if !(pp.ControlInterval > 0) || pp.ControlInterval >= pp.Horizon {
			return fmt.Errorf("chaos: plan %q: control interval %g out of (0,horizon)", pp.Name, pp.ControlInterval)
		}
	}
	if pp.FlowsPerClass == 0 {
		for _, a := range pp.Timeline.Actions {
			if a.Op == OpFlowChurn {
				return fmt.Errorf("chaos: plan %q: %s action needs FlowsPerClass > 0", pp.Name, a.Op)
			}
		}
	}
	return pp.Load.Validate()
}

// Segment is the judged slice of a run between two timeline boundaries —
// one load regime. Ratios are the observed adjacent mean-delay ratios over
// the segment only (from interval telemetry, see telemetry.Snapshot.Sub).
type Segment struct {
	Start  float64 `json:"start"`
	End    float64 `json:"end"`
	RhoEff float64 `json:"rho_eff"`
	// JudgedFrom is where the judged window actually starts: Start plus
	// the segment warm-up exclusion (equal to Start when the exclusion
	// is disabled). Ratios and Departures cover [JudgedFrom, End).
	JudgedFrom float64 `json:"judged_from,omitempty"`
	// Departures is the minimum per-class departure count in the segment
	// (the judging gate).
	Departures uint64    `json:"departures"`
	Ratios     []float64 `json:"ratios"`
	// WindowLo/WindowHi bound ratio/target (or the raw ratio when the
	// expectation is Flat). Zero when the segment was not judged.
	WindowLo float64 `json:"window_lo"`
	WindowHi float64 `json:"window_hi"`
	Judged   bool    `json:"judged"`
	Ok       bool    `json:"ok"`
}

// SimResult is the outcome of one stress run. Violations empty = pass.
type SimResult struct {
	Plan      string `json:"plan"`
	Scheduler string `json:"scheduler"`
	Seed      uint64 `json:"seed"`

	Generated  uint64 `json:"generated"`
	Departed   uint64 `json:"departed"`
	Dropped    uint64 `json:"dropped"`
	Backlogged int    `json:"backlogged"`
	InFlight   int    `json:"in_flight"`

	Utilization  float64   `json:"utilization"`
	Ratios       []float64 `json:"ratios"` // whole post-warmup run
	TargetRatios []float64 `json:"target_ratios"`

	Segments []Segment `json:"segments"`

	// PoolLeaked is allocated − (free + backlogged + in-flight) at the
	// horizon; any nonzero value means a packet escaped the free list.
	PoolLeaked int64 `json:"pool_leaked"`

	// Retunes is the number of controller decisions applied through the
	// retune seam (Control plans only).
	Retunes uint64 `json:"retunes,omitempty"`
	// ControlParams is the controller's final parameter vector (Control
	// plans only).
	ControlParams []float64 `json:"control_params,omitempty"`

	// Flow-table exercise outcome (FlowsPerClass > 0 plans only).
	FlowResident  int    `json:"flow_resident,omitempty"`
	FlowHits      uint64 `json:"flow_hits,omitempty"`
	FlowMisses    uint64 `json:"flow_misses,omitempty"`
	FlowEvictions uint64 `json:"flow_evictions,omitempty"`

	Violations []string `json:"violations,omitempty"`
}

// Ok reports whether every invariant and window held.
func (r *SimResult) Ok() bool { return len(r.Violations) == 0 }

// ratioWindow maps a segment's effective utilization to the allowed
// observed/target band (observed/1 when flat). The bands encode the
// paper's own findings: WTP/BPR track the DDPs tightly in heavy load and
// undershoot in moderate load (§5.2, Fig. 4), so moderate-load windows are
// wide and one-sided-ish, and light-load segments are not judged at all
// (delays there are dominated by transmission time, not queueing).
func ratioWindow(rhoEff float64, flat bool) (lo, hi float64, judged bool) {
	if flat {
		// FCFS serves all classes from one queue: ratios hug 1 at any
		// load where queueing happens at all.
		if rhoEff < 0.6 {
			return 0, 0, false
		}
		return 0.70, 1.45, true
	}
	switch {
	case rhoEff >= 0.9:
		return 0.50, 1.50, true
	case rhoEff >= 0.7:
		return 0.25, 1.60, true
	default:
		return 0, 0, false
	}
}

// regime is the arithmetically tracked load state used to precompute each
// segment's effective utilization (no RNG involved, so it is derived from
// the timeline alone).
type regime struct {
	loadScale  float64
	classScale []float64
	active     []bool
	linkScale  float64
}

func newRegime(classes int) *regime {
	r := &regime{loadScale: 1, linkScale: 1,
		classScale: make([]float64, classes), active: make([]bool, classes)}
	for i := range r.classScale {
		r.classScale[i] = 1
		r.active[i] = true
	}
	return r
}

// apply folds a into the tracked load state. OpBurst and OpFlowChurn are
// deliberately ignored: neither changes the sustained arrival-rate regime
// a segment's ratio window is chosen from.
func (r *regime) apply(a Action) {
	switch a.Op {
	case OpScaleLoad:
		r.loadScale *= a.Factor
	case OpScaleClass:
		r.classScale[a.Class] *= a.Factor
	case OpSetLinkRate:
		r.linkScale = a.Factor
	case OpSourceOff:
		r.active[a.Class] = false
	case OpSourceOn:
		r.active[a.Class] = true
	}
}

// rhoEff returns the offered utilization under the current regime:
// scaled per-class byte arrival rate over scaled capacity.
func (r *regime) rhoEff(baseRates []float64, meanSize, baseLinkRate float64) float64 {
	var byteRate float64
	for i, lambda := range baseRates {
		if !r.active[i] {
			continue
		}
		byteRate += lambda * r.classScale[i] * r.loadScale * meanSize
	}
	return byteRate / (baseLinkRate * r.linkScale)
}

// flowRec drives a real classifier flow table in lockstep with the
// simulation clock: FlowsPerClass synthetic 5-tuples per class, each
// re-resolved at every sample tick. Every key embeds its class and
// generation, so a lookup returning a different class than the key
// encodes is a flow-table correctness violation, not a modelling
// artifact. OpFlowChurn bumps a class's generation: its old keys go
// idle and must age out of the table via TTL eviction.
type flowRec struct {
	engine     *sim.Engine
	table      *classify.FlowTable
	flows      int
	gen        []uint32 // per-class flow generation
	violations []string
}

// flowTimeScale converts the engine's float64 clock to the flow table's
// integer time base with millitick resolution.
const flowTimeScale = 1e3

func (fr *flowRec) key(class, idx int) classify.FlowKey {
	gen := fr.gen[class]
	return classify.FlowKey{
		Src:     netip.AddrFrom4([4]byte{10, byte(class), byte(gen >> 8), byte(gen)}),
		Dst:     netip.AddrFrom4([4]byte{192, 0, 2, 1}),
		SrcPort: uint16(1024 + idx),
		DstPort: 7000,
		Proto:   classify.ProtoUDP,
	}
}

// flowTick resolves every live flow against the table — memoized hits
// must return the class the key encodes, misses re-insert — then sweeps
// expired generations.
func flowTick(arg any) bool {
	fr := arg.(*flowRec)
	now := int64(fr.engine.Now() * flowTimeScale)
	for class := range fr.gen {
		for i := 0; i < fr.flows; i++ {
			k := fr.key(class, i)
			if got, ok := fr.table.Lookup(k, now); ok {
				if got != class {
					fr.violations = append(fr.violations, fmt.Sprintf(
						"flow-table: key %v resolved to class %d, want %d", k, got, class))
				}
			} else {
				fr.table.Insert(k, class, now)
			}
		}
	}
	fr.table.Sweep(now)
	return true
}

// simState binds a timeline to one live run; boundAction is the
// closure-free AtFunc argument for a scheduled action.
type simState struct {
	engine   *sim.Engine
	link     *link.Link
	spec     traffic.LoadSpec
	base     []float64 // per-class base arrival rates (pkt/tu)
	regime   *regime
	sources  map[int]*traffic.Source
	baseRate float64 // base link rate (bytes/tu)
	pool     *core.PacketPool
	sink     traffic.Sink
	burstID  uint64
	flows    *flowRec // nil unless the plan exercises the flow table
}

type boundAction struct {
	st *simState
	a  Action
}

func chaosApply(arg any) {
	b := arg.(*boundAction)
	b.st.applyAction(b.a)
}

func (st *simState) applyAction(a Action) {
	st.regime.apply(a)
	switch a.Op {
	case OpScaleLoad:
		for class, src := range st.sources {
			st.retune(class, src)
		}
	case OpScaleClass:
		if src, ok := st.sources[a.Class]; ok {
			st.retune(a.Class, src)
		}
	case OpSetLinkRate:
		st.link.SetRate(a.Factor * st.baseRate)
	case OpSourceOff:
		if src, ok := st.sources[a.Class]; ok {
			src.Pause()
		}
	case OpSourceOn:
		if src, ok := st.sources[a.Class]; ok {
			src.Resume()
		}
	case OpBurst:
		now := st.engine.Now()
		for j := 0; j < a.Count; j++ {
			p := st.pool.Get()
			st.burstID++
			p.ID = uint64(0xB)<<56 + st.burstID
			p.Class = a.Class
			p.Size = a.Size
			p.Arrival = now
			p.Birth = now
			st.sink(p)
		}
	case OpFlowChurn:
		if st.flows != nil {
			st.flows.gen[a.Class]++
		}
	}
}

// retune rebuilds class's interarrival distribution at its current scaled
// rate (effective immediately; see Source.SetInter).
func (st *simState) retune(class int, src *traffic.Source) {
	rate := st.base[class] * st.regime.classScale[class] * st.regime.loadScale
	src.SetInter(st.spec.Inter(rate))
}

// controlRec drives the closed-loop controller from the engine clock:
// every tick it hands the controller the registry's cumulative snapshot
// and pushes any decision through the scheduler's retune seam.
type controlRec struct {
	reg     *telemetry.Registry
	ctl     *control.Controller
	sched   core.Scheduler
	retunes uint64
	errs    []string
}

func controlTick(arg any) bool {
	cr := arg.(*controlRec)
	did, err := cr.ctl.Apply(cr.sched, cr.reg.Snapshot())
	if err != nil {
		cr.errs = append(cr.errs, err.Error())
		return false // a broken seam would repeat every tick; stop once
	}
	if did {
		cr.retunes++
	}
	return true
}

// boundaryRec collects telemetry snapshots at segment boundaries.
type boundaryRec struct {
	reg   *telemetry.Registry
	snaps []telemetry.Snapshot
}

func boundarySnap(arg any) {
	b := arg.(*boundaryRec)
	b.snaps = append(b.snaps, b.reg.Snapshot())
}

// monoRec checks telemetry counter monotonicity at every sample tick.
type monoRec struct {
	reg        *telemetry.Registry
	prev       telemetry.Snapshot
	violations []string
}

func monoTick(arg any) bool {
	m := arg.(*monoRec)
	cur := m.reg.Snapshot()
	m.violations = append(m.violations, cur.DecreasedFrom(m.prev)...)
	m.prev = cur
	return true
}

// RunSim executes one stress plan and returns its judged result; err
// reports setup problems only — invariant breaches land in
// SimResult.Violations.
func RunSim(plan SimPlan) (*SimResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	p := plan.withDefaults()

	sched, err := core.New(p.Kind, p.SDP, p.LinkRate)
	if err != nil {
		return nil, err
	}
	engine := sim.NewEngine()
	l := link.New(engine, p.LinkRate, sched)
	reg := telemetry.NewWithSDP(p.SDP)
	l.Telemetry = reg
	pool := core.NewPacketPool()
	l.Pool = pool

	delays := stats.NewClassDelays(len(p.SDP))
	l.OnDepart = func(pk *core.Packet) {
		if pk.Departure >= p.Warmup {
			delays.Observe(pk)
		}
	}

	sources, err := p.Load.Build(p.LinkRate, p.Seed)
	if err != nil {
		return nil, err
	}
	for _, s := range sources {
		s.Pool = pool
	}
	var generated uint64
	sink := func(pk *core.Packet) {
		generated++
		l.Arrive(pk)
	}
	traffic.StartAll(engine, sources, sink)

	st := &simState{
		engine:   engine,
		link:     l,
		spec:     p.Load,
		base:     p.Load.Rates(p.LinkRate),
		regime:   newRegime(len(p.SDP)),
		sources:  make(map[int]*traffic.Source, len(sources)),
		baseRate: p.LinkRate,
		pool:     pool,
		sink:     sink,
	}
	for _, s := range sources {
		st.sources[s.Class] = s
	}
	if p.FlowsPerClass > 0 {
		st.flows = &flowRec{
			engine: engine,
			table: classify.NewFlowTable(classify.FlowTableConfig{
				TTL: int64(p.FlowTTL * flowTimeScale),
			}),
			flows: p.FlowsPerClass,
			gen:   make([]uint32, len(p.SDP)),
		}
		engine.Every(p.SamplePeriod, p.SamplePeriod, flowTick, st.flows)
	}
	for _, a := range p.Timeline.Actions {
		engine.AtFunc(a.At, chaosApply, &boundAction{st: st, a: a})
	}

	var ctl *controlRec
	if p.Control != nil {
		c, cerr := control.New(*p.Control)
		if cerr != nil {
			return nil, cerr
		}
		if _, ok := sched.(core.Retuner); !ok {
			return nil, fmt.Errorf("chaos: plan %q: %s is not retunable", p.Name, p.Kind)
		}
		ctl = &controlRec{reg: reg, ctl: c, sched: sched}
		engine.Every(p.ControlInterval, p.ControlInterval, controlTick, ctl)
	}

	// Segment boundaries: warmup, every action instant inside the judged
	// window, and the horizon. Boundary snapshots are scheduled after the
	// actions above, so at equal times the snapshot observes the
	// pre-perturbation counters last (insertion order breaks ties).
	bounds := segmentBounds(p)
	rec := &boundaryRec{reg: reg}
	for _, t := range bounds {
		engine.AtFunc(t, boundarySnap, rec)
	}
	// Interior warm points: one snapshot per segment at the end of its
	// warm-up exclusion, so judging can start from the settled part.
	warmRec := &boundaryRec{reg: reg}
	if frac := p.Expect.SegmentWarmup; frac > 0 {
		for i := 0; i+1 < len(bounds); i++ {
			engine.AtFunc(bounds[i]+frac*(bounds[i+1]-bounds[i]), boundarySnap, warmRec)
		}
	}

	mono := &monoRec{reg: reg}
	engine.Every(p.SamplePeriod, p.SamplePeriod, monoTick, mono)

	engine.RunUntil(p.Horizon)

	res := &SimResult{
		Plan:         p.Name,
		Scheduler:    sched.Name(),
		Seed:         p.Seed,
		Generated:    generated,
		Departed:     l.Departed(),
		Dropped:      l.Dropped(),
		Utilization:  l.Utilization(),
		TargetRatios: reg.TargetRatios(),
		Ratios:       delays.SuccessiveRatios(),
	}
	for i := 0; i < sched.NumClasses(); i++ {
		res.Backlogged += sched.Len(i)
	}
	if l.Busy() {
		res.InFlight = 1
	}

	// Invariant: exact conservation — every generated packet is departed,
	// dropped, backlogged, or on the wire.
	if got := res.Departed + res.Dropped + uint64(res.Backlogged) + uint64(res.InFlight); got != res.Generated {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"conservation: generated=%d != departed=%d + dropped=%d + backlog=%d + inflight=%d",
			res.Generated, res.Departed, res.Dropped, res.Backlogged, res.InFlight))
	}
	// Invariant: zero pool leaks — every allocated packet is either back
	// in the free list or still owned by the scheduler/link.
	res.PoolLeaked = int64(pool.Allocated()) - int64(pool.Free()) - int64(res.Backlogged) - int64(res.InFlight)
	if res.PoolLeaked != 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"pool: %d packets leaked (allocated=%d free=%d backlog=%d inflight=%d)",
			res.PoolLeaked, pool.Allocated(), pool.Free(), res.Backlogged, res.InFlight))
	}
	// Invariant: telemetry counters only ever grew.
	for _, v := range mono.violations {
		res.Violations = append(res.Violations, "monotonicity: "+v)
	}
	// Flow-table exercise: the table must have answered consistently at
	// every tick, and retired generations must not pile up — at any
	// instant at most the current and one aging generation per class can
	// be resident.
	if fr := st.flows; fr != nil {
		fs := fr.table.Stats()
		res.FlowResident = fs.Resident
		res.FlowHits = fs.Hits
		res.FlowMisses = fs.Misses
		res.FlowEvictions = fs.Evictions
		res.Violations = append(res.Violations, fr.violations...)
		if limit := 2 * p.FlowsPerClass * len(p.SDP); fs.Resident > limit {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"flow-table: %d resident flows exceed the churn bound %d (evictions=%d)",
				fs.Resident, limit, fs.Evictions))
		}
	}
	// Controller outcome: seam errors are violations, not silent stops.
	if ctl != nil {
		res.Retunes = ctl.retunes
		res.ControlParams = ctl.ctl.Params()
		for _, e := range ctl.errs {
			res.Violations = append(res.Violations, "control: "+e)
		}
	}
	// Telemetry must agree with the link's own accounting.
	arr, dep, drops := reg.Snapshot().Totals()
	if arr != res.Generated || dep != res.Departed || drops != res.Dropped {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"telemetry: counters (arr=%d dep=%d drop=%d) disagree with link (gen=%d dep=%d drop=%d)",
			arr, dep, drops, res.Generated, res.Departed, res.Dropped))
	}

	res.Segments = judgeSegments(p, bounds, rec.snaps, warmRec.snaps)
	for _, seg := range res.Segments {
		if seg.Judged && !seg.Ok {
			res.Violations = append(res.Violations, fmt.Sprintf(
				"ratio-window: segment [%g,%g) rho_eff=%.3f ratios=%v outside [%.2f,%.2f]×target",
				seg.Start, seg.End, seg.RhoEff, seg.Ratios, seg.WindowLo, seg.WindowHi))
		}
	}
	return res, nil
}

// segmentBounds returns the sorted, deduplicated segment boundary times:
// warmup, each distinct action time in (warmup, horizon), and the horizon.
func segmentBounds(p SimPlan) []float64 {
	set := map[float64]bool{p.Warmup: true, p.Horizon: true}
	for _, a := range p.Timeline.Actions {
		if a.At > p.Warmup && a.At < p.Horizon {
			set[a.At] = true
		}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// judgeSegments computes each segment's interval ratios from the boundary
// snapshots and judges them against the load-regime window. When the
// plan's segment warm-up exclusion is active, warmSnaps carries one
// interior snapshot per segment (taken at Start + warmup·(End−Start)) and
// the judged interval is [warm point, End) — the settled tail — instead
// of the whole segment, whose boundary transient can average a
// steady-state violation away.
func judgeSegments(p SimPlan, bounds []float64, snaps, warmSnaps []telemetry.Snapshot) []Segment {
	if len(snaps) != len(bounds) || len(snaps) < 2 {
		return nil
	}
	frac := p.Expect.SegmentWarmup
	useWarm := frac > 0 && len(warmSnaps) == len(bounds)-1
	// Replay the timeline arithmetically to know each segment's regime.
	acts := append([]Action(nil), p.Timeline.Actions...)
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })
	reg := newRegime(len(p.SDP))
	meanSize := p.Load.Sizes.Mean()
	baseRates := p.Load.Rates(p.LinkRate)
	next := 0

	var out []Segment
	for i := 0; i+1 < len(bounds); i++ {
		start, end := bounds[i], bounds[i+1]
		for next < len(acts) && acts[next].At <= start {
			reg.apply(acts[next])
			next++
		}
		base, judgedFrom := snaps[i], start
		if useWarm {
			base = warmSnaps[i]
			judgedFrom = start + frac*(end-start)
		}
		iv := snaps[i+1].Sub(base)
		seg := Segment{
			Start:      start,
			End:        end,
			JudgedFrom: judgedFrom,
			RhoEff:     reg.rhoEff(baseRates, meanSize, p.LinkRate),
			Ratios:     iv.Ratios,
		}
		// The judging gate is the scarcest class's departure count.
		seg.Departures = ^uint64(0)
		for _, c := range iv.Classes {
			if c.Departures < seg.Departures {
				seg.Departures = c.Departures
			}
		}
		lo, hi, judged := ratioWindow(seg.RhoEff, p.Expect.Flat)
		if judged && !p.Expect.SkipRatios && seg.Departures >= p.Expect.MinDepartures {
			seg.Judged, seg.Ok = true, true
			seg.WindowLo, seg.WindowHi = lo, hi
			for k, ratio := range seg.Ratios {
				target := 1.0
				if !p.Expect.Flat && k < len(snaps[0].TargetRatios) {
					target = snaps[0].TargetRatios[k]
				}
				if ratio == 0 || target == 0 {
					continue
				}
				if q := ratio / target; q < lo || q > hi {
					seg.Ok = false
				}
			}
		}
		out = append(out, seg)
	}
	return out
}
