package chaos

import (
	"testing"
	"time"
)

// TestRunNetCatalog drives every standard live-forwarder fault plan over
// loopback with a short sending phase and checks the judged invariants:
// exact conservation under injected faults, injectors actually firing, and
// the plan-specific forwarding expectations.
func TestRunNetCatalog(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback forwarder")
	}
	for _, plan := range NetPlans() {
		plan := plan
		t.Run(plan.Name, func(t *testing.T) {
			plan.Duration = 250 * time.Millisecond
			res, err := RunNet(plan)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Ok() {
				t.Errorf("violations: %v", res.Violations)
			}
			if !res.FaultsInjected {
				t.Error("fault plan never fired")
			}
		})
	}
}

// TestRunNetWireDisturbanceVisible: corruption-heavy plans must actually
// disturb what the receiver sees — otherwise the injector is a no-op.
func TestRunNetWireDisturbanceVisible(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback forwarder")
	}
	res, err := RunNet(NetPlan{
		Name:            "corrupt-all",
		Fault:           &FaultPlan{Name: "corrupt-all", CorruptEvery: 2},
		Duration:        200 * time.Millisecond,
		ExpectForwarded: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Errorf("violations: %v", res.Violations)
	}
	if !res.SinkDisturbed {
		t.Error("half the datagrams were corrupted but the sink saw none")
	}
}

func TestRunNetRejectsBadPlans(t *testing.T) {
	if _, err := RunNet(NetPlan{}); err == nil {
		t.Error("RunNet accepted a nameless plan")
	}
	if _, err := RunNet(NetPlan{Name: "tiny", Size: 4}); err == nil {
		t.Error("RunNet accepted a sub-header datagram size")
	}
}
