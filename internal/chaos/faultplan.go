package chaos

import (
	"errors"
	"math/rand/v2"
	"time"
)

// ErrInjected is the write error every injected egress failure returns.
var ErrInjected = errors.New("chaos: injected egress write failure")

// FaultPlan is a deterministic egress fault injector for the UDP forwarder
// (it implements netio.FaultInjector). Faults trigger on every Nth egress
// datagram — counted over first attempts, so retries of one datagram see a
// consistent decision — which makes a plan's behaviour an exact function
// of the datagram sequence. Setting Seed adds PCG-driven phase jitter:
// each *Every trigger then hits a pseudorandom 1-in-N subset instead of a
// fixed stride, still perfectly replayable from the seed.
//
// A single datagram matches at most one fault; precedence is persistent
// failure, transient failure, corruption, truncation, duplication,
// reordering, stall. All counters are written from the forwarder's single
// transmit goroutine and may be read after Forwarder.Close returns.
type FaultPlan struct {
	// Name identifies the plan in reports.
	Name string
	// Seed, when nonzero, randomizes which datagrams each *Every trigger
	// selects (probability 1/N per datagram) instead of a fixed stride.
	Seed uint64

	// CorruptEvery flips the version byte and a payload byte of a copy of
	// every Nth datagram, so the receiver sees an undecodable datagram.
	CorruptEvery uint64
	// TruncateEvery sends only the first half of every Nth datagram.
	TruncateEvery uint64
	// DupEvery sends every Nth datagram twice.
	DupEvery uint64
	// ReorderEvery holds every Nth datagram back and emits it after the
	// next datagram, swapping their wire order.
	ReorderEvery uint64
	// StallEvery sleeps Stall before sending every Nth datagram,
	// modelling a receiver (or path) stall; the stall is paid out of the
	// forwarder's pacer credit like any slow write.
	StallEvery uint64
	Stall      time.Duration
	// TransientEvery fails the first TransientFails write attempts of
	// every Nth datagram with ErrInjected; within the forwarder's retry
	// budget the datagram still gets through, beyond it the datagram is
	// drop-accounted.
	TransientEvery uint64
	TransientFails int
	// FailFrom/FailTo inject a persistent outage: every attempt for
	// datagrams with index in [FailFrom, FailTo) fails. The zero window
	// disables the outage.
	FailFrom, FailTo uint64

	// Counts of injected faults (by datagram, not attempt).
	Corrupted  uint64
	Truncated  uint64
	Duplicated uint64
	Reordered  uint64
	Stalled    uint64
	Transient  uint64
	Persistent uint64

	rng  *rand.Rand
	n    uint64 // first-attempt datagrams seen
	idx  uint64 // index of the datagram currently being attempted
	kind faultKind
	held []byte // copied payload awaiting reordered emission
}

type faultKind int

const (
	faultNone faultKind = iota
	faultPersistent
	faultTransient
	faultCorrupt
	faultTruncate
	faultDup
	faultReorder
	faultStall
)

// hit reports whether an every-Nth trigger fires for the current datagram.
func (f *FaultPlan) hit(every uint64) bool {
	if every == 0 {
		return false
	}
	if f.rng != nil {
		return f.rng.Uint64()%every == 0
	}
	return f.idx%every == every-1
}

// classify decides (once, on attempt 0) which fault the datagram gets.
func (f *FaultPlan) classify() faultKind {
	switch {
	case f.FailTo > f.FailFrom && f.idx >= f.FailFrom && f.idx < f.FailTo:
		return faultPersistent
	case f.hit(f.TransientEvery) && f.TransientFails > 0:
		return faultTransient
	case f.hit(f.CorruptEvery):
		return faultCorrupt
	case f.hit(f.TruncateEvery):
		return faultTruncate
	case f.hit(f.DupEvery):
		return faultDup
	case f.hit(f.ReorderEvery):
		return faultReorder
	case f.hit(f.StallEvery):
		return faultStall
	default:
		return faultNone
	}
}

// Write implements netio.FaultInjector.
func (f *FaultPlan) Write(payload []byte, attempt int, send func([]byte) (int, error)) (int, error) {
	if attempt == 0 {
		if f.Seed != 0 && f.rng == nil {
			f.rng = rand.New(rand.NewPCG(f.Seed, 0x5eed))
		}
		f.idx = f.n
		f.n++
		f.kind = f.classify()
		switch f.kind {
		case faultPersistent:
			f.Persistent++
		case faultTransient:
			f.Transient++
		case faultCorrupt:
			f.Corrupted++
		case faultTruncate:
			f.Truncated++
		case faultDup:
			f.Duplicated++
		case faultReorder:
			f.Reordered++
		case faultStall:
			f.Stalled++
		}
	}

	switch f.kind {
	case faultPersistent:
		return 0, ErrInjected
	case faultTransient:
		if attempt < f.TransientFails {
			return 0, ErrInjected
		}
		return f.sendWithHeld(payload, send)
	case faultCorrupt:
		// Corrupt a copy: the forwarder recycles payload buffers, and a
		// retry must start from the pristine bytes.
		c := append([]byte(nil), payload...)
		c[0] ^= 0xFF
		c[len(c)/2] ^= 0xFF
		return f.sendWithHeld(c, send)
	case faultTruncate:
		return f.sendWithHeld(payload[:len(payload)/2], send)
	case faultDup:
		if n, err := send(payload); err != nil {
			return n, err
		}
		return f.sendWithHeld(payload, send)
	case faultReorder:
		if f.held != nil {
			// A datagram is already held back; emit the older one first
			// rather than holding two.
			return f.sendWithHeld(payload, send)
		}
		// Claim success now; the copy goes out after the next datagram.
		f.held = append([]byte(nil), payload...)
		return len(payload), nil
	case faultStall:
		if f.Stall > 0 {
			time.Sleep(f.Stall)
		}
		return f.sendWithHeld(payload, send)
	default:
		return f.sendWithHeld(payload, send)
	}
}

// sendWithHeld transmits payload and then any held-back (reordered)
// datagram, so the swap completes on the first following send.
func (f *FaultPlan) sendWithHeld(payload []byte, send func([]byte) (int, error)) (int, error) {
	n, err := send(payload)
	if err != nil {
		return n, err
	}
	if f.held != nil {
		held := f.held
		f.held = nil
		// Best effort: a failed late emission is indistinguishable from
		// wire loss of an already-acknowledged datagram.
		send(held)
	}
	return n, nil
}

// Injected returns the total number of datagrams a fault was applied to.
func (f *FaultPlan) Injected() uint64 {
	return f.Corrupted + f.Truncated + f.Duplicated + f.Reordered +
		f.Stalled + f.Transient + f.Persistent
}
