package chaos

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"pdds/internal/core"
	"pdds/internal/netio"
)

// The standard fault plans must satisfy the forwarder's injector contract.
var _ netio.FaultInjector = (*FaultPlan)(nil)

// NetPlan describes one live-forwarder fault scenario: a loopback
// forwarder under a paced multi-class sender, with a FaultPlan on its
// egress. Wall-clock scheduling makes exact counts nondeterministic, so a
// NetPlan is judged on invariants that must hold for *any* interleaving:
// exact conservation after the drain, a clean (empty) queue, and the
// plan-specific expectations below.
type NetPlan struct {
	Name  string
	Fault *FaultPlan
	// Scheduler/SDP/RateBps/MaxQueue configure the forwarder (defaults:
	// WTP, 1..2^k, 4 Mbps, 512).
	Scheduler core.Kind
	SDP       []float64
	RateBps   float64
	MaxQueue  int
	// Duration is the sending phase; Offered the load multiple of
	// RateBps (default 1.3); Size the datagram size (default 300).
	Duration time.Duration
	Offered  float64
	Size     int
	// Shards is the forwarder's parallel ingress shard count (0 or 1 =
	// classic single-socket path). Sharded plans exercise the SPSC rings,
	// the deadline merge, and mid-flight-close conservation under the
	// same wire faults as their single-shard counterparts.
	Shards int
	// ExpectAllDropped asserts nothing is forwarded (whole-run outage
	// plans); ExpectForwarded asserts forwarding survived the faults.
	ExpectAllDropped bool
	ExpectForwarded  bool
}

func (p NetPlan) withDefaults() NetPlan {
	if p.Scheduler == "" {
		p.Scheduler = core.KindWTP
	}
	if len(p.SDP) == 0 {
		p.SDP = []float64{1, 2, 4, 8}
	}
	if p.RateBps == 0 {
		p.RateBps = 4e6
	}
	if p.MaxQueue == 0 {
		p.MaxQueue = 512
	}
	if p.Duration == 0 {
		p.Duration = 500 * time.Millisecond
	}
	if p.Offered == 0 {
		p.Offered = 1.3
	}
	if p.Size == 0 {
		p.Size = 300
	}
	return p
}

// NetResult is the judged outcome of one live fault scenario. Fields are
// stable booleans (not counts) so that a passing run's JSON report is
// byte-identical across repetitions.
type NetResult struct {
	Plan string `json:"plan"`
	// Conserved: Received = Forwarded + Dropped + BadHeader + BadClass
	// exactly, with nothing queued, after Close.
	Conserved bool `json:"conserved"`
	// FaultsInjected: the plan's injector fired at least once.
	FaultsInjected bool `json:"faults_injected"`
	// ForwardedSome / AllDropped summarize where the traffic went.
	ForwardedSome bool `json:"forwarded_some"`
	AllDropped    bool `json:"all_dropped"`
	// SinkDisturbed: the receiver observed at least one corrupt,
	// truncated, duplicated or reordered datagram (only meaningful for
	// plans injecting wire-visible faults).
	SinkDisturbed bool     `json:"sink_disturbed"`
	Violations    []string `json:"violations,omitempty"`
}

// Ok reports whether every invariant and expectation held.
func (r *NetResult) Ok() bool { return len(r.Violations) == 0 }

// RunNet executes one live fault scenario; err reports setup problems
// only — judgment failures land in NetResult.Violations.
func RunNet(plan NetPlan) (*NetResult, error) {
	p := plan.withDefaults()
	if p.Name == "" {
		return nil, fmt.Errorf("chaos: net plan has no name")
	}
	if p.Size < netio.HeaderLen {
		return nil, fmt.Errorf("chaos: net plan %q: size %d below header length", p.Name, p.Size)
	}

	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	defer sinkConn.Close()
	sinkConn.SetReadBuffer(4 << 20)

	var cfg netio.Config
	cfg.Listen = "127.0.0.1:0"
	cfg.Forward = sinkConn.LocalAddr().String()
	cfg.Scheduler = p.Scheduler
	cfg.SDP = p.SDP
	cfg.RateBps = p.RateBps
	cfg.MaxPackets = p.MaxQueue
	cfg.Shards = p.Shards
	cfg.DrainTimeout = 10 * time.Second
	if p.Fault != nil {
		cfg.Fault = p.Fault
	}
	fwd, err := netio.Listen(cfg)
	if err != nil {
		return nil, err
	}
	defer fwd.Close()

	// Sink reader: counts wire-visible disturbances — undecodable
	// datagrams, short datagrams, and sequence regressions per class
	// (duplication and reordering both regress the per-class sequence).
	var sinkBad, sinkRegress atomic.Uint64
	sinkDone := make(chan struct{})
	go func() {
		defer close(sinkDone)
		buf := make([]byte, 64*1024)
		lastSeq := make(map[uint8]uint64)
		for {
			n, _, err := sinkConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			h, _, derr := netio.Decode(buf[:n])
			if derr != nil || n < p.Size {
				sinkBad.Add(1)
				continue
			}
			if last, ok := lastSeq[h.Class]; ok && h.Seq <= last {
				sinkRegress.Add(1)
			} else {
				lastSeq[h.Class] = h.Seq
			}
		}
	}()

	send, err := net.Dial("udp", fwd.LocalAddr().String())
	if err != nil {
		return nil, err
	}
	defer send.Close()

	classes := len(p.SDP)
	payload := make([]byte, p.Size-netio.HeaderLen)
	gap := time.Duration(float64(p.Size*8) / (p.Offered * p.RateBps) * float64(time.Second))
	stopAt := time.Now().Add(p.Duration)
	next := time.Now()
	for seq := uint64(0); time.Now().Before(stopAt); seq++ {
		dg := netio.Header{Class: uint8(seq % uint64(classes)), Seq: seq, SentAt: time.Now()}.Encode(nil)
		dg = append(dg, payload...)
		if _, err := send.Write(dg); err != nil {
			return nil, fmt.Errorf("chaos: sender: %w", err)
		}
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	if err := fwd.Close(); err != nil {
		return nil, err
	}
	st := fwd.Stats()

	// Let in-flight datagrams land, then stop the sink reader.
	time.Sleep(200 * time.Millisecond)
	sinkConn.Close()
	<-sinkDone

	res := &NetResult{
		Plan:           p.Name,
		Conserved:      st.Queued == 0 && st.Received == st.Forwarded+st.Dropped+st.BadHeader+st.BadClass,
		ForwardedSome:  st.Forwarded > 0,
		AllDropped:     st.Forwarded == 0 && st.Received > 0,
		SinkDisturbed:  sinkBad.Load() > 0 || sinkRegress.Load() > 0,
		FaultsInjected: p.Fault != nil && p.Fault.Injected() > 0,
	}
	if !res.Conserved {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"conservation: received=%d forwarded=%d dropped=%d bad-header=%d bad-class=%d queued=%d",
			st.Received, st.Forwarded, st.Dropped, st.BadHeader, st.BadClass, st.Queued))
	}
	if st.Received == 0 {
		res.Violations = append(res.Violations, "no datagrams received; nothing exercised")
	}
	if p.Fault != nil && p.Fault.Injected() == 0 {
		res.Violations = append(res.Violations, "fault plan never fired")
	}
	if p.ExpectAllDropped && st.Forwarded != 0 {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"expected a full outage but %d datagrams were forwarded", st.Forwarded))
	}
	if p.ExpectForwarded && st.Forwarded == 0 {
		res.Violations = append(res.Violations, "expected forwarding to survive the faults but nothing got through")
	}
	return res, nil
}
