package chaos

import (
	"pdds/internal/core"
	"pdds/internal/traffic"
)

// Plans returns the standard stress-plan catalog for one scheduler,
// parameterized by horizon (time units) and a base seed. Action times are
// fractions of the horizon, so the same catalog scales from a quick CI
// smoke to a multi-million-packet soak without editing the scripts. Plan
// i runs with seed base+i, so the full matrix is reproducible from one
// number.
//
// The catalog covers the perturbation axes of §5.4's dynamics argument:
// stationary heavy load (control), load steps and ramps across the
// moderate→heavy boundary, a class-mix shift at constant total load,
// source on/off churn, link-capacity flaps (including a transient
// overload), packet burst trains, and classifier flow churn (synthetic
// flow populations retired mid-run while the flow table answers under
// TTL eviction pressure).
func Plans(kind core.Kind, horizon float64, seed uint64) []SimPlan {
	warm := 0.1 * horizon
	flat := kind == core.KindFCFS
	std := func(i int, name string, rho float64, tl Timeline) SimPlan {
		return SimPlan{
			Name:     name,
			Kind:     kind,
			SDP:      []float64{1, 2, 4, 8},
			Load:     traffic.PaperLoad(rho),
			Horizon:  horizon,
			Warmup:   warm,
			Seed:     seed + uint64(i),
			Timeline: tl,
			Expect:   Expectation{Flat: flat},
		}
	}

	// steady-heavy: the stationary ρ=0.95 control. Any invariant breach
	// here is a harness or scheduler bug, not a perturbation effect.
	steady := std(0, "steady-heavy", 0.95, Timeline{Name: "none"})

	// steady-poisson: same control under exponential interarrivals,
	// separating heavy-tail variance effects from scheduler effects.
	poisson := std(1, "steady-poisson", 0.95, Timeline{Name: "none"})
	poisson.Load.Poisson = true

	// load-step: moderate load jumps to heavy at 40% of the run — the
	// regime boundary where the paper says WTP's ratio tracking switches
	// from loose to tight.
	step := std(2, "load-step", 0.75, Timeline{Name: "step-0.75-to-0.95", Actions: []Action{
		{At: 0.4 * horizon, Op: OpScaleLoad, Factor: 0.95 / 0.75},
	}})

	// load-ramp: a staircase ramp ρ 0.70→0.95 across the middle of the
	// run; every stair is its own judged segment.
	ramp := std(3, "load-ramp", 0.70, Timeline{
		Name:    "ramp-0.70-to-0.95",
		Actions: Ramp(0.3*horizon, 0.7*horizon, 8, 1.0, 0.95/0.70),
	})

	// class-shift: at constant total load, half of the lowest class's
	// traffic migrates to the highest class — the "ratios independent of
	// the class load distribution" claim, directly.
	shift := std(4, "class-shift", 0.90, Timeline{Name: "mix-shift", Actions: []Action{
		{At: 0.4 * horizon, Op: OpScaleClass, Class: 0, Factor: 0.5},
		{At: 0.4 * horizon, Op: OpScaleClass, Class: 3, Factor: 3.0},
	}})

	// source-churn: the highest class blinks off and on through the middle
	// of the run, emptying its queue mid-busy-period repeatedly.
	churn := std(5, "source-churn", 0.90, Timeline{
		Name:    "class3-on-off",
		Actions: Toggle(3, 0.35*horizon, 0.1*horizon, 0.75*horizon),
	})

	// link-flap: capacity drops to 75% for 30% of the run, pushing the
	// offered load transiently past 1 (ρ_eff ≈ 1.13), then recovers.
	flap := std(6, "link-flap", 0.85, Timeline{Name: "rate-dip", Actions: []Action{
		{At: 0.35 * horizon, Op: OpSetLinkRate, Factor: 0.75},
		{At: 0.65 * horizon, Op: OpSetLinkRate, Factor: 1.0},
	}})

	// burst-train: three 300-packet MTU bursts land in the highest
	// (lowest-delay) class on top of ρ=0.90 background traffic. A train
	// queueing behind itself inflates that class's own mean delay beyond
	// what any work-conserving scheduler can differentiate away, so this
	// plan stresses conservation and pool integrity, not the windows.
	burst := std(7, "burst-train", 0.90, Timeline{Name: "class3-bursts", Actions: []Action{
		{At: 0.4 * horizon, Op: OpBurst, Class: 3, Count: 300, Size: 1500},
		{At: 0.5 * horizon, Op: OpBurst, Class: 3, Count: 300, Size: 1500},
		{At: 0.6 * horizon, Op: OpBurst, Class: 3, Count: 300, Size: 1500},
	}})
	burst.Expect.SkipRatios = true

	// flow-churn: heavy stationary traffic while a live classifier flow
	// table resolves 64 synthetic flows per class each sample tick; each
	// class's flow population is retired once mid-run, so old generations
	// must age out under TTL eviction without a single wrong answer.
	flow := std(8, "flow-churn", 0.90, Timeline{Name: "flow-gen-bumps", Actions: []Action{
		{At: 0.3 * horizon, Op: OpFlowChurn, Class: 0},
		{At: 0.45 * horizon, Op: OpFlowChurn, Class: 1},
		{At: 0.6 * horizon, Op: OpFlowChurn, Class: 2},
		{At: 0.75 * horizon, Op: OpFlowChurn, Class: 3},
	}})
	flow.FlowsPerClass = 64
	flow.FlowTTL = 0.15 * horizon

	return []SimPlan{steady, poisson, step, ramp, shift, churn, flap, burst, flow}
}

// NetPlans returns the standard live-forwarder fault catalog. Each plan
// gets its own FaultPlan instance (they carry per-run counters), so call
// this once per stress run.
func NetPlans() []NetPlan {
	return []NetPlan{
		{
			Name:            "wire-corrupt",
			Fault:           &FaultPlan{Name: "wire-corrupt", CorruptEvery: 7, TruncateEvery: 11},
			ExpectForwarded: true,
		},
		{
			Name:            "wire-dup-reorder",
			Fault:           &FaultPlan{Name: "wire-dup-reorder", DupEvery: 5, ReorderEvery: 9},
			ExpectForwarded: true,
		},
		{
			Name:            "transient-errors",
			Fault:           &FaultPlan{Name: "transient-errors", TransientEvery: 4, TransientFails: 2},
			ExpectForwarded: true,
		},
		{
			Name: "seeded-mixture",
			Fault: &FaultPlan{
				Name: "seeded-mixture", Seed: 0xC0FFEE,
				CorruptEvery: 16, DupEvery: 16, ReorderEvery: 16,
				TransientEvery: 16, TransientFails: 1,
			},
			ExpectForwarded: true,
		},
		{
			Name:             "persistent-outage",
			Fault:            &FaultPlan{Name: "persistent-outage", FailFrom: 0, FailTo: 1 << 62},
			ExpectAllDropped: true,
		},
		// Sharded variants: the same wire faults with the ingress split
		// across SO_REUSEPORT shards, so the fault path is exercised
		// against the SPSC rings and the deadline-merged egress. The
		// conservation oracle is shard-count-independent.
		{
			Name:            "wire-corrupt-sharded",
			Fault:           &FaultPlan{Name: "wire-corrupt-sharded", CorruptEvery: 7, TruncateEvery: 11},
			Shards:          4,
			ExpectForwarded: true,
		},
		{
			Name: "seeded-mixture-sharded",
			Fault: &FaultPlan{
				Name: "seeded-mixture-sharded", Seed: 0xC0FFEE,
				CorruptEvery: 16, DupEvery: 16, ReorderEvery: 16,
				TransientEvery: 16, TransientFails: 1,
			},
			Shards:          4,
			ExpectForwarded: true,
		},
		{
			Name:             "persistent-outage-sharded",
			Fault:            &FaultPlan{Name: "persistent-outage-sharded", FailFrom: 0, FailTo: 1 << 62},
			Shards:           8,
			ExpectAllDropped: true,
		},
	}
}
