package model

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

// Hand-computable DPS schedule: two jobs sharing the server 1:3, the
// lighter-weighted one finishing alone after the other departs.
func TestDPSSojournsRateSplit(t *testing.T) {
	tr := &traffic.Trace{
		Classes: 2,
		Horizon: 1,
		Arrivals: []traffic.Arrival{
			{Class: 0, Size: 50, Time: 0},
			{Class: 1, Size: 75, Time: 0},
		},
	}
	mean, count, err := DPSSojourns(tr, []float64{1, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if count[0] != 1 || count[1] != 1 {
		t.Fatalf("counts = %v, want [1 1]", count)
	}
	// r0 = 2.5, r1 = 7.5: class 1 departs at 75/7.5 = 10; class 0 then
	// finishes its remaining 25 bytes alone at rate 10, departing 12.5.
	if math.Abs(mean[1]-10) > 1e-9 || math.Abs(mean[0]-12.5) > 1e-9 {
		t.Fatalf("means = %v, want [12.5 10]", mean)
	}
}

// FIFO within a class: a class's second job may not complete before its
// first even if it is much smaller.
func TestDPSSojournsClassFIFO(t *testing.T) {
	tr := &traffic.Trace{
		Classes: 1,
		Horizon: 1,
		Arrivals: []traffic.Arrival{
			{Class: 0, Size: 100, Time: 0},
			{Class: 0, Size: 1, Time: 0.1},
		},
	}
	mean, count, err := DPSSojourns(tr, []float64{1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Job 1 departs at 10, job 2 at 10.1: sojourns 10 and 10.0.
	want := (10.0 + (10.1 - 0.1)) / 2
	if count[0] != 2 || math.Abs(mean[0]-want) > 1e-9 {
		t.Fatalf("mean = %v count = %v, want mean %g count 2", mean, count, want)
	}
}

func TestDPSSojournsValidation(t *testing.T) {
	tr := &traffic.Trace{Classes: 2, Horizon: 1}
	if _, _, err := DPSSojourns(tr, []float64{1}, 10); err == nil {
		t.Error("weight count mismatch accepted")
	}
	if _, _, err := DPSSojourns(tr, []float64{1, 0}, 10); err == nil {
		t.Error("zero weight accepted")
	}
	if _, _, err := DPSSojourns(tr, []float64{1, 2}, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

// pfSojourns replays tr through a packetized PF link and returns the
// per-class mean sojourn (departure − arrival), draining completely.
func pfSojourns(t *testing.T, tr *traffic.Trace, weights []float64, rate float64) []float64 {
	t.Helper()
	engine := sim.NewEngine()
	l := link.New(engine, rate, core.NewPF(weights))
	sum := make([]float64, tr.Classes)
	cnt := make([]uint64, tr.Classes)
	l.OnDepart = func(p *core.Packet) {
		sum[p.Class] += p.Departure - p.Arrival
		cnt[p.Class]++
	}
	tr.Replay(engine, l.Arrive)
	engine.RunAll()
	out := make([]float64, tr.Classes)
	for i := range out {
		if cnt[i] == 0 {
			t.Fatalf("class %d had no departures", i)
		}
		out[i] = sum[i] / float64(cnt[i])
	}
	return out
}

// The DPS-vs-proportional-fair steady-state agreement gate (mirroring the
// BPR-vs-RK4 fluid oracle): over a long heavy-load run, the packetized
// EWMA PF scheduler's per-class mean sojourns must track the DPS fluid
// server's within tolerance.
//
// The fluid serves preemptively (every backlogged class holds its rate
// share at every instant) while the packet link transmits one packet at a
// time, so a lightly backlogged high class pays head-of-line blocking of
// order one transmission time (mean residual ≈ E[L²]/(2·E[L]·C) ≈ 10.9 tu
// here) that has no fluid analog and never amortizes away. The gate
// therefore has two arms: classes whose fluid sojourn is queueing-
// dominated must agree in relative terms (relTol), and every class must
// agree up to a small constant number of mean transmission times
// (absTol·E[L]/C). A mis-weighted PF fails both arms at once — e.g.
// ignoring the weights collapses class 0's ≈924 tu sojourn by hundreds of
// transmission times. Bounds carry ≈2× margin over the deviation observed
// at this seed and horizon (measured: rel 0.005/0.038, abs ≤ 1.6·E[L]/C).
func TestPFTracksDPSFluidSteadyState(t *testing.T) {
	const (
		rate    = link.PaperLinkRate
		horizon = 8e5
		relTol  = 0.10
		absTol  = 2.5 // mean transmission times
	)
	weights := []float64{1, 2, 4, 8}
	load := traffic.PaperLoad(0.97)
	load.Poisson = true
	tr, err := traffic.Record(load, rate, horizon, 20260808)
	if err != nil {
		t.Fatal(err)
	}
	fluid, counts, err := DPSSojourns(tr, weights, rate)
	if err != nil {
		t.Fatal(err)
	}
	packet := pfSojourns(t, tr, weights, rate)
	trans := load.Sizes.Mean() / rate
	for i := range weights {
		if counts[i] < 2000 {
			t.Fatalf("class %d: only %d fluid completions — not steady state", i, counts[i])
		}
		abs := math.Abs(packet[i] - fluid[i])
		rel := abs / fluid[i]
		t.Logf("class %d: packet mean %.3f fluid mean %.3f rel %.3f abs %.2f×trans (n=%d)",
			i, packet[i], fluid[i], rel, abs/trans, counts[i])
		if rel > relTol && abs > absTol*trans {
			t.Errorf("class %d: PF mean sojourn %.3f vs DPS fluid %.3f — rel %.1f%% > %.0f%% and abs %.1f > %.1f transmission times",
				i, packet[i], fluid[i], 100*rel, 100*relTol, abs/trans, absTol)
		}
	}
}
