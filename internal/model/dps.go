package model

import (
	"fmt"
	"math"

	"pdds/internal/traffic"
)

// This file implements the Discriminatory Processor Sharing fluid
// reference (Kleinrock's DPS, as analyzed for delay differentiation by
// Osipova, Ayesta and Avrachenkov): a server of rate R shared at every
// instant among the backlogged classes in proportion to their weights,
//
//	r_i(t) = R · g_i / Σ_{j backlogged} g_j,
//
// with FIFO draining inside each class. It is the fluid limit the EWMA
// proportional-fair scheduler's long-run byte shares converge to, and
// plays the same role for PF that the RK4 fluid BPR reference plays for
// packetized BPR: a structurally independent model the packetized
// implementation must track in steady state (see the agreement test).

// DPSSojourns replays a recorded arrival trace through the DPS fluid
// server and returns per-class sojourn statistics: mean sojourn time
// (departure − arrival, including service) and completion counts. The
// replay drains completely, so every recorded arrival is measured.
//
// weights follow the SDP conventions (strictly positive, nondecreasing:
// higher classes get larger capacity shares and hence smaller delays);
// rate is the server capacity in bytes per time unit.
func DPSSojourns(tr *traffic.Trace, weights []float64, rate float64) (mean []float64, count []uint64, err error) {
	if len(weights) != tr.Classes {
		return nil, nil, fmt.Errorf("model: %d DPS weights for %d trace classes", len(weights), tr.Classes)
	}
	for i, w := range weights {
		if !(w > 0) || math.IsInf(w, 1) {
			return nil, nil, fmt.Errorf("model: DPS weight[%d]=%g must be finite and > 0", i, w)
		}
	}
	if !(rate > 0) {
		return nil, nil, fmt.Errorf("model: DPS rate %g must be > 0", rate)
	}
	n := tr.Classes
	type job struct {
		arrival   float64
		remaining float64
	}
	queues := make([][]job, n)
	head := make([]int, n)
	sum := make([]float64, n)
	count = make([]uint64, n)

	backloggedWeight := func() float64 {
		var tot float64
		for i := 0; i < n; i++ {
			if head[i] < len(queues[i]) {
				tot += weights[i]
			}
		}
		return tot
	}

	now := 0.0
	next := 0
	arr := tr.Arrivals
	for {
		totW := backloggedWeight()
		if totW == 0 {
			// Idle server: jump to the next arrival, or finish.
			if next >= len(arr) {
				break
			}
			a := arr[next]
			next++
			now = a.Time
			queues[a.Class] = append(queues[a.Class], job{arrival: a.Time, remaining: float64(a.Size)})
			continue
		}
		// Earliest head completion under the current rate split. The
		// low-to-high scan with strict < makes ties deterministic.
		doneClass, doneAt := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if head[i] >= len(queues[i]) {
				continue
			}
			ri := rate * weights[i] / totW
			if t := now + queues[i][head[i]].remaining/ri; t < doneAt {
				doneClass, doneAt = i, t
			}
		}
		// An arrival at the same instant is folded in first, so the rate
		// split it causes takes effect before the completion is booked.
		if next < len(arr) && arr[next].Time <= doneAt {
			a := arr[next]
			next++
			dt := a.Time - now
			for i := 0; i < n; i++ {
				if head[i] < len(queues[i]) {
					queues[i][head[i]].remaining -= rate * weights[i] / totW * dt
				}
			}
			now = a.Time
			queues[a.Class] = append(queues[a.Class], job{arrival: a.Time, remaining: float64(a.Size)})
			continue
		}
		dt := doneAt - now
		for i := 0; i < n; i++ {
			if head[i] < len(queues[i]) {
				queues[i][head[i]].remaining -= rate * weights[i] / totW * dt
			}
		}
		now = doneAt
		j := queues[doneClass][head[doneClass]]
		sum[doneClass] += now - j.arrival
		count[doneClass]++
		head[doneClass]++
		if head[doneClass] == len(queues[doneClass]) {
			queues[doneClass] = queues[doneClass][:0]
			head[doneClass] = 0
		}
	}

	mean = make([]float64, n)
	for i := 0; i < n; i++ {
		if count[i] > 0 {
			mean[i] = sum[i] / float64(count[i])
		}
	}
	return mean, count, nil
}
