// Package model implements the mathematics of the proportional delay
// differentiation model (§2 and §3 of the paper): the Eq. (6) class-delay
// predictions implied by the conservation law, the four dynamics
// properties, and the Coffman–Mitrani feasibility conditions (Eq. 7)
// evaluated with FCFS sub-simulations on a recorded traffic trace.
package model

import (
	"fmt"
	"math"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

// ValidateDDPs panics unless the delay differentiation parameters are
// strictly positive and nonincreasing (δ1 > δ2 > ... per §2: higher classes
// get proportionally lower delay).
func ValidateDDPs(ddp []float64) {
	core.ValidateClasses(len(ddp))
	for i, d := range ddp {
		if !(d > 0) {
			panic(fmt.Sprintf("model: DDP[%d]=%g must be > 0", i, d))
		}
		if i > 0 && d > ddp[i-1] {
			panic(fmt.Sprintf("model: DDPs must be nonincreasing, got %v", ddp))
		}
	}
}

// DDPsFromSDPs converts scheduler differentiation parameters to the delay
// differentiation parameters they induce in heavy load (Eq. 10/13): the
// DDP ratios are the inverse SDP ratios, so δ_i = 1/s_i up to a common
// scale.
func DDPsFromSDPs(sdp []float64) []float64 {
	core.ValidateSDPs(sdp)
	ddp := make([]float64, len(sdp))
	for i, s := range sdp {
		ddp[i] = 1 / s
	}
	return ddp
}

// PredictDelays evaluates Eq. (6): given DDPs δ, class arrival rates λ and
// the aggregate FCFS average delay d̄(λ), the unique per-class average
// delays that satisfy both the proportional constraints (Eq. 4) and the
// conservation law (Eq. 5) are
//
//	d_i = δ_i · λ · d̄(λ) / Σ_j δ_j·λ_j .
func PredictDelays(ddp, lambda []float64, dbarAgg float64) []float64 {
	ValidateDDPs(ddp)
	if len(lambda) != len(ddp) {
		panic("model: DDP/lambda length mismatch")
	}
	var aggRate, denom float64
	for j := range ddp {
		if lambda[j] < 0 {
			panic("model: negative arrival rate")
		}
		aggRate += lambda[j]
		denom += ddp[j] * lambda[j]
	}
	out := make([]float64, len(ddp))
	if denom == 0 {
		return out
	}
	for i := range out {
		out[i] = ddp[i] * aggRate * dbarAgg / denom
	}
	return out
}

// FCFSMeanDelay replays a trace through a FCFS server of the given rate
// and returns the mean queueing (waiting) delay over all packets — the
// d̄(λ) terms of Eq. (5) and (7). The replay drains completely so every
// arrival is measured.
func FCFSMeanDelay(tr *traffic.Trace, rate float64) float64 {
	if len(tr.Arrivals) == 0 {
		return 0
	}
	engine := sim.NewEngine()
	l := link.New(engine, rate, core.NewFCFS(tr.Classes))
	var sum float64
	var n uint64
	l.OnDepart = func(p *core.Packet) {
		sum += p.Wait()
		n++
	}
	tr.Replay(engine, l.Arrive)
	engine.RunAll()
	return sum / float64(n)
}

// SubsetCondition is one of the 2^N − 2 feasibility inequalities of
// Eq. (7) evaluated on measured traffic.
type SubsetCondition struct {
	// Subset is the class membership mask (bit i = class i ∈ φ).
	Subset uint
	// LHS is Σ_{i∈φ} λ_i·d_i with the candidate delays d.
	LHS float64
	// RHS is (Σ_{i∈φ} λ_i) · d̄(Σ_{i∈φ} λ_i) from the FCFS
	// sub-simulation.
	RHS float64
}

// OK reports whether the inequality LHS >= RHS holds (with a small
// relative tolerance for simulation noise).
func (s SubsetCondition) OK() bool {
	return s.LHS >= s.RHS*(1-1e-9)
}

// Slack returns (LHS−RHS)/RHS, the relative margin by which the condition
// holds (negative = violated). Returns +Inf when RHS is zero.
func (s SubsetCondition) Slack() float64 {
	if s.RHS == 0 {
		return math.Inf(1)
	}
	return (s.LHS - s.RHS) / s.RHS
}

// FeasibilityReport is the outcome of checking a candidate delay vector
// against Eq. (7) for a specific trace.
type FeasibilityReport struct {
	// Delays is the candidate per-class average delay vector (from
	// Eq. 6 when produced by CheckDDPs).
	Delays []float64
	// Lambda is the measured per-class arrival rate.
	Lambda []float64
	// AggregateDelay is the measured aggregate FCFS delay d̄(λ).
	AggregateDelay float64
	// ConservationRelGap is |Σλ_i·d_i − λ·d̄(λ)| / (λ·d̄(λ)): the
	// relative violation of the full-set conservation *equality*, which
	// the Coffman–Mitrani characterization requires in addition to the
	// subset inequalities. Delay vectors produced from Eq. (6) satisfy
	// it by construction.
	ConservationRelGap float64
	// Conditions holds every proper nonempty subset's inequality.
	Conditions []SubsetCondition
}

// conservationTol is the relative tolerance on the full-set equality;
// loose enough for floating-point accumulation over millions of packets,
// tight enough to reject any materially non-work-conserving vector.
const conservationTol = 1e-6

// Feasible reports whether the conservation equality and all subset
// conditions hold.
func (r *FeasibilityReport) Feasible() bool {
	if r.ConservationRelGap > conservationTol {
		return false
	}
	for _, c := range r.Conditions {
		if !c.OK() {
			return false
		}
	}
	return true
}

// WorstSlack returns the minimum relative slack across conditions.
func (r *FeasibilityReport) WorstSlack() float64 {
	worst := math.Inf(1)
	for _, c := range r.Conditions {
		if s := c.Slack(); s < worst {
			worst = s
		}
	}
	return worst
}

// CheckDelays evaluates Eq. (7) for an arbitrary candidate delay vector d
// on the trace: for every nonempty proper subset φ of classes,
//
//	Σ_{i∈φ} λ_i·d_i  >=  (Σ_{i∈φ} λ_i) · d̄(Σ_{i∈φ} λ_i)
//
// where each d̄ term is measured by replaying the subset's arrivals
// through a FCFS server of the given rate. The full-set equality (the
// conservation law itself) is reported in AggregateDelay but not added as
// a condition.
func CheckDelays(tr *traffic.Trace, rate float64, delays []float64) (*FeasibilityReport, error) {
	n := tr.Classes
	if len(delays) != n {
		return nil, fmt.Errorf("model: %d delays for %d classes", len(delays), n)
	}
	if n < 2 {
		return nil, fmt.Errorf("model: feasibility needs at least 2 classes")
	}
	if n > 16 {
		return nil, fmt.Errorf("model: %d classes would need 2^%d FCFS sub-simulations", n, n)
	}
	lambda := tr.Rates()
	rep := &FeasibilityReport{
		Delays:         append([]float64(nil), delays...),
		Lambda:         lambda,
		AggregateDelay: FCFSMeanDelay(tr, rate),
	}
	var sumLD, aggRate float64
	for i := 0; i < n; i++ {
		sumLD += lambda[i] * delays[i]
		aggRate += lambda[i]
	}
	if target := aggRate * rep.AggregateDelay; target > 0 {
		rep.ConservationRelGap = math.Abs(sumLD-target) / target
	} else if sumLD != 0 {
		rep.ConservationRelGap = math.Inf(1)
	}
	keep := make([]bool, n)
	for mask := uint(1); mask < (uint(1)<<n)-1; mask++ {
		var lhs, rateSum float64
		for i := 0; i < n; i++ {
			keep[i] = mask&(1<<i) != 0
			if keep[i] {
				lhs += lambda[i] * delays[i]
				rateSum += lambda[i]
			}
		}
		sub := tr.Filter(keep)
		dbar := FCFSMeanDelay(sub, rate)
		rep.Conditions = append(rep.Conditions, SubsetCondition{
			Subset: mask,
			LHS:    lhs,
			RHS:    rateSum * dbar,
		})
	}
	return rep, nil
}

// CheckDDPs derives the Eq. (6) delay vector for the DDPs on this trace
// (using the measured aggregate FCFS delay) and checks its feasibility.
// This is the §3 procedure used to verify that the Figure 1/2 operating
// points are feasible, so scheduler deviations are attributable to the
// schedulers rather than the chosen DDPs.
func CheckDDPs(tr *traffic.Trace, rate float64, ddp []float64) (*FeasibilityReport, error) {
	ValidateDDPs(ddp)
	if len(ddp) != tr.Classes {
		return nil, fmt.Errorf("model: %d DDPs for %d classes", len(ddp), tr.Classes)
	}
	lambda := tr.Rates()
	dbar := FCFSMeanDelay(tr, rate)
	delays := PredictDelays(ddp, lambda, dbar)
	rep, err := CheckDelays(tr, rate, delays)
	if err != nil {
		return nil, err
	}
	rep.AggregateDelay = dbar
	return rep, nil
}
