package model

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

func TestValidateDDPs(t *testing.T) {
	ValidateDDPs([]float64{1, 0.5, 0.25})
	for _, bad := range [][]float64{nil, {0}, {-1}, {0.5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ValidateDDPs(%v) did not panic", bad)
				}
			}()
			ValidateDDPs(bad)
		}()
	}
}

func TestDDPsFromSDPs(t *testing.T) {
	ddp := DDPsFromSDPs([]float64{1, 2, 4, 8})
	want := []float64{1, 0.5, 0.25, 0.125}
	for i := range want {
		if math.Abs(ddp[i]-want[i]) > 1e-12 {
			t.Fatalf("ddp = %v, want %v", ddp, want)
		}
	}
}

func TestPredictDelaysSatisfiesModel(t *testing.T) {
	ddp := []float64{1, 0.5, 0.25, 0.125}
	lambda := []float64{0.04, 0.03, 0.02, 0.01}
	const dbar = 100.0
	d := PredictDelays(ddp, lambda, dbar)
	// Proportional constraints (Eq. 4): d_i/d_j = δ_i/δ_j.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(d[i]/d[j]-ddp[i]/ddp[j]) > 1e-9 {
				t.Fatalf("ratio d%d/d%d = %g, want %g", i, j, d[i]/d[j], ddp[i]/ddp[j])
			}
		}
	}
	// Conservation law (Eq. 5): Σ λ_i d_i = λ·d̄(λ).
	var sum, agg float64
	for i := range lambda {
		sum += lambda[i] * d[i]
		agg += lambda[i]
	}
	if math.Abs(sum-agg*dbar) > 1e-9 {
		t.Fatalf("Σλd = %g, want %g", sum, agg*dbar)
	}
}

func TestPredictDelaysEdgeCases(t *testing.T) {
	if d := PredictDelays([]float64{1, 0.5}, []float64{0, 0}, 10); d[0] != 0 || d[1] != 0 {
		t.Fatal("zero-rate prediction not zero")
	}
	for _, fn := range []func(){
		func() { PredictDelays([]float64{1, 0.5}, []float64{1}, 10) },
		func() { PredictDelays([]float64{1, 0.5}, []float64{1, -1}, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// dbarMM1 is a toy increasing delay-vs-rate curve used to exercise the
// dynamics properties: the M/M/1-like shape λ/(μ(μ−λ)) scaled to waiting
// time.
func dbarMM1(lambda float64) float64 {
	const mu = 1.0
	if lambda >= mu {
		return math.Inf(1)
	}
	return lambda / (mu * (mu - lambda))
}

func predict(ddp, lambda []float64) []float64 {
	var agg float64
	for _, l := range lambda {
		agg += l
	}
	return PredictDelays(ddp, lambda, dbarMM1(agg))
}

// The four dynamics properties of §3 follow from Eq. (6); check them
// numerically over random feasible operating points.
func TestDynamicsProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		ddp := []float64{1, 0.5, 0.25, 0.125}
		lambda := make([]float64, 4)
		var agg float64
		for i := range lambda {
			lambda[i] = 0.05 + rng.Float64()*0.15
			agg += lambda[i]
		}
		// Normalize to heavy load (ρ=0.9). The paper presents the
		// properties as heavy-load dynamics; property 1 in particular
		// needs d̄(λ) to grow fast enough, which it does near
		// saturation.
		for i := range lambda {
			lambda[i] *= 0.9 / agg
		}
		base := predict(ddp, lambda)
		const eps = 1e-3

		// Property 1: d_i increases with the arrival rate of any
		// class j.
		for j := 0; j < 4; j++ {
			bumped := append([]float64(nil), lambda...)
			bumped[j] += eps
			d := predict(ddp, bumped)
			for i := 0; i < 4; i++ {
				if d[i] < base[i]-1e-12 {
					return false
				}
			}
		}

		// Property 2: increasing a *higher* class's load increases
		// d_i more than increasing a lower class's load by the same
		// amount. (Higher class = higher index = smaller δ.)
		lowBump := append([]float64(nil), lambda...)
		lowBump[0] += eps
		highBump := append([]float64(nil), lambda...)
		highBump[3] += eps
		dLow := predict(ddp, lowBump)
		dHigh := predict(ddp, highBump)
		for i := 0; i < 4; i++ {
			if dHigh[i] < dLow[i]-1e-12 {
				return false
			}
		}

		// Property 3: increasing δ_k increases d_k and decreases
		// every other class's delay.
		for k := 1; k < 3; k++ { // keep ordering valid
			ddp2 := append([]float64(nil), ddp...)
			ddp2[k] *= 1.01
			if ddp2[k] > ddp2[k-1] {
				continue
			}
			d := predict(ddp2, lambda)
			if d[k] < base[k]-1e-12 {
				return false
			}
			for i := 0; i < 4; i++ {
				if i != k && d[i] > base[i]+1e-12 {
					return false
				}
			}
		}

		// Property 4: shifting load from class i to a higher class j
		// (aggregate unchanged) increases every class's delay;
		// shifting to a lower class decreases it.
		shiftUp := append([]float64(nil), lambda...)
		shiftUp[0] -= eps
		shiftUp[3] += eps
		dUp := predict(ddp, shiftUp)
		for i := 0; i < 4; i++ {
			if dUp[i] < base[i]-1e-12 {
				return false
			}
		}
		shiftDown := append([]float64(nil), lambda...)
		shiftDown[3] -= eps
		shiftDown[0] += eps
		dDown := predict(ddp, shiftDown)
		for i := 0; i < 4; i++ {
			if dDown[i] > base[i]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFCFSMeanDelayDeterministic(t *testing.T) {
	tr := &traffic.Trace{
		Classes: 2,
		Horizon: 100,
		Arrivals: []traffic.Arrival{
			{Class: 0, Size: 100, Time: 0},
			{Class: 1, Size: 100, Time: 0},
			{Class: 0, Size: 100, Time: 0},
		},
	}
	// Rate 100 B/tu → 1 tu per packet; waits 0, 1, 2 → mean 1.
	got := FCFSMeanDelay(tr, 100)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("FCFS mean delay = %g, want 1", got)
	}
	if FCFSMeanDelay(&traffic.Trace{Classes: 1, Horizon: 1}, 100) != 0 {
		t.Fatal("empty trace mean delay not 0")
	}
}

func TestTraceHelpers(t *testing.T) {
	tr := &traffic.Trace{
		Classes: 3,
		Horizon: 10,
		Arrivals: []traffic.Arrival{
			{Class: 0, Size: 10, Time: 1},
			{Class: 2, Size: 10, Time: 2},
			{Class: 0, Size: 10, Time: 3},
		},
	}
	rates := tr.Rates()
	if rates[0] != 0.2 || rates[1] != 0 || rates[2] != 0.1 {
		t.Fatalf("rates = %v", rates)
	}
	sub := tr.Filter([]bool{true, false, false})
	if len(sub.Arrivals) != 2 || sub.Arrivals[1].Time != 3 {
		t.Fatalf("filter wrong: %+v", sub.Arrivals)
	}
}

func TestCheckDelaysFeasibleAndInfeasible(t *testing.T) {
	load := traffic.PaperLoad(0.90)
	tr, err := traffic.Record(load, link.PaperLinkRate, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}

	// The per-class delays actually achieved by FCFS are feasible by
	// construction (FCFS is a work-conserving scheduler achieving them).
	// Measure them per class.
	perClass := make([]float64, 4)
	{
		counts := make([]float64, 4)
		sums := make([]float64, 4)
		engine := sim.NewEngine()
		l := link.New(engine, link.PaperLinkRate, core.NewFCFS(4))
		l.OnDepart = func(p *core.Packet) {
			sums[p.Class] += p.Wait()
			counts[p.Class]++
		}
		tr.Replay(engine, l.Arrive)
		engine.RunAll()
		for c := 0; c < 4; c++ {
			perClass[c] = sums[c] / counts[c]
		}
	}
	rep, err := CheckDelays(tr, link.PaperLinkRate, perClass)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Conditions) != 14 {
		t.Fatalf("conditions = %d, want 2^4-2 = 14", len(rep.Conditions))
	}
	if !rep.Feasible() {
		t.Fatalf("FCFS-achieved delays reported infeasible (worst slack %g)", rep.WorstSlack())
	}

	// A vector violating the conservation equality (all delays halved)
	// is infeasible even though every subset inequality may still hold.
	halved := make([]float64, 4)
	for i, d := range perClass {
		halved[i] = d / 2
	}
	repC, err := CheckDelays(tr, link.PaperLinkRate, halved)
	if err != nil {
		t.Fatal(err)
	}
	if repC.Feasible() {
		t.Fatal("non-conserving delay vector reported feasible")
	}
	if repC.ConservationRelGap < 0.4 {
		t.Fatalf("ConservationRelGap = %g, want ~0.5", repC.ConservationRelGap)
	}

	// A conserving vector that pushes class 0 below its solo-FCFS delay
	// (dumping the excess on class 1) violates the {0} subset condition:
	// no work-conserving scheduler can serve class 0 faster than a FCFS
	// server with all other traffic removed.
	lambda := rep.Lambda
	var soloD0 float64
	for _, c := range rep.Conditions {
		if c.Subset == 1 {
			soloD0 = c.RHS / lambda[0]
		}
	}
	if soloD0 <= 0 {
		t.Fatal("class 0 solo FCFS delay not positive; trace too short")
	}
	bad := append([]float64(nil), perClass...)
	bad[0] = soloD0 / 2
	// Re-balance class 1 to preserve Σλd.
	bad[1] = perClass[1] + lambda[0]*(perClass[0]-bad[0])/lambda[1]
	rep2, err := CheckDelays(tr, link.PaperLinkRate, bad)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.ConservationRelGap > 1e-9 {
		t.Fatalf("rebalanced vector broke conservation: gap %g", rep2.ConservationRelGap)
	}
	if rep2.Feasible() {
		t.Fatal("subset-violating delay vector reported feasible")
	}
	if rep2.WorstSlack() >= 0 {
		t.Fatal("WorstSlack not negative for infeasible vector")
	}
}

func TestCheckDDPsPaperOperatingPoint(t *testing.T) {
	// §3/§5: the Figure 1/2 operating points use feasible DDPs. Verify
	// the ρ=0.95, SDP 1/2/4/8 point.
	load := traffic.PaperLoad(0.95)
	tr, err := traffic.Record(load, link.PaperLinkRate, 300000, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckDDPs(tr, link.PaperLinkRate, DDPsFromSDPs([]float64{1, 2, 4, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible() {
		t.Fatalf("paper operating point infeasible (worst slack %g)", rep.WorstSlack())
	}
	if rep.AggregateDelay <= 0 {
		t.Fatal("aggregate delay not positive")
	}
	// Eq. (6) delays must be ordered low class > high class.
	for i := 0; i+1 < 4; i++ {
		if !(rep.Delays[i] > rep.Delays[i+1]) {
			t.Fatalf("predicted delays not ordered: %v", rep.Delays)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	tr := &traffic.Trace{Classes: 4, Horizon: 10}
	if _, err := CheckDelays(tr, 10, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	one := &traffic.Trace{Classes: 1, Horizon: 10}
	if _, err := CheckDelays(one, 10, []float64{1}); err == nil {
		t.Error("single class accepted")
	}
	big := &traffic.Trace{Classes: 20, Horizon: 10}
	if _, err := CheckDelays(big, 10, make([]float64, 20)); err == nil {
		t.Error("20 classes accepted")
	}
	if _, err := CheckDDPs(tr, 10, []float64{1, 0.5}); err == nil {
		t.Error("DDP length mismatch accepted")
	}
}

func TestSubsetConditionHelpers(t *testing.T) {
	c := SubsetCondition{Subset: 3, LHS: 10, RHS: 8}
	if !c.OK() || math.Abs(c.Slack()-0.25) > 1e-12 {
		t.Fatalf("OK/Slack wrong: %+v", c)
	}
	v := SubsetCondition{Subset: 1, LHS: 5, RHS: 8}
	if v.OK() || v.Slack() >= 0 {
		t.Fatal("violated condition reported OK")
	}
	z := SubsetCondition{Subset: 1, LHS: 5, RHS: 0}
	if !math.IsInf(z.Slack(), 1) {
		t.Fatal("zero-RHS slack not +Inf")
	}
}
