package ecn

import (
	"testing"

	"pdds/internal/core"
	"pdds/internal/link"
)

func baseConfig() Config {
	// 8 greedy sources, two per class, starting slow.
	var sources []SourceConfig
	for c := 0; c < 4; c++ {
		for k := 0; k < 2; k++ {
			sources = append(sources, SourceConfig{
				Class:       c,
				InitialRate: link.PaperLinkRate / 32,
				MinRate:     link.PaperLinkRate / 256,
			})
		}
	}
	return Config{
		SDP:     []float64{1, 2, 4, 8},
		Sources: sources,
		Horizon: 600000,
		Warmup:  200000,
		Seed:    6,
	}
}

func TestValidate(t *testing.T) {
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.SDP = nil },
		func(c *Config) { c.Sources = nil },
		func(c *Config) { c.Sources[0].Class = 9 },
		func(c *Config) { c.Sources[0].InitialRate = 0 },
		func(c *Config) { c.Sources[0].MinRate = c.Sources[0].InitialRate * 2 },
		func(c *Config) { c.Decrease = 1.5 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.Warmup = 1e9 },
	}
	for i, mutate := range mutations {
		c := baseConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// The §3 regime: AIMD + ECN sources must drive the link to high
// utilization with zero loss, and WTP must still deliver proportional
// differentiation under the resulting closed-loop traffic.
func TestClosedLoopReachesLosslessHeavyLoad(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization < 0.85 {
		t.Fatalf("utilization = %.3f, want >= 0.85 (AIMD failed to fill the link)", res.Utilization)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d packets — the lossless ECN regime failed", res.Dropped)
	}
	if res.MarkFraction <= 0 {
		t.Fatal("no packets were ever marked; marking threshold never reached")
	}
	// Proportional differentiation under closed-loop load: ordered
	// delays with meaningful ratios.
	for c := 0; c+1 < 4; c++ {
		lo, hi := res.Delays.Mean(c), res.Delays.Mean(c+1)
		if !(lo > hi) {
			t.Fatalf("class %d delay %.1f not above class %d delay %.1f", c+1, lo, c+2, hi)
		}
	}
	r := res.Delays.SuccessiveRatios()
	for i, v := range r {
		if v < 1.3 || v > 3.0 {
			t.Errorf("closed-loop ratio[%d] = %.2f, want in [1.3,3.0] (target 2)", i, v)
		}
	}
	if len(res.FinalRates) != 8 {
		t.Fatal("final rates missing")
	}
}

// With a single source and a huge link, the source just additively climbs:
// no marks, no drops, rate strictly above its start.
func TestClosedLoopUncongested(t *testing.T) {
	cfg := Config{
		SDP: []float64{1, 2},
		Sources: []SourceConfig{
			{Class: 1, InitialRate: 0.5, MinRate: 0.1},
		},
		LinkRate: 1e6,
		Increase: 0.5,
		Horizon:  50000,
		Warmup:   1000,
		Seed:     1,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MarkFraction != 0 || res.Dropped != 0 {
		t.Fatalf("uncongested run marked/dropped: %+v", res)
	}
	if res.FinalRates[0] <= 0.5 {
		t.Fatalf("rate did not increase: %v", res.FinalRates)
	}
}

func TestMarkerThreshold(t *testing.T) {
	m := &Marker{Threshold: 10}
	mk := func(wait float64) *core.Packet {
		return &core.Packet{Arrival: 0, Start: wait, Departure: wait + 1}
	}
	if m.Observe(mk(5)) {
		t.Fatal("under-threshold packet marked")
	}
	if !m.Observe(mk(20)) {
		t.Fatal("over-threshold packet not marked")
	}
	if m.MarkFraction() != 0.5 {
		t.Fatalf("MarkFraction = %g", m.MarkFraction())
	}
	empty := &Marker{Threshold: 1}
	if empty.MarkFraction() != 0 {
		t.Fatal("empty marker fraction not 0")
	}
}
