// Package ecn implements the closed-loop operating regime §3 assumes:
// "stable and high-utilization operation can be achieved in practice
// without packet losses only if there is an adequately large number of
// packet buffers and the sources adjust their rate successfully using the
// ECN bit set by congested routers". It provides a marking queue-monitor
// for the simulated link and AIMD rate-controlled sources reacting to the
// marks, so the lossless heavy-load regime of the paper's evaluation is
// *produced* by congestion control rather than assumed.
package ecn

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/sim"
	"pdds/internal/stats"
	"pdds/internal/traffic"
)

// Marker marks departing packets when the queue is congested, modeling a
// router setting the ECN CE bit. The decision uses the packet's own
// queueing delay: delay above Threshold means the packet sat in a
// congested queue. (Per-delay marking is the DiffServ-friendly analogue
// of a queue-length threshold and needs no scheduler introspection.)
type Marker struct {
	// Threshold is the queueing delay (time units) above which a
	// departing packet is marked.
	Threshold float64
	marked    uint64
	seen      uint64
}

// Observe inspects a departing packet and reports whether it is marked.
func (m *Marker) Observe(p *core.Packet) bool {
	m.seen++
	if p.Wait() > m.Threshold {
		m.marked++
		return true
	}
	return false
}

// MarkFraction returns the fraction of observed packets marked.
func (m *Marker) MarkFraction() float64 {
	if m.seen == 0 {
		return 0
	}
	return float64(m.marked) / float64(m.seen)
}

// SourceConfig describes one AIMD source.
type SourceConfig struct {
	// Class is the source's service class.
	Class int
	// InitialRate is the starting sending rate in bytes per time unit.
	InitialRate float64
	// MinRate floors the rate (bytes per time unit).
	MinRate float64
}

// Config describes a closed-loop single-link simulation.
type Config struct {
	// SDP configures the WTP scheduler.
	SDP []float64
	// Sources is the AIMD population.
	Sources []SourceConfig
	// LinkRate is in bytes per time unit (default link.PaperLinkRate).
	LinkRate float64
	// MarkThreshold is the marking delay threshold in time units
	// (default 20 p-units).
	MarkThreshold float64
	// Increase is the additive rate increment applied each control
	// period without marks (bytes per time unit; default LinkRate/200).
	Increase float64
	// Decrease is the multiplicative back-off factor on a mark
	// (default 0.85).
	Decrease float64
	// Period is the control interval (default 50 p-units).
	Period float64
	// Buffer bounds the queue in packets (default 4096); drops count as
	// failures of the regime.
	Buffer int
	// Horizon and Warmup are in time units.
	Horizon, Warmup float64
	// Seed drives packet sizes.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LinkRate == 0 {
		c.LinkRate = link.PaperLinkRate
	}
	if c.MarkThreshold == 0 {
		c.MarkThreshold = 20 * link.PUnit
	}
	if c.Increase == 0 {
		c.Increase = c.LinkRate / 200
	}
	if c.Decrease == 0 {
		c.Decrease = 0.85
	}
	if c.Period == 0 {
		c.Period = 50 * link.PUnit
	}
	if c.Buffer == 0 {
		c.Buffer = 4096
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if len(cc.SDP) < 1 {
		return fmt.Errorf("ecn: no SDPs")
	}
	if len(cc.Sources) == 0 {
		return fmt.Errorf("ecn: no sources")
	}
	for i, s := range cc.Sources {
		if s.Class < 0 || s.Class >= len(cc.SDP) {
			return fmt.Errorf("ecn: source %d class %d out of range", i, s.Class)
		}
		if !(s.InitialRate > 0) || !(s.MinRate > 0) || s.MinRate > s.InitialRate {
			return fmt.Errorf("ecn: source %d needs 0 < MinRate <= InitialRate", i)
		}
	}
	if !(cc.Decrease > 0 && cc.Decrease < 1) {
		return fmt.Errorf("ecn: Decrease %g must be in (0,1)", cc.Decrease)
	}
	if !(cc.Horizon > 0) || cc.Warmup < 0 || cc.Warmup >= cc.Horizon {
		return fmt.Errorf("ecn: need 0 <= warmup < horizon")
	}
	return nil
}

// Result summarizes a closed-loop run.
type Result struct {
	// Utilization is the realized link utilization.
	Utilization float64
	// Dropped counts buffer losses (the regime's failure metric).
	Dropped uint64
	// Departed counts completed transmissions over the whole run, for
	// throughput accounting.
	Departed uint64
	// MarkFraction is the fraction of departures marked.
	MarkFraction float64
	// Delays holds post-warm-up per-class queueing delays.
	Delays *stats.ClassDelays
	// FinalRates are the per-source rates at the end of the run.
	FinalRates []float64
}

// Run executes the closed-loop simulation: AIMD sources sharing one WTP
// link with ECN marking.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := len(cfg.SDP)

	engine := sim.NewEngine()
	sched := core.NewWTP(cfg.SDP)
	l := link.New(engine, cfg.LinkRate, sched)
	l.MaxPackets = cfg.Buffer

	marker := &Marker{Threshold: cfg.MarkThreshold}
	delays := stats.NewClassDelays(n)

	// Per-source state: current rate, and whether any of its packets
	// was marked since its last control action.
	rates := make([]float64, len(cfg.Sources))
	markedSince := make([]bool, len(cfg.Sources))
	for i, s := range cfg.Sources {
		rates[i] = s.InitialRate
	}

	l.OnDepart = func(p *core.Packet) {
		marked := marker.Observe(p)
		if p.Departure >= cfg.Warmup {
			delays.Observe(p)
		}
		if marked && p.Flow > 0 {
			// Feedback is instantaneous in-sim: the congestion
			// signal reaches the source with the departure. A
			// round-trip delay would only slow convergence.
			markedSince[p.Flow-1] = true
		}
	}

	sizes := traffic.PaperSizes()
	for i, s := range cfg.Sources {
		i, s := i, s
		rng := traffic.NewRNG(cfg.Seed, 0xec4+uint64(i))
		var id uint64
		var emit func()
		emit = func() {
			now := engine.Now()
			id++
			size := sizes.Next(rng)
			l.Arrive(&core.Packet{
				ID:      uint64(i+1)<<40 + id,
				Class:   s.Class,
				Size:    size,
				Arrival: now,
				Birth:   now,
				Flow:    uint64(i + 1),
			})
			// Paced sending: next packet after size/rate.
			engine.After(float64(size)/rates[i], emit)
		}
		engine.After(float64(i+1)*0.1, emit)
	}

	// AIMD control loop.
	var control func()
	control = func() {
		for i, s := range cfg.Sources {
			if markedSince[i] {
				rates[i] *= cfg.Decrease
				if rates[i] < s.MinRate {
					rates[i] = s.MinRate
				}
				markedSince[i] = false
			} else {
				rates[i] += cfg.Increase
			}
		}
		if engine.Now()+cfg.Period <= cfg.Horizon {
			engine.After(cfg.Period, control)
		}
	}
	engine.After(cfg.Period, control)

	engine.RunUntil(cfg.Horizon)

	return &Result{
		Utilization:  l.Utilization(),
		Dropped:      l.Dropped(),
		Departed:     l.Departed(),
		MarkFraction: marker.MarkFraction(),
		Delays:       delays,
		FinalRates:   append([]float64(nil), rates...),
	}, nil
}
