package mg1

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func paperMoments(t *testing.T) ServiceMoments {
	t.Helper()
	m, err := MomentsFromSizes([]int64{40, 550, 1500}, []float64{0.4, 0.5, 0.1}, 441.0/11.2)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMomentsFromSizes(t *testing.T) {
	m := paperMoments(t)
	// Mean service time is one p-unit = 11.2 by construction.
	if math.Abs(m.Mean-11.2) > 1e-9 {
		t.Fatalf("Mean = %g, want 11.2", m.Mean)
	}
	if m.SecondMoment <= m.Mean*m.Mean {
		t.Fatal("E[S^2] must exceed E[S]^2 for a non-degenerate distribution")
	}
	for _, bad := range []func() error{
		func() error { _, err := MomentsFromSizes(nil, nil, 1); return err },
		func() error { _, err := MomentsFromSizes([]int64{1}, []float64{1}, 0); return err },
		func() error { _, err := MomentsFromSizes([]int64{0}, []float64{1}, 1); return err },
		func() error { _, err := MomentsFromSizes([]int64{1, 2}, []float64{0.5, 0.1}, 1); return err },
	} {
		if bad() == nil {
			t.Error("invalid input accepted")
		}
	}
}

func TestFCFSWaitKnownValue(t *testing.T) {
	// M/M/1 sanity: exponential service has E[S²] = 2/μ², so
	// W = ρ/(μ−λ). Approximate exponential with a fine discrete grid.
	const mu = 1.0
	const lambda = 0.8
	// Discretized exponential on a dense grid.
	var sizes []int64
	var probs []float64
	var norm float64
	for i := 1; i <= 4000; i++ {
		x := float64(i) * 0.005
		p := math.Exp(-mu*(x-0.0025)) - math.Exp(-mu*(x+0.0025))
		sizes = append(sizes, int64(i))
		probs = append(probs, p)
		norm += p
	}
	for i := range probs {
		probs[i] /= norm
	}
	m, err := MomentsFromSizes(sizes, probs, 200) // size i -> i*0.005 time units
	if err != nil {
		t.Fatal(err)
	}
	w, err := FCFSWait(lambda, m)
	if err != nil {
		t.Fatal(err)
	}
	want := lambda / (mu * (mu - lambda)) // = 4.0
	if math.Abs(w-want)/want > 0.02 {
		t.Fatalf("M/M/1 wait = %g, want %g", w, want)
	}
}

func TestFCFSWaitErrors(t *testing.T) {
	m := ServiceMoments{Mean: 1, SecondMoment: 2}
	if _, err := FCFSWait(0, m); err == nil {
		t.Error("lambda 0 accepted")
	}
	if _, err := FCFSWait(1.5, m); err == nil {
		t.Error("rho >= 1 accepted")
	}
}

func TestPriorityWaitsOrderingAndConservation(t *testing.T) {
	m := paperMoments(t)
	// Paper split at rho = 0.9: class rates in packets per time unit.
	lambda := []float64{0.4, 0.3, 0.2, 0.1}
	for i := range lambda {
		lambda[i] *= 0.9 / 11.2
	}
	waits, err := PriorityWaits(lambda, m)
	if err != nil {
		t.Fatal(err)
	}
	// Higher class (higher index) waits less; strictly ordered.
	for i := 0; i+1 < len(waits); i++ {
		if !(waits[i] > waits[i+1]) {
			t.Fatalf("waits not ordered: %v", waits)
		}
	}
	gap, err := ConservationCheck(lambda, waits, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gap) > 1e-12 {
		t.Fatalf("Cobham waits violate conservation by %g", gap)
	}
}

func TestPriorityWaitsErrors(t *testing.T) {
	m := ServiceMoments{Mean: 1, SecondMoment: 2}
	if _, err := PriorityWaits(nil, m); err == nil {
		t.Error("empty classes accepted")
	}
	if _, err := PriorityWaits([]float64{-1, 0.1}, m); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := PriorityWaits([]float64{0.6, 0.6}, m); err == nil {
		t.Error("overload accepted")
	}
}

func TestConservationCheckErrors(t *testing.T) {
	m := ServiceMoments{Mean: 1, SecondMoment: 2}
	if _, err := ConservationCheck([]float64{0.1}, []float64{1, 2}, m); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: Cobham's waits satisfy the conservation law for random
// feasible configurations.
func TestCobhamConservationProperty(t *testing.T) {
	m := ServiceMoments{Mean: 2, SecondMoment: 10}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		n := 2 + rng.IntN(5)
		lambda := make([]float64, n)
		budget := 0.95 / m.Mean
		for i := range lambda {
			lambda[i] = rng.Float64() * budget / float64(n)
		}
		waits, err := PriorityWaits(lambda, m)
		if err != nil {
			return false
		}
		gap, err := ConservationCheck(lambda, waits, m)
		if err != nil {
			return false
		}
		return math.Abs(gap) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
