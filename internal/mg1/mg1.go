// Package mg1 provides closed-form M/G/1 queueing results used to
// validate the simulator against theory under Poisson arrivals: the
// Pollaczek–Khinchine mean wait for FCFS, Cobham's formula for
// nonpreemptive static priorities (the strict scheduler), and the
// conservation law they must jointly satisfy. The paper's evaluation uses
// Pareto arrivals, where no closed forms exist; these results anchor the
// machinery itself.
package mg1

import "fmt"

// ServiceMoments are the first two moments of the service-time
// distribution.
type ServiceMoments struct {
	// Mean is E[S] in time units; SecondMoment is E[S²].
	Mean, SecondMoment float64
}

// MomentsFromSizes computes service moments for a discrete packet-size
// distribution served at rate bytes-per-time-unit.
func MomentsFromSizes(sizes []int64, probs []float64, rate float64) (ServiceMoments, error) {
	if len(sizes) == 0 || len(sizes) != len(probs) {
		return ServiceMoments{}, fmt.Errorf("mg1: need matching nonempty sizes/probs")
	}
	if !(rate > 0) {
		return ServiceMoments{}, fmt.Errorf("mg1: rate must be > 0")
	}
	var m ServiceMoments
	var sum float64
	for i := range sizes {
		if sizes[i] <= 0 || probs[i] < 0 {
			return ServiceMoments{}, fmt.Errorf("mg1: invalid size/prob at %d", i)
		}
		s := float64(sizes[i]) / rate
		m.Mean += probs[i] * s
		m.SecondMoment += probs[i] * s * s
		sum += probs[i]
	}
	if sum < 0.999 || sum > 1.001 {
		return ServiceMoments{}, fmt.Errorf("mg1: probabilities sum to %g", sum)
	}
	return m, nil
}

// FCFSWait returns the Pollaczek–Khinchine mean waiting time
// W = λ·E[S²]/(2(1−ρ)) for aggregate Poisson arrival rate lambda.
func FCFSWait(lambda float64, m ServiceMoments) (float64, error) {
	rho := lambda * m.Mean
	if !(lambda > 0) || rho >= 1 {
		return 0, fmt.Errorf("mg1: need lambda > 0 and rho = %g < 1", rho)
	}
	return lambda * m.SecondMoment / (2 * (1 - rho)), nil
}

// PriorityWaits returns Cobham's mean waiting times for a nonpreemptive
// static-priority M/G/1 queue. lambda[i] is the Poisson arrival rate of
// class i with class numbering matching this repository's convention:
// *higher index = higher priority* (served first). All classes share the
// same service distribution m. The result is indexed like lambda.
//
//	W_k = W0 / ((1 − σ_{k−1}) (1 − σ_k))
//
// with W0 = λ·E[S²]/2 the mean residual service and σ_k the utilization of
// the k highest-priority classes.
func PriorityWaits(lambda []float64, m ServiceMoments) ([]float64, error) {
	n := len(lambda)
	if n == 0 {
		return nil, fmt.Errorf("mg1: no classes")
	}
	var aggLambda float64
	for i, l := range lambda {
		if l < 0 {
			return nil, fmt.Errorf("mg1: negative rate for class %d", i)
		}
		aggLambda += l
	}
	if aggLambda*m.Mean >= 1 {
		return nil, fmt.Errorf("mg1: total utilization %g >= 1", aggLambda*m.Mean)
	}
	w0 := aggLambda * m.SecondMoment / 2
	waits := make([]float64, n)
	// Walk priority ranks from highest (index n-1) downward,
	// accumulating σ.
	sigmaPrev := 0.0
	for i := n - 1; i >= 0; i-- {
		sigma := sigmaPrev + lambda[i]*m.Mean
		waits[i] = w0 / ((1 - sigmaPrev) * (1 - sigma))
		sigmaPrev = sigma
	}
	return waits, nil
}

// ConservationCheck returns the relative gap between Σ ρ_k·W_k for the
// given per-class waits and the FCFS value ρ·W_FCFS — zero for any
// work-conserving discipline per the M/G/1 conservation law.
func ConservationCheck(lambda []float64, waits []float64, m ServiceMoments) (float64, error) {
	if len(lambda) != len(waits) {
		return 0, fmt.Errorf("mg1: length mismatch")
	}
	var agg float64
	for _, l := range lambda {
		agg += l
	}
	fcfs, err := FCFSWait(agg, m)
	if err != nil {
		return 0, err
	}
	target := agg * m.Mean * fcfs
	var got float64
	for i := range lambda {
		got += lambda[i] * m.Mean * waits[i]
	}
	if target == 0 {
		return 0, fmt.Errorf("mg1: degenerate target")
	}
	return (got - target) / target, nil
}
