package netio

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"
)

// batchPair builds a connected client → listening server UDP pair wrapped
// in batchConns.
func batchPair(t *testing.T, batch int) (client, server *batchConn) {
	t.Helper()
	srvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvConn.Close() })
	cliConn, err := net.DialUDP("udp", nil, srvConn.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cliConn.Close() })
	server, err = newBatchConn(srvConn, batch)
	if err != nil {
		t.Fatal(err)
	}
	client, err = newBatchConn(cliConn, batch)
	if err != nil {
		t.Fatal(err)
	}
	return client, server
}

// roundTrip pushes count datagrams through the pair and checks payloads,
// lengths, and the reported source address.
func roundTrip(t *testing.T, client, server *batchConn, count int) {
	t.Helper()
	payloads := make([][]byte, count)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("datagram-%03d", i))
	}
	go func() {
		sent := 0
		for sent < count {
			n, err := client.WriteBatch(payloads[sent:])
			if err != nil {
				return
			}
			sent += n
		}
	}()
	wantFrom := client.conn.LocalAddr().(*net.UDPAddr).AddrPort()
	got := 0
	deadline := time.Now().Add(5 * time.Second)
	for got < count {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d datagrams", got, count)
		}
		server.conn.SetReadDeadline(deadline)
		slots, err := server.ReadBatch()
		if err != nil {
			t.Fatalf("ReadBatch after %d datagrams: %v", got, err)
		}
		for _, s := range slots {
			want := fmt.Sprintf("datagram-%03d", got)
			if string(s.buf) != want {
				t.Fatalf("datagram %d = %q, want %q", got, s.buf, want)
			}
			if s.from.Port() != wantFrom.Port() {
				t.Fatalf("datagram %d from %v, want port %d", got, s.from, wantFrom.Port())
			}
			got++
		}
	}
}

func TestBatchConnRoundTrip(t *testing.T) {
	client, server := batchPair(t, 8)
	roundTrip(t, client, server, 50)
}

// The portable path must carry the same traffic: force it by discarding
// the mmsg state on both ends.
func TestBatchConnPortableFallback(t *testing.T) {
	client, server := batchPair(t, 8)
	client.sys = nil
	server.sys = nil
	if client.Mode() != "datagram" || server.Mode() != "datagram" {
		t.Fatalf("modes = %s/%s, want datagram", client.Mode(), server.Mode())
	}
	roundTrip(t, client, server, 50)
}

func TestBatchConnModeOnLinuxAmd64(t *testing.T) {
	if runtime.GOOS != "linux" || runtime.GOARCH != "amd64" {
		t.Skip("mmsg fast path is linux/amd64 only")
	}
	client, server := batchPair(t, 8)
	if !server.Batched() || server.Mode() != "mmsg" {
		t.Fatalf("server mode = %s, want mmsg", server.Mode())
	}
	// Exercise one real batched read so the probe actually runs.
	if _, err := client.WriteBatch([][]byte{[]byte("probe")}); err != nil {
		t.Fatal(err)
	}
	server.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	slots, err := server.ReadBatch()
	if err != nil || len(slots) != 1 || string(slots[0].buf) != "probe" {
		t.Fatalf("ReadBatch = %v slots, err %v", len(slots), err)
	}
	if !server.Batched() {
		t.Fatal("probe demoted the mmsg path on linux/amd64")
	}
}

// A multi-datagram burst should surface as batches (>1 datagram per
// ReadBatch at least once) when the mmsg path is active.
func TestBatchConnCoalescesBursts(t *testing.T) {
	if runtime.GOOS != "linux" || runtime.GOARCH != "amd64" {
		t.Skip("mmsg fast path is linux/amd64 only")
	}
	client, server := batchPair(t, 16)
	const count = 64
	payloads := make([][]byte, count)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("burst-%03d", i))
	}
	sent := 0
	for sent < count {
		n, err := client.WriteBatch(payloads[sent:])
		if err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	// Let the kernel queue the burst before the first read.
	time.Sleep(50 * time.Millisecond)
	got, maxBatch := 0, 0
	deadline := time.Now().Add(5 * time.Second)
	for got < count {
		server.conn.SetReadDeadline(deadline)
		slots, err := server.ReadBatch()
		if err != nil {
			t.Fatalf("ReadBatch after %d: %v", got, err)
		}
		if len(slots) > maxBatch {
			maxBatch = len(slots)
		}
		got += len(slots)
	}
	if maxBatch < 2 {
		t.Fatalf("max batch = %d; a 64-datagram burst never coalesced", maxBatch)
	}
	t.Logf("max receive batch: %d datagrams", maxBatch)
}
