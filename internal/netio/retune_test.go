package netio

import (
	"errors"
	"testing"
	"time"

	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// waitRetune polls the retune seam until cond holds, failing with desc on
// timeout.
func waitRetune(t *testing.T, f *Forwarder, timeout time.Duration, cond func(RetuneStats) bool, desc string) RetuneStats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		rs := f.RetuneStats()
		if cond(rs) {
			return rs
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: retune stats %+v", desc, rs)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A staged Retune must be installed by the transmit goroutine — even on an
// idle forwarder, since Retune wakes it — and the seam's counters must
// reflect exactly the vector that went in.
func TestForwarderRetuneApplies(t *testing.T) {
	recv := sink(t)
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	if rs := fwd.RetuneStats(); rs.Pending || rs.Applied != 0 || rs.Params != nil {
		t.Fatalf("fresh forwarder has retune activity: %+v", rs)
	}
	want := []float64{1, 8}
	if err := fwd.Retune(want); err != nil {
		t.Fatal(err)
	}
	rs := waitRetune(t, fwd, 5*time.Second, func(rs RetuneStats) bool {
		return rs.Applied == 1 && !rs.Pending
	}, "staged vector to install")
	if len(rs.Params) != len(want) || rs.Params[0] != want[0] || rs.Params[1] != want[1] {
		t.Fatalf("installed params %v, want %v", rs.Params, want)
	}

	// A second vector replaces the first; Applied keeps counting.
	if err := fwd.Retune([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	rs = waitRetune(t, fwd, 5*time.Second, func(rs RetuneStats) bool {
		return rs.Applied == 2
	}, "second vector to install")
	if rs.Params[1] != 2 {
		t.Fatalf("installed params %v, want [1 2]", rs.Params)
	}
}

// Retune validates synchronously: malformed vectors never reach the
// transmit goroutine, and a non-retunable scheduler kind is refused with
// core.ErrNotRetunable.
func TestForwarderRetuneRejects(t *testing.T) {
	recv := sink(t)
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	for _, bad := range [][]float64{nil, {1}, {1, 2, 4}, {4, 1}, {0, 1}} {
		if err := fwd.Retune(bad); err == nil {
			t.Errorf("Retune(%v) accepted an invalid vector", bad)
		}
	}
	if rs := fwd.RetuneStats(); rs.Pending || rs.Applied != 0 {
		t.Fatalf("rejected vectors left seam activity: %+v", rs)
	}

	fcfs, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindFCFS,
		SDP:       []float64{1, 4},
		RateBps:   1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fcfs.Close()
	if err := fcfs.Retune([]float64{1, 8}); !errors.Is(err, core.ErrNotRetunable) {
		t.Fatalf("FCFS Retune error = %v, want core.ErrNotRetunable", err)
	}
}

// A Config.Control on a non-retunable scheduler must fail at Listen, not
// at the first decision.
func TestForwarderControlRejectsNonRetunable(t *testing.T) {
	recv := sink(t)
	_, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindFCFS,
		SDP:       []float64{1, 4},
		RateBps:   1 << 20,
		Control:   &control.Config{},
	})
	if err == nil {
		t.Fatal("Listen accepted Control on FCFS")
	}
}

// End to end: a forwarder with an embedded controller under sustained
// two-class load must observe windows and push at least one retune
// through the seam, and the stats conservation invariants must survive
// the loop's interference.
func TestForwarderControlLoopRetunes(t *testing.T) {
	recv := sink(t)
	reg := telemetry.NewWithSDP([]float64{1, 4})
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 19,
		Telemetry: reg,
		Control: &control.Config{
			// Trip on any measurable deviation: a lightly loaded loopback
			// serves both classes with near-equal delay, nowhere near the
			// target ratio 4.
			Gain:          0.5,
			Deadband:      0.01,
			MinDepartures: 20,
			Cooldown:      0,
		},
		ControlInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	send := dialIngress(t, fwd)

	// Sustained two-class traffic, kept below the egress rate: a WTP
	// backlog that never drains would starve class 0 outright (its window
	// never completes) — the controller needs departures in both classes.
	deadline := time.Now().Add(10 * time.Second)
	var sent uint64
	for {
		rs := fwd.RetuneStats()
		if rs.Applied >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cs, _ := fwd.ControlStats()
			t.Fatalf("controller never retuned: retune %+v control %+v", rs, cs)
		}
		for i := 0; i < 2; i++ {
			if _, err := send.Write(datagram(uint8(i%2), sent, 100)); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		time.Sleep(5 * time.Millisecond)
	}

	cs, ok := fwd.ControlStats()
	if !ok {
		t.Fatal("ControlStats not available with Config.Control set")
	}
	if cs.Windows == 0 {
		t.Fatalf("controller observed no windows: %+v", cs)
	}
	rs := fwd.RetuneStats()
	if err := core.CheckRetuneParams(rs.Params, 2); err != nil {
		t.Fatalf("controller installed an invalid vector %v: %v", rs.Params, err)
	}

	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	checkConservation(t, fwd.Stats(), reg)
}
