package netio

import (
	"sync/atomic"

	"pdds/internal/core"
)

// spscRing is a bounded lock-free single-producer single-consumer ring of
// packets: the wait-free conduit between one ingress shard goroutine and
// the transmit goroutine (and, in the reverse direction, the free-list
// conduit returning recycled packets to their shard).
//
// Memory-ordering argument (documented for review, see DESIGN.md §3h):
// head is written only by the consumer, tail only by the producer — each
// side owns one index and merely observes the other's.
//
//   - Push: the producer stores the packet into slots[tail&mask] *before*
//     publishing tail+1 with a release store (atomic.Uint64.Store). The
//     consumer's acquire load of tail therefore happens-after the slot
//     write: a consumer that observes tail+1 observes the packet too, with
//     everything the producer wrote to it (payload bytes included).
//   - Pop: the consumer reads slots[head&mask] *before* publishing head+1
//     with a release store. The producer's acquire load of head
//     happens-after the slot read, so a producer that observes the freed
//     slot can safely overwrite it.
//
// Go's atomic operations are sequentially consistent, which is strictly
// stronger than the release/acquire pairs the argument needs. Each index
// sits on its own cache line so the producer and consumer do not false-
// share, and capacity is a power of two so index masking is one AND.
type spscRing struct {
	_     [64]byte // keep head off the previous owner's cache line
	head  atomic.Uint64
	_     [56]byte
	tail  atomic.Uint64
	_     [56]byte
	mask  uint64
	slots []*core.Packet
}

// newSPSCRing returns a ring with capacity at least min, rounded up to a
// power of two.
func newSPSCRing(min int) *spscRing {
	capacity := 1
	for capacity < min {
		capacity <<= 1
	}
	return &spscRing{
		mask:  uint64(capacity - 1),
		slots: make([]*core.Packet, capacity),
	}
}

// Cap returns the ring's capacity.
func (r *spscRing) Cap() int { return len(r.slots) }

// Len returns the instantaneous occupancy. It is exact when called from
// either the producer or the consumer goroutine and a safe lower/upper
// snapshot from anywhere else.
func (r *spscRing) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Push appends p; it reports false when the ring is full. Producer side
// only.
func (r *spscRing) Push(p *core.Packet) bool {
	tail := r.tail.Load()
	if tail-r.head.Load() >= uint64(len(r.slots)) {
		return false
	}
	r.slots[tail&r.mask] = p
	r.tail.Store(tail + 1) // release: publishes the slot write above
	return true
}

// Pop removes and returns the oldest packet, or nil when the ring is
// empty. Consumer side only.
func (r *spscRing) Pop() *core.Packet {
	head := r.head.Load()
	if head == r.tail.Load() {
		return nil
	}
	p := r.slots[head&r.mask]
	r.slots[head&r.mask] = nil
	r.head.Store(head + 1) // release: publishes the slot read above
	return p
}
