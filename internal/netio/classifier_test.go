package netio

import (
	"net"
	"testing"
	"time"

	"pdds/internal/classify"
)

// twoClassConfig builds a programmatic two-class config: class 0 "slow"
// is the default, class 1 "fast" admits flows whose source port is
// fastPort.
func twoClassConfig(fastPort uint16) *classify.Config {
	return &classify.Config{Classes: []classify.TrafficClass{
		{Name: "slow", DDP: 2, Default: true},
		{Name: "fast", DDP: 1, Filters: []classify.Filter{
			{Elements: []classify.FilterElement{classify.SrcPort{Lo: fastPort, Hi: fastPort}}},
		}},
	}}
}

func newClassifier(t *testing.T, cfg *classify.Config) *classify.Classifier {
	t.Helper()
	c, err := classify.New(cfg, classify.FlowTableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestForwarderClassifiesUnspecified: untagged (ClassUnspecified)
// datagrams are classified by flow identity, the resolved class is
// re-marked into the forwarded datagram, and nothing lands in BadClass.
func TestForwarderClassifiesUnspecified(t *testing.T) {
	recv := sink(t)

	// Bind the "fast" sender first so its port can appear in the config.
	fastSend, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer fastSend.Close()
	fastPort := fastSend.LocalAddr().(*net.UDPAddr).AddrPort().Port()

	ccfg := twoClassConfig(fastPort)
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		SDP:        ccfg.SDPs(),
		RateBps:    50e6,
		Classifier: newClassifier(t, ccfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	slowSend := dialIngress(t, fwd)

	dst := fwd.LocalAddr().(*net.UDPAddr)
	const perSender = 20
	for i := 0; i < perSender; i++ {
		if _, err := fastSend.WriteToUDP(datagram(ClassUnspecified, uint64(i), 64), dst); err != nil {
			t.Fatal(err)
		}
		if _, err := slowSend.Write(datagram(ClassUnspecified, uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}

	// Every datagram must come out re-marked with its resolved class.
	counts := map[uint8]int{}
	buf := make([]byte, 64*1024)
	recv.SetReadDeadline(time.Now().Add(10 * time.Second))
	for got := 0; got < 2*perSender; got++ {
		n, err := recv.Read(buf)
		if err != nil {
			t.Fatalf("sink read after %d datagrams: %v", got, err)
		}
		hdr, _, derr := Decode(buf[:n])
		if derr != nil {
			t.Fatalf("sink got undecodable datagram: %v", derr)
		}
		counts[hdr.Class]++
	}
	if counts[0] != perSender || counts[1] != perSender {
		t.Fatalf("re-marked class counts = %v, want %d each of class 0 and 1", counts, perSender)
	}
	st := waitStats(t, fwd, 5*time.Second, func(s Stats) bool {
		return s.Forwarded == 2*perSender
	}, "all datagrams forwarded")
	if st.BadClass != 0 || st.BadHeader != 0 {
		t.Fatalf("stats %+v: classified traffic must not count as bad", st)
	}
	checkConservation(t, st, nil)
}

// TestForwarderTrustsInRangeHeader: with a classifier but without
// DistrustHeader, an in-range header class is honored as-is (no re-mark,
// no flow-table traffic for tagged datagrams).
func TestForwarderTrustsInRangeHeader(t *testing.T) {
	recv := sink(t)
	ccfg := twoClassConfig(1) // port 1: matches nothing real
	cls := newClassifier(t, ccfg)
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		SDP:        ccfg.SDPs(),
		RateBps:    50e6,
		Classifier: cls,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)
	if _, err := send.Write(datagram(1, 1, 64)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	recv.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := recv.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, _ := Decode(buf[:n])
	if hdr.Class != 1 {
		t.Fatalf("trusted header class re-marked to %d", hdr.Class)
	}
	if got := cls.Table().Stats(); got.Inserts != 0 {
		t.Fatalf("trusted datagram consulted the classifier: %+v", got)
	}
}

// TestForwarderDistrustHeader: DistrustHeader classifies every datagram
// from flow identity, overriding in-range header bytes.
func TestForwarderDistrustHeader(t *testing.T) {
	recv := sink(t)
	fastSend, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer fastSend.Close()
	fastPort := fastSend.LocalAddr().(*net.UDPAddr).AddrPort().Port()

	ccfg := twoClassConfig(fastPort)
	fwd, err := Listen(Config{
		Listen:         "127.0.0.1:0",
		Forward:        recv.LocalAddr().String(),
		SDP:            ccfg.SDPs(),
		RateBps:        50e6,
		Classifier:     newClassifier(t, ccfg),
		DistrustHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	// The sender claims class 0; the edge must override to 1 (fast).
	dst := fwd.LocalAddr().(*net.UDPAddr)
	if _, err := fastSend.WriteToUDP(datagram(0, 1, 64), dst); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64*1024)
	recv.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := recv.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, _, _ := Decode(buf[:n])
	if hdr.Class != 1 {
		t.Fatalf("distrusted datagram forwarded as class %d, want re-marked 1", hdr.Class)
	}
}

// TestForwarderClassifierMiss: a classifier with no default and no
// matching filter yields BadClass, and conservation still holds.
func TestForwarderClassifierMiss(t *testing.T) {
	recv := sink(t)
	ccfg := &classify.Config{Classes: []classify.TrafficClass{
		{Name: "only", DDP: 1, Filters: []classify.Filter{
			{Elements: []classify.FilterElement{classify.SrcPort{Lo: 1, Hi: 1}}},
		}},
	}}
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		SDP:        ccfg.SDPs(),
		RateBps:    50e6,
		Classifier: newClassifier(t, ccfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)
	if _, err := send.Write(datagram(ClassUnspecified, 1, 64)); err != nil {
		t.Fatal(err)
	}
	st := waitStats(t, fwd, 5*time.Second, func(s Stats) bool {
		return s.BadClass == 1
	}, "classifier miss to count as BadClass")
	checkConservation(t, st, nil)
}

// TestForwarderPerClassBound: ClassMaxPackets caps one class's backlog
// without touching the aggregate bound, with dropped datagrams fully
// accounted.
func TestForwarderPerClassBound(t *testing.T) {
	recv := sink(t)
	fwd, err := Listen(Config{
		Listen:          "127.0.0.1:0",
		Forward:         recv.LocalAddr().String(),
		SDP:             []float64{1, 2},
		RateBps:         8 * 1024, // ~1 KiB/s: essentially frozen egress
		MaxPackets:      100,
		ClassMaxPackets: []int{2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)
	const total = 30
	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(0, uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(t, fwd, 10*time.Second, func(s Stats) bool {
		return s.Received == total && s.Dropped > 0
	}, "per-class bound drops")
	if st.Queued > 3 {
		t.Fatalf("stats %+v: class 0 backlog exceeds its bound of 2", st)
	}
	checkConservation(t, st, nil)
}

// TestListenRejectsBadClassifierConfigs: misconfigured classifier/bounds
// fail fast at Listen.
func TestListenRejectsBadClassifierConfigs(t *testing.T) {
	recv := sink(t)
	base := Config{
		Listen:  "127.0.0.1:0",
		Forward: recv.LocalAddr().String(),
		SDP:     []float64{1, 2, 4},
		RateBps: 1e6,
	}

	cfg := base
	cfg.Classifier = newClassifier(t, twoClassConfig(1)) // 2 classes vs 3 SDPs
	if f, err := Listen(cfg); err == nil {
		f.Close()
		t.Fatal("class-count mismatch must fail Listen")
	}

	cfg = base
	cfg.DistrustHeader = true
	if f, err := Listen(cfg); err == nil {
		f.Close()
		t.Fatal("DistrustHeader without Classifier must fail Listen")
	}

	cfg = base
	cfg.ClassMaxPackets = []int{1}
	if f, err := Listen(cfg); err == nil {
		f.Close()
		t.Fatal("ClassMaxPackets length mismatch must fail Listen")
	}

	cfg = base
	cfg.ClassMaxPackets = []int{1, -1, 1}
	if f, err := Listen(cfg); err == nil {
		f.Close()
		t.Fatal("negative ClassMaxPackets must fail Listen")
	}
}
