package netio

import (
	"context"
	"fmt"
	"net"
	"syscall"
	"time"

	"pdds/internal/classify"
	"pdds/internal/core"
)

// maxShards bounds Config.Shards: beyond ~64 ingress sockets the kernel's
// REUSEPORT hash spreads flows too thin to matter and the per-shard ring
// memory dominates.
const maxShards = 64

// listenShards binds the forwarder's ingress sockets. With n == 1 the
// single socket is bound exactly as the classic forwarder bound it (no
// REUSEPORT, byte-identical path). With n > 1 it binds n sockets to the
// same addr:port under SO_REUSEPORT so the kernel's 4-tuple hash gives
// every flow a stable shard — the sharding discipline the classify flow
// table uses, realized in the kernel. When SO_REUSEPORT is unavailable
// (non-Linux builds, exotic sandboxes) it falls back to one socket shared
// by all shard goroutines: batching still works, but flow→shard stability
// is lost, which the forwarder reports via ShardStats.SharedSocket.
func listenShards(listen string, n int) ([]*net.UDPConn, bool, error) {
	if n <= 1 {
		laddr, err := net.ResolveUDPAddr("udp", listen)
		if err != nil {
			return nil, false, fmt.Errorf("netio: resolve listen addr: %w", err)
		}
		c, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, false, fmt.Errorf("netio: listen: %w", err)
		}
		return []*net.UDPConn{c}, false, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	pc, err := lc.ListenPacket(context.Background(), "udp", listen)
	if err != nil {
		// REUSEPORT (or the bind itself) failed: try the classic bind and
		// share it. A genuinely unusable address still errors out here.
		conns, _, serr := listenShards(listen, 1)
		if serr != nil {
			return nil, false, serr
		}
		return conns, true, nil
	}
	conns := []*net.UDPConn{pc.(*net.UDPConn)}
	// The first bind resolved ":0" to a concrete port; the rest must bind
	// that exact addr:port to join the REUSEPORT group.
	concrete := conns[0].LocalAddr().String()
	for len(conns) < n {
		pc, err := lc.ListenPacket(context.Background(), "udp", concrete)
		if err != nil {
			for _, c := range conns[1:] {
				c.Close()
			}
			return conns[:1], true, nil
		}
		conns = append(conns, pc.(*net.UDPConn))
	}
	return conns, false, nil
}

// reusePortControl is the net.ListenConfig hook that sets SO_REUSEPORT
// before bind.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	if err := c.Control(func(fd uintptr) { serr = setReusePort(fd) }); err != nil {
		return err
	}
	return serr
}

// Per-slot classification outcomes recorded in ingressShard.class between
// the lock-free decode pass and the accounting pass; non-negative values
// are resolved classes.
const (
	slotBadHeader = -1
	slotBadClass  = -2
	slotRejected  = -3 // accounted (drop) — phase 3 must not build a packet
)

// ingressShard is one parallel receive path: a socket (its own under
// SO_REUSEPORT, or the shared one in fallback mode), batched reads, flow
// classification, admission accounting, and a lock-free SPSC ring into the
// transmit goroutine. The reverse free ring returns recycled packets so
// the steady-state ingress path allocates nothing.
type ingressShard struct {
	f    *Forwarder
	idx  int
	bc   *batchConn
	xmit *spscRing // shard → transmitter; this side is the producer
	free *spscRing // transmitter → shard; this side is the consumer

	// key is the flow-key scratch hoisted out of the per-datagram path:
	// the destination half (the ingress socket's canonical address) and
	// protocol never change, so they are filled once at construction and
	// only Src/SrcPort are written per datagram.
	key classify.FlowKey

	// class is the per-slot decision scratch, reused every batch.
	class []int
}

func newIngressShard(f *Forwarder, idx int, bc *batchConn) *ingressShard {
	return &ingressShard{
		f:    f,
		idx:  idx,
		bc:   bc,
		xmit: newSPSCRing(f.cfg.MaxPackets),
		free: newSPSCRing(f.cfg.MaxPackets),
		key: classify.FlowKey{
			Dst:     f.ingressAddr,
			DstPort: f.ingressPort,
			Proto:   classify.ProtoUDP,
		},
		class: make([]int, defaultIOBatch),
	}
}

// run is the shard goroutine: read a batch, process it, wake the
// transmitter, repeat until the socket dies (normally at Close).
func (s *ingressShard) run() {
	defer s.f.ingressWG.Done()
	for {
		slots, err := s.bc.ReadBatch()
		if err != nil {
			// Closed socket (or a fatal error): stop receiving and wake
			// the transmitter so it can drain or discard.
			s.f.noteIngressDone()
			return
		}
		s.processBatch(slots, time.Now())
		s.f.signalWake()
	}
}

// processBatch runs one received batch through classification, admission,
// and publication. It is the testable core of the ingress path (no socket
// needed) and the subject of the zero-allocation gate: with pooling on and
// trusted headers it allocates only when a datagram outgrows every
// recycled payload buffer.
//
// The batch takes ONE statMu transaction regardless of size — counters,
// telemetry arrivals/drops, and admission all inside it — so sharded
// ingress keeps the classic path's exactness guarantees (every datagram
// accounted exactly once; telemetry Arrival strictly before the matching
// Departure or Drop) at 1/batch the lock traffic.
func (s *ingressShard) processBatch(slots []recvSlot, nowT time.Time) {
	f := s.f
	now := nowT.Sub(f.epoch).Seconds()
	nowNanos := nowT.Sub(f.epoch).Nanoseconds()

	// Phase 1, lock-free: decode and classify each datagram. The header
	// byte is trusted when in range (unless DistrustHeader);
	// ClassUnspecified and out-of-range bytes go to the classifier, whose
	// flow table is internally sharded and safe for concurrent shards.
	for i := range slots {
		hdr, _, derr := Decode(slots[i].buf)
		if derr != nil {
			s.class[i] = slotBadHeader
			continue
		}
		class := int(hdr.Class)
		if class >= f.numClasses || f.cfg.DistrustHeader {
			cls := f.cfg.Classifier
			if cls == nil {
				s.class[i] = slotBadClass
				continue
			}
			s.key.Src = slots[i].from.Addr().Unmap()
			s.key.SrcPort = slots[i].from.Port()
			c, ok := cls.Classify(s.key, hdr.Class, nowNanos)
			if !ok || c < 0 || c >= f.numClasses {
				s.class[i] = slotBadClass
				continue
			}
			class = c
		}
		s.class[i] = class
	}

	// Phase 2: the batch's single accounting transaction.
	f.statMu.Lock()
	ss := &f.shardStats[s.idx]
	ss.Batches++
	ss.Received += uint64(len(slots))
	if len(slots) > ss.MaxBatch {
		ss.MaxBatch = len(slots)
	}
	ss.Mode = s.bc.Mode() // reflects a runtime-probe demotion, if any
	admitted := 0
	for i := range slots {
		f.stats.Received++
		class := s.class[i]
		switch class {
		case slotBadHeader:
			f.stats.BadHeader++
			s.class[i] = slotRejected
		case slotBadClass:
			f.stats.BadClass++
			s.class[i] = slotRejected
		default:
			// Ordering contract: the arrival is recorded before the
			// transmitter can observe the packet — and before any drop —
			// so a departure or drop never precedes its arrival.
			f.telem.Arrival(class, int64(len(slots[i].buf)), now)
			if f.queued >= f.cfg.MaxPackets || f.closing ||
				(f.cfg.ClassMaxPackets != nil && f.cfg.ClassMaxPackets[class] > 0 &&
					f.classQueued[class] >= f.cfg.ClassMaxPackets[class]) {
				f.stats.Dropped++
				f.telem.Drop(class, now)
				s.class[i] = slotRejected
			} else {
				f.queued++
				f.classQueued[class]++
				admitted++
			}
		}
	}
	id := f.idSeq + 1
	f.idSeq += uint64(admitted)
	f.statMu.Unlock()

	// Phase 3, lock-free: build the admitted packets and publish them to
	// the transmit ring. The ring's capacity matches MaxPackets, and
	// admission bounded the global backlog by MaxPackets, so Push cannot
	// fail; the guard keeps accounting exact even if that reasoning is
	// ever broken.
	for i := range slots {
		class := s.class[i]
		if class < 0 {
			continue
		}
		buf := slots[i].buf
		p := s.getPacket(len(buf))
		p.ID = id
		id++
		p.Class = class
		p.Size = int64(len(buf))
		p.Arrival = now
		p.Payload = append(p.Payload[:0], buf...)
		if p.Payload[1] != byte(class) {
			// Re-mark the DS byte with the edge's decision so downstream
			// hops and sinks see the resolved class.
			p.Payload[1] = byte(class)
		}
		if !s.xmit.Push(p) {
			f.statMu.Lock()
			f.stats.Dropped++
			f.telem.Drop(class, f.now())
			f.queued--
			f.classQueued[class]--
			f.statMu.Unlock()
		}
	}
}

// getPacket returns a packet whose payload buffer has capacity ≥ n,
// preferring a recycled one from the transmitter's free ring.
func (s *ingressShard) getPacket(n int) *core.Packet {
	if !s.f.cfg.DisablePooling {
		if p := s.free.Pop(); p != nil {
			if cap(p.Payload) < n {
				p.Payload = make([]byte, 0, payloadCap(n))
			}
			return p
		}
	}
	return &core.Packet{Payload: make([]byte, 0, payloadCap(n))}
}

// payloadCap rounds a datagram size up to the payload buffer capacity
// class (powers of two from 256), so recycled buffers fit most traffic.
func payloadCap(n int) int {
	c := 256
	for c < n {
		c <<= 1
	}
	return c
}
