package netio

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdds/internal/telemetry"
)

// sink binds a loopback UDP socket for a forwarder's egress to point at.
func sink(t *testing.T) *net.UDPConn {
	t.Helper()
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// dialIngress connects a sender socket to the forwarder's ingress.
func dialIngress(t *testing.T, f *Forwarder) *net.UDPConn {
	t.Helper()
	c, err := net.DialUDP("udp", nil, f.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// datagram builds a classed datagram with payload bytes of padding.
func datagram(class uint8, seq uint64, payload int) []byte {
	dg := Header{Class: class, Seq: seq, SentAt: time.Now()}.Encode(nil)
	return append(dg, make([]byte, payload)...)
}

// waitStats polls the forwarder's stats until cond holds, failing with
// desc on timeout.
func waitStats(t *testing.T, f *Forwarder, timeout time.Duration, cond func(Stats) bool, desc string) Stats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := f.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s: stats %+v", desc, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkConservation asserts the stats invariant Received = Forwarded +
// Dropped + BadHeader + BadClass + Queued, and — when a registry is
// attached — that
// per-class telemetry agrees: arrivals = departures + drops + backlog.
func checkConservation(t *testing.T, st Stats, reg *telemetry.Registry) {
	t.Helper()
	if st.Received != st.Forwarded+st.Dropped+st.BadHeader+st.BadClass+st.Queued {
		t.Errorf("stats conservation violated: %+v", st)
	}
	if reg == nil {
		return
	}
	snap := reg.Snapshot()
	var arrivals, departures, drops uint64
	for _, c := range snap.Classes {
		arrivals += c.Arrivals
		departures += c.Departures
		drops += c.Drops
	}
	if arrivals != departures+drops+st.Queued {
		t.Errorf("telemetry conservation violated: arrivals=%d departures=%d drops=%d queued=%d",
			arrivals, departures, drops, st.Queued)
	}
	if got := st.Received - st.BadHeader - st.BadClass; arrivals != got {
		t.Errorf("telemetry arrivals %d != classified datagrams %d", arrivals, got)
	}
}

// Regression: a queue-full drop must still record the telemetry arrival,
// or ClassSnapshot.Backlog (arrivals − departures − drops) is permanently
// deflated by every drop.
func TestForwarderDropRecordsArrival(t *testing.T) {
	recv := sink(t)
	reg := telemetry.NewWithSDP([]float64{1, 4})
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		SDP:        []float64{1, 4},
		RateBps:    8 * 1024, // 1 KiB/s: essentially frozen egress
		MaxPackets: 2,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)

	const total = 12
	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(0, uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(t, fwd, 5*time.Second, func(s Stats) bool {
		return s.Received == total && s.Dropped > 0
	}, "all datagrams received with drops")

	snap := reg.Snapshot()
	if got := snap.Classes[0].Arrivals; got != total {
		t.Fatalf("telemetry arrivals = %d, want %d (drops skipped the arrival record)", got, total)
	}
	if backlog := snap.Classes[0].Backlog(); backlog != st.Queued {
		t.Fatalf("telemetry backlog %d != queued %d", backlog, st.Queued)
	}
	checkConservation(t, st, reg)
}

// Regression: the arrival must be recorded before the transmitter is
// woken, or the matching departure can land first and counter-derived
// backlogs transiently underflow. The OnDequeue hook observes the
// counters at every departure; a departure count above the arrival count
// at any observation is a violation.
func TestForwarderTelemetryOrdering(t *testing.T) {
	recv := sink(t)
	reg := telemetry.NewWithSDP([]float64{1, 2, 4, 8})
	var violations atomic.Uint64
	reg.OnDequeue = func(class int, now, delay float64) {
		c := reg.Class(class)
		if c.Departures.Load() > c.Arrivals.Load() {
			violations.Add(1)
		}
	}
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		SDP:       []float64{1, 2, 4, 8},
		RateBps:   50e6, // fast egress: departures chase arrivals closely
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)

	const total = 400
	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(uint8(i%4), uint64(i), 64)); err != nil {
			t.Fatal(err)
		}
		// Pace the sender just enough that the ingress socket buffer
		// never overflows; departures still chase arrivals closely.
		time.Sleep(50 * time.Microsecond)
	}
	waitStats(t, fwd, 10*time.Second, func(s Stats) bool {
		return s.Received >= total && s.Queued == 0
	}, "traffic to drain")
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d departures observed before their arrivals", v)
	}
}

// Regression: a failed egress write must be accounted (per-class drop +
// Stats.Dropped), not silently lost after telemetry counted the datagram.
// A persistent injected fault exercises the retry-then-drop path
// deterministically.
func TestForwarderWriteFailureAccounting(t *testing.T) {
	reg := telemetry.NewWithSDP([]float64{1, 4})
	var attempts atomic.Uint64
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   "127.0.0.1:9",
		SDP:       []float64{1, 4},
		RateBps:   8e6,
		Telemetry: reg,
		Fault: FaultFunc(func(p []byte, attempt int, send func([]byte) (int, error)) (int, error) {
			attempts.Add(1)
			return 0, errInjected
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)

	const total = 20
	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(uint8(i%2), uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(t, fwd, 10*time.Second, func(s Stats) bool {
		return s.Received == total && s.Forwarded+s.Dropped+s.BadHeader+s.BadClass == total && s.Queued == 0
	}, "write failures to be accounted")
	if st.Forwarded != 0 || st.Dropped != total {
		t.Fatalf("stats %+v: want all %d datagrams dropped on write failure", st, total)
	}
	// Each datagram got its bounded retries: 1 + writeRetries attempts.
	if got, want := attempts.Load(), uint64(total*(1+writeRetries)); got != want {
		t.Fatalf("write attempts = %d, want %d (bounded backoff)", got, want)
	}
	snap := reg.Snapshot()
	var drops, departures uint64
	for _, c := range snap.Classes {
		drops += c.Drops
		departures += c.Departures
	}
	if drops != total || departures != 0 {
		t.Fatalf("telemetry drops=%d departures=%d, want %d/0", drops, departures, total)
	}
	checkConservation(t, st, reg)
}

// errInjected is the deterministic egress fault used by write-path tests.
var errInjected = errors.New("injected egress failure")

// Transient write errors recover within the bounded retry budget: the
// datagram is forwarded, not dropped, and nothing is double-counted.
func TestForwarderWriteRetryRecovers(t *testing.T) {
	recv := sink(t)
	reg := telemetry.NewWithSDP([]float64{1, 4})
	// failures is touched only by the single transmit goroutine.
	failures := make(map[uint64]int)
	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		SDP:       []float64{1, 4},
		RateBps:   8e6,
		Telemetry: reg,
		Fault: FaultFunc(func(p []byte, attempt int, send func([]byte) (int, error)) (int, error) {
			// Fail the first two attempts of every datagram, then
			// deliver it for real.
			h, _, err := Decode(p)
			if err != nil {
				t.Errorf("egress datagram failed to decode: %v", err)
				return 0, err
			}
			if failures[h.Seq] < 2 {
				failures[h.Seq]++
				return 0, errInjected
			}
			return send(p)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)

	const total = 10
	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(0, uint64(i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitStats(t, fwd, 10*time.Second, func(s Stats) bool {
		return s.Received == total && s.Queued == 0 && s.Forwarded+s.Dropped == total
	}, "retried writes to complete")
	if st.Forwarded != total || st.Dropped != 0 {
		t.Fatalf("stats %+v: want every datagram forwarded after transient failures", st)
	}
	checkConservation(t, st, reg)
}

// Conservation under churn: mixed-class traffic from concurrent senders
// (including garbage datagrams), forwarder closed mid-flight. Afterwards
// every received datagram must be accounted exactly once and the
// telemetry backlog must be zero. Run with -race.
func TestForwarderConservationMidFlightClose(t *testing.T) {
	for _, tc := range []struct {
		name  string
		drain time.Duration
	}{
		{"drop-on-close", 0},
		{"drain-on-close", 2 * time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recv := sink(t)
			reg := telemetry.NewWithSDP([]float64{1, 2, 4, 8})
			fwd, err := Listen(Config{
				Listen:       "127.0.0.1:0",
				Forward:      recv.LocalAddr().String(),
				SDP:          []float64{1, 2, 4, 8},
				RateBps:      2e6,
				MaxPackets:   64,
				DrainTimeout: tc.drain,
				Telemetry:    reg,
			})
			if err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			for w := 0; w < 3; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					send, err := net.DialUDP("udp", nil, fwd.LocalAddr().(*net.UDPAddr))
					if err != nil {
						return
					}
					defer send.Close()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if i%37 == 36 {
							send.Write([]byte{9, 9, 9}) // bad header
						} else {
							// Errors are expected once the ingress closes.
							send.Write(datagram(uint8((i+w)%4), uint64(i), 80))
						}
						if i%16 == 15 {
							time.Sleep(time.Millisecond)
						}
					}
				}(w)
			}

			time.Sleep(150 * time.Millisecond)
			start := time.Now()
			if err := fwd.Close(); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
			closeTook := time.Since(start)

			st := fwd.Stats()
			if st.Queued != 0 {
				t.Fatalf("queue not empty after Close: %+v", st)
			}
			if st.Received != st.Forwarded+st.Dropped+st.BadHeader+st.BadClass {
				t.Fatalf("unaccounted datagrams after Close: %+v", st)
			}
			checkConservation(t, st, reg)
			if tc.drain == 0 && closeTook > time.Second {
				t.Errorf("drop-on-close took %v, want prompt shutdown", closeTook)
			}
			if tc.drain > 0 && st.Forwarded == 0 {
				t.Errorf("drain-on-close forwarded nothing: %+v", st)
			}
		})
	}
}

// Drain semantics: with a generous DrainTimeout every admitted datagram is
// flushed (still paced) before Close returns; with a short one the drain
// stops at the deadline and the remainder is drop-accounted.
func TestForwarderDrainOnClose(t *testing.T) {
	t.Run("full-drain", func(t *testing.T) {
		recv := sink(t)
		fwd, err := Listen(Config{
			Listen:       "127.0.0.1:0",
			Forward:      recv.LocalAddr().String(),
			RateBps:      1 << 19, // 64 KiB/s
			DrainTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		send := dialIngress(t, fwd)
		const total = 50
		for i := 0; i < total; i++ {
			if _, err := send.Write(datagram(0, uint64(i), 110)); err != nil {
				t.Fatal(err)
			}
		}
		waitStats(t, fwd, 5*time.Second, func(s Stats) bool { return s.Received == total }, "ingress")
		if err := fwd.Close(); err != nil {
			t.Fatal(err)
		}
		st := fwd.Stats()
		if st.Forwarded != total || st.Dropped != 0 || st.Queued != 0 {
			t.Fatalf("drain incomplete: %+v", st)
		}
	})
	t.Run("deadline-cutoff", func(t *testing.T) {
		recv := sink(t)
		fwd, err := Listen(Config{
			Listen:       "127.0.0.1:0",
			Forward:      recv.LocalAddr().String(),
			RateBps:      8 * 1024, // 1 KiB/s: ~125 ms per datagram
			DrainTimeout: 300 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		send := dialIngress(t, fwd)
		const total = 10
		for i := 0; i < total; i++ {
			if _, err := send.Write(datagram(0, uint64(i), 110)); err != nil {
				t.Fatal(err)
			}
		}
		waitStats(t, fwd, 5*time.Second, func(s Stats) bool { return s.Received == total }, "ingress")
		start := time.Now()
		if err := fwd.Close(); err != nil {
			t.Fatal(err)
		}
		if took := time.Since(start); took > 2*time.Second {
			t.Fatalf("Close took %v, want the 300ms drain deadline to cut off", took)
		}
		st := fwd.Stats()
		if st.Forwarded+st.Dropped != total || st.Queued != 0 {
			t.Fatalf("unaccounted after deadline cutoff: %+v", st)
		}
		if st.Dropped == 0 {
			t.Fatalf("deadline cutoff dropped nothing: %+v", st)
		}
	})
}

// Pacing accuracy: the absolute-clock pacer must hold the configured rate
// across a saturated busy period — write, dequeue and telemetry time must
// not erode it. Measured at the receiver between the first and last
// datagram of a back-to-back backlog.
func TestForwarderPacingAccuracy(t *testing.T) {
	recv := sink(t)
	const (
		rateBps = 2e6 // 250 KB/s
		payload = 500 // + 18-byte header = 518 B datagrams
		total   = 150
	)
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		RateBps:    rateBps,
		MaxPackets: 2 * total,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send := dialIngress(t, fwd)

	for i := 0; i < total; i++ {
		if _, err := send.Write(datagram(0, uint64(i), payload)); err != nil {
			t.Fatal(err)
		}
	}

	recv.SetReadDeadline(time.Now().Add(30 * time.Second))
	buf := make([]byte, 2048)
	var first, last time.Time
	var wireBytes int
	for got := 0; got < total; got++ {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("receive after %d datagrams: %v", got, err)
		}
		now := time.Now()
		if got == 0 {
			first = now
		} else {
			wireBytes += n // exclude the first: rate over (total-1) gaps
		}
		last = now
	}

	elapsed := last.Sub(first).Seconds()
	achieved := float64(wireBytes) * 8 / elapsed
	if dev := achieved/rateBps - 1; dev < -0.02 || dev > 0.02 {
		t.Fatalf("achieved egress rate %.0f bps, want %.0f ±2%% (deviation %+.2f%%)",
			achieved, float64(rateBps), dev*100)
	}
	if st := fwd.Stats(); st.Forwarded != total || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}
