package netio

import (
	"runtime"
	"sync"
	"testing"

	"pdds/internal/core"
)

func TestRingFIFOAndBounds(t *testing.T) {
	r := newSPSCRing(5) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	if p := r.Pop(); p != nil {
		t.Fatalf("pop on empty ring returned %v", p)
	}
	pkts := make([]*core.Packet, 8)
	for i := range pkts {
		pkts[i] = &core.Packet{ID: uint64(i)}
		if !r.Push(pkts[i]) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if r.Push(&core.Packet{}) {
		t.Fatal("push beyond capacity accepted")
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	for i := range pkts {
		p := r.Pop()
		if p == nil || p.ID != uint64(i) {
			t.Fatalf("pop %d = %v, want ID %d (FIFO)", i, p, i)
		}
	}
	if p := r.Pop(); p != nil {
		t.Fatalf("pop after drain returned %v", p)
	}
}

// Wrap-around reuse: interleaved push/pop cycles the indices far past the
// capacity without losing order.
func TestRingWrapAround(t *testing.T) {
	r := newSPSCRing(4)
	next := uint64(0)
	want := uint64(0)
	for round := 0; round < 1000; round++ {
		for i := 0; i < 3; i++ {
			if !r.Push(&core.Packet{ID: next}) {
				t.Fatalf("round %d: push rejected with %d queued", round, r.Len())
			}
			next++
		}
		for i := 0; i < 3; i++ {
			p := r.Pop()
			if p == nil || p.ID != want {
				t.Fatalf("round %d: pop = %v, want ID %d", round, p, want)
			}
			want++
		}
	}
}

// One producer, one consumer, full throughput: every packet arrives
// exactly once, in order, under the race detector.
func TestRingSPSCConcurrent(t *testing.T) {
	const total = 50000
	r := newSPSCRing(256)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < total; {
			if r.Push(&core.Packet{ID: i}) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer drain
			}
		}
	}()
	for want := uint64(0); want < total; {
		p := r.Pop()
		if p == nil {
			runtime.Gosched() // empty: let the producer refill
			continue
		}
		if p.ID != want {
			t.Fatalf("received ID %d, want %d (order violated)", p.ID, want)
		}
		want++
	}
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("ring not empty after drain: %d", r.Len())
	}
}

func BenchmarkRingTransfer(b *testing.B) {
	r := newSPSCRing(1024)
	p := &core.Packet{ID: 1, Size: 500}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(p)
		r.Pop()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "packets/sec")
}
