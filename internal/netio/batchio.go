package netio

import (
	"net"
	"net/netip"
	"syscall"
)

// maxDatagram is the largest UDP datagram the forwarder accepts (the
// 64 KiB UDP maximum; matches the pre-batching scratch buffer).
const maxDatagram = 64 * 1024

// defaultIOBatch is how many datagrams one recvmmsg/sendmmsg syscall moves
// at most. Receive scratch is batch × 64 KiB per shard, so the batch is
// kept modest; 16 already amortizes the syscall to ~1/16 per datagram.
const defaultIOBatch = 16

// recvSlot is one received datagram, viewed inside a batchConn's reusable
// scratch: buf aliases the slot's fixed 64 KiB buffer (len = datagram
// size) and is valid only until the next ReadBatch call.
type recvSlot struct {
	buf  []byte
	from netip.AddrPort
}

// batchConn reads and writes UDP datagrams in batches. On Linux/amd64 it
// uses recvmmsg/sendmmsg via raw syscalls (the numbers are stable kernel
// ABI), probing at runtime and falling back permanently to the portable
// single-datagram path if the kernel or sandbox rejects them (ENOSYS /
// EPERM / EOPNOTSUPP — seccomp filters commonly return these). Everywhere
// else the portable path is the only implementation.
//
// Concurrency: one goroutine may call ReadBatch and one may call
// WriteBatch; the two sides keep separate scratch. The forwarder gives
// each ingress shard its own batchConn (its own socket under
// SO_REUSEPORT), and the single transmit goroutine its own.
type batchConn struct {
	conn *net.UDPConn
	rc   syscall.RawConn
	sys  *mmsgState  // nil when the mmsg fast path is unavailable
	one  [1]recvSlot // scratch for the portable single-datagram path
}

// newBatchConn wraps conn for batched I/O with the given maximum batch
// size (0 = defaultIOBatch).
func newBatchConn(conn *net.UDPConn, batch int) (*batchConn, error) {
	if batch <= 0 {
		batch = defaultIOBatch
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &batchConn{conn: conn, rc: rc}
	b.sys = newMmsgState(batch)
	return b, nil
}

// Batched reports whether the multi-datagram syscall path is (still)
// active; it flips to false permanently after a failed runtime probe.
func (b *batchConn) Batched() bool { return b.sys != nil }

// Mode names the active I/O path for logs and stats.
func (b *batchConn) Mode() string {
	if b.Batched() {
		return "mmsg"
	}
	return "datagram"
}

// ReadBatch blocks until at least one datagram is available and returns a
// view of the internal slots, valid until the next ReadBatch call. The
// caller must copy any payload bytes it keeps.
func (b *batchConn) ReadBatch() ([]recvSlot, error) {
	if b.sys != nil {
		slots, err, ok := b.readMmsg()
		if ok {
			return slots, err
		}
		// Probe failed: fall back below, permanently.
		b.sys = nil
	}
	return b.readOne()
}

// WriteBatch sends payloads on the connected socket, returning how many
// were fully sent. A short count with a nil error means the socket
// accepted only a prefix (the caller retries the rest); an error reports
// the failure hit after n successes.
func (b *batchConn) WriteBatch(payloads [][]byte) (int, error) {
	if len(payloads) == 0 {
		return 0, nil
	}
	if b.sys != nil {
		n, err, ok := b.writeMmsg(payloads)
		if ok {
			return n, err
		}
		b.sys = nil
	}
	return b.writeLoop(payloads)
}

// oneSlot returns the portable path's one-slot scratch, allocating its
// buffer on first use (never reached while the mmsg path is active).
func (b *batchConn) oneSlot() []recvSlot {
	if b.one[0].buf == nil {
		b.one[0].buf = make([]byte, maxDatagram)
	}
	return b.one[:]
}

// readOne is the portable single-datagram receive path.
func (b *batchConn) readOne() ([]recvSlot, error) {
	s := b.oneSlot()
	n, from, err := b.conn.ReadFromUDPAddrPort(s[0].buf[:maxDatagram])
	if err != nil {
		return nil, err
	}
	s[0].buf = s[0].buf[:n]
	s[0].from = from
	return s[:1], nil
}

// writeLoop is the portable single-datagram send path.
func (b *batchConn) writeLoop(payloads [][]byte) (int, error) {
	for i, p := range payloads {
		if _, err := b.conn.Write(p); err != nil {
			return i, err
		}
	}
	return len(payloads), nil
}

// probeFailure classifies errno values that mean "this kernel or sandbox
// will never run the batched syscall" as opposed to transient I/O errors.
func probeFailure(errno syscall.Errno) bool {
	switch errno {
	case syscall.ENOSYS, syscall.EPERM, syscall.EOPNOTSUPP, syscall.EINVAL:
		return true
	}
	return false
}
