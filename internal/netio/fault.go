package netio

// FaultInjector intercepts every egress write attempt the forwarder makes,
// generalizing what used to be an unexported test-only write hook into a
// small public fault-injection surface (see internal/chaos.FaultPlan for
// the standard deterministic implementation).
//
// The forwarder calls Write from its single transmit goroutine, once per
// attempt of the bounded retry loop: attempt 0 is the first try for a
// datagram, attempts 1..writeRetries are retries after transient errors.
// The injector decides what actually reaches the wire:
//
//   - pass through: return send(payload);
//   - simulate a transient or persistent write failure: return a non-nil
//     error without calling send (the forwarder retries with backoff and
//     drop-accounts the datagram when the budget is exhausted);
//   - corrupt or truncate: send a mutated copy;
//   - duplicate: call send more than once;
//   - reorder or stall: hold a copy back and emit it on a later call, or
//     sleep before sending (stall time is paid out of pacer credit, so
//     stalls show up as rate degradation exactly like a slow receiver).
//
// Payload aliasing: the payload slice is only valid for the duration of
// the call — the forwarder recycles datagram buffers — so an injector that
// retains bytes (reordering, duplication across calls) must copy them.
type FaultInjector interface {
	Write(payload []byte, attempt int, send func([]byte) (int, error)) (int, error)
}

// FaultFunc adapts a plain function to the FaultInjector interface.
type FaultFunc func(payload []byte, attempt int, send func([]byte) (int, error)) (int, error)

// Write implements FaultInjector.
func (f FaultFunc) Write(payload []byte, attempt int, send func([]byte) (int, error)) (int, error) {
	return f(payload, attempt, send)
}
