// Package netio puts the proportional-differentiation schedulers in front
// of a real network socket: a userspace DiffServ-style forwarder receives
// UDP datagrams, classifies them by a 1-byte class field (the role the DS
// field's Class Selector code points play in the paper's setting), queues
// them in a WTP/BPR scheduler, and transmits on a rate-limited egress.
// It is the live-socket counterpart of the simulated per-hop behaviour.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Header is the fixed-size datagram header used by the forwarder and its
// measurement tools. The wire layout is:
//
//	byte  0    : version (currently 1)
//	byte  1    : class (0-based)
//	bytes 2-9  : sequence number, big endian
//	bytes 10-17: sender timestamp, nanoseconds since Unix epoch, big endian
//
// Payload bytes follow the header verbatim.
type Header struct {
	Class uint8
	Seq   uint64
	// SentAt is the sender's wall-clock timestamp; receivers subtract
	// it from their own clock to measure one-way delay (same-host
	// loopback measurements share the clock, so no synchronization is
	// needed in the tests and examples).
	SentAt time.Time
}

// Version is the current wire version.
const Version = 1

// HeaderLen is the encoded header size in bytes.
const HeaderLen = 18

// Errors returned by Decode.
var (
	ErrTooShort   = errors.New("netio: datagram shorter than header")
	ErrBadVersion = errors.New("netio: unsupported header version")
)

// Encode appends the encoded header to dst and returns the result.
func (h Header) Encode(dst []byte) []byte {
	var buf [HeaderLen]byte
	buf[0] = Version
	buf[1] = h.Class
	binary.BigEndian.PutUint64(buf[2:10], h.Seq)
	binary.BigEndian.PutUint64(buf[10:18], uint64(h.SentAt.UnixNano()))
	return append(dst, buf[:]...)
}

// Decode parses a header from the front of a datagram and returns it with
// the remaining payload.
func Decode(datagram []byte) (Header, []byte, error) {
	if len(datagram) < HeaderLen {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrTooShort, len(datagram))
	}
	if datagram[0] != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, datagram[0])
	}
	h := Header{
		Class:  datagram[1],
		Seq:    binary.BigEndian.Uint64(datagram[2:10]),
		SentAt: time.Unix(0, int64(binary.BigEndian.Uint64(datagram[10:18]))),
	}
	return h, datagram[HeaderLen:], nil
}
