package netio

import (
	"net"
	"testing"
	"testing/quick"
	"time"

	"pdds/internal/core"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Class: 3, Seq: 123456789, SentAt: time.Unix(0, 1720000000123456789)}
	wire := h.Encode(nil)
	if len(wire) != HeaderLen {
		t.Fatalf("encoded length %d, want %d", len(wire), HeaderLen)
	}
	wire = append(wire, []byte("payload!")...)
	got, payload, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != h.Class || got.Seq != h.Seq || !got.SentAt.Equal(h.SentAt) {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
	if string(payload) != "payload!" {
		t.Fatalf("payload = %q", payload)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(make([]byte, HeaderLen-1)); err == nil {
		t.Fatal("short datagram accepted")
	}
	bad := Header{Class: 1}.Encode(nil)
	bad[0] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

// Property: Encode/Decode round-trips arbitrary header values.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(class uint8, seq uint64, nanos int64) bool {
		h := Header{Class: class, Seq: seq, SentAt: time.Unix(0, nanos)}
		got, payload, err := Decode(h.Encode(nil))
		return err == nil && len(payload) == 0 &&
			got.Class == class && got.Seq == seq &&
			got.SentAt.UnixNano() == nanos
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := Listen(Config{Listen: "127.0.0.1:0", Forward: "127.0.0.1:9", RateBps: 0}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Listen(Config{Listen: "127.0.0.1:0", Forward: "not-an-addr", RateBps: 1e6}); err == nil {
		t.Fatal("bad forward addr accepted")
	}
	if _, err := Listen(Config{Listen: "not-an-addr", Forward: "127.0.0.1:9", RateBps: 1e6}); err == nil {
		t.Fatal("bad listen addr accepted")
	}
}

// End-to-end over loopback: saturate a slow WTP forwarder with two
// classes and verify the higher class sees materially lower one-way delay.
func TestForwarderDifferentiatesOverLoopback(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	fwd, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 19, // 512 kbps: 64 KiB/s egress
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	send, err := net.Dial("udp", fwd.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Blast an interleaved burst far faster than the egress drains.
	const perClass = 60
	payload := make([]byte, 110) // + header = 128 B datagrams
	for i := 0; i < perClass; i++ {
		for class := uint8(0); class < 2; class++ {
			dg := Header{Class: class, Seq: uint64(i), SentAt: time.Now()}.Encode(nil)
			dg = append(dg, payload...)
			if _, err := send.Write(dg); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Collect at the receiver.
	recv.SetReadDeadline(time.Now().Add(10 * time.Second))
	var sum [2]float64
	var count [2]int
	buf := make([]byte, 2048)
	for count[0]+count[1] < 2*perClass {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("receive (got %d+%d so far): %v", count[0], count[1], err)
		}
		h, _, err := Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		sum[h.Class] += time.Since(h.SentAt).Seconds()
		count[h.Class]++
	}
	mean0 := sum[0] / float64(count[0])
	mean1 := sum[1] / float64(count[1])
	if !(mean1 < mean0*0.75) {
		t.Fatalf("class delays: low=%.3fs high=%.3fs — no differentiation", mean0, mean1)
	}
	st := fwd.Stats()
	if st.Received < 2*perClass || st.Forwarded < 2*perClass {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwarderDropsOnOverflowAndBadHeaders(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	fwd, err := Listen(Config{
		Listen:     "127.0.0.1:0",
		Forward:    recv.LocalAddr().String(),
		RateBps:    8 * 1024, // 1 KiB/s: essentially frozen egress
		MaxPackets: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	send, err := net.Dial("udp", fwd.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Garbage datagram counts as bad header.
	if _, err := send.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Class out of range is structurally valid but unresolvable with no
	// classifier: counted separately as BadClass.
	dg := Header{Class: 77}.Encode(nil)
	if _, err := send.Write(append(dg, 0)); err != nil {
		t.Fatal(err)
	}
	// So is the explicit "classify me" sentinel.
	dg = Header{Class: ClassUnspecified}.Encode(nil)
	if _, err := send.Write(append(dg, 0)); err != nil {
		t.Fatal(err)
	}
	// Flood to force drops.
	for i := 0; i < 64; i++ {
		dg := Header{Class: 0, Seq: uint64(i), SentAt: time.Now()}.Encode(nil)
		dg = append(dg, make([]byte, 100)...)
		if _, err := send.Write(dg); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st := fwd.Stats()
		if st.BadHeader >= 1 && st.BadClass >= 2 && st.Dropped > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("stats never showed drops/bad headers/bad classes: %+v", fwd.Stats())
}

func TestForwarderCloseIdempotent(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	fwd, err := Listen(Config{
		Listen:  "127.0.0.1:0",
		Forward: recv.LocalAddr().String(),
		RateBps: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
}

// Two forwarders chained over loopback: the multi-hop per-hop behaviour of
// Study B on real sockets. Differentiation must survive the chain.
func TestForwarderChainTwoHops(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	hop2, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   recv.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hop2.Close()

	hop1, err := Listen(Config{
		Listen:    "127.0.0.1:0",
		Forward:   hop2.LocalAddr().String(),
		Scheduler: core.KindWTP,
		SDP:       []float64{1, 4},
		RateBps:   1 << 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hop1.Close()

	send, err := net.Dial("udp", hop1.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const perClass = 40
	payload := make([]byte, 110)
	for i := 0; i < perClass; i++ {
		for class := uint8(0); class < 2; class++ {
			dg := Header{Class: class, Seq: uint64(i), SentAt: time.Now()}.Encode(nil)
			dg = append(dg, payload...)
			if _, err := send.Write(dg); err != nil {
				t.Fatal(err)
			}
		}
	}

	recv.SetReadDeadline(time.Now().Add(15 * time.Second))
	var sum [2]float64
	var count [2]int
	buf := make([]byte, 2048)
	for count[0]+count[1] < 2*perClass {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("receive after %d datagrams: %v", count[0]+count[1], err)
		}
		h, _, err := Decode(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		sum[h.Class] += time.Since(h.SentAt).Seconds()
		count[h.Class]++
	}
	mean0 := sum[0] / float64(count[0])
	mean1 := sum[1] / float64(count[1])
	if !(mean1 < mean0*0.8) {
		t.Fatalf("two-hop delays: low=%.3fs high=%.3fs — differentiation lost across hops", mean0, mean1)
	}
	if st := hop1.Stats(); st.Forwarded < 2*perClass {
		t.Fatalf("hop1 stats %+v", st)
	}
	if st := hop2.Stats(); st.Forwarded < 2*perClass {
		t.Fatalf("hop2 stats %+v", st)
	}
}
