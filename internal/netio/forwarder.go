package netio

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// Config describes a Forwarder.
type Config struct {
	// Listen is the UDP address to receive on (e.g. "127.0.0.1:0").
	Listen string
	// Forward is the UDP address transmitted datagrams are sent to.
	Forward string
	// Scheduler and SDP configure the queueing discipline
	// (default WTP with SDPs 1,2,4,8).
	Scheduler core.Kind
	SDP       []float64
	// RateBps is the egress rate in bits per second; it is what makes
	// queueing (and hence differentiation) happen at all.
	RateBps float64
	// MaxPackets bounds the aggregate queue; arriving datagrams beyond
	// it are dropped (0 = 4096).
	MaxPackets int
	// Telemetry, if set, receives per-class counters and queueing-delay
	// histograms for every datagram (delays in seconds). Leave nil to
	// run uninstrumented; MetricsAddr implies a registry.
	Telemetry *telemetry.Registry
	// MetricsAddr, if non-empty, serves the telemetry registry over
	// HTTP on this address ("127.0.0.1:0" picks a free port): /metrics
	// JSON, /metrics?format=text, and /debug/pprof/. A registry is
	// created automatically when Telemetry is nil.
	MetricsAddr string
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = core.KindWTP
	}
	if len(c.SDP) == 0 {
		c.SDP = []float64{1, 2, 4, 8}
	}
	if c.MaxPackets == 0 {
		c.MaxPackets = 4096
	}
	return c
}

// Stats are cumulative forwarder counters.
type Stats struct {
	Received  uint64
	Forwarded uint64
	Dropped   uint64
	// BadHeader counts datagrams that failed to decode.
	BadHeader uint64
}

// Forwarder is a single-hop class-based forwarding element over UDP.
type Forwarder struct {
	cfg     Config
	in      *net.UDPConn
	dst     *net.UDPAddr
	rate    float64 // bytes per second
	epoch   time.Time
	telem   *telemetry.Registry
	metrics *telemetry.Server

	mu     sync.Mutex
	cond   *sync.Cond
	sched  core.Scheduler
	queued int
	closed bool
	stats  Stats

	wg sync.WaitGroup
}

// Listen binds the forwarder's ingress socket and starts its receive and
// transmit loops. Stop with Close.
func Listen(cfg Config) (*Forwarder, error) {
	cfg = cfg.withDefaults()
	if !(cfg.RateBps > 0) {
		return nil, fmt.Errorf("netio: RateBps %g must be > 0", cfg.RateBps)
	}
	dst, err := net.ResolveUDPAddr("udp", cfg.Forward)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve forward addr: %w", err)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve listen addr: %w", err)
	}
	in, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	rate := cfg.RateBps / 8
	sched, err := core.New(cfg.Scheduler, cfg.SDP, rate)
	if err != nil {
		in.Close()
		return nil, err
	}
	f := &Forwarder{
		cfg:   cfg,
		in:    in,
		dst:   dst,
		rate:  rate,
		epoch: time.Now(),
		sched: sched,
		telem: cfg.Telemetry,
	}
	if f.telem == nil && cfg.MetricsAddr != "" {
		f.telem = telemetry.NewWithSDP(cfg.SDP)
	}
	if cfg.MetricsAddr != "" {
		srv, err := telemetry.Serve(cfg.MetricsAddr, f.telem)
		if err != nil {
			in.Close()
			return nil, err
		}
		f.metrics = srv
	}
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(2)
	go f.receiveLoop()
	go f.transmitLoop()
	return f, nil
}

// LocalAddr returns the bound ingress address.
func (f *Forwarder) LocalAddr() net.Addr { return f.in.LocalAddr() }

// Telemetry returns the attached registry (nil when uninstrumented).
func (f *Forwarder) Telemetry() *telemetry.Registry { return f.telem }

// MetricsAddr returns the bound metrics HTTP address, or nil when
// Config.MetricsAddr was empty.
func (f *Forwarder) MetricsAddr() net.Addr {
	if f.metrics == nil {
		return nil
	}
	return f.metrics.Addr()
}

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close shuts the forwarder down and waits for its loops to exit.
// Queued datagrams are discarded.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	err := f.in.Close()
	f.wg.Wait()
	if f.metrics != nil {
		f.metrics.Close()
	}
	return err
}

// now returns seconds since the forwarder started; it is the time base for
// waiting-time priorities.
func (f *Forwarder) now() float64 { return time.Since(f.epoch).Seconds() }

func (f *Forwarder) receiveLoop() {
	defer f.wg.Done()
	buf := make([]byte, 64*1024)
	var seq uint64
	for {
		n, _, err := f.in.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or a fatal error): stop receiving
			// and wake the transmitter so it can observe closed.
			f.mu.Lock()
			f.closed = true
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])

		f.mu.Lock()
		f.stats.Received++
		hdr, _, derr := Decode(datagram)
		if derr != nil || int(hdr.Class) >= f.sched.NumClasses() {
			f.stats.BadHeader++
			f.mu.Unlock()
			continue
		}
		if f.queued >= f.cfg.MaxPackets {
			f.stats.Dropped++
			f.mu.Unlock()
			if f.telem != nil {
				f.telem.Drop(int(hdr.Class), f.now())
			}
			continue
		}
		seq++
		now := f.now()
		f.sched.Enqueue(&core.Packet{
			ID:      seq,
			Class:   int(hdr.Class),
			Size:    int64(n),
			Arrival: now,
			Payload: datagram,
		}, now)
		f.queued++
		f.cond.Signal()
		f.mu.Unlock()
		if f.telem != nil {
			f.telem.Arrival(int(hdr.Class), int64(n), now)
		}
	}
}

func (f *Forwarder) transmitLoop() {
	defer f.wg.Done()
	out, err := net.DialUDP("udp", nil, f.dst)
	if err != nil {
		// Nothing can be forwarded; drain nothing and exit when
		// closed.
		f.mu.Lock()
		f.closed = true
		f.mu.Unlock()
		return
	}
	defer out.Close()
	for {
		f.mu.Lock()
		for f.queued == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		depart := f.now()
		p := f.sched.Dequeue(depart)
		if p == nil { // defensive: queued said otherwise
			f.mu.Unlock()
			continue
		}
		f.queued--
		f.mu.Unlock()
		if f.telem != nil {
			// Queueing delay in seconds: scheduler pick time minus
			// socket arrival time (the paper's per-hop metric).
			f.telem.Departure(p.Class, p.Size, depart, depart-p.Arrival)
		}

		if _, err := out.Write(p.Payload); err == nil {
			f.mu.Lock()
			f.stats.Forwarded++
			f.mu.Unlock()
		}
		// Pace the egress at the configured rate: the transmission
		// time of this datagram.
		time.Sleep(time.Duration(float64(p.Size) / f.rate * float64(time.Second)))
	}
}

// ErrClosed is returned by operations on a closed forwarder.
var ErrClosed = errors.New("netio: forwarder closed")
