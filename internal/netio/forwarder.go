package netio

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pdds/internal/control"
	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// Config describes a Forwarder.
type Config struct {
	// Listen is the UDP address to receive on (e.g. "127.0.0.1:0").
	Listen string
	// Forward is the UDP address transmitted datagrams are sent to.
	Forward string
	// Scheduler and SDP configure the queueing discipline
	// (default WTP with SDPs 1,2,4,8).
	Scheduler core.Kind
	SDP       []float64
	// RateBps is the egress rate in bits per second; it is what makes
	// queueing (and hence differentiation) happen at all.
	RateBps float64
	// MaxPackets bounds the aggregate queue; arriving datagrams beyond
	// it are dropped (0 = 4096).
	MaxPackets int
	// Shards is the number of parallel ingress shards (0 or 1 = the
	// classic single-path forwarder, byte-identical to its pre-sharding
	// behaviour). Each shard owns an ingress socket — bound with
	// SO_REUSEPORT so the kernel's 4-tuple flow hash pins every flow to
	// one shard — plus a private scheduler instance and a lock-free SPSC
	// ring into the single transmit goroutine, which always serves the
	// globally most urgent head across shards (deadline merge; exact for
	// WTP and FCFS, see core.HeadPeeker). When SO_REUSEPORT is
	// unavailable the shards share one socket and flow→shard stability is
	// lost (ShardStats reports SharedSocket). At most 64.
	Shards int
	// ClassMaxPackets, when non-nil, bounds each class's queue
	// individually (len must equal the scheduler's class count; 0 means
	// only the aggregate bound applies to that class). Arrivals beyond a
	// class's bound are dropped with full accounting, so one class's
	// burst cannot occupy the whole aggregate queue.
	ClassMaxPackets []int
	// Classifier, when non-nil, resolves flow identity to a class for
	// datagrams that carry ClassUnspecified or an out-of-range class
	// byte — and for every datagram when DistrustHeader is set. The
	// resolved class is re-marked into the forwarded datagram's class
	// byte so downstream hops and sinks see the edge's decision. When
	// nil, the ingress path is byte-for-byte today's behaviour: the
	// header class is trusted and out-of-range bytes count as BadClass.
	Classifier Classifier
	// DistrustHeader, with a Classifier set, classifies every datagram
	// from its flow identity instead of trusting in-range header class
	// bytes (the header byte still participates as the DS byte that
	// `dscp` filters see).
	DistrustHeader bool
	// DrainTimeout bounds the graceful drain Close performs: queued
	// datagrams keep transmitting — still paced at RateBps — for up to
	// this long before the remainder is dropped. Zero drops the backlog
	// immediately on Close. Either way every queued datagram ends up in
	// Forwarded or Dropped, so the conservation invariant
	// Received = Forwarded + Dropped + BadHeader + BadClass holds after
	// shutdown.
	DrainTimeout time.Duration
	// DisablePooling turns off ingress buffer and packet reuse, forcing
	// a fresh allocation per datagram (debugging aid; pooling is the
	// default).
	DisablePooling bool
	// Telemetry, if set, receives per-class counters and queueing-delay
	// histograms for every datagram (delays in seconds). Leave nil to
	// run uninstrumented; MetricsAddr implies a registry.
	Telemetry *telemetry.Registry
	// MetricsAddr, if non-empty, serves the telemetry registry over
	// HTTP on this address ("127.0.0.1:0" picks a free port): /metrics
	// JSON, /metrics?format=text, and /debug/pprof/. A registry is
	// created automatically when Telemetry is nil.
	MetricsAddr string

	// Control, when non-nil, runs the closed-loop DDP controller: a
	// background goroutine snapshots the telemetry registry every
	// ControlInterval, feeds the controller (Control.SDP and Control.Kind
	// default from SDP and Scheduler), and stages each decision through
	// Retune — so every per-shard scheduler is retuned atomically between
	// egress batches. Requires a retunable Scheduler kind; a telemetry
	// registry is created automatically when none is configured. When the
	// measured ratios stay inside the controller's deadband no retune is
	// ever staged and the data path is untouched.
	Control *control.Config
	// ControlInterval is the controller's observation period
	// (default 1s).
	ControlInterval time.Duration

	// Fault, when non-nil, intercepts every egress write attempt for
	// fault injection — packet corruption, truncation, duplication,
	// reordering, receiver stalls, and transient or persistent write
	// errors (see FaultInjector). Faults compose with the normal retry
	// and drop accounting, so the conservation invariant holds under any
	// injected behaviour. A fault injector disables egress write
	// batching (its contract is one write attempt per datagram from the
	// single transmit goroutine). Leave nil in production.
	Fault FaultInjector
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = core.KindWTP
	}
	if len(c.SDP) == 0 {
		c.SDP = []float64{1, 2, 4, 8}
	}
	if c.MaxPackets == 0 {
		c.MaxPackets = 4096
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.ControlInterval == 0 {
		c.ControlInterval = time.Second
	}
	return c
}

const (
	// maxSleepChunk bounds any single pacer sleep so Close stays
	// responsive even at very low egress rates (one datagram's
	// transmission time can be seconds).
	maxSleepChunk = 50 * time.Millisecond
	// writeRetries and writeBackoffBase govern transient egress write
	// errors (e.g. ECONNREFUSED from a restarting receiver, ENOBUFS):
	// each datagram is retried with doubling backoff before it is
	// dropped and accounted.
	writeRetries     = 3
	writeBackoffBase = 500 * time.Microsecond
)

// Stats are cumulative forwarder counters. Every received datagram is
// accounted exactly once: Received = Forwarded + Dropped + BadHeader +
// BadClass + Queued at every quiescent snapshot, with Queued reaching 0
// after Close. A datagram counts as Queued from admission until its
// terminal event (forwarded, dropped, or discarded at close), wherever it
// sits in the pipeline — shard ring, scheduler, or the in-flight egress
// write.
type Stats struct {
	Received  uint64
	Forwarded uint64
	// Dropped counts queue-full drops (aggregate or per-class), egress
	// write failures that exhausted their retries, and datagrams
	// discarded at Close.
	Dropped uint64
	// BadHeader counts datagrams that failed to decode (short or
	// wrong-version headers).
	BadHeader uint64
	// BadClass counts structurally valid datagrams whose class could not
	// be resolved: an out-of-range or ClassUnspecified class byte with no
	// Classifier configured, or a Classifier miss (no filter matched and
	// no default class exists).
	BadClass uint64
	// Queued is the instantaneous in-pipeline backlog at snapshot time.
	Queued uint64
}

// ShardStats describes one ingress shard's activity.
type ShardStats struct {
	// Received counts datagrams this shard pulled off its socket.
	Received uint64
	// Batches counts reads that returned at least one datagram; Received
	// / Batches is the achieved amortization factor.
	Batches uint64
	// MaxBatch is the largest single receive batch.
	MaxBatch int
	// Mode is the shard's active I/O path: "mmsg" (recvmmsg/sendmmsg
	// batched syscalls) or "datagram" (portable fallback).
	Mode string
	// SharedSocket is true when SO_REUSEPORT was unavailable and every
	// shard reads the same socket: batching still applies but the kernel
	// no longer pins flows to shards.
	SharedSocket bool
}

// Forwarder is a single-hop class-based forwarding element over UDP.
//
// Data plane layout: N ingress shard goroutines (Config.Shards) each read
// batches from their own socket, classify, account admission, and publish
// packets on a lock-free SPSC ring. The single transmit goroutine owns
// every per-shard scheduler instance: it drains the rings into them, peeks
// each shard's head priority (core.HeadPeeker), and dequeues the global
// maximum — so WTP's service order is preserved across shards without any
// queue lock. Counter transactions take statMu, held for whole batches at
// ingress and whole egress batches at transmit.
//
// Telemetry ordering contract: for every datagram the registry sees the
// Arrival strictly before the matching Departure or Drop (both are
// recorded under statMu, arrival before the packet is published), so
// counter-derived backlogs (arrivals − departures − drops) never
// transiently underflow.
type Forwarder struct {
	cfg        Config
	conns      []*net.UDPConn // shard ingress sockets; conns[0] is canonical
	shared     bool           // REUSEPORT unavailable: all shards read conns[0]
	dst        *net.UDPAddr
	rate       float64 // bytes per second
	epoch      time.Time
	telem      *telemetry.Registry
	metrics    *telemetry.Server
	numClasses int

	// abort interrupts pacer sleeps and write backoffs once Close (or a
	// drain deadline) decides the remaining backlog will be dropped.
	abort atomic.Bool

	// ingressAddr/Port hold the local socket's canonical address and
	// port: the destination side of every arriving flow's 5-tuple,
	// resolved once at bind time so shards build flow keys without
	// touching the socket again.
	ingressAddr netip.Addr
	ingressPort uint16

	shards []*ingressShard

	// scheds/peekers/backlog are owned by the transmit goroutine (and by
	// Close's final sweep, which runs strictly after it exits).
	scheds  []core.Scheduler
	peekers []core.HeadPeeker
	backlog int

	wake    chan struct{} // 1-buffered ingress→transmit doorbell
	closeCh chan struct{} // closed once by Close

	// retunePending flags a staged parameter vector; the vector itself
	// (pendingParams) and the applied history live under statMu. The
	// transmit goroutine checks the flag between egress batches and
	// installs the vector into every per-shard scheduler in one step, so
	// no packet is ever scheduled under a half-updated parameter set.
	retunePending atomic.Bool

	// ctl is the optional closed-loop controller, driven solely by its
	// own goroutine (controlLoop); ctlStats mirrors its counters under
	// statMu for concurrent readers.
	ctl   *control.Controller
	ctlWG sync.WaitGroup

	// statMu guards the counter transactions (stats, queued, classQueued,
	// shardStats, idSeq, closing/drainBy) — never held across socket I/O.
	statMu      sync.Mutex
	queued      int
	classQueued []int
	closing     bool
	drainBy     time.Time // drain deadline; valid once closing is set
	stats       Stats
	shardStats  []ShardStats
	idSeq       uint64

	pendingParams []float64 // staged retune vector; valid while retunePending
	retuneApplied uint64    // vectors installed by the transmit goroutine
	retuneParams  []float64 // last installed vector
	ctlStats      control.Stats

	closeOnce sync.Once
	closeErr  error

	ingressWG sync.WaitGroup
	xmitWG    sync.WaitGroup
}

// Listen binds the forwarder's ingress socket(s) and starts its shard and
// transmit loops. Stop with Close.
func Listen(cfg Config) (*Forwarder, error) {
	cfg = cfg.withDefaults()
	if !(cfg.RateBps > 0) {
		return nil, fmt.Errorf("netio: RateBps %g must be > 0", cfg.RateBps)
	}
	if cfg.Shards < 1 || cfg.Shards > maxShards {
		return nil, fmt.Errorf("netio: Shards %d out of range [1,%d]", cfg.Shards, maxShards)
	}
	dst, err := net.ResolveUDPAddr("udp", cfg.Forward)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve forward addr: %w", err)
	}
	conns, shared, err := listenShards(cfg.Listen, cfg.Shards)
	if err != nil {
		return nil, err
	}
	closeConns := func() {
		for _, c := range conns {
			c.Close()
		}
	}
	rate := cfg.RateBps / 8
	// One scheduler instance per shard; the transmit goroutine owns all
	// of them and merges their heads by priority.
	scheds := make([]core.Scheduler, cfg.Shards)
	peekers := make([]core.HeadPeeker, cfg.Shards)
	for i := range scheds {
		s, err := core.New(cfg.Scheduler, cfg.SDP, rate)
		if err != nil {
			closeConns()
			return nil, err
		}
		scheds[i] = s
		peekers[i] = s.(core.HeadPeeker)
	}
	numClasses := scheds[0].NumClasses()
	if cfg.Classifier != nil && cfg.Classifier.NumClasses() != numClasses {
		closeConns()
		return nil, fmt.Errorf("netio: classifier declares %d classes, scheduler %d",
			cfg.Classifier.NumClasses(), numClasses)
	}
	if cfg.DistrustHeader && cfg.Classifier == nil {
		closeConns()
		return nil, fmt.Errorf("netio: DistrustHeader requires a Classifier")
	}
	if cfg.ClassMaxPackets != nil && len(cfg.ClassMaxPackets) != numClasses {
		closeConns()
		return nil, fmt.Errorf("netio: ClassMaxPackets has %d entries for %d classes",
			len(cfg.ClassMaxPackets), numClasses)
	}
	for i, b := range cfg.ClassMaxPackets {
		if b < 0 {
			closeConns()
			return nil, fmt.Errorf("netio: ClassMaxPackets[%d] = %d must be >= 0", i, b)
		}
	}
	local := conns[0].LocalAddr().(*net.UDPAddr).AddrPort()
	f := &Forwarder{
		cfg:         cfg,
		conns:       conns,
		shared:      shared,
		dst:         dst,
		rate:        rate,
		epoch:       time.Now(),
		telem:       cfg.Telemetry,
		numClasses:  numClasses,
		ingressAddr: local.Addr().Unmap(),
		ingressPort: local.Port(),
		scheds:      scheds,
		peekers:     peekers,
		wake:        make(chan struct{}, 1),
		closeCh:     make(chan struct{}),
		classQueued: make([]int, numClasses),
		shardStats:  make([]ShardStats, cfg.Shards),
	}
	if f.telem == nil && (cfg.MetricsAddr != "" || cfg.Control != nil) {
		f.telem = telemetry.NewWithSDP(cfg.SDP)
	}
	if cfg.Control != nil {
		if _, ok := scheds[0].(core.Retuner); !ok {
			closeConns()
			return nil, fmt.Errorf("netio: Control: %s is not retunable", cfg.Scheduler)
		}
		cc := *cfg.Control
		if cc.SDP == nil {
			cc.SDP = cfg.SDP
		}
		if cc.Kind == "" {
			cc.Kind = cfg.Scheduler
		}
		ctl, err := control.New(cc)
		if err != nil {
			closeConns()
			return nil, fmt.Errorf("netio: %w", err)
		}
		f.ctl = ctl
	}
	if cfg.MetricsAddr != "" {
		srv, err := telemetry.Serve(cfg.MetricsAddr, f.telem)
		if err != nil {
			closeConns()
			return nil, err
		}
		f.metrics = srv
	}
	f.shards = make([]*ingressShard, cfg.Shards)
	for i := range f.shards {
		conn := conns[0]
		if !shared {
			conn = conns[i]
		}
		bc, err := newBatchConn(conn, defaultIOBatch)
		if err != nil {
			closeConns()
			if f.metrics != nil {
				f.metrics.Close()
			}
			return nil, fmt.Errorf("netio: raw ingress socket: %w", err)
		}
		f.shards[i] = newIngressShard(f, i, bc)
		f.shardStats[i] = ShardStats{Mode: bc.Mode(), SharedSocket: shared}
	}
	f.ingressWG.Add(len(f.shards))
	for _, s := range f.shards {
		go s.run()
	}
	f.xmitWG.Add(1)
	go f.transmitLoop()
	if f.ctl != nil {
		f.ctlWG.Add(1)
		go f.controlLoop()
	}
	return f, nil
}

// LocalAddr returns the bound ingress address (shared by every shard
// socket under SO_REUSEPORT).
func (f *Forwarder) LocalAddr() net.Addr { return f.conns[0].LocalAddr() }

// Telemetry returns the attached registry (nil when uninstrumented).
func (f *Forwarder) Telemetry() *telemetry.Registry { return f.telem }

// MetricsAddr returns the bound metrics HTTP address, or nil when
// Config.MetricsAddr was empty.
func (f *Forwarder) MetricsAddr() net.Addr {
	if f.metrics == nil {
		return nil
	}
	return f.metrics.Addr()
}

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() Stats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	s := f.stats
	s.Queued = uint64(f.queued)
	return s
}

// ShardStats returns a snapshot of each ingress shard's counters.
func (f *Forwarder) ShardStats() []ShardStats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	out := make([]ShardStats, len(f.shardStats))
	copy(out, f.shardStats)
	return out
}

// Retune stages a new scheduler parameter vector for every shard. The
// vector is validated synchronously (core.CheckRetuneParams plus the
// kind's retunability); the installation itself is performed by the
// transmit goroutine between egress batches, so service order is never
// computed under a half-updated parameter set and no queued packet is
// touched. A second Retune before the first installs simply replaces the
// staged vector. Safe for concurrent use.
func (f *Forwarder) Retune(params []float64) error {
	if _, ok := f.scheds[0].(core.Retuner); !ok {
		return fmt.Errorf("netio: %w", core.ErrNotRetunable)
	}
	if err := core.CheckRetuneParams(params, f.numClasses); err != nil {
		return fmt.Errorf("netio: %w", err)
	}
	f.statMu.Lock()
	f.pendingParams = append(f.pendingParams[:0], params...)
	f.statMu.Unlock()
	f.retunePending.Store(true)
	f.signalWake()
	return nil
}

// RetuneStats reports the live retune seam's activity.
type RetuneStats struct {
	// Pending is true when a vector is staged but not yet installed.
	Pending bool
	// Applied counts vectors the transmit goroutine has installed.
	Applied uint64
	// Params is the last installed vector (nil before the first).
	Params []float64
}

// RetuneStats returns a snapshot of the retune seam's counters.
func (f *Forwarder) RetuneStats() RetuneStats {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	out := RetuneStats{
		Pending: f.retunePending.Load(),
		Applied: f.retuneApplied,
	}
	if f.retuneParams != nil {
		out.Params = append([]float64(nil), f.retuneParams...)
	}
	return out
}

// ControlStats returns the embedded controller's activity counters; ok is
// false when the forwarder runs without Config.Control.
func (f *Forwarder) ControlStats() (control.Stats, bool) {
	if f.ctl == nil {
		return control.Stats{}, false
	}
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.ctlStats, true
}

// maybeRetune installs a staged parameter vector into every per-shard
// scheduler. Transmit-side only: between the check and the installation
// no dequeue happens, so the swap is atomic with respect to service
// order.
func (f *Forwarder) maybeRetune() {
	if !f.retunePending.Load() {
		return
	}
	f.statMu.Lock()
	params := f.pendingParams
	f.pendingParams = nil
	f.retunePending.Store(false)
	f.statMu.Unlock()
	if len(params) == 0 {
		return
	}
	for _, s := range f.scheds {
		// Validated in Retune; the per-shard copies share one kind, so a
		// failure here would be a programming error, not an input error.
		if err := core.Retune(s, params); err != nil {
			return
		}
	}
	f.statMu.Lock()
	f.retuneApplied++
	f.retuneParams = params
	f.statMu.Unlock()
}

// controlLoop drives the optional closed-loop controller: snapshot the
// registry each tick, let the controller judge the window, and stage any
// decision through Retune. The controller itself is confined to this
// goroutine; decisions cross to the transmit goroutine via the staging
// seam only.
func (f *Forwarder) controlLoop() {
	defer f.ctlWG.Done()
	t := time.NewTicker(f.cfg.ControlInterval)
	defer t.Stop()
	for {
		select {
		case <-f.closeCh:
			return
		case <-t.C:
		}
		d, ok := f.ctl.Observe(f.telem.Snapshot())
		st := f.ctl.Stats()
		f.statMu.Lock()
		f.ctlStats = st
		f.statMu.Unlock()
		if ok {
			// Validation cannot fail: the controller emits clamped
			// nondecreasing vectors and the kind was checked at Listen.
			f.Retune(d.Params)
		}
	}
}

// Close shuts the forwarder down and waits for its loops to exit. With
// Config.DrainTimeout zero, queued datagrams are dropped immediately
// (counted in Stats.Dropped and per-class telemetry drops); with a
// positive timeout they keep transmitting, still paced, until the queue
// empties or the deadline passes, whichever comes first.
func (f *Forwarder) Close() error {
	f.closeOnce.Do(func() {
		f.statMu.Lock()
		f.beginClosingLocked()
		f.statMu.Unlock()
		for i, c := range f.conns {
			err := c.Close()
			if i == 0 {
				f.closeErr = err
			}
		}
		close(f.closeCh)
		f.ctlWG.Wait()
		// Shards exit on their sockets' close errors; after they are gone
		// the rings are final, the transmitter drains (or discards at the
		// deadline), and the final sweep below accounts anything a shard
		// published after the transmitter's last look.
		f.ingressWG.Wait()
		f.signalWake()
		f.xmitWG.Wait()
		f.discardAll()
		if f.metrics != nil {
			f.metrics.Close()
		}
	})
	return f.closeErr
}

// beginClosingLocked transitions to the closing state: no new datagrams
// are admitted and the transmitter drains until drainBy. Caller must hold
// f.statMu.
func (f *Forwarder) beginClosingLocked() {
	if f.closing {
		return
	}
	f.closing = true
	f.drainBy = time.Now().Add(f.cfg.DrainTimeout)
	if f.cfg.DrainTimeout <= 0 {
		f.abort.Store(true)
	}
}

// noteIngressDone is called by a shard whose socket died (normally at
// Close): it flips to closing so the transmitter knows to drain out.
func (f *Forwarder) noteIngressDone() {
	f.statMu.Lock()
	f.beginClosingLocked()
	f.statMu.Unlock()
	f.signalWake()
}

// closeState snapshots the closing flag and drain deadline.
func (f *Forwarder) closeState() (bool, time.Time) {
	f.statMu.Lock()
	defer f.statMu.Unlock()
	return f.closing, f.drainBy
}

// signalWake rings the transmitter's doorbell without blocking.
func (f *Forwarder) signalWake() {
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// now returns seconds since the forwarder started; it is the time base for
// waiting-time priorities.
func (f *Forwarder) now() float64 { return time.Since(f.epoch).Seconds() }

// txTime is the virtual transmission time of size bytes at the egress rate.
func (f *Forwarder) txTime(size int64) time.Duration {
	return time.Duration(float64(size) / f.rate * float64(time.Second))
}

// recycle returns p to its shard's free ring after its terminal event.
// Transmit-side only (or Close's final sweep, strictly after the
// transmitter exits). A full free ring simply releases the packet to the
// garbage collector.
func (f *Forwarder) recycle(shard int, p *core.Packet) {
	if f.cfg.DisablePooling {
		return
	}
	p.Payload = p.Payload[:0]
	f.shards[shard].free.Push(p)
}

// drainRings moves every published packet from the shard rings into the
// corresponding scheduler instance. Transmit-side only.
func (f *Forwarder) drainRings() {
	for i, sh := range f.shards {
		for {
			p := sh.xmit.Pop()
			if p == nil {
				break
			}
			f.scheds[i].Enqueue(p, p.Arrival)
			f.backlog++
		}
	}
}

// selectShard returns the shard whose scheduler holds the globally most
// urgent head, or -1 when all are empty. For WTP and FCFS the per-shard
// peek names exactly what that shard's Dequeue would serve, so taking the
// argmax reproduces the single-queue service order (see DESIGN.md §3h);
// ties — possible when per-batch amortized stamps collide — resolve like
// the scheduler's own tie-break (higher class first), then lowest shard.
func (f *Forwarder) selectShard(now float64) int {
	if len(f.scheds) == 1 {
		if f.backlog == 0 {
			return -1
		}
		return 0
	}
	best, bestClass := -1, -1
	bestPri := 0.0
	for i, pk := range f.peekers {
		pri, class, ok := pk.PeekPriority(now)
		if !ok {
			continue
		}
		if best < 0 || pri > bestPri || (pri == bestPri && class > bestClass) {
			best, bestPri, bestClass = i, pri, class
		}
	}
	return best
}

// recountBacklog resynchronizes the transmitter's backlog counter from
// the schedulers (defensive; reached only if a scheduler disagrees with
// its own accounting).
func (f *Forwarder) recountBacklog() {
	n := 0
	for _, sched := range f.scheds {
		for c := 0; c < f.numClasses; c++ {
			n += sched.Len(c)
		}
	}
	f.backlog = n
}

func (f *Forwarder) transmitLoop() {
	defer f.xmitWG.Done()
	out, err := net.DialUDP("udp", nil, f.dst)
	var bc *batchConn
	if err != nil {
		// No egress socket: every datagram fails its write and is
		// dropped with full accounting, keeping the stats invariant.
		out = nil
	} else {
		defer out.Close()
		bc, _ = newBatchConn(out, defaultIOBatch)
	}

	pkts := make([]*core.Packet, 0, defaultIOBatch)
	shards := make([]int, 0, defaultIOBatch)
	departs := make([]float64, 0, defaultIOBatch)
	werrs := make([]error, defaultIOBatch)
	payloads := make([][]byte, 0, defaultIOBatch)

	// nextFree is the absolute time the virtual egress link becomes
	// free: an absolute-clock token pacer. It advances by exactly one
	// transmission time per datagram, so time spent in writes, dequeues
	// or telemetry is paid out of link credit instead of stretching the
	// schedule — the achieved rate tracks RateBps across a busy period.
	nextFree := time.Now()
	for {
		// Wait for the link to be free before selecting, so
		// waiting-time priorities are evaluated at service time.
		f.sleepUntil(nextFree)

		f.drainRings()
		f.maybeRetune()
		wasEmpty := f.backlog == 0
		for f.backlog == 0 {
			if closing, _ := f.closeState(); closing {
				// Nothing queued and no more arrivals: drained.
				return
			}
			select {
			case <-f.wake:
			case <-f.closeCh:
			}
			f.drainRings()
			f.maybeRetune()
		}
		if closing, drainBy := f.closeState(); closing && !time.Now().Before(drainBy) {
			f.discardAll()
			return
		}

		depart := f.now()
		s := f.selectShard(depart)
		if s < 0 {
			f.recountBacklog()
			continue
		}
		p := f.scheds[s].Dequeue(depart)
		if p == nil { // defensive: backlog said otherwise
			f.recountBacklog()
			continue
		}
		f.backlog--

		if wasEmpty {
			// The link sat idle: restart the pacer clock so unused
			// idle time does not become a line-rate burst. Credit
			// accumulates only within a busy period.
			if now := time.Now(); nextFree.Before(now) {
				nextFree = now
			}
		}

		pkts = append(pkts[:0], p)
		shards = append(shards[:0], s)
		departs = append(departs[:0], depart)
		nextFree = nextFree.Add(f.txTime(p.Size))

		// Egress batching: extend the batch only while the pacer is
		// already behind schedule — each added packet's service time has
		// passed too — so paced runs keep the classic
		// one-datagram-per-wakeup path (batch == 1, per-datagram write
		// and retry), every packet keeps its own depart stamp, and a
		// fault injector always sees single attempts.
		if bc != nil && bc.Batched() && f.cfg.Fault == nil {
			for len(pkts) < defaultIOBatch && nextFree.Before(time.Now()) {
				f.drainRings()
				if f.backlog == 0 {
					break
				}
				d := f.now()
				si := f.selectShard(d)
				if si < 0 {
					break
				}
				q := f.scheds[si].Dequeue(d)
				if q == nil {
					break
				}
				f.backlog--
				pkts = append(pkts, q)
				shards = append(shards, si)
				departs = append(departs, d)
				nextFree = nextFree.Add(f.txTime(q.Size))
			}
		}

		if len(pkts) == 1 {
			werrs[0] = f.write(out, pkts[0].Payload)
		} else {
			// sendmmsg sends a prefix and stops at the first failing
			// datagram; route that one through the classic per-datagram
			// retry path and resume batching after it.
			i := 0
			for i < len(pkts) {
				payloads = payloads[:0]
				for _, q := range pkts[i:] {
					payloads = append(payloads, q.Payload)
				}
				n, werr := bc.WriteBatch(payloads)
				for j := 0; j < n; j++ {
					werrs[i+j] = nil
				}
				i += n
				if i < len(pkts) && (werr != nil || n == 0) {
					werrs[i] = f.write(out, pkts[i].Payload)
					i++
				}
			}
		}

		f.statMu.Lock()
		for i, q := range pkts {
			if werrs[i] == nil {
				f.stats.Forwarded++
				f.telem.Departure(q.Class, q.Size, departs[i], departs[i]-q.Arrival)
			} else {
				f.stats.Dropped++
				f.telem.Drop(q.Class, f.now())
			}
			f.queued--
			f.classQueued[q.Class]--
		}
		f.statMu.Unlock()
		for i, q := range pkts {
			f.recycle(shards[i], q)
		}
	}
}

// discardAll drops every packet the transmit side owns — shard rings and
// scheduler instances — with full accounting, so Received = Forwarded +
// Dropped + BadHeader + BadClass holds after shutdown and the telemetry
// backlog returns to zero. Called from the transmit goroutine at the drain
// deadline, and from Close strictly after both goroutine groups exit (the
// final sweep that catches packets a shard published after the
// transmitter's last look).
func (f *Forwarder) discardAll() {
	f.drainRings()
	now := f.now()
	f.statMu.Lock()
	for s, sched := range f.scheds {
		for {
			p := sched.Dequeue(now)
			if p == nil {
				break
			}
			f.stats.Dropped++
			f.telem.Drop(p.Class, now)
			f.queued--
			f.classQueued[p.Class]--
			f.backlog--
			f.recycle(s, p)
		}
	}
	f.statMu.Unlock()
}

// sleepUntil sleeps until t in bounded chunks, returning early when the
// forwarder aborts (Close dropping the backlog), so shutdown is never
// stuck behind a long low-rate pacing gap.
func (f *Forwarder) sleepUntil(t time.Time) {
	for !f.abort.Load() {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > maxSleepChunk {
			d = maxSleepChunk
		}
		time.Sleep(d)
	}
}

// errNoEgress reports that the egress socket could not be dialed.
var errNoEgress = errors.New("netio: egress socket unavailable")

// write sends one datagram, retrying transient errors with doubling
// backoff before giving up. Retry time is paid out of pacer credit. A
// configured FaultInjector wraps every attempt.
func (f *Forwarder) write(out *net.UDPConn, payload []byte) error {
	var send func(p []byte) (int, error)
	if out == nil {
		send = func([]byte) (int, error) { return 0, errNoEgress }
	} else {
		send = out.Write
	}
	fault := f.cfg.Fault
	backoff := writeBackoffBase
	for attempt := 0; ; attempt++ {
		var err error
		if fault != nil {
			_, err = fault.Write(payload, attempt, send)
		} else {
			_, err = send(payload)
		}
		if err == nil || attempt >= writeRetries || f.abort.Load() {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// ErrClosed is returned by operations on a closed forwarder.
var ErrClosed = errors.New("netio: forwarder closed")
