package netio

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"pdds/internal/classify"
	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// Config describes a Forwarder.
type Config struct {
	// Listen is the UDP address to receive on (e.g. "127.0.0.1:0").
	Listen string
	// Forward is the UDP address transmitted datagrams are sent to.
	Forward string
	// Scheduler and SDP configure the queueing discipline
	// (default WTP with SDPs 1,2,4,8).
	Scheduler core.Kind
	SDP       []float64
	// RateBps is the egress rate in bits per second; it is what makes
	// queueing (and hence differentiation) happen at all.
	RateBps float64
	// MaxPackets bounds the aggregate queue; arriving datagrams beyond
	// it are dropped (0 = 4096).
	MaxPackets int
	// ClassMaxPackets, when non-nil, bounds each class's queue
	// individually (len must equal the scheduler's class count; 0 means
	// only the aggregate bound applies to that class). Arrivals beyond a
	// class's bound are dropped with full accounting, so one class's
	// burst cannot occupy the whole aggregate queue.
	ClassMaxPackets []int
	// Classifier, when non-nil, resolves flow identity to a class for
	// datagrams that carry ClassUnspecified or an out-of-range class
	// byte — and for every datagram when DistrustHeader is set. The
	// resolved class is re-marked into the forwarded datagram's class
	// byte so downstream hops and sinks see the edge's decision. When
	// nil, the ingress path is byte-for-byte today's behaviour: the
	// header class is trusted and out-of-range bytes count as BadClass.
	Classifier Classifier
	// DistrustHeader, with a Classifier set, classifies every datagram
	// from its flow identity instead of trusting in-range header class
	// bytes (the header byte still participates as the DS byte that
	// `dscp` filters see).
	DistrustHeader bool
	// DrainTimeout bounds the graceful drain Close performs: queued
	// datagrams keep transmitting — still paced at RateBps — for up to
	// this long before the remainder is dropped. Zero drops the backlog
	// immediately on Close. Either way every queued datagram ends up in
	// Forwarded or Dropped, so the conservation invariant
	// Received = Forwarded + Dropped + BadHeader + BadClass holds after
	// shutdown.
	DrainTimeout time.Duration
	// DisablePooling turns off ingress buffer and packet reuse, forcing
	// a fresh allocation per datagram (debugging aid; pooling is the
	// default).
	DisablePooling bool
	// Telemetry, if set, receives per-class counters and queueing-delay
	// histograms for every datagram (delays in seconds). Leave nil to
	// run uninstrumented; MetricsAddr implies a registry.
	Telemetry *telemetry.Registry
	// MetricsAddr, if non-empty, serves the telemetry registry over
	// HTTP on this address ("127.0.0.1:0" picks a free port): /metrics
	// JSON, /metrics?format=text, and /debug/pprof/. A registry is
	// created automatically when Telemetry is nil.
	MetricsAddr string

	// Fault, when non-nil, intercepts every egress write attempt for
	// fault injection — packet corruption, truncation, duplication,
	// reordering, receiver stalls, and transient or persistent write
	// errors (see FaultInjector). Faults compose with the normal retry
	// and drop accounting, so the conservation invariant holds under any
	// injected behaviour. Leave nil in production.
	Fault FaultInjector
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = core.KindWTP
	}
	if len(c.SDP) == 0 {
		c.SDP = []float64{1, 2, 4, 8}
	}
	if c.MaxPackets == 0 {
		c.MaxPackets = 4096
	}
	return c
}

const (
	// maxSleepChunk bounds any single pacer sleep so Close stays
	// responsive even at very low egress rates (one datagram's
	// transmission time can be seconds).
	maxSleepChunk = 50 * time.Millisecond
	// writeRetries and writeBackoffBase govern transient egress write
	// errors (e.g. ECONNREFUSED from a restarting receiver, ENOBUFS):
	// each datagram is retried with doubling backoff before it is
	// dropped and accounted.
	writeRetries     = 3
	writeBackoffBase = 500 * time.Microsecond
)

// Stats are cumulative forwarder counters. Every received datagram is
// accounted exactly once: Received = Forwarded + Dropped + BadHeader +
// BadClass + Queued at any snapshot, with Queued reaching 0 after Close.
type Stats struct {
	Received  uint64
	Forwarded uint64
	// Dropped counts queue-full drops (aggregate or per-class), egress
	// write failures that exhausted their retries, and datagrams
	// discarded at Close.
	Dropped uint64
	// BadHeader counts datagrams that failed to decode (short or
	// wrong-version headers).
	BadHeader uint64
	// BadClass counts structurally valid datagrams whose class could not
	// be resolved: an out-of-range or ClassUnspecified class byte with no
	// Classifier configured, or a Classifier miss (no filter matched and
	// no default class exists).
	BadClass uint64
	// Queued is the instantaneous scheduler backlog at snapshot time.
	Queued uint64
}

// Forwarder is a single-hop class-based forwarding element over UDP.
//
// Telemetry ordering contract: for every datagram the registry sees the
// Arrival strictly before the matching Departure or Drop (both are
// recorded under the queue mutex), so counter-derived backlogs
// (arrivals − departures − drops) never transiently underflow.
type Forwarder struct {
	cfg     Config
	in      *net.UDPConn
	dst     *net.UDPAddr
	rate    float64 // bytes per second
	epoch   time.Time
	telem   *telemetry.Registry
	metrics *telemetry.Server

	// abort interrupts pacer sleeps and write backoffs once Close (or a
	// drain deadline) decides the remaining backlog will be dropped.
	abort atomic.Bool

	// ingressKey holds the local socket's canonical address and port:
	// the destination side of every arriving flow's 5-tuple, resolved
	// once at bind time so the receive loop builds flow keys without
	// touching the socket again.
	ingressAddr netip.Addr
	ingressPort uint16

	mu     sync.Mutex
	cond   *sync.Cond
	sched  core.Scheduler
	queued int
	// classQueued tracks the per-class backlog for ClassMaxPackets
	// enforcement (maintained even when unbounded — it is one slice
	// index per datagram).
	classQueued []int
	closing     bool
	drainBy     time.Time // drain deadline; valid once closing is set
	stats       Stats
	pool        *core.PacketPool // nil when pooling is disabled
	bufs        [][]byte         // payload buffer free list (LIFO)

	closeOnce sync.Once
	closeErr  error

	wg sync.WaitGroup
}

// Listen binds the forwarder's ingress socket and starts its receive and
// transmit loops. Stop with Close.
func Listen(cfg Config) (*Forwarder, error) {
	cfg = cfg.withDefaults()
	if !(cfg.RateBps > 0) {
		return nil, fmt.Errorf("netio: RateBps %g must be > 0", cfg.RateBps)
	}
	dst, err := net.ResolveUDPAddr("udp", cfg.Forward)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve forward addr: %w", err)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve listen addr: %w", err)
	}
	in, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	rate := cfg.RateBps / 8
	sched, err := core.New(cfg.Scheduler, cfg.SDP, rate)
	if err != nil {
		in.Close()
		return nil, err
	}
	if cfg.Classifier != nil && cfg.Classifier.NumClasses() != sched.NumClasses() {
		in.Close()
		return nil, fmt.Errorf("netio: classifier declares %d classes, scheduler %d",
			cfg.Classifier.NumClasses(), sched.NumClasses())
	}
	if cfg.DistrustHeader && cfg.Classifier == nil {
		in.Close()
		return nil, fmt.Errorf("netio: DistrustHeader requires a Classifier")
	}
	if cfg.ClassMaxPackets != nil && len(cfg.ClassMaxPackets) != sched.NumClasses() {
		in.Close()
		return nil, fmt.Errorf("netio: ClassMaxPackets has %d entries for %d classes",
			len(cfg.ClassMaxPackets), sched.NumClasses())
	}
	for i, b := range cfg.ClassMaxPackets {
		if b < 0 {
			in.Close()
			return nil, fmt.Errorf("netio: ClassMaxPackets[%d] = %d must be >= 0", i, b)
		}
	}
	local := in.LocalAddr().(*net.UDPAddr).AddrPort()
	f := &Forwarder{
		cfg:         cfg,
		in:          in,
		dst:         dst,
		rate:        rate,
		epoch:       time.Now(),
		sched:       sched,
		telem:       cfg.Telemetry,
		ingressAddr: local.Addr().Unmap(),
		ingressPort: local.Port(),
		classQueued: make([]int, sched.NumClasses()),
	}
	if !cfg.DisablePooling {
		f.pool = core.NewPacketPool()
	}
	if f.telem == nil && cfg.MetricsAddr != "" {
		f.telem = telemetry.NewWithSDP(cfg.SDP)
	}
	if cfg.MetricsAddr != "" {
		srv, err := telemetry.Serve(cfg.MetricsAddr, f.telem)
		if err != nil {
			in.Close()
			return nil, err
		}
		f.metrics = srv
	}
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(2)
	go f.receiveLoop()
	go f.transmitLoop()
	return f, nil
}

// LocalAddr returns the bound ingress address.
func (f *Forwarder) LocalAddr() net.Addr { return f.in.LocalAddr() }

// Telemetry returns the attached registry (nil when uninstrumented).
func (f *Forwarder) Telemetry() *telemetry.Registry { return f.telem }

// MetricsAddr returns the bound metrics HTTP address, or nil when
// Config.MetricsAddr was empty.
func (f *Forwarder) MetricsAddr() net.Addr {
	if f.metrics == nil {
		return nil
	}
	return f.metrics.Addr()
}

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.stats
	s.Queued = uint64(f.queued)
	return s
}

// Close shuts the forwarder down and waits for its loops to exit. With
// Config.DrainTimeout zero, queued datagrams are dropped immediately
// (counted in Stats.Dropped and per-class telemetry drops); with a
// positive timeout they keep transmitting, still paced, until the queue
// empties or the deadline passes, whichever comes first.
func (f *Forwarder) Close() error {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		f.beginClosingLocked()
		f.cond.Broadcast()
		f.mu.Unlock()
		f.closeErr = f.in.Close()
		f.wg.Wait()
		if f.metrics != nil {
			f.metrics.Close()
		}
	})
	return f.closeErr
}

// beginClosingLocked transitions to the closing state: no new datagrams
// are admitted and the transmitter drains until drainBy. Caller must hold
// f.mu.
func (f *Forwarder) beginClosingLocked() {
	if f.closing {
		return
	}
	f.closing = true
	f.drainBy = time.Now().Add(f.cfg.DrainTimeout)
	if f.cfg.DrainTimeout <= 0 {
		f.abort.Store(true)
	}
}

// now returns seconds since the forwarder started; it is the time base for
// waiting-time priorities.
func (f *Forwarder) now() float64 { return time.Since(f.epoch).Seconds() }

// getBufLocked returns a zero-length payload buffer with capacity ≥ n,
// reusing the free list when possible. Caller must hold f.mu.
func (f *Forwarder) getBufLocked(n int) []byte {
	if k := len(f.bufs); k > 0 && !f.cfg.DisablePooling {
		b := f.bufs[k-1]
		f.bufs[k-1] = nil
		f.bufs = f.bufs[:k-1]
		if cap(b) >= n {
			return b[:0]
		}
		// Too small for this datagram: let it go and size up below.
	}
	c := 256
	for c < n {
		c <<= 1
	}
	return make([]byte, 0, c)
}

// recycleLocked returns p and its payload buffer to the free lists after
// its terminal event (forwarded, dropped, or discarded at close). Caller
// must hold f.mu and must not touch p afterwards.
func (f *Forwarder) recycleLocked(p *core.Packet) {
	if f.cfg.DisablePooling {
		return
	}
	if p.Payload != nil {
		f.bufs = append(f.bufs, p.Payload[:0])
	}
	f.pool.Put(p)
}

func (f *Forwarder) receiveLoop() {
	defer f.wg.Done()
	scratch := make([]byte, 64*1024)
	numClasses := f.sched.NumClasses()
	var seq uint64
	for {
		n, from, err := f.in.ReadFromUDPAddrPort(scratch)
		if err != nil {
			// Closed socket (or a fatal error): stop receiving and
			// wake the transmitter so it can drain or discard.
			f.mu.Lock()
			f.beginClosingLocked()
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}

		f.mu.Lock()
		f.stats.Received++
		hdr, _, derr := Decode(scratch[:n])
		if derr != nil {
			f.stats.BadHeader++
			f.mu.Unlock()
			continue
		}
		// Resolve the class. The header byte is trusted when it is in
		// range (unless DistrustHeader); ClassUnspecified and
		// out-of-range bytes go to the classifier. The raw byte doubles
		// as the DS byte the classifier's dscp filters see.
		class := int(hdr.Class)
		trusted := class < numClasses && !f.cfg.DistrustHeader
		if !trusted {
			cls := f.cfg.Classifier
			if cls == nil {
				f.stats.BadClass++
				f.mu.Unlock()
				continue
			}
			key := classify.FlowKey{
				Src:     from.Addr().Unmap(),
				Dst:     f.ingressAddr,
				SrcPort: from.Port(),
				DstPort: f.ingressPort,
				Proto:   classify.ProtoUDP,
			}
			c, ok := cls.Classify(key, hdr.Class, time.Since(f.epoch).Nanoseconds())
			if !ok || c < 0 || c >= numClasses {
				f.stats.BadClass++
				f.mu.Unlock()
				continue
			}
			class = c
		}
		now := f.now()
		// Ordering contract: the arrival is recorded before the
		// transmitter can observe the packet — and before any drop —
		// so a departure or drop never precedes its arrival.
		f.telem.Arrival(class, int64(n), now)
		if f.queued >= f.cfg.MaxPackets || f.closing ||
			(f.cfg.ClassMaxPackets != nil && f.cfg.ClassMaxPackets[class] > 0 &&
				f.classQueued[class] >= f.cfg.ClassMaxPackets[class]) {
			f.stats.Dropped++
			f.telem.Drop(class, now)
			f.mu.Unlock()
			continue
		}
		seq++
		p := f.pool.Get()
		p.ID = seq
		p.Class = class
		p.Size = int64(n)
		p.Arrival = now
		p.Payload = append(f.getBufLocked(n), scratch[:n]...)
		if class != int(hdr.Class) {
			// Re-mark the DS byte with the edge's decision so downstream
			// hops and sinks see the resolved class.
			p.Payload[1] = byte(class)
		}
		f.sched.Enqueue(p, now)
		f.queued++
		f.classQueued[class]++
		f.cond.Signal()
		f.mu.Unlock()
	}
}

func (f *Forwarder) transmitLoop() {
	defer f.wg.Done()
	out, err := net.DialUDP("udp", nil, f.dst)
	if err != nil {
		// No egress socket: every datagram fails its write and is
		// dropped with full accounting, keeping the stats invariant.
		out = nil
	} else {
		defer out.Close()
	}

	// nextFree is the absolute time the virtual egress link becomes
	// free: an absolute-clock token pacer. It advances by exactly one
	// transmission time per datagram, so time spent in writes, dequeues
	// or telemetry is paid out of link credit instead of stretching the
	// schedule — the achieved rate tracks RateBps across a busy period.
	nextFree := time.Now()
	for {
		// Wait for the link to be free before selecting, so
		// waiting-time priorities are evaluated at service time.
		f.sleepUntil(nextFree)

		f.mu.Lock()
		wasEmpty := f.queued == 0
		for f.queued == 0 && !f.closing {
			f.cond.Wait()
		}
		if f.closing && (f.queued == 0 || !time.Now().Before(f.drainBy)) {
			f.discardQueuedLocked()
			f.mu.Unlock()
			return
		}
		depart := f.now()
		p := f.sched.Dequeue(depart)
		if p == nil { // defensive: queued said otherwise
			f.queued = 0
			for i := range f.classQueued {
				f.classQueued[i] = 0
			}
			f.mu.Unlock()
			continue
		}
		f.queued--
		f.classQueued[p.Class]--
		f.mu.Unlock()

		if wasEmpty {
			// The link sat idle: restart the pacer clock so unused
			// idle time does not become a line-rate burst. Credit
			// accumulates only within a busy period.
			if now := time.Now(); nextFree.Before(now) {
				nextFree = now
			}
		}

		werr := f.write(out, p.Payload)

		f.mu.Lock()
		if werr == nil {
			f.stats.Forwarded++
			f.telem.Departure(p.Class, p.Size, depart, depart-p.Arrival)
		} else {
			f.stats.Dropped++
			f.telem.Drop(p.Class, f.now())
		}
		size := p.Size
		f.recycleLocked(p)
		f.mu.Unlock()

		nextFree = nextFree.Add(time.Duration(float64(size) / f.rate * float64(time.Second)))
	}
}

// discardQueuedLocked drops every queued packet with full accounting so
// Received = Forwarded + Dropped + BadHeader + BadClass holds after
// shutdown and the telemetry backlog returns to zero. Caller must hold
// f.mu.
func (f *Forwarder) discardQueuedLocked() {
	now := f.now()
	for {
		p := f.sched.Dequeue(now)
		if p == nil {
			break
		}
		f.stats.Dropped++
		f.telem.Drop(p.Class, now)
		f.recycleLocked(p)
	}
	f.queued = 0
	for i := range f.classQueued {
		f.classQueued[i] = 0
	}
}

// sleepUntil sleeps until t in bounded chunks, returning early when the
// forwarder aborts (Close dropping the backlog), so shutdown is never
// stuck behind a long low-rate pacing gap.
func (f *Forwarder) sleepUntil(t time.Time) {
	for !f.abort.Load() {
		d := time.Until(t)
		if d <= 0 {
			return
		}
		if d > maxSleepChunk {
			d = maxSleepChunk
		}
		time.Sleep(d)
	}
}

// errNoEgress reports that the egress socket could not be dialed.
var errNoEgress = errors.New("netio: egress socket unavailable")

// write sends one datagram, retrying transient errors with doubling
// backoff before giving up. Retry time is paid out of pacer credit. A
// configured FaultInjector wraps every attempt.
func (f *Forwarder) write(out *net.UDPConn, payload []byte) error {
	var send func(p []byte) (int, error)
	if out == nil {
		send = func([]byte) (int, error) { return 0, errNoEgress }
	} else {
		send = out.Write
	}
	fault := f.cfg.Fault
	backoff := writeBackoffBase
	for attempt := 0; ; attempt++ {
		var err error
		if fault != nil {
			_, err = fault.Write(payload, attempt, send)
		} else {
			_, err = send(payload)
		}
		if err == nil || attempt >= writeRetries || f.abort.Load() {
			return err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// ErrClosed is returned by operations on a closed forwarder.
var ErrClosed = errors.New("netio: forwarder closed")
