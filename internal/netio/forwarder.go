package netio

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"pdds/internal/core"
)

// Config describes a Forwarder.
type Config struct {
	// Listen is the UDP address to receive on (e.g. "127.0.0.1:0").
	Listen string
	// Forward is the UDP address transmitted datagrams are sent to.
	Forward string
	// Scheduler and SDP configure the queueing discipline
	// (default WTP with SDPs 1,2,4,8).
	Scheduler core.Kind
	SDP       []float64
	// RateBps is the egress rate in bits per second; it is what makes
	// queueing (and hence differentiation) happen at all.
	RateBps float64
	// MaxPackets bounds the aggregate queue; arriving datagrams beyond
	// it are dropped (0 = 4096).
	MaxPackets int
}

func (c Config) withDefaults() Config {
	if c.Scheduler == "" {
		c.Scheduler = core.KindWTP
	}
	if len(c.SDP) == 0 {
		c.SDP = []float64{1, 2, 4, 8}
	}
	if c.MaxPackets == 0 {
		c.MaxPackets = 4096
	}
	return c
}

// Stats are cumulative forwarder counters.
type Stats struct {
	Received  uint64
	Forwarded uint64
	Dropped   uint64
	// BadHeader counts datagrams that failed to decode.
	BadHeader uint64
}

// Forwarder is a single-hop class-based forwarding element over UDP.
type Forwarder struct {
	cfg   Config
	in    *net.UDPConn
	dst   *net.UDPAddr
	rate  float64 // bytes per second
	epoch time.Time

	mu     sync.Mutex
	cond   *sync.Cond
	sched  core.Scheduler
	queued int
	closed bool
	stats  Stats

	wg sync.WaitGroup
}

// Listen binds the forwarder's ingress socket and starts its receive and
// transmit loops. Stop with Close.
func Listen(cfg Config) (*Forwarder, error) {
	cfg = cfg.withDefaults()
	if !(cfg.RateBps > 0) {
		return nil, fmt.Errorf("netio: RateBps %g must be > 0", cfg.RateBps)
	}
	dst, err := net.ResolveUDPAddr("udp", cfg.Forward)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve forward addr: %w", err)
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve listen addr: %w", err)
	}
	in, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("netio: listen: %w", err)
	}
	rate := cfg.RateBps / 8
	sched, err := core.New(cfg.Scheduler, cfg.SDP, rate)
	if err != nil {
		in.Close()
		return nil, err
	}
	f := &Forwarder{
		cfg:   cfg,
		in:    in,
		dst:   dst,
		rate:  rate,
		epoch: time.Now(),
		sched: sched,
	}
	f.cond = sync.NewCond(&f.mu)
	f.wg.Add(2)
	go f.receiveLoop()
	go f.transmitLoop()
	return f, nil
}

// LocalAddr returns the bound ingress address.
func (f *Forwarder) LocalAddr() net.Addr { return f.in.LocalAddr() }

// Stats returns a snapshot of the counters.
func (f *Forwarder) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Close shuts the forwarder down and waits for its loops to exit.
// Queued datagrams are discarded.
func (f *Forwarder) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	err := f.in.Close()
	f.wg.Wait()
	return err
}

// now returns seconds since the forwarder started; it is the time base for
// waiting-time priorities.
func (f *Forwarder) now() float64 { return time.Since(f.epoch).Seconds() }

func (f *Forwarder) receiveLoop() {
	defer f.wg.Done()
	buf := make([]byte, 64*1024)
	var seq uint64
	for {
		n, _, err := f.in.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or a fatal error): stop receiving
			// and wake the transmitter so it can observe closed.
			f.mu.Lock()
			f.closed = true
			f.cond.Broadcast()
			f.mu.Unlock()
			return
		}
		datagram := make([]byte, n)
		copy(datagram, buf[:n])

		f.mu.Lock()
		f.stats.Received++
		hdr, _, derr := Decode(datagram)
		if derr != nil || int(hdr.Class) >= f.sched.NumClasses() {
			f.stats.BadHeader++
			f.mu.Unlock()
			continue
		}
		if f.queued >= f.cfg.MaxPackets {
			f.stats.Dropped++
			f.mu.Unlock()
			continue
		}
		seq++
		f.sched.Enqueue(&core.Packet{
			ID:      seq,
			Class:   int(hdr.Class),
			Size:    int64(n),
			Arrival: f.now(),
			Payload: datagram,
		}, f.now())
		f.queued++
		f.cond.Signal()
		f.mu.Unlock()
	}
}

func (f *Forwarder) transmitLoop() {
	defer f.wg.Done()
	out, err := net.DialUDP("udp", nil, f.dst)
	if err != nil {
		// Nothing can be forwarded; drain nothing and exit when
		// closed.
		f.mu.Lock()
		f.closed = true
		f.mu.Unlock()
		return
	}
	defer out.Close()
	for {
		f.mu.Lock()
		for f.queued == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		p := f.sched.Dequeue(f.now())
		if p == nil { // defensive: queued said otherwise
			f.mu.Unlock()
			continue
		}
		f.queued--
		f.mu.Unlock()

		if _, err := out.Write(p.Payload); err == nil {
			f.mu.Lock()
			f.stats.Forwarded++
			f.mu.Unlock()
		}
		// Pace the egress at the configured rate: the transmission
		// time of this datagram.
		time.Sleep(time.Duration(float64(p.Size) / f.rate * float64(time.Second)))
	}
}

// ErrClosed is returned by operations on a closed forwarder.
var ErrClosed = errors.New("netio: forwarder closed")
