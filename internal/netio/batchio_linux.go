//go:build linux && amd64

package netio

import (
	"net/netip"
	"syscall"
	"unsafe"
)

// Two kernel constants the frozen syscall package predates: Go's linux/amd64
// syscall table stops at 303 (recvmmsg = 299 made it, sendmmsg = 307 did
// not), and SO_REUSEPORT (kernel ≥ 3.9) was never added. Both are stable
// kernel ABI on amd64.
const (
	sysSENDMMSG = 307
	soREUSEPORT = 15
)

// mmsghdr mirrors struct mmsghdr on linux/amd64: a msghdr plus the
// kernel-written per-message byte count, padded to 8-byte alignment.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// mmsgState is the preallocated per-connection scratch for the
// recvmmsg/sendmmsg fast path. Receive buffers, iovecs, headers, and
// sockaddr storage are all fixed at construction so the steady-state read
// and write paths allocate nothing.
type mmsgState struct {
	rbufs  [][]byte // fixed 64 KiB backing buffers; rslots alias them
	rslots []recvSlot
	riov   []syscall.Iovec
	rhdrs  []mmsghdr
	rnames []syscall.RawSockaddrAny

	siov  []syscall.Iovec
	shdrs []mmsghdr
}

func newMmsgState(batch int) *mmsgState {
	s := &mmsgState{
		rbufs:  make([][]byte, batch),
		rslots: make([]recvSlot, batch),
		riov:   make([]syscall.Iovec, batch),
		rhdrs:  make([]mmsghdr, batch),
		rnames: make([]syscall.RawSockaddrAny, batch),
		siov:   make([]syscall.Iovec, batch),
		shdrs:  make([]mmsghdr, batch),
	}
	for i := range s.rbufs {
		s.rbufs[i] = make([]byte, maxDatagram)
	}
	return s
}

// readMmsg receives up to cap(batch) datagrams in one recvmmsg call. The
// third return value reports whether the mmsg path handled the call; false
// means the runtime probe failed and the caller must fall back permanently.
func (b *batchConn) readMmsg() ([]recvSlot, error, bool) {
	s := b.sys
	n := 0
	var opErr syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		// Reinitialize headers every attempt: the kernel overwrites
		// Namelen and msg_len on each delivery.
		for i := range s.rhdrs {
			s.riov[i] = syscall.Iovec{Base: &s.rbufs[i][0]}
			s.riov[i].SetLen(maxDatagram)
			s.rhdrs[i].hdr = syscall.Msghdr{
				Name:    (*byte)(unsafe.Pointer(&s.rnames[i])),
				Namelen: uint32(unsafe.Sizeof(s.rnames[i])),
				Iov:     &s.riov[i],
			}
			s.rhdrs[i].hdr.Iovlen = 1
			s.rhdrs[i].n = 0
		}
		r1, _, errno := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&s.rhdrs[0])), uintptr(len(s.rhdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		opErr = errno
		if errno != 0 {
			// EAGAIN: not readable yet — return false so the netpoller
			// parks this goroutine until the socket is readable again.
			return errno != syscall.EAGAIN
		}
		n = int(r1)
		return true
	})
	if err != nil {
		// Poller-level error (e.g. the socket was closed mid-wait).
		return nil, err, true
	}
	if opErr != 0 {
		if probeFailure(opErr) {
			return nil, nil, false
		}
		return nil, opErr, true
	}
	for i := 0; i < n; i++ {
		s.rslots[i].buf = s.rbufs[i][:s.rhdrs[i].n]
		s.rslots[i].from = sockaddrToAddrPort(&s.rnames[i])
	}
	return s.rslots[:n], nil, true
}

// writeMmsg sends the payloads on the connected socket in one sendmmsg
// call (per writability window), returning how many were sent. As with
// readMmsg, ok=false reports a failed runtime probe.
func (b *batchConn) writeMmsg(payloads [][]byte) (int, error, bool) {
	s := b.sys
	if len(payloads) > len(s.shdrs) {
		payloads = payloads[:len(s.shdrs)]
	}
	n := 0
	var opErr syscall.Errno
	err := b.rc.Write(func(fd uintptr) bool {
		for i, p := range payloads {
			s.siov[i] = syscall.Iovec{}
			if len(p) > 0 {
				s.siov[i].Base = &p[0]
			}
			s.siov[i].SetLen(len(p))
			s.shdrs[i].hdr = syscall.Msghdr{Iov: &s.siov[i]}
			s.shdrs[i].hdr.Iovlen = 1
			s.shdrs[i].n = 0
		}
		r1, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
			uintptr(unsafe.Pointer(&s.shdrs[0])), uintptr(len(payloads)),
			syscall.MSG_DONTWAIT, 0, 0)
		opErr = errno
		if errno != 0 {
			return errno != syscall.EAGAIN
		}
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err, true
	}
	if opErr != 0 {
		if probeFailure(opErr) {
			return 0, nil, false
		}
		return 0, opErr, true
	}
	return n, nil, true
}

// sockaddrToAddrPort converts a kernel-written sockaddr to netip without
// allocating. IPv4-mapped IPv6 sources unmap to plain IPv4 so flow keys
// match what ReadFromUDPAddrPort would have reported.
func sockaddrToAddrPort(rsa *syscall.RawSockaddrAny) netip.AddrPort {
	switch rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), ntohs(sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(rsa))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(), ntohs(sa.Port))
	}
	return netip.AddrPort{}
}

// ntohs converts the network-byte-order port field of a raw sockaddr.
func ntohs(p uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(&p))
	return uint16(b[0])<<8 | uint16(b[1])
}

// setReusePort enables SO_REUSEPORT on fd so N shard sockets can bind the
// same addr:port and the kernel's 4-tuple hash spreads flows across them.
func setReusePort(fd uintptr) error {
	return syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soREUSEPORT, 1)
}
