package netio

import (
	"bytes"
	"testing"
	"time"
)

// FuzzDecode exercises the datagram parser with arbitrary input: it must
// never panic, and every accepted datagram must re-encode to the same
// bytes (canonical wire form).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add(Header{Class: 2, Seq: 42, SentAt: time.Unix(0, 123456789)}.Encode(nil))
	f.Add(append(Header{Class: 255, Seq: ^uint64(0), SentAt: time.Unix(0, -1)}.Encode(nil), 0xFF, 0x00))
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, err := Decode(data)
		if err != nil {
			return
		}
		re := h.Encode(nil)
		re = append(re, payload...)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not canonical: %x -> %x", data, re)
		}
	})
}
