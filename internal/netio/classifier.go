package netio

import (
	"pdds/internal/classify"
)

// ClassUnspecified is the sentinel class byte senders use when they want
// the edge to classify for them: it never indexes a scheduler class, so a
// datagram carrying it must be resolved by the configured Classifier (or
// be counted in Stats.BadClass when there is none).
const ClassUnspecified = 0xFF

// Classifier resolves a flow identity (plus the datagram's DS byte — the
// wire header's class byte doubles as one) to a scheduler class index.
// The forwarder consults it on the ingress path for datagrams that carry
// ClassUnspecified or an out-of-range class byte, and for every datagram
// when Config.DistrustHeader is set. now is nanoseconds since the
// forwarder started (the flow-table TTL time base).
//
// Implementations must be safe for concurrent use and must not allocate
// on the steady-state path; *classify.Classifier satisfies this.
type Classifier interface {
	Classify(k classify.FlowKey, dscp uint8, now int64) (class int, ok bool)
	NumClasses() int
}
