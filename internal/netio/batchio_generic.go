//go:build !linux || !amd64

package netio

import "errors"

// errNoReusePort reports that this platform build has no SO_REUSEPORT
// support wired up; the forwarder falls back to one shared socket.
var errNoReusePort = errors.New("netio: SO_REUSEPORT unavailable on this platform")

// mmsgState is unavailable off linux/amd64; batchConn keeps a nil pointer
// and every call takes the portable single-datagram path.
type mmsgState struct{}

func newMmsgState(int) *mmsgState { return nil }

func (b *batchConn) readMmsg() ([]recvSlot, error, bool) { return nil, nil, false }

func (b *batchConn) writeMmsg([][]byte) (int, error, bool) { return 0, nil, false }

func setReusePort(uintptr) error { return errNoReusePort }
