package netio

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pdds/internal/core"
	"pdds/internal/telemetry"
)

// checkDrainedConservation asserts the accounting identity at a drained
// snapshot: nothing queued and every datagram in a terminal counter (the
// stricter form of forwarder_test.go's checkConservation).
func checkDrainedConservation(t *testing.T, st Stats) {
	t.Helper()
	if st.Queued != 0 {
		t.Fatalf("queued = %d after shutdown, want 0 (%+v)", st.Queued, st)
	}
	checkConservation(t, st, nil)
}

// Sharded end-to-end conservation: multiple source ports (flows) blast a
// sharded forwarder, including malformed datagrams; every datagram must be
// accounted exactly once at 1, 2, and 8 shards, shard counters must fold
// to the aggregate, and the drain must leave nothing queued.
func TestForwarderShardedConservation(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatal(err)
			}
			defer sink.Close()
			go func() { // drain the sink so loopback buffers stay clear
				buf := make([]byte, 2048)
				for {
					if _, _, err := sink.ReadFromUDP(buf); err != nil {
						return
					}
				}
			}()

			fwd, err := Listen(Config{
				Listen:       "127.0.0.1:0",
				Forward:      sink.LocalAddr().String(),
				RateBps:      1 << 22, // 4 Mbps
				MaxPackets:   256,
				Shards:       shards,
				DrainTimeout: 5 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer fwd.Close()

			const flows, perFlow = 4, 400
			var wg sync.WaitGroup
			for fl := 0; fl < flows; fl++ {
				wg.Add(1)
				go func(fl int) {
					defer wg.Done()
					conn, err := net.Dial("udp", fwd.LocalAddr().String())
					if err != nil {
						t.Error(err)
						return
					}
					defer conn.Close()
					for i := 0; i < perFlow; i++ {
						if i%100 == 99 { // a sprinkle of undecodable datagrams
							conn.Write([]byte{0xBA, 0xD0})
						} else {
							dg := Header{Class: uint8(i % 4), Seq: uint64(i), SentAt: time.Now()}.Encode(nil)
							conn.Write(append(dg, make([]byte, 80)...))
						}
						if i%50 == 49 {
							time.Sleep(time.Millisecond)
						}
					}
				}(fl)
			}
			wg.Wait()

			// Wait until everything sent has landed and the queue drained.
			deadline := time.Now().Add(10 * time.Second)
			for {
				st := fwd.Stats()
				if st.Received == flows*perFlow && st.Queued == 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("timed out waiting for quiescence: %+v", st)
				}
				time.Sleep(5 * time.Millisecond)
			}
			st := fwd.Stats()
			checkDrainedConservation(t, st)
			if st.BadHeader != flows*perFlow/100 {
				t.Fatalf("bad headers = %d, want %d", st.BadHeader, flows*perFlow/100)
			}
			if st.Forwarded == 0 {
				t.Fatal("nothing forwarded")
			}

			ss := fwd.ShardStats()
			if len(ss) != shards {
				t.Fatalf("ShardStats has %d entries, want %d", len(ss), shards)
			}
			var shardSum uint64
			active := 0
			for i, s := range ss {
				shardSum += s.Received
				if s.Received > 0 {
					active++
					if s.Batches == 0 || s.MaxBatch < 1 {
						t.Errorf("shard %d: received %d but batches=%d maxBatch=%d",
							i, s.Received, s.Batches, s.MaxBatch)
					}
				}
				if s.Mode != "mmsg" && s.Mode != "datagram" {
					t.Errorf("shard %d: mode %q", i, s.Mode)
				}
				if s.SharedSocket != ss[0].SharedSocket {
					t.Errorf("shard %d: SharedSocket disagrees with shard 0", i)
				}
			}
			if shardSum != st.Received {
				t.Fatalf("shard Received sum %d != aggregate %d", shardSum, st.Received)
			}
			if active == 0 {
				t.Fatal("no shard received anything")
			}
			t.Logf("shards=%d active=%d shared=%v modes=%s", shards, active, ss[0].SharedSocket, ss[0].Mode)

			if err := fwd.Close(); err != nil {
				t.Fatal(err)
			}
			checkDrainedConservation(t, fwd.Stats())
		})
	}
}

// Mid-flight Close under sharded load: senders are still blasting when the
// forwarder shuts down with no drain; every admitted datagram must still
// land in a terminal counter.
func TestForwarderShardedMidFlightClose(t *testing.T) {
	for _, shards := range []int{2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			fwd, err := Listen(Config{
				Listen:     "127.0.0.1:0",
				Forward:    "127.0.0.1:9", // discard
				RateBps:    1 << 20,
				MaxPackets: 128,
				Shards:     shards,
				// DrainTimeout zero: drop the backlog at Close.
			})
			if err != nil {
				t.Fatal(err)
			}

			var stop atomic.Bool
			var wg sync.WaitGroup
			for fl := 0; fl < 4; fl++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					conn, err := net.Dial("udp", fwd.LocalAddr().String())
					if err != nil {
						return
					}
					defer conn.Close()
					dg := Header{Class: 1, SentAt: time.Now()}.Encode(nil)
					dg = append(dg, make([]byte, 100)...)
					for !stop.Load() {
						conn.Write(dg) // errors expected once closed
					}
				}()
			}
			time.Sleep(100 * time.Millisecond)
			if err := fwd.Close(); err != nil {
				t.Fatal(err)
			}
			stop.Store(true)
			wg.Wait()
			checkDrainedConservation(t, fwd.Stats())
		})
	}
}

// flowShard is the oracle's stand-in for the kernel's REUSEPORT hash: any
// deterministic flow→shard map works, the merge must not care.
func flowShard(flow, shards int) int {
	return int(uint32(flow)*2654435761) % shards
}

// newBareShardedForwarder assembles the transmit-side state (schedulers,
// peekers) without sockets or goroutines, for oracle and alloc tests.
func newBareShardedForwarder(t testing.TB, shards int, sdp []float64) *Forwarder {
	t.Helper()
	f := &Forwarder{numClasses: len(sdp)}
	for i := 0; i < shards; i++ {
		s, err := core.New(core.KindWTP, sdp, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		f.scheds = append(f.scheds, s)
		f.peekers = append(f.peekers, s.(core.HeadPeeker))
	}
	return f
}

// The ordering oracle (deadline-merge correctness): replay a recorded
// arrival trace through N per-shard WTP instances merged by selectShard,
// against a single-queue WTP reference served at the same instants.
//
//   - distinct arrival stamps: the merged service order must be EXACTLY the
//     single-queue order, at every shard count — the per-shard peek names
//     what Dequeue serves, and the argmax over shard heads is the global
//     WTP selection.
//   - batch-quantized stamps (what per-batch time.Now() amortization
//     produces): the served (stamp, class) sequence must still be
//     elementwise identical to the single queue's — only packet IDs within
//     an equal-stamp equal-class group may permute, because their relative
//     order is the one thing single-queue WTP itself decides arbitrarily
//     (FIFO on push order). The ID-level inversions that permutation
//     induces are counted and logged as the measured inversion error.
func TestForwarderMergeOrderingOracle(t *testing.T) {
	sdp := []float64{1, 2, 4, 8}
	const n = 4000
	for _, shards := range []int{1, 2, 8} {
		for _, quantized := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d/distinct", shards)
			if quantized {
				name = fmt.Sprintf("shards=%d/batched", shards)
			}
			t.Run(name, func(t *testing.T) {
				ref, err := core.New(core.KindWTP, sdp, 1e6)
				if err != nil {
					t.Fatal(err)
				}
				f := newBareShardedForwarder(t, shards, sdp)

				type pktInfo struct {
					arrival float64
					class   int
				}
				info := make(map[uint64]pktInfo, n)
				type arrival struct {
					at    float64
					class int
					shard int
					id    uint64
				}
				rng := rand.New(rand.NewSource(7))
				trace := make([]arrival, n)
				now := 0.0
				for i := range trace {
					now += rng.Float64() * 0.002
					at := now
					if quantized {
						// 10 ms quantum ≈ one received batch's shared stamp.
						at = math.Floor(now/0.010) * 0.010
					}
					trace[i] = arrival{
						at:    at,
						class: rng.Intn(len(sdp)),
						shard: flowShard(rng.Intn(64), shards),
						id:    uint64(i + 1),
					}
					info[trace[i].id] = pktInfo{arrival: at, class: trace[i].class}
				}

				// Serve both systems at identical instants, slightly slower
				// than the mean arrival rate so a backlog builds and WTP
				// priorities actually compete.
				const svcGap = 0.0015
				refOrder := make([]uint64, 0, n)
				mergedOrder := make([]uint64, 0, n)
				ti, backlog := 0, 0
				svcAt := 0.0
				for len(refOrder) < n {
					for ti < n && trace[ti].at <= svcAt {
						a := trace[ti]
						ref.Enqueue(&core.Packet{ID: a.id, Class: a.class, Size: 100, Arrival: a.at}, a.at)
						f.scheds[a.shard].Enqueue(&core.Packet{ID: a.id, Class: a.class, Size: 100, Arrival: a.at}, a.at)
						ti++
						backlog++
					}
					if backlog == 0 {
						svcAt = trace[ti].at // idle: jump to the next arrival
						continue
					}
					pRef := ref.Dequeue(svcAt)
					f.backlog = backlog
					si := f.selectShard(svcAt)
					if si < 0 {
						t.Fatalf("selectShard found nothing with backlog %d", backlog)
					}
					pM := f.scheds[si].Dequeue(svcAt)
					if pRef == nil || pM == nil {
						t.Fatalf("dequeue returned nil with backlog %d", backlog)
					}
					backlog--
					refOrder = append(refOrder, pRef.ID)
					mergedOrder = append(mergedOrder, pM.ID)
					svcAt += svcGap
				}

				if !quantized {
					for i := range refOrder {
						if refOrder[i] != mergedOrder[i] {
							t.Fatalf("service %d: merged served packet %d, single-queue served %d",
								i, mergedOrder[i], refOrder[i])
						}
					}
					return
				}

				// Quantized stamps: the (stamp, class) service sequences
				// must agree at every position — the merge may only permute
				// IDs inside equal-stamp equal-class groups.
				for i := range refOrder {
					ri, mi := info[refOrder[i]], info[mergedOrder[i]]
					if ri != mi {
						t.Fatalf("service %d: merged served (arr=%g class=%d), single-queue served (arr=%g class=%d)",
							i, mi.arrival, mi.class, ri.arrival, ri.class)
					}
				}
				// Measure the resulting ID-level inversion error.
				refPos := make(map[uint64]int, n)
				for i, id := range refOrder {
					refPos[id] = i
				}
				inversions := 0
				for i := 0; i < n; i++ {
					for j := i + 1; j < n; j++ {
						if refPos[mergedOrder[i]] > refPos[mergedOrder[j]] {
							inversions++
						}
					}
				}
				t.Logf("shards=%d: service sequence exact; %d ID-level inversions over %d packets from equal-stamp groups",
					shards, inversions, n)
			})
		}
	}
}

// The zero-allocation gate for the trusted-header ingress path: once the
// packet and payload-buffer free rings are warm, processing a batch —
// decode, admission accounting, telemetry arrival, packet build, ring
// publication — must not allocate.
func TestIngressProcessBatchAllocs(t *testing.T) {
	f, sh, slots := newBareIngress(t, 8)
	drain := func() {
		for {
			p := sh.xmit.Pop()
			if p == nil {
				return
			}
			f.statMu.Lock()
			f.queued--
			f.classQueued[p.Class]--
			f.statMu.Unlock()
			f.recycle(0, p)
		}
	}
	nowT := time.Now()
	// Warm the free rings and telemetry.
	for i := 0; i < 4; i++ {
		sh.processBatch(slots, nowT)
		drain()
	}
	allocs := testing.AllocsPerRun(200, func() {
		sh.processBatch(slots, nowT)
		drain()
	})
	if allocs != 0 {
		t.Fatalf("trusted-header ingress path allocates %.1f times per batch, want 0", allocs)
	}
}

// newBareIngress builds a socketless shard plus a batch of decodable
// trusted-header slots for alloc and throughput measurement.
func newBareIngress(t testing.TB, batch int) (*Forwarder, *ingressShard, []recvSlot) {
	t.Helper()
	sdp := []float64{1, 2, 4, 8}
	f := newBareShardedForwarder(t, 1, sdp)
	f.cfg = Config{MaxPackets: 512}.withDefaults()
	f.epoch = time.Now()
	f.telem = telemetry.NewWithSDP(sdp)
	f.classQueued = make([]int, len(sdp))
	f.shardStats = make([]ShardStats, 1)
	sh := newIngressShard(f, 0, &batchConn{})
	f.shards = []*ingressShard{sh}
	slots := make([]recvSlot, batch)
	for i := range slots {
		dg := Header{Class: uint8(i % 4), Seq: uint64(i), SentAt: time.Now()}.Encode(nil)
		slots[i].buf = append(dg, make([]byte, 100)...)
	}
	return f, sh, slots
}

func BenchmarkIngressProcessBatch(b *testing.B) {
	f, sh, slots := newBareIngress(b, defaultIOBatch)
	drain := func() {
		for {
			p := sh.xmit.Pop()
			if p == nil {
				return
			}
			f.statMu.Lock()
			f.queued--
			f.classQueued[p.Class]--
			f.statMu.Unlock()
			f.recycle(0, p)
		}
	}
	nowT := time.Now()
	sh.processBatch(slots, nowT)
	drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.processBatch(slots, nowT)
		drain()
	}
	b.ReportMetric(float64(b.N*len(slots))/b.Elapsed().Seconds(), "packets/sec")
}

// End-to-end throughput over loopback at an effectively unpaced rate:
// measures the full sharded data plane (batched receive, merge, batched
// egress) in packets per second.
func BenchmarkForwarderThroughput(b *testing.B) {
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				b.Fatal(err)
			}
			defer sink.Close()
			go func() {
				buf := make([]byte, 2048)
				for {
					if _, _, err := sink.ReadFromUDP(buf); err != nil {
						return
					}
				}
			}()
			fwd, err := Listen(Config{
				Listen:     "127.0.0.1:0",
				Forward:    sink.LocalAddr().String(),
				RateBps:    1e12, // never the bottleneck
				MaxPackets: 4096,
				Shards:     shards,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer fwd.Close()
			conn, err := net.DialUDP("udp", nil, fwd.LocalAddr().(*net.UDPAddr))
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			bc, err := newBatchConn(conn, defaultIOBatch)
			if err != nil {
				b.Fatal(err)
			}
			dg := Header{Class: 1, SentAt: time.Now()}.Encode(nil)
			dg = append(dg, make([]byte, 100)...)
			payloads := make([][]byte, defaultIOBatch)
			for i := range payloads {
				payloads[i] = dg
			}
			b.ResetTimer()
			sent := 0
			for sent < b.N {
				k := b.N - sent
				if k > len(payloads) {
					k = len(payloads)
				}
				n, err := bc.WriteBatch(payloads[:k])
				if err != nil {
					b.Fatal(err)
				}
				sent += n
			}
			// Wait for ingress to quiesce: blasting an unpaced loopback
			// socket overflows kernel buffers, so some datagrams never
			// arrive — a plateau in Received, not Received == b.N, is the
			// end of the measurement.
			deadline := time.Now().Add(10 * time.Second)
			var last uint64
			lastChange := time.Now()
			for time.Now().Before(deadline) {
				st := fwd.Stats()
				if st.Received >= uint64(b.N) {
					break
				}
				if st.Received != last {
					last = st.Received
					lastChange = time.Now()
				} else if time.Since(lastChange) > 250*time.Millisecond {
					break
				}
				time.Sleep(time.Millisecond)
			}
			b.StopTimer()
			st := fwd.Stats()
			b.ReportMetric(float64(st.Received)/b.Elapsed().Seconds(), "packets/sec")
			if st.Received == 0 {
				b.Fatal("forwarder received nothing")
			}
		})
	}
}

// Multi-shard sockets join one REUSEPORT group: same port, N sockets —
// or fall back honestly to a shared socket.
func TestListenShardsGroup(t *testing.T) {
	conns, shared, err := listenShards("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if shared {
		if len(conns) != 1 {
			t.Fatalf("shared mode with %d sockets", len(conns))
		}
		t.Skip("SO_REUSEPORT unavailable here; shared-socket fallback verified")
	}
	if len(conns) != 4 {
		t.Fatalf("got %d sockets, want 4", len(conns))
	}
	port := conns[0].LocalAddr().(*net.UDPAddr).Port
	for i, c := range conns {
		if p := c.LocalAddr().(*net.UDPAddr).Port; p != port {
			t.Fatalf("socket %d bound port %d, want %d", i, p, port)
		}
	}
}
