package link

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/mg1"
	"pdds/internal/traffic"
)

// With Poisson arrivals the FCFS link is an M/G/1 queue, so the measured
// mean waiting time must match the Pollaczek–Khinchine formula
// W = λ·E[S²]/(2(1−ρ)). This pins the whole pipeline — arrival process,
// size sampling, event loop, delay accounting — to closed-form theory.
func TestFCFSPoissonMatchesPollaczekKhinchine(t *testing.T) {
	const rho = 0.80
	sizes := traffic.PaperSizes()
	rate := PaperLinkRate

	res, err := Run(RunConfig{
		Kind: core.KindFCFS,
		SDP:  []float64{1, 2, 4, 8},
		Load: traffic.LoadSpec{
			Rho:       rho,
			Fractions: []float64{0.40, 0.30, 0.20, 0.10},
			Sizes:     sizes,
			Poisson:   true,
		},
		Horizon: 2e6,
		Warmup:  1e5,
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}

	// E[S] and E[S²] of the service time S = bytes/rate for the
	// trimodal size distribution.
	var es, es2 float64
	for _, sz := range []struct {
		bytes float64
		p     float64
	}{{40, 0.40}, {550, 0.50}, {1500, 0.10}} {
		s := sz.bytes / rate
		es += sz.p * s
		es2 += sz.p * s * s
	}
	lambda := rho / es
	want := lambda * es2 / (2 * (1 - rho))

	// Pool the per-class means into the aggregate mean weighted by
	// packet counts (FCFS treats classes identically).
	var sum float64
	var n uint64
	for c := 0; c < 4; c++ {
		w := res.Delays.Class(c)
		sum += w.Mean() * float64(w.Count())
		n += w.Count()
	}
	got := sum / float64(n)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("M/G/1 FCFS wait = %.2f, P-K predicts %.2f (rel err %.1f%%)",
			got, want, rel*100)
	}
}

// The additive scheduler (§2.1, Eq. 3) tends to constant delay
// *differences* D_ij = s_j − s_i under heavy load, in contrast to WTP's
// constant ratios.
func TestAdditiveConstantDifferencesHeavyLoad(t *testing.T) {
	// Uniform Poisson load keeps every class queue busy enough to sit
	// in the additive scheduler's convergence regime; with the skewed
	// Pareto default the sparse high classes go empty too often for the
	// constant-difference limit to apply (the paper itself notes these
	// mechanisms need "sufficiently heavy" per-class load).
	const step = 100.0 // offsets in time units
	res, err := Run(RunConfig{
		Kind: core.KindAdditive,
		SDP:  []float64{1, 1 + step, 1 + 2*step, 1 + 3*step},
		Load: traffic.LoadSpec{
			Rho:       0.99,
			Fractions: []float64{0.25, 0.25, 0.25, 0.25},
			Sizes:     traffic.PaperSizes(),
			Poisson:   true,
		},
		Horizon: 2e6,
		Warmup:  2e5,
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c+1 < 4; c++ {
		diff := res.Delays.Mean(c) - res.Delays.Mean(c+1)
		if math.Abs(diff-step)/step > 0.25 {
			t.Errorf("additive d%d-d%d = %.1f, want ≈%.0f", c+1, c+2, diff, step)
		}
	}
}

// WTP with two Poisson classes under heavy load: the mean-delay ratio must
// approach s2/s1 (Eq. 13) — the Poisson counterpart of the Pareto
// experiments, closer to Kleinrock's original analysis setting.
func TestWTPPoissonHeavyLoadRatio(t *testing.T) {
	res, err := Run(RunConfig{
		Kind: core.KindWTP,
		SDP:  []float64{1, 4},
		Load: traffic.LoadSpec{
			Rho:       0.97,
			Fractions: []float64{0.5, 0.5},
			Sizes:     traffic.PaperSizes(),
			Poisson:   true,
		},
		Horizon: 2e6,
		Warmup:  2e5,
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Delays.Mean(0) / res.Delays.Mean(1)
	if ratio < 3.2 || ratio > 4.8 {
		t.Fatalf("WTP Poisson heavy-load ratio = %.2f, want ≈4", ratio)
	}
}

// Strict priority is the limiting case of differentiation: the ratio
// between the lowest and highest class must far exceed any finite SDP
// target, and the highest class's delay must be tiny — "no knob" (§2.1).
func TestStrictPriorityExtremeDifferentiation(t *testing.T) {
	res, err := Run(RunConfig{
		Kind:    core.KindStrict,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 1e6,
		Warmup:  1e5,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.Delays.Mean(0) / res.Delays.Mean(3)
	if ratio < 20 {
		t.Fatalf("strict d1/d4 = %.1f, expected extreme (>20)", ratio)
	}
	// The top class waits at most ~one residual transmission on
	// average: well under a p-unit times a small factor.
	if res.Delays.Mean(3) > 2*PUnit {
		t.Fatalf("strict top-class delay %.1f too large", res.Delays.Mean(3))
	}
}

// With Poisson arrivals the strict-priority scheduler is the classical
// nonpreemptive M/G/1 priority queue, whose per-class mean waits are given
// exactly by Cobham's formula. Matching all four classes against theory
// validates arrivals, scheduling, and measurement jointly — far stronger
// than the aggregate P-K check.
func TestStrictPoissonMatchesCobham(t *testing.T) {
	const rho = 0.90
	fractions := []float64{0.40, 0.30, 0.20, 0.10}
	res, err := Run(RunConfig{
		Kind: core.KindStrict,
		SDP:  []float64{1, 2, 4, 8},
		Load: traffic.LoadSpec{
			Rho:       rho,
			Fractions: fractions,
			Sizes:     traffic.PaperSizes(),
			Poisson:   true,
		},
		Horizon: 4e6,
		Warmup:  2e5,
		Seed:    17,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mg1.MomentsFromSizes([]int64{40, 550, 1500}, []float64{0.4, 0.5, 0.1}, PaperLinkRate)
	if err != nil {
		t.Fatal(err)
	}
	lambda := make([]float64, 4)
	for i, f := range fractions {
		lambda[i] = f * rho / m.Mean
	}
	want, err := mg1.PriorityWaits(lambda, m)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 4; c++ {
		got := res.Delays.Mean(c)
		if rel := math.Abs(got-want[c]) / want[c]; rel > 0.08 {
			t.Errorf("class %d wait = %.2f, Cobham predicts %.2f (rel err %.1f%%)",
				c+1, got, want[c], rel*100)
		}
	}
}
