// Package link drives a core.Scheduler as the output queue of a simulated
// work-conserving transmission link, and provides the single-link
// experiment harness used throughout Study A (§5).
package link

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/sim"
	"pdds/internal/telemetry"
)

// Link is a work-conserving output link: arriving packets enter the
// scheduler; whenever the transmitter is free and a packet is backlogged,
// the scheduler picks one and the link transmits it at Rate bytes per time
// unit. Infinite buffering is the paper's §3 lossless model (ECN-governed
// sources); set MaxPackets for the finite-buffer extension.
type Link struct {
	engine *sim.Engine
	rate   float64
	sched  core.Scheduler

	// OnDepart, if set, observes every packet as its transmission
	// completes (Start/Departure/QueueingDelay already filled in).
	OnDepart func(*core.Packet)

	// MaxPackets bounds the total queued packets (0 = unbounded). On
	// overflow the victim is chosen by Dropper if set (push-out PLR
	// policy), else the arriving packet is dropped (drop-tail).
	MaxPackets int
	// Dropper selects overflow victims (proportional or strict loss
	// differentiation); optional.
	Dropper core.DropPolicy
	// OnDrop, if set, observes dropped packets.
	OnDrop func(*core.Packet)

	// Telemetry, if set, receives per-class arrival/departure/drop
	// counts and queueing-delay samples for every packet (live
	// observability; see internal/telemetry). Each event costs one
	// branch when unset.
	Telemetry *telemetry.Registry

	// Pool, if set, receives every packet this link terminates — after
	// OnDepart returns for departures, after OnDrop returns for drops —
	// so the per-packet hot path recycles instead of allocating. Set it
	// only when this link is the packet's last stop: multi-hop harnesses
	// that forward packets onward from OnDepart must leave it nil and
	// recycle at the path's exit points instead. Callbacks must not
	// retain the *Packet (see core.PacketPool).
	Pool *core.PacketPool

	busy      bool
	busySince float64
	busyTime  float64
	departed  uint64
	dropped   uint64
	txBytes   int64
	inflight  *core.Packet
}

// New returns a link on the engine with the given rate (bytes per time
// unit) and scheduler.
func New(engine *sim.Engine, rate float64, sched core.Scheduler) *Link {
	if engine == nil || sched == nil {
		panic("link: nil engine or scheduler")
	}
	if !(rate > 0) {
		panic(fmt.Sprintf("link: rate %g must be > 0", rate))
	}
	return &Link{engine: engine, rate: rate, sched: sched}
}

// Rate returns the link rate in bytes per time unit.
func (l *Link) Rate() float64 { return l.rate }

// SetRate changes the link rate, effective for transmissions started after
// the call; a transmission already in flight completes at the old rate
// (its completion event is scheduled). Chaos/scenario harnesses use it to
// model capacity changes (rerouting, rate renegotiation) mid-run. Rate-
// aware schedulers (BPR's fluid split) are informed through their own
// SetRate.
func (l *Link) SetRate(rate float64) {
	if !(rate > 0) {
		panic(fmt.Sprintf("link: rate %g must be > 0", rate))
	}
	l.rate = rate
	if ra, ok := l.sched.(interface{ SetRate(float64) }); ok {
		ra.SetRate(rate)
	}
}

// Scheduler returns the attached scheduler.
func (l *Link) Scheduler() core.Scheduler { return l.sched }

// Departed returns the number of completed transmissions.
func (l *Link) Departed() uint64 { return l.departed }

// Dropped returns the number of packets lost to buffer overflow.
func (l *Link) Dropped() uint64 { return l.dropped }

// BusyTime returns the cumulative transmitter busy time (updated through
// the current instant).
func (l *Link) BusyTime() float64 {
	if l.busy {
		return l.busyTime + (l.engine.Now() - l.busySince)
	}
	return l.busyTime
}

// Utilization returns BusyTime divided by elapsed simulation time.
func (l *Link) Utilization() float64 {
	now := l.engine.Now()
	if now == 0 {
		return 0
	}
	return l.BusyTime() / now
}

// TxBytes returns the total bytes transmitted.
func (l *Link) TxBytes() int64 { return l.txBytes }

// Busy reports whether a transmission is in progress.
func (l *Link) Busy() bool { return l.busy }

// Arrive delivers a packet to the link at the current simulation time.
// It restamps the packet's hop-local Arrival, so the same packet object can
// traverse multiple links (Study B).
func (l *Link) Arrive(p *core.Packet) {
	now := l.engine.Now()
	p.Arrival = now
	if l.Telemetry != nil {
		l.Telemetry.Arrival(p.Class, p.Size, now)
	}
	if l.Dropper != nil {
		l.Dropper.RecordArrival(p.Class)
	}
	if l.MaxPackets > 0 && l.totalQueued() >= l.MaxPackets {
		l.drop(p)
		return
	}
	l.sched.Enqueue(p, now)
	if !l.busy {
		l.startService()
	}
}

func (l *Link) totalQueued() int {
	total := 0
	for i := 0; i < l.sched.NumClasses(); i++ {
		total += l.sched.Len(i)
	}
	return total
}

// drop handles a buffer overflow for arriving packet p.
func (l *Link) drop(p *core.Packet) {
	victim := p
	if l.Dropper != nil {
		class := l.Dropper.Victim(l.sched, p.Class)
		if class != p.Class {
			if td, ok := l.sched.(core.TailDropper); ok {
				if evicted := td.DropTail(class); evicted != nil {
					// Push out the victim and admit p.
					l.sched.Enqueue(p, l.engine.Now())
					victim = evicted
				}
			}
		}
		l.Dropper.RecordLoss(victim.Class)
	}
	l.dropped++
	if l.Telemetry != nil {
		l.Telemetry.Drop(victim.Class, l.engine.Now())
	}
	if l.OnDrop != nil {
		l.OnDrop(victim)
	}
	wasVictimArriving := victim == p
	if l.Pool != nil {
		l.Pool.Put(victim)
	}
	if !wasVictimArriving && !l.busy {
		l.startService()
	}
}

// linkFinish is the shared transmission-completion event body: a
// package-level func with the *Link as argument, so completing a packet
// schedules no closure (see sim.AtFunc). A link transmits at most one
// packet at a time, so the in-flight packet lives in the Link itself.
func linkFinish(arg any) { arg.(*Link).finish() }

func (l *Link) startService() {
	now := l.engine.Now()
	p := l.sched.Dequeue(now)
	if p == nil {
		return
	}
	l.busy = true
	l.busySince = now
	p.Start = now
	l.inflight = p
	txTime := float64(p.Size) / l.rate
	l.engine.AfterFunc(txTime, linkFinish, l)
}

func (l *Link) finish() {
	p := l.inflight
	l.inflight = nil
	now := l.engine.Now()
	p.Departure = now
	p.QueueingDelay += p.Wait()
	p.Hops++
	l.departed++
	l.txBytes += p.Size
	l.busyTime += now - l.busySince
	l.busy = false
	if l.Telemetry != nil {
		l.Telemetry.Departure(p.Class, p.Size, now, p.Wait())
	}
	if l.OnDepart != nil {
		l.OnDepart(p)
	}
	if l.Pool != nil {
		l.Pool.Put(p)
	}
	if l.sched.Backlogged() {
		l.startService()
	}
}
