package link

import (
	"fmt"

	"pdds/internal/core"
	"pdds/internal/sim"
	"pdds/internal/stats"
	"pdds/internal/telemetry"
	"pdds/internal/traffic"
)

// PaperLinkRate is the Study A link rate in bytes per time unit, chosen so
// the mean 441-byte packet takes one "p-unit" of 11.2 time units (§5).
const PaperLinkRate = 441.0 / 11.2

// PUnit is the average packet transmission time of Study A in time units.
const PUnit = 11.2

// RunConfig describes one single-link simulation run.
type RunConfig struct {
	// Kind selects the scheduler; SDP are its differentiation
	// parameters (one per class).
	Kind core.Kind
	SDP  []float64
	// Load is the offered workload.
	Load traffic.LoadSpec
	// LinkRate is the link speed in bytes per time unit
	// (default PaperLinkRate).
	LinkRate float64
	// Horizon is the simulated duration in time units.
	Horizon float64
	// Warmup discards packets departing before this time from the
	// result statistics (observers still see them).
	Warmup float64
	// Seed drives all randomness in the run.
	Seed uint64
	// Observers see every departing packet (before warm-up filtering);
	// used for interval trackers and series capture. Observers must copy
	// out any fields they need and must not retain the *Packet: the run
	// recycles packets through a per-run free list as soon as every
	// observer has returned (see core.PacketPool).
	Observers []func(*core.Packet)
	// MaxPackets and Dropper configure the finite-buffer extension;
	// zero/nil reproduces the paper's lossless model.
	MaxPackets int
	Dropper    core.DropPolicy
	// CalendarQueue backs the engine with the calendar queue instead of
	// the binary heap. The two structures are order-equivalent, so
	// results are bit-identical; the calendar is faster for large
	// pending-event sets.
	CalendarQueue bool
	// Telemetry, if set, is attached to the link for live per-class
	// observability (counters, delay histograms, streaming ratios).
	Telemetry *telemetry.Registry
}

func (c *RunConfig) withDefaults() RunConfig {
	out := *c
	if out.LinkRate == 0 {
		out.LinkRate = PaperLinkRate
	}
	return out
}

// Validate checks the configuration.
func (c *RunConfig) Validate() error {
	cc := c.withDefaults()
	if len(cc.SDP) == 0 {
		return fmt.Errorf("link: no SDPs")
	}
	if len(cc.SDP) != len(cc.Load.Fractions) {
		return fmt.Errorf("link: %d SDPs but %d class fractions", len(cc.SDP), len(cc.Load.Fractions))
	}
	if !(cc.Horizon > 0) {
		return fmt.Errorf("link: horizon %g must be > 0", cc.Horizon)
	}
	if cc.Warmup < 0 || cc.Warmup >= cc.Horizon {
		return fmt.Errorf("link: warmup %g outside [0, horizon)", cc.Warmup)
	}
	return cc.Load.Validate()
}

// Result summarizes a single-link run.
type Result struct {
	// Delays holds post-warm-up per-class queueing delays.
	Delays *stats.ClassDelays
	// Utilization is the realized link utilization over the run.
	Utilization float64
	// Generated and Departed count packets over the whole run
	// (including warm-up); Dropped counts buffer losses.
	Generated uint64
	Departed  uint64
	Dropped   uint64
	// SchedulerName echoes the discipline that ran.
	SchedulerName string
}

// MeanDelayPUnits returns class i's mean delay in p-units.
func (r *Result) MeanDelayPUnits(i int) float64 { return r.Delays.Mean(i) / PUnit }

// Run executes one single-link simulation and returns its statistics.
func Run(cfg RunConfig) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	sched, err := core.New(c.Kind, c.SDP, c.LinkRate)
	if err != nil {
		return nil, err
	}
	return runWith(sched, c)
}

// RunWithScheduler executes one single-link simulation with a pre-built
// scheduler — for disciplines needing non-default construction (e.g. HPD
// with a specific mixing factor). cfg.Kind is ignored.
func RunWithScheduler(sched core.Scheduler, cfg RunConfig) (*Result, error) {
	if sched == nil {
		return nil, fmt.Errorf("link: nil scheduler")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sched.NumClasses() != len(cfg.SDP) {
		return nil, fmt.Errorf("link: scheduler has %d classes, config %d", sched.NumClasses(), len(cfg.SDP))
	}
	return runWith(sched, cfg.withDefaults())
}

func runWith(sched core.Scheduler, cfg RunConfig) (*Result, error) {
	engine := sim.NewEngine()
	if cfg.CalendarQueue {
		engine = sim.NewEngineCalendar()
	}
	l := New(engine, cfg.LinkRate, sched)
	l.MaxPackets = cfg.MaxPackets
	l.Dropper = cfg.Dropper
	l.Telemetry = cfg.Telemetry
	// Per-run free list: the link is the terminal hop, so every departed
	// or dropped packet is recycled back to the sources.
	pool := core.NewPacketPool()
	l.Pool = pool

	delays := stats.NewClassDelays(len(cfg.SDP))
	l.OnDepart = func(p *core.Packet) {
		if p.Departure >= cfg.Warmup {
			delays.Observe(p)
		}
		for _, ob := range cfg.Observers {
			ob(p)
		}
	}

	sources, err := cfg.Load.Build(cfg.LinkRate, cfg.Seed)
	if err != nil {
		return nil, err
	}
	for _, s := range sources {
		s.Pool = pool
	}
	var generated uint64
	traffic.StartAll(engine, sources, func(p *core.Packet) {
		generated++
		l.Arrive(p)
	})

	engine.RunUntil(cfg.Horizon)

	return &Result{
		Delays:        delays,
		Utilization:   l.Utilization(),
		Generated:     generated,
		Departed:      l.Departed(),
		Dropped:       l.Dropped(),
		SchedulerName: sched.Name(),
	}, nil
}
