package link

import (
	"math"
	"testing"

	"pdds/internal/core"
	"pdds/internal/sim"
	"pdds/internal/traffic"
)

func TestLinkTransmitsInOrderFCFS(t *testing.T) {
	engine := sim.NewEngine()
	l := New(engine, 100, core.NewFCFS(1)) // 100 B/tu
	var departs []uint64
	var times []float64
	l.OnDepart = func(p *core.Packet) {
		departs = append(departs, p.ID)
		times = append(times, p.Departure)
	}
	// Two back-to-back packets at t=0: 500 B (5 tu) then 300 B (3 tu).
	engine.At(0, func() {
		l.Arrive(&core.Packet{ID: 1, Size: 500})
		l.Arrive(&core.Packet{ID: 2, Size: 300})
	})
	engine.RunAll()
	if len(departs) != 2 || departs[0] != 1 || departs[1] != 2 {
		t.Fatalf("departures = %v", departs)
	}
	if math.Abs(times[0]-5) > 1e-12 || math.Abs(times[1]-8) > 1e-12 {
		t.Fatalf("departure times = %v, want [5 8]", times)
	}
	if l.Departed() != 2 || l.TxBytes() != 800 {
		t.Fatal("counters wrong")
	}
	// Busy 8 of 8 time units.
	if math.Abs(l.Utilization()-1) > 1e-12 {
		t.Fatalf("utilization = %g, want 1", l.Utilization())
	}
}

func TestLinkIdlePeriodAccounting(t *testing.T) {
	engine := sim.NewEngine()
	l := New(engine, 100, core.NewFCFS(1))
	engine.At(0, func() { l.Arrive(&core.Packet{ID: 1, Size: 500}) })
	engine.At(10, func() { l.Arrive(&core.Packet{ID: 2, Size: 500}) })
	engine.RunAll()
	// Busy 5+5 of 15 time units.
	if math.Abs(l.Utilization()-10.0/15.0) > 1e-12 {
		t.Fatalf("utilization = %g, want 2/3", l.Utilization())
	}
	if l.Busy() {
		t.Fatal("link busy after drain")
	}
}

func TestLinkWaitAndHopAccounting(t *testing.T) {
	engine := sim.NewEngine()
	l := New(engine, 100, core.NewFCFS(1))
	var second *core.Packet
	l.OnDepart = func(p *core.Packet) {
		if p.ID == 2 {
			second = p
		}
	}
	engine.At(0, func() {
		l.Arrive(&core.Packet{ID: 1, Size: 500})
		l.Arrive(&core.Packet{ID: 2, Size: 300})
	})
	engine.RunAll()
	if second == nil {
		t.Fatal("packet 2 never departed")
	}
	if second.Wait() != 5 || second.QueueingDelay != 5 || second.Hops != 1 {
		t.Fatalf("wait=%g qd=%g hops=%d, want 5/5/1", second.Wait(), second.QueueingDelay, second.Hops)
	}
}

func TestLinkValidation(t *testing.T) {
	engine := sim.NewEngine()
	for _, fn := range []func(){
		func() { New(nil, 1, core.NewFCFS(1)) },
		func() { New(engine, 0, core.NewFCFS(1)) },
		func() { New(engine, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinkDropTailOverflow(t *testing.T) {
	engine := sim.NewEngine()
	l := New(engine, 1, core.NewFCFS(1)) // slow link: 1 B/tu
	l.MaxPackets = 2
	var drops []uint64
	l.OnDrop = func(p *core.Packet) { drops = append(drops, p.ID) }
	engine.At(0, func() {
		l.Arrive(&core.Packet{ID: 1, Size: 100}) // in service
		l.Arrive(&core.Packet{ID: 2, Size: 100}) // queued
		l.Arrive(&core.Packet{ID: 3, Size: 100}) // queued (buffer now full)
		l.Arrive(&core.Packet{ID: 4, Size: 100}) // dropped
	})
	engine.RunAll()
	if l.Dropped() != 1 || len(drops) != 1 || drops[0] != 4 {
		t.Fatalf("dropped=%d drops=%v, want the arriving packet 4", l.Dropped(), drops)
	}
	if l.Departed() != 3 {
		t.Fatalf("departed = %d, want 3", l.Departed())
	}
}

func TestLinkPLRPushOut(t *testing.T) {
	// With a PLR dropper whose LDPs strongly protect class 1, an
	// overflow caused by a class-1 arrival should push out a class-0
	// packet instead.
	engine := sim.NewEngine()
	sched := core.NewWTP([]float64{1, 2})
	l := New(engine, 1, sched)
	l.MaxPackets = 2
	l.Dropper = core.NewPLRDropper([]float64{10, 1})
	var dropped []*core.Packet
	l.OnDrop = func(p *core.Packet) { dropped = append(dropped, p) }
	engine.At(0, func() {
		l.Arrive(&core.Packet{ID: 1, Class: 0, Size: 100}) // in service
		l.Arrive(&core.Packet{ID: 2, Class: 0, Size: 100})
		l.Arrive(&core.Packet{ID: 3, Class: 0, Size: 100})
		l.Arrive(&core.Packet{ID: 4, Class: 1, Size: 100}) // overflow
	})
	engine.RunAll()
	if len(dropped) != 1 || dropped[0].Class != 0 {
		t.Fatalf("dropped %v, want a class-0 victim", dropped)
	}
	// Packet 4 was admitted and departs.
	if l.Departed() != 3 {
		t.Fatalf("departed = %d, want 3", l.Departed())
	}
}

func TestRunConfigValidation(t *testing.T) {
	base := RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.9),
		Horizon: 1000,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []func(c *RunConfig){
		func(c *RunConfig) { c.SDP = nil },
		func(c *RunConfig) { c.SDP = []float64{1, 2} },
		func(c *RunConfig) { c.Horizon = 0 },
		func(c *RunConfig) { c.Warmup = 2000 },
		func(c *RunConfig) { c.Load.Rho = 0 },
	}
	for i, mutate := range bad {
		c := base
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunProducesDelays(t *testing.T) {
	res, err := Run(RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.9),
		Horizon: 100000,
		Warmup:  10000,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SchedulerName != "WTP" {
		t.Fatalf("scheduler = %q", res.SchedulerName)
	}
	if res.Generated == 0 || res.Departed == 0 {
		t.Fatal("no traffic flowed")
	}
	if math.Abs(res.Utilization-0.9) > 0.1 {
		t.Fatalf("utilization = %g, want ~0.9", res.Utilization)
	}
	for c := 0; c < 4; c++ {
		if res.Delays.Count(c) == 0 {
			t.Fatalf("class %d saw no departures", c)
		}
	}
	// Higher classes get lower mean delay.
	for c := 0; c+1 < 4; c++ {
		if !(res.Delays.Mean(c) > res.Delays.Mean(c+1)) {
			t.Fatalf("class %d delay %g not above class %d delay %g",
				c, res.Delays.Mean(c), c+1, res.Delays.Mean(c+1))
		}
	}
	if res.MeanDelayPUnits(0) <= res.MeanDelayPUnits(3) {
		t.Fatal("p-unit conversion broke ordering")
	}
}

func TestRunUnknownKind(t *testing.T) {
	_, err := Run(RunConfig{
		Kind:    "bogus",
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.9),
		Horizon: 100,
	})
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	cfg := RunConfig{
		Kind:    core.KindBPR,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 50000,
		Warmup:  5000,
		Seed:    99,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Departed != b.Departed || a.Delays.SumLW() != b.Delays.SumLW() {
		t.Fatal("same-seed runs diverged")
	}
	cfg.Seed = 100
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Departed == c.Departed && a.Delays.SumLW() == c.Delays.SumLW() {
		t.Fatal("different-seed runs identical")
	}
}

// The conservation law (§3, Eq. 5): on the same arrival trace, every
// work-conserving discipline leaves Σ L_p·W_p identical. Replay one trace
// through all schedulers and compare.
func TestConservationLawAcrossSchedulers(t *testing.T) {
	type arrival struct {
		class int
		size  int64
		time  float64
	}
	// Record a trace once.
	var trace []arrival
	loadSources, err := traffic.PaperLoad(0.95).Build(PaperLinkRate, 4242)
	if err != nil {
		t.Fatal(err)
	}
	recEngine := sim.NewEngine()
	traffic.StartAll(recEngine, loadSources, func(p *core.Packet) {
		trace = append(trace, arrival{p.Class, p.Size, p.Arrival})
	})
	recEngine.RunUntil(200000)
	if len(trace) < 5000 {
		t.Fatalf("trace too short: %d", len(trace))
	}

	replay := func(kind core.Kind) float64 {
		engine := sim.NewEngine()
		sched, err := core.New(kind, []float64{1, 2, 4, 8}, PaperLinkRate)
		if err != nil {
			t.Fatal(err)
		}
		l := New(engine, PaperLinkRate, sched)
		var sumLW float64
		var n uint64
		l.OnDepart = func(p *core.Packet) {
			sumLW += float64(p.Size) * p.Wait()
			n++
		}
		for _, a := range trace {
			a := a
			var id uint64
			engine.At(a.time, func() {
				id++
				l.Arrive(&core.Packet{ID: id, Class: a.class, Size: a.size})
			})
		}
		engine.RunAll() // drain everything: identical packet set departs
		if n != uint64(len(trace)) {
			t.Fatalf("%s: %d departures for %d arrivals", kind, n, len(trace))
		}
		return sumLW
	}

	ref := replay(core.KindFCFS)
	if ref <= 0 {
		t.Fatal("reference SumLW not positive")
	}
	for _, kind := range []core.Kind{core.KindWTP, core.KindBPR, core.KindStrict, core.KindWFQ, core.KindAdditive} {
		got := replay(kind)
		if rel := math.Abs(got-ref) / ref; rel > 1e-9 {
			t.Errorf("%s: SumLW %g differs from FCFS %g (rel %g) — conservation law violated",
				kind, got, ref, rel)
		}
	}
}

// Work conservation: the link must never idle while packets are queued.
// Audit by checking utilization equals offered-bytes/time when the run ends
// with an empty system.
func TestWorkConservation(t *testing.T) {
	engine := sim.NewEngine()
	sched := core.NewWTP([]float64{1, 2})
	l := New(engine, 10, sched)
	// Offered: 10 packets x 100 B = 1000 B = 100 tu of work, arriving
	// within 50 tu: busy time must be >= 100 tu exactly (no idling while
	// backlogged once the first packet arrives).
	for i := 0; i < 10; i++ {
		i := i
		engine.At(float64(i*5), func() {
			l.Arrive(&core.Packet{ID: uint64(i), Class: i % 2, Size: 100})
		})
	}
	engine.RunAll()
	if math.Abs(l.BusyTime()-100) > 1e-9 {
		t.Fatalf("busy time = %g, want exactly 100 (work conservation)", l.BusyTime())
	}
	// Last departure at t=0 arrival + 100 busy = 100 (arrivals never
	// starve the link: arrival 0 at t=0, work arrives faster than service).
	if engine.Now() != 100 {
		t.Fatalf("drain finished at %g, want 100", engine.Now())
	}
}

// Proposition 2: with R1 > R and s_i/s_j < 1 − R/R1 (s_i < s_j), a burst of
// consecutive class-j packets arriving from t0 at peak rate R1 is serviced
// entirely before any class-i packet that arrived at or after t0.
func TestProposition2WTPStarvation(t *testing.T) {
	const (
		R     = 1.0 // service rate, unit-size packets → 1 tu each
		R1    = 2.0 // peak input rate
		burst = 60
	)
	run := func(si, sj float64) (lowDeparture float64, lastBurstDeparture float64) {
		engine := sim.NewEngine()
		sched := core.NewWTP([]float64{si, sj})
		l := New(engine, R, sched)
		var lowDep, lastJ float64
		l.OnDepart = func(p *core.Packet) {
			if p.Class == 0 && p.ID == 1000 {
				lowDep = p.Departure
			}
			if p.Class == 1 && p.Departure > lastJ {
				lastJ = p.Departure
			}
		}
		// Pre-existing work keeps the transmitter busy through t0
		// ("independent of the backlog at t=0" — the proposition
		// compares queued packets, so the server must not be idle
		// when the burst begins).
		engine.At(0, func() {
			l.Arrive(&core.Packet{ID: 1, Class: 0, Size: 15})
		})
		t0 := 10.0
		// The watched class-i packet arrives at t0...
		engine.At(t0, func() {
			l.Arrive(&core.Packet{ID: 1000, Class: 0, Size: 1})
		})
		// ...and the class-j burst starts at t0, spacing 1/R1.
		for k := 0; k < burst; k++ {
			k := k
			engine.At(t0+float64(k)/R1, func() {
				l.Arrive(&core.Packet{ID: uint64(2000 + k), Class: 1, Size: 1})
			})
		}
		engine.RunAll()
		return lowDep, lastJ
	}

	// Condition satisfied: s_i/s_j = 1/4 < 1 − R/R1 = 1/2.
	lowDep, lastJ := run(1, 4)
	if !(lowDep > lastJ) {
		t.Fatalf("condition holds but class-i packet departed at %g before burst end %g",
			lowDep, lastJ)
	}
	// Condition violated: s_i/s_j = 3/4 > 1/2 — the class-i packet must
	// overtake part of the burst.
	lowDep, lastJ = run(3, 4)
	if !(lowDep < lastJ) {
		t.Fatalf("condition violated but class-i packet (%g) still waited for full burst (%g)",
			lowDep, lastJ)
	}
}

// Soak: a long heavy-load run exercising tens of millions of events,
// asserting stability invariants end to end. Skipped with -short.
func TestSoakLongHeavyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	res, err := Run(RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.97),
		Horizon: 1e7,
		Warmup:  1e6,
		Seed:    123,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Departed < 800000 {
		t.Fatalf("only %d departures in a 1e7 run", res.Departed)
	}
	if math.Abs(res.Utilization-0.97) > 0.03 {
		t.Fatalf("utilization = %.3f", res.Utilization)
	}
	for c := 0; c+1 < 4; c++ {
		r := res.Delays.Mean(c) / res.Delays.Mean(c+1)
		if r < 1.7 || r > 2.4 {
			t.Errorf("soak ratio[%d] = %.3f drifted from 2", c, r)
		}
	}
	// Queue must be stable: generated and departed within the final
	// backlog of each other (no unbounded buildup).
	if res.Generated-res.Departed > 20000 {
		t.Fatalf("backlog at end: %d packets", res.Generated-res.Departed)
	}
}

// StrictDropper: overflow victims come from the lowest backlogged class,
// regardless of the arriving packet's class.
func TestLinkStrictDropperVictimizesLowestClass(t *testing.T) {
	engine := sim.NewEngine()
	sched := core.NewWTP([]float64{1, 2})
	l := New(engine, 1, sched)
	l.MaxPackets = 2
	l.Dropper = core.NewStrictDropper(2)
	var dropped []*core.Packet
	l.OnDrop = func(p *core.Packet) { dropped = append(dropped, p) }
	engine.At(0, func() {
		l.Arrive(&core.Packet{ID: 1, Class: 1, Size: 100}) // in service
		l.Arrive(&core.Packet{ID: 2, Class: 0, Size: 100})
		l.Arrive(&core.Packet{ID: 3, Class: 1, Size: 100})
		l.Arrive(&core.Packet{ID: 4, Class: 1, Size: 100}) // overflow: class 0 pays
	})
	engine.RunAll()
	if len(dropped) != 1 || dropped[0].ID != 2 {
		t.Fatalf("dropped %v, want packet 2 (lowest backlogged class)", dropped)
	}
	d := l.Dropper.(*core.StrictDropper)
	if d.LossFraction(0) == 0 || d.LossFraction(1) != 0 {
		t.Fatalf("loss fractions: %g / %g", d.LossFraction(0), d.LossFraction(1))
	}
}

// The heap and calendar event queues are order-equivalent, so an entire
// simulation must produce bit-identical results under either backend.
func TestRunIdenticalAcrossEngineBackends(t *testing.T) {
	cfg := RunConfig{
		Kind:    core.KindWTP,
		SDP:     []float64{1, 2, 4, 8},
		Load:    traffic.PaperLoad(0.95),
		Horizon: 100000,
		Warmup:  10000,
		Seed:    77,
	}
	heap, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CalendarQueue = true
	cal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if heap.Departed != cal.Departed ||
		heap.Delays.SumLW() != cal.Delays.SumLW() ||
		heap.Utilization != cal.Utilization {
		t.Fatalf("engine backends diverged: heap %d/%g vs calendar %d/%g",
			heap.Departed, heap.Delays.SumLW(), cal.Departed, cal.Delays.SumLW())
	}
	for c := 0; c < 4; c++ {
		if heap.Delays.Mean(c) != cal.Delays.Mean(c) {
			t.Fatalf("class %d means differ: %g vs %g", c, heap.Delays.Mean(c), cal.Delays.Mean(c))
		}
	}
}
