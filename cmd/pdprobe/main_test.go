package main

import (
	"io"
	"net"
	"strings"
	"testing"

	"pdds"
)

// reservePort binds an ephemeral UDP port and releases it, returning the
// address so a probe receiver can claim it (run retries the bind briefly).
func reservePort(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	return addr
}

// TestRunSmoke probes a real in-process forwarder over loopback UDP and
// checks the report shape.
func TestRunSmoke(t *testing.T) {
	recvAddr := reservePort(t)
	fwd, err := pdds.StartForwarderWithConfig(pdds.ForwarderConfig{
		Listen:  "127.0.0.1:0",
		Forward: recvAddr,
		RateBps: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	var out strings.Builder
	err = run([]string{
		"-send", fwd.Addr().String(),
		"-recv", recvAddr,
		"-classes", "2", "-count", "20", "-size", "64",
		"-timeout", "5s",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"sent 40 datagrams (20 per class)",
		"class  received",
		"p50",
		"p95",
		"mean-delay ratio d1/d2 =",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	st := fwd.Stats()
	if st.Received == 0 {
		t.Error("forwarder received nothing")
	}
}

// TestRunNothingReceived probes a forwarder whose egress points at a
// blackhole port, not the probe's receiver: nothing comes back, and run
// must report that as an error. (Sending straight to a dead ingress would
// instead fail with ICMP connection-refused on loopback.)
func TestRunNothingReceived(t *testing.T) {
	blackhole := reservePort(t)
	recv := reservePort(t)
	fwd, err := pdds.StartForwarderWithConfig(pdds.ForwarderConfig{
		Listen:  "127.0.0.1:0",
		Forward: blackhole,
		RateBps: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	err = run([]string{
		"-send", fwd.Addr().String(), "-recv", recv,
		"-classes", "1", "-count", "2",
		"-timeout", "200ms",
	}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "nothing received") {
		t.Errorf("want 'nothing received' error, got %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-classes", "0"},
		{"-classes", "65"},
		{"-size", "10"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// TestRunBounds exercises the offline certification mode: the table must
// list every class with its share and a finite bound when the arrival
// envelope fits inside the guaranteed rate.
func TestRunBounds(t *testing.T) {
	for _, sched := range []string{"drr", "wfq", "iwrr"} {
		var out strings.Builder
		err := run([]string{"-bounds", "-sched", sched, "-sdp", "1,2,4,8",
			"-burst", "3000", "-arr", "0.05"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		got := out.String()
		for _, want := range []string{
			"sched=" + sched,
			"class", "share B/tu", "bound tu",
			"\n4", // the last class row
		} {
			if !strings.Contains(got, want) {
				t.Errorf("%s output missing %q:\n%s", sched, want, got)
			}
		}
		if strings.Contains(got, "unbounded") {
			t.Errorf("%s: tiny envelope reported unbounded:\n%s", sched, got)
		}
		if strings.Contains(got, "NaN") {
			t.Errorf("%s: NaN in output:\n%s", sched, got)
		}
	}
}

// TestRunBoundsUnbounded pins the explicit overload report: an arrival
// rate above the link rate can never be bounded.
func TestRunBoundsUnbounded(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-bounds", "-arr", "1000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "unbounded") {
		t.Errorf("overload not reported unbounded:\n%s", out.String())
	}
}

func TestRunBoundsErrors(t *testing.T) {
	cases := [][]string{
		{"-bounds", "-sdp", "x"},
		{"-bounds", "-sdp", ""},
		{"-bounds", "-rate", "0"},
		{"-bounds", "-burst", "-1"},
		{"-bounds", "-arr", "-1"},
		{"-bounds", "-sched", "wtp"},  // no closed-form strict service curve
		{"-bounds", "-sched", "nope"}, // unknown discipline
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
