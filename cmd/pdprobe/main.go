// Command pdprobe measures a pdfwd forwarder: it binds a local receiver,
// blasts classed datagrams at the forwarder's ingress, and reports
// per-class one-way delay statistics at the receiver, computing the
// observed differentiation ratios.
//
// Typical session (two terminals):
//
//	pdfwd   -listen 127.0.0.1:7000 -forward 127.0.0.1:7001 -rate 512000
//	pdprobe -send 127.0.0.1:7000 -recv 127.0.0.1:7001 -classes 4 -count 100
//
// pdprobe and pdfwd share the same clock only when run on the same host;
// across hosts the delays include clock offset (ratios remain meaningful
// if the offset is small relative to queueing).
//
// With -bounds the probe runs entirely offline instead: it prints the
// network-calculus service curve and worst-case delay bound per class
// for a round-robin scheduler (-sched drr|wfq|iwrr) against a
// token-bucket arrival envelope, using the same analysis that certifies
// the conformance scenarios (internal/netcalc):
//
//	pdprobe -bounds -sched drr -sdp 1,2,4,8 -burst 3000 -arr 2.5
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net"
	"os"
	"text/tabwriter"
	"time"

	"pdds"
	"pdds/internal/cliutil"
	"pdds/internal/conformance"
	"pdds/internal/core"
	"pdds/internal/link"
	"pdds/internal/netcalc"
	"pdds/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdprobe: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// listenUDPRetry binds addr, retrying briefly: a just-released port (e.g. a
// probe restarted against the same -recv address) can stay unavailable for
// a moment on some platforms.
func listenUDPRetry(addr string) (*net.UDPConn, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.ListenUDP("udp", laddr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// run executes the CLI against args, writing the report to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdprobe", flag.ContinueOnError)
	var (
		sendAddr = fs.String("send", "127.0.0.1:7000", "forwarder ingress address")
		recvAddr = fs.String("recv", "127.0.0.1:7001", "local address to receive forwarded datagrams on")
		classes  = fs.Int("classes", 4, "number of classes to probe")
		count    = fs.Int("count", 100, "datagrams per class")
		size     = fs.Int("size", 128, "datagram size including 18-byte header")
		timeout  = fs.Duration("timeout", 30*time.Second, "receive deadline")

		bounds = fs.Bool("bounds", false, "print analytic per-class delay bounds instead of probing")
		sched  = fs.String("sched", "drr", "scheduler for -bounds: drr, wfq or iwrr")
		sdpArg = fs.String("sdp", "1,2,4,8", "per-class weights for -bounds")
		rate   = fs.Float64("rate", link.PaperLinkRate, "link rate in bytes per time unit for -bounds")
		burst  = fs.Float64("burst", 3000, "arrival token-bucket burst in bytes for -bounds")
		arr    = fs.Float64("arr", 0, "arrival token-bucket rate in bytes per time unit for -bounds")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bounds {
		return runBounds(stdout, *sched, *sdpArg, *rate, *burst, *arr)
	}
	if *classes < 1 || *classes > 64 {
		return fmt.Errorf("-classes %d out of range", *classes)
	}
	if *size < 18 {
		return fmt.Errorf("-size must be >= 18 (header length)")
	}

	recv, err := listenUDPRetry(*recvAddr)
	if err != nil {
		return fmt.Errorf("bind receiver: %w", err)
	}
	defer recv.Close()

	send, err := net.Dial("udp", *sendAddr)
	if err != nil {
		return fmt.Errorf("dial forwarder: %w", err)
	}
	defer send.Close()

	// Send an interleaved burst so all classes compete for the egress.
	payload := make([]byte, *size-18)
	total := *classes * *count
	for i := 0; i < *count; i++ {
		for c := 0; c < *classes; c++ {
			dg := pdds.EncodeDatagram(uint8(c), uint64(i), payload)
			if _, err := send.Write(dg); err != nil {
				return fmt.Errorf("send: %w", err)
			}
		}
	}
	fmt.Fprintf(stdout, "sent %d datagrams (%d per class) to %s\n", total, *count, *sendAddr)

	samples := make([]stats.Sample, *classes)
	buf := make([]byte, 64*1024)
	received := 0
	recv.SetReadDeadline(time.Now().Add(*timeout))
	for received < total {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			fmt.Fprintf(stdout, "receive stopped after %d/%d datagrams: %v\n", received, total, err)
			break
		}
		class, _, sentAt, _, err := pdds.DecodeDatagram(buf[:n])
		if err != nil || int(class) >= *classes {
			continue
		}
		samples[class].Add(time.Since(sentAt).Seconds())
		received++
	}
	if received == 0 {
		return fmt.Errorf("nothing received — is pdfwd running and forwarding to -recv?")
	}

	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\treceived\tmean\tp50\tp95")
	means := make([]float64, *classes)
	for c := 0; c < *classes; c++ {
		s := &samples[c]
		if s.Len() == 0 {
			fmt.Fprintf(w, "%d\t0\t-\t-\t-\n", c+1)
			continue
		}
		means[c] = s.Mean()
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\n", c+1, s.Len(),
			fmtDur(s.Mean()), fmtDur(s.Quantile(0.5)), fmtDur(s.Quantile(0.95)))
	}
	w.Flush()
	for c := 0; c+1 < *classes; c++ {
		if means[c+1] > 0 {
			fmt.Fprintf(stdout, "mean-delay ratio d%d/d%d = %.2f\n", c+1, c+2, means[c]/means[c+1])
		}
	}
	return nil
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}

// runBounds prints each class's guaranteed service share, latency and
// worst-case delay bound for the given round-robin discipline against a
// common token-bucket arrival envelope — the offline face of the
// conformance suite's analytic certification axis. Times are in the
// simulation's abstract time units; with the default paper link rate
// one unit carries PUnit bytes.
func runBounds(stdout io.Writer, sched, sdpArg string, rate, burst, arr float64) error {
	sdp, err := cliutil.ParseFloats(sdpArg)
	if err != nil {
		return fmt.Errorf("-sdp: %w", err)
	}
	if !(rate > 0) {
		return fmt.Errorf("-rate %g must be > 0", rate)
	}
	if burst < 0 || arr < 0 {
		return fmt.Errorf("-burst and -arr must be >= 0")
	}
	kind := core.Kind(sched)
	// Paper packet sizes: the smallest/largest datagrams every class mixes.
	lmin := make([]float64, len(sdp))
	lmax := make([]float64, len(sdp))
	for i := range sdp {
		lmin[i], lmax[i] = 40, 1500
	}
	envelope := netcalc.TokenBucket(burst, arr)

	fmt.Fprintf(stdout, "analytic delay bounds: sched=%s rate=%.4g B/tu arrival=(burst %.4g B, rate %.4g B/tu)\n",
		sched, rate, burst, arr)
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\tweight\tshare B/tu\tlatency tu\tbound tu")
	for i := range sdp {
		curve, err := conformance.ServiceCurve(kind, sdp, rate, lmin, lmax, i)
		if err != nil {
			return err
		}
		bound := netcalc.HorizontalDeviation(envelope, curve)
		fmt.Fprintf(w, "%d\t%.4g\t%.4g\t%.4g\t%s\n",
			i+1, sdp[i], curve.Rate, curve.Inverse(1e-9), fmtBound(bound))
	}
	return w.Flush()
}

// fmtBound renders a delay bound, spelling out the unbounded case.
func fmtBound(b float64) string {
	if math.IsInf(b, 1) {
		return "unbounded"
	}
	return fmt.Sprintf("%.4g", b)
}
