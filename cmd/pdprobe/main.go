// Command pdprobe measures a pdfwd forwarder: it binds a local receiver,
// blasts classed datagrams at the forwarder's ingress, and reports
// per-class one-way delay statistics at the receiver, computing the
// observed differentiation ratios.
//
// Typical session (two terminals):
//
//	pdfwd   -listen 127.0.0.1:7000 -forward 127.0.0.1:7001 -rate 512000
//	pdprobe -send 127.0.0.1:7000 -recv 127.0.0.1:7001 -classes 4 -count 100
//
// pdprobe and pdfwd share the same clock only when run on the same host;
// across hosts the delays include clock offset (ratios remain meaningful
// if the offset is small relative to queueing).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"text/tabwriter"
	"time"

	"pdds"
	"pdds/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdprobe: ")

	var (
		sendAddr = flag.String("send", "127.0.0.1:7000", "forwarder ingress address")
		recvAddr = flag.String("recv", "127.0.0.1:7001", "local address to receive forwarded datagrams on")
		classes  = flag.Int("classes", 4, "number of classes to probe")
		count    = flag.Int("count", 100, "datagrams per class")
		size     = flag.Int("size", 128, "datagram size including 18-byte header")
		timeout  = flag.Duration("timeout", 30*time.Second, "receive deadline")
	)
	flag.Parse()
	if *classes < 1 || *classes > 64 {
		log.Fatalf("-classes %d out of range", *classes)
	}
	if *size < 18 {
		log.Fatal("-size must be >= 18 (header length)")
	}

	laddr, err := net.ResolveUDPAddr("udp", *recvAddr)
	if err != nil {
		log.Fatalf("-recv: %v", err)
	}
	recv, err := net.ListenUDP("udp", laddr)
	if err != nil {
		log.Fatalf("bind receiver: %v", err)
	}
	defer recv.Close()

	send, err := net.Dial("udp", *sendAddr)
	if err != nil {
		log.Fatalf("dial forwarder: %v", err)
	}
	defer send.Close()

	// Send an interleaved burst so all classes compete for the egress.
	payload := make([]byte, *size-18)
	total := *classes * *count
	for i := 0; i < *count; i++ {
		for c := 0; c < *classes; c++ {
			dg := pdds.EncodeDatagram(uint8(c), uint64(i), payload)
			if _, err := send.Write(dg); err != nil {
				log.Fatalf("send: %v", err)
			}
		}
	}
	fmt.Printf("sent %d datagrams (%d per class) to %s\n", total, *count, *sendAddr)

	samples := make([]stats.Sample, *classes)
	buf := make([]byte, 64*1024)
	received := 0
	recv.SetReadDeadline(time.Now().Add(*timeout))
	for received < total {
		n, _, err := recv.ReadFromUDP(buf)
		if err != nil {
			fmt.Printf("receive stopped after %d/%d datagrams: %v\n", received, total, err)
			break
		}
		class, _, sentAt, _, err := pdds.DecodeDatagram(buf[:n])
		if err != nil || int(class) >= *classes {
			continue
		}
		samples[class].Add(time.Since(sentAt).Seconds())
		received++
	}
	if received == 0 {
		log.Fatal("nothing received — is pdfwd running and forwarding to -recv?")
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\treceived\tmean\tp50\tp95")
	means := make([]float64, *classes)
	for c := 0; c < *classes; c++ {
		s := &samples[c]
		if s.Len() == 0 {
			fmt.Fprintf(w, "%d\t0\t-\t-\t-\n", c+1)
			continue
		}
		means[c] = s.Mean()
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%s\n", c+1, s.Len(),
			fmtDur(s.Mean()), fmtDur(s.Quantile(0.5)), fmtDur(s.Quantile(0.95)))
	}
	w.Flush()
	for c := 0; c+1 < *classes; c++ {
		if means[c+1] > 0 {
			fmt.Printf("mean-delay ratio d%d/d%d = %.2f\n", c+1, c+2, means[c]/means[c+1])
		}
	}
}

func fmtDur(seconds float64) string {
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}
