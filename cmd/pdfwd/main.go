// Command pdfwd runs the live UDP class-based forwarder: a single-hop
// DiffServ-style per-hop behaviour whose egress is scheduled by WTP (or
// any other supported discipline) at a configured rate.
//
// Datagrams must carry the pdds 18-byte header (version, class, sequence,
// send timestamp); see the examples/forwarder program for a matching
// traffic generator and delay probe.
//
// Example:
//
//	pdfwd -listen 127.0.0.1:7000 -forward 127.0.0.1:7001 -rate 1000000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"pdds"
	"pdds/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdfwd: ")

	var (
		listen  = flag.String("listen", "127.0.0.1:7000", "UDP ingress address")
		forward = flag.String("forward", "127.0.0.1:7001", "UDP egress destination")
		rate    = flag.Float64("rate", 1e6, "egress rate, bits per second")
		sched   = flag.String("sched", "wtp", "scheduler: wtp|bpr|strict|wfq|drr|additive|pad|hpd|fcfs")
		sdpStr  = flag.String("sdp", "1,2,4,8", "scheduler differentiation parameters")
		stats   = flag.Duration("stats", 5*time.Second, "stats print interval")
	)
	flag.Parse()

	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		log.Fatalf("-sdp: %v", err)
	}
	fwd, err := pdds.StartForwarder(*listen, *forward, pdds.SchedulerKind(*sched), sdp, *rate)
	if err != nil {
		log.Fatal(err)
	}
	defer fwd.Close()
	log.Printf("forwarding %s -> %s at %.0f bps with %s (SDP %v)",
		fwd.Addr(), *forward, *rate, *sched, sdp)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(*stats)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s := fwd.Stats()
			fmt.Printf("received=%d forwarded=%d dropped=%d bad-header=%d\n",
				s.Received, s.Forwarded, s.Dropped, s.BadHeader)
		case <-sig:
			s := fwd.Stats()
			log.Printf("shutting down: received=%d forwarded=%d dropped=%d bad-header=%d",
				s.Received, s.Forwarded, s.Dropped, s.BadHeader)
			return
		}
	}
}
