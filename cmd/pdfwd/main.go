// Command pdfwd runs the live UDP class-based forwarder: a single-hop
// DiffServ-style per-hop behaviour whose egress is scheduled by WTP (or
// any other supported discipline) at a configured rate.
//
// Datagrams must carry the pdds 18-byte header (version, class, sequence,
// send timestamp); see the examples/forwarder program for a matching
// traffic generator and delay probe.
//
// With -metrics-addr set, live per-class metrics (counters, delay
// histogram quantiles, adjacent-class delay ratios vs the configured
// SDPs) are served over HTTP at /metrics (JSON), /metrics?format=text
// (human view) and /debug/pprof/ (profiling), and a per-class summary
// line is printed at every stats interval.
//
// With -classes set, the forwarder becomes a classifying edge: a
// traffic-class config file names the classes, declares their delay
// differentiation parameters (from which the scheduler SDPs are
// derived), and attaches match filters; datagrams tagged with the
// ClassUnspecified byte (0xFF) or an out-of-range class are classified
// by flow identity and re-marked. See testdata/classes.conf for a
// worked example.
//
// With -adapt set, a closed-loop controller watches the measured
// adjacent-class delay ratios and retunes the live scheduler parameters
// whenever they drift from the SDP targets beyond a deadband — the
// periodic stats line then reports the retune count and the current
// parameter vector.
//
// Example:
//
//	pdfwd -listen 127.0.0.1:7000 -forward 127.0.0.1:7001 -rate 1000000 \
//	      -metrics-addr 127.0.0.1:8080 -adapt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"pdds"
	"pdds/internal/cliutil"
)

// options are pdfwd's parsed command-line settings.
type options struct {
	cfg      pdds.ForwarderConfig
	interval time.Duration
}

// parseArgs parses pdfwd's flags (without the program name) into options.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("pdfwd", flag.ContinueOnError)
	var (
		listen      = fs.String("listen", "127.0.0.1:7000", "UDP ingress address")
		forward     = fs.String("forward", "127.0.0.1:7001", "UDP egress destination")
		rate        = fs.Float64("rate", 1e6, "egress rate, bits per second")
		shards      = fs.Int("shards", 1, "parallel ingress shards (SO_REUSEPORT sockets; 1 = classic single-socket path)")
		sched       = fs.String("sched", "wtp", "scheduler: wtp|bpr|strict|wfq|drr|iwrr|pf|additive|pad|hpd|fcfs")
		sdpStr      = fs.String("sdp", "1,2,4,8", "scheduler differentiation parameters")
		stats       = fs.Duration("stats", 5*time.Second, "stats print interval")
		drain       = fs.Duration("drain", time.Second, "graceful drain budget on shutdown (0 = drop queued datagrams)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this HTTP address (empty = disabled)")
		classesPath = fs.String("classes", "", "traffic-class config file: classify untagged/unresolvable datagrams and derive SDPs from the declared DDPs")
		distrust    = fs.String("distrust-class", "false", "with -classes: classify every datagram from flow identity, ignoring in-range header class bytes (true|false)")
		flowTTL     = fs.Duration("flow-ttl", 2*time.Minute, "with -classes: idle eviction age for memoized flow→class decisions (0 = never expire)")
		adapt       = fs.Bool("adapt", false, "closed-loop adaptation: retune the live scheduler parameters whenever the measured delay ratios drift from the SDP targets (requires a retunable scheduler)")
		adaptEvery  = fs.Duration("adapt-interval", time.Second, "with -adapt: controller observation window")
	)
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	sdpSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "sdp" {
			sdpSet = true
		}
	})
	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		return options{}, fmt.Errorf("-sdp: %v", err)
	}
	distrustClass := *distrust == "true"
	if !distrustClass && *distrust != "false" {
		return options{}, fmt.Errorf("-distrust-class: want true or false, got %q", *distrust)
	}
	cfg := pdds.ForwarderConfig{
		Listen:         *listen,
		Forward:        *forward,
		Scheduler:      pdds.SchedulerKind(*sched),
		SDP:            sdp,
		RateBps:        *rate,
		Shards:         *shards,
		DrainTimeout:   *drain,
		MetricsAddr:    *metricsAddr,
		DistrustHeader: distrustClass,
		FlowTTL:        *flowTTL,
		Adapt:          *adapt,
		AdaptInterval:  *adaptEvery,
	}
	if *classesPath != "" {
		classes, err := pdds.LoadClassConfig(*classesPath)
		if err != nil {
			return options{}, fmt.Errorf("-classes: %v", err)
		}
		cfg.Classes = classes
		if !sdpSet {
			// Let the class config's DDPs drive the scheduler spacing
			// instead of the -sdp default.
			cfg.SDP = nil
		} else if len(sdp) != classes.NumClasses() {
			return options{}, fmt.Errorf("-sdp declares %d classes, -classes %q declares %d",
				len(sdp), *classesPath, classes.NumClasses())
		}
	} else if distrustClass {
		return options{}, fmt.Errorf("-distrust-class requires -classes")
	}
	return options{cfg: cfg, interval: *stats}, nil
}

// classTable renders the startup view of the loaded traffic classes.
func classTable(classes *pdds.ClassConfig, sdps []float64) string {
	var b strings.Builder
	names := classes.Names()
	ddps := classes.DDPs()
	def := classes.DefaultClass()
	for i, name := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%d=%s ddp=%g sdp=%g", i, name, ddps[i], sdps[i])
		if i == def {
			b.WriteString(" (default)")
		}
	}
	if def < 0 {
		b.WriteString("; no default: unmatched traffic counts as bad-class")
	}
	return b.String()
}

// summarize renders the periodic one-line status: aggregate counters plus
// per-class departures/backlog/p99, the live adjacent-class delay ratios
// from the telemetry registry, and — with -adapt — the controller's
// retune activity and current parameter vector.
func summarize(s pdds.ForwarderStats, classes []pdds.LiveClassStats, ratios []float64, adapt *pdds.ControlStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "received=%d forwarded=%d dropped=%d bad-header=%d bad-class=%d queued=%d",
		s.Received, s.Forwarded, s.Dropped, s.BadHeader, s.BadClass, s.Queued)
	for _, c := range classes {
		label := fmt.Sprintf("c%d", c.Class)
		if c.Name != "" {
			label = fmt.Sprintf("c%d[%s]", c.Class, c.Name)
		}
		fmt.Fprintf(&b, " %s=%d/%dq/%.1fms", label, c.Departures, c.Backlog, c.DelayP99*1e3)
	}
	if len(ratios) > 0 {
		parts := make([]string, len(ratios))
		for i, r := range ratios {
			parts[i] = fmt.Sprintf("%.2f", r)
		}
		fmt.Fprintf(&b, " ratios=%s", strings.Join(parts, ","))
	}
	if adapt != nil {
		fmt.Fprintf(&b, " retunes=%d", adapt.Retunes)
		if adapt.Params != nil {
			parts := make([]string, len(adapt.Params))
			for i, p := range adapt.Params {
				parts[i] = fmt.Sprintf("%g", p)
			}
			fmt.Fprintf(&b, " params=%s", strings.Join(parts, ","))
		}
	}
	return b.String()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdfwd: ")

	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		log.Fatal(err)
	}
	fwd, err := pdds.StartForwarderWithConfig(opts.cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer fwd.Close()
	sdp := opts.cfg.SDP
	if classes := opts.cfg.Classes; classes != nil {
		if sdp == nil {
			sdp = classes.SDPs()
		}
		log.Printf("classes: %s", classTable(classes, sdp))
	}
	log.Printf("forwarding %s -> %s at %.0f bps with %s (SDP %v)",
		fwd.Addr(), opts.cfg.Forward, opts.cfg.RateBps, opts.cfg.Scheduler, sdp)
	if ss := fwd.ShardStats(); len(ss) > 1 {
		note := ""
		if ss[0].SharedSocket {
			note = ", shared socket (no SO_REUSEPORT: flow pinning unavailable)"
		}
		log.Printf("ingress: %d shards, %s I/O%s", len(ss), ss[0].Mode, note)
	}
	if addr := fwd.MetricsAddr(); addr != nil {
		log.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)", addr)
	}

	if opts.cfg.Adapt {
		log.Printf("closed-loop adaptation on: observing every %s, retuning %s when measured ratios drift",
			opts.cfg.AdaptInterval, opts.cfg.Scheduler)
	}

	status := func() string {
		var cs *pdds.ControlStats
		if opts.cfg.Adapt {
			s := fwd.ControlStats()
			cs = &s
		}
		return summarize(fwd.Stats(), fwd.ClassStats(), fwd.DelayRatios(), cs)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	ticker := time.NewTicker(opts.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			fmt.Fprintln(os.Stderr, status())
		case <-sig:
			log.Printf("shutting down: %s", status())
			return
		}
	}
}
