package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pdds"
)

// listenUDPRetry binds addr, retrying briefly: on loaded CI machines a
// just-released port can stay unavailable for a moment.
func listenUDPRetry(t *testing.T, addr *net.UDPAddr) *net.UDPConn {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.ListenUDP("udp", addr)
		if err == nil {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatalf("bind %v: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitFor polls cond with a deadline instead of a fixed sleep, failing the
// test with desc if the condition never holds.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParseArgs(t *testing.T) {
	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0", "-forward", "127.0.0.1:9",
		"-rate", "250000", "-sdp", "1,4", "-metrics-addr", "127.0.0.1:0",
		"-stats", "1s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.MetricsAddr != "127.0.0.1:0" || opts.cfg.RateBps != 250000 ||
		len(opts.cfg.SDP) != 2 || opts.cfg.SDP[1] != 4 || opts.interval != time.Second {
		t.Fatalf("parsed %+v", opts)
	}
	if _, err := parseArgs([]string{"-sdp", "not,numbers"}); err == nil {
		t.Fatal("bad -sdp accepted")
	}
	if opts.cfg.Adapt {
		t.Fatal("adaptation on by default")
	}
	opts, err = parseArgs([]string{"-adapt", "-adapt-interval", "250ms"})
	if err != nil {
		t.Fatal(err)
	}
	if !opts.cfg.Adapt || opts.cfg.AdaptInterval != 250*time.Millisecond {
		t.Fatalf("adapt flags not parsed: %+v", opts.cfg)
	}
}

func TestParseArgsClasses(t *testing.T) {
	opts, err := parseArgs([]string{"-classes", "testdata/classes.conf"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.Classes == nil || opts.cfg.Classes.NumClasses() != 2 {
		t.Fatalf("classes not loaded: %+v", opts.cfg.Classes)
	}
	if opts.cfg.SDP != nil {
		t.Fatalf("default -sdp should yield to the class config, got %v", opts.cfg.SDP)
	}
	if opts.cfg.DistrustHeader || opts.cfg.FlowTTL != 2*time.Minute {
		t.Fatalf("classifier defaults: %+v", opts.cfg)
	}
	if got := opts.cfg.Classes.SDPs(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("derived SDPs %v, want [1 4]", got)
	}

	// Explicit -sdp of matching width overrides the derived SDPs.
	opts, err = parseArgs([]string{"-classes", "testdata/classes.conf", "-sdp", "1,8",
		"-distrust-class", "true", "-flow-ttl", "30s"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.cfg.SDP) != 2 || opts.cfg.SDP[1] != 8 ||
		!opts.cfg.DistrustHeader || opts.cfg.FlowTTL != 30*time.Second {
		t.Fatalf("parsed %+v", opts.cfg)
	}

	table := classTable(opts.cfg.Classes, opts.cfg.Classes.SDPs())
	for _, want := range []string{"0=bulk ddp=4 sdp=1 (default)", "1=interactive ddp=1 sdp=4"} {
		if !strings.Contains(table, want) {
			t.Fatalf("class table %q missing %q", table, want)
		}
	}

	for _, args := range [][]string{
		{"-classes", "testdata/classes.conf", "-sdp", "1,2,4"}, // width mismatch
		{"-distrust-class", "true"},                            // requires -classes
		{"-classes", "testdata/classes.conf", "-distrust-class", "bogus"},
		{"-classes", "testdata/no-such-file.conf"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestForwarderMetricsEndToEnd starts a forwarder exactly as
// `pdfwd -metrics-addr 127.0.0.1:0` would, pushes classed probe traffic
// through it, and asserts that /metrics reports per-class counts and a
// delay ratio consistent with the SDPs.
func TestForwarderMetricsEndToEnd(t *testing.T) {
	recv := listenUDPRetry(t, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	defer recv.Close()

	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0",
		"-forward", recv.LocalAddr().String(),
		"-rate", "524288", // 512 kbps: 64 KiB/s egress
		"-sched", "wtp",
		"-sdp", "1,4",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := pdds.StartForwarderWithConfig(opts.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	maddr := fwd.MetricsAddr()
	if maddr == nil {
		t.Fatal("no metrics address bound")
	}

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Saturate the slow egress with interleaved classed probes so WTP
	// has a persistent backlog to differentiate.
	const perClass = 80
	payload := make([]byte, 110) // + header = 128 B datagrams
	for i := 0; i < perClass; i++ {
		for class := uint8(0); class < 2; class++ {
			if _, err := send.Write(pdds.EncodeDatagram(class, uint64(i), payload)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wait for the egress to drain everything that was admitted.
	waitFor(t, 15*time.Second, func() bool {
		st := fwd.Stats()
		return st.Received >= 2*perClass && st.Forwarded+st.Dropped >= st.Received
	}, "forwarder queue to drain")

	resp, err := http.Get("http://" + maddr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes []struct {
			Class      int     `json:"class"`
			Arrivals   uint64  `json:"arrivals"`
			Departures uint64  `json:"departures"`
			DelayMean  float64 `json:"delay_mean"`
			DelayP99   float64 `json:"delay_p99"`
		} `json:"classes"`
		Ratios       []float64 `json:"delay_ratios"`
		TargetRatios []float64 `json:"target_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes: %+v", m.Classes)
	}
	for _, c := range m.Classes {
		if c.Arrivals != perClass || c.Departures != perClass {
			t.Errorf("class %d counts: %d arrivals %d departures, want %d each",
				c.Class, c.Arrivals, c.Departures, perClass)
		}
		if c.DelayMean <= 0 || c.DelayP99 < c.DelayMean {
			t.Errorf("class %d delays: mean %g p99 %g", c.Class, c.DelayMean, c.DelayP99)
		}
	}
	if len(m.TargetRatios) != 1 || m.TargetRatios[0] != 4 {
		t.Fatalf("target ratios %v", m.TargetRatios)
	}
	// Consistency with the SDPs: class 0 must wait materially longer
	// than class 1, in the direction and rough magnitude the SDP ratio
	// (4) dictates. A short saturated burst is noisy, so accept half
	// the target but require clear differentiation.
	if len(m.Ratios) != 1 || !(m.Ratios[0] > 2) {
		t.Fatalf("delay ratio %v not consistent with SDP target 4", m.Ratios)
	}

	// The human view and the facade summary line render the same data.
	text, err := http.Get("http://" + maddr.String() + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, err := io.ReadAll(text.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ratio 0/1") {
		t.Fatalf("text view missing ratio line:\n%s", body)
	}
	line := summarize(fwd.Stats(), fwd.ClassStats(), fwd.DelayRatios(), nil)
	if !strings.Contains(line, "received=160") || !strings.Contains(line, "ratios=") {
		t.Fatalf("summary line %q", line)
	}
}

// TestForwarderClassesEndToEnd is the classification acceptance test: the
// committed example config drives `pdfwd -classes`, untagged and
// DSCP-marked datagrams from two senders land in the declared classes
// (verified both by the re-marked class bytes at the sink and by class
// name on /metrics), and the measured delay ratio honors the configured
// DDPs (bulk ddp 4 vs interactive ddp 1 → target ratio 4).
func TestForwarderClassesEndToEnd(t *testing.T) {
	recv := listenUDPRetry(t, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	defer recv.Close()

	// Count forwarded datagrams by their (re-marked) class byte.
	var mu sync.Mutex
	sinkCounts := make(map[uint8]int)
	go func() {
		buf := make([]byte, 2048)
		for {
			n, err := recv.Read(buf)
			if err != nil {
				return
			}
			class, _, _, _, err := pdds.DecodeDatagram(buf[:n])
			if err != nil {
				continue
			}
			mu.Lock()
			sinkCounts[class]++
			mu.Unlock()
		}
	}()

	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0",
		"-forward", recv.LocalAddr().String(),
		"-rate", "524288", // 512 kbps: 64 KiB/s egress
		"-classes", "testdata/classes.conf",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := pdds.StartForwarderWithConfig(opts.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	maddr := fwd.MetricsAddr()
	if maddr == nil {
		t.Fatal("no metrics address bound")
	}

	// Two senders so each traffic stream is a distinct flow: the flow
	// table memoizes 5-tuple→class, so mixing markings on one socket
	// would (correctly) pin the whole flow to its first decision.
	bulkSend, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer bulkSend.Close()
	interSend, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer interSend.Close()

	// Saturate the slow egress with interleaved traffic: untagged
	// datagrams must fall to the default class (bulk), and datagrams
	// marked with DS byte 46 (EF) must match interactive's dscp filter.
	const perClass = 80
	payload := make([]byte, 110) // + header = 128 B datagrams
	for i := 0; i < perClass; i++ {
		if _, err := bulkSend.Write(pdds.EncodeDatagram(pdds.ClassUnspecified, uint64(i), payload)); err != nil {
			t.Fatal(err)
		}
		if _, err := interSend.Write(pdds.EncodeDatagram(46, uint64(i), payload)); err != nil {
			t.Fatal(err)
		}
	}

	waitFor(t, 15*time.Second, func() bool {
		st := fwd.Stats()
		return st.Received >= 2*perClass && st.Forwarded+st.Dropped >= st.Received
	}, "forwarder queue to drain")
	st := fwd.Stats()
	if st.BadClass != 0 || st.BadHeader != 0 {
		t.Fatalf("classified run saw bad-class=%d bad-header=%d", st.BadClass, st.BadHeader)
	}

	// Every forwarded datagram reaches the sink re-marked with its
	// resolved class index: 0 (bulk) or 1 (interactive), nothing else.
	waitFor(t, 5*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		total := 0
		for _, n := range sinkCounts {
			total += n
		}
		return uint64(total) >= st.Forwarded
	}, "sink to receive forwarded datagrams")
	mu.Lock()
	for class := range sinkCounts {
		if class > 1 {
			t.Errorf("sink saw unexpected class byte %d", class)
		}
	}
	bulkSeen, interSeen := sinkCounts[0], sinkCounts[1]
	mu.Unlock()
	if bulkSeen == 0 || interSeen == 0 {
		t.Fatalf("sink counts bulk=%d interactive=%d, want both > 0", bulkSeen, interSeen)
	}

	resp, err := http.Get("http://" + maddr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes []struct {
			Class     int     `json:"class"`
			Name      string  `json:"name"`
			Arrivals  uint64  `json:"arrivals"`
			DelayMean float64 `json:"delay_mean"`
		} `json:"classes"`
		Ratios       []float64 `json:"delay_ratios"`
		TargetRatios []float64 `json:"target_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0].Name != "bulk" || m.Classes[1].Name != "interactive" {
		t.Fatalf("class names: %+v", m.Classes)
	}
	for _, c := range m.Classes {
		if c.Arrivals != perClass {
			t.Errorf("class %s arrivals %d, want %d", c.Name, c.Arrivals, perClass)
		}
	}
	// The DDP spread (4:1) sets the target adjacent delay ratio; require
	// the observed ratio to differentiate clearly in that direction.
	if len(m.TargetRatios) != 1 || m.TargetRatios[0] != 4 {
		t.Fatalf("target ratios %v, want [4] from DDPs 4:1", m.TargetRatios)
	}
	if len(m.Ratios) != 1 || !(m.Ratios[0] > 2) {
		t.Fatalf("delay ratio %v not consistent with DDP target 4", m.Ratios)
	}

	line := summarize(st, fwd.ClassStats(), fwd.DelayRatios(), nil)
	for _, want := range []string{"bad-class=0", "c0[bulk]=", "c1[interactive]="} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary line %q missing %q", line, want)
		}
	}
}

// TestForwarderAdaptEndToEnd starts a forwarder exactly as `pdfwd -adapt`
// would and verifies the adaptation surface: the controller observes
// windows, a manual retune lands in the stats line, and the summary
// renders the retune fields.
func TestForwarderAdaptEndToEnd(t *testing.T) {
	recv := listenUDPRetry(t, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	defer recv.Close()

	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0",
		"-forward", recv.LocalAddr().String(),
		"-rate", "1000000",
		"-sdp", "1,4",
		"-adapt", "-adapt-interval", "20ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := pdds.StartForwarderWithConfig(opts.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()

	if err := fwd.Retune([]float64{1, 8}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return fwd.ControlStats().Applied >= 1
	}, "manual retune to install")

	cs := fwd.ControlStats()
	line := summarize(fwd.Stats(), fwd.ClassStats(), fwd.DelayRatios(), &cs)
	for _, want := range []string{"retunes=", "params=1,8"} {
		if !strings.Contains(line, want) {
			t.Fatalf("summary line %q missing %q", line, want)
		}
	}
}
