package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pdds"
)

// listenUDPRetry binds addr, retrying briefly: on loaded CI machines a
// just-released port can stay unavailable for a moment.
func listenUDPRetry(t *testing.T, addr *net.UDPAddr) *net.UDPConn {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.ListenUDP("udp", addr)
		if err == nil {
			return conn
		}
		if time.Now().After(deadline) {
			t.Fatalf("bind %v: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitFor polls cond with a deadline instead of a fixed sleep, failing the
// test with desc if the condition never holds.
func waitFor(t *testing.T, timeout time.Duration, cond func() bool, desc string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", desc)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestParseArgs(t *testing.T) {
	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0", "-forward", "127.0.0.1:9",
		"-rate", "250000", "-sdp", "1,4", "-metrics-addr", "127.0.0.1:0",
		"-stats", "1s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.MetricsAddr != "127.0.0.1:0" || opts.cfg.RateBps != 250000 ||
		len(opts.cfg.SDP) != 2 || opts.cfg.SDP[1] != 4 || opts.interval != time.Second {
		t.Fatalf("parsed %+v", opts)
	}
	if _, err := parseArgs([]string{"-sdp", "not,numbers"}); err == nil {
		t.Fatal("bad -sdp accepted")
	}
}

// TestForwarderMetricsEndToEnd starts a forwarder exactly as
// `pdfwd -metrics-addr 127.0.0.1:0` would, pushes classed probe traffic
// through it, and asserts that /metrics reports per-class counts and a
// delay ratio consistent with the SDPs.
func TestForwarderMetricsEndToEnd(t *testing.T) {
	recv := listenUDPRetry(t, &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	defer recv.Close()

	opts, err := parseArgs([]string{
		"-listen", "127.0.0.1:0",
		"-forward", recv.LocalAddr().String(),
		"-rate", "524288", // 512 kbps: 64 KiB/s egress
		"-sched", "wtp",
		"-sdp", "1,4",
		"-metrics-addr", "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := pdds.StartForwarderWithConfig(opts.cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fwd.Close()
	maddr := fwd.MetricsAddr()
	if maddr == nil {
		t.Fatal("no metrics address bound")
	}

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	// Saturate the slow egress with interleaved classed probes so WTP
	// has a persistent backlog to differentiate.
	const perClass = 80
	payload := make([]byte, 110) // + header = 128 B datagrams
	for i := 0; i < perClass; i++ {
		for class := uint8(0); class < 2; class++ {
			if _, err := send.Write(pdds.EncodeDatagram(class, uint64(i), payload)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wait for the egress to drain everything that was admitted.
	waitFor(t, 15*time.Second, func() bool {
		st := fwd.Stats()
		return st.Received >= 2*perClass && st.Forwarded+st.Dropped >= st.Received
	}, "forwarder queue to drain")

	resp, err := http.Get("http://" + maddr.String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Classes []struct {
			Class      int     `json:"class"`
			Arrivals   uint64  `json:"arrivals"`
			Departures uint64  `json:"departures"`
			DelayMean  float64 `json:"delay_mean"`
			DelayP99   float64 `json:"delay_p99"`
		} `json:"classes"`
		Ratios       []float64 `json:"delay_ratios"`
		TargetRatios []float64 `json:"target_ratios"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 {
		t.Fatalf("classes: %+v", m.Classes)
	}
	for _, c := range m.Classes {
		if c.Arrivals != perClass || c.Departures != perClass {
			t.Errorf("class %d counts: %d arrivals %d departures, want %d each",
				c.Class, c.Arrivals, c.Departures, perClass)
		}
		if c.DelayMean <= 0 || c.DelayP99 < c.DelayMean {
			t.Errorf("class %d delays: mean %g p99 %g", c.Class, c.DelayMean, c.DelayP99)
		}
	}
	if len(m.TargetRatios) != 1 || m.TargetRatios[0] != 4 {
		t.Fatalf("target ratios %v", m.TargetRatios)
	}
	// Consistency with the SDPs: class 0 must wait materially longer
	// than class 1, in the direction and rough magnitude the SDP ratio
	// (4) dictates. A short saturated burst is noisy, so accept half
	// the target but require clear differentiation.
	if len(m.Ratios) != 1 || !(m.Ratios[0] > 2) {
		t.Fatalf("delay ratio %v not consistent with SDP target 4", m.Ratios)
	}

	// The human view and the facade summary line render the same data.
	text, err := http.Get("http://" + maddr.String() + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer text.Body.Close()
	body, err := io.ReadAll(text.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "ratio 0/1") {
		t.Fatalf("text view missing ratio line:\n%s", body)
	}
	line := summarize(fwd.Stats(), fwd.ClassStats(), fwd.DelayRatios())
	if !strings.Contains(line, "received=160") || !strings.Contains(line, "ratios=") {
		t.Fatalf("summary line %q", line)
	}
}
