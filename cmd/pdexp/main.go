// Command pdexp regenerates the paper's tables and figures. Each
// experiment prints a TSV table to stdout (or to a file per experiment
// with -out). With -out, a machine-readable run report (report.json) is
// written alongside the TSVs: which experiments ran, at what scale, their
// output files and wall-clock durations.
//
// Examples:
//
//	pdexp -exp fig1a                 # Figure 1-a at full paper scale
//	pdexp -exp all -scale quick      # everything, reduced run sizes
//	pdexp -exp fig4,fig5 -out results/  # microscopic-view CSV series
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"pdds/internal/core"
	"pdds/internal/experiments"
	"pdds/internal/textplot"
)

// runReport is the machine-readable summary written as report.json next
// to the TSVs when -out is used.
type runReport struct {
	Tool      string    `json:"tool"`
	GoVersion string    `json:"go_version"`
	Scale     string    `json:"scale"`
	StartedAt time.Time `json:"started_at"`
	// Parallelism is the worker-pool width simulation runs were fanned
	// out over (the -parallel flag).
	Parallelism int     `json:"parallelism"`
	DurationSec float64 `json:"duration_sec"`
	// Runs and Packets total the simulation runs executed and simulated
	// packets completed across all experiments.
	Runs        uint64           `json:"runs"`
	Packets     uint64           `json:"packets"`
	Experiments []experimentStat `json:"experiments"`
}

type experimentStat struct {
	Name        string  `json:"name"`
	File        string  `json:"file,omitempty"`
	DurationSec float64 `json:"duration_sec"`
	// Runs and Packets count this experiment's simulation runs and
	// completed packets.
	Runs    uint64 `json:"runs"`
	Packets uint64 `json:"packets"`
}

var allExperiments = []string{
	"fig1a", "fig1b", "fig2a", "fig2b", "fig3", "fig4", "fig5",
	"table1", "feasibility", "ablation", "loss", "moderate", "pathsched", "hpdg", "control",
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdexp: ")

	var (
		expList  = flag.String("exp", "all", "comma-separated experiments: "+strings.Join(allExperiments, ",")+" or all")
		scaleStr = flag.String("scale", "full", "run scale: full|quick|bench")
		outDir   = flag.String("out", "", "write one file per experiment into this directory instead of stdout")
		plot     = flag.Bool("plot", false, "append a terminal plot to fig1a/fig1b/moderate output (re-runs the experiment; deterministic)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max simulation runs executing concurrently (results are identical at any value)")
	)
	flag.Parse()
	experiments.SetParallelism(*parallel)

	var scale experiments.Scale
	switch *scaleStr {
	case "full":
		scale = experiments.Full
	case "quick":
		scale = experiments.Quick
	case "bench":
		scale = experiments.Bench
	default:
		log.Fatalf("unknown -scale %q", *scaleStr)
	}

	names := strings.Split(*expList, ",")
	if *expList == "all" {
		names = allExperiments
	}
	report := runReport{
		Tool:        "pdexp",
		GoVersion:   runtime.Version(),
		Scale:       *scaleStr,
		StartedAt:   time.Now(),
		Parallelism: experiments.Parallelism(),
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		start := time.Now()
		experiments.ResetCounters()
		var out io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			ext := ".tsv"
			if name == "fig4" || name == "fig5" {
				ext = ".csv"
			}
			f, err := os.Create(filepath.Join(*outDir, name+ext))
			if err != nil {
				log.Fatal(err)
			}
			file = f
			out = f
		}
		if err := run(name, scale, out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if *plot {
			if err := renderPlot(name, scale, out); err != nil {
				log.Fatalf("%s plot: %v", name, err)
			}
		}
		if file != nil {
			if err := file.Close(); err != nil {
				log.Fatal(err)
			}
		}
		stat := experimentStat{
			Name:        name,
			DurationSec: time.Since(start).Seconds(),
			Runs:        experiments.RunCount(),
			Packets:     experiments.PacketCount(),
		}
		if file != nil {
			stat.File = filepath.Base(file.Name())
		}
		report.Experiments = append(report.Experiments, stat)
		report.Runs += stat.Runs
		report.Packets += stat.Packets
		fmt.Fprintf(os.Stderr, "pdexp: %s done in %s (%d runs, %d packets)\n",
			name, time.Since(start).Round(time.Millisecond), stat.Runs, stat.Packets)
	}
	report.DurationSec = time.Since(report.StartedAt).Seconds()
	fmt.Fprintf(os.Stderr, "pdexp: total %d runs, %d packets in %s on %d workers\n",
		report.Runs, report.Packets,
		time.Since(report.StartedAt).Round(time.Millisecond), report.Parallelism)
	if *outDir != "" {
		if err := writeReport(filepath.Join(*outDir, "report.json"), report); err != nil {
			log.Fatal(err)
		}
	}
}

// writeReport writes the run report as indented JSON.
func writeReport(path string, report runReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, scale experiments.Scale, out io.Writer) error {
	switch name {
	case "fig1a":
		points, err := experiments.Fig1(experiments.PaperSDPx2, scale)
		if err != nil {
			return err
		}
		return experiments.WriteFig1TSV(out, points, 2)
	case "fig1b":
		points, err := experiments.Fig1(experiments.PaperSDPx4, scale)
		if err != nil {
			return err
		}
		return experiments.WriteFig1TSV(out, points, 4)
	case "fig2a":
		points, err := experiments.Fig2(experiments.PaperSDPx2, scale)
		if err != nil {
			return err
		}
		return experiments.WriteFig2TSV(out, points, 2)
	case "fig2b":
		points, err := experiments.Fig2(experiments.PaperSDPx4, scale)
		if err != nil {
			return err
		}
		return experiments.WriteFig2TSV(out, points, 4)
	case "fig3":
		points, err := experiments.Fig3(experiments.PaperSDPx2, scale)
		if err != nil {
			return err
		}
		return experiments.WriteFig3TSV(out, points)
	case "fig4", "fig5":
		kind := core.KindBPR
		if name == "fig5" {
			kind = core.KindWTP
		}
		res, err := experiments.Micro(kind, scale)
		if err != nil {
			return err
		}
		if err := experiments.WriteMicroSummaryTSV(out, []*experiments.MicroResult{res}); err != nil {
			return err
		}
		return experiments.WriteMicroSeriesCSV(out, res)
	case "table1":
		cells, err := experiments.Table1(scale)
		if err != nil {
			return err
		}
		return experiments.WriteTable1TSV(out, cells)
	case "feasibility":
		points, err := experiments.Feasibility(scale)
		if err != nil {
			return err
		}
		return experiments.WriteFeasibilityTSV(out, points)
	case "ablation":
		points, err := experiments.Ablation(scale)
		if err != nil {
			return err
		}
		return experiments.WriteAblationTSV(out, points)
	case "loss":
		points, err := experiments.Loss(scale)
		if err != nil {
			return err
		}
		return experiments.WriteLossTSV(out, points)
	case "moderate":
		points, err := experiments.Moderate(scale)
		if err != nil {
			return err
		}
		return experiments.WriteModerateTSV(out, points)
	case "pathsched":
		points, err := experiments.PathSched(scale)
		if err != nil {
			return err
		}
		return experiments.WritePathSchedTSV(out, points)
	case "hpdg":
		points, err := experiments.HPDG(scale)
		if err != nil {
			return err
		}
		return experiments.WriteHPDGTSV(out, points)
	case "control":
		points, err := experiments.Control(scale)
		if err != nil {
			return err
		}
		return experiments.WriteControlTSV(out, points)
	default:
		return fmt.Errorf("unknown experiment (want one of %s)", strings.Join(allExperiments, ", "))
	}
}

// renderPlot appends a terminal plot for the experiments that have a
// natural ratio-vs-utilization view.
func renderPlot(name string, scale experiments.Scale, out io.Writer) error {
	mean := func(v []float64) float64 {
		var sum float64
		for _, x := range v {
			sum += x
		}
		return sum / float64(len(v))
	}
	var p textplot.Plot
	switch name {
	case "fig1a", "fig1b":
		sdp := experiments.PaperSDPx2
		if name == "fig1b" {
			sdp = experiments.PaperSDPx4
		}
		points, err := experiments.Fig1(sdp, scale)
		if err != nil {
			return err
		}
		p.Title = "mean successive-class delay ratio vs utilization"
		bySched := map[core.Kind][]textplot.Point{}
		for _, pt := range points {
			bySched[pt.Scheduler] = append(bySched[pt.Scheduler],
				textplot.Point{X: pt.Rho, Y: mean(pt.Ratios)})
		}
		p.Add(textplot.Series{Name: "wtp", Marker: 'w', Points: bySched[core.KindWTP]})
		p.Add(textplot.Series{Name: "bpr", Marker: 'b', Points: bySched[core.KindBPR]})
	case "moderate":
		points, err := experiments.Moderate(scale)
		if err != nil {
			return err
		}
		p.Title = "mean ratio vs utilization: proportional schedulers (target 2)"
		bySched := map[core.Kind][]textplot.Point{}
		for _, pt := range points {
			bySched[pt.Scheduler] = append(bySched[pt.Scheduler],
				textplot.Point{X: pt.Rho, Y: mean(pt.Ratios)})
		}
		for _, kind := range experiments.ModerateSchedulers {
			p.Add(textplot.Series{Name: string(kind), Marker: rune(kind[0]), Points: bySched[kind]})
		}
	default:
		return nil // no plot for this experiment
	}
	rendered, err := p.Render()
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(out, rendered)
	return err
}
