package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pdds/internal/experiments"
)

// tiny keeps the experiment drivers fast enough for a unit test.
var tiny = experiments.Scale{
	Seeds:             1,
	Horizon:           2e4,
	Warmup:            2e3,
	FeasHorizon:       2e4,
	StudyBSeeds:       1,
	StudyBExperiments: 2,
	StudyBWarmup:      2,
}

func TestRunKnownExperiments(t *testing.T) {
	for _, name := range allExperiments {
		var buf bytes.Buffer
		if err := run(name, tiny, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.HasPrefix(out, "#") {
			t.Errorf("%s: output missing header comment:\n%.80s", name, out)
		}
		if strings.Count(out, "\n") < 3 {
			t.Errorf("%s: suspiciously short output", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run("nope", tiny, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestWriteReportRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	in := runReport{
		Tool:  "pdexp",
		Scale: "quick",
		Experiments: []experimentStat{
			{Name: "fig1a", File: "fig1a.tsv", DurationSec: 1.5},
			{Name: "table1", File: "table1.tsv", DurationSec: 30},
		},
	}
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out runReport
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Scale != "quick" || len(out.Experiments) != 2 || out.Experiments[1].Name != "table1" {
		t.Fatalf("report round-trip: %+v", out)
	}
}

func TestRenderPlot(t *testing.T) {
	for _, name := range []string{"fig1a", "moderate"} {
		var buf bytes.Buffer
		if err := renderPlot(name, tiny, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(buf.String(), "utilization") {
			t.Fatalf("%s: plot missing axis title", name)
		}
	}
	var buf bytes.Buffer
	if err := renderPlot("table1", tiny, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("plot rendered for unsupported experiment")
	}
}
