package main

import (
	"io"
	"strings"
	"testing"
)

// TestRunSmoke exercises the full CLI path on a tiny config and checks
// the report has the expected shape.
func TestRunSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-sched", "wtp", "-rho", "0.9",
		"-horizon", "20000", "-warmup", "2000", "-seed", "3",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"scheduler=WTP",
		"realized-utilization=",
		"class  packets",
		"successive-class delay ratios",
		"d1/d2 =",
		"d3/d4 =",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunAllSchedulers(t *testing.T) {
	for _, sched := range []string{"bpr", "fcfs", "strict", "drr"} {
		var out strings.Builder
		err := run([]string{
			"-sched", sched, "-rho", "0.8", "-poisson",
			"-horizon", "10000", "-warmup", "1000",
		}, &out)
		if err != nil {
			t.Errorf("%s: %v", sched, err)
		}
		if !strings.Contains(strings.ToLower(out.String()), "scheduler="+sched) {
			t.Errorf("%s: report names the wrong scheduler:\n%s", sched, out.String())
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-sched", "bogus", "-horizon", "1000", "-warmup", "0"},
		{"-sdp", "not,numbers"},
		{"-fractions", "x"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}
