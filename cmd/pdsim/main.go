// Command pdsim runs the paper's single-link simulation (Study A) once and
// prints per-class queueing-delay statistics and the successive-class delay
// ratios.
//
// Example:
//
//	pdsim -sched wtp -rho 0.95 -sdp 1,2,4,8 -horizon 1e6
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"pdds"
	"pdds/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdsim: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the CLI against args, writing the report to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdsim", flag.ContinueOnError)
	var (
		sched     = fs.String("sched", "wtp", "scheduler: wtp|bpr|fcfs|strict|wfq|drr|additive|pad|hpd")
		sdpStr    = fs.String("sdp", "1,2,4,8", "scheduler differentiation parameters, one per class")
		rho       = fs.Float64("rho", 0.95, "offered utilization (0,1]")
		fractions = fs.String("fractions", "0.40,0.30,0.20,0.10", "class load distribution (sums to 1)")
		horizon   = fs.Float64("horizon", 1e6, "simulated duration, time units")
		warmup    = fs.Float64("warmup", 5e4, "warm-up period discarded from statistics")
		seed      = fs.Uint64("seed", 1, "random seed")
		poisson   = fs.Bool("poisson", false, "exponential instead of Pareto interarrivals")
		alpha     = fs.Float64("alpha", 1.9, "Pareto shape parameter")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		return fmt.Errorf("-sdp: %w", err)
	}
	frac, err := cliutil.ParseFloats(*fractions)
	if err != nil {
		return fmt.Errorf("-fractions: %w", err)
	}

	rep, err := pdds.SimulateLink(pdds.LinkConfig{
		Scheduler:      pdds.SchedulerKind(*sched),
		SDP:            sdp,
		Utilization:    *rho,
		ClassFractions: frac,
		Poisson:        *poisson,
		Alpha:          *alpha,
		Horizon:        *horizon,
		Warmup:         *warmup,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "scheduler=%s rho=%.3f realized-utilization=%.3f seed=%d\n",
		rep.Scheduler, *rho, rep.Utilization, *seed)
	w := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\tpackets\tmean-delay\tstd-delay\tmean-delay(p-units)")
	for i, cs := range rep.Classes {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t%.2f\n",
			i+1, cs.Packets, cs.MeanDelay, cs.StdDelay, cs.MeanDelayPUnits)
	}
	w.Flush()
	fmt.Fprintln(stdout, "successive-class delay ratios (target = inverse SDP ratios):")
	for i, r := range rep.DelayRatios {
		fmt.Fprintf(stdout, "  d%d/d%d = %.3f (target %.2f)\n", i+1, i+2, r, sdp[i+1]/sdp[i])
	}
	if rep.Dropped > 0 {
		fmt.Fprintf(stdout, "dropped=%d\n", rep.Dropped)
	}
	return nil
}
