// Command pdsim runs the paper's single-link simulation (Study A) once and
// prints per-class queueing-delay statistics and the successive-class delay
// ratios.
//
// Example:
//
//	pdsim -sched wtp -rho 0.95 -sdp 1,2,4,8 -horizon 1e6
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"pdds"
	"pdds/internal/cliutil"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdsim: ")

	var (
		sched     = flag.String("sched", "wtp", "scheduler: wtp|bpr|fcfs|strict|wfq|drr|additive|pad|hpd")
		sdpStr    = flag.String("sdp", "1,2,4,8", "scheduler differentiation parameters, one per class")
		rho       = flag.Float64("rho", 0.95, "offered utilization (0,1]")
		fractions = flag.String("fractions", "0.40,0.30,0.20,0.10", "class load distribution (sums to 1)")
		horizon   = flag.Float64("horizon", 1e6, "simulated duration, time units")
		warmup    = flag.Float64("warmup", 5e4, "warm-up period discarded from statistics")
		seed      = flag.Uint64("seed", 1, "random seed")
		poisson   = flag.Bool("poisson", false, "exponential instead of Pareto interarrivals")
		alpha     = flag.Float64("alpha", 1.9, "Pareto shape parameter")
	)
	flag.Parse()

	sdp, err := cliutil.ParseFloats(*sdpStr)
	if err != nil {
		log.Fatalf("-sdp: %v", err)
	}
	frac, err := cliutil.ParseFloats(*fractions)
	if err != nil {
		log.Fatalf("-fractions: %v", err)
	}

	rep, err := pdds.SimulateLink(pdds.LinkConfig{
		Scheduler:      pdds.SchedulerKind(*sched),
		SDP:            sdp,
		Utilization:    *rho,
		ClassFractions: frac,
		Poisson:        *poisson,
		Alpha:          *alpha,
		Horizon:        *horizon,
		Warmup:         *warmup,
		Seed:           *seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scheduler=%s rho=%.3f realized-utilization=%.3f seed=%d\n",
		rep.Scheduler, *rho, rep.Utilization, *seed)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "class\tpackets\tmean-delay\tstd-delay\tmean-delay(p-units)")
	for i, cs := range rep.Classes {
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t%.2f\n",
			i+1, cs.Packets, cs.MeanDelay, cs.StdDelay, cs.MeanDelayPUnits)
	}
	w.Flush()
	fmt.Println("successive-class delay ratios (target = inverse SDP ratios):")
	for i, r := range rep.DelayRatios {
		fmt.Printf("  d%d/d%d = %.3f (target %.2f)\n", i+1, i+2, r, sdp[i+1]/sdp[i])
	}
	if rep.Dropped > 0 {
		fmt.Printf("dropped=%d\n", rep.Dropped)
	}
}
