// Command pdload is a loopback load generator and soak harness for the
// live UDP forwarder: it stands up a forwarder, a paced multi-class
// sender, and a receiving sink on loopback sockets, saturates the egress
// for a configured duration, drains, and reports
//
//   - the achieved egress rate vs the configured -rate (the pacer must
//     hold the link rate for any live DDP-ratio claim to be meaningful),
//   - packet conservation (Received = Forwarded + Dropped + BadHeader +
//     BadClass exactly, with nothing left queued after the drain), and
//   - the observed per-class delay ratios vs the SDP targets.
//
// With -flows N the sender becomes multi-flow: N distinct UDP sockets
// per class emit untagged (ClassUnspecified) datagrams, and the
// forwarder classifies them by flow identity against a generated
// traffic-class config (one src-port filter per flow). Any
// misclassified datagram surfaces as a bad-class count or a per-class
// sink miscount, so the mode soaks the classifier edge end to end.
//
// It exits non-zero when the achieved rate deviates from -rate by more
// than -tolerance, when any datagram is unaccounted, or when any
// datagram's class could not be resolved, so it doubles as a CI soak
// check (`make soak`).
//
// Example:
//
//	pdload -rate 4e6 -duration 5s -classes 4 -sdp 1,2,4,8 -flows 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"pdds"
	"pdds/internal/cliutil"
	"pdds/internal/netio"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdload: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// loadConfig parameterizes one soak run.
type loadConfig struct {
	RateBps   float64       // forwarder egress rate, bits per second
	Offered   float64       // offered load as a multiple of RateBps
	Duration  time.Duration // sending phase length
	Classes   int           // number of service classes
	Size      int           // datagram size including the 18-byte header
	Scheduler pdds.SchedulerKind
	SDP       []float64
	MaxQueue  int           // forwarder queue bound (packets)
	Drain     time.Duration // post-send drain budget
	// FlowsPerClass, when > 0, switches to multi-flow mode: this many
	// distinct sender sockets per class, all emitting untagged
	// datagrams the forwarder must classify by flow identity.
	FlowsPerClass int
	// Shards is the forwarder's parallel ingress shard count (0 or 1 =
	// classic single-socket path).
	Shards int
}

// classResult is the per-class slice of a soak report.
type classResult struct {
	Class int `json:"class"`
	// Name is the class's label in multi-flow mode (empty otherwise).
	Name      string  `json:"name,omitempty"`
	Received  uint64  `json:"received"` // datagrams seen at the sink
	DelayMean float64 `json:"delay_mean_sec"`
	DelayP95  float64 `json:"delay_p95_sec"`
}

// loadReport is the outcome of one soak run.
type loadReport struct {
	ConfigRateBps   float64       `json:"config_rate_bps"`
	AchievedRateBps float64       `json:"achieved_rate_bps"`
	RateDeviation   float64       `json:"rate_deviation"` // achieved/config − 1
	BusyPeriod      time.Duration `json:"busy_period_ns"` // first→last sink datagram
	// AchievedPps is the end-to-end throughput in datagrams per second
	// over the busy period — the headline data-plane figure for sharded
	// and batched runs.
	AchievedPps float64 `json:"achieved_pps"`

	// Shards is the configured ingress shard count; ShardMode names the
	// active receive path ("mmsg" or "datagram"), with "+shared" appended
	// when SO_REUSEPORT was unavailable and the shards share one socket.
	Shards    int    `json:"shards,omitempty"`
	ShardMode string `json:"shard_mode,omitempty"`

	Sent      uint64 `json:"sent"`
	Received  uint64 `json:"received"` // forwarder ingress (post kernel buffer)
	Forwarded uint64 `json:"forwarded"`
	Dropped   uint64 `json:"dropped"`
	BadHeader uint64 `json:"bad_header"`
	// BadClass counts datagrams whose class could not be resolved; in
	// multi-flow mode every flow has a matching filter, so any nonzero
	// value is a classification failure.
	BadClass uint64 `json:"bad_class"`
	// Unaccounted is Received − Forwarded − Dropped − BadHeader −
	// BadClass − Queued; any nonzero value is an accounting bug in the
	// forwarder.
	Unaccounted int64  `json:"unaccounted"`
	SinkCount   uint64 `json:"sink_count"` // datagrams delivered end to end
	// Flows is the number of distinct sender flows (0 in classic
	// single-socket tagged mode).
	Flows int `json:"flows,omitempty"`

	DelayRatios  []float64     `json:"delay_ratios"`
	TargetRatios []float64     `json:"target_ratios"`
	Classes      []classResult `json:"classes"`
}

// soak runs one loopback load test: sink ← forwarder ← paced sender.
func soak(cfg loadConfig) (loadReport, error) {
	if cfg.Size < netio.HeaderLen {
		return loadReport{}, fmt.Errorf("datagram size %d below header length %d", cfg.Size, netio.HeaderLen)
	}
	if cfg.Classes < 1 || cfg.Classes > 64 {
		return loadReport{}, fmt.Errorf("classes %d out of range [1,64]", cfg.Classes)
	}
	if len(cfg.SDP) != cfg.Classes {
		return loadReport{}, fmt.Errorf("%d SDPs for %d classes", len(cfg.SDP), cfg.Classes)
	}
	if cfg.Offered <= 1 {
		return loadReport{}, fmt.Errorf("offered load factor %g must exceed 1 to saturate the egress", cfg.Offered)
	}
	if cfg.FlowsPerClass < 0 || cfg.FlowsPerClass > 256 {
		return loadReport{}, fmt.Errorf("flows per class %d out of range [0,256]", cfg.FlowsPerClass)
	}

	sinkConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return loadReport{}, err
	}
	defer sinkConn.Close()
	// Best effort: a deep kernel buffer so the sink never back-pressures
	// the measurement.
	sinkConn.SetReadBuffer(4 << 20)

	// Multi-flow mode: bind the per-flow sender sockets first so their
	// source ports are known, then generate a class config whose filters
	// pin each flow to its class by src-port.
	var flowConns [][]*net.UDPConn
	var classCfg *pdds.ClassConfig
	if cfg.FlowsPerClass > 0 {
		flowConns = make([][]*net.UDPConn, cfg.Classes)
		ports := make([][]uint16, cfg.Classes)
		for c := range flowConns {
			for i := 0; i < cfg.FlowsPerClass; i++ {
				conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
				if err != nil {
					return loadReport{}, err
				}
				defer conn.Close()
				flowConns[c] = append(flowConns[c], conn)
				ports[c] = append(ports[c], uint16(conn.LocalAddr().(*net.UDPAddr).Port))
			}
		}
		if classCfg, err = flowClassConfig(cfg.SDP, ports); err != nil {
			return loadReport{}, err
		}
	}

	fwd, err := pdds.StartForwarderWithConfig(pdds.ForwarderConfig{
		Listen:       "127.0.0.1:0",
		Forward:      sinkConn.LocalAddr().String(),
		Scheduler:    cfg.Scheduler,
		SDP:          cfg.SDP,
		RateBps:      cfg.RateBps,
		MaxPackets:   cfg.MaxQueue,
		Shards:       cfg.Shards,
		DrainTimeout: cfg.Drain,
		Classes:      classCfg,
	})
	if err != nil {
		return loadReport{}, err
	}
	defer fwd.Close()

	// Sink reader: counts per class, sums one-way delays, tracks the
	// busy period (first→last datagram) and wire bytes after the first.
	type sinkStats struct {
		count       uint64
		bytes       int // wire bytes excluding the first datagram
		first, last time.Time
		perClass    []uint64
		delaySum    []float64
	}
	sinkDone := make(chan sinkStats, 1)
	go func() {
		st := sinkStats{perClass: make([]uint64, cfg.Classes), delaySum: make([]float64, cfg.Classes)}
		buf := make([]byte, 64*1024)
		for {
			n, _, err := sinkConn.ReadFromUDP(buf)
			if err != nil {
				sinkDone <- st
				return
			}
			now := time.Now()
			if st.count == 0 {
				st.first = now
			} else {
				st.bytes += n
			}
			st.last = now
			st.count++
			if h, _, err := netio.Decode(buf[:n]); err == nil && int(h.Class) < cfg.Classes {
				st.perClass[h.Class]++
				st.delaySum[h.Class] += now.Sub(h.SentAt).Seconds()
			}
		}
	}()

	send, err := net.Dial("udp", fwd.Addr().String())
	if err != nil {
		return loadReport{}, err
	}
	defer send.Close()
	fwdAddr, err := net.ResolveUDPAddr("udp", fwd.Addr().String())
	if err != nil {
		return loadReport{}, err
	}

	// Paced sender: offered load = Offered × RateBps, round-robin over
	// classes, absolute-clock pacing (send gaps don't accumulate drift).
	// In multi-flow mode each class's datagrams rotate over its flow
	// sockets and go out untagged — the forwarder must classify them.
	var sent uint64
	payload := make([]byte, cfg.Size-netio.HeaderLen)
	gap := time.Duration(float64(cfg.Size*8) / (cfg.Offered * cfg.RateBps) * float64(time.Second))
	stopAt := time.Now().Add(cfg.Duration)
	next := time.Now()
	for seq := uint64(0); time.Now().Before(stopAt); seq++ {
		class := seq % uint64(cfg.Classes)
		wireClass := uint8(class)
		if flowConns != nil {
			wireClass = pdds.ClassUnspecified
		}
		dg := netio.Header{
			Class:  wireClass,
			Seq:    seq,
			SentAt: time.Now(),
		}.Encode(nil)
		dg = append(dg, payload...)
		if flowConns != nil {
			conn := flowConns[class][(seq/uint64(cfg.Classes))%uint64(cfg.FlowsPerClass)]
			if _, err := conn.WriteToUDP(dg, fwdAddr); err != nil {
				return loadReport{}, fmt.Errorf("flow sender: %w", err)
			}
		} else if _, err := send.Write(dg); err != nil {
			return loadReport{}, fmt.Errorf("sender: %w", err)
		}
		sent++
		next = next.Add(gap)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}

	// Let the forwarder drain its backlog at the egress rate, bounded by
	// the worst case plus slack, then stop it.
	txTime := time.Duration(float64(cfg.Size*8) / cfg.RateBps * float64(time.Second))
	drainDeadline := time.Now().Add(time.Duration(cfg.MaxQueue)*txTime + 2*time.Second)
	for {
		st := fwd.Stats()
		if st.Queued == 0 && st.Received == st.Forwarded+st.Dropped+st.BadHeader+st.BadClass {
			break
		}
		if time.Now().After(drainDeadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	shardStats := fwd.ShardStats()
	if err := fwd.Close(); err != nil {
		return loadReport{}, err
	}
	st := fwd.Stats()

	// Give in-flight datagrams a moment to land at the sink, then close
	// it; the reader hands back its stats on the read error.
	time.Sleep(250 * time.Millisecond)
	sinkConn.Close()
	sst := <-sinkDone

	rep := loadReport{
		ConfigRateBps: cfg.RateBps,
		Sent:          sent,
		Received:      st.Received,
		Forwarded:     st.Forwarded,
		Dropped:       st.Dropped,
		BadHeader:     st.BadHeader,
		BadClass:      st.BadClass,
		Unaccounted: int64(st.Received) - int64(st.Forwarded) - int64(st.Dropped) -
			int64(st.BadHeader) - int64(st.BadClass) - int64(st.Queued),
		SinkCount:   sst.count,
		Flows:       cfg.FlowsPerClass * cfg.Classes,
		DelayRatios: fwd.DelayRatios(),
	}
	if len(shardStats) > 0 {
		rep.Shards = len(shardStats)
		rep.ShardMode = shardStats[0].Mode
		if shardStats[0].SharedSocket {
			rep.ShardMode += "+shared"
		}
	}
	for _, c := range fwd.ClassStats() {
		cr := classResult{
			Class:     c.Class,
			Name:      c.Name,
			DelayMean: c.DelayMean,
			DelayP95:  c.DelayP95,
		}
		if c.Class < len(sst.perClass) {
			cr.Received = sst.perClass[c.Class]
		}
		rep.Classes = append(rep.Classes, cr)
	}
	if len(cfg.SDP) > 1 {
		rep.TargetRatios = make([]float64, len(cfg.SDP)-1)
		for i := 0; i+1 < len(cfg.SDP); i++ {
			rep.TargetRatios[i] = cfg.SDP[i+1] / cfg.SDP[i]
		}
	}
	if sst.count >= 2 {
		rep.BusyPeriod = sst.last.Sub(sst.first)
		rep.AchievedRateBps = float64(sst.bytes) * 8 / rep.BusyPeriod.Seconds()
		rep.RateDeviation = rep.AchievedRateBps/cfg.RateBps - 1
		// Like the byte rate, the first datagram opens the busy period and
		// is excluded from the numerator.
		rep.AchievedPps = float64(sst.count-1) / rep.BusyPeriod.Seconds()
	}
	return rep, nil
}

// flowClassConfig generates and parses a traffic-class config for
// multi-flow mode: class c gets DDP maxSDP/SDP(c) (so the derived SDPs
// round-trip to the configured ones) and one src-port filter per flow
// socket, pinning every flow to its intended class.
func flowClassConfig(sdp []float64, ports [][]uint16) (*pdds.ClassConfig, error) {
	maxSDP := sdp[0]
	for _, s := range sdp[1:] {
		if s > maxSDP {
			maxSDP = s
		}
	}
	var b strings.Builder
	for c, classPorts := range ports {
		fmt.Fprintf(&b, "class c%d\n  ddp %g\n", c, maxSDP/sdp[c])
		for _, p := range classPorts {
			fmt.Fprintf(&b, "  match src-port %d\n", p)
		}
	}
	cfg, err := pdds.ParseClassConfig(strings.NewReader(b.String()))
	if err != nil {
		return nil, fmt.Errorf("generated class config: %w", err)
	}
	return cfg, nil
}

// check returns an error when the report violates the soak's acceptance
// conditions: rate within tolerance, exact packet conservation, and no
// unresolvable classes.
func (r loadReport) check(tolerance float64) error {
	if r.Unaccounted != 0 {
		return fmt.Errorf("%d unaccounted datagrams (received=%d forwarded=%d dropped=%d bad-header=%d bad-class=%d)",
			r.Unaccounted, r.Received, r.Forwarded, r.Dropped, r.BadHeader, r.BadClass)
	}
	if r.BadClass != 0 {
		return fmt.Errorf("%d datagrams with unresolvable class; every soak flow must classify", r.BadClass)
	}
	if r.SinkCount < 2 {
		return fmt.Errorf("sink saw only %d datagrams; no rate measurement possible", r.SinkCount)
	}
	if dev := r.RateDeviation; dev < -tolerance || dev > tolerance {
		return fmt.Errorf("achieved egress rate %.0f bps deviates %+.2f%% from configured %.0f bps (tolerance ±%.0f%%)",
			r.AchievedRateBps, dev*100, r.ConfigRateBps, tolerance*100)
	}
	return nil
}

// render writes the human-readable report.
func (r loadReport) render(w io.Writer) {
	fmt.Fprintf(w, "egress rate: achieved %.0f bps vs configured %.0f bps (%+.2f%%) over %v busy period\n",
		r.AchievedRateBps, r.ConfigRateBps, r.RateDeviation*100, r.BusyPeriod.Round(time.Millisecond))
	fmt.Fprintf(w, "throughput: %.0f packets/sec end to end", r.AchievedPps)
	if r.Shards > 0 {
		fmt.Fprintf(w, " (%d ingress shard(s), %s I/O)", r.Shards, r.ShardMode)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "conservation: sent=%d received=%d forwarded=%d dropped=%d bad-header=%d bad-class=%d unaccounted=%d sink=%d\n",
		r.Sent, r.Received, r.Forwarded, r.Dropped, r.BadHeader, r.BadClass, r.Unaccounted, r.SinkCount)
	if r.Flows > 0 {
		fmt.Fprintf(w, "flows: %d distinct sender flows classified by the forwarder\n", r.Flows)
	}
	for _, c := range r.Classes {
		label := fmt.Sprintf("class %d", c.Class)
		if c.Name != "" {
			label = fmt.Sprintf("class %d (%s)", c.Class, c.Name)
		}
		fmt.Fprintf(w, "%s: sink=%d delay mean=%.1fms p95=%.1fms\n",
			label, c.Received, c.DelayMean*1e3, c.DelayP95*1e3)
	}
	if len(r.DelayRatios) > 0 {
		parts := make([]string, len(r.DelayRatios))
		for i, v := range r.DelayRatios {
			parts[i] = fmt.Sprintf("%.2f", v)
		}
		tparts := make([]string, len(r.TargetRatios))
		for i, v := range r.TargetRatios {
			tparts[i] = fmt.Sprintf("%.2f", v)
		}
		fmt.Fprintf(w, "delay ratios: %s (targets %s)\n", strings.Join(parts, ","), strings.Join(tparts, ","))
	}
}

// run executes the CLI against args, writing the report to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pdload", flag.ContinueOnError)
	var (
		rate      = fs.Float64("rate", 4e6, "forwarder egress rate, bits per second")
		offered   = fs.Float64("offered", 1.5, "offered load as a multiple of -rate (must be > 1)")
		duration  = fs.Duration("duration", 5*time.Second, "sending phase length")
		classes   = fs.Int("classes", 4, "number of service classes")
		size      = fs.Int("size", 500, "datagram size in bytes including the 18-byte header")
		sched     = fs.String("sched", "wtp", "scheduler: wtp|bpr|strict|wfq|drr|additive|pad|hpd|fcfs")
		sdpStr    = fs.String("sdp", "", "scheduler differentiation parameters (default 1,2,4,... per class)")
		flows     = fs.Int("flows", 0, "synthetic flows per class: > 0 sends untagged datagrams over this many sockets per class and the forwarder classifies by flow identity (0 = classic tagged mode)")
		shards    = fs.Int("shards", 1, "forwarder ingress shards (SO_REUSEPORT sockets; 1 = classic single-socket path)")
		maxq      = fs.Int("maxq", 512, "forwarder queue bound, packets")
		drain     = fs.Duration("drain", 10*time.Second, "forwarder drain budget at shutdown")
		tolerance = fs.Float64("tolerance", 0.02, "acceptable relative egress-rate deviation")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sdp := make([]float64, 0, *classes)
	if *sdpStr != "" {
		var err error
		sdp, err = cliutil.ParseFloats(*sdpStr)
		if err != nil {
			return fmt.Errorf("-sdp: %v", err)
		}
	} else {
		for i := 0; i < *classes; i++ {
			sdp = append(sdp, float64(int(1)<<i))
		}
	}
	rep, err := soak(loadConfig{
		RateBps:       *rate,
		Offered:       *offered,
		Duration:      *duration,
		Classes:       *classes,
		Size:          *size,
		Scheduler:     pdds.SchedulerKind(*sched),
		SDP:           sdp,
		MaxQueue:      *maxq,
		Drain:         *drain,
		FlowsPerClass: *flows,
		Shards:        *shards,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		rep.render(stdout)
	}
	return rep.check(*tolerance)
}
