package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pdds"
)

// shortSoak returns a soak configuration sized for CI: ~1 s of sending at
// a modest rate, saturated enough that the egress stays busy throughout.
func shortSoak() loadConfig {
	return loadConfig{
		RateBps:   4e6,
		Offered:   1.5,
		Duration:  1200 * time.Millisecond,
		Classes:   4,
		Size:      500,
		Scheduler: pdds.WTP,
		SDP:       []float64{1, 2, 4, 8},
		MaxQueue:  512,
		Drain:     10 * time.Second,
	}
}

// The soak's acceptance conditions are the PR's: achieved egress rate
// within ±2% of the configured rate, and exact packet conservation
// (Received = Forwarded + Dropped + BadHeader + BadClass, nothing
// queued) after the drain.
func TestSoakRateAndConservation(t *testing.T) {
	rep, err := soak(shortSoak())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.check(0.02); err != nil {
		t.Fatal(err)
	}
	if rep.Unaccounted != 0 {
		t.Fatalf("unaccounted datagrams: %+v", rep)
	}
	if rep.Dropped == 0 {
		t.Errorf("offered load %g× never overflowed the queue; the soak is not saturating: %+v",
			shortSoak().Offered, rep)
	}
	// Differentiation must be visible and ordered: class i waits longer
	// than class i+1 under WTP with increasing SDPs.
	if len(rep.Classes) != 4 {
		t.Fatalf("classes: %+v", rep.Classes)
	}
	for i := 0; i+1 < len(rep.Classes); i++ {
		lo, hi := rep.Classes[i].DelayMean, rep.Classes[i+1].DelayMean
		if !(lo > hi) {
			t.Errorf("class %d mean delay %.4fs not above class %d's %.4fs", i, lo, i+1, hi)
		}
	}
	for i, r := range rep.DelayRatios {
		if r <= 1 {
			t.Errorf("delay ratio %d = %.2f, want > 1 toward target %.2f", i, r, rep.TargetRatios[i])
		}
	}
}

// run wires flags through to the soak and renders a report; exercise the
// whole CLI path once with a very short run.
func TestRunCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by TestSoakRateAndConservation")
	}
	var out strings.Builder
	err := run([]string{
		"-duration", "800ms", "-rate", "4e6", "-classes", "2", "-sdp", "1,4",
		"-size", "400", "-maxq", "256",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	for _, want := range []string{"egress rate:", "conservation:", "unaccounted=0", "delay ratios:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-sdp", "not,numbers"}, &strings.Builder{}); err == nil {
		t.Fatal("bad -sdp accepted")
	}
	if err := run([]string{"-size", "4"}, &strings.Builder{}); err == nil {
		t.Fatal("sub-header -size accepted")
	}
	if err := run([]string{"-offered", "0.5", "-duration", "10ms"}, &strings.Builder{}); err == nil {
		t.Fatal("sub-saturating -offered accepted")
	}
	if err := run([]string{"-classes", "0"}, &strings.Builder{}); err == nil {
		t.Fatal("-classes 0 accepted")
	}
	if err := run([]string{"-flows", "1000", "-duration", "10ms"}, &strings.Builder{}); err == nil {
		t.Fatal("-flows 1000 accepted")
	}
}

// TestMultiFlowSoak soaks the classifier edge: untagged datagrams from
// N distinct flows per class must be classified purely from flow
// identity, with the same conservation and differentiation guarantees
// as the classic tagged soak and zero bad-class datagrams.
func TestMultiFlowSoak(t *testing.T) {
	cfg := shortSoak()
	cfg.FlowsPerClass = 3
	rep, err := soak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.check(0.02); err != nil {
		t.Fatal(err)
	}
	if rep.BadClass != 0 || rep.Unaccounted != 0 {
		t.Fatalf("bad-class=%d unaccounted=%d: %+v", rep.BadClass, rep.Unaccounted, rep)
	}
	if rep.Flows != 12 {
		t.Fatalf("flows=%d, want 12", rep.Flows)
	}
	if len(rep.Classes) != 4 {
		t.Fatalf("classes: %+v", rep.Classes)
	}
	// Every class must both receive traffic at the sink (its flows were
	// classified to it, not elsewhere) and show the WTP delay ordering.
	for i, c := range rep.Classes {
		if want := "c" + string(rune('0'+i)); c.Name != want {
			t.Errorf("class %d named %q, want %q", i, c.Name, want)
		}
		if c.Received == 0 {
			t.Errorf("class %d saw no sink traffic: %+v", i, rep.Classes)
		}
	}
	for i := 0; i+1 < len(rep.Classes); i++ {
		lo, hi := rep.Classes[i].DelayMean, rep.Classes[i+1].DelayMean
		if !(lo > hi) {
			t.Errorf("class %d mean delay %.4fs not above class %d's %.4fs", i, lo, i+1, hi)
		}
	}
}

// TestRunJSONSchema pins the -json report contract: every documented
// field is present under its exact key, the decoded report satisfies
// conservation, and per-class entries cover every configured class.
func TestRunJSONSchema(t *testing.T) {
	if testing.Short() {
		t.Skip("live loopback soak")
	}
	var out strings.Builder
	err := run([]string{
		"-json", "-duration", "800ms", "-rate", "4e6", "-classes", "3",
		"-sdp", "1,2,4", "-size", "400", "-maxq", "256",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}

	// Field presence, by exact JSON key: decode into a generic map so a
	// renamed or dropped tag fails here even if the Go struct still has
	// the field.
	var m map[string]any
	if err := json.Unmarshal([]byte(out.String()), &m); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	for _, key := range []string{
		"config_rate_bps", "achieved_rate_bps", "rate_deviation", "busy_period_ns",
		"sent", "received", "forwarded", "dropped", "bad_header", "bad_class",
		"unaccounted", "sink_count", "delay_ratios", "target_ratios", "classes",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("report missing key %q", key)
		}
	}

	// Typed decode: the report must still satisfy the soak's own
	// acceptance conditions after the JSON round trip.
	var rep loadReport
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Unaccounted != 0 {
		t.Errorf("decoded report has %d unaccounted datagrams", rep.Unaccounted)
	}
	if rep.Received != rep.Forwarded+rep.Dropped+rep.BadHeader+rep.BadClass {
		t.Errorf("decoded conservation broken: received=%d forwarded=%d dropped=%d bad-header=%d bad-class=%d",
			rep.Received, rep.Forwarded, rep.Dropped, rep.BadHeader, rep.BadClass)
	}
	if rep.Sent == 0 || rep.Received == 0 || rep.SinkCount == 0 {
		t.Errorf("empty soak: sent=%d received=%d sink=%d", rep.Sent, rep.Received, rep.SinkCount)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("decoded %d class entries, want 3", len(rep.Classes))
	}
	for i, c := range rep.Classes {
		if c.Class != i {
			t.Errorf("class entry %d carries class %d", i, c.Class)
		}
		if c.DelayMean < 0 || c.DelayP95 < 0 {
			t.Errorf("class %d negative delays: mean=%g p95=%g", i, c.DelayMean, c.DelayP95)
		}
	}
	if want := []float64{2, 2}; len(rep.TargetRatios) != 2 ||
		rep.TargetRatios[0] != want[0] || rep.TargetRatios[1] != want[1] {
		t.Errorf("target_ratios = %v, want %v", rep.TargetRatios, want)
	}
	if len(rep.DelayRatios) != 2 {
		t.Errorf("delay_ratios has %d entries, want 2", len(rep.DelayRatios))
	}
}
